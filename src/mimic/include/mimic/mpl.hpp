/// @file mpl.hpp
/// @brief A re-implementation of the MPL *interface style* over the xmpi
/// substrate, used as a comparator (paper, Section II).
///
/// Characteristic design points reproduced here:
///   - the layout system: communication is expressed through layout objects
///     (contiguous_layouts + displacements) rather than raw count arrays,
///     which is powerful for scientific stencils but verbose for the
///     irregular patterns of discrete algorithms;
///   - variable-size collectives are realised by constructing *derived
///     datatypes with absolute displacements* per peer and calling
///     MPI_Alltoallw — the design decision that makes MPL's gatherv-family
///     operations slow and unscalable (paper, Sections II and IV-B, citing
///     Ghosh et al.): a rooted or ring-friendly operation becomes a dense
///     p x p exchange with per-call datatype construction;
///   - no error handling (MPL has none);
///   - native handles are not exposed.
#pragma once

#include <numeric>
#include <vector>

#include "kamping/mpi_datatype.hpp"
#include "kamping/op.hpp"
#include "xmpi/api.hpp"

namespace mimic::mpl {

/// @brief A contiguous block layout of T (subset of mpl::contiguous_layout).
template <typename T>
class contiguous_layout {
public:
    explicit contiguous_layout(int count = 0) : count_(count) {}
    [[nodiscard]] int size() const { return count_; }

private:
    int count_;
};

/// @brief One layout per peer (subset of mpl::contiguous_layouts<T>).
template <typename T>
class contiguous_layouts {
public:
    explicit contiguous_layouts(int count) : layouts_(static_cast<std::size_t>(count)) {}
    contiguous_layout<T>& operator[](std::size_t index) { return layouts_[index]; }
    contiguous_layout<T> const& operator[](std::size_t index) const { return layouts_[index]; }
    [[nodiscard]] std::size_t size() const { return layouts_.size(); }

private:
    std::vector<contiguous_layout<T>> layouts_;
};

/// @brief Per-peer displacements in elements (subset of mpl::displacements).
class displacements {
public:
    explicit displacements(int count) : displs_(static_cast<std::size_t>(count), 0) {}
    std::ptrdiff_t& operator[](std::size_t index) { return displs_[index]; }
    std::ptrdiff_t operator[](std::size_t index) const { return displs_[index]; }
    [[nodiscard]] std::size_t size() const { return displs_.size(); }

private:
    std::vector<std::ptrdiff_t> displs_;
};

namespace detail {

/// @brief Builds the per-peer derived datatypes + byte displacements that
/// MPL passes to MPI_Alltoallw for every v-collective call.
template <typename T>
struct alltoallw_arguments {
    std::vector<int> counts;          // always 1: one derived type per peer
    std::vector<int> byte_displs;     // absolute displacements are in the type
    std::vector<XMPI_Datatype> types; // freshly constructed every call

    alltoallw_arguments(contiguous_layouts<T> const& layouts, displacements const& displs)
        : counts(layouts.size(), 1),
          byte_displs(layouts.size(), 0),
          types(layouts.size()) {
        for (std::size_t i = 0; i < layouts.size(); ++i) {
            // A contiguous run at an absolute displacement, expressed as a
            // resized contiguous type (constructed and committed per call —
            // MPL's per-call datatype cost).
            XMPI_Datatype block = XMPI_DATATYPE_NULL;
            XMPI_Type_contiguous(layouts[i].size(), kamping::mpi_datatype<T>(), &block);
            XMPI_Type_commit(&block);
            types[i] = block;
            byte_displs[i] =
                static_cast<int>(displs[i] * static_cast<std::ptrdiff_t>(sizeof(T)));
        }
    }

    ~alltoallw_arguments() {
        for (auto& type: types) {
            XMPI_Type_free(&type);
        }
    }
};

} // namespace detail

/// @brief Communicator (subset of mpl::communicator).
class communicator {
public:
    explicit communicator(XMPI_Comm comm) : comm_(comm) {}

    [[nodiscard]] int rank() const {
        int r = -1;
        XMPI_Comm_rank(comm_, &r);
        return r;
    }
    [[nodiscard]] int size() const {
        int s = 0;
        XMPI_Comm_size(comm_, &s);
        return s;
    }

    void barrier() const { XMPI_Barrier(comm_); }

    template <typename T>
    void send(T const* data, contiguous_layout<T> const& layout, int dest, int tag = 0) const {
        XMPI_Send(data, layout.size(), kamping::mpi_datatype<T>(), dest, tag, comm_);
    }

    template <typename T>
    void recv(T* data, contiguous_layout<T> const& layout, int source, int tag = 0) const {
        XMPI_Recv(
            data, layout.size(), kamping::mpi_datatype<T>(), source, tag, comm_,
            XMPI_STATUS_IGNORE);
    }

    template <typename T>
    void bcast(int root, T* data, contiguous_layout<T> const& layout) const {
        XMPI_Bcast(data, layout.size(), kamping::mpi_datatype<T>(), root, comm_);
    }

    template <typename T>
    void allgather(T const& in_value, T* out_values) const {
        XMPI_Allgather(
            &in_value, 1, kamping::mpi_datatype<T>(), out_values, 1,
            kamping::mpi_datatype<T>(), comm_);
    }

    /// @brief allgatherv through Alltoallw with derived types — MPL's
    /// documented implementation strategy and the source of its overhead.
    template <typename T>
    void allgatherv(
        T const* send_data, contiguous_layout<T> const& send_layout, T* recv_data,
        contiguous_layouts<T> const& recv_layouts, displacements const& recv_displs) const {
        int const p = size();
        // Send side: every peer receives my full block (at displacement 0).
        contiguous_layouts<T> send_layouts(p);
        displacements send_displacements(p);
        for (int i = 0; i < p; ++i) {
            send_layouts[static_cast<std::size_t>(i)] = send_layout;
        }
        detail::alltoallw_arguments<T> send_args(send_layouts, send_displacements);
        detail::alltoallw_arguments<T> recv_args(recv_layouts, recv_displs);
        XMPI_Alltoallw(
            send_data, send_args.counts.data(), send_args.byte_displs.data(),
            send_args.types.data(), recv_data, recv_args.counts.data(),
            recv_args.byte_displs.data(), recv_args.types.data(), comm_);
    }

    /// @brief alltoallv, likewise through Alltoallw.
    template <typename T>
    void alltoallv(
        T const* send_data, contiguous_layouts<T> const& send_layouts,
        displacements const& send_displs, T* recv_data,
        contiguous_layouts<T> const& recv_layouts, displacements const& recv_displs) const {
        detail::alltoallw_arguments<T> send_args(send_layouts, send_displs);
        detail::alltoallw_arguments<T> recv_args(recv_layouts, recv_displs);
        XMPI_Alltoallw(
            send_data, send_args.counts.data(), send_args.byte_displs.data(),
            send_args.types.data(), recv_data, recv_args.counts.data(),
            recv_args.byte_displs.data(), recv_args.types.data(), comm_);
    }

    /// @brief alltoall of one element per peer.
    template <typename T>
    void alltoall(T const* send_data, T* recv_data) const {
        XMPI_Alltoall(
            send_data, 1, kamping::mpi_datatype<T>(), recv_data, 1, kamping::mpi_datatype<T>(),
            comm_);
    }

    template <typename T, typename Op>
    void allreduce(Op, T const& in_value, T& out_value) const {
        XMPI_Allreduce(
            &in_value, &out_value, 1, kamping::mpi_datatype<T>(),
            kamping::internal::builtin_op_handle<Op>(), comm_);
    }

private:
    XMPI_Comm comm_;
};

/// @brief The world communicator accessor (mpl::environment::comm_world()).
inline communicator comm_world() {
    return communicator(XMPI_COMM_WORLD);
}

} // namespace mimic::mpl
