/// @file boostmpi.hpp
/// @brief A faithful re-implementation of the Boost.MPI *interface style*
/// over the xmpi substrate, used as a comparator (paper, Section II).
///
/// Characteristic design points reproduced here:
///   - values and std::vectors as buffers; receive vectors are implicitly
///     resized to fit (hidden allocation);
///   - *implicit* serialization: if a type has no MPI datatype, it is
///     transparently serialized — convenient but with hidden cost, the
///     behaviour the paper argues zero-overhead bindings must avoid;
///   - STL functors map to builtin MPI reduction operations;
///   - errors are reported by throwing exceptions;
///   - NO alltoallv binding (Boost.MPI never had one): irregular exchanges
///     go through all_to_all over vector<vector<T>>, which serializes each
///     per-destination vector;
///   - gatherv exists only in the "counts already known" flavour: counts
///     must be communicated by the user first.
#pragma once

#include <numeric>
#include <stdexcept>
#include <vector>

#include "kamping/mpi_datatype.hpp"
#include "kamping/op.hpp"
#include "kaserial/kaserial.hpp"
#include "xmpi/api.hpp"

namespace mimic::boostmpi {

/// @brief Thrown on any MPI error (Boost.MPI style).
class exception : public std::runtime_error {
public:
    explicit exception(int error_code)
        : std::runtime_error(std::string("MPI error: ") + xmpi::error_string(error_code)) {}
};

namespace detail {
inline void check(int error_code) {
    if (error_code != XMPI_SUCCESS) {
        throw exception(error_code);
    }
}

template <typename T>
constexpr bool has_mpi_type = kamping::has_static_type<T>;
} // namespace detail

/// @brief Communicator wrapper (subset of boost::mpi::communicator).
class communicator {
public:
    communicator() : comm_(XMPI_COMM_WORLD) {}
    explicit communicator(XMPI_Comm comm) : comm_(comm) {}

    [[nodiscard]] int rank() const {
        int r = -1;
        XMPI_Comm_rank(comm_, &r);
        return r;
    }
    [[nodiscard]] int size() const {
        int s = 0;
        XMPI_Comm_size(comm_, &s);
        return s;
    }
    [[nodiscard]] XMPI_Comm native() const { return comm_; }

    void barrier() const { detail::check(XMPI_Barrier(comm_)); }

    /// @brief Point-to-point send; serializes implicitly when T has no MPI
    /// datatype (including std::vector<T> of non-MPI types).
    template <typename T>
    void send(int dest, int tag, T const& value) const {
        if constexpr (detail::has_mpi_type<T>) {
            detail::check(
                XMPI_Send(&value, 1, kamping::mpi_datatype<T>(), dest, tag, comm_));
        } else {
            auto const bytes = kaserial::to_bytes(value);
            detail::check(XMPI_Send(
                bytes.data(), static_cast<int>(bytes.size()), XMPI_BYTE, dest, tag, comm_));
        }
    }

    template <typename T>
    void send(int dest, int tag, std::vector<T> const& values) const {
        if constexpr (detail::has_mpi_type<T>) {
            detail::check(XMPI_Send(
                values.data(), static_cast<int>(values.size()), kamping::mpi_datatype<T>(),
                dest, tag, comm_));
        } else {
            auto const bytes = kaserial::to_bytes(values);
            detail::check(XMPI_Send(
                bytes.data(), static_cast<int>(bytes.size()), XMPI_BYTE, dest, tag, comm_));
        }
    }

    template <typename T>
    void recv(int source, int tag, T& value) const {
        if constexpr (detail::has_mpi_type<T>) {
            detail::check(XMPI_Recv(
                &value, 1, kamping::mpi_datatype<T>(), source, tag, comm_,
                XMPI_STATUS_IGNORE));
        } else {
            xmpi::Status status;
            detail::check(XMPI_Probe(source, tag, comm_, &status));
            std::vector<std::byte> bytes(status.bytes);
            detail::check(XMPI_Recv(
                bytes.data(), static_cast<int>(bytes.size()), XMPI_BYTE, status.source,
                status.tag, comm_, XMPI_STATUS_IGNORE));
            value = kaserial::from_bytes<T>(bytes);
        }
    }

    template <typename T>
    void recv(int source, int tag, std::vector<T>& values) const {
        if constexpr (detail::has_mpi_type<T>) {
            xmpi::Status status;
            detail::check(XMPI_Probe(source, tag, comm_, &status));
            values.resize(status.bytes / sizeof(T)); // implicit resize-to-fit
            detail::check(XMPI_Recv(
                values.data(), static_cast<int>(values.size()), kamping::mpi_datatype<T>(),
                status.source, status.tag, comm_, XMPI_STATUS_IGNORE));
        } else {
            T* const type_disambiguator = nullptr;
            (void)type_disambiguator;
            recv<std::vector<T>>(source, tag, values);
        }
    }

private:
    XMPI_Comm comm_;
};

/// @brief broadcast(comm, value, root) with implicit serialization.
template <typename T>
void broadcast(communicator const& comm, T& value, int root) {
    if constexpr (detail::has_mpi_type<T>) {
        detail::check(XMPI_Bcast(&value, 1, kamping::mpi_datatype<T>(), root, comm.native()));
    } else {
        std::uint64_t size = 0;
        std::vector<std::byte> bytes;
        if (comm.rank() == root) {
            bytes = kaserial::to_bytes(value);
            size = bytes.size();
        }
        detail::check(
            XMPI_Bcast(&size, sizeof(size), XMPI_BYTE, root, comm.native()));
        bytes.resize(size);
        detail::check(XMPI_Bcast(
            bytes.data(), static_cast<int>(size), XMPI_BYTE, root, comm.native()));
        if (comm.rank() != root) {
            value = kaserial::from_bytes<T>(bytes);
        }
    }
}

template <typename T>
void broadcast(communicator const& comm, std::vector<T>& values, int root) {
    std::uint64_t size = values.size();
    detail::check(XMPI_Bcast(&size, sizeof(size), XMPI_BYTE, root, comm.native()));
    values.resize(size);
    detail::check(XMPI_Bcast(
        values.data(), static_cast<int>(size), kamping::mpi_datatype<T>(), root,
        comm.native()));
}

/// @brief gather(comm, in_value, out_values, root): one value per rank.
template <typename T>
void gather(communicator const& comm, T const& in_value, std::vector<T>& out_values, int root) {
    if (comm.rank() == root) {
        out_values.resize(static_cast<std::size_t>(comm.size()));
    }
    detail::check(XMPI_Gather(
        &in_value, 1, kamping::mpi_datatype<T>(), out_values.data(), 1,
        kamping::mpi_datatype<T>(), root, comm.native()));
}

/// @brief all_gather(comm, in_value, out_values): one value per rank.
template <typename T>
void all_gather(communicator const& comm, T const& in_value, std::vector<T>& out_values) {
    out_values.resize(static_cast<std::size_t>(comm.size()));
    detail::check(XMPI_Allgather(
        &in_value, 1, kamping::mpi_datatype<T>(), out_values.data(), 1,
        kamping::mpi_datatype<T>(), comm.native()));
}

/// @brief all_gatherv flavour: counts must be provided (Boost.MPI never
/// computes them for the caller; the user communicates them first).
template <typename T>
void all_gatherv(
    communicator const& comm, std::vector<T> const& in_values, std::vector<T>& out_values,
    std::vector<int> const& counts) {
    std::vector<int> displs(counts.size());
    std::exclusive_scan(counts.begin(), counts.end(), displs.begin(), 0);
    out_values.resize(static_cast<std::size_t>(displs.back() + counts.back()));
    detail::check(XMPI_Allgatherv(
        in_values.data(), static_cast<int>(in_values.size()), kamping::mpi_datatype<T>(),
        out_values.data(), counts.data(), displs.data(), kamping::mpi_datatype<T>(),
        comm.native()));
}

/// @brief all_to_all over nested vectors: each inner vector is (implicitly)
/// serialized and shipped — Boost.MPI's only irregular exchange.
template <typename T>
void all_to_all(
    communicator const& comm, std::vector<std::vector<T>> const& out_values,
    std::vector<std::vector<T>>& in_values) {
    int const p = comm.size();
    // Serialize each per-destination vector (the hidden cost).
    std::vector<std::vector<std::byte>> serialized(static_cast<std::size_t>(p));
    std::vector<int> send_counts(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
        serialized[static_cast<std::size_t>(i)] =
            kaserial::to_bytes(out_values[static_cast<std::size_t>(i)]);
        send_counts[static_cast<std::size_t>(i)] =
            static_cast<int>(serialized[static_cast<std::size_t>(i)].size());
    }
    std::vector<int> recv_counts(static_cast<std::size_t>(p));
    detail::check(XMPI_Alltoall(
        send_counts.data(), 1, XMPI_INT, recv_counts.data(), 1, XMPI_INT, comm.native()));
    std::vector<int> send_displs(static_cast<std::size_t>(p));
    std::vector<int> recv_displs(static_cast<std::size_t>(p));
    std::exclusive_scan(send_counts.begin(), send_counts.end(), send_displs.begin(), 0);
    std::exclusive_scan(recv_counts.begin(), recv_counts.end(), recv_displs.begin(), 0);
    std::vector<std::byte> send_stream(
        static_cast<std::size_t>(send_displs.back() + send_counts.back()));
    for (int i = 0; i < p; ++i) {
        std::copy(
            serialized[static_cast<std::size_t>(i)].begin(),
            serialized[static_cast<std::size_t>(i)].end(),
            send_stream.begin() + send_displs[static_cast<std::size_t>(i)]);
    }
    std::vector<std::byte> recv_stream(
        static_cast<std::size_t>(recv_displs.back() + recv_counts.back()));
    detail::check(XMPI_Alltoallv(
        send_stream.data(), send_counts.data(), send_displs.data(), XMPI_BYTE,
        recv_stream.data(), recv_counts.data(), recv_displs.data(), XMPI_BYTE,
        comm.native()));
    in_values.assign(static_cast<std::size_t>(p), {});
    for (int i = 0; i < p; ++i) {
        std::span<std::byte const> const chunk(
            recv_stream.data() + recv_displs[static_cast<std::size_t>(i)],
            static_cast<std::size_t>(recv_counts[static_cast<std::size_t>(i)]));
        in_values[static_cast<std::size_t>(i)] = kaserial::from_bytes<std::vector<T>>(chunk);
    }
}

/// @brief all_reduce with an STL functor mapped to the builtin MPI constant.
template <typename T, typename Op>
T all_reduce(communicator const& comm, T const& in_value, Op) {
    T result{};
    detail::check(XMPI_Allreduce(
        &in_value, &result, 1, kamping::mpi_datatype<T>(),
        kamping::internal::builtin_op_handle<Op>(), comm.native()));
    return result;
}

} // namespace mimic::boostmpi
