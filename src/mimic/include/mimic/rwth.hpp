/// @file rwth.hpp
/// @brief A re-implementation of the RWTH-MPI (Demiralp et al.) *interface
/// style* over the xmpi substrate, used as a comparator (paper, Section II).
///
/// Characteristic design points reproduced here:
///   - full STL support for send/receive buffers with many overloads at
///     different abstraction levels; large parts mirror the C interface;
///   - some overloads omit counts, for which the library performs
///     additional internal communication — but the count-free allgatherv
///     overload only works *in place*: the caller must have placed its data
///     at the correct position, which requires exchanging the counts
///     manually first (paper, Section III-A);
///   - automatic receive-buffer resizing in some calls, can be bypassed;
///   - trivially-copyable types map to MPI types automatically; no
///     serialization, no dynamic types.
#pragma once

#include <numeric>
#include <vector>

#include "kamping/mpi_datatype.hpp"
#include "kamping/op.hpp"
#include "xmpi/api.hpp"

namespace mimic::rwth {

/// @brief Communicator wrapper (subset of the mpi::communicator of
/// RWTH-MPI).
class communicator {
public:
    explicit communicator(XMPI_Comm comm = nullptr)
        : comm_(comm == nullptr ? XMPI_COMM_WORLD : comm) {}

    [[nodiscard]] int rank() const {
        int r = -1;
        XMPI_Comm_rank(comm_, &r);
        return r;
    }
    [[nodiscard]] int size() const {
        int s = 0;
        XMPI_Comm_size(comm_, &s);
        return s;
    }
    [[nodiscard]] XMPI_Comm native() const { return comm_; }

    void barrier() const { XMPI_Barrier(comm_); }

    /// @name Point-to-point with container overloads
    /// @{
    template <typename T>
    void send(std::vector<T> const& data, int dest, int tag = 0) const {
        XMPI_Send(
            data.data(), static_cast<int>(data.size()), kamping::mpi_datatype<T>(), dest, tag,
            comm_);
    }

    /// @brief Receive with automatic resizing (probes for the size).
    template <typename T>
    void receive_resize(std::vector<T>& data, int source, int tag = XMPI_ANY_TAG) const {
        xmpi::Status status;
        XMPI_Probe(source, tag, comm_, &status);
        data.resize(status.bytes / sizeof(T));
        XMPI_Recv(
            data.data(), static_cast<int>(data.size()), kamping::mpi_datatype<T>(),
            status.source, status.tag, comm_, XMPI_STATUS_IGNORE);
    }

    /// @brief Receive into preallocated storage (no resizing).
    template <typename T>
    void receive(std::vector<T>& data, int source, int tag = XMPI_ANY_TAG) const {
        XMPI_Recv(
            data.data(), static_cast<int>(data.size()), kamping::mpi_datatype<T>(), source, tag,
            comm_, XMPI_STATUS_IGNORE);
    }
    /// @}

    template <typename T>
    void broadcast(T& value, int root = 0) const {
        XMPI_Bcast(&value, 1, kamping::mpi_datatype<T>(), root, comm_);
    }

    /// @brief allgather of one value per rank; resizes the output.
    template <typename T>
    void all_gather(T const& in_value, std::vector<T>& out_values) const {
        out_values.resize(static_cast<std::size_t>(size()));
        XMPI_Allgather(
            &in_value, 1, kamping::mpi_datatype<T>(), out_values.data(), 1,
            kamping::mpi_datatype<T>(), comm_);
    }

    /// @brief Fully explicit allgatherv mirroring the C interface.
    template <typename T>
    void all_gather_varying(
        std::vector<T> const& in_values, std::vector<T>& out_values,
        std::vector<int> const& counts, std::vector<int> const& displacements) const {
        out_values.resize(static_cast<std::size_t>(displacements.back() + counts.back()));
        XMPI_Allgatherv(
            in_values.data(), static_cast<int>(in_values.size()), kamping::mpi_datatype<T>(),
            out_values.data(), counts.data(), displacements.data(), kamping::mpi_datatype<T>(),
            comm_);
    }

    /// @brief The count-free overload: gathers the counts internally, but
    /// only works in place — `data` must already contain this rank's
    /// contribution at the correct global position, so the caller has to
    /// exchange count information up front anyway (paper, Section III-A).
    template <typename T>
    void all_gather_varying_inplace(std::vector<T>& data, int local_count, int local_offset) const {
        int const p = size();
        std::vector<int> counts(static_cast<std::size_t>(p));
        XMPI_Allgather(&local_count, 1, XMPI_INT, counts.data(), 1, XMPI_INT, comm_);
        std::vector<int> displacements(static_cast<std::size_t>(p));
        std::exclusive_scan(counts.begin(), counts.end(), displacements.begin(), 0);
        (void)local_offset; // the in-place protocol fixes the position
        XMPI_Allgatherv(
            XMPI_IN_PLACE, 0, XMPI_DATATYPE_NULL, data.data(), counts.data(),
            displacements.data(), kamping::mpi_datatype<T>(), comm_);
    }

    /// @brief alltoallv mirroring the C interface (counts known).
    template <typename T>
    void all_to_all_varying(
        std::vector<T> const& send_data, std::vector<int> const& send_counts,
        std::vector<T>& recv_data, std::vector<int>& recv_counts) const {
        int const p = size();
        recv_counts.resize(static_cast<std::size_t>(p));
        XMPI_Alltoall(
            send_counts.data(), 1, XMPI_INT, recv_counts.data(), 1, XMPI_INT, comm_);
        std::vector<int> send_displs(static_cast<std::size_t>(p));
        std::vector<int> recv_displs(static_cast<std::size_t>(p));
        std::exclusive_scan(send_counts.begin(), send_counts.end(), send_displs.begin(), 0);
        std::exclusive_scan(recv_counts.begin(), recv_counts.end(), recv_displs.begin(), 0);
        recv_data.resize(static_cast<std::size_t>(recv_displs.back() + recv_counts.back()));
        XMPI_Alltoallv(
            send_data.data(), send_counts.data(), send_displs.data(),
            kamping::mpi_datatype<T>(), recv_data.data(), recv_counts.data(),
            recv_displs.data(), kamping::mpi_datatype<T>(), comm_);
    }

    template <typename T, typename Op>
    [[nodiscard]] T all_reduce(T const& in_value, Op) const {
        T result{};
        XMPI_Allreduce(
            &in_value, &result, 1, kamping::mpi_datatype<T>(),
            kamping::internal::builtin_op_handle<Op>(), comm_);
        return result;
    }

private:
    XMPI_Comm comm_;
};

} // namespace mimic::rwth
