/// @file kaserial.hpp
/// @brief kaserial — a compact serialization library in the spirit of cereal.
///
/// The KaMPIng bindings use kaserial for the opt-in serialization path
/// (paper, Section III-D3): non-contiguous data such as std::string or
/// std::unordered_map is packed into a byte buffer before communication and
/// unpacked on the receiver.
///
/// Supported out of the box: arithmetic types, enums, std::string,
/// std::vector, std::array, std::pair, std::tuple, std::optional, std::map,
/// std::unordered_map, std::set, std::unordered_set, and — via reflection —
/// plain aggregates of serializable members. Custom types can provide either
/// a member `template <class Ar> void serialize(Ar&)` or a free function
/// `serialize(Archive&, T&)` found by ADL, exactly like cereal.
///
/// Two archive families demonstrate the configurability the paper mentions:
/// a compact binary format (the default for communication) and a
/// human-readable text format (debugging).
#pragma once

#include <array>
#include <concepts>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <stdexcept>
#include <string>
#include <tuple>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "kaserial/reflect.hpp"

namespace kaserial {

/// @brief Thrown when an input archive runs out of data or sees malformed
/// input.
class SerializationError : public std::runtime_error {
public:
    explicit SerializationError(std::string const& what) : std::runtime_error(what) {}
};

namespace internal {

template <typename T>
concept arithmetic_or_enum = std::is_arithmetic_v<T> || std::is_enum_v<T>;

template <typename Archive, typename T>
concept has_member_serialize = requires(Archive& archive, T& value) { value.serialize(archive); };

template <typename Archive, typename T>
concept has_adl_serialize = requires(Archive& archive, T& value) { serialize(archive, value); };

} // namespace internal

// ---------------------------------------------------------------------------
// Binary archives
// ---------------------------------------------------------------------------

/// @brief Serializes values into a growing byte buffer.
class BinaryOutputArchive {
public:
    explicit BinaryOutputArchive(std::vector<std::byte>& buffer) : buffer_(&buffer) {}

    static constexpr bool is_saving = true;
    static constexpr bool is_loading = false;
    /// Trivial element ranges may be written as one memcpy.
    static constexpr bool supports_bulk_bytes = true;

    /// @brief cereal-style call operator: archive(a, b, c).
    template <typename... Ts>
    BinaryOutputArchive& operator()(Ts&&... values);

    /// @name Primitive hooks used by the shared save/load layer
    /// @{
    template <typename T>
    void write_scalar(T const& value) {
        static_assert(std::is_trivially_copyable_v<T>);
        write_bytes(&value, sizeof(T));
    }

    void write_bytes(void const* data, std::size_t bytes) {
        auto const old_size = buffer_->size();
        buffer_->resize(old_size + bytes);
        std::memcpy(buffer_->data() + old_size, data, bytes);
    }
    /// @}

private:
    std::vector<std::byte>* buffer_;
};

/// @brief Deserializes values from a byte span.
class BinaryInputArchive {
public:
    explicit BinaryInputArchive(std::span<std::byte const> data) : data_(data) {}

    static constexpr bool is_saving = false;
    static constexpr bool is_loading = true;
    static constexpr bool supports_bulk_bytes = true;

    template <typename... Ts>
    BinaryInputArchive& operator()(Ts&&... values);

    /// @name Primitive hooks used by the shared save/load layer
    /// @{
    template <typename T>
    void read_scalar(T& value) {
        static_assert(std::is_trivially_copyable_v<T>);
        read_bytes(&value, sizeof(T));
    }

    void read_bytes(void* data, std::size_t bytes) {
        if (position_ + bytes > data_.size()) {
            throw SerializationError("binary archive exhausted");
        }
        std::memcpy(data, data_.data() + position_, bytes);
        position_ += bytes;
    }
    /// @}

    /// @brief Bytes consumed so far.
    [[nodiscard]] std::size_t position() const { return position_; }
    /// @brief True iff all input has been consumed.
    [[nodiscard]] bool exhausted() const { return position_ == data_.size(); }

private:
    std::span<std::byte const> data_;
    std::size_t position_ = 0;
};

// ---------------------------------------------------------------------------
// Generic serialize() for the supported type families. The functions are
// written once against a Save/Load pair of archive concepts so both the
// binary and the text archives share them.
// ---------------------------------------------------------------------------

namespace internal {

/// @brief Size header type: 64-bit so buffers > 4 GiB are representable.
using SizeTag = std::uint64_t;

template <typename Archive, typename T>
void save_value(Archive& archive, T const& value);
template <typename Archive, typename T>
void load_value(Archive& archive, T& value);

// --- save ---

template <typename Archive, typename T>
    requires arithmetic_or_enum<T>
void save_one(Archive& archive, T const& value) {
    archive.write_scalar(value);
}

template <typename Archive>
void save_one(Archive& archive, std::string const& value) {
    archive.write_scalar(static_cast<SizeTag>(value.size()));
    archive.write_bytes(value.data(), value.size());
}

template <typename Archive, typename T, typename Alloc>
void save_one(Archive& archive, std::vector<T, Alloc> const& value) {
    archive.write_scalar(static_cast<SizeTag>(value.size()));
    if constexpr (arithmetic_or_enum<T> && Archive::supports_bulk_bytes) {
        archive.write_bytes(value.data(), value.size() * sizeof(T));
    } else {
        for (auto const& element: value) {
            save_value(archive, element);
        }
    }
}

template <typename Archive, typename T, std::size_t N>
void save_one(Archive& archive, std::array<T, N> const& value) {
    for (auto const& element: value) {
        save_value(archive, element);
    }
}

template <typename Archive, typename A, typename B>
void save_one(Archive& archive, std::pair<A, B> const& value) {
    save_value(archive, value.first);
    save_value(archive, value.second);
}

template <typename Archive, typename... Ts>
void save_one(Archive& archive, std::tuple<Ts...> const& value) {
    std::apply([&](auto const&... elements) { (save_value(archive, elements), ...); }, value);
}

template <typename Archive, typename T>
void save_one(Archive& archive, std::optional<T> const& value) {
    archive.write_scalar(static_cast<std::uint8_t>(value.has_value() ? 1 : 0));
    if (value.has_value()) {
        save_value(archive, *value);
    }
}

template <typename Archive, typename Container>
void save_sized_range(Archive& archive, Container const& value) {
    archive.write_scalar(static_cast<SizeTag>(value.size()));
    for (auto const& element: value) {
        save_value(archive, element);
    }
}

template <typename Archive, typename K, typename V, typename C, typename A>
void save_one(Archive& archive, std::map<K, V, C, A> const& value) {
    save_sized_range(archive, value);
}
template <typename Archive, typename K, typename V, typename H, typename E, typename A>
void save_one(Archive& archive, std::unordered_map<K, V, H, E, A> const& value) {
    save_sized_range(archive, value);
}
template <typename Archive, typename K, typename C, typename A>
void save_one(Archive& archive, std::set<K, C, A> const& value) {
    save_sized_range(archive, value);
}
template <typename Archive, typename K, typename H, typename E, typename A>
void save_one(Archive& archive, std::unordered_set<K, H, E, A> const& value) {
    save_sized_range(archive, value);
}

// --- load ---

template <typename Archive, typename T>
    requires arithmetic_or_enum<T>
void load_one(Archive& archive, T& value) {
    archive.read_scalar(value);
}

template <typename Archive>
void load_one(Archive& archive, std::string& value) {
    SizeTag size = 0;
    archive.read_scalar(size);
    value.resize(static_cast<std::size_t>(size));
    archive.read_bytes(value.data(), value.size());
}

template <typename Archive, typename T, typename Alloc>
void load_one(Archive& archive, std::vector<T, Alloc>& value) {
    SizeTag size = 0;
    archive.read_scalar(size);
    value.resize(static_cast<std::size_t>(size));
    if constexpr (arithmetic_or_enum<T> && Archive::supports_bulk_bytes) {
        archive.read_bytes(value.data(), value.size() * sizeof(T));
    } else {
        for (auto& element: value) {
            load_value(archive, element);
        }
    }
}

template <typename Archive, typename T, std::size_t N>
void load_one(Archive& archive, std::array<T, N>& value) {
    for (auto& element: value) {
        load_value(archive, element);
    }
}

template <typename Archive, typename A, typename B>
void load_one(Archive& archive, std::pair<A, B>& value) {
    load_value(archive, value.first);
    load_value(archive, value.second);
}

template <typename Archive, typename... Ts>
void load_one(Archive& archive, std::tuple<Ts...>& value) {
    std::apply([&](auto&... elements) { (load_value(archive, elements), ...); }, value);
}

template <typename Archive, typename T>
void load_one(Archive& archive, std::optional<T>& value) {
    std::uint8_t engaged = 0;
    archive.read_scalar(engaged);
    if (engaged != 0) {
        T element{};
        load_value(archive, element);
        value = std::move(element);
    } else {
        value.reset();
    }
}

template <typename Archive, typename Container, typename Element>
void load_keyed_container(Archive& archive, Container& value) {
    SizeTag size = 0;
    archive.read_scalar(size);
    value.clear();
    for (SizeTag i = 0; i < size; ++i) {
        Element element{};
        load_value(archive, element);
        value.insert(std::move(element));
    }
}

template <typename Archive, typename K, typename V, typename C, typename A>
void load_one(Archive& archive, std::map<K, V, C, A>& value) {
    load_keyed_container<Archive, std::map<K, V, C, A>, std::pair<K, V>>(archive, value);
}
template <typename Archive, typename K, typename V, typename H, typename E, typename A>
void load_one(Archive& archive, std::unordered_map<K, V, H, E, A>& value) {
    load_keyed_container<Archive, std::unordered_map<K, V, H, E, A>, std::pair<K, V>>(
        archive, value);
}
template <typename Archive, typename K, typename C, typename A>
void load_one(Archive& archive, std::set<K, C, A>& value) {
    load_keyed_container<Archive, std::set<K, C, A>, K>(archive, value);
}
template <typename Archive, typename K, typename H, typename E, typename A>
void load_one(Archive& archive, std::unordered_set<K, H, E, A>& value) {
    load_keyed_container<Archive, std::unordered_set<K, H, E, A>, K>(archive, value);
}

// --- dispatch: custom serialize() > built-in family > reflected aggregate ---

template <typename Archive, typename T>
concept has_builtin_save = requires(Archive& archive, T const& value) { save_one(archive, value); };
template <typename Archive, typename T>
concept has_builtin_load = requires(Archive& archive, T& value) { load_one(archive, value); };

template <typename Archive, typename T>
void save_value(Archive& archive, T const& value) {
    using Decayed = std::remove_cvref_t<T>;
    if constexpr (has_member_serialize<Archive, Decayed>) {
        const_cast<Decayed&>(value).serialize(archive);
    } else if constexpr (has_adl_serialize<Archive, Decayed>) {
        serialize(archive, const_cast<Decayed&>(value));
    } else if constexpr (has_builtin_save<Archive, Decayed>) {
        save_one(archive, value);
    } else if constexpr (reflect::reflectable<Decayed>) {
        reflect::visit_members(
            value, [&](auto const&... members) { (save_value(archive, members), ...); });
    } else {
        static_assert(
            sizeof(T) == 0,
            "kaserial: type is not serializable — provide serialize(Archive&, T&) or a member "
            "serialize()");
    }
}

template <typename Archive, typename T>
void load_value(Archive& archive, T& value) {
    using Decayed = std::remove_cvref_t<T>;
    if constexpr (has_member_serialize<Archive, Decayed>) {
        value.serialize(archive);
    } else if constexpr (has_adl_serialize<Archive, Decayed>) {
        serialize(archive, value);
    } else if constexpr (has_builtin_load<Archive, Decayed>) {
        load_one(archive, value);
    } else if constexpr (reflect::reflectable<Decayed>) {
        reflect::visit_members(
            value, [&](auto&... members) { (load_value(archive, members), ...); });
    } else {
        static_assert(
            sizeof(T) == 0,
            "kaserial: type is not deserializable — provide serialize(Archive&, T&) or a member "
            "serialize()");
    }
}

} // namespace internal

template <typename... Ts>
BinaryOutputArchive& BinaryOutputArchive::operator()(Ts&&... values) {
    (internal::save_value(*this, values), ...);
    return *this;
}

template <typename... Ts>
BinaryInputArchive& BinaryInputArchive::operator()(Ts&&... values) {
    (internal::load_value(*this, values), ...);
    return *this;
}

// ---------------------------------------------------------------------------
// Convenience helpers
// ---------------------------------------------------------------------------

/// @brief Serializes a value into a fresh byte buffer (binary format).
template <typename T>
std::vector<std::byte> to_bytes(T const& value) {
    std::vector<std::byte> buffer;
    BinaryOutputArchive archive(buffer);
    archive(value);
    return buffer;
}

/// @brief Deserializes a value of type T from a byte span (binary format).
template <typename T>
T from_bytes(std::span<std::byte const> data) {
    T value{};
    BinaryInputArchive archive(data);
    archive(value);
    return value;
}

} // namespace kaserial
