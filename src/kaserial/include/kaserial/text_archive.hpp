/// @file text_archive.hpp
/// @brief Human-readable text archives for kaserial.
///
/// Demonstrates the archive configurability the paper attributes to cereal
/// (Section III-D3: "users [can] specify custom serialization functions and
/// archives, e.g., binary formats, JSON, or XML"). The format is a flat
/// token stream: scalars as shortest-roundtrip decimal tokens, byte blocks
/// as length-prefixed raw bytes. Round-trip safe, diffable, debuggable.
#pragma once

#include <charconv>
#include <cstddef>
#include <cstring>
#include <string>
#include <type_traits>

#include "kaserial/kaserial.hpp"

namespace kaserial {

/// @brief Serializes values into a whitespace-separated text buffer.
class TextOutputArchive {
public:
    explicit TextOutputArchive(std::string& buffer) : buffer_(&buffer) {}

    static constexpr bool is_saving = true;
    static constexpr bool is_loading = false;
    /// Element-wise text output; no bulk memcpy path.
    static constexpr bool supports_bulk_bytes = false;

    template <typename... Ts>
    TextOutputArchive& operator()(Ts&&... values) {
        (internal::save_value(*this, values), ...);
        return *this;
    }

    /// @name Primitive hooks
    /// @{
    template <typename T>
    void write_scalar(T const& value) {
        char token[64];
        auto const numeric = to_numeric(value);
        auto const [end, errc] = std::to_chars(token, token + sizeof(token), numeric);
        buffer_->append(token, static_cast<std::size_t>(end - token));
        buffer_->push_back(' ');
    }

    void write_bytes(void const* data, std::size_t bytes) {
        buffer_->append(static_cast<char const*>(data), bytes);
        buffer_->push_back(' ');
    }
    /// @}

private:
    template <typename T>
    static auto to_numeric(T const& value) {
        if constexpr (std::is_enum_v<T>) {
            return static_cast<std::underlying_type_t<T>>(value);
        } else if constexpr (std::is_same_v<T, bool>) {
            return static_cast<int>(value);
        } else {
            return value;
        }
    }

    std::string* buffer_;
};

/// @brief Deserializes values from a text buffer produced by
/// TextOutputArchive.
class TextInputArchive {
public:
    explicit TextInputArchive(std::string_view data) : data_(data) {}

    static constexpr bool is_saving = false;
    static constexpr bool is_loading = true;
    static constexpr bool supports_bulk_bytes = false;

    template <typename... Ts>
    TextInputArchive& operator()(Ts&&... values) {
        (internal::load_value(*this, values), ...);
        return *this;
    }

    /// @name Primitive hooks
    /// @{
    template <typename T>
    void read_scalar(T& value) {
        auto const token_end = data_.find(' ', position_);
        if (token_end == std::string_view::npos) {
            throw SerializationError("text archive exhausted");
        }
        char const* const first = data_.data() + position_;
        char const* const last = data_.data() + token_end;
        if constexpr (std::is_enum_v<T>) {
            std::underlying_type_t<T> raw{};
            parse(first, last, raw);
            value = static_cast<T>(raw);
        } else if constexpr (std::is_same_v<T, bool>) {
            int raw = 0;
            parse(first, last, raw);
            value = raw != 0;
        } else {
            parse(first, last, value);
        }
        position_ = token_end + 1;
    }

    void read_bytes(void* data, std::size_t bytes) {
        if (position_ + bytes + 1 > data_.size()) {
            throw SerializationError("text archive exhausted");
        }
        std::memcpy(data, data_.data() + position_, bytes);
        position_ += bytes + 1; // consume the trailing separator
    }
    /// @}

    [[nodiscard]] bool exhausted() const { return position_ >= data_.size(); }

private:
    template <typename T>
    static void parse(char const* first, char const* last, T& value) {
        auto const [ptr, errc] = std::from_chars(first, last, value);
        if (errc != std::errc{} || ptr != last) {
            throw SerializationError(
                "text archive: malformed token '" + std::string(first, last) + "'");
        }
    }

    std::string_view data_;
    std::size_t position_ = 0;
};

/// @brief Serializes a value into a fresh text buffer.
template <typename T>
std::string to_text(T const& value) {
    std::string buffer;
    TextOutputArchive archive(buffer);
    archive(value);
    return buffer;
}

/// @brief Deserializes a value of type T from a text buffer.
template <typename T>
T from_text(std::string_view data) {
    T value{};
    TextInputArchive archive(data);
    archive(value);
    return value;
}

} // namespace kaserial
