/// @file reflect.hpp
/// @brief Compile-time aggregate reflection (a minimal Boost.PFR equivalent).
///
/// Counts the members of a plain aggregate via aggregate-initializability and
/// exposes them as references through structured bindings. Used by the
/// KaMPIng type system to build MPI struct datatypes automatically (paper,
/// Section III-D1) and by kaserial to serialize plain structs.
///
/// Limitations (same spirit as PFR): only aggregates without base classes;
/// use std::array instead of C arrays (brace elision breaks the arity count).
#pragma once

#include <array>
#include <cstddef>
#include <type_traits>
#include <utility>

namespace kaserial::reflect {

namespace internal {

/// @brief Placeholder implicitly convertible to anything (except the
/// aggregate itself, to avoid counting copy construction as arity 1).
template <typename Aggregate>
struct AnyValue {
    template <typename T>
        requires(!std::is_same_v<std::remove_cvref_t<T>, Aggregate>)
    operator T() const; // never defined; used in unevaluated contexts only
};

template <typename T, std::size_t... Indices>
constexpr bool initializable_with_seq(std::index_sequence<Indices...>) {
    return requires { T{(static_cast<void>(Indices), std::declval<AnyValue<T>>())...}; };
}

template <typename T, std::size_t N>
constexpr bool initializable_with() {
    return initializable_with_seq<T>(std::make_index_sequence<N>{});
}

inline constexpr std::size_t max_arity = 24;

template <typename T, std::size_t N = max_arity>
constexpr std::size_t arity_impl() {
    if constexpr (N == 0) {
        return 0;
    } else if constexpr (initializable_with<T, N>()) {
        return N;
    } else {
        return arity_impl<T, N - 1>();
    }
}

} // namespace internal

/// @brief True iff T is a reflectable aggregate.
template <typename T>
concept reflectable = std::is_aggregate_v<std::remove_cvref_t<T>>
                      && !std::is_array_v<std::remove_cvref_t<T>>;

/// @brief Number of direct members of the aggregate.
template <reflectable T>
inline constexpr std::size_t arity = internal::arity_impl<std::remove_cvref_t<T>>();

/// @brief Invokes @c f with references to all members of @c value.
template <typename T, typename F>
    requires reflectable<T>
constexpr decltype(auto) visit_members(T&& value, F&& f) {
    constexpr std::size_t n = arity<T>;
    static_assert(n <= internal::max_arity, "aggregate has too many members for reflection");
    if constexpr (n == 0) {
        return std::forward<F>(f)();
    } else if constexpr (n == 1) {
        auto&& [m1] = value;
        return std::forward<F>(f)(m1);
    } else if constexpr (n == 2) {
        auto&& [m1, m2] = value;
        return std::forward<F>(f)(m1, m2);
    } else if constexpr (n == 3) {
        auto&& [m1, m2, m3] = value;
        return std::forward<F>(f)(m1, m2, m3);
    } else if constexpr (n == 4) {
        auto&& [m1, m2, m3, m4] = value;
        return std::forward<F>(f)(m1, m2, m3, m4);
    } else if constexpr (n == 5) {
        auto&& [m1, m2, m3, m4, m5] = value;
        return std::forward<F>(f)(m1, m2, m3, m4, m5);
    } else if constexpr (n == 6) {
        auto&& [m1, m2, m3, m4, m5, m6] = value;
        return std::forward<F>(f)(m1, m2, m3, m4, m5, m6);
    } else if constexpr (n == 7) {
        auto&& [m1, m2, m3, m4, m5, m6, m7] = value;
        return std::forward<F>(f)(m1, m2, m3, m4, m5, m6, m7);
    } else if constexpr (n == 8) {
        auto&& [m1, m2, m3, m4, m5, m6, m7, m8] = value;
        return std::forward<F>(f)(m1, m2, m3, m4, m5, m6, m7, m8);
    } else if constexpr (n == 9) {
        auto&& [m1, m2, m3, m4, m5, m6, m7, m8, m9] = value;
        return std::forward<F>(f)(m1, m2, m3, m4, m5, m6, m7, m8, m9);
    } else if constexpr (n == 10) {
        auto&& [m1, m2, m3, m4, m5, m6, m7, m8, m9, m10] = value;
        return std::forward<F>(f)(m1, m2, m3, m4, m5, m6, m7, m8, m9, m10);
    } else if constexpr (n == 11) {
        auto&& [m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11] = value;
        return std::forward<F>(f)(m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11);
    } else if constexpr (n == 12) {
        auto&& [m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12] = value;
        return std::forward<F>(f)(m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12);
    } else if constexpr (n == 13) {
        auto&& [m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13] = value;
        return std::forward<F>(f)(m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13);
    } else if constexpr (n == 14) {
        auto&& [m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14] = value;
        return std::forward<F>(f)(m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14);
    } else if constexpr (n == 15) {
        auto&& [m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15] = value;
        return std::forward<F>(f)(
            m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15);
    } else if constexpr (n == 16) {
        auto&& [m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15, m16] = value;
        return std::forward<F>(f)(
            m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15, m16);
    } else if constexpr (n == 17) {
        auto&& [m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15, m16, m17] =
            value;
        return std::forward<F>(f)(
            m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15, m16, m17);
    } else if constexpr (n == 18) {
        auto&& [m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15, m16, m17,
                m18] = value;
        return std::forward<F>(f)(
            m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15, m16, m17, m18);
    } else if constexpr (n == 19) {
        auto&& [m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15, m16, m17, m18,
                m19] = value;
        return std::forward<F>(f)(
            m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15, m16, m17, m18,
            m19);
    } else if constexpr (n == 20) {
        auto&& [m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15, m16, m17, m18,
                m19, m20] = value;
        return std::forward<F>(f)(
            m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15, m16, m17, m18, m19,
            m20);
    } else if constexpr (n == 21) {
        auto&& [m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15, m16, m17, m18,
                m19, m20, m21] = value;
        return std::forward<F>(f)(
            m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15, m16, m17, m18, m19,
            m20, m21);
    } else if constexpr (n == 22) {
        auto&& [m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15, m16, m17, m18,
                m19, m20, m21, m22] = value;
        return std::forward<F>(f)(
            m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15, m16, m17, m18, m19,
            m20, m21, m22);
    } else if constexpr (n == 23) {
        auto&& [m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15, m16, m17, m18,
                m19, m20, m21, m22, m23] = value;
        return std::forward<F>(f)(
            m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15, m16, m17, m18, m19,
            m20, m21, m22, m23);
    } else {
        auto&& [m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15, m16, m17, m18,
                m19, m20, m21, m22, m23, m24] = value;
        return std::forward<F>(f)(
            m1, m2, m3, m4, m5, m6, m7, m8, m9, m10, m11, m12, m13, m14, m15, m16, m17, m18, m19,
            m20, m21, m22, m23, m24);
    }
}

/// @brief Member byte offsets within the aggregate, in declaration order.
template <reflectable T>
std::array<std::ptrdiff_t, arity<T>> member_offsets(T const& value) {
    std::array<std::ptrdiff_t, arity<T>> offsets{};
    auto const* base = reinterpret_cast<char const*>(&value);
    visit_members(value, [&](auto const&... members) {
        std::size_t index = 0;
        ((offsets[index++] = reinterpret_cast<char const*>(&members) - base), ...);
    });
    return offsets;
}

} // namespace kaserial::reflect
