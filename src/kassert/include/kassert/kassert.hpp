/// @file kassert.hpp
/// @brief Levelled assertion library in the spirit of the KASSERT library used
/// by KaMPIng.
///
/// Assertions are grouped in levels of increasing cost (see
/// kassert::assertion_level). A level is active iff it is less than or equal
/// to the compile-time threshold @c KASSERT_ASSERTION_LEVEL (defaults to
/// kassert::assertion_level::normal). Inactive assertions compile to nothing,
/// so even assertions that would require communication can be left in the
/// code and switched on level-by-level for debugging (paper, Section III-G).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <string>

namespace kassert {

/// @brief Assertion levels, ordered by cost of the checks they guard.
namespace assertion_level {
/// Checks that are (almost) free, e.g. null checks.
inline constexpr int light = 10;
/// Default level: cheap invariant checks, e.g. bounds and size checks.
inline constexpr int normal = 20;
/// Expensive local checks, e.g. "the input range is sorted".
inline constexpr int heavy = 30;
/// Checks that require additional communication, e.g. "all ranks pass the
/// same root to this collective".
inline constexpr int communication = 40;
} // namespace assertion_level

#ifndef KASSERT_ASSERTION_LEVEL
#define KASSERT_ASSERTION_LEVEL ::kassert::assertion_level::normal
#endif

/// @brief Exception thrown by @c THROWING_KASSERT on usage errors.
class AssertionFailed : public std::runtime_error {
public:
    explicit AssertionFailed(std::string const& what) : std::runtime_error(what) {}
};

/// @brief Handler invoked when a (non-throwing) assertion fails. Replaceable
/// for testing; the default prints and aborts.
using FailureHandler = std::function<void(std::string const&)>;

namespace internal {
inline FailureHandler& failure_handler() {
    static FailureHandler handler = [](std::string const& message) {
        std::fputs(message.c_str(), stderr);
        std::fputc('\n', stderr);
        std::abort();
    };
    return handler;
}

inline std::string format_failure(
    char const* expression, std::string const& message, char const* file, int line) {
    std::ostringstream out;
    out << file << ':' << line << ": assertion `" << expression << "` failed";
    if (!message.empty()) {
        out << ": " << message;
    }
    return out.str();
}

[[noreturn]] inline void
fail(char const* expression, std::string const& message, char const* file, int line) {
    failure_handler()(format_failure(expression, message, file, line));
    // The handler is expected not to return; make sure we never do.
    std::abort();
}

[[noreturn]] inline void
fail_throwing(char const* expression, std::string const& message, char const* file, int line) {
    throw AssertionFailed(format_failure(expression, message, file, line));
}
} // namespace internal

/// @brief Replaces the global failure handler (used by unit tests to observe
/// assertion failures without aborting). Returns the previous handler.
inline FailureHandler set_failure_handler(FailureHandler handler) {
    auto previous = internal::failure_handler();
    internal::failure_handler() = std::move(handler);
    return previous;
}

} // namespace kassert

/// @brief True iff assertions of the given level are compiled in.
#define KASSERT_ENABLED(level) ((level) <= KASSERT_ASSERTION_LEVEL)

#define KASSERT_IMPL_3(expression, message_expr, level)                                   \
    do {                                                                                  \
        if constexpr (KASSERT_ENABLED(level)) {                                           \
            if (!(expression)) {                                                          \
                std::ostringstream kassert_message_stream;                                \
                kassert_message_stream << message_expr;                                   \
                ::kassert::internal::fail(                                                \
                    #expression, kassert_message_stream.str(), __FILE__, __LINE__);       \
            }                                                                             \
        }                                                                                 \
    } while (false)

#define KASSERT_IMPL_2(expression, message_expr) \
    KASSERT_IMPL_3(expression, message_expr, ::kassert::assertion_level::normal)

#define KASSERT_IMPL_1(expression) KASSERT_IMPL_2(expression, "")

#define KASSERT_GET_MACRO(_1, _2, _3, NAME, ...) NAME

/// @brief Levelled assertion: KASSERT(expr), KASSERT(expr, message) or
/// KASSERT(expr, message, level). The message may use stream syntax:
/// KASSERT(a == b, "a was " << a).
#define KASSERT(...) \
    KASSERT_GET_MACRO(__VA_ARGS__, KASSERT_IMPL_3, KASSERT_IMPL_2, KASSERT_IMPL_1)(__VA_ARGS__)

/// @brief Like KASSERT but throws kassert::AssertionFailed instead of calling
/// the failure handler. Used for recoverable usage errors. Always enabled.
#define THROWING_KASSERT(expression, message_expr)                                   \
    do {                                                                             \
        if (!(expression)) {                                                         \
            std::ostringstream kassert_message_stream;                               \
            kassert_message_stream << message_expr;                                  \
            ::kassert::internal::fail_throwing(                                      \
                #expression, kassert_message_stream.str(), __FILE__, __LINE__);      \
        }                                                                            \
    } while (false)
