/// @file raxml.hpp
/// @brief A synthetic stand-in for RAxML-NG's parallelization layer (paper,
/// Section IV-C). The paper's experiment replaces RAxML-NG's hand-written
/// MPI + serialization abstraction (~700 LoC) with KaMPIng and verifies
/// that (a) behaviour is unchanged and (b) there is no measurable overhead
/// at ~700 MPI calls per second.
///
/// This module reproduces the *communication structure* of that experiment
/// with a synthetic maximum-likelihood search kernel:
///   - sites are block-distributed; evaluating a model = local loop over
///     sites + allreduce of the log-likelihood;
///   - a hill-climbing search proposes model changes; the master
///     periodically broadcasts the (heap-backed) model to all workers —
///     the serialized broadcast of the paper's Fig. 11.
///
/// Two interchangeable parallel contexts implement the layer: the legacy
/// one with a hand-rolled binary stream (the "Before" in Fig. 11), and the
/// KaMPIng one (the "After": a single bcast(send_recv_buf(as_serialized()))).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "xmpi/api.hpp"

namespace apps::raxml {

/// @brief The evolving "model": named parameters, a heap-backed structure
/// that must be serialized for broadcast (like RAxML-NG's model objects).
struct Model {
    std::map<std::string, double> parameters;
    std::uint64_t generation = 0;

    bool operator==(Model const&) const = default;

    template <typename Archive>
    void serialize(Archive& archive) {
        archive(parameters, generation);
    }
};

/// @brief Which abstraction layer backs the run.
enum class Layer {
    legacy,  ///< hand-written binary stream + raw bcast wrappers ("Before")
    kamping, ///< KaMPIng serialized broadcast ("After")
};

struct SearchResult {
    Model best_model;
    double best_log_likelihood = 0.0;
    std::uint64_t mpi_calls = 0;    ///< XMPI calls issued by this rank
    double elapsed_seconds = 0.0;
};

/// @brief Runs the synthetic ML search: @c sites_per_rank synthetic
/// alignment sites per rank, @c iterations hill-climbing steps. Both layers
/// produce bit-identical results; the benchmark compares their overhead.
SearchResult run_search(
    std::size_t sites_per_rank, int iterations, Layer layer, std::uint64_t seed,
    XMPI_Comm comm);

} // namespace apps::raxml
