/// @file prefix_doubling_mpi.hpp
/// @brief The same distributed prefix-doubling algorithm as
/// prefix_doubling.hpp, hand-written against the plain (X)MPI C API — the
/// paper's 426-LoC comparison point (Section IV-A): every count,
/// displacement, datatype and sort step spelled out manually.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "apps/suffix/prefix_doubling.hpp" // PdTuple
#include "xmpi/api.hpp"

namespace apps::suffix {
namespace internal {

/// @brief Hand-rolled distributed sample sort of PdTuples over plain MPI
/// (the "1442 LoC of wrapped MPI functionality" the paper's plain-MPI
/// comparison point drags along, in miniature).
inline void sort_tuples_mpi(std::vector<PdTuple>& tuples, XMPI_Comm comm) {
    int p = 0;
    int rank = -1;
    XMPI_Comm_size(comm, &p);
    XMPI_Comm_rank(comm, &rank);
    if (p == 1) {
        std::sort(tuples.begin(), tuples.end());
        return;
    }
    XMPI_Datatype tuple_type = XMPI_DATATYPE_NULL;
    XMPI_Type_contiguous(sizeof(PdTuple), XMPI_BYTE, &tuple_type);
    XMPI_Type_commit(&tuple_type);

    std::size_t const num_samples =
        16 * static_cast<std::size_t>(std::log2(static_cast<double>(p))) + 1;
    std::vector<PdTuple> local_samples(std::min(num_samples, tuples.size()));
    std::sample(
        tuples.begin(), tuples.end(), local_samples.begin(), local_samples.size(),
        std::mt19937{static_cast<std::uint32_t>(rank) * 31u + 7u});

    int const sample_count = static_cast<int>(local_samples.size());
    std::vector<int> sample_counts(static_cast<std::size_t>(p));
    XMPI_Allgather(&sample_count, 1, XMPI_INT, sample_counts.data(), 1, XMPI_INT, comm);
    std::vector<int> sample_displs(static_cast<std::size_t>(p));
    std::exclusive_scan(sample_counts.begin(), sample_counts.end(), sample_displs.begin(), 0);
    std::vector<PdTuple> samples(
        static_cast<std::size_t>(sample_displs.back() + sample_counts.back()));
    XMPI_Allgatherv(
        local_samples.data(), sample_count, tuple_type, samples.data(), sample_counts.data(),
        sample_displs.data(), tuple_type, comm);
    std::sort(samples.begin(), samples.end());

    std::vector<PdTuple> splitters;
    for (int i = 1; i < p && !samples.empty(); ++i) {
        splitters.push_back(samples[std::min(
            static_cast<std::size_t>(i) * samples.size() / static_cast<std::size_t>(p),
            samples.size() - 1)]);
    }

    std::sort(tuples.begin(), tuples.end());
    std::vector<int> send_counts(static_cast<std::size_t>(p), 0);
    std::size_t begin = 0;
    for (int bucket = 0; bucket < p; ++bucket) {
        std::size_t end = tuples.size();
        if (bucket < static_cast<int>(splitters.size())) {
            end = static_cast<std::size_t>(
                std::upper_bound(
                    tuples.begin() + static_cast<std::ptrdiff_t>(begin), tuples.end(),
                    splitters[static_cast<std::size_t>(bucket)])
                - tuples.begin());
        }
        send_counts[static_cast<std::size_t>(bucket)] = static_cast<int>(end - begin);
        begin = end;
    }
    std::vector<int> send_displs(static_cast<std::size_t>(p));
    std::exclusive_scan(send_counts.begin(), send_counts.end(), send_displs.begin(), 0);
    std::vector<int> recv_counts(static_cast<std::size_t>(p));
    XMPI_Alltoall(send_counts.data(), 1, XMPI_INT, recv_counts.data(), 1, XMPI_INT, comm);
    std::vector<int> recv_displs(static_cast<std::size_t>(p));
    std::exclusive_scan(recv_counts.begin(), recv_counts.end(), recv_displs.begin(), 0);
    std::vector<PdTuple> received(
        static_cast<std::size_t>(recv_displs.back() + recv_counts.back()));
    XMPI_Alltoallv(
        tuples.data(), send_counts.data(), send_displs.data(), tuple_type, received.data(),
        recv_counts.data(), recv_displs.data(), tuple_type, comm);
    XMPI_Type_free(&tuple_type);
    std::sort(received.begin(), received.end());
    tuples = std::move(received);
}

} // namespace internal

/// @brief Plain-MPI distributed prefix doubling; identical semantics to
/// suffix_array_prefix_doubling_kamping().
inline std::vector<std::uint64_t> suffix_array_prefix_doubling_mpi(
    std::string const& local_text, XMPI_Comm comm) {
    using internal::PdTuple;
    int p = 0;
    int rank = -1;
    XMPI_Comm_size(comm, &p);
    XMPI_Comm_rank(comm, &rank);

    // Block distribution, gathered by hand.
    std::uint64_t const my_size = local_text.size();
    std::vector<std::uint64_t> sizes(static_cast<std::size_t>(p));
    XMPI_Allgather(
        &my_size, 1, XMPI_UNSIGNED_LONG_LONG, sizes.data(), 1, XMPI_UNSIGNED_LONG_LONG, comm);
    std::vector<std::uint64_t> distribution(static_cast<std::size_t>(p) + 1, 0);
    std::inclusive_scan(sizes.begin(), sizes.end(), distribution.begin() + 1);
    std::uint64_t const n = distribution.back();
    std::uint64_t const first = distribution[static_cast<std::size_t>(rank)];
    std::uint64_t const last = distribution[static_cast<std::size_t>(rank) + 1];

    std::vector<std::uint64_t> names(local_text.size());
    for (std::size_t i = 0; i < local_text.size(); ++i) {
        names[i] = static_cast<unsigned char>(local_text[i]) + 1u;
    }

    std::vector<PdTuple> tuples;
    for (std::uint64_t h = 1;; h *= 2) {
        // Shift exchange for names[i + h], all counts computed by hand.
        std::vector<int> shift_send_counts(static_cast<std::size_t>(p), 0);
        std::vector<int> shift_send_displs(static_cast<std::size_t>(p), 0);
        for (int q = 0; q < p; ++q) {
            std::uint64_t const need_lo =
                std::min(distribution[static_cast<std::size_t>(q)] + h, n);
            std::uint64_t const need_hi =
                std::min(distribution[static_cast<std::size_t>(q) + 1] + h, n);
            std::uint64_t const lo = std::max(first, need_lo);
            std::uint64_t const hi = std::min(last, need_hi);
            if (lo < hi) {
                shift_send_counts[static_cast<std::size_t>(q)] = static_cast<int>(hi - lo);
                shift_send_displs[static_cast<std::size_t>(q)] = static_cast<int>(lo - first);
            }
        }
        std::vector<int> shift_recv_counts(static_cast<std::size_t>(p));
        XMPI_Alltoall(
            shift_send_counts.data(), 1, XMPI_INT, shift_recv_counts.data(), 1, XMPI_INT, comm);
        std::vector<int> shift_recv_displs(static_cast<std::size_t>(p));
        std::exclusive_scan(
            shift_recv_counts.begin(), shift_recv_counts.end(), shift_recv_displs.begin(), 0);
        std::vector<std::uint64_t> shifted(
            static_cast<std::size_t>(shift_recv_displs.back() + shift_recv_counts.back()));
        XMPI_Alltoallv(
            names.data(), shift_send_counts.data(), shift_send_displs.data(),
            XMPI_UNSIGNED_LONG_LONG, shifted.data(), shift_recv_counts.data(),
            shift_recv_displs.data(), XMPI_UNSIGNED_LONG_LONG, comm);
        shifted.resize(last - first, 0);

        tuples.resize(names.size());
        for (std::size_t i = 0; i < names.size(); ++i) {
            tuples[i] = {names[i], shifted[i], first + i};
        }
        internal::sort_tuples_mpi(tuples, comm);

        // Boundary exchange for the naming pass.
        XMPI_Datatype tuple_type = XMPI_DATATYPE_NULL;
        XMPI_Type_contiguous(sizeof(PdTuple), XMPI_BYTE, &tuple_type);
        XMPI_Type_commit(&tuple_type);
        PdTuple const boundary = tuples.empty() ? PdTuple{0, 0, 0} : tuples.back();
        std::vector<PdTuple> boundaries(static_cast<std::size_t>(p));
        XMPI_Allgather(&boundary, 1, tuple_type, boundaries.data(), 1, tuple_type, comm);
        std::uint64_t const my_count = tuples.size();
        std::vector<std::uint64_t> counts_all(static_cast<std::size_t>(p));
        XMPI_Allgather(
            &my_count, 1, XMPI_UNSIGNED_LONG_LONG, counts_all.data(), 1,
            XMPI_UNSIGNED_LONG_LONG, comm);
        PdTuple predecessor{~0ull, ~0ull, ~0ull};
        bool have_predecessor = false;
        for (int r = rank - 1; r >= 0; --r) {
            if (counts_all[static_cast<std::size_t>(r)] > 0) {
                predecessor = boundaries[static_cast<std::size_t>(r)];
                have_predecessor = true;
                break;
            }
        }
        std::vector<std::uint64_t> flags(tuples.size(), 0);
        int distinct_locally = 1;
        for (std::size_t i = 0; i < tuples.size(); ++i) {
            bool const starts_group =
                i == 0 ? (!have_predecessor || !(tuples[i] == predecessor))
                       : !(tuples[i] == tuples[i - 1]);
            flags[i] = starts_group ? 1 : 0;
            if (!starts_group) {
                distinct_locally = 0;
            }
        }
        std::uint64_t const local_flag_sum =
            std::accumulate(flags.begin(), flags.end(), std::uint64_t{0});
        std::uint64_t preceding_flags = 0;
        XMPI_Exscan(
            &local_flag_sum, &preceding_flags, 1, XMPI_UNSIGNED_LONG_LONG, XMPI_SUM, comm);
        if (rank == 0) {
            preceding_flags = 0;
        }
        std::inclusive_scan(flags.begin(), flags.end(), flags.begin());
        for (auto& flag: flags) {
            flag += preceding_flags;
        }
        int all_distinct = 0;
        XMPI_Allreduce(&distinct_locally, &all_distinct, 1, XMPI_INT, XMPI_LAND, comm);

        if (all_distinct != 0 || h >= n) {
            std::uint64_t position_offset = 0;
            XMPI_Exscan(
                &my_count, &position_offset, 1, XMPI_UNSIGNED_LONG_LONG, XMPI_SUM, comm);
            if (rank == 0) {
                position_offset = 0;
            }
            std::vector<int> send_counts(static_cast<std::size_t>(p), 0);
            std::vector<std::uint64_t> sa_entries(tuples.size());
            for (std::size_t i = 0; i < tuples.size(); ++i) {
                sa_entries[i] = tuples[i].index;
                std::uint64_t const position = position_offset + i;
                int const owner = static_cast<int>(
                    std::upper_bound(distribution.begin(), distribution.end(), position)
                    - distribution.begin() - 1);
                ++send_counts[static_cast<std::size_t>(owner)];
            }
            std::vector<int> send_displs(static_cast<std::size_t>(p));
            std::exclusive_scan(
                send_counts.begin(), send_counts.end(), send_displs.begin(), 0);
            std::vector<int> recv_counts(static_cast<std::size_t>(p));
            XMPI_Alltoall(
                send_counts.data(), 1, XMPI_INT, recv_counts.data(), 1, XMPI_INT, comm);
            std::vector<int> recv_displs(static_cast<std::size_t>(p));
            std::exclusive_scan(
                recv_counts.begin(), recv_counts.end(), recv_displs.begin(), 0);
            std::vector<std::uint64_t> sa(
                static_cast<std::size_t>(recv_displs.back() + recv_counts.back()));
            XMPI_Alltoallv(
                sa_entries.data(), send_counts.data(), send_displs.data(),
                XMPI_UNSIGNED_LONG_LONG, sa.data(), recv_counts.data(), recv_displs.data(),
                XMPI_UNSIGNED_LONG_LONG, comm);
            XMPI_Type_free(&tuple_type);
            return sa;
        }

        // Ship the new names home.
        std::vector<PdTuple> outgoing(tuples.size());
        for (std::size_t i = 0; i < tuples.size(); ++i) {
            outgoing[i] = {flags[i], 0, tuples[i].index};
        }
        std::sort(outgoing.begin(), outgoing.end(), [](auto const& a, auto const& b) {
            return a.index < b.index;
        });
        std::vector<int> send_counts(static_cast<std::size_t>(p), 0);
        for (auto const& entry: outgoing) {
            int const owner = static_cast<int>(
                std::upper_bound(distribution.begin(), distribution.end(), entry.index)
                - distribution.begin() - 1);
            ++send_counts[static_cast<std::size_t>(owner)];
        }
        std::vector<int> send_displs(static_cast<std::size_t>(p));
        std::exclusive_scan(send_counts.begin(), send_counts.end(), send_displs.begin(), 0);
        std::vector<int> recv_counts(static_cast<std::size_t>(p));
        XMPI_Alltoall(send_counts.data(), 1, XMPI_INT, recv_counts.data(), 1, XMPI_INT, comm);
        std::vector<int> recv_displs(static_cast<std::size_t>(p));
        std::exclusive_scan(recv_counts.begin(), recv_counts.end(), recv_displs.begin(), 0);
        std::vector<PdTuple> incoming(
            static_cast<std::size_t>(recv_displs.back() + recv_counts.back()));
        XMPI_Alltoallv(
            outgoing.data(), send_counts.data(), send_displs.data(), tuple_type,
            incoming.data(), recv_counts.data(), recv_displs.data(), tuple_type, comm);
        XMPI_Type_free(&tuple_type);
        for (auto const& entry: incoming) {
            names[entry.index - first] = entry.name;
        }
    }
}

} // namespace apps::suffix
