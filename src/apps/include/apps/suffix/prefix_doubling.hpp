/// @file prefix_doubling.hpp
/// @brief Distributed suffix-array construction by prefix doubling
/// (Manber–Myers [13], distributed as in Fischer & Kurpicz [27]) — the
/// paper's Section IV-A "Suffix Array Construction" workload, implemented
/// with KaMPIng (the paper reports 163 LoC for this variant vs. 426 for
/// plain MPI).
///
/// The text is block-distributed. Each round h doubles the compared prefix:
///   1. fetch R[i+h] with a shift exchange (pure alltoallv, no requests:
///      the block distribution makes every transfer computable locally);
///   2. globally sort the tuples (R[i], R[i+h], i) with the Sorter plugin;
///   3. re-name: a tuple starts a new group iff it differs from its
///      predecessor (one boundary exchange), names via prefix sums;
///   4. ship the new names home; stop once all names are unique.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "kamping/plugin/plugins.hpp"

namespace apps::suffix {

namespace internal {

/// @brief One prefix-doubling tuple: current name, name h positions later,
/// and the suffix index. Ordered by the name pair.
struct PdTuple {
    std::uint64_t name;
    std::uint64_t next_name;
    std::uint64_t index;

    friend bool operator<(PdTuple const& a, PdTuple const& b) {
        return a.name != b.name ? a.name < b.name : a.next_name < b.next_name;
    }
    friend bool operator==(PdTuple const& a, PdTuple const& b) {
        return a.name == b.name && a.next_name == b.next_name;
    }
};

/// @brief Exchanges (destination-block) values: element j of the returned
/// vector is `values[i + h]` for the j-th local index i, or 0 past the end.
/// Works entirely from the globally known block distribution.
inline std::vector<std::uint64_t> shift_names(
    std::vector<std::uint64_t> const& names, std::uint64_t h,
    std::vector<std::uint64_t> const& distribution, kamping::FullCommunicator const& comm) {
    using kamping::send_buf;
    using kamping::send_counts;
    using kamping::send_displs;
    int const p = comm.size_signed();
    std::uint64_t const n = distribution.back();
    std::uint64_t const first = distribution[static_cast<std::size_t>(comm.rank())];
    std::uint64_t const last = distribution[static_cast<std::size_t>(comm.rank()) + 1];

    // I own names for [first, last); rank q needs [q_first + h, q_last + h).
    // Send the overlap of my block with each rank's needed range.
    std::vector<int> counts(static_cast<std::size_t>(p), 0);
    std::vector<int> displs(static_cast<std::size_t>(p), 0);
    for (int q = 0; q < p; ++q) {
        std::uint64_t const need_lo = distribution[static_cast<std::size_t>(q)] + h;
        std::uint64_t const need_hi = distribution[static_cast<std::size_t>(q) + 1] + h;
        std::uint64_t const lo = std::max(first, std::min(need_lo, n));
        std::uint64_t const hi = std::min(last, std::min(need_hi, n));
        if (lo < hi) {
            counts[static_cast<std::size_t>(q)] = static_cast<int>(hi - lo);
            displs[static_cast<std::size_t>(q)] = static_cast<int>(lo - first);
        }
    }
    auto shifted = comm.alltoallv(
        send_buf(names), send_counts(counts), send_displs(displs));
    // Ranks past the end of the text read as 0 (smaller than any name).
    shifted.resize(last - first, 0);
    return shifted;
}

} // namespace internal

/// @brief Distributed prefix doubling with KaMPIng. @c local_text is this
/// rank's block of the global text; returns this rank's block of the suffix
/// array (same block distribution).
inline std::vector<std::uint64_t> suffix_array_prefix_doubling_kamping(
    std::string const& local_text, XMPI_Comm comm_handle) {
    using namespace kamping;
    FullCommunicator comm(comm_handle);
    int const p = comm.size_signed();

    // Globally known block distribution of the text.
    auto const local_sizes = comm.allgatherv(
        send_buf({static_cast<std::uint64_t>(local_text.size())}));
    std::vector<std::uint64_t> distribution(static_cast<std::size_t>(p) + 1, 0);
    std::inclusive_scan(local_sizes.begin(), local_sizes.end(), distribution.begin() + 1);
    std::uint64_t const n = distribution.back();
    std::uint64_t const first = distribution[static_cast<std::size_t>(comm.rank())];

    // Initial names: character values (+1 to keep 0 as "past the end").
    std::vector<std::uint64_t> names(local_text.size());
    for (std::size_t i = 0; i < local_text.size(); ++i) {
        names[i] = static_cast<unsigned char>(local_text[i]) + 1u;
    }

    std::vector<internal::PdTuple> tuples;
    for (std::uint64_t h = 1;; h *= 2) {
        auto const shifted = internal::shift_names(names, h, distribution, comm);
        tuples.resize(names.size());
        for (std::size_t i = 0; i < names.size(); ++i) {
            tuples[i] = {names[i], shifted[i], first + i};
        }
        comm.sort(tuples);

        // Group flags: 1 iff a tuple differs from its predecessor. The
        // predecessor of my first tuple is the last tuple of the nearest
        // non-empty rank before me.
        internal::PdTuple const boundary =
            tuples.empty() ? internal::PdTuple{0, 0, 0} : tuples.back();
        // Fixed-size exchanges: plain allgather, no count negotiation.
        auto const boundary_tuples = comm.allgather(send_buf({boundary}));
        auto const tuple_counts =
            comm.allgather(send_buf({static_cast<std::uint64_t>(tuples.size())}));
        internal::PdTuple predecessor{~0ull, ~0ull, ~0ull};
        bool have_predecessor = false;
        for (int r = comm.rank() - 1; r >= 0; --r) {
            if (tuple_counts[static_cast<std::size_t>(r)] > 0) {
                predecessor = boundary_tuples[static_cast<std::size_t>(r)];
                have_predecessor = true;
                break;
            }
        }
        std::vector<std::uint64_t> flags(tuples.size(), 0);
        std::uint64_t distinct_locally = 1;
        for (std::size_t i = 0; i < tuples.size(); ++i) {
            bool const starts_group =
                i == 0 ? (!have_predecessor || !(tuples[i] == predecessor))
                       : !(tuples[i] == tuples[i - 1]);
            flags[i] = starts_group ? 1 : 0;
            if (!starts_group) {
                distinct_locally = 0;
            }
        }
        // Names = global inclusive prefix sum over the flags.
        std::uint64_t const local_flag_sum =
            std::accumulate(flags.begin(), flags.end(), std::uint64_t{0});
        std::uint64_t const preceding_flags = comm.exscan_single(
            send_buf(local_flag_sum), op(std::plus<>{}), values_on_rank_0(std::uint64_t{0}));
        std::inclusive_scan(flags.begin(), flags.end(), flags.begin());
        for (auto& flag: flags) {
            flag += preceding_flags;
        }

        bool const all_distinct = comm.allreduce_single(
            send_buf(distinct_locally == 1), op(std::logical_and<>{}));
        if (all_distinct || h >= n) {
            // Done: the suffix array is the index column in sorted order.
            // Rebalance to the block distribution by *position*.
            std::uint64_t const my_position_offset = comm.exscan_single(
                send_buf(static_cast<std::uint64_t>(tuples.size())), op(std::plus<>{}),
                values_on_rank_0(std::uint64_t{0}));
            std::vector<int> counts(static_cast<std::size_t>(p), 0);
            std::vector<std::uint64_t> sa_entries(tuples.size());
            for (std::size_t i = 0; i < tuples.size(); ++i) {
                sa_entries[i] = tuples[i].index;
                std::uint64_t const position = my_position_offset + i;
                int const owner = static_cast<int>(
                    std::upper_bound(distribution.begin(), distribution.end(), position)
                    - distribution.begin() - 1);
                ++counts[static_cast<std::size_t>(owner)];
            }
            return comm.alltoallv(send_buf(std::move(sa_entries)), send_counts(counts));
        }

        // Ship (index, new name) home to the index's owner.
        std::vector<int> counts(static_cast<std::size_t>(p), 0);
        std::vector<internal::PdTuple> outgoing(tuples.size());
        for (std::size_t i = 0; i < tuples.size(); ++i) {
            outgoing[i] = {flags[i], 0, tuples[i].index};
        }
        std::sort(outgoing.begin(), outgoing.end(), [](auto const& a, auto const& b) {
            return a.index < b.index;
        });
        for (auto const& entry: outgoing) {
            int const owner = static_cast<int>(
                std::upper_bound(distribution.begin(), distribution.end(), entry.index)
                - distribution.begin() - 1);
            ++counts[static_cast<std::size_t>(owner)];
        }
        auto const incoming = comm.alltoallv(
            send_buf(std::move(outgoing)), send_counts(counts));
        for (auto const& entry: incoming) {
            names[entry.index - first] = entry.name;
        }
    }
}

} // namespace apps::suffix
