/// @file dc3_distributed.hpp
/// @brief Distributed DC3 suffix-array construction (the paper's "DCX"
/// workload, Section IV-A; algorithm of Kärkkäinen & Sanders [25],
/// distributed in the style of Bingmann's pDCX [26]).
///
/// Level 1 runs fully distributed with KaMPIng:
///   1. character shift-exchanges provide t[i+1], t[i+2] for local i;
///   2. the mod-1/mod-2 sample triples are sorted with the distributed
///      sample sorter, named with a boundary exchange + prefix sums;
///   3. if the names are not unique, the reduced (2/3-size) problem is
///      gathered and solved with sequential DC3 — one distributed level,
///      sequential recursion: at laptop scale the reduced problem is tiny,
///      and the paper's DCX comparison is about LoC, not recursion depth
///      (simplification documented in DESIGN.md);
///   4. the sample ranks are routed back to text order and shift-exchanged;
///   5. all suffixes are sorted globally by the difference-cover comparator
///      (any two suffixes compare in O(1) via at most two characters plus a
///      sample rank), and the resulting suffix array is rebalanced to the
///      block distribution.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "apps/suffix/sequential.hpp"
#include "kamping/plugin/plugins.hpp"
#include "kassert/kassert.hpp"

namespace apps::suffix {
namespace internal {

/// @brief One sample (mod-1/2) triple with its global position.
struct Dc3Triple {
    std::uint8_t c0, c1, c2;
    std::uint64_t index;

    friend bool operator<(Dc3Triple const& a, Dc3Triple const& b) {
        if (a.c0 != b.c0) {
            return a.c0 < b.c0;
        }
        if (a.c1 != b.c1) {
            return a.c1 < b.c1;
        }
        return a.c2 < b.c2;
    }
    friend bool operator==(Dc3Triple const& a, Dc3Triple const& b) {
        return a.c0 == b.c0 && a.c1 == b.c1 && a.c2 == b.c2;
    }
};

/// @brief Per-suffix record carrying everything the difference-cover
/// comparator needs: two characters and the sample ranks at offsets 0/1/2
/// (0 where the offset is a mod-0 position).
struct Dc3Key {
    std::uint64_t rank0; ///< sample rank of i (0 if i % 3 == 0)
    std::uint64_t rank1; ///< sample rank of i+1 (0 if (i+1) % 3 == 0)
    std::uint64_t rank2; ///< sample rank of i+2 (0 if (i+2) % 3 == 0)
    std::uint64_t index;
    std::uint8_t mod;
    std::uint8_t c0, c1;

    /// @brief Total order = lexicographic suffix order, decided through the
    /// difference cover {1, 2} mod 3: two sample suffixes compare by rank;
    /// a mod-0 suffix shifts by 1 (vs mod-0/mod-1) or 2 (vs mod-2) first.
    friend bool operator<(Dc3Key const& a, Dc3Key const& b) {
        if (a.mod != 0 && b.mod != 0) {
            return a.rank0 < b.rank0;
        }
        if (a.mod != 2 && b.mod != 2) {
            // shift by 1: both i+1, j+1 are samples
            if (a.c0 != b.c0) {
                return a.c0 < b.c0;
            }
            return a.rank1 < b.rank1;
        }
        if (a.mod != 1 && b.mod != 1) {
            // shift by 2: both i+2, j+2 are samples
            if (a.c0 != b.c0) {
                return a.c0 < b.c0;
            }
            if (a.c1 != b.c1) {
                return a.c1 < b.c1;
            }
            return a.rank2 < b.rank2;
        }
        // One is mod 1 and the other mod 2: shift by 1 makes the mod-1 a
        // mod-2 sample and the mod-2 a mod-0... use the (c0, rank1) shift,
        // valid because for (1,2) pairs i+1 is mod-2 (sample) and j+1 is
        // mod-0 — NOT valid. Shift by 2 instead: i+2 mod-0 invalid too.
        // Unreachable: (1,2) pairs are handled by the first branch.
        return a.rank0 < b.rank0;
    }
};

/// @brief Routed (position, value) pair.
struct PositionValue {
    std::uint64_t position;
    std::uint64_t value;
};

/// @brief Owner of a global position under the given block distribution.
inline int owner_of_position(
    std::vector<std::uint64_t> const& distribution, std::uint64_t position) {
    return static_cast<int>(
        std::upper_bound(distribution.begin(), distribution.end(), position)
        - distribution.begin() - 1);
}

/// @brief Fetches `values[i + shift]` for every local i (0 past the end),
/// where values is block-distributed per `distribution`.
template <typename Comm>
std::vector<std::uint64_t> shift_values(
    std::vector<std::uint64_t> const& values, std::uint64_t shift,
    std::vector<std::uint64_t> const& distribution, Comm const& comm) {
    using kamping::send_buf;
    using kamping::send_counts;
    using kamping::send_displs;
    int const p = comm.size_signed();
    std::uint64_t const n = distribution.back();
    std::uint64_t const first = distribution[static_cast<std::size_t>(comm.rank())];
    std::uint64_t const last = distribution[static_cast<std::size_t>(comm.rank()) + 1];

    std::vector<int> counts(static_cast<std::size_t>(p), 0);
    std::vector<int> displs(static_cast<std::size_t>(p), 0);
    for (int q = 0; q < p; ++q) {
        std::uint64_t const need_lo =
            std::min(distribution[static_cast<std::size_t>(q)] + shift, n);
        std::uint64_t const need_hi =
            std::min(distribution[static_cast<std::size_t>(q) + 1] + shift, n);
        std::uint64_t const lo = std::max(first, need_lo);
        std::uint64_t const hi = std::min(last, need_hi);
        if (lo < hi) {
            counts[static_cast<std::size_t>(q)] = static_cast<int>(hi - lo);
            displs[static_cast<std::size_t>(q)] = static_cast<int>(lo - first);
        }
    }
    auto shifted = comm.alltoallv(send_buf(values), send_counts(counts), send_displs(displs));
    shifted.resize(last - first, 0);
    return shifted;
}

} // namespace internal

/// @brief Distributed DC3. @c local_text is this rank's block of the text;
/// returns this rank's block of the suffix array.
inline std::vector<std::uint64_t>
suffix_array_dc3_distributed(std::string const& local_text, XMPI_Comm comm_handle) {
    using namespace kamping;
    using internal::Dc3Key;
    using internal::Dc3Triple;
    using internal::PositionValue;
    FullCommunicator comm(comm_handle);
    int const p = comm.size_signed();

    // ---- Distribution bookkeeping. --------------------------------------
    auto const sizes =
        comm.allgather(send_buf({static_cast<std::uint64_t>(local_text.size())}));
    std::vector<std::uint64_t> distribution(static_cast<std::size_t>(p) + 1, 0);
    std::inclusive_scan(sizes.begin(), sizes.end(), distribution.begin() + 1);
    std::uint64_t const n = distribution.back();
    std::uint64_t const first = distribution[static_cast<std::size_t>(comm.rank())];
    if (n < 3) {
        // Degenerate inputs: solve sequentially on gathered text.
        auto const whole = comm.allgatherv(send_buf(
            std::vector<char>(local_text.begin(), local_text.end())));
        auto const sa = suffix_array_naive(std::string(whole.begin(), whole.end()));
        std::vector<std::uint64_t> mine;
        for (std::uint64_t position = 0; position < sa.size(); ++position) {
            if (internal::owner_of_position(distribution, position) == comm.rank()) {
                mine.push_back(sa[position]);
            }
        }
        return mine;
    }

    // ---- Characters at i, i+1, i+2 for every local i. -------------------
    std::vector<std::uint64_t> chars(local_text.size());
    for (std::size_t i = 0; i < local_text.size(); ++i) {
        chars[i] = static_cast<unsigned char>(local_text[i]) + 1u;
    }
    auto const chars1 = internal::shift_values(chars, 1, distribution, comm);
    auto const chars2 = internal::shift_values(chars, 2, distribution, comm);

    // ---- Step 1: sort the sample triples. --------------------------------
    std::vector<Dc3Triple> triples;
    for (std::size_t i = 0; i < chars.size(); ++i) {
        std::uint64_t const global = first + i;
        if (global % 3 != 0) {
            triples.push_back(Dc3Triple{
                static_cast<std::uint8_t>(chars[i]), static_cast<std::uint8_t>(chars1[i]),
                static_cast<std::uint8_t>(chars2[i]), global});
        }
    }
    comm.sort(triples);

    // ---- Step 2: name the triples (boundary exchange + prefix sums). -----
    Dc3Triple const boundary =
        triples.empty() ? Dc3Triple{0, 0, 0, 0} : triples.back();
    auto const boundaries = comm.allgather(send_buf({boundary}));
    auto const triple_counts =
        comm.allgather(send_buf({static_cast<std::uint64_t>(triples.size())}));
    Dc3Triple predecessor{255, 255, 255, 0};
    bool have_predecessor = false;
    for (int r = comm.rank() - 1; r >= 0; --r) {
        if (triple_counts[static_cast<std::size_t>(r)] > 0) {
            predecessor = boundaries[static_cast<std::size_t>(r)];
            have_predecessor = true;
            break;
        }
    }
    std::vector<std::uint64_t> flags(triples.size(), 0);
    std::uint64_t unique_locally = 1;
    for (std::size_t i = 0; i < triples.size(); ++i) {
        bool const starts_group = i == 0
                                      ? (!have_predecessor || !(triples[i] == predecessor))
                                      : !(triples[i] == triples[i - 1]);
        flags[i] = starts_group ? 1 : 0;
        if (!starts_group) {
            unique_locally = 0;
        }
    }
    std::uint64_t const flag_sum = std::accumulate(flags.begin(), flags.end(), std::uint64_t{0});
    std::uint64_t const preceding = comm.exscan_single(
        send_buf(flag_sum), op(std::plus<>{}), values_on_rank_0(std::uint64_t{0}));
    std::inclusive_scan(flags.begin(), flags.end(), flags.begin());
    for (auto& flag: flags) {
        flag += preceding; // names are 1-based group numbers in sorted order
    }
    bool const names_unique = comm.allreduce_single(
        send_buf(unique_locally == 1), op(std::logical_and<>{}));

    // names_by_index[i] = name of sample at text position i (local slots).
    // Route (index, name) pairs home.
    auto const route_home = [&](std::vector<PositionValue> pairs) {
        std::sort(pairs.begin(), pairs.end(), [](auto const& a, auto const& b) {
            return a.position < b.position;
        });
        std::vector<int> counts(static_cast<std::size_t>(p), 0);
        for (auto const& pair: pairs) {
            ++counts[static_cast<std::size_t>(
                internal::owner_of_position(distribution, pair.position))];
        }
        return comm.alltoallv(send_buf(std::move(pairs)), send_counts(counts));
    };

    std::vector<std::uint64_t> sample_rank_by_position(chars.size(), 0);
    if (names_unique) {
        std::vector<PositionValue> pairs(triples.size());
        for (std::size_t i = 0; i < triples.size(); ++i) {
            pairs[i] = PositionValue{triples[i].index, flags[i]};
        }
        for (auto const& pair: route_home(std::move(pairs))) {
            sample_rank_by_position[pair.position - first] = pair.value;
        }
    } else {
        // ---- Step 3: recursion on the reduced string. -------------------
        // Reduced index: j = i/3 for i % 3 == 1, j = i/3 + n0 for i % 3 == 2.
        std::uint64_t const n0 = (n + 2) / 3;
        std::uint64_t const n1 = (n + 1) / 3;
        std::uint64_t const n02 = n0 + n / 3;
        // Gather (reduced index, name) pairs on every rank and solve
        // sequentially (single distributed level; see file comment).
        std::vector<std::uint64_t> flat(2 * triples.size());
        for (std::size_t i = 0; i < triples.size(); ++i) {
            std::uint64_t const index = triples[i].index;
            flat[2 * i] = index % 3 == 1 ? index / 3 : index / 3 + n0;
            flat[2 * i + 1] = flags[i];
        }
        auto const all_pairs = comm.allgatherv(send_buf(flat));
        THROWING_KASSERT(
            n02 < (std::uint64_t{1} << 31),
            "reduced DC3 problem too large for the gathered sequential recursion");
        std::vector<std::uint32_t> reduced(static_cast<std::size_t>(n02) + 3, 0);
        for (std::size_t i = 0; i + 1 < all_pairs.size(); i += 2) {
            reduced[static_cast<std::size_t>(all_pairs[i])] =
                static_cast<std::uint32_t>(all_pairs[i + 1]);
        }
        // Suffix array of the reduced string -> rank of each sample suffix.
        std::vector<std::uint32_t> reduced_sa(static_cast<std::size_t>(n02) + 3, 0);
        std::uint64_t max_name = 0;
        for (std::size_t i = 0; i < static_cast<std::size_t>(n02); ++i) {
            max_name = std::max<std::uint64_t>(max_name, reduced[i]);
        }
        internal::dc3(
            reduced.data(), reduced_sa.data(), static_cast<std::size_t>(n02),
            static_cast<std::uint32_t>(max_name + 1));
        // rank within samples, mapped back to text positions owned locally.
        std::vector<PositionValue> pairs;
        for (std::uint64_t sample_rank = 0; sample_rank < n02; ++sample_rank) {
            std::uint64_t const j = reduced_sa[static_cast<std::size_t>(sample_rank)];
            std::uint64_t const i = j < n0 ? 3 * j + 1 : 3 * (j - n0) + 2;
            if (i < n && internal::owner_of_position(distribution, i) == comm.rank()) {
                pairs.push_back(PositionValue{i, sample_rank + 1});
            }
        }
        (void)n1;
        for (auto const& pair: pairs) {
            sample_rank_by_position[pair.position - first] = pair.value;
        }
    }

    // ---- Step 4: sample ranks at i, i+1, i+2. -----------------------------
    auto const ranks1 = internal::shift_values(sample_rank_by_position, 1, distribution, comm);
    auto const ranks2 = internal::shift_values(sample_rank_by_position, 2, distribution, comm);

    // ---- Step 5: global sort of all suffixes by the DC comparator. -------
    std::vector<Dc3Key> keys(chars.size());
    for (std::size_t i = 0; i < chars.size(); ++i) {
        std::uint64_t const global = first + i;
        keys[i] = Dc3Key{
            sample_rank_by_position[i],
            ranks1[i],
            ranks2[i],
            global,
            static_cast<std::uint8_t>(global % 3),
            static_cast<std::uint8_t>(chars[i]),
            static_cast<std::uint8_t>(chars1[i])};
    }
    comm.sort(keys);

    // ---- Step 6: rebalance positions to the block distribution. ----------
    std::uint64_t const position_offset = comm.exscan_single(
        send_buf(static_cast<std::uint64_t>(keys.size())), op(std::plus<>{}),
        values_on_rank_0(std::uint64_t{0}));
    std::vector<int> out_counts(static_cast<std::size_t>(p), 0);
    std::vector<std::uint64_t> sa_entries(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        sa_entries[i] = keys[i].index;
        ++out_counts[static_cast<std::size_t>(
            internal::owner_of_position(distribution, position_offset + i))];
    }
    return comm.alltoallv(send_buf(std::move(sa_entries)), send_counts(out_counts));
}

} // namespace apps::suffix
