/// @file sequential.hpp
/// @brief Sequential suffix-array construction: a naive comparison sort
/// (test oracle) and the linear-time DC3 algorithm of Kärkkäinen & Sanders
/// (the paper's DCX reference [25]).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace apps::suffix {

/// @brief Naive O(n^2 log n) suffix array; the test oracle.
inline std::vector<std::uint64_t> suffix_array_naive(std::string const& text) {
    std::vector<std::uint64_t> sa(text.size());
    for (std::uint64_t i = 0; i < sa.size(); ++i) {
        sa[i] = i;
    }
    std::sort(sa.begin(), sa.end(), [&](std::uint64_t a, std::uint64_t b) {
        return text.compare(a, std::string::npos, text, b, std::string::npos) < 0;
    });
    return sa;
}

namespace internal {

inline bool leq2(std::uint32_t a1, std::uint32_t a2, std::uint32_t b1, std::uint32_t b2) {
    return a1 < b1 || (a1 == b1 && a2 <= b2);
}
inline bool leq3(
    std::uint32_t a1, std::uint32_t a2, std::uint32_t a3, std::uint32_t b1, std::uint32_t b2,
    std::uint32_t b3) {
    return a1 < b1 || (a1 == b1 && leq2(a2, a3, b2, b3));
}

/// @brief Stable counting-sort of indices by one key digit.
inline void radix_pass(
    std::vector<std::uint32_t> const& in, std::vector<std::uint32_t>& out,
    std::uint32_t const* keys, std::size_t n, std::uint32_t alphabet_size) {
    std::vector<std::uint32_t> count(alphabet_size + 1, 0);
    for (std::size_t i = 0; i < n; ++i) {
        ++count[keys[in[i]]];
    }
    std::uint32_t sum = 0;
    for (auto& c: count) {
        std::uint32_t const t = c;
        c = sum;
        sum += t;
    }
    for (std::size_t i = 0; i < n; ++i) {
        out[count[keys[in[i]]]++] = in[i];
    }
}

/// @brief DC3 on an integer string t[0..n) over alphabet [1, K]; t must be
/// padded with t[n] = t[n+1] = t[n+2] = 0.
inline void
dc3(std::uint32_t const* t, std::uint32_t* sa, std::size_t n, std::uint32_t alphabet_size) {
    std::size_t const n0 = (n + 2) / 3;
    std::size_t const n1 = (n + 1) / 3;
    std::size_t const n2 = n / 3;
    std::size_t const n02 = n0 + n2;
    std::vector<std::uint32_t> s12(n02 + 3, 0);
    std::vector<std::uint32_t> sa12(n02 + 3, 0);
    std::vector<std::uint32_t> s0(n0);
    std::vector<std::uint32_t> sa0(n0);

    // Positions i mod 3 != 0 (n0 - n1 padding position included iff n%3==1).
    for (std::size_t i = 0, j = 0; i < n + (n0 - n1); ++i) {
        if (i % 3 != 0) {
            s12[j++] = static_cast<std::uint32_t>(i);
        }
    }

    // Radix sort the mod-1/2 triples.
    radix_pass(s12, sa12, t + 2, n02, alphabet_size);
    radix_pass(sa12, s12, t + 1, n02, alphabet_size);
    radix_pass(s12, sa12, t + 0, n02, alphabet_size);

    // Lexicographic names.
    std::uint32_t name = 0;
    std::uint32_t c0 = ~0u, c1 = ~0u, c2 = ~0u;
    for (std::size_t i = 0; i < n02; ++i) {
        if (t[sa12[i]] != c0 || t[sa12[i] + 1] != c1 || t[sa12[i] + 2] != c2) {
            ++name;
            c0 = t[sa12[i]];
            c1 = t[sa12[i] + 1];
            c2 = t[sa12[i] + 2];
        }
        if (sa12[i] % 3 == 1) {
            s12[sa12[i] / 3] = name; // left half
        } else {
            s12[sa12[i] / 3 + n0] = name; // right half
        }
    }

    if (name < n02) { // names not unique: recurse
        dc3(s12.data(), sa12.data(), n02, name);
        for (std::size_t i = 0; i < n02; ++i) {
            s12[sa12[i]] = static_cast<std::uint32_t>(i) + 1;
        }
    } else {
        for (std::size_t i = 0; i < n02; ++i) {
            sa12[s12[i] - 1] = static_cast<std::uint32_t>(i);
        }
    }

    // Sort the mod-0 suffixes by (t[i], rank of i+1).
    for (std::size_t i = 0, j = 0; i < n02; ++i) {
        if (sa12[i] < n0) {
            s0[j++] = 3 * sa12[i];
        }
    }
    radix_pass(s0, sa0, t, n0, alphabet_size);

    // Merge.
    auto const get_i = [&](std::size_t k) {
        return sa12[k] < n0 ? sa12[k] * 3 + 1 : (sa12[k] - n0) * 3 + 2;
    };
    std::size_t p = 0;
    std::size_t k = n0 - n1; // skip the padding suffix
    for (std::size_t out = 0; out < n; ++out) {
        std::size_t const i = get_i(k); // current mod-1/2 suffix
        std::size_t const j = sa0[p];   // current mod-0 suffix
        bool const take12 =
            sa12[k] < n0
                ? leq2(t[i], s12[sa12[k] + n0], t[j], s12[j / 3])
                : leq3(t[i], t[i + 1], s12[sa12[k] - n0 + 1], t[j], t[j + 1],
                       s12[j / 3 + n0]);
        if (take12) {
            sa[out] = static_cast<std::uint32_t>(i);
            if (++k == n02) {
                for (++out; p < n0; ++p, ++out) {
                    sa[out] = sa0[p];
                }
            }
        } else {
            sa[out] = static_cast<std::uint32_t>(j);
            if (++p == n0) {
                for (++out; k < n02; ++k, ++out) {
                    sa[out] = static_cast<std::uint32_t>(get_i(k));
                }
            }
        }
    }
}

} // namespace internal

/// @brief Linear-time suffix array via DC3 (Kärkkäinen–Sanders).
inline std::vector<std::uint64_t> suffix_array_dc3(std::string const& text) {
    std::size_t const n = text.size();
    if (n == 0) {
        return {};
    }
    if (n == 1) {
        return {0};
    }
    std::vector<std::uint32_t> t(n + 3, 0);
    for (std::size_t i = 0; i < n; ++i) {
        t[i] = static_cast<unsigned char>(text[i]) + 1; // keep 0 as sentinel
    }
    std::vector<std::uint32_t> sa(n + 3, 0);
    internal::dc3(t.data(), sa.data(), n, 257);
    return {sa.begin(), sa.begin() + static_cast<std::ptrdiff_t>(n)};
}

} // namespace apps::suffix
