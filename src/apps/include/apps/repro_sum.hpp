/// @file repro_sum.hpp
/// @brief The reproducible-sum kernel: fixed-binary-tree reduction over
/// global element indices (Stelz 2022, inspired by Villa et al., CUG 2009).
///
/// IEEE 754 addition is not associative, so the result of a parallel
/// reduction usually depends on the number of processors. This kernel fixes
/// the evaluation order by reducing over a *fixed binary tree shaped only by
/// the total element count n*, never by p:
///
///   - `decompose` splits a contiguous block of the global array into
///     maximal index-aligned power-of-two subtrees, reducing each of them
///     in tree order (`tree_reduce`);
///   - `stitch` evaluates the remaining top of the tree from a stream of
///     subtree results sorted by start index.
///
/// Shared by the kamping ReproducibleReduce plugin (the distributed
/// reduction: decompose locally, gather partials, stitch on the root) and
/// the kasched task ledger (a *local* fixed-tree checksum over the
/// replicated ledger, bit-identical on every rank for every p — see
/// `fixed_tree_sum`).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kassert/kassert.hpp"

namespace apps::repro {

/// @brief One reduced subtree: the tree node [start, start+size) and its
/// value. Trivially copyable so partials can travel as raw bytes.
template <typename T>
struct Partial {
    std::uint64_t start;
    std::uint64_t size; // power of two (tree-aligned)
    T value;
};

/// @brief Reduces an aligned block [start, start+size) in fixed tree order;
/// elements at global index >= hi (the virtual padding) do not exist and are
/// skipped structurally, never computed.
template <typename T, typename Op>
T tree_reduce(T const* data, std::uint64_t start, std::uint64_t size, std::uint64_t hi, Op combine) {
    if (size == 1) {
        return data[0];
    }
    std::uint64_t const half = size / 2;
    T const left = tree_reduce(data, start, half, hi, combine);
    if (start + half >= hi) {
        return left;
    }
    T const right = tree_reduce(data + half, start + half, half, hi, combine);
    return combine(left, right);
}

/// @brief Decomposes the block [offset, offset+count) of the global array
/// into maximal index-aligned power-of-two subtrees and reduces each of them
/// in tree order. O(log count) partials.
template <typename T, typename Op>
std::vector<Partial<T>> decompose(T const* block, std::uint64_t offset, std::uint64_t count, Op combine) {
    std::vector<Partial<T>> partials;
    std::uint64_t lo = offset;
    std::uint64_t const hi = offset + count;
    while (lo < hi) {
        std::uint64_t size = 1;
        // Largest aligned block starting at lo that fits into [lo, hi).
        while ((lo % (2 * size)) == 0 && lo + 2 * size <= hi) {
            size *= 2;
        }
        partials.push_back(
            Partial<T>{lo, size, tree_reduce(block + (lo - offset), lo, size, hi, combine)});
        lo += size;
    }
    return partials;
}

/// @brief Evaluates the fixed tree node [lo, lo+size) from the stream of
/// partials sorted by start index, consuming them through @c cursor.
/// @c valid reports whether the node covered any existing element.
template <typename T, typename Op>
T stitch(
    Partial<T> const* partials, std::size_t n_partials, std::size_t& cursor, std::uint64_t lo,
    std::uint64_t size, std::uint64_t total, Op combine, bool& valid) {
    if (cursor < n_partials && partials[cursor].start == lo && partials[cursor].size == size) {
        valid = true;
        return partials[cursor++].value;
    }
    if (lo >= total) {
        valid = false;
        return T{};
    }
    std::uint64_t const half = size / 2;
    KASSERT(half >= 1, "stitch descended below a leaf; inconsistent partials");
    bool left_valid = false;
    bool right_valid = false;
    T const left = stitch(partials, n_partials, cursor, lo, half, total, combine, left_valid);
    T const right =
        stitch(partials, n_partials, cursor, lo + half, half, total, combine, right_valid);
    valid = left_valid || right_valid;
    if (left_valid && right_valid) {
        return combine(left, right);
    }
    return left_valid ? left : right;
}

/// @brief Evaluates the whole fixed tree over @c total elements from sorted
/// partials (the root side of the distributed reduction).
template <typename T, typename Op>
T stitch_all(Partial<T> const* partials, std::size_t n_partials, std::uint64_t total, Op combine) {
    if (total == 0) {
        return T{};
    }
    std::uint64_t virtual_size = 1;
    while (virtual_size < total) {
        virtual_size *= 2;
    }
    std::size_t cursor = 0;
    bool valid = false;
    T const result = stitch(partials, n_partials, cursor, 0, virtual_size, total, combine, valid);
    KASSERT(cursor == n_partials, "reproducible reduce consumed a partial twice");
    return result;
}

/// @brief Purely local fixed-tree reduction of @c count elements: the same
/// value any distributed decompose/gather/stitch over the same global array
/// would produce. The kasched ledger checksums its replicated task states
/// with this — every rank computes it independently and must agree bit-wise.
template <typename T, typename Op = std::plus<T>>
T fixed_tree_sum(T const* data, std::uint64_t count, Op combine = {}) {
    if (count == 0) {
        return T{};
    }
    auto const partials = decompose(data, 0, count, combine);
    return stitch_all(partials.data(), partials.size(), count, combine);
}

} // namespace apps::repro
