/// @file graph.hpp
/// @brief Distributed graph representation used by the BFS and label
/// propagation applications (paper, Section IV-B): vertices are
/// block-distributed over the ranks, each rank stores its vertices'
/// incident edges as an adjacency array.
#pragma once

#include <cstdint>
#include <vector>

namespace apps {

using VertexId = std::uint64_t;

/// @brief Adjacency-array graph fragment owned by one rank.
struct DistributedGraph {
    VertexId global_vertex_count = 0;
    /// vertex_distribution[r] = first global vertex owned by rank r;
    /// size p + 1, last entry = global_vertex_count.
    std::vector<VertexId> vertex_distribution;
    int rank = 0;

    /// Local adjacency array: neighbors of local vertex v are
    /// adjacency[offsets[v] .. offsets[v+1]) (global vertex ids).
    std::vector<std::size_t> offsets{0};
    std::vector<VertexId> adjacency;

    [[nodiscard]] VertexId first_vertex() const {
        return vertex_distribution[static_cast<std::size_t>(rank)];
    }
    [[nodiscard]] VertexId local_vertex_count() const {
        return vertex_distribution[static_cast<std::size_t>(rank) + 1] - first_vertex();
    }
    [[nodiscard]] bool is_local(VertexId v) const {
        return v >= first_vertex() && v < first_vertex() + local_vertex_count();
    }
    [[nodiscard]] VertexId to_local(VertexId v) const { return v - first_vertex(); }

    /// @brief Rank owning a global vertex (binary search over the blocks).
    [[nodiscard]] int owner_of(VertexId v) const {
        int lo = 0;
        int hi = static_cast<int>(vertex_distribution.size()) - 2;
        while (lo < hi) {
            int const mid = (lo + hi + 1) / 2;
            if (vertex_distribution[static_cast<std::size_t>(mid)] <= v) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        return lo;
    }

    /// @brief Neighbor range of a local vertex.
    [[nodiscard]] std::pair<VertexId const*, VertexId const*> neighbors(VertexId local_v) const {
        return {
            adjacency.data() + offsets[static_cast<std::size_t>(local_v)],
            adjacency.data() + offsets[static_cast<std::size_t>(local_v) + 1]};
    }

    [[nodiscard]] std::size_t local_edge_count() const { return adjacency.size(); }
};

} // namespace apps
