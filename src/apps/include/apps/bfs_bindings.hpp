/// @file bfs_bindings.hpp
/// @brief The BFS frontier exchange + completion logic implemented in all
/// five binding styles (paper, Section IV-B and Table I row 3: only these
/// parts differ between the implementations; the traversal is shared).
#pragma once

#include <algorithm>
#include <functional>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "apps/bfs.hpp"
#include "apps/graph.hpp"
#include "kamping/kamping.hpp"
#include "mimic/boostmpi.hpp"
#include "mimic/mpl.hpp"
#include "mimic/rwth.hpp"
#include "xmpi/api.hpp"

namespace apps::bfs_bindings {

using FrontierMessages = std::unordered_map<int, std::vector<VertexId>>;

/// @brief Plain MPI exchange: counts, displacements, allreduce — all manual.
struct MpiExchange {
    XMPI_Comm comm;

    // LOC-BEGIN(mpi)
    bool is_empty(bool locally_empty) const {
        int const mine = locally_empty ? 1 : 0;
        int all = 0;
        XMPI_Allreduce(&mine, &all, 1, XMPI_INT, XMPI_LAND, comm);
        return all != 0;
    }

    std::vector<VertexId> exchange(FrontierMessages const& messages) const {
        int p;
        XMPI_Comm_size(comm, &p);
        std::vector<int> send_counts(p, 0), send_displs(p), recv_counts(p), recv_displs(p);
        for (auto const& [dest, payload]: messages) {
            send_counts[dest] = static_cast<int>(payload.size());
        }
        std::exclusive_scan(send_counts.begin(), send_counts.end(), send_displs.begin(), 0);
        std::vector<VertexId> send_data(send_displs.back() + send_counts.back());
        for (auto const& [dest, payload]: messages) {
            std::copy(payload.begin(), payload.end(), send_data.begin() + send_displs[dest]);
        }
        XMPI_Alltoall(send_counts.data(), 1, XMPI_INT, recv_counts.data(), 1, XMPI_INT, comm);
        std::exclusive_scan(recv_counts.begin(), recv_counts.end(), recv_displs.begin(), 0);
        std::vector<VertexId> recv_data(recv_displs.back() + recv_counts.back());
        XMPI_Alltoallv(
            send_data.data(), send_counts.data(), send_displs.data(), XMPI_UNSIGNED_LONG_LONG,
            recv_data.data(), recv_counts.data(), recv_displs.data(), XMPI_UNSIGNED_LONG_LONG,
            comm);
        return recv_data;
    }
    // LOC-END(mpi)
};

/// @brief Boost.MPI-style exchange: nested-vector all_to_all hides the
/// counts but serializes every message.
struct BoostExchange {
    mimic::boostmpi::communicator comm;

    // LOC-BEGIN(boost)
    bool is_empty(bool locally_empty) const {
        return mimic::boostmpi::all_reduce(comm, locally_empty ? 1 : 0, std::logical_and<>{})
               != 0;
    }

    std::vector<VertexId> exchange(FrontierMessages const& messages) const {
        std::vector<std::vector<VertexId>> out(static_cast<std::size_t>(comm.size()));
        for (auto const& [dest, payload]: messages) {
            out[static_cast<std::size_t>(dest)] = payload;
        }
        std::vector<std::vector<VertexId>> in;
        mimic::boostmpi::all_to_all(comm, out, in);
        std::vector<VertexId> received;
        for (auto const& block: in) {
            received.insert(received.end(), block.begin(), block.end());
        }
        return received;
    }
    // LOC-END(boost)
};

/// @brief MPL-style exchange: layouts for both directions.
struct MplExchange {
    mimic::mpl::communicator comm;

    // LOC-BEGIN(mpl)
    bool is_empty(bool locally_empty) const {
        int all = 0;
        int const mine = locally_empty ? 1 : 0;
        comm.allreduce(std::logical_and<>{}, mine, all);
        return all != 0;
    }

    std::vector<VertexId> exchange(FrontierMessages const& messages) const {
        int const p = comm.size();
        std::vector<int> send_counts(p, 0);
        for (auto const& [dest, payload]: messages) {
            send_counts[dest] = static_cast<int>(payload.size());
        }
        std::vector<int> recv_counts(p);
        comm.alltoall(send_counts.data(), recv_counts.data());
        mimic::mpl::contiguous_layouts<VertexId> send_layouts(p), recv_layouts(p);
        mimic::mpl::displacements send_displs(p), recv_displs(p);
        std::ptrdiff_t send_offset = 0, recv_offset = 0;
        for (int i = 0; i < p; ++i) {
            send_layouts[i] = mimic::mpl::contiguous_layout<VertexId>(send_counts[i]);
            send_displs[i] = send_offset;
            send_offset += send_counts[i];
            recv_layouts[i] = mimic::mpl::contiguous_layout<VertexId>(recv_counts[i]);
            recv_displs[i] = recv_offset;
            recv_offset += recv_counts[i];
        }
        std::vector<VertexId> send_data(static_cast<std::size_t>(send_offset));
        for (auto const& [dest, payload]: messages) {
            std::copy(payload.begin(), payload.end(), send_data.begin() + send_displs[dest]);
        }
        std::vector<VertexId> received(static_cast<std::size_t>(recv_offset));
        comm.alltoallv(
            send_data.data(), send_layouts, send_displs, received.data(), recv_layouts,
            recv_displs);
        return received;
    }
    // LOC-END(mpl)
};

/// @brief RWTH-style exchange: all_to_all_varying computes the receive side.
struct RwthExchange {
    mimic::rwth::communicator comm;

    // LOC-BEGIN(rwth)
    bool is_empty(bool locally_empty) const {
        return comm.all_reduce(locally_empty ? 1 : 0, std::logical_and<>{}) != 0;
    }

    std::vector<VertexId> exchange(FrontierMessages const& messages) const {
        int const p = comm.size();
        std::vector<int> send_counts(p, 0), send_displs(p);
        for (auto const& [dest, payload]: messages) {
            send_counts[dest] = static_cast<int>(payload.size());
        }
        std::exclusive_scan(send_counts.begin(), send_counts.end(), send_displs.begin(), 0);
        std::vector<VertexId> send_data(send_displs.back() + send_counts.back());
        for (auto const& [dest, payload]: messages) {
            std::copy(payload.begin(), payload.end(), send_data.begin() + send_displs[dest]);
        }
        std::vector<VertexId> received;
        std::vector<int> recv_counts;
        comm.all_to_all_varying(send_data, send_counts, received, recv_counts);
        return received;
    }
    // LOC-END(rwth)
};

/// @brief KaMPIng exchange — the paper's Fig. 9.
struct KampingExchange {
    kamping::Communicator comm;

    // LOC-BEGIN(kamping)
    bool is_empty(bool locally_empty) const {
        return comm.allreduce_single(
            kamping::send_buf(locally_empty), kamping::op(std::logical_and<>{}));
    }

    std::vector<VertexId> exchange(FrontierMessages const& messages) const {
        return kamping::with_flattened(messages, comm.size()).call([&](auto... flattened) {
            return comm.alltoallv(std::move(flattened)...);
        });
    }
    // LOC-END(kamping)
};

/// @brief The shared traversal, templated on the exchange policy; computes
/// hop distances like apps::bfs().
template <typename Exchange>
std::vector<VertexId>
bfs_with(Exchange const& exchanger, DistributedGraph const& graph, VertexId source) {
    std::vector<VertexId> distance(graph.local_vertex_count(), kUnreached);
    std::vector<VertexId> frontier;
    if (graph.is_local(source)) {
        frontier.push_back(source);
        distance[graph.to_local(source)] = 0;
    }
    VertexId level = 0;
    while (!exchanger.is_empty(frontier.empty())) {
        FrontierMessages messages;
        for (VertexId const v: frontier) {
            auto const [begin, end] = graph.neighbors(graph.to_local(v));
            for (auto const* it = begin; it != end; ++it) {
                messages[graph.owner_of(*it)].push_back(*it);
            }
        }
        auto const received = exchanger.exchange(messages);
        frontier.clear();
        for (VertexId const v: received) {
            auto& d = distance[graph.to_local(v)];
            if (d == kUnreached) {
                d = level + 1;
                frontier.push_back(v);
            }
        }
        std::sort(frontier.begin(), frontier.end());
        frontier.erase(std::unique(frontier.begin(), frontier.end()), frontier.end());
        ++level;
    }
    return distance;
}

} // namespace apps::bfs_bindings
