/// @file vector_allgather.hpp
/// @brief The paper's running example (Fig. 2): allgather a variable-size
/// vector, implemented in all five binding styles. The marked regions are
/// what Table I counts.
#pragma once

#include <numeric>
#include <vector>

#include "kamping/kamping.hpp"
#include "mimic/boostmpi.hpp"
#include "mimic/mpl.hpp"
#include "mimic/rwth.hpp"
#include "xmpi/api.hpp"

namespace apps::vector_allgather {

/// @brief Plain MPI: the full boilerplate of the paper's Fig. 2.
template <typename T>
std::vector<T> mpi(std::vector<T> const& v, XMPI_Comm comm) {
    // LOC-BEGIN(mpi)
    int size, rank;
    XMPI_Comm_size(comm, &size);
    XMPI_Comm_rank(comm, &rank);
    std::vector<int> rc(size), rd(size);
    rc[rank] = static_cast<int>(v.size());
    XMPI_Allgather(XMPI_IN_PLACE, 0, XMPI_DATATYPE_NULL, rc.data(), 1, XMPI_INT, comm);
    std::exclusive_scan(rc.begin(), rc.end(), rd.begin(), 0);
    int const n_glob = rc.back() + rd.back();
    std::vector<T> v_glob(n_glob);
    XMPI_Allgatherv(
        v.data(), static_cast<int>(v.size()), kamping::mpi_datatype<T>(), v_glob.data(),
        rc.data(), rd.data(), kamping::mpi_datatype<T>(), comm);
    return v_glob;
    // LOC-END(mpi)
}

/// @brief Boost.MPI style: counts must still be gathered by hand.
template <typename T>
std::vector<T> boost(std::vector<T> const& v, XMPI_Comm comm_handle) {
    // LOC-BEGIN(boost)
    mimic::boostmpi::communicator comm(comm_handle);
    std::vector<int> rc;
    mimic::boostmpi::all_gather(comm, static_cast<int>(v.size()), rc);
    std::vector<T> v_glob;
    mimic::boostmpi::all_gatherv(comm, v, v_glob, rc);
    return v_glob;
    // LOC-END(boost)
}

/// @brief RWTH style: the count-free overload only works in place, so the
/// counts are exchanged manually anyway.
template <typename T>
std::vector<T> rwth(std::vector<T> const& v, XMPI_Comm comm_handle) {
    // LOC-BEGIN(rwth)
    mimic::rwth::communicator comm(comm_handle);
    std::vector<int> rc;
    comm.all_gather(static_cast<int>(v.size()), rc);
    std::vector<int> rd(rc.size());
    std::exclusive_scan(rc.begin(), rc.end(), rd.begin(), 0);
    std::vector<T> v_glob;
    comm.all_gather_varying(v, v_glob, rc, rd);
    return v_glob;
    // LOC-END(rwth)
}

/// @brief MPL style: layouts make even this simple pattern verbose.
template <typename T>
std::vector<T> mpl(std::vector<T> const& v, XMPI_Comm comm_handle) {
    // LOC-BEGIN(mpl)
    mimic::mpl::communicator comm(comm_handle);
    int const p = comm.size();
    int const my_count = static_cast<int>(v.size());
    std::vector<int> rc(p);
    comm.allgather(my_count, rc.data());
    mimic::mpl::contiguous_layouts<T> recv_layouts(p);
    mimic::mpl::displacements recv_displs(p);
    std::ptrdiff_t offset = 0;
    for (int i = 0; i < p; ++i) {
        recv_layouts[i] = mimic::mpl::contiguous_layout<T>(rc[i]);
        recv_displs[i] = offset;
        offset += rc[i];
    }
    std::vector<T> v_glob(static_cast<std::size_t>(offset));
    comm.allgatherv(
        v.data(), mimic::mpl::contiguous_layout<T>(my_count), v_glob.data(), recv_layouts,
        recv_displs);
    return v_glob;
    // LOC-END(mpl)
}

/// @brief KaMPIng: the paper's one-liner (Fig. 1 (1)).
template <typename T>
std::vector<T> kamping_(std::vector<T> const& v, XMPI_Comm comm_handle) {
    kamping::Communicator comm(comm_handle);
    // LOC-BEGIN(kamping)
    return comm.allgatherv(kamping::send_buf(v));
    // LOC-END(kamping)
}

} // namespace apps::vector_allgather
