/// @file samplesort.hpp
/// @brief Textbook distributed sample sort (paper, Section IV-A, Fig. 7/8)
/// implemented comparably in all five binding styles: plain (X)MPI,
/// Boost.MPI style, MPL style, RWTH style, and KaMPIng.
///
/// Shared parts (sampling, splitter selection, bucketing) are extracted to
/// functions exactly as the paper does for its LoC comparison; the
/// `// LOC-BEGIN(name)` / `// LOC-END(name)` markers delimit the code that
/// differs per binding and is counted by the Table I benchmark.
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <vector>

#include "kamping/kamping.hpp"
#include "mimic/boostmpi.hpp"
#include "mimic/mpl.hpp"
#include "mimic/rwth.hpp"
#include "xmpi/api.hpp"

namespace apps::samplesort {

/// @brief Oversampling factor of the paper's Fig. 7: 16 log2(p) + 1.
inline std::size_t num_samples_for(int p) {
    return 16 * static_cast<std::size_t>(std::log2(static_cast<double>(std::max(2, p)))) + 1;
}

/// @brief Draws local samples (deterministic per rank for comparability).
template <typename T>
std::vector<T> draw_samples(std::vector<T> const& data, std::size_t count, int rank) {
    std::vector<T> samples(std::min(count, data.size()));
    std::sample(
        data.begin(), data.end(), samples.begin(), samples.size(),
        std::mt19937{static_cast<std::uint32_t>(rank) * 7919u + 13u});
    return samples;
}

/// @brief Picks p-1 equidistant splitters from the sorted global samples.
template <typename T>
std::vector<T> pick_splitters(std::vector<T> global_samples, int p) {
    std::sort(global_samples.begin(), global_samples.end());
    std::vector<T> splitters;
    splitters.reserve(static_cast<std::size_t>(p) - 1);
    for (int i = 1; i < p; ++i) {
        std::size_t const index = std::min(
            static_cast<std::size_t>(i) * global_samples.size() / static_cast<std::size_t>(p),
            global_samples.size() - 1);
        splitters.push_back(global_samples[index]);
    }
    return splitters;
}

/// @brief Buckets the (consumed) local data by splitter.
template <typename T>
std::vector<std::vector<T>> build_buckets(std::vector<T>& data, std::vector<T> const& splitters) {
    std::vector<std::vector<T>> buckets(splitters.size() + 1);
    for (auto& value: data) {
        auto const bucket = static_cast<std::size_t>(
            std::upper_bound(splitters.begin(), splitters.end(), value) - splitters.begin());
        buckets[bucket].push_back(value);
    }
    data.clear();
    return buckets;
}

/// @brief Flattens buckets into contiguous data + per-destination counts.
template <typename T>
std::pair<std::vector<T>, std::vector<int>> flatten(std::vector<std::vector<T>> const& buckets) {
    std::vector<T> data;
    std::vector<int> counts;
    counts.reserve(buckets.size());
    for (auto const& bucket: buckets) {
        data.insert(data.end(), bucket.begin(), bucket.end());
        counts.push_back(static_cast<int>(bucket.size()));
    }
    return {std::move(data), std::move(counts)};
}

/// @brief Plain MPI implementation: every parameter spelled out by hand.
template <typename T>
void sort_mpi(std::vector<T>& data, XMPI_Comm comm) {
    // LOC-BEGIN(mpi)
    int p, rank;
    XMPI_Comm_size(comm, &p);
    XMPI_Comm_rank(comm, &rank);
    if (p == 1) { std::sort(data.begin(), data.end()); return; }
    std::vector<T> lsamples = draw_samples(data, num_samples_for(p), rank);
    int const scount = static_cast<int>(lsamples.size());
    std::vector<int> sample_counts(p), sample_displs(p);
    XMPI_Allgather(&scount, 1, XMPI_INT, sample_counts.data(), 1, XMPI_INT, comm);
    std::exclusive_scan(sample_counts.begin(), sample_counts.end(), sample_displs.begin(), 0);
    std::vector<T> gsamples(sample_displs.back() + sample_counts.back());
    XMPI_Allgatherv(
        lsamples.data(), scount, kamping::mpi_datatype<T>(), gsamples.data(),
        sample_counts.data(), sample_displs.data(), kamping::mpi_datatype<T>(), comm);
    auto buckets = build_buckets(data, pick_splitters(std::move(gsamples), p));
    auto [send_data, send_counts] = flatten(buckets);
    std::vector<int> send_displs(p), recv_counts(p), recv_displs(p);
    std::exclusive_scan(send_counts.begin(), send_counts.end(), send_displs.begin(), 0);
    XMPI_Alltoall(send_counts.data(), 1, XMPI_INT, recv_counts.data(), 1, XMPI_INT, comm);
    std::exclusive_scan(recv_counts.begin(), recv_counts.end(), recv_displs.begin(), 0);
    data.resize(recv_displs.back() + recv_counts.back());
    XMPI_Alltoallv(
        send_data.data(), send_counts.data(), send_displs.data(), kamping::mpi_datatype<T>(),
        data.data(), recv_counts.data(), recv_displs.data(), kamping::mpi_datatype<T>(), comm);
    std::sort(data.begin(), data.end());
    // LOC-END(mpi)
}

/// @brief Boost.MPI-style implementation: nested-vector all_to_all, but
/// sample counts still exchanged by hand.
template <typename T>
void sort_boost(std::vector<T>& data, XMPI_Comm comm_handle) {
    // LOC-BEGIN(boost)
    mimic::boostmpi::communicator comm(comm_handle);
    int const p = comm.size();
    if (p == 1) { std::sort(data.begin(), data.end()); return; }
    std::vector<T> lsamples = draw_samples(data, num_samples_for(p), comm.rank());
    std::vector<int> sample_counts;
    mimic::boostmpi::all_gather(comm, static_cast<int>(lsamples.size()), sample_counts);
    std::vector<T> gsamples;
    mimic::boostmpi::all_gatherv(comm, lsamples, gsamples, sample_counts);
    auto buckets = build_buckets(data, pick_splitters(std::move(gsamples), p));
    std::vector<std::vector<T>> incoming;
    mimic::boostmpi::all_to_all(comm, buckets, incoming);
    for (auto const& block: incoming) {
        data.insert(data.end(), block.begin(), block.end());
    }
    std::sort(data.begin(), data.end());
    // LOC-END(boost)
}

/// @brief MPL-style implementation: layouts everywhere.
template <typename T>
void sort_mpl(std::vector<T>& data, XMPI_Comm comm_handle) {
    // LOC-BEGIN(mpl)
    mimic::mpl::communicator comm(comm_handle);
    int const p = comm.size();
    if (p == 1) { std::sort(data.begin(), data.end()); return; }
    std::vector<T> lsamples = draw_samples(data, num_samples_for(p), comm.rank());
    std::vector<int> sample_counts(p);
    int const my_sample_count = static_cast<int>(lsamples.size());
    comm.allgather(my_sample_count, sample_counts.data());
    mimic::mpl::contiguous_layouts<T> sample_layouts(p);
    mimic::mpl::displacements sample_displs(p);
    std::ptrdiff_t sample_offset = 0;
    for (int i = 0; i < p; ++i) {
        sample_layouts[i] = mimic::mpl::contiguous_layout<T>(sample_counts[i]);
        sample_displs[i] = sample_offset;
        sample_offset += sample_counts[i];
    }
    std::vector<T> gsamples(static_cast<std::size_t>(sample_offset));
    comm.allgatherv(
        lsamples.data(), mimic::mpl::contiguous_layout<T>(my_sample_count), gsamples.data(),
        sample_layouts, sample_displs);
    auto buckets = build_buckets(data, pick_splitters(std::move(gsamples), p));
    auto [send_data, send_counts] = flatten(buckets);
    std::vector<int> recv_counts(p);
    comm.alltoall(send_counts.data(), recv_counts.data());
    mimic::mpl::contiguous_layouts<T> send_layouts(p), recv_layouts(p);
    mimic::mpl::displacements send_displs(p), recv_displs(p);
    std::ptrdiff_t send_offset = 0, recv_offset = 0;
    for (int i = 0; i < p; ++i) {
        send_layouts[i] = mimic::mpl::contiguous_layout<T>(send_counts[i]);
        send_displs[i] = send_offset;
        send_offset += send_counts[i];
        recv_layouts[i] = mimic::mpl::contiguous_layout<T>(recv_counts[i]);
        recv_displs[i] = recv_offset;
        recv_offset += recv_counts[i];
    }
    data.resize(static_cast<std::size_t>(recv_offset));
    comm.alltoallv(
        send_data.data(), send_layouts, send_displs, data.data(), recv_layouts, recv_displs);
    std::sort(data.begin(), data.end());
    // LOC-END(mpl)
}

/// @brief RWTH-style implementation: count-computing overloads help, but the
/// sample exchange still needs manual counts.
template <typename T>
void sort_rwth(std::vector<T>& data, XMPI_Comm comm_handle) {
    // LOC-BEGIN(rwth)
    mimic::rwth::communicator comm(comm_handle);
    int const p = comm.size();
    if (p == 1) { std::sort(data.begin(), data.end()); return; }
    std::vector<T> lsamples = draw_samples(data, num_samples_for(p), comm.rank());
    std::vector<int> sample_counts;
    comm.all_gather(static_cast<int>(lsamples.size()), sample_counts);
    std::vector<int> sample_displs(p);
    std::exclusive_scan(sample_counts.begin(), sample_counts.end(), sample_displs.begin(), 0);
    std::vector<T> gsamples;
    comm.all_gather_varying(lsamples, gsamples, sample_counts, sample_displs);
    auto buckets = build_buckets(data, pick_splitters(std::move(gsamples), p));
    auto [send_data, send_counts] = flatten(buckets);
    std::vector<int> recv_counts;
    comm.all_to_all_varying(send_data, send_counts, data, recv_counts);
    std::sort(data.begin(), data.end());
    // LOC-END(rwth)
}

/// @brief KaMPIng implementation — the paper's Fig. 7.
template <typename T>
void sort_kamping(std::vector<T>& data, XMPI_Comm comm_handle) {
    // LOC-BEGIN(kamping)
    kamping::Communicator comm(comm_handle);
    if (comm.size() == 1) { std::sort(data.begin(), data.end()); return; }
    std::vector<T> lsamples =
        draw_samples(data, num_samples_for(comm.size_signed()), comm.rank());
    auto gsamples = comm.allgatherv(kamping::send_buf(lsamples));
    auto buckets = build_buckets(data, pick_splitters(std::move(gsamples), comm.size_signed()));
    auto [send_data, send_count_values] = flatten(buckets);
    data = comm.alltoallv(
        kamping::send_buf(std::move(send_data)), kamping::send_counts(send_count_values));
    std::sort(data.begin(), data.end());
    // LOC-END(kamping)
}

} // namespace apps::samplesort
