/// @file task.hpp
/// @brief The kasched task model: tasks are dense integer ids whose payload
/// is derived deterministically from the id.
///
/// A task carries no serialized closure — everything a rank needs to execute
/// task `id` (its synthetic work and its result contribution) is a pure
/// function of `id`. That keeps the scheduler's data plane to 8-byte ids
/// (what the RMA deques and NBX batches move) while still modelling a
/// Slurm-like job mix: per-task work varies with the id, and the initial
/// placement is deliberately skewed so idle ranks must steal.
#pragma once

#include <cstdint>

namespace apps::kasched {

/// @brief Tasks are dense ids 0..n-1; the sentinel marks "no task".
using TaskId = std::uint64_t;
inline constexpr TaskId no_task = ~TaskId{0};

/// @brief splitmix64 finalizer: the one hash used for placement, work
/// variation, and result contributions, so every rank agrees on all three.
inline std::uint64_t task_hash(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/// @brief Home rank of a task among @c n_ranks live ranks. @c skew_shares
/// extra hash shares fold onto rank 0, giving it a deliberately oversized
/// queue — the deterministic imbalance that guarantees work stealing has
/// something to steal. Every rank evaluates this identically, which is what
/// makes the assignment recoverable: after a membership change the survivors
/// re-derive the full placement from (id, new size) alone.
inline int owner_of(TaskId id, int n_ranks, int skew_shares) {
    auto const share = static_cast<int>(task_hash(id) % static_cast<std::uint64_t>(n_ranks + skew_shares));
    return share < n_ranks ? share : 0;
}

/// @brief The task's contribution to the global result, a double in [0, 1).
/// Summing contributions through the fixed-tree kernel gives the ledger
/// checksum every rank must agree on bit-wise.
inline double contribution(TaskId id) {
    return static_cast<double>(task_hash(id) >> 11) * 0x1.0p-53;
}

/// @brief Executes one task: @c work rounds of the hash as synthetic CPU
/// work (per-task runtime varies with the id so queues drain unevenly).
/// @return The task's contribution.
inline double execute(TaskId id, std::uint32_t work) {
    std::uint64_t state = id;
    std::uint64_t const rounds = 1 + task_hash(id) % (2 * work + 1);
    for (std::uint64_t i = 0; i < rounds; ++i) {
        state = task_hash(state);
    }
    // The spin result feeds nothing, but must not be optimized away.
    return state == 0 ? 0.0 : contribution(id);
}

} // namespace apps::kasched
