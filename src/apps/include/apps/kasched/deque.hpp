/// @file deque.hpp
/// @brief A Chase–Lev-style work-stealing deque living in an RMA window.
///
/// Memory layout of the shared window (one per rank, element type
/// std::uint64_t, created collectively):
///
///   slot 0              top     — the steal index (cold end); grows
///                                 monotonically, advanced only by CAS
///   slot 1              bottom  — the owner index (hot end); written only
///                                 by the owning rank
///   slots 2..2+capacity ring    — task ids; index i lives at 2 + i%capacity
///
/// The owner pushes and pops at `bottom`; thieves steal at `top` with a
/// compare-and-swap that both claims the element and validates the read
/// (a lost CAS means another thief or the owner's last-element pop won).
/// `bottom - top < capacity` is enforced at push, so the ring never wraps
/// onto live elements and a stale slot read is always caught by the CAS.
///
/// Every access goes through the window's fetch_op / compare_swap atomics
/// (xmpi applies them eagerly under the target's per-window apply mutex, so
/// each one is individually linearizable — strictly stronger than the
/// memory-order reasoning the classic SMP algorithm needs). Callers manage
/// the passive-target epochs: the owner keeps a *shared* lock on its own
/// rank for the whole work phase, thieves take a shared lock on the victim
/// per attempt — shared throughout, so nobody ever blocks on a lock.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "apps/kasched/task.hpp"
#include "kamping/named_parameters.hpp"
#include "kamping/rma.hpp"
#include "kassert/kassert.hpp"

namespace apps::kasched {

class RmaDeque {
public:
    using Window = kamping::Window<std::uint64_t>;

    /// @brief Window slots one rank's deque needs (pass to comm.win_allocate;
    /// the zeroed window, top = bottom = 0, is the empty deque).
    [[nodiscard]] static std::size_t storage_slots(std::uint32_t capacity) {
        return 2 + static_cast<std::size_t>(capacity);
    }

    /// @brief Zero-initialized backing storage for one rank's deque (pass to
    /// comm.win_create; top = bottom = 0 is the empty deque). The scheduler
    /// itself uses win_allocate instead — caller-scoped storage must not
    /// outlive its scope, which failure unwinding violates (see kasched.cpp).
    [[nodiscard]] static std::vector<std::uint64_t> make_storage(std::uint32_t capacity) {
        return std::vector<std::uint64_t>(storage_slots(capacity), 0);
    }

    RmaDeque(Window& window, std::uint32_t capacity, int self)
        : win_(&window),
          capacity_(capacity),
          self_(self) {
        KASSERT(capacity_ > 0, "kasched deque: capacity must be positive");
    }

    /// @name Owner operations (calling rank == deque owner; the caller holds
    /// a shared lock on its own rank)
    /// @{

    /// @brief Pushes a task at the hot end. @return false iff the ring is
    /// full (the caller spills to its local overflow).
    bool push(TaskId id) {
        std::uint64_t const b = bottom_cache_;
        std::uint64_t const t = read(self_, kTop);
        if (b - t >= capacity_) {
            return false;
        }
        // Slot first, then publish bottom: a thief can only target index b
        // after it observes bottom > b, and the apply mutex orders the two.
        write(self_, slot_of(b), id);
        write(self_, kBottom, b + 1);
        bottom_cache_ = b + 1;
        return true;
    }

    /// @brief Pops from the hot end. @return no_task when empty or when a
    /// thief won the race for the last element.
    TaskId pop() {
        std::uint64_t const b_old = bottom_cache_;
        if (read(self_, kTop) >= b_old) {
            return no_task; // empty
        }
        std::uint64_t const b = b_old - 1;
        write(self_, kBottom, b); // publish the taken index
        std::uint64_t const t = read(self_, kTop); // re-read *after* publishing
        if (t < b) {
            // More than one element: index b is unreachable for thieves now
            // that bottom == b is visible (top is monotone, so any thief
            // aiming at b would have pushed top to b before our re-read).
            bottom_cache_ = b;
            return static_cast<TaskId>(read(self_, slot_of(b)));
        }
        if (t == b) {
            // Last element: the top CAS decides between us and a thief.
            bool const won = cas(self_, kTop, t, t + 1);
            TaskId const id = won ? static_cast<TaskId>(read(self_, slot_of(b))) : no_task;
            write(self_, kBottom, t + 1);
            bottom_cache_ = t + 1;
            return id;
        }
        // t > b: a thief emptied the deque between our reads; resynchronize.
        write(self_, kBottom, t);
        bottom_cache_ = t;
        return no_task;
    }

    /// @brief Owner-side size (one remote read; bottom is owner-local).
    [[nodiscard]] std::uint64_t size() {
        std::uint64_t const t = read(self_, kTop);
        return bottom_cache_ > t ? bottom_cache_ - t : 0;
    }
    /// @}

    /// @name Thief operations (the caller holds a shared lock on @c victim)
    /// @{

    /// @brief Size estimate of a victim's deque (two atomic reads; the
    /// two-choice victim selection probes this).
    [[nodiscard]] std::uint64_t size_of(int victim) {
        std::uint64_t const t = read(victim, kTop);
        std::uint64_t const b = read(victim, kBottom);
        return b > t ? b - t : 0;
    }

    /// @brief One steal attempt at the cold end. @return the stolen task, or
    /// no_task when the victim looked empty or the claiming CAS lost (another
    /// thief, or the owner's last-element pop). A lost CAS also invalidates
    /// the speculative slot read — the candidate is simply dropped.
    TaskId steal_from(int victim) {
        std::uint64_t const t = read(victim, kTop);
        std::uint64_t const b = read(victim, kBottom);
        if (t >= b) {
            return no_task;
        }
        auto const candidate = static_cast<TaskId>(read(victim, slot_of(t)));
        if (cas(victim, kTop, t, t + 1)) {
            return candidate;
        }
        return no_task;
    }
    /// @}

    [[nodiscard]] std::uint32_t capacity() const { return capacity_; }

private:
    static constexpr std::ptrdiff_t kTop = 0;
    static constexpr std::ptrdiff_t kBottom = 1;

    [[nodiscard]] std::ptrdiff_t slot_of(std::uint64_t index) const {
        return 2 + static_cast<std::ptrdiff_t>(index % capacity_);
    }

    /// @brief Atomic read: fetch_op adding 0 (the in-process idiom for
    /// MPI_Get_accumulate with MPI_NO_OP).
    std::uint64_t read(int target, std::ptrdiff_t slot) {
        win_->fetch_op(
            kamping::send_buf(std::uint64_t{0}), kamping::target_rank(target),
            kamping::target_disp(slot), kamping::op(std::plus<>{}),
            kamping::recv_buf(fetched_));
        return fetched_[0];
    }

    /// @brief Atomic overwrite: fetch_op with a replace operator, fetched
    /// value discarded.
    void write(int target, std::ptrdiff_t slot, std::uint64_t value) {
        win_->fetch_op(
            kamping::send_buf(value), kamping::target_rank(target), kamping::target_disp(slot),
            kamping::op(
                [](std::uint64_t in, std::uint64_t) { return in; }, kamping::ops::commutative));
    }

    /// @brief Atomic compare-and-swap. @return true iff the swap took place
    /// (the fetched value equalled @c expected).
    bool cas(int target, std::ptrdiff_t slot, std::uint64_t expected, std::uint64_t desired) {
        win_->compare_swap(
            kamping::send_buf(desired), kamping::compare_buf(expected),
            kamping::target_rank(target), kamping::target_disp(slot),
            kamping::recv_buf(fetched_));
        return fetched_[0] == expected;
    }

    Window* win_;
    std::uint32_t capacity_;
    int self_;
    /// Owner's cached bottom (the owner is its only writer). Starts at 0 ==
    /// the freshly zeroed storage; a deque is rebuilt per membership epoch.
    std::uint64_t bottom_cache_ = 0;
    /// Scratch landing slot for fetched values (a deque is a per-rank
    /// object; only its owning thread touches this).
    std::array<std::uint64_t, 1> fetched_{};
};

} // namespace apps::kasched
