/// @file ledger.hpp
/// @brief The replicated task ledger: every rank's record of which tasks
/// have completed, and the reproducible checksum that proves the replicas
/// agree.
///
/// The ledger is what makes rank death recoverable without a central
/// server: completions are broadcast in batches (NBX rounds, see
/// scheduler.hpp), so every rank holds a near-current replica. When a rank
/// dies, the survivors OR-merge their replicas (an allreduce over the done
/// bitmap) — any completion at least one survivor witnessed becomes global —
/// and every task still pending afterwards is re-queued under the new
/// membership. A task is therefore re-executed iff *no survivor* saw it
/// complete; the ledger never records a completion twice (mark_done is
/// idempotent and reports duplicates).
///
/// The checksum fixes the summation order with the fixed-binary-tree kernel
/// shared with the ReproducibleReduce plugin (apps/repro_sum.hpp): each rank
/// computes it purely locally over its replica, and agreement is checked
/// with a MIN/MAX allreduce pair — bit-identical for every p and every
/// completion arrival order.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/kasched/task.hpp"
#include "apps/repro_sum.hpp"
#include "kassert/kassert.hpp"

namespace apps::kasched {

class Ledger {
public:
    explicit Ledger(std::uint64_t n_tasks) : done_(n_tasks, 0) {}

    [[nodiscard]] std::uint64_t size() const { return done_.size(); }
    [[nodiscard]] std::uint64_t done_count() const { return done_count_; }
    [[nodiscard]] bool is_done(TaskId id) const { return done_[id] != 0; }

    /// @brief Records a completion. @return false iff it was already
    /// recorded (a duplicate — only possible through failure recovery, and
    /// counted by the caller as such).
    bool mark_done(TaskId id) {
        KASSERT(id < done_.size(), "ledger: task id out of range");
        if (done_[id] != 0) {
            return false;
        }
        done_[id] = 1;
        ++done_count_;
        return true;
    }

    /// @brief The replica's raw done bitmap (one byte per task), the payload
    /// of the recovery OR-merge.
    [[nodiscard]] std::vector<std::uint8_t> const& bitmap() const { return done_; }

    /// @brief OR-merges another replica's bitmap into this one (recovery:
    /// a completion any survivor witnessed becomes global).
    void merge(std::vector<std::uint8_t> const& other) {
        KASSERT(other.size() == done_.size(), "ledger: replica size mismatch");
        std::uint64_t count = 0;
        for (std::size_t i = 0; i < done_.size(); ++i) {
            done_[i] = static_cast<std::uint8_t>(done_[i] | other[i]);
            count += done_[i];
        }
        done_count_ = count;
    }

    /// @brief All task ids still pending in this replica, in id order (the
    /// recovery scan that feeds re-queueing).
    [[nodiscard]] std::vector<TaskId> pending() const {
        std::vector<TaskId> ids;
        ids.reserve(done_.size() - done_count_);
        for (std::size_t i = 0; i < done_.size(); ++i) {
            if (done_[i] == 0) {
                ids.push_back(static_cast<TaskId>(i));
            }
        }
        return ids;
    }

    /// @brief Reproducible replica checksum: the fixed-tree sum of the
    /// contributions of all completed tasks. Purely local; bit-identical
    /// across ranks iff the replicas agree, independent of p and of the
    /// order completions arrived in.
    [[nodiscard]] double checksum() const {
        std::vector<double> values(done_.size());
        for (std::size_t i = 0; i < done_.size(); ++i) {
            values[i] = done_[i] != 0 ? contribution(static_cast<TaskId>(i)) : 0.0;
        }
        return repro::fixed_tree_sum(values.data(), values.size());
    }

private:
    std::vector<std::uint8_t> done_;
    std::uint64_t done_count_ = 0;
};

} // namespace apps::kasched
