/// @file scheduler.hpp
/// @brief kasched: a Slurm-inspired distributed work-stealing task scheduler.
///
/// Each rank owns a Chase–Lev-style deque in an RMA window (deque.hpp);
/// idle ranks steal from the cold end via passive-target shared locks with
/// randomized two-choice victim selection and exponential backoff. Task
/// submission and completion notifications flow through the sparse NBX
/// alltoall plugin, and a replicated reproducible-checksummed ledger
/// (ledger.hpp) makes rank death recoverable: the whole run lives inside
/// `comm.with_elastic`, so a chaos-injected kill rides the membership-epoch
/// shrink path and the survivors re-queue every task no survivor saw
/// complete. See DESIGN.md ("kasched architecture") for the full protocol.
#pragma once

#include <cstdint>

#include "apps/kasched/deque.hpp"
#include "apps/kasched/ledger.hpp"
#include "apps/kasched/task.hpp"
#include "kamping/plugin/plugins.hpp"

namespace apps::kasched {

/// @brief Scheduler tuning knobs. Defaults suit tests; the bench scales
/// n_tasks/deque_capacity up to the million-task headline run.
struct Config {
    std::uint64_t n_tasks = 1 << 16;        ///< total tasks (dense ids 0..n-1)
    std::uint32_t deque_capacity = 1 << 14; ///< ring slots per rank's window
    std::uint32_t tasks_per_round = 4096;   ///< executions between NBX rounds
    std::uint32_t work_per_task = 16;       ///< synthetic work scale (task.hpp)
    int skew_shares = 2;        ///< extra placement shares folded onto rank 0
    std::uint32_t max_failed_steals = 8;    ///< starved-phase exit threshold
    std::uint64_t seed = 1;     ///< victim-selection RNG seed (deterministic)
};

/// @brief Per-rank outcome of a scheduler run. Counter fields mirror the
/// xmpi profile counters (profile::RankCounters::sched_*), which tests and
/// the bench read via profile snapshots.
struct Stats {
    std::uint64_t submitted = 0;         ///< ids this rank generated
    std::uint64_t tasks_executed = 0;    ///< tasks this rank ran
    std::uint64_t steals_attempted = 0;  ///< two-choice probes issued
    std::uint64_t steals_succeeded = 0;  ///< probes that claimed a task
    std::uint64_t requeued_after_failure = 0; ///< pending tasks re-queued on resync
    std::uint64_t duplicate_completions = 0;  ///< mark_done duplicates observed
    std::uint64_t rounds = 0;            ///< NBX/allreduce rounds entered
    std::uint64_t resyncs = 0;           ///< membership epochs ridden
    std::uint64_t done_tasks = 0;        ///< final ledger completion count
    double checksum = 0.0;               ///< final reproducible ledger checksum
    bool checksum_converged = false;     ///< checksum bit-identical on all ranks
};

/// @brief Runs the scheduler over @c config.n_tasks tasks on @c comm until
/// every task is completed (riding membership changes via with_elastic).
/// Collective; every rank of the communicator must call it. @return this
/// rank's statistics; Stats::done_tasks == n_tasks and checksum_converged on
/// every rank iff the run (including any recovery) conserved the task set.
Stats run_scheduler(kamping::FullCommunicator& comm, Config const& config);

} // namespace apps::kasched
