/// @file labelprop.hpp
/// @brief Size-constrained label propagation clustering — the dKaMinPar
/// component the paper integrates KaMPIng into (Section IV-B "Graph
/// Partitioning"). Three implementations share all clustering logic and
/// differ only in the ghost-label exchange, mirroring the paper's
/// comparison: plain MPI (154 LoC), dKaMinPar's specialized abstraction
/// layer (106 LoC), and KaMPIng (127 LoC).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/graph.hpp"
#include "xmpi/api.hpp"

namespace apps::labelprop {

using Label = std::uint64_t;

enum class Variant {
    mpi,          ///< hand-rolled alltoallv exchange
    custom_layer, ///< dKaMinPar-style specialized graph-communication layer
    kamping,      ///< KaMPIng with_flattened + alltoallv
};

[[nodiscard]] char const* to_string(Variant variant);

struct Result {
    std::vector<Label> labels; ///< final label of each local vertex
    int iterations = 0;        ///< iterations until convergence (or cap)
};

/// @brief Runs size-constrained label propagation: every vertex repeatedly
/// adopts the most frequent label among its neighbours, provided the target
/// cluster has not exceeded @c max_cluster_size. All variants produce
/// identical labellings.
Result label_propagation(
    DistributedGraph const& graph, std::size_t max_cluster_size, int max_iterations,
    Variant variant, XMPI_Comm comm);

} // namespace apps::labelprop
