/// @file graphgen.hpp
/// @brief Distributed generators for the three graph families of the
/// paper's Fig. 10 (standing in for the KaGen generators):
///
///   - GNM (Erdős–Rényi): m uniform random edges — almost no locality
///     (most edges cross rank boundaries), small diameter;
///   - RGG-2D (random geometric): points in the unit square connected
///     within radius r, vertex ids in spatial order — high locality, high
///     diameter;
///   - RHG (random hyperbolic): power-law degrees, locality and diameter
///     between the two, with high-degree hub vertices.
///
/// All ranks generate the same global structure deterministically from the
/// seed (communication-free generation; affordable at laptop scale) and keep
/// the adjacency of their own vertex block.
#pragma once

#include <cstdint>

#include "apps/graph.hpp"

namespace apps {

/// @brief Uniform block distribution of n vertices over p ranks.
std::vector<VertexId> block_distribution(VertexId n, int p);

/// @brief A global undirected edge list (u, v); self-loops are ignored when
/// building fragments.
using EdgeList = std::vector<std::pair<VertexId, VertexId>>;

/// @name Edge-list generation (global, deterministic in the seed). The
/// benchmarks generate once and cut per-rank fragments from the shared list.
/// @{
EdgeList gnm_edges(VertexId n, std::uint64_t m, std::uint64_t seed);
EdgeList rgg2d_edges(VertexId n, double radius, std::uint64_t seed);
EdgeList rhg_edges(VertexId n, double alpha, double average_degree, std::uint64_t seed);
/// @}

/// @brief Builds rank @c rank's fragment of the n-vertex graph given the
/// global edge list.
DistributedGraph fragment_from_edges(VertexId n, EdgeList const& edges, int rank, int size);

/// @brief Erdős–Rényi G(n, m): exactly m undirected edges drawn uniformly
/// (with replacement, self-loops skipped).
DistributedGraph generate_gnm(VertexId n, std::uint64_t m, int rank, int size, std::uint64_t seed);

/// @brief Random geometric graph: n points in the unit square, edges within
/// Euclidean distance radius. Vertices are numbered in spatial (cell-row)
/// order, so the block distribution is spatially coherent.
DistributedGraph generate_rgg2d(VertexId n, double radius, int rank, int size, std::uint64_t seed);

/// @brief Random hyperbolic graph: n points in a hyperbolic disc of radius
/// R = 2 ln n + C, radial density with power-law exponent 2*alpha + 1,
/// edges between points at hyperbolic distance < R. Vertices numbered by
/// angle (partial locality).
DistributedGraph generate_rhg(
    VertexId n, double alpha, double average_degree, int rank, int size, std::uint64_t seed);

/// @brief Radius giving an expected average degree for an RGG-2D.
double rgg2d_radius_for_degree(VertexId n, double average_degree);

} // namespace apps
