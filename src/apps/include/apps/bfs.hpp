/// @file bfs.hpp
/// @brief Distributed breadth-first search (paper, Fig. 9 / Fig. 10) with
/// pluggable frontier-exchange strategies.
#pragma once

#include <limits>
#include <vector>

#include "apps/graph.hpp"
#include "xmpi/api.hpp"

namespace apps {

inline constexpr VertexId kUnreached = std::numeric_limits<VertexId>::max();

/// @brief Frontier-exchange strategies compared in the paper's Fig. 10.
enum class BfsExchange {
    mpi_alltoallv,        ///< built-in MPI_Alltoallv (plain MPI baseline)
    mpi_neighbor,         ///< MPI_Neighbor_alltoallv on a static graph topology
    mpi_neighbor_rebuild, ///< ... rebuilding the topology before every step
    kamping,              ///< KaMPIng alltoallv (with_flattened)
    kamping_sparse,       ///< KaMPIng SparseAlltoall plugin (NBX)
    kamping_grid,         ///< KaMPIng GridCommunicator plugin (2-hop)
};

[[nodiscard]] char const* to_string(BfsExchange strategy);

/// @brief Distributed BFS from @c source; returns the hop distance of every
/// local vertex (kUnreached if unreachable). Every strategy computes the
/// same distances; they differ only in how the frontier is exchanged.
std::vector<VertexId>
bfs(DistributedGraph const& graph, VertexId source, BfsExchange strategy, XMPI_Comm comm);

/// @brief Single-process reference BFS over the whole graph (adjacency
/// gathered from the distributed fragments); used by tests.
std::vector<VertexId> bfs_reference(
    std::vector<std::vector<VertexId>> const& global_adjacency, VertexId source);

} // namespace apps
