#include "apps/labelprop.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "kamping/kamping.hpp"

namespace apps::labelprop {
namespace {

/// @brief One ghost-label update: (global vertex, new label).
struct Update {
    std::uint64_t vertex;
    Label label;
};

/// @brief State shared by all variants: per-vertex labels, ghost table,
/// interface structure, and the (deterministic, synchronous) LP step.
class LpState {
public:
    LpState(DistributedGraph const& graph, std::size_t max_cluster_size)
        : graph_(graph),
          max_cluster_size_(max_cluster_size),
          labels_(graph.local_vertex_count()),
          cluster_size_of_label_() {
        VertexId const first = graph_.first_vertex();
        for (std::size_t v = 0; v < labels_.size(); ++v) {
            labels_[v] = first + v;
            cluster_size_of_label_[labels_[v]] = 1;
        }
        // Ghost vertices start with their own id as label; interface
        // vertices know which ranks hold them as ghosts.
        interested_ranks_.resize(graph_.local_vertex_count());
        for (VertexId v = 0; v < graph_.local_vertex_count(); ++v) {
            auto const [begin, end] = graph_.neighbors(v);
            for (auto const* it = begin; it != end; ++it) {
                if (!graph_.is_local(*it)) {
                    ghost_labels_.emplace(*it, *it);
                    interested_ranks_[v].push_back(graph_.owner_of(*it));
                }
            }
            auto& ranks = interested_ranks_[v];
            std::sort(ranks.begin(), ranks.end());
            ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
        }
    }

    /// @brief One synchronous LP pass; returns the updates that must reach
    /// other ranks (per destination rank).
    std::unordered_map<int, std::vector<Update>> step(bool& changed_any) {
        changed_any = false;
        std::vector<Label> const snapshot = labels_;
        std::unordered_map<int, std::vector<Update>> outgoing;
        std::unordered_map<Label, std::size_t> frequency;
        for (VertexId v = 0; v < graph_.local_vertex_count(); ++v) {
            frequency.clear();
            auto const [begin, end] = graph_.neighbors(v);
            for (auto const* it = begin; it != end; ++it) {
                Label const neighbor_label = graph_.is_local(*it)
                                                 ? snapshot[graph_.to_local(*it)]
                                                 : ghost_labels_.at(*it);
                ++frequency[neighbor_label];
            }
            // Most frequent label, smallest id breaking ties; respect the
            // size constraint.
            Label best = snapshot[v];
            std::size_t best_count = 0;
            for (auto const& [label, count]: frequency) {
                if (count > best_count || (count == best_count && label < best)) {
                    if (label != snapshot[v]
                        && cluster_size_of(label) >= max_cluster_size_) {
                        continue;
                    }
                    best = label;
                    best_count = count;
                }
            }
            if (best != snapshot[v]) {
                move_vertex(v, snapshot[v], best);
                changed_any = true;
                for (int rank: interested_ranks_[v]) {
                    outgoing[rank].push_back(
                        Update{graph_.first_vertex() + v, best});
                }
            }
        }
        return outgoing;
    }

    void apply_ghost_updates(std::vector<Update> const& updates) {
        for (auto const& update: updates) {
            ghost_labels_[update.vertex] = update.label;
        }
    }

    [[nodiscard]] std::vector<Label> const& labels() const { return labels_; }

private:
    [[nodiscard]] std::size_t cluster_size_of(Label label) const {
        auto const it = cluster_size_of_label_.find(label);
        return it == cluster_size_of_label_.end() ? 0 : it->second;
    }

    void move_vertex(VertexId v, Label from, Label to) {
        --cluster_size_of_label_[from];
        ++cluster_size_of_label_[to];
        labels_[v] = to;
    }

    DistributedGraph const& graph_;
    std::size_t max_cluster_size_;
    std::vector<Label> labels_;
    std::unordered_map<std::uint64_t, Label> ghost_labels_;
    std::vector<std::vector<int>> interested_ranks_;
    std::unordered_map<Label, std::size_t> cluster_size_of_label_;
};

// --------------------------------------------------------------------------
// Variant 1: plain MPI exchange — every count and displacement by hand.
// --------------------------------------------------------------------------
// LOC-BEGIN(mpi)
bool exchange_and_check_mpi(
    std::unordered_map<int, std::vector<Update>> const& outgoing, LpState& state,
    bool changed_locally, XMPI_Comm comm) {
    int p = 0;
    XMPI_Comm_size(comm, &p);
    std::vector<int> send_counts(static_cast<std::size_t>(p), 0);
    std::vector<int> send_displs(static_cast<std::size_t>(p), 0);
    for (auto const& [dest, updates]: outgoing) {
        send_counts[static_cast<std::size_t>(dest)] = static_cast<int>(updates.size());
    }
    std::exclusive_scan(send_counts.begin(), send_counts.end(), send_displs.begin(), 0);
    std::vector<Update> send_data(
        static_cast<std::size_t>(send_displs.back() + send_counts.back()));
    for (auto const& [dest, updates]: outgoing) {
        std::copy(
            updates.begin(), updates.end(),
            send_data.begin() + send_displs[static_cast<std::size_t>(dest)]);
    }
    XMPI_Datatype update_type = XMPI_DATATYPE_NULL;
    XMPI_Type_contiguous(sizeof(Update), XMPI_BYTE, &update_type);
    XMPI_Type_commit(&update_type);
    std::vector<int> recv_counts(static_cast<std::size_t>(p));
    XMPI_Alltoall(send_counts.data(), 1, XMPI_INT, recv_counts.data(), 1, XMPI_INT, comm);
    std::vector<int> recv_displs(static_cast<std::size_t>(p));
    std::exclusive_scan(recv_counts.begin(), recv_counts.end(), recv_displs.begin(), 0);
    std::vector<Update> received(
        static_cast<std::size_t>(recv_displs.back() + recv_counts.back()));
    XMPI_Alltoallv(
        send_data.data(), send_counts.data(), send_displs.data(), update_type, received.data(),
        recv_counts.data(), recv_displs.data(), update_type, comm);
    XMPI_Type_free(&update_type);
    state.apply_ghost_updates(received);
    int const mine = changed_locally ? 1 : 0;
    int any = 0;
    XMPI_Allreduce(&mine, &any, 1, XMPI_INT, XMPI_LOR, comm);
    return any != 0;
}
// LOC-END(mpi)

// --------------------------------------------------------------------------
// Variant 2: dKaMinPar-style specialized abstraction layer — a dedicated
// "ghost update" primitive over static communication partners.
// --------------------------------------------------------------------------
class GraphCommLayer {
public:
    GraphCommLayer(DistributedGraph const& graph, XMPI_Comm comm) : comm_(comm) {
        for (VertexId const neighbor: graph.adjacency) {
            if (!graph.is_local(neighbor)) {
                partners_.push_back(graph.owner_of(neighbor));
            }
        }
        std::sort(partners_.begin(), partners_.end());
        partners_.erase(std::unique(partners_.begin(), partners_.end()), partners_.end());
    }

    /// @brief Ships per-destination updates to the static partners and
    /// returns the incoming ones (only partners exchange messages).
    std::vector<Update>
    update_ghosts(std::unordered_map<int, std::vector<Update>> const& outgoing) const {
        constexpr int kTag = 411;
        std::vector<XMPI_Request> size_requests(partners_.size());
        std::vector<std::uint64_t> incoming_sizes(partners_.size(), 0);
        for (std::size_t i = 0; i < partners_.size(); ++i) {
            XMPI_Irecv(
                &incoming_sizes[i], sizeof(std::uint64_t), XMPI_BYTE, partners_[i], kTag,
                comm_, &size_requests[i]);
        }
        for (int partner: partners_) {
            auto const it = outgoing.find(partner);
            std::uint64_t const count = it == outgoing.end() ? 0 : it->second.size();
            XMPI_Send(&count, sizeof(count), XMPI_BYTE, partner, kTag, comm_);
        }
        XMPI_Waitall(
            static_cast<int>(size_requests.size()), size_requests.data(),
            XMPI_STATUSES_IGNORE);
        std::vector<std::vector<Update>> incoming(partners_.size());
        std::vector<XMPI_Request> payload_requests;
        for (std::size_t i = 0; i < partners_.size(); ++i) {
            if (incoming_sizes[i] > 0) {
                incoming[i].resize(incoming_sizes[i]);
                XMPI_Request request = XMPI_REQUEST_NULL;
                XMPI_Irecv(
                    incoming[i].data(), static_cast<int>(incoming_sizes[i] * sizeof(Update)),
                    XMPI_BYTE, partners_[i], kTag + 1, comm_, &request);
                payload_requests.push_back(request);
            }
        }
        for (int partner: partners_) {
            auto const it = outgoing.find(partner);
            if (it != outgoing.end() && !it->second.empty()) {
                XMPI_Send(
                    it->second.data(), static_cast<int>(it->second.size() * sizeof(Update)),
                    XMPI_BYTE, partner, kTag + 1, comm_);
            }
        }
        XMPI_Waitall(
            static_cast<int>(payload_requests.size()), payload_requests.data(),
            XMPI_STATUSES_IGNORE);
        std::vector<Update> merged;
        for (auto const& block: incoming) {
            merged.insert(merged.end(), block.begin(), block.end());
        }
        return merged;
    }

    [[nodiscard]] bool any_changed(bool changed_locally) const {
        int const mine = changed_locally ? 1 : 0;
        int any = 0;
        XMPI_Allreduce(&mine, &any, 1, XMPI_INT, XMPI_LOR, comm_);
        return any != 0;
    }

private:
    XMPI_Comm comm_;
    std::vector<int> partners_;
};

// LOC-BEGIN(custom)
bool exchange_and_check_custom(
    GraphCommLayer const& layer, std::unordered_map<int, std::vector<Update>> const& outgoing,
    LpState& state, bool changed_locally) {
    state.apply_ghost_updates(layer.update_ghosts(outgoing));
    return layer.any_changed(changed_locally);
}
// LOC-END(custom)

// --------------------------------------------------------------------------
// Variant 3: KaMPIng.
// --------------------------------------------------------------------------
// LOC-BEGIN(kamping)
bool exchange_and_check_kamping(
    std::unordered_map<int, std::vector<Update>> const& outgoing, LpState& state,
    bool changed_locally, kamping::Communicator const& comm) {
    using namespace kamping;
    std::unordered_map<int, std::vector<std::uint64_t>> flat_messages;
    for (auto const& [dest, updates]: outgoing) {
        auto& slot = flat_messages[dest];
        for (auto const& update: updates) {
            slot.push_back(update.vertex);
            slot.push_back(update.label);
        }
    }
    auto const received = with_flattened(flat_messages, comm.size()).call([&](auto... p) {
        return comm.alltoallv(std::move(p)...);
    });
    std::vector<Update> updates;
    for (std::size_t i = 0; i + 1 < received.size(); i += 2) {
        updates.push_back(Update{received[i], received[i + 1]});
    }
    state.apply_ghost_updates(updates);
    return comm.allreduce_single(send_buf(changed_locally), op(std::logical_or<>{}));
}
// LOC-END(kamping)

} // namespace

char const* to_string(Variant variant) {
    switch (variant) {
        case Variant::mpi:
            return "mpi";
        case Variant::custom_layer:
            return "custom_layer";
        case Variant::kamping:
            return "kamping";
    }
    return "?";
}

Result label_propagation(
    DistributedGraph const& graph, std::size_t max_cluster_size, int max_iterations,
    Variant variant, XMPI_Comm comm) {
    LpState state(graph, max_cluster_size);
    kamping::Communicator kamping_comm(comm);
    GraphCommLayer const layer(graph, comm);

    Result result;
    for (int iteration = 0; iteration < max_iterations; ++iteration) {
        bool changed_locally = false;
        auto const outgoing = state.step(changed_locally);
        bool changed_globally = false;
        switch (variant) {
            case Variant::mpi:
                changed_globally =
                    exchange_and_check_mpi(outgoing, state, changed_locally, comm);
                break;
            case Variant::custom_layer:
                changed_globally =
                    exchange_and_check_custom(layer, outgoing, state, changed_locally);
                break;
            case Variant::kamping:
                changed_globally =
                    exchange_and_check_kamping(outgoing, state, changed_locally, kamping_comm);
                break;
        }
        result.iterations = iteration + 1;
        if (!changed_globally) {
            break;
        }
    }
    result.labels = state.labels();
    return result;
}

} // namespace apps::labelprop
