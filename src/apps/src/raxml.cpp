#include "apps/raxml.hpp"

#include <cmath>
#include <cstring>
#include <random>

#include "kamping/kamping.hpp"
#include "kaserial/kaserial.hpp"

namespace apps::raxml {
namespace {

// --------------------------------------------------------------------------
// The "Before" layer: RAxML-NG-style hand-written serialization over a raw
// broadcast wrapper (paper, Fig. 11 top).
// --------------------------------------------------------------------------

/// @brief Minimal hand-rolled binary stream, standing in for RAxML-NG's
/// BinaryStream (the custom code KaMPIng makes redundant).
class BinaryStream {
public:
    static std::size_t serialize(std::vector<std::byte>& buffer, Model const& model) {
        buffer.clear();
        append(buffer, static_cast<std::uint64_t>(model.parameters.size()));
        for (auto const& [name, value]: model.parameters) {
            append(buffer, static_cast<std::uint64_t>(name.size()));
            auto const old_size = buffer.size();
            buffer.resize(old_size + name.size());
            std::memcpy(buffer.data() + old_size, name.data(), name.size());
            append(buffer, value);
        }
        append(buffer, model.generation);
        return buffer.size();
    }

    BinaryStream(std::byte const* data, std::size_t size) : data_(data), size_(size) {}

    BinaryStream& operator>>(Model& model) {
        model.parameters.clear();
        std::uint64_t entries = 0;
        read(entries);
        for (std::uint64_t i = 0; i < entries; ++i) {
            std::uint64_t length = 0;
            read(length);
            std::string name(length, '\0');
            std::memcpy(name.data(), data_ + cursor_, length);
            cursor_ += length;
            double value = 0.0;
            read(value);
            model.parameters.emplace(std::move(name), value);
        }
        read(model.generation);
        return *this;
    }

private:
    template <typename T>
    static void append(std::vector<std::byte>& buffer, T const& value) {
        auto const old_size = buffer.size();
        buffer.resize(old_size + sizeof(T));
        std::memcpy(buffer.data() + old_size, &value, sizeof(T));
    }
    template <typename T>
    void read(T& value) {
        std::memcpy(&value, data_ + cursor_, sizeof(T));
        cursor_ += sizeof(T);
    }

    std::byte const* data_;
    std::size_t size_;
    std::size_t cursor_ = 0;
};

/// @brief The legacy parallel context: raw wrappers as in RAxML-NG.
class LegacyContext {
public:
    explicit LegacyContext(XMPI_Comm comm) : comm_(comm) {
        XMPI_Comm_rank(comm_, &rank_);
        XMPI_Comm_size(comm_, &num_ranks_);
        parallel_buffer_.reserve(4096);
    }

    [[nodiscard]] bool master() const { return rank_ == 0; }
    [[nodiscard]] int rank() const { return rank_; }

    void mpi_broadcast(void* data, std::size_t size) const {
        XMPI_Bcast(data, static_cast<int>(size), XMPI_BYTE, 0, comm_);
    }

    /// @brief The paper's Fig. 11 "Before" routine, verbatim structure.
    void mpi_broadcast_model(Model& model) {
        if (num_ranks_ > 1) {
            std::size_t size =
                master() ? BinaryStream::serialize(parallel_buffer_, model) : 0;
            mpi_broadcast(&size, sizeof(std::size_t));
            parallel_buffer_.resize(size);
            mpi_broadcast(parallel_buffer_.data(), size);
            if (!master()) {
                BinaryStream stream(parallel_buffer_.data(), size);
                stream >> model;
            }
        }
    }

    [[nodiscard]] double allreduce_sum(double value) const {
        double total = 0.0;
        XMPI_Allreduce(&value, &total, 1, XMPI_DOUBLE, XMPI_SUM, comm_);
        return total;
    }

private:
    XMPI_Comm comm_;
    int rank_ = -1;
    int num_ranks_ = 0;
    std::vector<std::byte> parallel_buffer_;
};

/// @brief The KaMPIng parallel context: the paper's Fig. 11 "After".
class KampingContext {
public:
    explicit KampingContext(XMPI_Comm comm) : comm_(comm) {}

    [[nodiscard]] bool master() const { return comm_.rank() == 0; }
    [[nodiscard]] int rank() const { return comm_.rank(); }

    void mpi_broadcast_model(Model& model) {
        if (comm_.size() > 1) {
            comm_.bcast(kamping::send_recv_buf(kamping::as_serialized(model)));
        }
    }

    [[nodiscard]] double allreduce_sum(double value) const {
        return comm_.allreduce_single(kamping::send_buf(value), kamping::op(std::plus<>{}));
    }

private:
    kamping::Communicator comm_;
};

// --------------------------------------------------------------------------
// The synthetic ML kernel, templated on the context.
// --------------------------------------------------------------------------

/// @brief Per-site synthetic log-likelihood: a smooth function of the model
/// parameters with a site-specific optimum, so hill climbing has work to do.
double site_log_likelihood(double site_signal, Model const& model) {
    double log_likelihood = 0.0;
    for (auto const& [name, value]: model.parameters) {
        double const offset = value - site_signal;
        log_likelihood -= offset * offset;
    }
    return log_likelihood;
}

template <typename Context>
SearchResult search(
    Context& context, std::size_t sites_per_rank, int iterations, std::uint64_t seed,
    XMPI_Comm comm) {
    // Synthetic alignment sites, deterministic per rank.
    int rank = 0;
    XMPI_Comm_rank(comm, &rank);
    std::mt19937_64 site_gen(seed + static_cast<std::uint64_t>(rank));
    std::uniform_real_distribution<double> site_dist(0.0, 1.0);
    std::vector<double> sites(sites_per_rank);
    for (auto& site: sites) {
        site = site_dist(site_gen);
    }

    Model model;
    model.parameters = {{"alpha", 0.2}, {"beta", 0.9}, {"brlen", 0.5}};

    auto const evaluate = [&](Model const& candidate) {
        double local = 0.0;
        for (double const site: sites) {
            local += site_log_likelihood(site, candidate);
        }
        return context.allreduce_sum(local);
    };

    // Proposal schedule must be identical on all ranks (same seed).
    std::mt19937_64 proposal_gen(seed * 31 + 7);
    std::uniform_real_distribution<double> step_dist(-0.1, 0.1);
    std::uniform_int_distribution<std::size_t> which_dist(0, model.parameters.size() - 1);

    auto const counters_before = xmpi::profile::my_snapshot();
    double const start = XMPI_Wtime();

    double best = evaluate(model);
    for (int iteration = 0; iteration < iterations; ++iteration) {
        Model candidate = model;
        auto it = candidate.parameters.begin();
        std::advance(it, which_dist(proposal_gen));
        it->second += step_dist(proposal_gen);
        double const candidate_score = evaluate(candidate);
        if (candidate_score > best) {
            best = candidate_score;
            model = std::move(candidate);
            ++model.generation;
        }
        // Periodic model broadcast, as RAxML-NG does after checkpoints.
        if (iteration % 16 == 0) {
            context.mpi_broadcast_model(model);
        }
    }

    auto const counters_after = xmpi::profile::my_snapshot();
    SearchResult result;
    result.best_model = std::move(model);
    result.best_log_likelihood = best;
    result.elapsed_seconds = XMPI_Wtime() - start;
    result.mpi_calls = counters_after.total_calls() - counters_before.total_calls();
    return result;
}

} // namespace

SearchResult run_search(
    std::size_t sites_per_rank, int iterations, Layer layer, std::uint64_t seed,
    XMPI_Comm comm) {
    if (layer == Layer::legacy) {
        LegacyContext context(comm);
        return search(context, sites_per_rank, iterations, seed, comm);
    }
    KampingContext context(comm);
    return search(context, sites_per_rank, iterations, seed, comm);
}

} // namespace apps::raxml
