/// @file kasched.cpp
/// @brief The kasched scheduler loop: submission, work/steal phases, NBX
/// completion rounds, and elastic recovery. See scheduler.hpp and DESIGN.md.
#include "apps/kasched/scheduler.hpp"

#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "xmpi/profile.hpp"
#include "xmpi/xmpi.hpp"

namespace apps::kasched {
namespace {

/// RAII per-phase tracing span ("sched_submit" / "sched_recover" /
/// "sched_work" / "sched_round"); records nothing while tracing is off.
class PhaseSpan {
public:
    explicit PhaseSpan(char const* op)
        : active_(xmpi::profile::tracing_enabled()),
          op_(op) {
        if (active_) {
            start_ = XMPI_Wtime();
        }
    }
    PhaseSpan(PhaseSpan const&) = delete;
    PhaseSpan& operator=(PhaseSpan const&) = delete;
    ~PhaseSpan() {
        if (active_) {
            xmpi::profile::Span span;
            span.op = op_;
            span.start_s = start_;
            span.duration_s = XMPI_Wtime() - start_;
            try {
                xmpi::profile::record_span(span);
            } catch (...) {
                // Tracing must never mask the scheduler's own exception.
            }
        }
    }

private:
    bool active_;
    char const* op_;
    double start_ = 0.0;
};

/// Deterministic per-rank-per-epoch RNG for victim selection (no global
/// entropy: reruns with one seed are bit-reproducible, which the chaos
/// tests rely on).
class VictimRng {
public:
    VictimRng(std::uint64_t seed, int rank, std::uint64_t epoch)
        : state_(task_hash(seed ^ task_hash(static_cast<std::uint64_t>(rank) + 0x51ed2701 * (epoch + 1)))) {}

    std::uint64_t next() { return state_ = task_hash(state_); }

    /// A rank in [0, p) other than @c self (requires p >= 2).
    int victim(int p, int self) {
        auto const pick = static_cast<int>(next() % static_cast<std::uint64_t>(p - 1));
        return pick >= self ? pick + 1 : pick;
    }

private:
    std::uint64_t state_;
};

/// Owner-side enqueue with local spill: the window ring takes what fits,
/// the rest waits in the overflow stack until pops make room.
void enqueue(RmaDeque& deque, std::vector<TaskId>& overflow, TaskId id) {
    if (!overflow.empty() || !deque.push(id)) {
        overflow.push_back(id);
    }
}

void refill_from_overflow(RmaDeque& deque, std::vector<TaskId>& overflow) {
    while (!overflow.empty() && deque.push(overflow.back())) {
        overflow.pop_back();
    }
}

/// One randomized two-choice steal attempt: probe two victims' deque sizes
/// under shared locks, then raid the fuller one. @return no_task on an
/// empty-looking victim or a lost claiming CAS.
TaskId try_steal(
    RmaDeque& deque, RmaDeque::Window& win, VictimRng& rng, int p, int self, Stats& stats) {
    ++stats.steals_attempted;
    xmpi::profile::my_counters().sched_steals_attempted.fetch_add(1, std::memory_order_relaxed);
    int victim = rng.victim(p, self);
    if (p > 2) {
        int const second = rng.victim(p, self);
        if (second != victim) {
            std::uint64_t size_first = 0;
            std::uint64_t size_second = 0;
            {
                auto epoch = win.lock_guard(victim, kamping::LockType::shared);
                size_first = deque.size_of(victim);
                epoch.close();
            }
            {
                auto epoch = win.lock_guard(second, kamping::LockType::shared);
                size_second = deque.size_of(second);
                epoch.close();
            }
            if (size_second > size_first) {
                victim = second;
            }
        }
    }
    TaskId stolen = no_task;
    {
        auto epoch = win.lock_guard(victim, kamping::LockType::shared);
        stolen = deque.steal_from(victim);
        epoch.close();
    }
    if (stolen != no_task) {
        ++stats.steals_succeeded;
        xmpi::profile::my_counters().sched_steals_succeeded.fetch_add(
            1, std::memory_order_relaxed);
    }
    return stolen;
}

} // namespace

Stats run_scheduler(kamping::FullCommunicator& comm, Config const& config) {
    Stats stats;
    Ledger ledger(config.n_tasks);
    bool first_attempt = true;

    comm.with_elastic([&](kamping::FullCommunicator& c) {
        // Flip the attempt flag *before* anything that can throw: after a
        // mid-submission failure the survivors may have reached different
        // points, and they must still all agree on taking the recovery path
        // (which is self-healing — it re-derives the full pending set from
        // the ledger, independent of how far submission got).
        bool const initial = first_attempt;
        first_attempt = false;

        int const p = c.size_signed();
        int const self = c.rank();

        // --- Setup: ledger convergence (recovery only) -------------------
        if (!initial) {
            // A rank died (or the membership moved) mid-run: OR-merge the
            // survivors' replicas so any completion at least one survivor
            // witnessed becomes global, then re-queue the rest below.
            PhaseSpan span("sched_recover");
            auto const merged = c.allreduce(
                kamping::send_buf(ledger.bitmap()), kamping::op(kamping::ops::max{}));
            ledger.merge(merged);
            ++stats.resyncs;
        }

        // --- Per-epoch deque window --------------------------------------
        // win_allocate, not win_create(stack storage): a chaos kill unwinds
        // the victim's stack while laggard survivors may still have atomics
        // in flight at its deque — window-owned memory outlives every
        // reference, caller-scoped memory does not.
        auto win = c.win_allocate<std::uint64_t>(RmaDeque::storage_slots(config.deque_capacity));
        RmaDeque deque(win, config.deque_capacity, self);
        std::vector<TaskId> overflow;

        {
            auto self_epoch = win.lock_guard(self, kamping::LockType::shared);
            if (initial) {
                // --- Initial submission: NBX ids to their home owners ----
                PhaseSpan span("sched_submit");
                std::uint64_t const lo =
                    config.n_tasks * static_cast<std::uint64_t>(self) / static_cast<std::uint64_t>(p);
                std::uint64_t const hi = config.n_tasks * (static_cast<std::uint64_t>(self) + 1)
                                         / static_cast<std::uint64_t>(p);
                std::unordered_map<int, std::vector<std::uint64_t>> outbox;
                for (TaskId id = lo; id < hi; ++id) {
                    ++stats.submitted;
                    int const owner = owner_of(id, p, config.skew_shares);
                    if (owner == self) {
                        enqueue(deque, overflow, id); // no wire for self-submissions
                    } else {
                        outbox[owner].push_back(id);
                    }
                }
                c.alltoallv_sparse(outbox, [&](int /*source*/, std::vector<std::uint64_t> ids) {
                    for (auto const id: ids) {
                        enqueue(deque, overflow, id);
                    }
                });
            } else {
                // --- Recovery re-queue: every task no survivor saw complete
                // is re-queued under the new membership's placement. -------
                PhaseSpan span("sched_recover");
                for (TaskId const id: ledger.pending()) {
                    if (owner_of(id, p, config.skew_shares) == self) {
                        enqueue(deque, overflow, id);
                        ++stats.requeued_after_failure;
                        xmpi::profile::my_counters().sched_requeue_after_failure.fetch_add(
                            1, std::memory_order_relaxed);
                    }
                }
            }
            self_epoch.close();
        }

        // --- Work / round loop -------------------------------------------
        std::uint64_t const epoch = c.membership_epoch();
        VictimRng rng(config.seed, self, epoch);
        std::vector<std::uint64_t> round_completions;
        while (true) {
            {
                PhaseSpan span("sched_work");
                auto self_epoch = win.lock_guard(self, kamping::LockType::shared);
                std::uint32_t executed_this_round = 0;
                std::uint32_t failed_steals = 0;
                while (executed_this_round < config.tasks_per_round) {
                    refill_from_overflow(deque, overflow);
                    TaskId id = deque.pop();
                    if (id == no_task && p > 1) {
                        id = try_steal(deque, win, rng, p, self, stats);
                    }
                    if (id == no_task) {
                        if (overflow.empty() && (p == 1 || ++failed_steals > config.max_failed_steals)) {
                            break; // starved: hand progress to the round
                        }
                        // Exponential backoff: give victims (time-sliced
                        // onto the same cores) room to produce work.
                        for (std::uint32_t i = 0; i < (1u << std::min(failed_steals, 6u)); ++i) {
                            std::this_thread::yield();
                        }
                        continue;
                    }
                    failed_steals = 0;
                    (void)execute(id, config.work_per_task);
                    ++stats.tasks_executed;
                    xmpi::profile::my_counters().sched_tasks_executed.fetch_add(
                        1, std::memory_order_relaxed);
                    if (ledger.mark_done(id)) {
                        round_completions.push_back(id);
                    } else {
                        ++stats.duplicate_completions;
                    }
                    ++executed_this_round;
                }
                self_epoch.close();
            }

            {
                // Completion notifications to every peer, then a termination
                // vote. Both are collective, which keeps the ranks' rounds in
                // lockstep and is where a membership change surfaces.
                PhaseSpan span("sched_round");
                std::unordered_map<int, std::vector<std::uint64_t>> outbox;
                if (!round_completions.empty()) {
                    for (int peer = 0; peer < p; ++peer) {
                        if (peer != self) {
                            outbox.emplace(peer, round_completions);
                        }
                    }
                }
                c.alltoallv_sparse(outbox, [&](int /*source*/, std::vector<std::uint64_t> ids) {
                    for (auto const id: ids) {
                        if (!ledger.mark_done(id)) {
                            ++stats.duplicate_completions;
                        }
                    }
                });
                round_completions.clear();
                ++stats.rounds;
                auto const agreed_done = c.allreduce_single(
                    kamping::send_buf(ledger.done_count()), kamping::op(kamping::ops::min{}));
                if (agreed_done == config.n_tasks) {
                    break;
                }
            }
        }

        // --- Checksum agreement ------------------------------------------
        stats.done_tasks = ledger.done_count();
        stats.checksum = ledger.checksum();
        auto const lo = c.allreduce_single(
            kamping::send_buf(stats.checksum), kamping::op(kamping::ops::min{}));
        auto const hi = c.allreduce_single(
            kamping::send_buf(stats.checksum), kamping::op(kamping::ops::max{}));
        stats.checksum_converged = (lo == hi) && stats.done_tasks == config.n_tasks;
        win.free();
    });
    return stats;
}

} // namespace apps::kasched
