#include "apps/graphgen.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>

#include "kassert/kassert.hpp"

namespace apps {

/// @brief Builds the local adjacency array from a global undirected edge
/// list (u, v): both directions are materialized, duplicates removed.
DistributedGraph fragment_from_edges(VertexId n, EdgeList const& edges, int rank, int size) {
    DistributedGraph graph;
    graph.global_vertex_count = n;
    graph.vertex_distribution = block_distribution(n, size);
    graph.rank = rank;

    VertexId const first = graph.first_vertex();
    VertexId const local_n = graph.local_vertex_count();

    // Collect both directions of edges touching local vertices.
    std::vector<std::pair<VertexId, VertexId>> local_edges;
    for (auto const& [u, v]: edges) {
        if (u == v) {
            continue;
        }
        if (graph.is_local(u)) {
            local_edges.emplace_back(u, v);
        }
        if (graph.is_local(v)) {
            local_edges.emplace_back(v, u);
        }
    }
    std::sort(local_edges.begin(), local_edges.end());
    local_edges.erase(
        std::unique(local_edges.begin(), local_edges.end()), local_edges.end());

    graph.offsets.assign(static_cast<std::size_t>(local_n) + 1, 0);
    for (auto const& [u, v]: local_edges) {
        ++graph.offsets[static_cast<std::size_t>(u - first) + 1];
    }
    for (std::size_t i = 1; i < graph.offsets.size(); ++i) {
        graph.offsets[i] += graph.offsets[i - 1];
    }
    graph.adjacency.resize(local_edges.size());
    std::vector<std::size_t> cursor(graph.offsets.begin(), graph.offsets.end() - 1);
    for (auto const& [u, v]: local_edges) {
        graph.adjacency[cursor[static_cast<std::size_t>(u - first)]++] = v;
    }
    return graph;
}

std::vector<VertexId> block_distribution(VertexId n, int p) {
    std::vector<VertexId> distribution(static_cast<std::size_t>(p) + 1);
    VertexId const chunk = n / static_cast<VertexId>(p);
    VertexId const remainder = n % static_cast<VertexId>(p);
    VertexId cursor = 0;
    for (int r = 0; r <= p; ++r) {
        distribution[static_cast<std::size_t>(r)] = cursor;
        if (r < p) {
            cursor += chunk + (static_cast<VertexId>(r) < remainder ? 1 : 0);
        }
    }
    distribution.back() = n;
    return distribution;
}

EdgeList gnm_edges(VertexId n, std::uint64_t m, std::uint64_t seed) {
    KASSERT(n > 1, "GNM needs at least two vertices");
    std::mt19937_64 gen(seed);
    std::uniform_int_distribution<VertexId> pick(0, n - 1);
    EdgeList edges;
    edges.reserve(m);
    for (std::uint64_t i = 0; i < m; ++i) {
        edges.emplace_back(pick(gen), pick(gen));
    }
    return edges;
}

DistributedGraph generate_gnm(
    VertexId n, std::uint64_t m, int rank, int size, std::uint64_t seed) {
    return fragment_from_edges(n, gnm_edges(n, m, seed), rank, size);
}

double rgg2d_radius_for_degree(VertexId n, double average_degree) {
    // Expected degree of an RGG-2D point: n * pi * r^2.
    return std::sqrt(average_degree / (std::numbers::pi * static_cast<double>(n)));
}

EdgeList rgg2d_edges(VertexId n, double radius, std::uint64_t seed) {
    std::mt19937_64 gen(seed);
    std::uniform_real_distribution<double> coordinate(0.0, 1.0);
    std::vector<std::pair<double, double>> points(n);
    for (auto& [x, y]: points) {
        x = coordinate(gen);
        y = coordinate(gen);
    }
    // Number vertices in cell-row order for spatial locality.
    auto const cells = static_cast<std::size_t>(std::max(1.0, std::floor(1.0 / radius)));
    auto const cell_of = [&](double value) {
        return std::min(cells - 1, static_cast<std::size_t>(value * static_cast<double>(cells)));
    };
    std::vector<VertexId> order(n);
    for (VertexId i = 0; i < n; ++i) {
        order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
        auto const key_a = std::make_pair(cell_of(points[a].second), cell_of(points[a].first));
        auto const key_b = std::make_pair(cell_of(points[b].second), cell_of(points[b].first));
        return key_a != key_b ? key_a < key_b : a < b;
    });
    std::vector<std::pair<double, double>> sorted_points(n);
    for (VertexId i = 0; i < n; ++i) {
        sorted_points[i] = points[order[i]];
    }

    // Bucket grid for neighbour search.
    std::vector<std::vector<VertexId>> buckets(cells * cells);
    for (VertexId i = 0; i < n; ++i) {
        buckets[cell_of(sorted_points[i].second) * cells + cell_of(sorted_points[i].first)]
            .push_back(i);
    }
    double const radius_squared = radius * radius;
    EdgeList edges;
    for (VertexId u = 0; u < n; ++u) {
        auto const [ux, uy] = sorted_points[u];
        std::size_t const cx = cell_of(ux);
        std::size_t const cy = cell_of(uy);
        for (std::size_t dy = cy == 0 ? 0 : cy - 1; dy <= std::min(cells - 1, cy + 1); ++dy) {
            for (std::size_t dx = cx == 0 ? 0 : cx - 1; dx <= std::min(cells - 1, cx + 1);
                 ++dx) {
                for (VertexId v: buckets[dy * cells + dx]) {
                    if (v <= u) {
                        continue; // each undirected edge once
                    }
                    double const ddx = ux - sorted_points[v].first;
                    double const ddy = uy - sorted_points[v].second;
                    if (ddx * ddx + ddy * ddy <= radius_squared) {
                        edges.emplace_back(u, v);
                    }
                }
            }
        }
    }
    return edges;
}

DistributedGraph generate_rgg2d(
    VertexId n, double radius, int rank, int size, std::uint64_t seed) {
    return fragment_from_edges(n, rgg2d_edges(n, radius, seed), rank, size);
}

EdgeList rhg_edges(VertexId n, double alpha, double average_degree, std::uint64_t seed) {
    // Disc radius calibrated like Krioukov et al.: R = 2 ln n + C, with C
    // tuned via the average-degree relation (approximation adequate for the
    // benchmark's purposes).
    double const R = 2.0 * std::log(static_cast<double>(n))
                     + 2.0 * std::log(8.0 * alpha * alpha / (std::numbers::pi * average_degree * (alpha - 0.5) * (alpha - 0.5)));

    std::mt19937_64 gen(seed);
    std::uniform_real_distribution<double> uniform(0.0, 1.0);
    struct Point {
        double angle;
        double cosh_r;
        double sinh_r;
    };
    std::vector<Point> points(n);
    for (auto& point: points) {
        point.angle = uniform(gen) * 2.0 * std::numbers::pi;
        // Radial CDF: F(r) = (cosh(alpha r) - 1) / (cosh(alpha R) - 1).
        double const u = uniform(gen);
        double const r =
            std::acosh(1.0 + u * (std::cosh(alpha * R) - 1.0)) / alpha;
        point.cosh_r = std::cosh(r);
        point.sinh_r = std::sinh(r);
    }
    // Number vertices by angle: partial locality under block distribution.
    std::sort(points.begin(), points.end(), [](Point const& a, Point const& b) {
        return a.angle < b.angle;
    });

    double const cosh_R = std::cosh(R);
    EdgeList edges;
    for (VertexId u = 0; u < n; ++u) {
        for (VertexId v = u + 1; v < n; ++v) {
            double const delta = points[u].angle - points[v].angle;
            double const cosh_distance =
                points[u].cosh_r * points[v].cosh_r
                - points[u].sinh_r * points[v].sinh_r * std::cos(delta);
            if (cosh_distance <= cosh_R) {
                edges.emplace_back(u, v);
            }
        }
    }
    return edges;
}

DistributedGraph generate_rhg(
    VertexId n, double alpha, double average_degree, int rank, int size, std::uint64_t seed) {
    return fragment_from_edges(n, rhg_edges(n, alpha, average_degree, seed), rank, size);
}

} // namespace apps
