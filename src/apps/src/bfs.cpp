#include "apps/bfs.hpp"

#include <algorithm>
#include <deque>
#include <numeric>
#include <unordered_map>

#include "kamping/plugin/plugins.hpp"
#include "kamping/utils.hpp"

namespace apps {
namespace {

using Comm = kamping::FullCommunicator;
using kamping::op;
using kamping::send_buf;
using kamping::send_counts;

/// @brief Expands the local frontier: unvisited neighbours grouped by owner.
std::unordered_map<int, std::vector<VertexId>> expand_frontier(
    DistributedGraph const& graph, std::vector<VertexId> const& frontier,
    std::vector<VertexId>& distance, VertexId level) {
    std::unordered_map<int, std::vector<VertexId>> next;
    for (VertexId const v: frontier) {
        auto const [begin, end] = graph.neighbors(graph.to_local(v));
        for (auto const* it = begin; it != end; ++it) {
            VertexId const neighbor = *it;
            if (graph.is_local(neighbor)) {
                // Local relaxation happens immediately.
                auto& d = distance[graph.to_local(neighbor)];
                if (d == kUnreached) {
                    d = level + 1;
                    next[graph.rank].push_back(neighbor);
                }
            } else {
                next[graph.owner_of(neighbor)].push_back(neighbor);
            }
        }
    }
    return next;
}

/// @brief Rank-communication topology: owners of any remote neighbour
/// (send side) and, by symmetry of undirected graphs, the receive side too.
std::vector<int> communication_partners(DistributedGraph const& graph) {
    std::vector<int> partners;
    for (VertexId const neighbor: graph.adjacency) {
        if (!graph.is_local(neighbor)) {
            partners.push_back(graph.owner_of(neighbor));
        }
    }
    std::sort(partners.begin(), partners.end());
    partners.erase(std::unique(partners.begin(), partners.end()), partners.end());
    return partners;
}

/// @brief Flattens owner -> vertices into per-partner blocks.
struct PartnerBuckets {
    std::vector<VertexId> data;
    std::vector<int> counts;
    std::vector<int> displs;
};

PartnerBuckets bucket_by_partner(
    std::unordered_map<int, std::vector<VertexId>> const& messages,
    std::vector<int> const& partners) {
    PartnerBuckets buckets;
    buckets.counts.assign(partners.size(), 0);
    buckets.displs.assign(partners.size(), 0);
    for (std::size_t i = 0; i < partners.size(); ++i) {
        auto const it = messages.find(partners[i]);
        buckets.counts[i] = it == messages.end() ? 0 : static_cast<int>(it->second.size());
    }
    std::exclusive_scan(buckets.counts.begin(), buckets.counts.end(), buckets.displs.begin(), 0);
    buckets.data.resize(
        partners.empty()
            ? 0
            : static_cast<std::size_t>(buckets.displs.back() + buckets.counts.back()));
    for (std::size_t i = 0; i < partners.size(); ++i) {
        auto const it = messages.find(partners[i]);
        if (it != messages.end()) {
            std::copy(
                it->second.begin(), it->second.end(),
                buckets.data.begin() + buckets.displs[i]);
        }
    }
    return buckets;
}

/// @brief One frontier exchange with the selected strategy; returns the
/// incoming vertex ids (all owned by this rank).
class Exchanger {
public:
    Exchanger(DistributedGraph const& graph, BfsExchange strategy, XMPI_Comm comm)
        : graph_(graph),
          strategy_(strategy),
          comm_(comm),
          kamping_comm_(comm) {
        if (strategy == BfsExchange::mpi_neighbor) {
            topology_comm_ = build_topology();
        }
    }

    ~Exchanger() {
        if (topology_comm_ != XMPI_COMM_NULL) {
            XMPI_Comm_free(&topology_comm_);
        }
    }

    std::vector<VertexId> exchange(std::unordered_map<int, std::vector<VertexId>> messages) {
        switch (strategy_) {
            case BfsExchange::mpi_alltoallv:
                return exchange_alltoallv(messages);
            case BfsExchange::mpi_neighbor:
                return exchange_neighbor(messages, topology_comm_);
            case BfsExchange::mpi_neighbor_rebuild: {
                // Dynamic-pattern simulation: rebuild the graph communicator
                // before every exchange (paper, Section V-A).
                XMPI_Comm fresh = build_topology();
                auto received = exchange_neighbor(messages, fresh);
                XMPI_Comm_free(&fresh);
                return received;
            }
            case BfsExchange::kamping:
                return kamping::with_flattened(messages, kamping_comm_.size())
                    .call([&](auto... flattened) {
                        return kamping_comm_.alltoallv(std::move(flattened)...);
                    });
            case BfsExchange::kamping_sparse: {
                // Deliver local messages directly; only remote destinations
                // take part in the sparse exchange.
                std::vector<VertexId> received;
                if (auto const it = messages.find(kamping_comm_.rank());
                    it != messages.end()) {
                    received = std::move(it->second);
                    messages.erase(it);
                }
                kamping_comm_.alltoallv_sparse(
                    messages, [&](int, std::vector<VertexId> payload) {
                        received.insert(received.end(), payload.begin(), payload.end());
                    });
                return received;
            }
            case BfsExchange::kamping_grid: {
                auto const flattened =
                    kamping::with_flattened(messages, kamping_comm_.size());
                return kamping_comm_.alltoallv_grid_flat(flattened.data, flattened.counts);
            }
        }
        return {};
    }

private:
    std::vector<VertexId> exchange_alltoallv(
        std::unordered_map<int, std::vector<VertexId>> const& messages) {
        int size = 0;
        XMPI_Comm_size(comm_, &size);
        std::vector<int> send_count_values(static_cast<std::size_t>(size), 0);
        std::vector<int> send_displs(static_cast<std::size_t>(size), 0);
        for (auto const& [dest, payload]: messages) {
            send_count_values[static_cast<std::size_t>(dest)] =
                static_cast<int>(payload.size());
        }
        std::exclusive_scan(
            send_count_values.begin(), send_count_values.end(), send_displs.begin(), 0);
        std::vector<VertexId> send_data(
            static_cast<std::size_t>(send_displs.back() + send_count_values.back()));
        for (auto const& [dest, payload]: messages) {
            std::copy(
                payload.begin(), payload.end(),
                send_data.begin() + send_displs[static_cast<std::size_t>(dest)]);
        }
        std::vector<int> recv_counts(static_cast<std::size_t>(size));
        XMPI_Alltoall(
            send_count_values.data(), 1, XMPI_INT, recv_counts.data(), 1, XMPI_INT, comm_);
        std::vector<int> recv_displs(static_cast<std::size_t>(size));
        std::exclusive_scan(recv_counts.begin(), recv_counts.end(), recv_displs.begin(), 0);
        std::vector<VertexId> recv_data(
            static_cast<std::size_t>(recv_displs.back() + recv_counts.back()));
        XMPI_Alltoallv(
            send_data.data(), send_count_values.data(), send_displs.data(),
            XMPI_UNSIGNED_LONG_LONG, recv_data.data(), recv_counts.data(), recv_displs.data(),
            XMPI_UNSIGNED_LONG_LONG, comm_);
        return recv_data;
    }

    XMPI_Comm build_topology() {
        auto const partners = communication_partners(graph_);
        XMPI_Comm topology = XMPI_COMM_NULL;
        XMPI_Dist_graph_create_adjacent(
            comm_, static_cast<int>(partners.size()), partners.data(), nullptr,
            static_cast<int>(partners.size()), partners.data(), nullptr, 0, &topology);
        return topology;
    }

    std::vector<VertexId> exchange_neighbor(
        std::unordered_map<int, std::vector<VertexId>>& messages, XMPI_Comm topology) {
        auto const partners = communication_partners(graph_);
        // Local messages are relaxed in place; neighbours handle the rest.
        auto const local_it = messages.find(graph_.rank);
        std::vector<VertexId> received;
        if (local_it != messages.end()) {
            received = std::move(local_it->second);
            messages.erase(local_it);
        }
        auto buckets = bucket_by_partner(messages, partners);

        // Exchange counts over the topology, then payloads.
        std::vector<int> recv_counts(partners.size(), 0);
        std::vector<int> const ones_displs = [&] {
            std::vector<int> displs(partners.size());
            std::iota(displs.begin(), displs.end(), 0);
            return displs;
        }();
        std::vector<int> const one_counts(partners.size(), 1);
        XMPI_Neighbor_alltoallv(
            buckets.counts.data(), one_counts.data(), ones_displs.data(), XMPI_INT,
            recv_counts.data(), one_counts.data(), ones_displs.data(), XMPI_INT, topology);
        std::vector<int> recv_displs(partners.size(), 0);
        std::exclusive_scan(recv_counts.begin(), recv_counts.end(), recv_displs.begin(), 0);
        std::size_t const incoming =
            partners.empty()
                ? 0
                : static_cast<std::size_t>(recv_displs.back() + recv_counts.back());
        std::vector<VertexId> payload(incoming);
        XMPI_Neighbor_alltoallv(
            buckets.data.data(), buckets.counts.data(), buckets.displs.data(),
            XMPI_UNSIGNED_LONG_LONG, payload.data(), recv_counts.data(), recv_displs.data(),
            XMPI_UNSIGNED_LONG_LONG, topology);
        received.insert(received.end(), payload.begin(), payload.end());
        return received;
    }

    DistributedGraph const& graph_;
    BfsExchange strategy_;
    XMPI_Comm comm_;
    Comm kamping_comm_;
    XMPI_Comm topology_comm_ = XMPI_COMM_NULL;
};

} // namespace

char const* to_string(BfsExchange strategy) {
    switch (strategy) {
        case BfsExchange::mpi_alltoallv:
            return "mpi";
        case BfsExchange::mpi_neighbor:
            return "mpi_neighbor";
        case BfsExchange::mpi_neighbor_rebuild:
            return "mpi_neighbor_rebuild";
        case BfsExchange::kamping:
            return "kamping";
        case BfsExchange::kamping_sparse:
            return "kamping_sparse";
        case BfsExchange::kamping_grid:
            return "kamping_grid";
    }
    return "?";
}

std::vector<VertexId>
bfs(DistributedGraph const& graph, VertexId source, BfsExchange strategy, XMPI_Comm comm) {
    Comm kamping_comm(comm);
    Exchanger exchanger(graph, strategy, comm);

    std::vector<VertexId> distance(graph.local_vertex_count(), kUnreached);
    std::vector<VertexId> frontier;
    if (graph.is_local(source)) {
        frontier.push_back(source);
        distance[graph.to_local(source)] = 0;
    }
    VertexId level = 0;
    while (true) {
        bool const globally_empty = kamping_comm.allreduce_single(
            send_buf(frontier.empty()), op(std::logical_and<>{}));
        if (globally_empty) {
            break;
        }
        auto next_messages = expand_frontier(graph, frontier, distance, level);
        auto const received = exchanger.exchange(std::move(next_messages));
        frontier.clear();
        for (VertexId const v: received) {
            auto& d = distance[graph.to_local(v)];
            if (d == kUnreached || d == level + 1) {
                if (d == kUnreached) {
                    d = level + 1;
                }
                frontier.push_back(v);
            }
        }
        // Deduplicate: a vertex may be reached from several sources.
        std::sort(frontier.begin(), frontier.end());
        frontier.erase(std::unique(frontier.begin(), frontier.end()), frontier.end());
        ++level;
    }
    return distance;
}

std::vector<VertexId> bfs_reference(
    std::vector<std::vector<VertexId>> const& global_adjacency, VertexId source) {
    std::vector<VertexId> distance(global_adjacency.size(), kUnreached);
    std::deque<VertexId> queue;
    distance[source] = 0;
    queue.push_back(source);
    while (!queue.empty()) {
        VertexId const v = queue.front();
        queue.pop_front();
        for (VertexId const neighbor: global_adjacency[v]) {
            if (distance[neighbor] == kUnreached) {
                distance[neighbor] = distance[v] + 1;
                queue.push_back(neighbor);
            }
        }
    }
    return distance;
}

} // namespace apps
