/// @file rma.hpp
/// @brief One-sided communication: the Window handle and the named-parameter
/// put/get/accumulate wrappers, routed through the call plan of pipeline.hpp.
///
/// A Window<T> is created collectively via comm.win_create(storage) and
/// exposes the caller's contiguous storage to every rank of the
/// communicator. Displacements are in *elements* (the window's disp_unit is
/// sizeof(T)), so binding-level code never does byte arithmetic:
///
///   std::vector<int> local(n);
///   auto win = comm.win_create(local);
///   {
///       auto epoch = win.fence_guard();
///       win.put(kamping::send_buf(block), kamping::target_rank(right),
///               kamping::target_disp(0));
///   } // closing fence: the put is applied, peers may read
///
/// Memory-safety contract (paper, Section III-E applied to RMA): put and get
/// complete at the *next synchronization call*, after the wrapper returned.
/// Their buffers therefore must be caller-owned lvalues that outlive the
/// epoch — owning (moved-in / scalar) buffers are rejected at compile time.
/// accumulate applies eagerly inside the wrapper (that is what makes user
/// lambdas usable as ops: their activation only lives for the call), so it
/// accepts owning send buffers too.
#pragma once

#include <cstddef>
#include <utility>

#include "kamping/collectives_reduce.hpp" // get_op_parameter
#include "kamping/named_parameters.hpp"
#include "kamping/pipeline.hpp"

namespace kamping {

/// @brief Passive-target lock flavours (MPI_LOCK_SHARED / MPI_LOCK_EXCLUSIVE).
enum class LockType : int {
    shared = XMPI_LOCK_SHARED,
    exclusive = XMPI_LOCK_EXCLUSIVE,
};

namespace internal {

template <typename... Args>
std::ptrdiff_t get_target_disp(Args&&... args) {
    if constexpr (has_parameter_v<ParameterType::target_disp, Args...>) {
        return select_parameter<ParameterType::target_disp>(args...).value;
    } else {
        return 0;
    }
}

/// @brief win.put(send_buf(v), target_rank(r), [target_disp], [send_count]).
template <typename T, typename... Args>
void put_impl(XMPI_Comm comm, XMPI_Win win, Args&&... args) {
    KAMPING_PLAN_REQUIRE((has_parameter_v<ParameterType::send_buf, Args...>), "put", "send_buf");
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::target_rank, Args...>), "put", "target_rank");
    KAMPING_CHECK_PARAMETERS(
        Args, "put", ParameterType::send_buf, ParameterType::target_rank,
        ParameterType::target_disp, ParameterType::send_count);
    CollectivePlan<plan_ops::put, Args...> plan(comm);
    auto&& send = ResolveSend{}(plan, args...);
    using SendBuffer = std::remove_cvref_t<decltype(send)>;
    static_assert(
        std::is_same_v<buffer_value_t<SendBuffer>, T>,
        "the send buffer's element type must match the window's element type");
    static_assert(
        SendBuffer::ownership == BufferOwnership::referencing,
        "put queues a zero-copy reference to the origin buffer and completes at the next "
        "synchronization call, after this wrapper returned: pass an lvalue container that "
        "outlives the epoch (an owning or temporary send_buf would dangle)");
    int count = static_cast<int>(send.size());
    if constexpr (has_parameter_v<ParameterType::send_count, Args...>) {
        count = select_parameter<ParameterType::send_count>(args...).value;
    }
    int const target = select_parameter<ParameterType::target_rank>(args...).value;
    std::ptrdiff_t const disp = get_target_disp(args...);
    plan.note_bytes_put(static_cast<std::uint64_t>(count) * sizeof(T));
    Dispatch{}(plan, "XMPI_Put", [&] {
        return XMPI_Put(
            send.data(), count, mpi_datatype<T>(), target, disp, count, mpi_datatype<T>(), win);
    });
}

/// @brief win.get(recv_buf(v), target_rank(r), [target_disp], [recv_count]).
template <typename T, typename... Args>
void get_impl(XMPI_Comm comm, XMPI_Win win, Args&&... args) {
    KAMPING_PLAN_REQUIRE((has_parameter_v<ParameterType::recv_buf, Args...>), "get", "recv_buf");
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::target_rank, Args...>), "get", "target_rank");
    KAMPING_CHECK_PARAMETERS(
        Args, "get", ParameterType::recv_buf, ParameterType::target_rank,
        ParameterType::target_disp, ParameterType::recv_count);
    CollectivePlan<plan_ops::get, Args...> plan(comm);
    auto&& recv = select_parameter<ParameterType::recv_buf>(args...);
    using RecvBuffer = std::remove_cvref_t<decltype(recv)>;
    static_assert(
        std::is_same_v<buffer_value_t<RecvBuffer>, T>,
        "the receive buffer's element type must match the window's element type");
    static_assert(
        RecvBuffer::ownership == BufferOwnership::referencing,
        "get fills the origin buffer at the next synchronization call, after this wrapper "
        "returned: pass recv_buf(lvalue) referencing storage that outlives the epoch (an "
        "owning or moved-in recv_buf would be destroyed before the data arrives)");
    int count = static_cast<int>(recv.size());
    if constexpr (has_parameter_v<ParameterType::recv_count, Args...>) {
        count = select_parameter<ParameterType::recv_count>(args...).value;
        recv.resize_to(static_cast<std::size_t>(count));
    }
    int const target = select_parameter<ParameterType::target_rank>(args...).value;
    std::ptrdiff_t const disp = get_target_disp(args...);
    plan.note_bytes_got(static_cast<std::uint64_t>(count) * sizeof(T));
    Dispatch{}(plan, "XMPI_Get", [&] {
        return XMPI_Get(
            recv.data(), count, mpi_datatype<T>(), target, disp, count, mpi_datatype<T>(), win);
    });
}

/// @brief win.accumulate(send_buf(v), target_rank(r), op(...), [target_disp],
/// [send_count]). Applies eagerly; send_buf may be owning (scalars welcome).
template <typename T, typename... Args>
void accumulate_impl(XMPI_Comm comm, XMPI_Win win, Args&&... args) {
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::send_buf, Args...>), "accumulate", "send_buf");
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::target_rank, Args...>), "accumulate", "target_rank");
    KAMPING_PLAN_REQUIRE((has_parameter_v<ParameterType::op, Args...>), "accumulate", "op");
    KAMPING_CHECK_PARAMETERS(
        Args, "accumulate", ParameterType::send_buf, ParameterType::target_rank,
        ParameterType::target_disp, ParameterType::send_count, ParameterType::op);
    CollectivePlan<plan_ops::accumulate, Args...> plan(comm);
    auto&& send = ResolveSend{}(plan, args...);
    static_assert(
        std::is_same_v<buffer_value_t<decltype(send)>, T>,
        "the send buffer's element type must match the window's element type");
    int count = static_cast<int>(send.size());
    if constexpr (has_parameter_v<ParameterType::send_count, Args...>) {
        count = select_parameter<ParameterType::send_count>(args...).value;
    }
    int const target = select_parameter<ParameterType::target_rank>(args...).value;
    std::ptrdiff_t const disp = get_target_disp(args...);
    auto&& operation = get_op_parameter(args...);
    // Eager application is what permits stateful user ops here: the
    // activation (trampoline context + op handle) lives exactly as long as
    // the XMPI_Accumulate call needs it.
    auto activation = operation.template activate<T>();
    plan.note_bytes_put(static_cast<std::uint64_t>(count) * sizeof(T));
    Dispatch{}(plan, "XMPI_Accumulate", [&] {
        return XMPI_Accumulate(
            send.data(), count, mpi_datatype<T>(), target, disp, count, mpi_datatype<T>(),
            activation.handle(), win);
    });
}

/// @brief win.fetch_op(send_buf(v), target_rank(r), op(...), [recv_buf(out)],
/// [target_disp]). Atomic fetch-and-op on one element: fetches the target
/// element (into recv_buf when given), then applies `target = op(v, target)`.
/// Eager like accumulate, so send_buf may be owning (scalars welcome) and the
/// fetched value is valid on return.
template <typename T, typename... Args>
void fetch_op_impl(XMPI_Comm comm, XMPI_Win win, Args&&... args) {
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::send_buf, Args...>), "fetch_op", "send_buf");
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::target_rank, Args...>), "fetch_op", "target_rank");
    KAMPING_PLAN_REQUIRE((has_parameter_v<ParameterType::op, Args...>), "fetch_op", "op");
    KAMPING_CHECK_PARAMETERS(
        Args, "fetch_op", ParameterType::send_buf, ParameterType::target_rank,
        ParameterType::target_disp, ParameterType::op, ParameterType::recv_buf);
    CollectivePlan<plan_ops::fetch_op, Args...> plan(comm);
    auto&& send = ResolveSend{}(plan, args...);
    static_assert(
        std::is_same_v<buffer_value_t<decltype(send)>, T>,
        "the send buffer's element type must match the window's element type");
    int const target = select_parameter<ParameterType::target_rank>(args...).value;
    std::ptrdiff_t const disp = get_target_disp(args...);
    auto&& operation = get_op_parameter(args...);
    auto activation = operation.template activate<T>();
    // The fetched element lands directly in caller storage — no result
    // assembly. Without a recv_buf the fetch goes to a discarded local
    // (pure atomic update, e.g. a counter bump).
    T discarded{};
    T* result = &discarded;
    if constexpr (has_parameter_v<ParameterType::recv_buf, Args...>) {
        auto&& recv = select_parameter<ParameterType::recv_buf>(args...);
        using RecvBuffer = std::remove_cvref_t<decltype(recv)>;
        static_assert(
            std::is_same_v<buffer_value_t<RecvBuffer>, T>,
            "the receive buffer's element type must match the window's element type");
        static_assert(
            RecvBuffer::ownership == BufferOwnership::referencing,
            "fetch_op writes the fetched element straight into caller-owned storage: pass "
            "recv_buf(lvalue) referencing a variable you keep (an owning or temporary recv_buf "
            "would discard the fetched value with the wrapper's return)");
        recv.resize_to(1);
        result = recv.data();
    }
    plan.note_bytes_put(sizeof(T));
    plan.note_bytes_got(sizeof(T));
    Dispatch{}(plan, "XMPI_Fetch_and_op", [&] {
        return XMPI_Fetch_and_op(
            send.data(), result, mpi_datatype<T>(), target, disp, activation.handle(), win);
    });
}

/// @brief win.compare_swap(send_buf(desired), compare_buf(expected),
/// target_rank(r), [recv_buf(out)], [target_disp]). Atomic compare-and-swap
/// on one element: fetches the target element (into recv_buf when given) and
/// stores the desired value iff the fetched element equals the expected one.
/// The swap succeeded iff the fetched value equals @c expected.
template <typename T, typename... Args>
void compare_swap_impl(XMPI_Comm comm, XMPI_Win win, Args&&... args) {
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::send_buf, Args...>), "compare_swap", "send_buf");
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::compare_buf, Args...>), "compare_swap", "compare_buf");
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::target_rank, Args...>), "compare_swap", "target_rank");
    KAMPING_CHECK_PARAMETERS(
        Args, "compare_swap", ParameterType::send_buf, ParameterType::compare_buf,
        ParameterType::target_rank, ParameterType::target_disp, ParameterType::recv_buf);
    CollectivePlan<plan_ops::compare_swap, Args...> plan(comm);
    auto&& send = ResolveSend{}(plan, args...);
    static_assert(
        std::is_same_v<buffer_value_t<decltype(send)>, T>,
        "the send buffer's element type must match the window's element type");
    auto&& compare = select_parameter<ParameterType::compare_buf>(args...);
    static_assert(
        std::is_same_v<std::remove_cvref_t<decltype(compare.value)>, T>,
        "the compare value's type must match the window's element type");
    int const target = select_parameter<ParameterType::target_rank>(args...).value;
    std::ptrdiff_t const disp = get_target_disp(args...);
    T discarded{};
    T* result = &discarded;
    if constexpr (has_parameter_v<ParameterType::recv_buf, Args...>) {
        auto&& recv = select_parameter<ParameterType::recv_buf>(args...);
        using RecvBuffer = std::remove_cvref_t<decltype(recv)>;
        static_assert(
            std::is_same_v<buffer_value_t<RecvBuffer>, T>,
            "the receive buffer's element type must match the window's element type");
        static_assert(
            RecvBuffer::ownership == BufferOwnership::referencing,
            "compare_swap writes the fetched element straight into caller-owned storage: pass "
            "recv_buf(lvalue) referencing a variable you keep (an owning or temporary recv_buf "
            "would discard the fetched value with the wrapper's return)");
        recv.resize_to(1);
        result = recv.data();
    }
    plan.note_bytes_put(sizeof(T));
    plan.note_bytes_got(sizeof(T));
    Dispatch{}(plan, "XMPI_Compare_and_swap", [&] {
        return XMPI_Compare_and_swap(
            send.data(), &compare.value, result, mpi_datatype<T>(), target, disp, win);
    });
}

} // namespace internal

template <typename T>
class Window;

/// @brief RAII active-target epoch: fences on construction (opening the
/// epoch) and on scope exit (closing it — draining this rank's pending ops).
/// Use close() to observe errors of the closing fence; the destructor
/// swallows them when close() was not called.
template <typename T>
class [[nodiscard]] FenceGuard {
public:
    explicit FenceGuard(Window<T>& window) : window_(&window) { window_->fence(); }
    ~FenceGuard() {
        if (window_ != nullptr) {
            try {
                window_->fence();
            } catch (...) {
                // A destructor must not throw; call close() for a checked
                // closing fence.
            }
        }
    }
    FenceGuard(FenceGuard const&) = delete;
    FenceGuard& operator=(FenceGuard const&) = delete;
    FenceGuard(FenceGuard&& other) noexcept : window_(std::exchange(other.window_, nullptr)) {}
    FenceGuard& operator=(FenceGuard&&) = delete;

    /// @brief Closing fence with error reporting; disarms the destructor.
    void close() {
        auto* window = std::exchange(window_, nullptr);
        if (window != nullptr) {
            window->fence();
        }
    }

private:
    Window<T>* window_;
};

/// @brief RAII passive-target epoch towards one rank: locks on construction,
/// unlocks (draining pending ops for that rank) on scope exit. Use close()
/// to observe unlock errors.
template <typename T>
class [[nodiscard]] LockGuard {
public:
    LockGuard(Window<T>& window, int rank, LockType type)
        : window_(&window),
          rank_(rank) {
        window_->lock(rank, type);
    }
    ~LockGuard() {
        if (window_ != nullptr) {
            try {
                window_->unlock(rank_);
            } catch (...) {
                // See FenceGuard: use close() for checked unlocking.
            }
        }
    }
    LockGuard(LockGuard const&) = delete;
    LockGuard& operator=(LockGuard const&) = delete;
    LockGuard(LockGuard&& other) noexcept
        : window_(std::exchange(other.window_, nullptr)),
          rank_(other.rank_) {}
    LockGuard& operator=(LockGuard&&) = delete;

    /// @brief Unlocks with error reporting; disarms the destructor.
    void close() {
        auto* window = std::exchange(window_, nullptr);
        if (window != nullptr) {
            window->unlock(rank_);
        }
    }

private:
    Window<T>* window_;
    int rank_;
};

/// @brief Handle of one rank's participation in an RMA window over elements
/// of type T. Created via comm.win_create(storage); move-only; the window is
/// freed collectively by free() or the destructor.
template <typename T>
class Window {
public:
    Window() = default;
    Window(XMPI_Win win, XMPI_Comm comm) : win_(win), comm_(comm) {}

    ~Window() {
        if (win_ != XMPI_WIN_NULL) {
            XMPI_Win_free(&win_); // best effort; free() reports errors
        }
    }
    Window(Window const&) = delete;
    Window& operator=(Window const&) = delete;
    Window(Window&& other) noexcept
        : win_(std::exchange(other.win_, XMPI_WIN_NULL)),
          comm_(std::exchange(other.comm_, XMPI_COMM_NULL)) {}
    Window& operator=(Window&& other) noexcept {
        if (this != &other) {
            if (win_ != XMPI_WIN_NULL) {
                XMPI_Win_free(&win_);
            }
            win_ = std::exchange(other.win_, XMPI_WIN_NULL);
            comm_ = std::exchange(other.comm_, XMPI_COMM_NULL);
        }
        return *this;
    }

    /// @brief The underlying native handle (interoperability escape hatch).
    [[nodiscard]] XMPI_Win mpi_win() const { return win_; }

    /// @name One-sided operations (named parameters; see internal::*_impl)
    /// @{
    template <typename... Args>
    void put(Args&&... args) {
        internal::put_impl<T>(comm_, win_, std::forward<Args>(args)...);
    }
    template <typename... Args>
    void get(Args&&... args) {
        internal::get_impl<T>(comm_, win_, std::forward<Args>(args)...);
    }
    template <typename... Args>
    void accumulate(Args&&... args) {
        internal::accumulate_impl<T>(comm_, win_, std::forward<Args>(args)...);
    }
    template <typename... Args>
    void fetch_op(Args&&... args) {
        internal::fetch_op_impl<T>(comm_, win_, std::forward<Args>(args)...);
    }
    template <typename... Args>
    void compare_swap(Args&&... args) {
        internal::compare_swap_impl<T>(comm_, win_, std::forward<Args>(args)...);
    }
    /// @}

    /// @name Synchronization
    /// @{
    void fence() {
        internal::CollectivePlan<internal::plan_ops::win_fence> plan(comm_);
        internal::Dispatch{}(plan, "XMPI_Win_fence", [&] { return XMPI_Win_fence(0, win_); });
    }
    void lock(int rank, LockType type = LockType::exclusive) {
        internal::CollectivePlan<internal::plan_ops::win_lock> plan(comm_);
        internal::Dispatch{}(plan, "XMPI_Win_lock", [&] {
            return XMPI_Win_lock(static_cast<int>(type), rank, 0, win_);
        });
    }
    void unlock(int rank) {
        internal::CollectivePlan<internal::plan_ops::win_unlock> plan(comm_);
        internal::Dispatch{}(plan, "XMPI_Win_unlock", [&] {
            return XMPI_Win_unlock(rank, win_);
        });
    }
    [[nodiscard]] FenceGuard<T> fence_guard() { return FenceGuard<T>(*this); }
    [[nodiscard]] LockGuard<T> lock_guard(int rank, LockType type = LockType::exclusive) {
        return LockGuard<T>(*this, rank, type);
    }
    /// @}

    /// @brief Collective: frees the window with error reporting (the
    /// destructor frees best-effort instead).
    void free() {
        if (win_ == XMPI_WIN_NULL) {
            return;
        }
        internal::CollectivePlan<internal::plan_ops::win_free> plan(comm_);
        internal::Dispatch{}(plan, "XMPI_Win_free", [&] { return XMPI_Win_free(&win_); });
        win_ = XMPI_WIN_NULL;
    }

private:
    XMPI_Win win_ = XMPI_WIN_NULL;
    XMPI_Comm comm_ = XMPI_COMM_NULL;
};

} // namespace kamping
