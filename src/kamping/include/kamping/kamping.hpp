/// @file kamping.hpp
/// @brief Umbrella header for the KaMPIng bindings: flexible and (near)
/// zero-overhead C++ bindings for MPI (reproduction of Uhl et al.).
#pragma once

#include "kamping/communicator.hpp"      // IWYU pragma: export
#include "kamping/data_buffer.hpp"       // IWYU pragma: export
#include "kamping/error.hpp"             // IWYU pragma: export
#include "kamping/mpi_datatype.hpp"      // IWYU pragma: export
#include "kamping/named_parameters.hpp"  // IWYU pragma: export
#include "kamping/nonblocking.hpp"       // IWYU pragma: export
#include "kamping/op.hpp"                // IWYU pragma: export
#include "kamping/parameter_type.hpp"    // IWYU pragma: export
#include "kamping/pipeline.hpp"          // IWYU pragma: export
#include "kamping/result.hpp"            // IWYU pragma: export
#include "kamping/rma.hpp"               // IWYU pragma: export
#include "kamping/serialization.hpp"     // IWYU pragma: export
#include "kamping/utils.hpp"             // IWYU pragma: export
