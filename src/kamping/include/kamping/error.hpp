/// @file error.hpp
/// @brief KaMPIng error handling: exceptions for failures, assertions for
/// usage errors (paper, Section III-G).
#pragma once

#include <stdexcept>
#include <string>

#include "xmpi/error.hpp"

namespace kamping {

/// @brief Base class for all exceptions thrown by KaMPIng wrappers when the
/// underlying MPI call reports a failure.
class MpiError : public std::runtime_error {
public:
    MpiError(int error_code, std::string const& function)
        : std::runtime_error(
              function + " failed: " + xmpi::error_string(error_code)),
          error_code_(error_code) {}

    [[nodiscard]] int error_code() const { return error_code_; }

private:
    int error_code_;
};

/// @brief Thrown when a peer process failure is detected (ULFM). Used by the
/// fault-tolerance plugin to drive recovery via idiomatic C++ exceptions
/// (paper, Fig. 12).
class MpiFailureDetected : public MpiError {
public:
    explicit MpiFailureDetected(std::string const& function)
        : MpiError(XMPI_ERR_PROC_FAILED, function) {}
};

/// @brief Thrown when an operation is attempted on a revoked communicator.
class MpiCommRevoked : public MpiError {
public:
    explicit MpiCommRevoked(std::string const& function)
        : MpiError(XMPI_ERR_REVOKED, function) {}
};

/// @brief Thrown when an operation is attempted on a communicator of a
/// superseded membership epoch (elastic worlds). Recovery is a resync to the
/// current epoch (plugin/elastic.hpp), not a shrink.
class MpiEpochStale : public MpiError {
public:
    explicit MpiEpochStale(std::string const& function)
        : MpiError(XMPI_ERR_EPOCH, function) {}
};

/// @brief True iff @c error_code signals a failure that ULFM recovery
/// (revoke → shrink → retry) or an elastic epoch resync can handle, as
/// opposed to a usage error.
[[nodiscard]] constexpr bool is_recoverable(int error_code) {
    return error_code == XMPI_ERR_PROC_FAILED || error_code == XMPI_ERR_REVOKED
           || error_code == XMPI_ERR_EPOCH;
}

namespace internal {

/// @brief Converts a non-success XMPI return code into the matching
/// exception. The error *handling strategy* is overridable via the plugin
/// system (see plugin/ulfm.hpp); this is the default strategy.
inline void throw_on_error(int error_code, char const* function) {
    if (error_code == XMPI_SUCCESS) {
        return;
    }
    if (error_code == XMPI_ERR_PROC_FAILED) {
        throw MpiFailureDetected(function);
    }
    if (error_code == XMPI_ERR_REVOKED) {
        throw MpiCommRevoked(function);
    }
    if (error_code == XMPI_ERR_EPOCH) {
        throw MpiEpochStale(function);
    }
    throw MpiError(error_code, function);
}

/// @brief Like throw_on_error, but stamps the uniform call-plan context
/// "<xmpi_function> [<op>/<stage>]" onto the exception. The string is built
/// only on the error path; success costs a single comparison at the caller.
[[noreturn]] inline void
throw_op_error(int error_code, char const* xmpi_function, char const* op, char const* stage) {
    std::string label = std::string(xmpi_function) + " [" + op + "/" + stage + "]";
    if (error_code == XMPI_ERR_PROC_FAILED) {
        throw MpiFailureDetected(label);
    }
    if (error_code == XMPI_ERR_REVOKED) {
        throw MpiCommRevoked(label);
    }
    if (error_code == XMPI_ERR_EPOCH) {
        throw MpiEpochStale(label);
    }
    throw MpiError(error_code, label);
}

} // namespace internal
} // namespace kamping
