/// @file utils.hpp
/// @brief Convenience utilities: with_flattened() for nested message maps
/// (paper, Fig. 9) and a rank-aggregating Timer for experiments.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kamping/communicator.hpp"
#include "kamping/named_parameters.hpp"
#include "xmpi/api.hpp"

namespace kamping {

/// @brief Result of with_flattened(): contiguous data plus per-destination
/// send counts, ready to be handed to a v-collective.
template <typename T>
class FlattenedBuffers {
public:
    std::vector<T> data;
    std::vector<int> counts;

    /// @brief Invokes @c fn with the flattened buffers as named parameters
    /// (send_buf, send_counts), e.g.
    /// `.call([&](auto... p) { return comm.alltoallv(std::move(p)...); })`.
    template <typename Fn>
    decltype(auto) call(Fn&& fn) && {
        return std::forward<Fn>(fn)(send_buf(std::move(data)), send_counts(std::move(counts)));
    }
};

namespace internal {

template <typename Nested, typename T>
FlattenedBuffers<T> flatten_map(Nested const& messages, std::size_t comm_size) {
    FlattenedBuffers<T> flattened;
    flattened.counts.assign(comm_size, 0);
    std::size_t total = 0;
    for (auto const& [destination, payload]: messages) {
        flattened.counts[static_cast<std::size_t>(destination)] =
            static_cast<int>(payload.size());
        total += payload.size();
    }
    flattened.data.reserve(total);
    // Emit in destination order so data matches the displacements derived
    // from the counts.
    for (std::size_t destination = 0; destination < comm_size; ++destination) {
        if constexpr (requires { messages.find(int(destination)); }) {
            auto const it = messages.find(static_cast<int>(destination));
            if (it != messages.end()) {
                flattened.data.insert(
                    flattened.data.end(), it->second.begin(), it->second.end());
            }
        }
    }
    return flattened;
}

} // namespace internal

/// @brief Flattens a map destination -> message vector into contiguous data
/// plus send counts (paper, Fig. 9: frontier exchange).
template <typename T, typename Compare, typename Alloc>
auto with_flattened(std::map<int, std::vector<T>, Compare, Alloc> const& messages, std::size_t comm_size) {
    return internal::flatten_map<decltype(messages), T>(messages, comm_size);
}

template <typename T, typename Hash, typename Eq, typename Alloc>
auto with_flattened(
    std::unordered_map<int, std::vector<T>, Hash, Eq, Alloc> const& messages,
    std::size_t comm_size) {
    return internal::flatten_map<decltype(messages), T>(messages, comm_size);
}

/// @brief Flattens a dense per-destination vector-of-vectors.
template <typename T>
auto with_flattened(std::vector<std::vector<T>> const& messages, std::size_t comm_size) {
    FlattenedBuffers<T> flattened;
    flattened.counts.assign(comm_size, 0);
    std::size_t total = 0;
    for (std::size_t destination = 0; destination < messages.size(); ++destination) {
        flattened.counts[destination] = static_cast<int>(messages[destination].size());
        total += messages[destination].size();
    }
    flattened.data.reserve(total);
    for (auto const& payload: messages) {
        flattened.data.insert(flattened.data.end(), payload.begin(), payload.end());
    }
    return flattened;
}

namespace measurements {

/// @brief Accumulating timer with cross-rank aggregation, supporting the
/// algorithm-engineering workflow the paper describes (measure, refine,
/// repeat). Time is keyed by name; aggregate() reduces over the ranks.
class Timer {
public:
    void start(std::string const& name) {
        active_name_ = name;
        start_time_ = XMPI_Wtime();
    }

    void stop() {
        accumulated_[active_name_] += XMPI_Wtime() - start_time_;
    }

    [[nodiscard]] double local(std::string const& name) const {
        auto const it = accumulated_.find(name);
        return it == accumulated_.end() ? 0.0 : it->second;
    }

    /// @brief Maximum across all ranks (collective over @c comm).
    [[nodiscard]] double aggregate_max(std::string const& name, XMPI_Comm comm) const {
        double const mine = local(name);
        double result = 0.0;
        XMPI_Allreduce(&mine, &result, 1, XMPI_DOUBLE, XMPI_MAX, comm);
        return result;
    }

    void clear() { accumulated_.clear(); }

private:
    std::unordered_map<std::string, double> accumulated_;
    std::string active_name_;
    double start_time_ = 0.0;
};

} // namespace measurements
} // namespace kamping
