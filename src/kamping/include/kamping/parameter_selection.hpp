/// @file parameter_selection.hpp
/// @brief Compile-time selection of named parameters from an argument pack.
///
/// This is the machinery behind "only the code paths for missing parameters
/// are instantiated" (paper, Section III-A): presence of a parameter is a
/// constexpr predicate on the pack, and defaults are constructed through a
/// factory that is only invoked (and compiled) when the parameter is absent.
#pragma once

#include <type_traits>
#include <utility>

#include "kamping/parameter_type.hpp"

namespace kamping::internal {

template <typename Arg>
concept named_parameter = requires { std::remove_cvref_t<Arg>::parameter_type; };

/// @brief True iff Arg is a named parameter of the given type.
template <ParameterType Type, typename Arg>
constexpr bool is_parameter_v = [] {
    if constexpr (named_parameter<Arg>) {
        return std::remove_cvref_t<Arg>::parameter_type == Type;
    } else {
        return false;
    }
}();

/// @brief True iff the pack contains a parameter of the given type.
template <ParameterType Type, typename... Args>
constexpr bool has_parameter_v = (is_parameter_v<Type, Args> || ...);

/// @brief Reference to the first parameter of the given type in the pack.
/// Only call when has_parameter_v is true.
template <ParameterType Type, typename First, typename... Rest>
constexpr decltype(auto) select_parameter(First&& first, Rest&&... rest) {
    if constexpr (is_parameter_v<Type, First>) {
        return std::forward<First>(first);
    } else {
        static_assert(
            sizeof...(Rest) > 0, "internal error: requested parameter not present in pack");
        return select_parameter<Type>(std::forward<Rest>(rest)...);
    }
}

/// @brief Moves the matching parameter object out of the pack, or constructs
/// a default via @c factory. The factory branch is only instantiated when
/// the parameter is absent — this is what makes omitted parameters free.
template <ParameterType Type, typename Factory, typename... Args>
constexpr auto take_parameter_or_default(Factory&& factory, Args&&... args) {
    if constexpr (has_parameter_v<Type, Args...>) {
        return std::move(select_parameter<Type>(args...));
    } else {
        return factory();
    }
}

/// @brief Discarding stand-in for an absent out-value parameter: set() is a
/// no-op and the value never reaches the result object.
template <ParameterType Type, typename T>
struct IgnoredOutParameter {
    static constexpr ParameterType parameter_type = Type;
    static constexpr BufferKind kind = BufferKind::out;
    static constexpr bool in_result = false;
    using value_type = T;
    void set(T const&) {}
};

/// @brief Moves the matching *out*-parameter from the pack, or yields an
/// IgnoredOutParameter. An in-flavoured parameter of the same type (e.g.
/// recv_count(5)) is also ignored here — it is read elsewhere.
template <ParameterType Type, typename T, typename... Args>
constexpr auto take_out_parameter_or_ignore(Args&&... args) {
    constexpr bool is_out = [] {
        if constexpr (has_parameter_v<Type, Args...>) {
            using Param = std::remove_cvref_t<decltype(select_parameter<Type>(
                std::declval<Args&>()...))>;
            return Param::kind == BufferKind::out;
        } else {
            return false;
        }
    }();
    if constexpr (is_out) {
        return std::move(select_parameter<Type>(args...));
    } else {
        return IgnoredOutParameter<Type, T>{};
    }
}

/// @brief Every named parameter in the pack must be one of the listed types;
/// trips a readable compile error otherwise (catches e.g. passing a
/// send_counts to a gather, which would silently be ignored).
template <typename Arg, ParameterType... Allowed>
constexpr bool parameter_allowed_v = ((std::remove_cvref_t<Arg>::parameter_type == Allowed) || ...);

#define KAMPING_CHECK_PARAMETERS(ARGS, FUNCTION, ...)                                            \
    static_assert(                                                                               \
        (::kamping::internal::parameter_allowed_v<ARGS, __VA_ARGS__> && ...),                    \
        FUNCTION " was passed a named parameter it does not accept — check the parameter list " \
                 "in the documentation")

} // namespace kamping::internal
