/// @file collectives_reduce.hpp
/// @brief Wrappers for reductions and prefix sums: reduce, allreduce,
/// scan, exscan, plus the _single conveniences. All dispatch through the
/// call plan of pipeline.hpp.
#pragma once

#include "kamping/pipeline.hpp"

namespace kamping::internal {

template <typename... Args>
auto& get_op_parameter(Args&&... args) {
    static_assert(
        has_parameter_v<ParameterType::op, Args...>,
        "reductions require an op(...) parameter, e.g. op(std::plus<>{}) or "
        "op(lambda, ops::commutative)");
    return select_parameter<ParameterType::op>(args...);
}

/// @brief comm.reduce(send_buf(v), op(...), [root], [recv_buf]); the result
/// is only meaningful on the root (empty container elsewhere).
template <typename... Args>
auto reduce_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_PLAN_REQUIRE((has_parameter_v<ParameterType::send_buf, Args...>), "reduce", "send_buf");
    KAMPING_CHECK_PARAMETERS(
        Args, "reduce", ParameterType::send_buf, ParameterType::recv_buf, ParameterType::op,
        ParameterType::root);
    CollectivePlan<plan_ops::reduce, Args...> plan(comm);
    auto&& send = ResolveSend{}(plan, args...);
    using T = buffer_value_t<decltype(send)>;
    int rank = -1;
    XMPI_Comm_rank(comm, &rank);
    int const root_rank = get_root(comm, args...);

    auto&& operation = get_op_parameter(args...);
    auto activation = operation.template activate<T>();

    auto recv = PrepareRecv<T>{}(plan, send.size(), /*participate=*/rank == root_rank, args...);
    Dispatch{}(plan, "XMPI_Reduce", [&] {
        return XMPI_Reduce(
            send.data(), recv.data(), static_cast<int>(send.size()), mpi_datatype<T>(),
            activation.handle(), root_rank, comm);
    });
    return AssembleResult{}(std::move(recv));
}

/// @brief comm.allreduce(send_buf(v), op(...), [recv_buf]), or the in-place
/// variant comm.allreduce(send_recv_buf(v), op(...)) (simplified
/// MPI_IN_PLACE, paper Section III-G).
template <typename... Args>
auto allreduce_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_CHECK_PARAMETERS(
        Args, "allreduce", ParameterType::send_buf, ParameterType::send_recv_buf,
        ParameterType::recv_buf, ParameterType::op);
    CollectivePlan<plan_ops::allreduce, Args...> plan(comm);
    auto&& operation = get_op_parameter(args...);

    if constexpr (has_parameter_v<ParameterType::send_recv_buf, Args...>) {
        static_assert(
            !has_parameter_v<ParameterType::send_buf, Args...>
                && !has_parameter_v<ParameterType::recv_buf, Args...>,
            "allreduce with send_recv_buf is the in-place variant: an additional send_buf or "
            "recv_buf would be ignored by MPI and is therefore a compile-time error in "
            "KaMPIng");
        auto buffer = std::move(select_parameter<ParameterType::send_recv_buf>(args...));
        using T = buffer_value_t<decltype(buffer)>;
        plan.note_bytes_in(buffer.size() * sizeof(T));
        plan.note_bytes_out(buffer.size() * sizeof(T));
        auto activation = operation.template activate<T>();
        Dispatch{}(plan, "XMPI_Allreduce", [&] {
            return XMPI_Allreduce(
                XMPI_IN_PLACE, buffer.data(), static_cast<int>(buffer.size()),
                mpi_datatype<T>(), activation.handle(), comm);
        });
        return AssembleResult{}(std::move(buffer));
    } else {
        KAMPING_PLAN_REQUIRE(
            (has_parameter_v<ParameterType::send_buf, Args...>), "allreduce",
            "send_buf (or send_recv_buf)");
        auto&& send = ResolveSend{}(plan, args...);
        using T = buffer_value_t<decltype(send)>;
        auto activation = operation.template activate<T>();

        auto recv = PrepareRecv<T>{}(plan, send.size(), /*participate=*/true, args...);
        Dispatch{}(plan, "XMPI_Allreduce", [&] {
            return XMPI_Allreduce(
                send.data(), recv.data(), static_cast<int>(send.size()), mpi_datatype<T>(),
                activation.handle(), comm);
        });
        return AssembleResult{}(std::move(recv));
    }
}

/// @brief Inclusive prefix reduction over the ranks.
template <typename... Args>
auto scan_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_PLAN_REQUIRE((has_parameter_v<ParameterType::send_buf, Args...>), "scan", "send_buf");
    KAMPING_CHECK_PARAMETERS(
        Args, "scan", ParameterType::send_buf, ParameterType::recv_buf, ParameterType::op);
    CollectivePlan<plan_ops::scan, Args...> plan(comm);
    auto&& send = ResolveSend{}(plan, args...);
    using T = buffer_value_t<decltype(send)>;
    auto&& operation = get_op_parameter(args...);
    auto activation = operation.template activate<T>();
    auto recv = PrepareRecv<T>{}(plan, send.size(), /*participate=*/true, args...);
    Dispatch{}(plan, "XMPI_Scan", [&] {
        return XMPI_Scan(
            send.data(), recv.data(), static_cast<int>(send.size()), mpi_datatype<T>(),
            activation.handle(), comm);
    });
    return AssembleResult{}(std::move(recv));
}

/// @brief Exclusive prefix reduction; rank 0's result is the (optional)
/// values_on_rank_0 parameter, defaulting to a value-initialized T.
template <typename... Args>
auto exscan_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_PLAN_REQUIRE((has_parameter_v<ParameterType::send_buf, Args...>), "exscan", "send_buf");
    KAMPING_CHECK_PARAMETERS(
        Args, "exscan", ParameterType::send_buf, ParameterType::recv_buf, ParameterType::op,
        ParameterType::values_on_rank_0);
    CollectivePlan<plan_ops::exscan, Args...> plan(comm);
    auto&& send = ResolveSend{}(plan, args...);
    using T = buffer_value_t<decltype(send)>;
    int rank = -1;
    XMPI_Comm_rank(comm, &rank);
    auto&& operation = get_op_parameter(args...);
    auto activation = operation.template activate<T>();
    auto recv = PrepareRecv<T>{}(plan, send.size(), /*participate=*/true, args...);
    Dispatch{}(plan, "XMPI_Exscan", [&] {
        return XMPI_Exscan(
            send.data(), recv.data(), static_cast<int>(send.size()), mpi_datatype<T>(),
            activation.handle(), comm);
    });
    if (rank == 0) {
        // MPI leaves rank 0's exscan output undefined; KaMPIng defines it.
        T seed{};
        if constexpr (has_parameter_v<ParameterType::values_on_rank_0, Args...>) {
            seed = select_parameter<ParameterType::values_on_rank_0>(args...).value;
        }
        for (std::size_t i = 0; i < recv.size(); ++i) {
            recv.data()[i] = seed;
        }
    }
    return AssembleResult{}(std::move(recv));
}

} // namespace kamping::internal
