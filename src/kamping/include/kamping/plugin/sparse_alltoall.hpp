/// @file sparse_alltoall.hpp
/// @brief SparseAlltoall plugin: personalized all-to-all for sparse,
/// dynamically changing communication patterns (paper, Section V-A).
///
/// MPI_Alltoallv needs a counts array with one entry per rank — Omega(p)
/// local work and, in xmpi's pairwise implementation, Theta(p) message
/// start-ups even when only a handful of peers receive data. This plugin
/// accepts a set of destination/message pairs instead and exchanges them
/// with the NBX algorithm of Hoefler, Siebert and Lumsdaine (PPoPP 2010):
/// synchronous-mode sends + a non-blocking barrier give O(out-degree)
/// messages and O(log p) barrier latency, with no pre-negotiation of
/// communication partners.
#pragma once

#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "kamping/error.hpp"
#include "kamping/mpi_datatype.hpp"
#include "kamping/pipeline.hpp"
#include "kamping/plugin/plugin_helpers.hpp"
#include "xmpi/api.hpp"

namespace kamping::plugin {

namespace internal {
/// Tag base reserved for NBX traffic so it never collides with user
/// messages; the round counter is mixed in to separate back-to-back
/// exchanges (a fast rank may start round k+1 while a slow one still
/// drains round k).
inline constexpr int nbx_tag_base = 23107;
inline constexpr int nbx_tag_rounds = 4096;
} // namespace internal

template <typename Comm>
class SparseAlltoall : public PluginBase<Comm, SparseAlltoall> {
public:
    /// @brief Exchanges destination/message pairs; invokes
    /// @c on_message(source, payload) for every received message.
    /// Message arrival order is unspecified (as in any sparse exchange).
    template <typename T, typename Callback>
    void alltoallv_sparse(
        std::unordered_map<int, std::vector<T>> const& messages, Callback&& on_message) const {
        static_assert(
            has_static_type<T>, "sparse alltoall requires statically typed elements");
        auto const& comm = this->self();
        XMPI_Comm const handle = comm.mpi_communicator();
        kamping::internal::CollectivePlan<kamping::internal::plan_ops::sparse_alltoallv> plan(
            handle);
        // NBX never pre-negotiates counts: receivers discover message sizes
        // by probing, which is this plan's count exchange.
        plan.note_count_exchange();
        // The round counter only stays in lockstep across ranks while every
        // exchange runs to completion. A rank failure can interrupt a round
        // after some ranks entered it and others did not, leaving the
        // counters divergent on the survivors — and any such interruption
        // forces a membership-epoch change. Keying the counter by the epoch
        // restarts every surviving rank from round 0 of the new epoch, so
        // post-recovery exchanges agree on tags again.
        std::uint64_t epoch = 0;
        XMPI_Membership_epoch(handle, &epoch);
        if (epoch != nbx_epoch_) {
            nbx_epoch_ = epoch;
            nbx_round_ = 0;
        }
        int const round_tag =
            internal::nbx_tag_base
            + static_cast<int>(
                (epoch * 61 + static_cast<std::uint64_t>(nbx_round_++))
                % internal::nbx_tag_rounds);

        // Phase 1: issue all sends in synchronous mode — an Issend completes
        // only when matched, which is what lets NBX detect global quiescence.
        std::vector<XMPI_Request> send_requests;
        send_requests.reserve(messages.size());
        for (auto const& [destination, payload]: messages) {
            XMPI_Request request = XMPI_REQUEST_NULL;
            plan.note_bytes_in(payload.size() * sizeof(T));
            plan.dispatch("XMPI_Issend", [&] {
                return XMPI_Issend(
                    payload.data(), static_cast<int>(payload.size()), mpi_datatype<T>(),
                    destination, round_tag, handle, &request);
            });
            send_requests.push_back(request);
        }

        // Phase 2: receive whatever arrives; once all local sends matched,
        // enter the non-blocking barrier; once the barrier completes, every
        // rank's sends have been received and we are done.
        bool barrier_activated = false;
        XMPI_Request barrier_request = XMPI_REQUEST_NULL;
        while (true) {
            int flag = 0;
            xmpi::Status status;
            plan.dispatch(
                "XMPI_Iprobe",
                [&] { return XMPI_Iprobe(XMPI_ANY_SOURCE, round_tag, handle, &flag, &status); },
                kamping::internal::PlanStage::infer_counts);
            if (flag == 0) {
                // Idle poll: hand the core to other ranks (on real MPI the
                // progress engine does the equivalent).
                std::this_thread::yield();
            }
            if (flag != 0) {
                int type_size = 0;
                XMPI_Type_size(mpi_datatype<T>(), &type_size);
                int const count = status.count(static_cast<std::size_t>(type_size));
                std::vector<T> payload(static_cast<std::size_t>(count));
                plan.note_bytes_out(payload.size() * sizeof(T));
                plan.dispatch("XMPI_Recv", [&] {
                    return XMPI_Recv(
                        payload.data(), count, mpi_datatype<T>(), status.source,
                        round_tag, handle, XMPI_STATUS_IGNORE);
                });
                on_message(status.source, std::move(payload));
            }
            if (!barrier_activated) {
                int all_sent = 0;
                plan.dispatch("XMPI_Testall", [&] {
                    return XMPI_Testall(
                        static_cast<int>(send_requests.size()), send_requests.data(), &all_sent,
                        XMPI_STATUSES_IGNORE);
                });
                if (all_sent != 0) {
                    plan.dispatch(
                        "XMPI_Ibarrier", [&] { return XMPI_Ibarrier(handle, &barrier_request); });
                    barrier_activated = true;
                }
            } else {
                int done = 0;
                plan.dispatch("XMPI_Test", [&] {
                    return XMPI_Test(&barrier_request, &done, XMPI_STATUS_IGNORE);
                });
                if (done != 0) {
                    break;
                }
            }
        }
    }

    /// @brief Convenience overload collecting the received messages into a
    /// source -> payload map.
    template <typename T>
    [[nodiscard]] std::unordered_map<int, std::vector<T>> alltoallv_sparse(
        std::unordered_map<int, std::vector<T>> const& messages) const {
        std::unordered_map<int, std::vector<T>> received;
        alltoallv_sparse(messages, [&](int source, std::vector<T> payload) {
            auto& slot = received[source];
            if (slot.empty()) {
                slot = std::move(payload);
            } else {
                // Multiple messages from one source concatenate.
                slot.insert(slot.end(), payload.begin(), payload.end());
            }
        });
        return received;
    }

private:
    /// NBX round counter within the current membership epoch. Within one
    /// epoch every exchange completes collectively, so the counter advances
    /// identically on all ranks; across epochs it is reset (see above).
    mutable int nbx_round_ = 0;
    mutable std::uint64_t nbx_epoch_ = 0;
};

} // namespace kamping::plugin
