/// @file plugin_helpers.hpp
/// @brief CRTP base for communicator plugins (paper, Section III-F).
///
/// A plugin is a class template over the concrete communicator type that
/// adds member functions (or shadows core ones to override behaviour). It
/// reaches the communicator via self():
///
///   template <typename Comm>
///   class MyPlugin : public plugin::PluginBase<Comm, MyPlugin> {
///       auto my_collective(...) { return this->self().allgatherv(...); }
///   };
///
/// Plugins may also introduce new named parameters: ParameterType values
/// from plugin_parameter_base upward are reserved for extensions, giving
/// plugin parameters the full named-parameter flexibility.
#pragma once

#include "kamping/parameter_type.hpp"

namespace kamping::plugin {

/// @brief First ParameterType value available to plugin-defined parameters.
inline constexpr std::uint8_t plugin_parameter_base = 128;

template <typename Comm, template <typename> class Plugin>
class PluginBase {
protected:
    [[nodiscard]] Comm& self() { return static_cast<Comm&>(*this); }
    [[nodiscard]] Comm const& self() const { return static_cast<Comm const&>(*this); }
};

} // namespace kamping::plugin
