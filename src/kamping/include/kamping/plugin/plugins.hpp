/// @file plugins.hpp
/// @brief Umbrella header for the shipped plugins (paper, Section V).
#pragma once

#include "kamping/communicator.hpp"                // IWYU pragma: export
#include "kamping/plugin/elastic.hpp"              // IWYU pragma: export
#include "kamping/plugin/grid_alltoall.hpp"        // IWYU pragma: export
#include "kamping/plugin/plugin_helpers.hpp"       // IWYU pragma: export
#include "kamping/plugin/reproducible_reduce.hpp"  // IWYU pragma: export
#include "kamping/plugin/sorter.hpp"               // IWYU pragma: export
#include "kamping/plugin/sparse_alltoall.hpp"      // IWYU pragma: export
#include "kamping/plugin/ulfm.hpp"                 // IWYU pragma: export

namespace kamping {

/// @brief A communicator with every shipped plugin enabled.
using FullCommunicator = BasicCommunicator<
    plugin::SparseAlltoall, plugin::GridCommunicator, plugin::ReproducibleReduce,
    plugin::Sorter, plugin::UserLevelFailureMitigation, plugin::Elastic>;

} // namespace kamping
