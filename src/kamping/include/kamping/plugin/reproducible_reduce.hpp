/// @file reproducible_reduce.hpp
/// @brief ReproducibleReduce plugin (paper, Section V-C; Stelz 2022,
/// inspired by Villa et al., CUG 2009).
///
/// IEEE 754 addition is not associative, so the result of a parallel
/// reduction usually depends on the number of processors: changing p changes
/// the tree shape and therefore the rounding. This plugin fixes the
/// reduction order by evaluating a *fixed binary tree over the global
/// element indices* — a shape that depends only on the total element count n,
/// never on p:
///
///   - each rank decomposes its contiguous block of the global array into
///     maximal index-aligned power-of-two subtrees and reduces each of them
///     locally, strictly in tree order;
///   - the partial results (O(log n) per rank) are gathered to rank 0, which
///     stitches them together by evaluating the remaining top of the tree;
///   - the result is broadcast.
///
/// This is faster than gather + local reduce + bcast (it moves O(p log n)
/// partials instead of n elements) while producing bit-identical results for
/// every p — verified in tests/bench by sweeping p with fixed input.
///
/// The tree kernel itself (decompose / tree_reduce / stitch) lives in
/// apps/repro_sum.hpp, shared with the kasched task-ledger checksum; this
/// plugin contributes the distributed choreography around it.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/repro_sum.hpp"
#include "kamping/error.hpp"
#include "kamping/mpi_datatype.hpp"
#include "kamping/plugin/plugin_helpers.hpp"
#include "kassert/kassert.hpp"
#include "xmpi/api.hpp"

namespace kamping::plugin {

template <typename Comm>
class ReproducibleReduce : public PluginBase<Comm, ReproducibleReduce> {
public:
    /// @brief Reduces the distributed array (each rank holds a contiguous
    /// block, in rank order) with a p-independent evaluation order.
    /// @return The reduction result, identical on every rank and for every p.
    template <typename T, typename Op = std::plus<T>>
    [[nodiscard]] T reproducible_reduce(std::vector<T> const& local_block, Op combine = {}) const {
        static_assert(std::is_trivially_copyable_v<T>);
        auto const& comm = this->self();
        XMPI_Comm const handle = comm.mpi_communicator();

        // Global offset of the local block and total element count.
        std::uint64_t const local_size = local_block.size();
        std::uint64_t offset = 0;
        XMPI_Exscan(&local_size, &offset, 1, XMPI_UNSIGNED_LONG_LONG, XMPI_SUM, handle);
        if (comm.rank() == 0) {
            offset = 0; // exscan leaves rank 0 undefined
        }
        std::uint64_t total = 0;
        XMPI_Allreduce(&local_size, &total, 1, XMPI_UNSIGNED_LONG_LONG, XMPI_SUM, handle);
        if (total == 0) {
            return T{};
        }

        // Decompose [offset, offset+local_size) into maximal aligned
        // power-of-two subtrees and reduce each one locally in tree order.
        using Partial = apps::repro::Partial<T>;
        std::vector<Partial> const partials =
            apps::repro::decompose(local_block.data(), offset, local_size, combine);

        // Gather all partials to rank 0 (variable count of fixed-size PODs).
        int const my_count = static_cast<int>(partials.size() * sizeof(Partial));
        std::vector<int> counts(comm.size());
        XMPI_Gather(
            &my_count, 1, XMPI_INT, counts.data(), 1, XMPI_INT, 0, handle);
        std::vector<int> displs(comm.size(), 0);
        std::vector<std::byte> gathered;
        if (comm.rank() == 0) {
            int running = 0;
            for (std::size_t i = 0; i < counts.size(); ++i) {
                displs[i] = running;
                running += counts[i];
            }
            gathered.resize(static_cast<std::size_t>(running));
        }
        XMPI_Gatherv(
            partials.data(), my_count, XMPI_BYTE, gathered.data(), counts.data(), displs.data(),
            XMPI_BYTE, 0, handle);

        // Rank 0 stitches the subtree results together by evaluating the
        // remaining top of the fixed tree (the gathered stream is sorted by
        // start index because ranks hold consecutive blocks and gather
        // preserves rank order), then broadcasts.
        T result{};
        if (comm.rank() == 0) {
            auto const* all = reinterpret_cast<Partial const*>(gathered.data());
            std::size_t const n_partials = gathered.size() / sizeof(Partial);
            result = apps::repro::stitch_all(all, n_partials, total, combine);
        }
        XMPI_Bcast(&result, 1, mpi_datatype<T>(), 0, handle);
        return result;
    }
};

} // namespace kamping::plugin
