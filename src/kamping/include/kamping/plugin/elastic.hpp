/// @file elastic.hpp
/// @brief Elastic plugin: rides a communicator across membership epochs of
/// an elastic world (xmpi/elastic.hpp) — dynamic grow, shrink, *and* failure
/// behind one rebalance loop.
///
/// Where UserLevelFailureMitigation::shrink_and_retry only handles the
/// failure direction (membership can shrink), with_elastic subsumes it for
/// elastic worlds: any membership change — a thread joining the world via
/// World::open_session, a rank retiring via leave_session, or a rank dying —
/// revokes the current epoch's communicator, the loop resyncs to the fresh
/// epoch, and the user's body re-runs on the new membership:
///
///   comm.with_elastic([&](auto& c) {
///       rebalance(c.rank(), c.size());   // membership may have changed
///       c.allreduce(...);
///   });
///
/// Traced runs label each resync with the transition cause ("grow",
/// "shrink", "failure", combinations) in the elastic_sync span's algorithm
/// field, and every span carries the membership epoch it ran under.
#pragma once

#include <cstdint>

#include "kamping/error.hpp"
#include "kamping/pipeline.hpp"
#include "kamping/plugin/plugin_helpers.hpp"
#include "xmpi/api.hpp"

namespace kamping::plugin {

template <typename Comm>
class Elastic : public PluginBase<Comm, Elastic> {
public:
    /// @brief The membership epoch of the underlying world (0 until the
    /// first transition; constant 0 in non-elastic worlds).
    [[nodiscard]] std::uint64_t membership_epoch() const {
        std::uint64_t epoch = 0;
        XMPI_Membership_epoch(this->self().mpi_communicator(), &epoch);
        return epoch;
    }

    /// @brief True iff this communicator no longer matches the world's
    /// membership (superseded epoch, or a transition is pending) — i.e. a
    /// sync_membership() is due.
    [[nodiscard]] bool membership_changed() const {
        int flag = 0;
        XMPI_Membership_changed(this->self().mpi_communicator(), &flag);
        return flag != 0;
    }

    /// @brief Joins the membership-epoch rendezvous and replaces this
    /// communicator, in place, by the current epoch's communicator. Traced
    /// as an elastic_sync span whose algorithm field carries the transition
    /// cause ("grow", "shrink", "failure", "+"-combinations).
    void sync_membership() {
        kamping::internal::CollectivePlan<kamping::internal::plan_ops::elastic_sync> plan(
            this->self().mpi_communicator());
        XMPI_Comm fresh = XMPI_COMM_NULL;
        plan.dispatch("XMPI_Epoch_sync", [&] { return XMPI_Epoch_sync(&fresh); });
        xmpi::profile::note_algorithm(fresh->world().last_transition_cause());
        this->self() = Comm(fresh, /*owning=*/true);
    }

    /// @brief Runs @c body(comm) on the current membership and re-runs it
    /// whenever the membership changes underneath it — the elastic
    /// generalization of shrink_and_retry. Before each attempt the loop
    /// resyncs if a change is already pending; an attempt aborted by a
    /// recoverable error (stale epoch, revocation, process failure — the
    /// three faces of a membership transition) triggers a resync and a
    /// retry on the fresh epoch's communicator. @c body observes changes
    /// through the communicator it receives (rank/size/epoch).
    ///
    /// @param body        Callable taking `Comm&`; its return value is
    ///                    forwarded on success.
    /// @param max_resyncs Bound on attempts; defaults (-1) to three times
    ///                    the world capacity + 1 (every slot can join, leave
    ///                    or fail at most once, so that bounds the epochs a
    ///                    single body run can possibly ride through). Throws
    ///                    MpiError(XMPI_ERR_OTHER) when exhausted.
    template <typename Body>
    decltype(auto) with_elastic(Body&& body, int max_resyncs = -1) {
        int const capacity = this->self().mpi_communicator()->world().capacity();
        int const attempts = max_resyncs > 0 ? max_resyncs : 3 * capacity + 1;
        for (int attempt = 0; attempt < attempts; ++attempt) {
            if (membership_changed()) {
                sync_membership();
            }
            try {
                return body(this->self());
            } catch (MpiEpochStale const&) {
                // Superseded epoch: resync below and retry.
            } catch (MpiCommRevoked const&) {
                // A join/leave revoked the epoch mid-operation.
            } catch (MpiFailureDetected const&) {
                // A member died; the transition excludes it.
            }
            sync_membership();
        }
        throw MpiError(XMPI_ERR_OTHER, "with_elastic: membership resyncs exhausted");
    }
};

} // namespace kamping::plugin
