/// @file grid_alltoall.hpp
/// @brief GridCommunicator plugin: two-hop all-to-all over a virtual 2D
/// processor grid (paper, Section V-A; Kalé et al., IPDPS 2003).
///
/// A direct irregular all-to-all pays Theta(p) message start-ups per rank.
/// Routing every message through an intermediate in the sender's *column*
/// and the destination's *row* reduces this to O(sqrt(p)) start-ups per
/// phase at the cost of sending every byte twice — a hardware-agnostic
/// latency/volume trade-off with asymptotic guarantees.
///
/// Ranks are arranged row-major in a ceil(p/C) x C grid with C = ceil(sqrt p)
/// (the last row may be short). Phase 1 moves a message from the sender to
/// the rank in the sender's column that lives in the destination's row;
/// phase 2 delivers it within that row. Messages to rows that do not contain
/// the sender's column (short last row) are routed via the row's last rank.
#pragma once

#include <cmath>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "kamping/error.hpp"
#include "kamping/mpi_datatype.hpp"
#include "kamping/named_parameters.hpp"
#include "kamping/pipeline.hpp"
#include "kamping/plugin/plugin_helpers.hpp"
#include "xmpi/api.hpp"

namespace kamping::plugin {

/// @brief A received grid message: original source plus payload.
template <typename T>
struct GridMessage {
    int source;
    std::vector<T> payload;
};

template <typename Comm>
class GridCommunicator : public PluginBase<Comm, GridCommunicator> {
public:
    /// @brief Irregular all-to-all with per-destination counts (same
    /// interface as alltoallv) routed in two hops. Returns the received
    /// messages with their original source ranks; arrival order is
    /// unspecified across sources.
    template <typename T>
    [[nodiscard]] std::vector<GridMessage<T>>
    alltoallv_grid(std::vector<T> const& data, std::vector<int> const& counts) const {
        static_assert(std::is_trivially_copyable_v<T>);
        auto const& comm = this->self();
        kamping::internal::CollectivePlan<kamping::internal::plan_ops::grid_alltoallv> plan(
            comm.mpi_communicator());
        plan.note_bytes_in(data.size() * sizeof(T));
        int const p = comm.size_signed();
        int const me = comm.rank();
        int const columns = grid_columns(p);

        auto const row_of = [&](int rank) { return rank / columns; };
        auto const row_size = [&](int row) {
            return std::min(columns, p - row * columns);
        };
        // The phase-1 intermediate for a destination: same row as the
        // destination, same column as the sender (clamped into short rows).
        auto const intermediate_for = [&](int destination) {
            int const row = row_of(destination);
            int const column = std::min(me % columns, row_size(row) - 1);
            return row * columns + column;
        };

        // --- Phase 1: bucket by intermediate, ship within the column. ---
        // Frame: [header(source, final_destination, count), payload bytes].
        std::vector<std::vector<std::byte>> phase1_buckets(static_cast<std::size_t>(p));
        int offset = 0;
        for (int destination = 0; destination < p; ++destination) {
            int const count = counts[static_cast<std::size_t>(destination)];
            if (count > 0) {
                append_frame(
                    phase1_buckets[static_cast<std::size_t>(intermediate_for(destination))], me,
                    destination, data.data() + offset, static_cast<std::size_t>(count));
            }
            offset += count;
        }
        // Phase-1 peers are asymmetric when the last row is short: I *send*
        // to one intermediate per row (clamped into short rows), and I
        // *receive* from every rank whose clamped column equals mine.
        int const rows = (p + columns - 1) / columns;
        std::vector<int> send_peers;
        send_peers.reserve(static_cast<std::size_t>(rows));
        for (int row = 0; row < rows; ++row) {
            send_peers.push_back(row * columns + std::min(me % columns, row_size(row) - 1));
        }
        std::vector<int> recv_peers;
        for (int rank = 0; rank < p; ++rank) {
            if (std::min(rank % columns, row_size(row_of(me)) - 1) == me % columns) {
                recv_peers.push_back(rank);
            }
        }
        auto const phase1_received =
            exchange_frames(plan, comm, phase1_buckets, send_peers, recv_peers, /*phase=*/1);

        // --- Phase 2: re-bucket by final destination, ship within the row. --
        std::vector<std::vector<std::byte>> phase2_buckets(static_cast<std::size_t>(p));
        for_each_frame<T>(phase1_received, [&](int source, int destination, T const* payload,
                                               std::size_t count) {
            append_frame(
                phase2_buckets[static_cast<std::size_t>(destination)], source, destination,
                payload, count);
        });
        // Phase-2 peers: the ranks of my own row (symmetric).
        std::vector<int> row_peers;
        int const row_start = (me / columns) * columns;
        for (int rank = row_start; rank < std::min(row_start + columns, p); ++rank) {
            row_peers.push_back(rank);
        }
        auto const phase2_received =
            exchange_frames(plan, comm, phase2_buckets, row_peers, row_peers, /*phase=*/2);

        std::vector<GridMessage<T>> messages;
        for_each_frame<T>(phase2_received, [&](int source, int destination, T const* payload,
                                               std::size_t count) {
            THROWING_KASSERT(destination == me, "grid routing delivered to the wrong rank");
            plan.note_bytes_out(count * sizeof(T));
            messages.push_back(GridMessage<T>{source, std::vector<T>(payload, payload + count)});
        });
        return messages;
    }

    /// @brief Convenience: concatenated payloads without source attribution
    /// (sufficient for e.g. BFS frontier exchanges).
    template <typename T>
    [[nodiscard]] std::vector<T>
    alltoallv_grid_flat(std::vector<T> const& data, std::vector<int> const& counts) const {
        std::vector<T> flat;
        for (auto& message: alltoallv_grid(data, counts)) {
            flat.insert(flat.end(), message.payload.begin(), message.payload.end());
        }
        return flat;
    }

    /// @brief Number of grid columns used for a communicator of size p.
    [[nodiscard]] static int grid_columns(int p) {
        return static_cast<int>(std::ceil(std::sqrt(static_cast<double>(p))));
    }

    /// @brief Generalization of the two-hop grid to a d-dimensional virtual
    /// hypergrid — the indirection pattern the paper names as work in
    /// progress ("generalizing the indirection patterns for all-to-all
    /// primitives to higher dimensions", Section VI). Messages are routed in
    /// d hops, fixing one digit of the destination's mixed-radix coordinate
    /// per hop: O(d * p^(1/d)) message start-ups per rank at the cost of
    /// shipping every byte d times. Each hop's (sparse, possibly irregular)
    /// exchange uses the NBX algorithm, so incomplete grids need no special
    /// peer bookkeeping.
    ///
    /// Requires the communicator to also carry the SparseAlltoall plugin
    /// (both are part of kamping::FullCommunicator).
    template <typename T>
    [[nodiscard]] std::vector<GridMessage<T>> alltoallv_hypergrid(
        std::vector<T> const& data, std::vector<int> const& counts, int dimensions) const {
        static_assert(std::is_trivially_copyable_v<T>);
        auto const& comm = this->self();
        kamping::internal::CollectivePlan<kamping::internal::plan_ops::hypergrid_alltoallv> plan(
            comm.mpi_communicator());
        plan.note_bytes_in(data.size() * sizeof(T));
        // Each hop's NBX exchange discovers sizes by probing.
        plan.note_count_exchange();
        int const p = comm.size_signed();
        int const me = comm.rank();
        THROWING_KASSERT(dimensions >= 1, "hypergrid needs at least one dimension");
        int const side = static_cast<int>(std::ceil(
            std::pow(static_cast<double>(p), 1.0 / static_cast<double>(dimensions))));

        auto const digit = [&](int rank, int place) {
            int value = rank;
            for (int i = 0; i < place; ++i) {
                value /= side;
            }
            return value % side;
        };
        // Next hop: fix digit `place` of the coordinate to the destination's;
        // if that rank does not exist (incomplete grid), deliver directly.
        auto const route = [&](int current, int destination, int place) {
            int candidate = current;
            int stride = 1;
            for (int i = 0; i < place; ++i) {
                stride *= side;
            }
            candidate += (digit(destination, place) - digit(current, place)) * stride;
            return candidate >= 0 && candidate < p ? candidate : destination;
        };

        // Initial frames from the alltoallv-style input.
        std::vector<std::byte> in_flight;
        int offset = 0;
        for (int destination = 0; destination < p; ++destination) {
            int const count = counts[static_cast<std::size_t>(destination)];
            if (count > 0) {
                append_frame(
                    in_flight, me, destination, data.data() + offset,
                    static_cast<std::size_t>(count));
            }
            offset += count;
        }

        for (int place = dimensions - 1; place >= 0; --place) {
            // Bucket by next hop; local frames stay.
            std::unordered_map<int, std::vector<std::byte>> buckets;
            std::vector<std::byte> staying;
            for_each_frame<T>(
                in_flight,
                [&](int source, int destination, T const* payload, std::size_t count) {
                    int const next = route(me, destination, place);
                    append_frame(
                        next == me ? staying : buckets[next], source, destination, payload,
                        count);
                });
            in_flight = std::move(staying);
            comm.alltoallv_sparse(
                buckets, [&](int, std::vector<std::byte> frames) {
                    in_flight.insert(in_flight.end(), frames.begin(), frames.end());
                });
        }

        std::vector<GridMessage<T>> messages;
        for_each_frame<T>(
            in_flight, [&](int source, int destination, T const* payload, std::size_t count) {
                THROWING_KASSERT(
                    destination == me, "hypergrid routing delivered to the wrong rank");
                plan.note_bytes_out(count * sizeof(T));
                messages.push_back(
                    GridMessage<T>{source, std::vector<T>(payload, payload + count)});
            });
        return messages;
    }

private:
    struct FrameHeader {
        int source;
        int destination;
        int count;
        int padding = 0; // keep 8-byte payload alignment
    };

    template <typename T>
    static void append_frame(
        std::vector<std::byte>& bucket, int source, int destination, T const* payload,
        std::size_t count) {
        FrameHeader const header{source, destination, static_cast<int>(count), 0};
        std::size_t const old_size = bucket.size();
        std::size_t const payload_bytes = count * sizeof(T);
        bucket.resize(old_size + sizeof(FrameHeader) + payload_bytes);
        std::memcpy(bucket.data() + old_size, &header, sizeof(FrameHeader));
        std::memcpy(bucket.data() + old_size + sizeof(FrameHeader), payload, payload_bytes);
    }

    template <typename T, typename Fn>
    static void for_each_frame(std::vector<std::byte> const& stream, Fn&& fn) {
        std::size_t cursor = 0;
        while (cursor < stream.size()) {
            FrameHeader header;
            std::memcpy(&header, stream.data() + cursor, sizeof(FrameHeader));
            cursor += sizeof(FrameHeader);
            // Copy out to respect alignment (the stream is byte-packed).
            std::vector<T> payload(static_cast<std::size_t>(header.count));
            std::memcpy(payload.data(), stream.data() + cursor, payload.size() * sizeof(T));
            cursor += payload.size() * sizeof(T);
            fn(header.source, header.destination, payload.data(), payload.size());
        }
    }

    /// @brief One grid hop: exchange byte buckets with the given peers —
    /// O(|peers|) = O(sqrt p) message start-ups. Buckets destined to ranks
    /// outside send_peers must be empty by construction of the routing. Every
    /// XMPI call dispatches through the caller's plan, which stamps op and
    /// stage onto errors (the size exchange is the plan's count exchange).
    template <typename Plan>
    [[nodiscard]] std::vector<std::byte> exchange_frames(
        Plan& plan, Comm const& comm, std::vector<std::vector<std::byte>> const& buckets,
        std::vector<int> const& send_peers, std::vector<int> const& recv_peers,
        int phase) const {
        using kamping::internal::PlanStage;
        // Exchange sizes first, then payloads.
        plan.note_count_exchange();
        std::vector<XMPI_Request> size_requests(recv_peers.size());
        std::vector<std::uint64_t> incoming_sizes(recv_peers.size(), 0);
        for (std::size_t i = 0; i < recv_peers.size(); ++i) {
            plan.dispatch(
                "XMPI_Irecv",
                [&] {
                    return XMPI_Irecv(
                        &incoming_sizes[i], sizeof(std::uint64_t), XMPI_BYTE, recv_peers[i],
                        grid_size_tag(phase), comm.mpi_communicator(), &size_requests[i]);
                },
                PlanStage::infer_counts);
        }
        for (int peer: send_peers) {
            std::uint64_t const size = buckets[static_cast<std::size_t>(peer)].size();
            plan.dispatch(
                "XMPI_Send",
                [&] {
                    return XMPI_Send(
                        &size, sizeof(std::uint64_t), XMPI_BYTE, peer, grid_size_tag(phase),
                        comm.mpi_communicator());
                },
                PlanStage::infer_counts);
        }
        plan.dispatch(
            "XMPI_Waitall",
            [&] {
                return XMPI_Waitall(
                    static_cast<int>(size_requests.size()), size_requests.data(),
                    XMPI_STATUSES_IGNORE);
            },
            PlanStage::infer_counts);

        std::vector<std::vector<std::byte>> incoming(recv_peers.size());
        std::vector<XMPI_Request> payload_requests;
        payload_requests.reserve(recv_peers.size());
        for (std::size_t i = 0; i < recv_peers.size(); ++i) {
            incoming[i].resize(incoming_sizes[i]);
            if (incoming_sizes[i] > 0) {
                XMPI_Request request = XMPI_REQUEST_NULL;
                plan.dispatch("XMPI_Irecv", [&] {
                    return XMPI_Irecv(
                        incoming[i].data(), static_cast<int>(incoming_sizes[i]), XMPI_BYTE,
                        recv_peers[i], grid_payload_tag(phase), comm.mpi_communicator(),
                        &request);
                });
                payload_requests.push_back(request);
            }
        }
        for (int peer: send_peers) {
            auto const& bucket = buckets[static_cast<std::size_t>(peer)];
            if (!bucket.empty()) {
                plan.dispatch("XMPI_Send", [&] {
                    return XMPI_Send(
                        bucket.data(), static_cast<int>(bucket.size()), XMPI_BYTE, peer,
                        grid_payload_tag(phase), comm.mpi_communicator());
                });
            }
        }
        plan.dispatch("XMPI_Waitall", [&] {
            return XMPI_Waitall(
                static_cast<int>(payload_requests.size()), payload_requests.data(),
                XMPI_STATUSES_IGNORE);
        });

        std::vector<std::byte> merged;
        for (auto const& chunk: incoming) {
            merged.insert(merged.end(), chunk.begin(), chunk.end());
        }
        return merged;
    }

    [[nodiscard]] static int grid_size_tag(int phase) { return 24200 + phase; }
    [[nodiscard]] static int grid_payload_tag(int phase) { return 24210 + phase; }
};

} // namespace kamping::plugin
