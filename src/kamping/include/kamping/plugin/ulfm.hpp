/// @file ulfm.hpp
/// @brief UserLevelFailureMitigation plugin (paper, Section V-B): an
/// abstraction layer over ULFM that surfaces process failures as idiomatic
/// C++ exceptions instead of return codes.
///
/// The core wrappers already convert XMPI_ERR_PROC_FAILED /
/// XMPI_ERR_REVOKED into kamping::MpiFailureDetected / MpiCommRevoked; this
/// plugin adds the recovery vocabulary (revoke, shrink, agree) so
/// fault-tolerant algorithms read like the paper's Fig. 12:
///
///   try {
///       comm.allreduce(...);
///   } catch (MpiFailureDetected const&) {
///       if (!comm.is_revoked()) comm.revoke();
///       comm = comm.shrink();
///   }
#pragma once

#include "kamping/error.hpp"
#include "kamping/pipeline.hpp"
#include "kamping/plugin/plugin_helpers.hpp"
#include "xmpi/api.hpp"

namespace kamping::plugin {

template <typename Comm>
class UserLevelFailureMitigation : public PluginBase<Comm, UserLevelFailureMitigation> {
public:
    /// @brief True iff the communicator has been revoked.
    [[nodiscard]] bool is_revoked() const {
        int flag = 0;
        XMPI_Comm_is_revoked(this->self().mpi_communicator(), &flag);
        return flag != 0;
    }

    /// @brief Revokes the communicator: every pending and future operation
    /// on it (except shrink/agree) fails with MpiCommRevoked on all ranks.
    void revoke() {
        kamping::internal::CollectivePlan<kamping::internal::plan_ops::ulfm_recovery> plan(
            this->self().mpi_communicator());
        plan.dispatch(
            "XMPI_Comm_revoke", [&] { return XMPI_Comm_revoke(this->self().mpi_communicator()); });
    }

    /// @brief Builds a new communicator containing only the surviving
    /// processes (collective over the survivors).
    [[nodiscard]] Comm shrink() {
        kamping::internal::CollectivePlan<kamping::internal::plan_ops::ulfm_recovery> plan(
            this->self().mpi_communicator());
        XMPI_Comm shrunken = XMPI_COMM_NULL;
        plan.dispatch("XMPI_Comm_shrink", [&] {
            return XMPI_Comm_shrink(this->self().mpi_communicator(), &shrunken);
        });
        return Comm(shrunken, /*owning=*/true);
    }

    /// @brief Fault-tolerant agreement: bitwise AND of @c flag over the
    /// surviving ranks; completes even with failed or revoked members.
    [[nodiscard]] int agree(int flag) {
        kamping::internal::CollectivePlan<kamping::internal::plan_ops::ulfm_recovery> plan(
            this->self().mpi_communicator());
        plan.dispatch(
            "XMPI_Comm_agree",
            [&] { return XMPI_Comm_agree(this->self().mpi_communicator(), &flag); });
        return flag;
    }

    /// @brief One recovery step: revoke the communicator (unless already
    /// revoked) and replace it, in place, by its shrunken successor.
    void revoke_and_shrink() {
        if (!is_revoked()) {
            revoke();
        }
        this->self() = shrink();
    }

    /// @brief Runs @c body(comm) and, whenever it fails with a recoverable
    /// ULFM error (process failure or revoked communicator), performs
    /// revoke_and_shrink() and re-runs it on the survivor communicator —
    /// the whole of the paper's Fig. 12 recovery loop in one call. Works for
    /// rooted and non-rooted collectives alike: @c body receives the current
    /// communicator, so it can re-derive roots from the shrunken size/rank.
    ///
    /// @param body        Callable taking `Comm&`; its return value is
    ///                    forwarded on success.
    /// @param max_attempts Bound on total attempts; defaults (-1) to
    ///                    initial size + 1, enough for every member failing
    ///                    one by one. Throws MpiError(XMPI_ERR_OTHER) when
    ///                    exhausted. Non-recoverable errors propagate as-is.
    template <typename Body>
    decltype(auto) shrink_and_retry(Body&& body, int max_attempts = -1) {
        int const attempts = max_attempts > 0 ? max_attempts : this->self().size() + 1;
        for (int attempt = 0; attempt < attempts; ++attempt) {
            try {
                return body(this->self());
            } catch (MpiFailureDetected const&) {
                recover();
            } catch (MpiCommRevoked const&) {
                recover();
            }
        }
        throw MpiError(XMPI_ERR_OTHER, "shrink_and_retry: attempts exhausted");
    }

private:
    /// @brief One traced recovery round: the span (op "ulfm_recovery")
    /// makes the cost of revoke+shrink attributable in traced runs.
    void recover() {
        kamping::internal::CollectivePlan<kamping::internal::plan_ops::ulfm_recovery> plan(
            this->self().mpi_communicator());
        revoke_and_shrink();
    }
};

} // namespace kamping::plugin
