/// @file sorter.hpp
/// @brief Sorter plugin: an STL-like distributed sorter (paper, Section V:
/// "an STL-like distributed sorter" shipped as a library extension).
///
/// Implements textbook distributed sample sort (Sanders et al., 2019; the
/// paper's Fig. 7): sample locally, allgather and pick p-1 global splitters,
/// bucket, exchange with alltoallv, sort locally. After the call, the
/// distributed array is globally sorted: every element on rank i <= every
/// element on rank i+1, each rank's block sorted.
#pragma once

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "kamping/named_parameters.hpp"
#include "kamping/plugin/plugin_helpers.hpp"

namespace kamping::plugin {

template <typename Comm>
class Sorter : public PluginBase<Comm, Sorter> {
public:
    /// @brief Globally sorts the distributed array whose local block is
    /// @c data (replaced by this rank's sorted output partition).
    template <typename T, typename Compare = std::less<T>>
    void sort(std::vector<T>& data, Compare compare = {}) const {
        auto const& comm = this->self();
        std::size_t const p = comm.size();
        if (p == 1) {
            std::sort(data.begin(), data.end(), compare);
            return;
        }

        // Oversampling factor 16 log2(p) + 1 as in the paper's Fig. 7.
        std::size_t const num_samples =
            16 * static_cast<std::size_t>(std::log2(static_cast<double>(p))) + 1;
        std::vector<T> local_samples(std::min(num_samples, data.size()));
        std::sample(
            data.begin(), data.end(), local_samples.begin(), local_samples.size(),
            std::mt19937{std::random_device{}()});

        auto global_samples = comm.allgatherv(send_buf(local_samples));
        std::sort(global_samples.begin(), global_samples.end(), compare);

        // p-1 equidistant splitters over the gathered samples.
        std::vector<T> splitters;
        splitters.reserve(p - 1);
        for (std::size_t i = 1; i < p; ++i) {
            if (global_samples.empty()) {
                break;
            }
            std::size_t const index =
                std::min(i * global_samples.size() / p, global_samples.size() - 1);
            splitters.push_back(global_samples[index]);
        }

        // Bucket by splitter, flatten, exchange, sort locally.
        std::sort(data.begin(), data.end(), compare);
        std::vector<int> send_count_values(p, 0);
        std::size_t begin = 0;
        for (std::size_t bucket = 0; bucket < p; ++bucket) {
            std::size_t end = data.size();
            if (bucket < splitters.size()) {
                end = static_cast<std::size_t>(
                    std::upper_bound(
                        data.begin() + static_cast<std::ptrdiff_t>(begin), data.end(),
                        splitters[bucket], compare)
                    - data.begin());
            }
            send_count_values[bucket] = static_cast<int>(end - begin);
            begin = end;
        }

        data = comm.alltoallv(send_buf(std::move(data)), send_counts(send_count_values));
        std::sort(data.begin(), data.end(), compare);
    }
};

} // namespace kamping::plugin
