/// @file nonblocking.hpp
/// @brief Memory-safe non-blocking communication (paper, Section III-E).
///
/// A non-blocking call returns a NonBlockingResult that *owns* the request
/// and every buffer moved into the call. Received (or moved-through) data is
/// only handed back on wait(), or through a successful test() — so user code
/// cannot touch buffers while the operation is in flight, the property
/// std::future provides for asynchronous computation but MPI cannot.
#pragma once

#include <exception>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "kamping/p2p.hpp"
#include "kamping/pipeline.hpp"
#include "xmpi/api.hpp"
#include "xmpi/progress.hpp"

namespace kamping {

/// @brief Handle for a pending non-blocking operation; owns the request and
/// the moved-in buffers.
template <typename... Buffers>
class NonBlockingResult {
public:
    /// @brief Stores the buffers, then invokes @c poster with references to
    /// the *stored* buffers (stable addresses) to initiate the operation.
    template <typename Poster>
    explicit NonBlockingResult(Poster&& poster, Buffers&&... buffers)
        : buffers_(std::move(buffers)...) {
        request_ = std::apply(
            [&](auto&... stored) { return poster(stored...); }, buffers_);
    }

    NonBlockingResult(NonBlockingResult&& other) noexcept
        : request_(std::exchange(other.request_, XMPI_REQUEST_NULL)),
          buffers_(std::move(other.buffers_)) {}
    NonBlockingResult& operator=(NonBlockingResult&&) = delete;
    NonBlockingResult(NonBlockingResult const&) = delete;
    NonBlockingResult& operator=(NonBlockingResult const&) = delete;

    ~NonBlockingResult() {
        if (request_ != XMPI_REQUEST_NULL) {
            // Abandoned in-flight operation: cancel if possible, then free.
            XMPI_Cancel(&request_);
            XMPI_Request_free(&request_);
        }
    }

    /// @brief Type of the value produced on completion (void if nothing is
    /// returned by value).
    using result_type =
        decltype(internal::make_result(std::declval<Buffers&&>()...));
    static constexpr bool returns_value = !std::is_void_v<result_type>;

    /// @brief Blocks until completion; returns the owned data (paper,
    /// Fig. 6: `v = r1.wait();`).
    result_type wait() {
        xmpi::Status status;
        if (request_ != XMPI_REQUEST_NULL) {
            XMPI_Wait(&request_, &status);
            internal::throw_on_error(status.error, "XMPI_Wait");
        }
        return extract_result();
    }

    /// @brief Non-blocking completion check. For value-returning operations:
    /// std::optional with the data iff complete; data can only ever be
    /// obtained once. For void operations: true iff complete.
    auto test() {
        if constexpr (returns_value) {
            if (!test_completed()) {
                return std::optional<result_type>{};
            }
            return std::optional<result_type>{extract_result()};
        } else {
            return test_completed();
        }
    }

    /// @brief True iff the underlying request has completed (or was already
    /// consumed).
    bool test_completed() {
        if (request_ == XMPI_REQUEST_NULL) {
            return true;
        }
        int flag = 0;
        xmpi::Status status;
        int const err = XMPI_Test(&request_, &flag, &status);
        internal::throw_on_error(err, "XMPI_Test");
        return flag != 0;
    }

    /// @brief Internal: the owned request handle, exposed so RequestPool can
    /// sweep many handles with one XMPI_Testsome instead of testing each
    /// entry individually. A completed handle is written back as
    /// XMPI_REQUEST_NULL, which this class already treats as "consumed".
    [[nodiscard]] XMPI_Request& raw_request() { return request_; }

private:
    result_type extract_result() {
        return std::apply(
            [](auto&... stored) { return internal::make_result(std::move(stored)...); },
            buffers_);
    }

    XMPI_Request request_ = XMPI_REQUEST_NULL;
    std::tuple<Buffers...> buffers_;
};

namespace internal {

/// @brief comm.isend(send_buf_out(std::move(v)), destination(d), [tag]):
/// the buffer is owned by the returned handle and re-returned on wait().
template <typename... Args>
auto isend_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::send_buf, Args...>), "isend",
        "send_buf (or send_buf_out)");
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::destination, Args...>), "isend", "destination");
    // The plan's span covers posting the operation; completion happens in
    // wait()/test() on the returned handle.
    CollectivePlan<plan_ops::isend, Args...> plan(comm);
    auto send = std::move(select_parameter<ParameterType::send_buf>(args...));
    using SendBuffer = std::remove_cvref_t<decltype(send)>;
    using T = buffer_value_t<SendBuffer>;
    plan.note_bytes_in(send.size() * sizeof(T));
    int const dest = select_parameter<ParameterType::destination>(args...).value;
    int const tag_value = get_tag(args...);

    return NonBlockingResult<SendBuffer>(
        [&](SendBuffer& stored) {
            XMPI_Request request = XMPI_REQUEST_NULL;
            plan.dispatch("XMPI_Isend", [&] {
                return XMPI_Isend(
                    stored.data(), static_cast<int>(stored.size()), mpi_datatype<T>(), dest,
                    tag_value, comm, &request);
            });
            return request;
        },
        std::move(send));
}

/// @brief Synchronous-mode isend (completes when the receive matched).
template <typename... Args>
auto issend_impl(XMPI_Comm comm, Args&&... args) {
    CollectivePlan<plan_ops::issend, Args...> plan(comm);
    auto send = std::move(select_parameter<ParameterType::send_buf>(args...));
    using SendBuffer = std::remove_cvref_t<decltype(send)>;
    using T = buffer_value_t<SendBuffer>;
    plan.note_bytes_in(send.size() * sizeof(T));
    int const dest = select_parameter<ParameterType::destination>(args...).value;
    int const tag_value = get_tag(args...);

    return NonBlockingResult<SendBuffer>(
        [&](SendBuffer& stored) {
            XMPI_Request request = XMPI_REQUEST_NULL;
            plan.dispatch("XMPI_Issend", [&] {
                return XMPI_Issend(
                    stored.data(), static_cast<int>(stored.size()), mpi_datatype<T>(), dest,
                    tag_value, comm, &request);
            });
            return request;
        },
        std::move(send));
}

/// @brief comm.irecv<T>(recv_count(n), [source], [tag], [recv_buf]): the
/// receive buffer lives inside the returned handle; data is only accessible
/// once the request completed (paper, Fig. 6: `data = r2.wait();`).
template <typename T, typename... Args>
auto irecv_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_CHECK_PARAMETERS(
        Args, "irecv", ParameterType::recv_buf, ParameterType::source, ParameterType::tag,
        ParameterType::recv_count);
    CollectivePlan<plan_ops::irecv, Args...> plan(comm);
    int source_rank = XMPI_ANY_SOURCE;
    if constexpr (has_parameter_v<ParameterType::source, Args...>) {
        source_rank = select_parameter<ParameterType::source>(args...).value;
    }
    int const tag_value = [&] {
        if constexpr (has_parameter_v<ParameterType::tag, Args...>) {
            return select_parameter<ParameterType::tag>(args...).value;
        } else {
            return XMPI_ANY_TAG;
        }
    }();

    auto recv = take_parameter_or_default<ParameterType::recv_buf>(
        default_recv_buf_factory<T>(), args...);
    using RecvBuffer = std::remove_cvref_t<decltype(recv)>;
    using V = buffer_value_t<RecvBuffer>;

    int count;
    if constexpr (has_parameter_v<ParameterType::recv_count, Args...>) {
        count = select_parameter<ParameterType::recv_count>(args...).value;
    } else {
        static_assert(
            has_parameter_v<ParameterType::recv_buf, Args...>,
            "irecv needs to know the message size up front: pass recv_count(n) or a sized "
            "recv_buf(...) (a non-blocking receive cannot probe)");
        count = static_cast<int>(recv.size());
    }
    recv.resize_to(static_cast<std::size_t>(count));
    plan.note_bytes_out(static_cast<std::uint64_t>(count) * sizeof(V));

    return NonBlockingResult<RecvBuffer>(
        [&](RecvBuffer& stored) {
            XMPI_Request request = XMPI_REQUEST_NULL;
            plan.dispatch("XMPI_Irecv", [&] {
                return XMPI_Irecv(
                    stored.data(), count, mpi_datatype<V>(), source_rank, tag_value, comm,
                    &request);
            });
            return request;
        },
        std::move(recv));
}

} // namespace internal

/// @brief Collects non-blocking results for bulk completion (paper,
/// Section III-E "request pools"). The current implementation stores them in
/// an unbounded array; the interface is designed so bounded variants can be
/// added (as the paper's authors do) without changing call sites.
class RequestPool {
public:
    /// @brief Transfers a pending operation into the pool. Returned values
    /// of pooled operations are discarded on completion — use referencing
    /// recv_buf parameters to keep received data.
    template <typename... Buffers>
    void add(NonBlockingResult<Buffers...>&& result) {
        entries_.push_back(std::make_unique<Entry<Buffers...>>(std::move(result)));
    }

    /// @brief Waits for all pooled operations, then empties the pool. When
    /// operations fail (e.g. the communicator is revoked mid-flight), every
    /// entry is still drained — no request is left dangling — and the first
    /// failure is rethrown afterwards, so ULFM recovery code can catch one
    /// exception and retry with an empty pool.
    void wait_all() {
        std::exception_ptr first_error;
        for (auto& entry: entries_) {
            try {
                entry->wait();
            } catch (...) {
                if (!first_error) {
                    first_error = std::current_exception();
                }
            }
        }
        entries_.clear();
        if (first_error) {
            std::rethrow_exception(first_error);
        }
    }

    /// @brief Tests all pooled operations with ONE XMPI_Testsome sweep;
    /// completed ones are removed. Entries that completed with an error are
    /// removed too, and the first error is rethrown after the sweep (the
    /// ERR_IN_STATUS convention, surfaced as a kamping exception). Returns
    /// true iff the pool is empty afterwards.
    ///
    /// A sweep that leaves entries pending also drains the shared progress
    /// engine by one task (xmpi::progress::poll()): a test_all() polling
    /// loop therefore makes progress even when every engine worker is busy,
    /// instead of spinning until some other rank runs the queue dry.
    bool test_all() {
        // Entries whose handle was already consumed (wait()ed or test()ed
        // through the result object directly) are complete by definition.
        std::erase_if(entries_, [](auto const& entry) {
            return entry->raw_request() == XMPI_REQUEST_NULL;
        });
        if (entries_.empty()) {
            return true;
        }

        std::vector<XMPI_Request> requests(entries_.size());
        std::vector<int> indices(entries_.size());
        std::vector<xmpi::Status> statuses(entries_.size());
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            requests[i] = entries_[i]->raw_request();
        }
        int outcount = 0;
        int const err = XMPI_Testsome(
            static_cast<int>(requests.size()), requests.data(), &outcount, indices.data(),
            statuses.data());
        // Write the handles back first: Testsome consumed (nulled) the
        // completed ones, and the entries' destructors key off that.
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            entries_[i]->raw_request() = requests[i];
        }

        int first_error = XMPI_SUCCESS;
        std::vector<char> completed(entries_.size(), 0);
        if (outcount != XMPI_UNDEFINED) {
            for (int k = 0; k < outcount; ++k) {
                completed[static_cast<std::size_t>(indices[k])] = 1;
                if (first_error == XMPI_SUCCESS
                    && statuses[static_cast<std::size_t>(k)].error != XMPI_SUCCESS) {
                    first_error = statuses[static_cast<std::size_t>(k)].error;
                }
            }
        }
        std::size_t slot = 0;
        std::erase_if(entries_, [&](auto const&) { return completed[slot++] != 0; });

        if (err != XMPI_SUCCESS && err != XMPI_ERR_IN_STATUS) {
            internal::throw_on_error(err, "XMPI_Testsome");
        }
        if (first_error != XMPI_SUCCESS) {
            internal::throw_on_error(first_error, "XMPI_Testsome");
        }
        if (!entries_.empty()) {
            xmpi::progress::poll();
        }
        return entries_.empty();
    }

    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    [[nodiscard]] bool empty() const { return entries_.empty(); }

private:
    struct EntryBase {
        virtual ~EntryBase() = default;
        virtual void wait() = 0;
        virtual bool test() = 0;
        virtual XMPI_Request& raw_request() = 0;
    };
    template <typename... Buffers>
    struct Entry final : EntryBase {
        explicit Entry(NonBlockingResult<Buffers...>&& result) : pending(std::move(result)) {}
        void wait() override { (void)pending.wait(); }
        bool test() override { return pending.test_completed(); }
        XMPI_Request& raw_request() override { return pending.raw_request(); }
        NonBlockingResult<Buffers...> pending;
    };

    std::vector<std::unique_ptr<EntryBase>> entries_;
};

/// @brief Request pool with a fixed number of slots: add() blocks until a
/// slot is free, bounding the number of concurrent non-blocking operations
/// (the extension the paper describes as work in progress in Section III-E:
/// "a request pool with a fixed number of slots, internally maintaining
/// free slots, which allows limiting the number of concurrent non-blocking
/// requests").
class BoundedRequestPool {
public:
    explicit BoundedRequestPool(std::size_t slots) : slots_(slots) {
        KASSERT(slots > 0, "a bounded request pool needs at least one slot");
    }

    /// @brief Transfers a pending operation into the pool; if all slots are
    /// occupied, first drains completed entries and, if none completed yet,
    /// waits for the oldest one.
    template <typename... Buffers>
    void add(NonBlockingResult<Buffers...>&& result) {
        if (pool_.size() >= slots_) {
            pool_.test_all(); // drain already-completed entries first
        }
        if (pool_.size() >= slots_) {
            // Still full: make progress by finishing the current generation
            // (simple and deadlock-free; a slot-precise variant would wait
            // on the oldest entry only).
            pool_.wait_all();
        }
        pool_.add(std::move(result));
    }

    void wait_all() { pool_.wait_all(); }
    [[nodiscard]] std::size_t size() const { return pool_.size(); }
    [[nodiscard]] std::size_t capacity() const { return slots_; }

private:
    std::size_t slots_;
    RequestPool pool_;
};

} // namespace kamping
