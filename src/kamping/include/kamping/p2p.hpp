/// @file p2p.hpp
/// @brief Blocking point-to-point wrappers: send, ssend, recv, probe. All
/// dispatch through the call plan of pipeline.hpp.
#pragma once

#include <optional>

#include "kamping/pipeline.hpp"
#include "kamping/serialization.hpp"

namespace kamping::internal {

template <typename... Args>
int get_tag(Args&&... args) {
    if constexpr (has_parameter_v<ParameterType::tag, Args...>) {
        return select_parameter<ParameterType::tag>(args...).value;
    } else {
        return 0;
    }
}

/// @brief comm.send(send_buf(v), destination(d), [tag], [send_count]).
template <typename... Args>
void send_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_PLAN_REQUIRE((has_parameter_v<ParameterType::send_buf, Args...>), "send", "send_buf");
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::destination, Args...>), "send", "destination");
    KAMPING_CHECK_PARAMETERS(
        Args, "send", ParameterType::send_buf, ParameterType::destination, ParameterType::tag,
        ParameterType::send_count, ParameterType::send_mode);
    CollectivePlan<plan_ops::send, Args...> plan(comm);
    auto&& send = ResolveSend{}(plan, args...);
    using T = buffer_value_t<decltype(send)>;
    int const dest = select_parameter<ParameterType::destination>(args...).value;
    int count = static_cast<int>(send.size());
    if constexpr (has_parameter_v<ParameterType::send_count, Args...>) {
        count = select_parameter<ParameterType::send_count>(args...).value;
    }
    // send_mode selects the underlying MPI send flavour at compile time.
    constexpr bool synchronous = [] {
        if constexpr (has_parameter_v<ParameterType::send_mode, Args...>) {
            using Mode = typename std::remove_cvref_t<decltype(select_parameter<
                                                               ParameterType::send_mode>(
                std::declval<Args&>()...))>::value_type;
            return std::is_same_v<Mode, send_modes::synchronous_tag>;
        } else {
            return false;
        }
    }();
    if constexpr (synchronous) {
        Dispatch{}(plan, "XMPI_Ssend", [&] {
            return XMPI_Ssend(send.data(), count, mpi_datatype<T>(), dest, get_tag(args...), comm);
        });
    } else {
        Dispatch{}(plan, "XMPI_Send", [&] {
            return XMPI_Send(send.data(), count, mpi_datatype<T>(), dest, get_tag(args...), comm);
        });
    }
}

/// @brief Synchronous-mode send: completes only once the receive matched.
template <typename... Args>
void ssend_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_PLAN_REQUIRE((has_parameter_v<ParameterType::send_buf, Args...>), "ssend", "send_buf");
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::destination, Args...>), "ssend", "destination");
    CollectivePlan<plan_ops::ssend, Args...> plan(comm);
    auto&& send = ResolveSend{}(plan, args...);
    using T = buffer_value_t<decltype(send)>;
    int const dest = select_parameter<ParameterType::destination>(args...).value;
    Dispatch{}(plan, "XMPI_Ssend", [&] {
        return XMPI_Ssend(
            send.data(), static_cast<int>(send.size()), mpi_datatype<T>(), dest,
            get_tag(args...), comm);
    });
}

/// @brief comm.recv<T>([source], [tag], [recv_buf], [recv_count[_out]]).
///
/// When the element count is unknown, the message is probed first and the
/// receive buffer sized to fit — this is also how serialized receives
/// (recv_buf(as_deserializable<T>())) learn their payload size.
template <typename T, typename... Args>
auto recv_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_CHECK_PARAMETERS(
        Args, "recv", ParameterType::recv_buf, ParameterType::source, ParameterType::tag,
        ParameterType::recv_count, ParameterType::status);
    CollectivePlan<plan_ops::recv, Args...> plan(comm);
    int source_rank = XMPI_ANY_SOURCE;
    if constexpr (has_parameter_v<ParameterType::source, Args...>) {
        source_rank = select_parameter<ParameterType::source>(args...).value;
    }
    int tag_value = XMPI_ANY_TAG;
    if constexpr (has_parameter_v<ParameterType::tag, Args...>) {
        tag_value = select_parameter<ParameterType::tag>(args...).value;
    }

    int count = -1;
    if constexpr (has_parameter_v<ParameterType::recv_count, Args...>) {
        using CountParam = std::remove_cvref_t<
            decltype(select_parameter<ParameterType::recv_count>(args...))>;
        if constexpr (CountParam::kind == BufferKind::in) {
            count = select_parameter<ParameterType::recv_count>(args...).value;
        }
    }
    using V = buffer_value_t<decltype(take_parameter_or_default<ParameterType::recv_buf>(
        default_recv_buf_factory<T>(), args...))>;
    if (count < 0) {
        // Probe to learn the payload size; then receive exactly that
        // message (matching the probed source/tag, which pins it under
        // wildcards by the non-overtaking rule).
        xmpi::Status status;
        plan.note_count_exchange();
        plan.dispatch(
            "XMPI_Probe",
            [&] { return XMPI_Probe(source_rank, tag_value, comm, &status); },
            PlanStage::infer_counts);
        int type_size = 0;
        XMPI_Type_size(mpi_datatype<V>(), &type_size);
        count = status.count(static_cast<std::size_t>(type_size));
        source_rank = status.source;
        tag_value = status.tag;
    }

    auto recv =
        PrepareRecv<T>{}(plan, static_cast<std::size_t>(count), /*participate=*/true, args...);
    xmpi::Status status;
    Dispatch{}(plan, "XMPI_Recv", [&] {
        return XMPI_Recv(
            recv.data(), count, mpi_datatype<V>(), source_rank, tag_value, comm, &status);
    });

    // Optional out-values: the element count and the receive status.
    auto count_param =
        take_out_parameter_or_ignore<ParameterType::recv_count, int>(args...);
    int type_size = 0;
    XMPI_Type_size(mpi_datatype<V>(), &type_size);
    count_param.set(status.count(static_cast<std::size_t>(type_size)));
    auto status_param =
        take_out_parameter_or_ignore<ParameterType::status, xmpi::Status>(args...);
    status_param.set(status);
    return AssembleResult{}(std::move(recv), std::move(count_param), std::move(status_param));
}

/// @brief comm.probe([source], [tag]) -> xmpi::Status.
template <typename... Args>
xmpi::Status probe_impl(XMPI_Comm comm, Args&&... args) {
    CollectivePlan<plan_ops::probe, Args...> plan(comm);
    int source_rank = XMPI_ANY_SOURCE;
    if constexpr (has_parameter_v<ParameterType::source, Args...>) {
        source_rank = select_parameter<ParameterType::source>(args...).value;
    }
    int tag_value = XMPI_ANY_TAG;
    if constexpr (has_parameter_v<ParameterType::tag, Args...>) {
        tag_value = select_parameter<ParameterType::tag>(args...).value;
    }
    xmpi::Status status;
    Dispatch{}(plan, "XMPI_Probe", [&] {
        return XMPI_Probe(source_rank, tag_value, comm, &status);
    });
    return status;
}

/// @brief comm.iprobe([source], [tag]) -> std::optional<xmpi::Status>.
template <typename... Args>
std::optional<xmpi::Status> iprobe_impl(XMPI_Comm comm, Args&&... args) {
    CollectivePlan<plan_ops::iprobe, Args...> plan(comm);
    int source_rank = XMPI_ANY_SOURCE;
    if constexpr (has_parameter_v<ParameterType::source, Args...>) {
        source_rank = select_parameter<ParameterType::source>(args...).value;
    }
    int tag_value = XMPI_ANY_TAG;
    if constexpr (has_parameter_v<ParameterType::tag, Args...>) {
        tag_value = select_parameter<ParameterType::tag>(args...).value;
    }
    xmpi::Status status;
    int flag = 0;
    Dispatch{}(plan, "XMPI_Iprobe", [&] {
        return XMPI_Iprobe(source_rank, tag_value, comm, &flag, &status);
    });
    if (flag == 0) {
        return std::nullopt;
    }
    return status;
}

} // namespace kamping::internal
