/// @file p2p.hpp
/// @brief Blocking point-to-point wrappers: send, ssend, recv, probe.
#pragma once

#include <optional>

#include "kamping/collectives_helpers.hpp"
#include "kamping/serialization.hpp"

namespace kamping::internal {

template <typename... Args>
int get_tag(Args&&... args) {
    if constexpr (has_parameter_v<ParameterType::tag, Args...>) {
        return select_parameter<ParameterType::tag>(args...).value;
    } else {
        return 0;
    }
}

/// @brief comm.send(send_buf(v), destination(d), [tag], [send_count]).
template <typename... Args>
void send_impl(XMPI_Comm comm, Args&&... args) {
    static_assert(
        has_parameter_v<ParameterType::send_buf, Args...>,
        "send requires a send_buf(...) parameter");
    static_assert(
        has_parameter_v<ParameterType::destination, Args...>,
        "send requires a destination(...) parameter");
    KAMPING_CHECK_PARAMETERS(
        Args, "send", ParameterType::send_buf, ParameterType::destination, ParameterType::tag,
        ParameterType::send_count, ParameterType::send_mode);
    auto&& send = select_parameter<ParameterType::send_buf>(args...);
    using T = buffer_value_t<decltype(send)>;
    int const dest = select_parameter<ParameterType::destination>(args...).value;
    int count = static_cast<int>(send.size());
    if constexpr (has_parameter_v<ParameterType::send_count, Args...>) {
        count = select_parameter<ParameterType::send_count>(args...).value;
    }
    // send_mode selects the underlying MPI send flavour at compile time.
    constexpr bool synchronous = [] {
        if constexpr (has_parameter_v<ParameterType::send_mode, Args...>) {
            using Mode = typename std::remove_cvref_t<decltype(select_parameter<
                                                               ParameterType::send_mode>(
                std::declval<Args&>()...))>::value_type;
            return std::is_same_v<Mode, send_modes::synchronous_tag>;
        } else {
            return false;
        }
    }();
    if constexpr (synchronous) {
        throw_on_error(
            XMPI_Ssend(send.data(), count, mpi_datatype<T>(), dest, get_tag(args...), comm),
            "XMPI_Ssend");
    } else {
        throw_on_error(
            XMPI_Send(send.data(), count, mpi_datatype<T>(), dest, get_tag(args...), comm),
            "XMPI_Send");
    }
}

/// @brief Synchronous-mode send: completes only once the receive matched.
template <typename... Args>
void ssend_impl(XMPI_Comm comm, Args&&... args) {
    static_assert(
        has_parameter_v<ParameterType::send_buf, Args...>,
        "ssend requires a send_buf(...) parameter");
    static_assert(
        has_parameter_v<ParameterType::destination, Args...>,
        "ssend requires a destination(...) parameter");
    auto&& send = select_parameter<ParameterType::send_buf>(args...);
    using T = buffer_value_t<decltype(send)>;
    int const dest = select_parameter<ParameterType::destination>(args...).value;
    throw_on_error(
        XMPI_Ssend(
            send.data(), static_cast<int>(send.size()), mpi_datatype<T>(), dest,
            get_tag(args...), comm),
        "XMPI_Ssend");
}

/// @brief comm.recv<T>([source], [tag], [recv_buf], [recv_count[_out]]).
///
/// When the element count is unknown, the message is probed first and the
/// receive buffer sized to fit — this is also how serialized receives
/// (recv_buf(as_deserializable<T>())) learn their payload size.
template <typename T, typename... Args>
auto recv_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_CHECK_PARAMETERS(
        Args, "recv", ParameterType::recv_buf, ParameterType::source, ParameterType::tag,
        ParameterType::recv_count, ParameterType::status);
    int source_rank = XMPI_ANY_SOURCE;
    if constexpr (has_parameter_v<ParameterType::source, Args...>) {
        source_rank = select_parameter<ParameterType::source>(args...).value;
    }
    int tag_value = XMPI_ANY_TAG;
    if constexpr (has_parameter_v<ParameterType::tag, Args...>) {
        tag_value = select_parameter<ParameterType::tag>(args...).value;
    }

    auto recv = take_parameter_or_default<ParameterType::recv_buf>(
        default_recv_buf_factory<T>(), args...);
    using V = buffer_value_t<decltype(recv)>;

    int count = -1;
    if constexpr (has_parameter_v<ParameterType::recv_count, Args...>) {
        using CountParam = std::remove_cvref_t<
            decltype(select_parameter<ParameterType::recv_count>(args...))>;
        if constexpr (CountParam::kind == BufferKind::in) {
            count = select_parameter<ParameterType::recv_count>(args...).value;
        }
    }
    if (count < 0) {
        // Probe to learn the payload size; then receive exactly that
        // message (matching the probed source/tag, which pins it under
        // wildcards by the non-overtaking rule).
        xmpi::Status status;
        throw_on_error(XMPI_Probe(source_rank, tag_value, comm, &status), "XMPI_Probe");
        int type_size = 0;
        XMPI_Type_size(mpi_datatype<V>(), &type_size);
        count = status.count(static_cast<std::size_t>(type_size));
        source_rank = status.source;
        tag_value = status.tag;
    }

    recv.resize_to(static_cast<std::size_t>(count));
    xmpi::Status status;
    throw_on_error(
        XMPI_Recv(
            recv.data(), count, mpi_datatype<V>(), source_rank, tag_value, comm, &status),
        "XMPI_Recv");

    // Optional out-values: the element count and the receive status.
    auto count_param =
        take_out_parameter_or_ignore<ParameterType::recv_count, int>(args...);
    int type_size = 0;
    XMPI_Type_size(mpi_datatype<V>(), &type_size);
    count_param.set(status.count(static_cast<std::size_t>(type_size)));
    auto status_param =
        take_out_parameter_or_ignore<ParameterType::status, xmpi::Status>(args...);
    status_param.set(status);
    return make_result(std::move(recv), std::move(count_param), std::move(status_param));
}

/// @brief comm.probe([source], [tag]) -> xmpi::Status.
template <typename... Args>
xmpi::Status probe_impl(XMPI_Comm comm, Args&&... args) {
    int source_rank = XMPI_ANY_SOURCE;
    if constexpr (has_parameter_v<ParameterType::source, Args...>) {
        source_rank = select_parameter<ParameterType::source>(args...).value;
    }
    int tag_value = XMPI_ANY_TAG;
    if constexpr (has_parameter_v<ParameterType::tag, Args...>) {
        tag_value = select_parameter<ParameterType::tag>(args...).value;
    }
    xmpi::Status status;
    throw_on_error(XMPI_Probe(source_rank, tag_value, comm, &status), "XMPI_Probe");
    return status;
}

/// @brief comm.iprobe([source], [tag]) -> std::optional<xmpi::Status>.
template <typename... Args>
std::optional<xmpi::Status> iprobe_impl(XMPI_Comm comm, Args&&... args) {
    int source_rank = XMPI_ANY_SOURCE;
    if constexpr (has_parameter_v<ParameterType::source, Args...>) {
        source_rank = select_parameter<ParameterType::source>(args...).value;
    }
    int tag_value = XMPI_ANY_TAG;
    if constexpr (has_parameter_v<ParameterType::tag, Args...>) {
        tag_value = select_parameter<ParameterType::tag>(args...).value;
    }
    xmpi::Status status;
    int flag = 0;
    throw_on_error(XMPI_Iprobe(source_rank, tag_value, comm, &flag, &status), "XMPI_Iprobe");
    if (flag == 0) {
        return std::nullopt;
    }
    return status;
}

} // namespace kamping::internal
