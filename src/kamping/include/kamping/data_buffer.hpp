/// @file data_buffer.hpp
/// @brief DataBuffer: the unified wrapper around all user-visible buffers.
///
/// Every container or value passed to a KaMPIng call is wrapped in a
/// DataBuffer that encodes — entirely at compile time — its parameter type,
/// data-flow direction (in/out/in-out), ownership (moved-in/library-owned vs
/// referencing the caller's storage), resize policy, and whether it is
/// returned to the caller in the result object (paper, Section III-H).
/// Because ownership and modifiability are template parameters, the wrappers
/// move (never copy) data and dead branches are eliminated at compile time.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "kassert/kassert.hpp"
#include "kamping/parameter_type.hpp"

namespace kamping {

namespace internal {

/// @brief Containers usable as message buffers: contiguous storage with
/// size() and a value_type (std::vector, std::array, std::span, std::string,
/// thrust-style device vectors, ...).
template <typename T>
concept contiguous_container = requires(std::remove_cvref_t<T>& container) {
    typename std::remove_cvref_t<T>::value_type;
    { container.data() };
    { container.size() } -> std::convertible_to<std::size_t>;
};

/// @brief Containers that can change their size.
template <typename T>
concept resizable_container =
    contiguous_container<T> && requires(std::remove_cvref_t<T>& container, std::size_t n) {
        container.resize(n);
    };

template <typename T>
constexpr bool is_vector_bool =
    std::is_same_v<std::remove_cvref_t<T>, std::vector<bool>>;

/// @brief Plain dynamic bool array. std::vector<bool> is a bitset without
/// contiguous bool storage, so KaMPIng uses this as the default container
/// for received bools.
class BoolStorage {
public:
    using value_type = bool;

    [[nodiscard]] bool* data() { return storage_.get(); }
    [[nodiscard]] bool const* data() const { return storage_.get(); }
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool front() const { return storage_[0]; }
    [[nodiscard]] bool operator[](std::size_t index) const { return storage_[index]; }

    void resize(std::size_t n) {
        auto grown = std::make_unique<bool[]>(n);
        for (std::size_t i = 0; i < std::min(n, size_); ++i) {
            grown[i] = storage_[i];
        }
        storage_ = std::move(grown);
        size_ = n;
    }

private:
    std::unique_ptr<bool[]> storage_;
    std::size_t size_ = 0;
};

/// @brief The container type used for library-allocated buffers of T.
template <typename T>
using default_container_t = std::conditional_t<std::is_same_v<T, bool>, BoolStorage, std::vector<T>>;

} // namespace internal

/// @brief Compile-time description of a buffer's role; see file comment.
template <
    typename Container, ParameterType Type, BufferKind Kind, BufferOwnership Ownership,
    BufferResizePolicy ResizePolicy, bool InResult>
class DataBuffer {
public:
    static constexpr ParameterType parameter_type = Type;
    static constexpr BufferKind kind = Kind;
    static constexpr BufferOwnership ownership = Ownership;
    static constexpr BufferResizePolicy resize_policy = ResizePolicy;
    /// True iff this buffer is handed back to the caller in the result.
    static constexpr bool in_result = InResult;
    static constexpr bool is_modifiable = Kind != BufferKind::in;
    static constexpr bool is_owning = Ownership == BufferOwnership::owning;

    using ContainerType = std::remove_cvref_t<Container>;
    using value_type = typename ContainerType::value_type;

private:
    /// Owning buffers store the container; referencing buffers a reference.
    /// Referencing in-buffers reference const.
    using Storage = std::conditional_t<
        is_owning, ContainerType,
        std::conditional_t<is_modifiable, ContainerType&, ContainerType const&>>;

public:
    explicit DataBuffer(Storage storage)
        requires(!is_owning)
        : storage_(storage) {}

    explicit DataBuffer(ContainerType&& storage)
        requires(is_owning)
        : storage_(std::move(storage)) {}

    DataBuffer(DataBuffer&&) = default;
    DataBuffer& operator=(DataBuffer&&) = default;
    DataBuffer(DataBuffer const&) = delete;
    DataBuffer& operator=(DataBuffer const&) = delete;

    [[nodiscard]] std::size_t size() const { return storage_.size(); }
    [[nodiscard]] value_type const* data() const { return std::data(storage_); }

    [[nodiscard]] value_type* data()
        requires is_modifiable
    {
        return std::data(storage_);
    }

    /// @brief Applies the resize policy for a required size of @c n elements
    /// (paper, Section III-C). With no_resize, insufficient capacity is a
    /// usage error caught by an assertion instead of a buffer overrun.
    void resize_to(std::size_t n)
        requires is_modifiable
    {
        if constexpr (resize_policy == BufferResizePolicy::no_resize) {
            THROWING_KASSERT(
                storage_.size() >= n,
                "buffer with no_resize policy is too small: has "
                    << storage_.size() << " elements, needs " << n
                    << " (pass recv_buf<resize_to_fit>(...) to let KaMPIng resize)");
        } else if constexpr (resize_policy == BufferResizePolicy::grow_only) {
            if (storage_.size() < n) {
                resize_storage(n);
            }
        } else {
            if (storage_.size() != n) {
                resize_storage(n);
            }
        }
    }

    /// @brief Moves the underlying container out (result extraction).
    [[nodiscard]] ContainerType extract() &&
        requires is_owning
    {
        return std::move(storage_);
    }

    [[nodiscard]] ContainerType& underlying() { return storage_; }
    [[nodiscard]] ContainerType const& underlying() const { return storage_; }

private:
    void resize_storage(std::size_t n) {
        static_assert(
            internal::resizable_container<ContainerType>,
            "this buffer's container cannot be resized (e.g. std::span); pass a resizable "
            "container or use the no_resize policy with sufficient capacity");
        storage_.resize(n);
    }

    Storage storage_;
};

/// @brief A single in-value parameter (root, tag, destination, ...).
template <ParameterType Type, typename T>
struct ValueParameter {
    static constexpr ParameterType parameter_type = Type;
    static constexpr BufferKind kind = BufferKind::in;
    static constexpr bool in_result = false;
    using value_type = T;

    T value;
};

/// @brief A single out-value parameter (e.g. recv_count_out()): either
/// owning (returned via the result object) or referencing (written through).
template <ParameterType Type, typename T, BufferOwnership Ownership>
class ValueOutParameter {
public:
    static constexpr ParameterType parameter_type = Type;
    static constexpr BufferKind kind = BufferKind::out;
    static constexpr BufferOwnership ownership = Ownership;
    static constexpr bool in_result = Ownership == BufferOwnership::owning;
    static constexpr bool is_owning = Ownership == BufferOwnership::owning;
    using value_type = T;

    ValueOutParameter()
        requires(is_owning)
        : storage_{} {}
    explicit ValueOutParameter(T& target)
        requires(!is_owning)
        : storage_(target) {}

    void set(T const& value) { storage_ = value; }
    [[nodiscard]] T extract() &&
        requires(is_owning)
    {
        return storage_;
    }

private:
    std::conditional_t<is_owning, T, T&> storage_;
};

} // namespace kamping
