/// @file serialization.hpp
/// @brief Opt-in, transparent serialization support (paper, Section III-D3).
///
/// Heap-backed types (std::string, std::unordered_map, ...) cannot be
/// described by MPI datatypes. Wrapping them in as_serialized() /
/// as_deserializable<T>() makes any KaMPIng call pack them through kaserial
/// before communication — explicitly, because serialization has real costs
/// that zero-overhead bindings must not hide. The archive types are template
/// parameters, so binary / text / user-defined formats are all usable.
#pragma once

#include <cstddef>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "kaserial/kaserial.hpp"
#include "kamping/parameter_type.hpp"

namespace kamping {

/// @brief Marker produced by as_serialized(): the wrapped object is packed
/// into a byte buffer when used as a send or send-recv parameter.
template <
    typename T, typename OutArchive = kaserial::BinaryOutputArchive,
    typename InArchive = kaserial::BinaryInputArchive>
struct SerializedView {
    T* object;
};

/// @brief Marker produced by as_deserializable<T>(): the received bytes are
/// unpacked into a T on result extraction.
template <typename T, typename InArchive = kaserial::BinaryInputArchive>
struct DeserializableTag {};

/// @brief Wraps an object for serialized transfer. The object is captured by
/// reference; it must outlive the communication call.
template <
    typename OutArchive = kaserial::BinaryOutputArchive,
    typename InArchive = kaserial::BinaryInputArchive, typename T>
auto as_serialized(T& object) {
    return SerializedView<T, OutArchive, InArchive>{&object};
}

/// @brief Requests that received bytes be deserialized into a T.
template <typename T, typename InArchive = kaserial::BinaryInputArchive>
auto as_deserializable() {
    return DeserializableTag<T, InArchive>{};
}

namespace internal {

/// @brief Serializes @c object into a fresh byte vector using OutArchive.
template <typename OutArchive, typename T>
std::vector<std::byte> serialize_object(T const& object) {
    if constexpr (std::is_same_v<OutArchive, kaserial::BinaryOutputArchive>) {
        return kaserial::to_bytes(object);
    } else {
        // Text-style archives produce strings; transport them as bytes.
        std::string text;
        OutArchive archive(text);
        archive(const_cast<T&>(object));
        std::vector<std::byte> bytes(text.size());
        std::memcpy(bytes.data(), text.data(), text.size());
        return bytes;
    }
}

/// @brief Deserializes @c bytes into @c object using InArchive.
template <typename InArchive, typename T>
void deserialize_object(std::span<std::byte const> bytes, T& object) {
    if constexpr (std::is_same_v<InArchive, kaserial::BinaryInputArchive>) {
        InArchive archive(bytes);
        archive(object);
    } else {
        std::string text(reinterpret_cast<char const*>(bytes.data()), bytes.size());
        InArchive archive(text);
        archive(object);
    }
}

} // namespace internal

/// @brief Out-buffer that receives raw bytes and deserializes them into a T
/// on extraction. Behaves like an owning byte DataBuffer towards the
/// transport layer.
template <typename T, typename InArchive = kaserial::BinaryInputArchive>
class DeserializationBuffer {
public:
    static constexpr ParameterType parameter_type = ParameterType::recv_buf;
    static constexpr BufferKind kind = BufferKind::out;
    static constexpr BufferOwnership ownership = BufferOwnership::owning;
    static constexpr BufferResizePolicy resize_policy = BufferResizePolicy::resize_to_fit;
    static constexpr bool in_result = true;
    static constexpr bool is_serialization = true;
    using value_type = std::byte;

    [[nodiscard]] std::size_t size() const { return bytes_.size(); }
    [[nodiscard]] std::byte* data() { return bytes_.data(); }
    [[nodiscard]] std::byte const* data() const { return bytes_.data(); }
    void resize_to(std::size_t n) { bytes_.resize(n); }

    /// @brief Deserializes the received bytes into the target type.
    [[nodiscard]] T extract() && {
        T object{};
        internal::deserialize_object<InArchive>(bytes_, object);
        return object;
    }

private:
    std::vector<std::byte> bytes_;
};

/// @brief In-out serialization buffer for send_recv_buf(as_serialized(x)),
/// e.g. broadcast of a serialized object (paper, Fig. 11): the root
/// serializes, every other rank deserializes into its object.
template <
    typename T, typename OutArchive = kaserial::BinaryOutputArchive,
    typename InArchive = kaserial::BinaryInputArchive>
class SerializationInOutBuffer {
public:
    static constexpr ParameterType parameter_type = ParameterType::send_recv_buf;
    static constexpr BufferKind kind = BufferKind::in_out;
    static constexpr BufferOwnership ownership = BufferOwnership::referencing;
    static constexpr bool in_result = false;
    static constexpr bool is_serialization = true;
    using value_type = std::byte;

    explicit SerializationInOutBuffer(T* object) : object_(object) {}

    [[nodiscard]] std::vector<std::byte> serialize() const {
        return internal::serialize_object<OutArchive>(*object_);
    }
    void deserialize(std::span<std::byte const> bytes) {
        internal::deserialize_object<InArchive>(bytes, *object_);
    }

private:
    T* object_;
};

namespace internal {

template <typename Buffer>
concept serialization_buffer = requires { std::remove_cvref_t<Buffer>::is_serialization; };

} // namespace internal
} // namespace kamping
