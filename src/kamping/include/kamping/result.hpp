/// @file result.hpp
/// @brief Result objects: returning data by value (paper, Section III-B).
///
/// Every KaMPIng call assembles its result from the *owning* out-buffers:
///   - no owning out-buffer  -> the call returns void;
///   - exactly one           -> its container is returned directly
///                              (auto v = comm.allgatherv(send_buf(v)));
///   - several               -> an MPIResult supporting both structured
///                              bindings (auto [buf, counts] = ...) and named
///                              extraction (result.extract_recv_counts()).
/// Buffers passed by reference are written in place and never appear in the
/// result. Everything is moved, never copied.
#pragma once

#include <tuple>
#include <type_traits>
#include <utility>

#include "kamping/parameter_type.hpp"

namespace kamping {

namespace internal {

/// @brief One entry of a result object: the extracted value plus the
/// parameter type it came from (for named extraction).
template <ParameterType Type, typename Value>
struct ResultEntry {
    static constexpr ParameterType parameter_type = Type;
    using value_type = Value;
    Value value;
};

/// @brief Extracts the payload of a buffer into a ResultEntry.
template <typename Buffer>
auto make_result_entry(Buffer&& buffer) {
    using Decayed = std::remove_cvref_t<Buffer>;
    return ResultEntry<Decayed::parameter_type, decltype(std::move(buffer).extract())>{
        std::move(buffer).extract()};
}

} // namespace internal

/// @brief Result of a call with two or more owning out-parameters. Supports
/// structured bindings in parameter order (receive buffer first) and
/// extract_<name>() accessors.
template <typename... Entries>
class MPIResult {
public:
    explicit MPIResult(Entries&&... entries) : entries_(std::move(entries)...) {}

    /// @brief Tuple-style access for structured bindings.
    template <std::size_t Index>
    [[nodiscard]] auto get() && {
        return std::move(std::get<Index>(entries_).value);
    }
    template <std::size_t Index>
    [[nodiscard]] auto& get() & {
        return std::get<Index>(entries_).value;
    }

    /// @brief Extracts the entry for the given parameter type by move.
    template <ParameterType Type>
    [[nodiscard]] auto extract() {
        constexpr std::size_t index = index_of<Type>();
        static_assert(
            index < sizeof...(Entries),
            "this result does not contain the requested value — pass the corresponding _out() "
            "parameter to the call to request it");
        return std::move(std::get<index>(entries_).value);
    }

    /// @name Named extraction (paper, Section III-B)
    /// @{
    [[nodiscard]] auto extract_recv_buf() {
        if constexpr (index_of<ParameterType::send_recv_buf>() < sizeof...(Entries)) {
            return extract<ParameterType::send_recv_buf>();
        } else {
            return extract<ParameterType::recv_buf>();
        }
    }
    [[nodiscard]] auto extract_send_buf() { return extract<ParameterType::send_buf>(); }
    [[nodiscard]] auto extract_recv_counts() { return extract<ParameterType::recv_counts>(); }
    [[nodiscard]] auto extract_send_counts() { return extract<ParameterType::send_counts>(); }
    [[nodiscard]] auto extract_recv_displs() { return extract<ParameterType::recv_displs>(); }
    [[nodiscard]] auto extract_send_displs() { return extract<ParameterType::send_displs>(); }
    [[nodiscard]] auto extract_recv_count() { return extract<ParameterType::recv_count>(); }
    /// @}

private:
    template <ParameterType Type>
    static constexpr std::size_t index_of() {
        constexpr ParameterType types[] = {Entries::parameter_type...};
        for (std::size_t i = 0; i < sizeof...(Entries); ++i) {
            if (types[i] == Type) {
                return i;
            }
        }
        return sizeof...(Entries);
    }

    std::tuple<Entries...> entries_;
};

namespace internal {

/// @brief Assembles the return value from the call's buffers according to
/// the 0/1/n rule described in the file comment. Buffers whose in_result is
/// false are destroyed here (releasing referencing wrappers).
template <typename... Buffers>
auto make_result(Buffers&&... buffers) {
    constexpr std::size_t num_entries =
        (0 + ... + (std::remove_cvref_t<Buffers>::in_result ? 1 : 0));
    if constexpr (num_entries == 0) {
        return; // void
    } else {
        // Filter the in_result buffers into a tuple of entries, preserving
        // order. tuple_cat with empty tuples for the filtered-out ones.
        auto entries = std::tuple_cat([&] {
            if constexpr (std::remove_cvref_t<Buffers>::in_result) {
                return std::make_tuple(make_result_entry(std::move(buffers)));
            } else {
                return std::tuple<>{};
            }
        }()...);
        if constexpr (num_entries == 1) {
            return std::move(std::get<0>(entries).value);
        } else {
            return std::apply(
                [](auto&&... entry) {
                    return MPIResult<std::remove_cvref_t<decltype(entry)>...>(
                        std::move(entry)...);
                },
                std::move(entries));
        }
    }
}

} // namespace internal
} // namespace kamping

/// @name Structured-bindings support for MPIResult
/// @{
template <typename... Entries>
struct std::tuple_size<kamping::MPIResult<Entries...>>
    : std::integral_constant<std::size_t, sizeof...(Entries)> {};

template <std::size_t Index, typename... Entries>
struct std::tuple_element<Index, kamping::MPIResult<Entries...>> {
    using type = typename std::tuple_element_t<
        Index, std::tuple<Entries...>>::value_type;
};
/// @}
