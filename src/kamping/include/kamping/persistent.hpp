/// @file persistent.hpp
/// @brief Reusable plan objects over xmpi's persistent collectives.
///
/// A one-shot wrapper (comm.bcast(...)) runs the full call plan — parameter
/// selection, count inference, buffer sizing — on *every* call. A plan
/// object runs that resolution exactly once, at construction, and binds the
/// result into an inactive persistent request (XMPI_Bcast_init /
/// XMPI_Allreduce_init). Each start() then replays the wired operation with
/// no per-call resolution, no count prologue and no allocation: the
/// per-iteration cost is one XMPI_Start plus completion.
///
///     auto plan = comm.bcast_plan(send_recv_buf(std::move(v)), recv_count(n));
///     for (int i = 0; i < iterations; ++i) {
///         produce(plan.data(), plan.size()); // root fills the bound buffer
///         plan.start();
///         plan.wait();
///     }
///     auto v2 = plan.extract(); // buffer handed back at end of life
///
/// The buffer moves *into* the plan so its address stays stable for the
/// request's whole lifetime (same ownership model as NonBlockingResult).
/// Plans are neither copyable nor movable for the same reason; factories
/// hand them back as prvalues (guaranteed elision), so
/// `auto plan = comm.bcast_plan(...)` works without ever relocating the
/// bound buffer.
///
/// Tracing: instead of one span per call, a plan emits one *summary* span at
/// destruction with `restarts` = completed rounds, so amortized per-restart
/// cost is span.duration_s / span.restarts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "kamping/collectives_reduce.hpp" // get_op_parameter
#include "kamping/pipeline.hpp"
#include "xmpi/api.hpp"

namespace kamping::internal {

/// @brief Lifecycle shared by all persistent plans: owns the buffer and the
/// persistent request, counts restarts, and emits the summary span. Derived
/// plan constructors run their resolution and then call init() with the
/// result of the XMPI_*_init call.
template <OpDescriptor const& Op, typename Buffer, typename TraceSink = tracing::DefaultSink>
class PersistentPlan {
public:
    using value_type = buffer_value_t<Buffer>;

    PersistentPlan(PersistentPlan const&) = delete;
    PersistentPlan& operator=(PersistentPlan const&) = delete;
    // Not movable either: the persistent request holds the buffer's address.
    PersistentPlan(PersistentPlan&&) = delete;
    PersistentPlan& operator=(PersistentPlan&&) = delete;

    ~PersistentPlan() {
        if (request_ != XMPI_REQUEST_NULL) {
            // An active round is completed (or cancelled) by the free; the
            // bound buffer outlives the request either way.
            XMPI_Request_free(&request_);
        }
        if (tracing_) {
            xmpi::profile::Span span;
            span.op = Op.name;
            span.algorithm = algorithm_;
            span.start_s = start_s_;
            span.duration_s = active_s_;
            span.restarts = restarts_;
            span.bytes_in = bytes_per_round_ * restarts_;
            try {
                TraceSink::record(span);
            } catch (...) {
                // Recording must never throw out of a destructor.
            }
        }
    }

    /// @brief Activates the bound operation. XMPI_ERR_REQUEST (already
    /// active) and transport failures surface as exceptions stamped
    /// "<op>/start".
    void start() {
        if (tracing_) {
            round_start_s_ = XMPI_Wtime();
        }
        if (int const code = XMPI_Start(&request_); code != XMPI_SUCCESS) {
            throw_op_error(code, "XMPI_Start", Op.name, "start");
        }
    }

    /// @brief Blocks until the started round completes; the request returns
    /// to inactive and may be start()ed again.
    void wait() {
        // XMPI_Wait returns the status error as its result code, so no
        // status object is needed — keeps the round on the same footing as
        // a raw XMPI_Wait(…, XMPI_STATUS_IGNORE) loop.
        if (int const code = XMPI_Wait(&request_, XMPI_STATUS_IGNORE); code != XMPI_SUCCESS) {
            throw_op_error(code, "XMPI_Wait", Op.name, "wait");
        }
        note_round_done();
    }

    /// @brief Non-blocking completion check; true iff the round finished
    /// (also true when no round is active — matching XMPI_Test on an
    /// inactive persistent request).
    bool test() {
        int flag = 0;
        if (int const code = XMPI_Test(&request_, &flag, XMPI_STATUS_IGNORE);
            code != XMPI_SUCCESS) {
            throw_op_error(code, "XMPI_Test", Op.name, "test");
        }
        if (flag != 0) {
            note_round_done();
        }
        return flag != 0;
    }

    /// @name Access to the bound buffer (stable for the plan's lifetime)
    /// @{
    [[nodiscard]] value_type* data() { return buffer_.data(); }
    [[nodiscard]] value_type const* data() const { return buffer_.data(); }
    [[nodiscard]] std::size_t size() const { return buffer_.size(); }
    /// @}

    /// @brief Completed rounds so far (the summary span's `restarts`).
    [[nodiscard]] std::uint64_t restarts() const { return restarts_; }

    /// @brief Destroys the request and hands the bound storage back to the
    /// caller; the plan is spent afterwards (start() would throw).
    auto extract() {
        if (request_ != XMPI_REQUEST_NULL) {
            XMPI_Request_free(&request_);
        }
        return std::move(buffer_).extract();
    }

protected:
    PersistentPlan(XMPI_Comm comm, Buffer&& buffer)
        : comm_(comm), buffer_(std::move(buffer)), tracing_(TraceSink::active()) {
        if (tracing_) {
            start_s_ = XMPI_Wtime();
        }
    }

    /// @brief Converts a failed XMPI_*_init into an exception stamped
    /// "<op>/init". Called once, at the end of the derived constructor.
    void init(char const* xmpi_function, int code) {
        if (code != XMPI_SUCCESS) {
            throw_op_error(code, xmpi_function, Op.name, "init");
        }
    }

    void note_round_bytes(std::uint64_t bytes) {
        if (tracing_) {
            bytes_per_round_ = bytes;
        }
    }

    XMPI_Comm comm_;
    XMPI_Request request_ = XMPI_REQUEST_NULL;

private:
    void note_round_done() {
        ++restarts_;
        if (tracing_) {
            active_s_ += XMPI_Wtime() - round_start_s_;
            // The xmpi dispatcher notes the algorithm each round ran (the
            // plan captured it at init, so it is the same every round).
            // Taking it both stamps the summary span and drains the
            // thread-local slot, which would otherwise bleed into the next
            // one-shot operation's span. P2P plans note nothing and keep "".
            if (char const* algorithm = xmpi::profile::take_algorithm(); algorithm[0] != '\0') {
                algorithm_ = algorithm;
            }
        }
    }

    Buffer buffer_;
    bool tracing_;
    char const* algorithm_ = ""; ///< noted by the first completed round
    double start_s_ = 0.0;
    double round_start_s_ = 0.0;
    double active_s_ = 0.0;
    std::uint64_t restarts_ = 0;
    std::uint64_t bytes_per_round_ = 0;
};

/// @brief Persistent broadcast: count inference (the one-shot wrapper's
/// extra count bcast) happens once, in the factory, before init.
template <typename Buffer>
class BcastPlan final : public PersistentPlan<plan_ops::bcast_plan, Buffer> {
    using Base = PersistentPlan<plan_ops::bcast_plan, Buffer>;

public:
    BcastPlan(XMPI_Comm comm, Buffer&& buffer, int count, int root) :
        Base(comm, std::move(buffer)) {
        using T = typename Base::value_type;
        this->note_round_bytes(static_cast<std::uint64_t>(count) * sizeof(T));
        this->init(
            "XMPI_Bcast_init",
            XMPI_Bcast_init(
                this->data(), count, mpi_datatype<T>(), root, comm, &this->request_));
    }
};

/// @brief Persistent in-place allreduce. The op activation is resolved once
/// and stored in the plan, so restarts reuse the same handle.
template <typename Buffer, typename Operation>
class AllreducePlan final : public PersistentPlan<plan_ops::allreduce_plan, Buffer> {
    using Base = PersistentPlan<plan_ops::allreduce_plan, Buffer>;
    using T = typename Base::value_type;
    using Activation = decltype(std::declval<Operation&>().template activate<T>());

public:
    AllreducePlan(XMPI_Comm comm, Buffer&& buffer, Operation operation) :
        Base(comm, std::move(buffer)), activation_(operation.template activate<T>()) {
        this->note_round_bytes(this->size() * sizeof(T));
        this->init(
            "XMPI_Allreduce_init",
            XMPI_Allreduce_init(
                XMPI_IN_PLACE, this->data(), static_cast<int>(this->size()),
                mpi_datatype<T>(), activation_.handle(), comm, &this->request_));
    }

private:
    Activation activation_;
};

/// @brief comm.bcast_plan(send_recv_buf(data), [root], [recv_count]): all
/// resolution — root lookup, count inference (one small bcast when
/// recv_count is absent), non-root resize — runs here, exactly once.
template <typename... Args>
auto bcast_plan_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::send_recv_buf, Args...>), "bcast_plan",
        "send_recv_buf");
    KAMPING_CHECK_PARAMETERS(
        Args, "bcast_plan", ParameterType::send_recv_buf, ParameterType::root,
        ParameterType::recv_count);
    int rank = -1;
    XMPI_Comm_rank(comm, &rank);
    int const root_rank = get_root(comm, args...);

    auto buffer = std::move(select_parameter<ParameterType::send_recv_buf>(args...));
    using Buffer = std::remove_cvref_t<decltype(buffer)>;

    std::uint64_t count;
    if constexpr (has_parameter_v<ParameterType::recv_count, Args...>) {
        count = static_cast<std::uint64_t>(
            select_parameter<ParameterType::recv_count>(args...).value);
    } else {
        // The count prologue the plan amortizes away: paid once at
        // construction instead of on every broadcast.
        count = buffer.size();
        if (int const code =
                XMPI_Bcast(&count, sizeof(count), XMPI_BYTE, root_rank, comm);
            code != XMPI_SUCCESS) {
            throw_op_error(code, "XMPI_Bcast(count)", "bcast_plan", "infer_counts");
        }
    }
    if (rank != root_rank) {
        buffer.resize_to(static_cast<std::size_t>(count));
    }
    return BcastPlan<Buffer>(comm, std::move(buffer), static_cast<int>(count), root_rank);
}

/// @brief comm.allreduce_plan(send_recv_buf(data), op(...)): in-place
/// persistent allreduce; the operation must be stateless (its activation
/// outlives the initiating call, as with iallreduce).
template <typename... Args>
auto allreduce_plan_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::send_recv_buf, Args...>), "allreduce_plan",
        "send_recv_buf");
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::op, Args...>), "allreduce_plan", "op");
    auto buffer = std::move(select_parameter<ParameterType::send_recv_buf>(args...));
    using Buffer = std::remove_cvref_t<decltype(buffer)>;
    auto&& operation = get_op_parameter(args...);
    using Operation = std::remove_cvref_t<decltype(operation)>;
    static_assert(
        Operation::is_stateless,
        "allreduce_plan supports builtin operations (std::plus<>, ops::max, raw MPI op "
        "handles, ...) only — a user lambda's state cannot outlive the initiating call");
    return AllreducePlan<Buffer, Operation>(comm, std::move(buffer), operation);
}

} // namespace kamping::internal
