/// @file mpi_datatype.hpp
/// @brief KaMPIng's flexible type system (paper, Section III-D).
///
/// C++ types are mapped to MPI datatypes at compile time:
///   1. a user specialization of kamping::mpi_type_traits<T> wins;
///   2. builtin arithmetic types map to the corresponding MPI constants;
///   3. other trivially copyable types map to a contiguous-bytes type
///      (usually faster than a gap-skipping struct type, Section III-D4);
///   4. kamping::struct_type<T> can be used as a trait base to build a
///      proper MPI struct type from reflection (PFR-equivalent), which
///      communicates only the significant bytes.
///
/// Non-builtin types are committed on first use and registered for cleanup
/// (construct-on-first-use idiom).
#pragma once

#include <array>
#include <cstddef>
#include <type_traits>

#include "kaserial/reflect.hpp"
#include "xmpi/api.hpp"

namespace kamping {

/// @brief Customization point: specialize to provide an explicit MPI type
/// definition for T (paper, Fig. 4). A specialization must provide
/// `static XMPI_Datatype data_type()` and may set
/// `static constexpr bool has_to_be_committed` (default false) if the
/// returned type is freshly constructed and still needs committing.
/// The primary template is empty: an empty trait means "use the default
/// deduction rules".
template <typename T>
struct mpi_type_traits {};

namespace internal {

template <typename T>
concept has_custom_type_trait = requires {
    { mpi_type_traits<T>::data_type() } -> std::convertible_to<XMPI_Datatype>;
};

template <typename T>
concept has_to_be_committed_trait =
    has_custom_type_trait<T> && requires { mpi_type_traits<T>::has_to_be_committed; };

/// @brief Builtin mapping from C++ arithmetic types to predefined handles.
template <typename T>
constexpr bool is_builtin_mpi_type =
    std::is_same_v<T, char> || std::is_same_v<T, signed char>
    || std::is_same_v<T, unsigned char> || std::is_same_v<T, short>
    || std::is_same_v<T, unsigned short> || std::is_same_v<T, int>
    || std::is_same_v<T, unsigned int> || std::is_same_v<T, long>
    || std::is_same_v<T, unsigned long> || std::is_same_v<T, long long>
    || std::is_same_v<T, unsigned long long> || std::is_same_v<T, float>
    || std::is_same_v<T, double> || std::is_same_v<T, long double>
    || std::is_same_v<T, bool> || std::is_same_v<T, std::byte>;

template <typename T>
XMPI_Datatype builtin_mpi_type() {
    if constexpr (std::is_same_v<T, char>) {
        return XMPI_CHAR;
    } else if constexpr (std::is_same_v<T, signed char>) {
        return XMPI_SIGNED_CHAR;
    } else if constexpr (std::is_same_v<T, unsigned char>) {
        return XMPI_UNSIGNED_CHAR;
    } else if constexpr (std::is_same_v<T, short>) {
        return XMPI_SHORT;
    } else if constexpr (std::is_same_v<T, unsigned short>) {
        return XMPI_UNSIGNED_SHORT;
    } else if constexpr (std::is_same_v<T, int>) {
        return XMPI_INT;
    } else if constexpr (std::is_same_v<T, unsigned int>) {
        return XMPI_UNSIGNED;
    } else if constexpr (std::is_same_v<T, long>) {
        return XMPI_LONG;
    } else if constexpr (std::is_same_v<T, unsigned long>) {
        return XMPI_UNSIGNED_LONG;
    } else if constexpr (std::is_same_v<T, long long>) {
        return XMPI_LONG_LONG;
    } else if constexpr (std::is_same_v<T, unsigned long long>) {
        return XMPI_UNSIGNED_LONG_LONG;
    } else if constexpr (std::is_same_v<T, float>) {
        return XMPI_FLOAT;
    } else if constexpr (std::is_same_v<T, double>) {
        return XMPI_DOUBLE;
    } else if constexpr (std::is_same_v<T, long double>) {
        return XMPI_LONG_DOUBLE;
    } else if constexpr (std::is_same_v<T, bool>) {
        return XMPI_CXX_BOOL;
    } else {
        return XMPI_BYTE;
    }
}

} // namespace internal

/// @brief Trait base that builds a true MPI struct type for a reflectable
/// aggregate T: one typemap entry per member, alignment gaps excluded from
/// the communicated data (paper, Fig. 4: `struct_type<MyType>`).
template <typename T>
struct struct_type {
    static constexpr bool has_to_be_committed = true;

    static XMPI_Datatype data_type() {
        static_assert(
            kaserial::reflect::reflectable<T>,
            "kamping::struct_type<T> requires T to be a plain aggregate "
            "(no base classes; use std::array instead of C arrays)");
        T probe{};
        auto const offsets = kaserial::reflect::member_offsets(probe);
        constexpr std::size_t n = kaserial::reflect::arity<T>;
        std::array<int, n> blocklengths;
        blocklengths.fill(1);
        std::array<XMPI_Datatype, n> types;
        kaserial::reflect::visit_members(probe, [&](auto&... members) {
            std::size_t index = 0;
            ((types[index++] = member_type(members)), ...);
        });
        std::array<XMPI_Aint, n> displacements;
        for (std::size_t i = 0; i < n; ++i) {
            displacements[i] = offsets[i];
        }
        XMPI_Datatype struct_datatype = XMPI_DATATYPE_NULL;
        XMPI_Type_create_struct(
            static_cast<int>(n), blocklengths.data(), displacements.data(), types.data(),
            &struct_datatype);
        // Resize so arrays of T stride correctly.
        XMPI_Datatype resized = XMPI_DATATYPE_NULL;
        XMPI_Type_create_resized(
            struct_datatype, 0, static_cast<XMPI_Aint>(sizeof(T)), &resized);
        XMPI_Type_free(&struct_datatype);
        return resized;
    }

private:
    template <typename Member>
    static XMPI_Datatype member_type(Member&); // forward declared; defined below
};

/// @brief Returns the (committed) MPI datatype handle for T. The handle for
/// a given T is constructed exactly once per process (construct-on-first-use)
/// and reused by every call — no per-call type lookup cost beyond a static
/// initialization guard.
template <typename T>
XMPI_Datatype mpi_datatype() {
    using Decayed = std::remove_cvref_t<T>;
    if constexpr (internal::has_custom_type_trait<Decayed>) {
        static XMPI_Datatype const type = [] {
            XMPI_Datatype datatype = mpi_type_traits<Decayed>::data_type();
            if constexpr (internal::has_to_be_committed_trait<Decayed>) {
                if (mpi_type_traits<Decayed>::has_to_be_committed) {
                    XMPI_Type_commit(&datatype);
                }
            }
            return datatype;
        }();
        return type;
    } else if constexpr (internal::is_builtin_mpi_type<Decayed>) {
        return internal::builtin_mpi_type<Decayed>();
    } else {
        static_assert(
            std::is_trivially_copyable_v<Decayed>,
            "KaMPIng cannot deduce an MPI datatype for this type: it is not a builtin type and "
            "not trivially copyable. Provide a kamping::mpi_type_traits specialization, or use "
            "serialization (kamping::as_serialized) for heap-backed types.");
        // Default for trivially copyable types: a contiguous run of bytes,
        // including alignment gaps — see Section III-D4 for why this usually
        // beats a gap-skipping struct type.
        static XMPI_Datatype const type = [] {
            XMPI_Datatype datatype = xmpi::Datatype::contiguous_bytes(sizeof(Decayed));
            XMPI_Type_commit(&datatype);
            return datatype;
        }();
        return type;
    }
}

template <typename T>
template <typename Member>
XMPI_Datatype struct_type<T>::member_type(Member&) {
    return mpi_datatype<Member>();
}

/// @brief True iff KaMPIng can deduce an MPI datatype for T without user help.
template <typename T>
concept has_static_type = internal::has_custom_type_trait<std::remove_cvref_t<T>>
                          || internal::is_builtin_mpi_type<std::remove_cvref_t<T>>
                          || std::is_trivially_copyable_v<std::remove_cvref_t<T>>;

} // namespace kamping
