/// @file parameter_type.hpp
/// @brief The vocabulary of KaMPIng's named-parameter system.
///
/// Every argument to a KaMPIng communication call is a lightweight parameter
/// object tagged with a ParameterType. The wrappers check for the presence of
/// each parameter at compile time and instantiate default-computation code
/// only for the missing ones (paper, Section III-A/B).
#pragma once

#include <cstdint>

namespace kamping {

/// @brief Identifies what role a parameter object plays in a call.
enum class ParameterType : std::uint8_t {
    send_buf,      ///< data to send
    recv_buf,      ///< storage for received data
    send_recv_buf, ///< in-place combined buffer (simplified MPI_IN_PLACE)
    send_counts,   ///< per-destination send counts (v-collectives)
    recv_counts,   ///< per-source receive counts (v-collectives)
    send_displs,   ///< per-destination send displacements
    recv_displs,   ///< per-source receive displacements
    send_count,    ///< single send count (p2p / regular collectives)
    recv_count,    ///< single receive count
    root,          ///< root rank of a rooted collective
    destination,   ///< destination rank (p2p)
    source,        ///< source rank (p2p)
    tag,           ///< message tag (p2p)
    op,            ///< reduction operation
    send_mode,     ///< send mode (standard/synchronous)
    values_on_rank_0, ///< seed value for exscan on rank 0
    status,        ///< receive status out-parameter
    target_rank,   ///< target rank of a one-sided (RMA) operation
    target_disp,   ///< displacement into the target's window (RMA)
    compare_buf,   ///< expected value of an RMA compare-and-swap
};

/// @brief How a parameter's data flows between caller and library.
enum class BufferKind : std::uint8_t {
    in,     ///< caller provides the data
    out,    ///< the library computes / receives the data and returns it
    in_out, ///< caller provides data that the call also modifies (in place)
};

/// @brief Whether a parameter object owns its container or references the
/// caller's.
enum class BufferOwnership : std::uint8_t {
    owning,      ///< moved-in or library-allocated; returned via the result
    referencing, ///< caller-owned; written in place, not part of the result
};

/// @brief Resize policies for (out-)buffers (paper, Section III-C).
enum class BufferResizePolicy : std::uint8_t {
    no_resize,     ///< never resize; caller guarantees sufficient capacity
    grow_only,     ///< resize only if the container is too small
    resize_to_fit, ///< always resize to exactly the required size
};

/// @name Resize policy tokens for use as template arguments, mirroring the
/// paper's spelling: recv_buf<resize_to_fit>(...).
/// @{
inline constexpr BufferResizePolicy no_resize = BufferResizePolicy::no_resize;
inline constexpr BufferResizePolicy grow_only = BufferResizePolicy::grow_only;
inline constexpr BufferResizePolicy resize_to_fit = BufferResizePolicy::resize_to_fit;
/// @}

} // namespace kamping
