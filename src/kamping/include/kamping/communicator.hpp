/// @file communicator.hpp
/// @brief The Communicator: KaMPIng's central class, wrapping an MPI
/// communicator handle with RAII semantics and all communication wrappers.
///
/// The class is parameterized on a list of CRTP plugins (paper, Section
/// III-F): plugins add member functions (or override behaviour by shadowing)
/// without touching the core, keeping it small while enabling the
/// general-purpose building blocks of Section V as library extensions:
///
///   using MyComm = kamping::BasicCommunicator<
///       kamping::plugin::SparseAlltoall, kamping::plugin::GridCommunicator>;
#pragma once

#include <memory>
#include <utility>

#include "kamping/collectives_alltoall.hpp"
#include "kamping/collectives_bcast.hpp"
#include "kamping/collectives_gather.hpp"
#include "kamping/collectives_helpers.hpp"
#include "kamping/collectives_reduce.hpp"
#include "kamping/error.hpp"
#include "kamping/nonblocking.hpp"
#include "kamping/p2p.hpp"
#include "kamping/persistent.hpp"
#include "kamping/pipeline.hpp"
#include "kamping/rma.hpp"
#include "xmpi/api.hpp"

namespace kamping {

namespace internal {
/// @brief Sentinel for "recv element type not specified".
struct unspecified_recv_type {
    using value_type = unspecified_recv_type;
};
} // namespace internal

/// @brief The communicator, with communication calls as member functions.
/// @tparam Plugins CRTP mixins adding functionality (paper, Section III-F).
template <template <typename> class... Plugins>
class BasicCommunicator : public Plugins<BasicCommunicator<Plugins...>>... {
public:
    /// @brief Wraps an existing (native) communicator handle. KaMPIng is
    /// fully interoperable with native handles, enabling gradual migration
    /// of existing code (paper, Section III-F).
    explicit BasicCommunicator(XMPI_Comm comm, bool owning = false)
        : comm_(comm),
          owning_(owning) {
        XMPI_Comm_rank(comm_, &rank_);
        XMPI_Comm_size(comm_, &size_);
    }

    /// @brief Defaults to the world communicator.
    BasicCommunicator() : BasicCommunicator(XMPI_COMM_WORLD) {}

    ~BasicCommunicator() {
        if (owning_ && comm_ != XMPI_COMM_NULL) {
            XMPI_Comm_free(&comm_);
        }
    }

    BasicCommunicator(BasicCommunicator&& other) noexcept
        : comm_(std::exchange(other.comm_, XMPI_COMM_NULL)),
          owning_(std::exchange(other.owning_, false)),
          rank_(other.rank_),
          size_(other.size_) {}
    BasicCommunicator& operator=(BasicCommunicator&& other) noexcept {
        if (this != &other) {
            if (owning_ && comm_ != XMPI_COMM_NULL) {
                XMPI_Comm_free(&comm_);
            }
            comm_ = std::exchange(other.comm_, XMPI_COMM_NULL);
            owning_ = std::exchange(other.owning_, false);
            rank_ = other.rank_;
            size_ = other.size_;
        }
        return *this;
    }
    BasicCommunicator(BasicCommunicator const&) = delete;
    BasicCommunicator& operator=(BasicCommunicator const&) = delete;

    /// @name Introspection
    /// @{
    [[nodiscard]] int rank() const { return rank_; }
    [[nodiscard]] std::size_t size() const { return static_cast<std::size_t>(size_); }
    [[nodiscard]] int size_signed() const { return size_; }
    [[nodiscard]] bool is_root(int root = 0) const { return rank_ == root; }
    /// @brief The underlying native handle (interoperability escape hatch).
    [[nodiscard]] XMPI_Comm mpi_communicator() const { return comm_; }
    /// @}

    /// @name Communicator management
    /// @{
    [[nodiscard]] BasicCommunicator duplicate() const {
        internal::CollectivePlan<internal::plan_ops::comm_dup> plan(comm_);
        XMPI_Comm duplicated = XMPI_COMM_NULL;
        plan.dispatch("XMPI_Comm_dup", [&] { return XMPI_Comm_dup(comm_, &duplicated); });
        return BasicCommunicator(duplicated, /*owning=*/true);
    }
    [[nodiscard]] BasicCommunicator split(int color, int key = 0) const {
        internal::CollectivePlan<internal::plan_ops::comm_split> plan(comm_);
        XMPI_Comm part = XMPI_COMM_NULL;
        plan.dispatch(
            "XMPI_Comm_split", [&] { return XMPI_Comm_split(comm_, color, key, &part); });
        return BasicCommunicator(part, /*owning=*/true);
    }
    /// @}

    /// @name One-sided communication (RMA)
    /// @{
    /// @brief Collective: exposes the caller's contiguous storage as this
    /// rank's region of a new window. The storage must outlive the window;
    /// displacements are in elements (disp_unit = sizeof(T)).
    template <typename Container>
    [[nodiscard]] auto win_create(Container& storage) const {
        static_assert(
            internal::contiguous_container<Container>,
            "win_create requires a contiguous container (std::vector, std::array, ...)");
        using T = typename Container::value_type;
        internal::CollectivePlan<internal::plan_ops::win_create> plan(comm_);
        XMPI_Win win = XMPI_WIN_NULL;
        plan.dispatch("XMPI_Win_create", [&] {
            return XMPI_Win_create(
                storage.data(), static_cast<XMPI_Aint>(storage.size() * sizeof(T)),
                static_cast<int>(sizeof(T)), comm_, &win);
        });
        return Window<T>(win, comm_);
    }
    /// @brief Collective: creates a window of @c count zero-initialized
    /// elements per rank whose regions are allocated and *owned by the
    /// window itself* (MPI_Win_allocate): the memory lives until the last
    /// member drops its window reference, never with a caller scope. Use
    /// this instead of win_create whenever ranks can fail mid-epoch — a
    /// failed rank's stack unwind then cannot dangle a peer's in-flight
    /// atomic. Displacements are in elements (disp_unit = sizeof(T)).
    template <typename T>
    [[nodiscard]] auto win_allocate(std::size_t count) const {
        internal::CollectivePlan<internal::plan_ops::win_allocate> plan(comm_);
        XMPI_Win win = XMPI_WIN_NULL;
        void* base = nullptr;
        plan.dispatch("XMPI_Win_allocate", [&] {
            return XMPI_Win_allocate(
                static_cast<XMPI_Aint>(count * sizeof(T)), static_cast<int>(sizeof(T)), comm_,
                &base, &win);
        });
        return Window<T>(win, comm_);
    }
    /// @}

    /// @name Collectives
    /// @{
    void barrier() const {
        internal::CollectivePlan<internal::plan_ops::barrier> plan(comm_);
        plan.dispatch("XMPI_Barrier", [&] { return XMPI_Barrier(comm_); });
    }

    template <typename... Args>
    auto bcast(Args&&... args) const {
        return internal::bcast_impl(comm_, std::forward<Args>(args)...);
    }

    /// @brief Broadcast of a single value; returns the value on every rank.
    template <typename T>
    T bcast_single(T value, int root_rank = 0) const {
        internal::CollectivePlan<internal::plan_ops::bcast_single> plan(comm_);
        plan.note_bytes_in(sizeof(T));
        plan.dispatch("XMPI_Bcast", [&] {
            return XMPI_Bcast(&value, 1, mpi_datatype<T>(), root_rank, comm_);
        });
        return value;
    }

    template <typename... Args>
    auto gather(Args&&... args) const {
        return internal::gather_impl(comm_, std::forward<Args>(args)...);
    }
    template <typename... Args>
    auto gatherv(Args&&... args) const {
        return internal::gatherv_impl(comm_, std::forward<Args>(args)...);
    }
    template <typename... Args>
    auto allgather(Args&&... args) const {
        return internal::allgather_impl(comm_, std::forward<Args>(args)...);
    }
    template <typename... Args>
    auto allgatherv(Args&&... args) const {
        return internal::allgatherv_impl(comm_, std::forward<Args>(args)...);
    }
    template <typename... Args>
    auto scatter(Args&&... args) const {
        return internal::scatter_impl(comm_, std::forward<Args>(args)...);
    }
    template <typename... Args>
    auto scatterv(Args&&... args) const {
        return internal::scatterv_impl(comm_, std::forward<Args>(args)...);
    }
    template <typename... Args>
    auto alltoall(Args&&... args) const {
        return internal::alltoall_impl(comm_, std::forward<Args>(args)...);
    }
    template <typename... Args>
    auto alltoallv(Args&&... args) const {
        return internal::alltoallv_impl(comm_, std::forward<Args>(args)...);
    }
    template <typename... Args>
    auto reduce(Args&&... args) const {
        return internal::reduce_impl(comm_, std::forward<Args>(args)...);
    }
    template <typename... Args>
    auto allreduce(Args&&... args) const {
        return internal::allreduce_impl(comm_, std::forward<Args>(args)...);
    }
    template <typename... Args>
    auto scan(Args&&... args) const {
        return internal::scan_impl(comm_, std::forward<Args>(args)...);
    }
    template <typename... Args>
    auto exscan(Args&&... args) const {
        return internal::exscan_impl(comm_, std::forward<Args>(args)...);
    }

    /// @brief Allreduce of a single element, returned by value — e.g. the
    /// BFS termination check `comm.allreduce_single(send_buf(frontier.empty()),
    /// op(std::logical_and<>{}))` (paper, Fig. 9).
    template <typename... Args>
    auto allreduce_single(Args&&... args) const {
        auto result = allreduce(std::forward<Args>(args)...);
        THROWING_KASSERT(
            result.size() == 1, "allreduce_single requires a single-element send buffer");
        return result.front();
    }
    /// @brief Exclusive prefix sum of a single element.
    template <typename... Args>
    auto exscan_single(Args&&... args) const {
        auto result = exscan(std::forward<Args>(args)...);
        return result.front();
    }
    /// @brief Inclusive prefix sum of a single element.
    template <typename... Args>
    auto scan_single(Args&&... args) const {
        auto result = scan(std::forward<Args>(args)...);
        return result.front();
    }
    /// @}

    /// @name Point-to-point
    /// @{
    template <typename... Args>
    void send(Args&&... args) const {
        internal::send_impl(comm_, std::forward<Args>(args)...);
    }
    template <typename... Args>
    void ssend(Args&&... args) const {
        internal::ssend_impl(comm_, std::forward<Args>(args)...);
    }
    /// @brief Blocking receive; T is the element type when no recv_buf is
    /// passed: comm.recv<int>(source(0)).
    template <typename T = internal::unspecified_recv_type, typename... Args>
    auto recv(Args&&... args) const {
        constexpr bool has_buf = internal::has_parameter_v<ParameterType::recv_buf, Args...>;
        static_assert(
            has_buf || !std::is_same_v<T, internal::unspecified_recv_type>,
            "recv cannot deduce the element type: pass recv_buf(...) or call recv<T>(...)");
        return internal::recv_impl<T>(comm_, std::forward<Args>(args)...);
    }
    /// @brief Receive of a single element, returned by value.
    template <typename T, typename... Args>
    T recv_single(Args&&... args) const {
        return internal::recv_impl<T>(comm_, recv_count(1), std::forward<Args>(args)...)
            .front();
    }
    template <typename... Args>
    auto probe(Args&&... args) const {
        return internal::probe_impl(comm_, std::forward<Args>(args)...);
    }
    template <typename... Args>
    auto iprobe(Args&&... args) const {
        return internal::iprobe_impl(comm_, std::forward<Args>(args)...);
    }
    /// @}

    /// @name Non-blocking collectives (extending the standard coverage the
    /// paper names as ongoing work). Same memory-safety model as isend/irecv:
    /// moved-in buffers live in the returned handle until completion.
    /// @{
    /// @brief comm.ibcast(send_recv_buf(data), [root]): the buffer must be
    /// sized identically on all ranks (no count prologue on the non-blocking
    /// path).
    template <typename... Args>
    auto ibcast(Args&&... args) const {
        KAMPING_PLAN_REQUIRE(
            (internal::has_parameter_v<ParameterType::send_recv_buf, Args...>), "ibcast",
            "send_recv_buf");
        internal::CollectivePlan<internal::plan_ops::ibcast, Args...> plan(comm_);
        auto buffer = std::move(
            internal::select_parameter<ParameterType::send_recv_buf>(args...));
        using Buffer = std::remove_cvref_t<decltype(buffer)>;
        using T = internal::buffer_value_t<Buffer>;
        plan.note_bytes_in(buffer.size() * sizeof(T));
        int const root_rank = internal::get_root(comm_, args...);
        XMPI_Comm const comm = comm_;
        return NonBlockingResult<Buffer>(
            [&](Buffer& stored) {
                XMPI_Request request = XMPI_REQUEST_NULL;
                plan.dispatch("XMPI_Ibcast", [&] {
                    return XMPI_Ibcast(
                        stored.data(), static_cast<int>(stored.size()), mpi_datatype<T>(),
                        root_rank, comm, &request);
                });
                return request;
            },
            std::move(buffer));
    }

    /// @brief comm.iallreduce(send_recv_buf(data), op(...)): in-place
    /// non-blocking allreduce; the data is returned on wait().
    template <typename... Args>
    auto iallreduce(Args&&... args) const {
        KAMPING_PLAN_REQUIRE(
            (internal::has_parameter_v<ParameterType::send_recv_buf, Args...>), "iallreduce",
            "send_recv_buf");
        internal::CollectivePlan<internal::plan_ops::iallreduce, Args...> plan(comm_);
        auto buffer = std::move(
            internal::select_parameter<ParameterType::send_recv_buf>(args...));
        using Buffer = std::remove_cvref_t<decltype(buffer)>;
        using T = internal::buffer_value_t<Buffer>;
        plan.note_bytes_in(buffer.size() * sizeof(T));
        auto&& operation = internal::get_op_parameter(args...);
        static_assert(
            std::remove_cvref_t<decltype(operation)>::is_stateless,
            "iallreduce supports builtin operations (std::plus<>, ops::max, raw MPI op "
            "handles, ...) only — a user lambda's state cannot outlive the initiating call");
        auto activation = operation.template activate<T>();
        XMPI_Comm const comm = comm_;
        auto handle = activation.handle();
        return NonBlockingResult<Buffer>(
            [&](Buffer& stored) {
                XMPI_Request request = XMPI_REQUEST_NULL;
                plan.dispatch("XMPI_Iallreduce", [&] {
                    return XMPI_Iallreduce(
                        XMPI_IN_PLACE, stored.data(), static_cast<int>(stored.size()),
                        mpi_datatype<T>(), handle, comm, &request);
                });
                return request;
            },
            std::move(buffer));
    }
    /// @}

    /// @name Persistent collectives: reusable plan objects. Resolution (root
    /// lookup, count inference, buffer sizing, op activation) runs exactly
    /// once at construction; each start()/wait() round replays the wired
    /// operation at raw XMPI_Start cost (see persistent.hpp).
    /// @{
    /// @brief comm.bcast_plan(send_recv_buf(std::move(v)), [root],
    /// [recv_count]) — the buffer moves into the returned plan; access it
    /// through plan.data()/size(), recover it with plan.extract().
    template <typename... Args>
    auto bcast_plan(Args&&... args) const {
        return internal::bcast_plan_impl(comm_, std::forward<Args>(args)...);
    }
    /// @brief comm.allreduce_plan(send_recv_buf(std::move(v)), op(...)) —
    /// in-place persistent allreduce over a stateless operation.
    template <typename... Args>
    auto allreduce_plan(Args&&... args) const {
        return internal::allreduce_plan_impl(comm_, std::forward<Args>(args)...);
    }
    /// @}

    /// @name Non-blocking point-to-point (paper, Section III-E)
    /// @{
    template <typename... Args>
    auto isend(Args&&... args) const {
        return internal::isend_impl(comm_, std::forward<Args>(args)...);
    }
    template <typename... Args>
    auto issend(Args&&... args) const {
        return internal::issend_impl(comm_, std::forward<Args>(args)...);
    }
    template <typename T = internal::unspecified_recv_type, typename... Args>
    auto irecv(Args&&... args) const {
        constexpr bool has_buf = internal::has_parameter_v<ParameterType::recv_buf, Args...>;
        static_assert(
            has_buf || !std::is_same_v<T, internal::unspecified_recv_type>,
            "irecv cannot deduce the element type: pass recv_buf(...) or call irecv<T>(...)");
        return internal::irecv_impl<T>(comm_, std::forward<Args>(args)...);
    }
    /// @}

private:
    XMPI_Comm comm_;
    bool owning_;
    int rank_ = -1;
    int size_ = 0;
};

/// @brief The default communicator type (no plugins).
using Communicator = BasicCommunicator<>;

} // namespace kamping
