/// @file named_parameters.hpp
/// @brief The named-parameter factory functions (paper, Section III-A/B).
///
/// Each factory creates a lightweight parameter object encoding its role,
/// data-flow direction, ownership, and resize policy at compile time:
///
///   comm.allgatherv(send_buf(v),
///                   recv_counts_out<resize_to_fit>(std::move(rc)),
///                   recv_displs_out());
///
/// In-parameters accept lvalues (referencing), rvalues (owning, moved in),
/// scalars, and initializer lists. Out-parameters come in three flavours:
/// `_out()` (library allocates, returned by value), `_out(std::move(c))`
/// (caller's storage reused, returned by value), and `name(c)` with an
/// lvalue (written in place, not part of the result).
#pragma once

#include <initializer_list>
#include <type_traits>
#include <utility>
#include <vector>

#include "kamping/data_buffer.hpp"
#include "kamping/op.hpp" // IWYU pragma: export — op() is a named parameter
#include "kamping/parameter_type.hpp"
#include "kamping/serialization.hpp"

namespace kamping {

namespace internal {

/// @brief Owning single-element container used when a scalar is passed where
/// a buffer is expected (e.g. send_buf(42)).
template <typename T>
struct SingleElement {
    using value_type = T;
    T element;

    [[nodiscard]] T* data() { return &element; }
    [[nodiscard]] T const* data() const { return &element; }
    [[nodiscard]] std::size_t size() const { return 1; }
};

template <
    ParameterType Type, BufferResizePolicy Policy = BufferResizePolicy::no_resize,
    typename Container>
auto make_in_buffer(Container&& container) {
    using Decayed = std::remove_cvref_t<Container>;
    if constexpr (contiguous_container<Decayed>) {
        if constexpr (std::is_lvalue_reference_v<Container>) {
            return DataBuffer<
                Decayed, Type, BufferKind::in, BufferOwnership::referencing, Policy, false>(
                container);
        } else {
            return DataBuffer<
                Decayed, Type, BufferKind::in, BufferOwnership::owning, Policy, false>(
                std::move(container));
        }
    } else {
        static_assert(
            !is_vector_bool<Decayed>,
            "std::vector<bool> is a bitset without contiguous bool storage and cannot be used "
            "as a message buffer — use std::vector<char> or a plain bool array instead");
        // Scalar: wrap into an owning single-element container.
        return DataBuffer<
            SingleElement<Decayed>, Type, BufferKind::in, BufferOwnership::owning, Policy,
            false>(SingleElement<Decayed>{std::forward<Container>(container)});
    }
}

template <ParameterType Type, BufferResizePolicy Policy, typename Container>
auto make_out_buffer(Container&& container) {
    using Decayed = std::remove_cvref_t<Container>;
    static_assert(
        contiguous_container<Decayed>,
        "out-parameters require a contiguous container (std::vector, std::span, ...)");
    if constexpr (std::is_lvalue_reference_v<Container>) {
        // Written in place; not part of the result object.
        return DataBuffer<
            Decayed, Type, BufferKind::out, BufferOwnership::referencing, Policy, false>(
            container);
    } else {
        // Storage reused, returned by value with the result.
        return DataBuffer<Decayed, Type, BufferKind::out, BufferOwnership::owning, Policy, true>(
            std::move(container));
    }
}

/// @brief Default out-buffer allocated by the library (always resized).
template <ParameterType Type, typename Container>
auto make_default_out_buffer() {
    return DataBuffer<
        Container, Type, BufferKind::out, BufferOwnership::owning,
        BufferResizePolicy::resize_to_fit, true>(Container{});
}

} // namespace internal

// ---------------------------------------------------------------------------
// Send buffers
// ---------------------------------------------------------------------------

/// @brief Named parameter: the data to send. Accepts containers (lvalue =
/// referenced, rvalue = moved in and kept alive for the operation), scalars,
/// initializer lists, and as_serialized() wrappers.
template <typename Data>
auto send_buf(Data&& data) {
    return internal::make_in_buffer<ParameterType::send_buf>(std::forward<Data>(data));
}

template <typename T>
auto send_buf(std::initializer_list<T> values) {
    return internal::make_in_buffer<ParameterType::send_buf>(std::vector<T>(values));
}

/// @brief send_buf for serialized objects (paper, Fig. 5): the object is
/// packed into a byte buffer owned by the parameter.
template <typename T, typename OutArchive, typename InArchive>
auto send_buf(SerializedView<T, OutArchive, InArchive> view) {
    return internal::make_in_buffer<ParameterType::send_buf>(
        internal::serialize_object<OutArchive>(*view.object));
}

/// @brief Named parameter: a send buffer whose ownership is transferred into
/// the call and *returned to the caller* with the result — the memory-safety
/// idiom for non-blocking sends (paper, Fig. 6).
template <typename Container>
auto send_buf_out(Container&& container) {
    static_assert(
        !std::is_lvalue_reference_v<Container>,
        "send_buf_out transfers ownership: pass the container with std::move()");
    using Decayed = std::remove_cvref_t<Container>;
    return DataBuffer<
        Decayed, ParameterType::send_buf, BufferKind::in, BufferOwnership::owning,
        BufferResizePolicy::no_resize, /*InResult=*/true>(std::move(container));
}

/// @brief Named parameter: combined send+receive buffer — KaMPIng's
/// simplified MPI_IN_PLACE (paper, Section III-G). Lvalue: modified in
/// place. Rvalue: moved through the call and returned with the result.
template <typename Data>
auto send_recv_buf(Data&& data) {
    using Decayed = std::remove_cvref_t<Data>;
    static_assert(
        internal::contiguous_container<Decayed>,
        "send_recv_buf requires a contiguous container");
    if constexpr (std::is_lvalue_reference_v<Data>) {
        return DataBuffer<
            Decayed, ParameterType::send_recv_buf, BufferKind::in_out,
            BufferOwnership::referencing, BufferResizePolicy::resize_to_fit, false>(data);
    } else {
        return DataBuffer<
            Decayed, ParameterType::send_recv_buf, BufferKind::in_out, BufferOwnership::owning,
            BufferResizePolicy::resize_to_fit, true>(std::move(data));
    }
}

/// @brief send_recv_buf for serialized transfer, e.g.
/// bcast(send_recv_buf(as_serialized(obj))) (paper, Fig. 11).
template <typename T, typename OutArchive, typename InArchive>
auto send_recv_buf(SerializedView<T, OutArchive, InArchive> view) {
    return SerializationInOutBuffer<T, OutArchive, InArchive>(view.object);
}

// ---------------------------------------------------------------------------
// Receive buffers
// ---------------------------------------------------------------------------

/// @brief Named parameter: storage for received data, written in place
/// (caller keeps ownership). Default policy: no_resize — no hidden
/// allocation in caller-owned storage (paper, Section III-C).
template <BufferResizePolicy Policy = BufferResizePolicy::no_resize, typename Container>
auto recv_buf(Container& container) {
    return internal::make_out_buffer<ParameterType::recv_buf, Policy>(container);
}

/// @brief Named parameter: storage for received data, moved in; the storage
/// is reused and returned by value with the result. Default policy:
/// resize_to_fit (the library owns the container for the call's duration).
template <BufferResizePolicy Policy = BufferResizePolicy::resize_to_fit, typename Container>
    requires(!std::is_lvalue_reference_v<Container>)
auto recv_buf(Container&& container) {
    return internal::make_out_buffer<ParameterType::recv_buf, Policy>(
        std::forward<Container>(container));
}

/// @brief recv_buf requesting deserialization of the received bytes.
template <typename T, typename InArchive>
auto recv_buf(DeserializableTag<T, InArchive>) {
    return DeserializationBuffer<T, InArchive>{};
}

/// @brief Explicitly requests the receive buffer as an owning out-parameter
/// with the given container type (alias for omitting recv_buf entirely).
template <typename Container = std::vector<int>>
auto recv_buf_out() {
    return internal::make_default_out_buffer<ParameterType::recv_buf, Container>();
}

// ---------------------------------------------------------------------------
// Counts and displacements (v-collectives)
// ---------------------------------------------------------------------------

/// @brief Named parameter: per-destination send counts, provided by the
/// caller.
template <typename Container>
auto send_counts(Container&& container) {
    return internal::make_in_buffer<ParameterType::send_counts>(
        std::forward<Container>(container));
}
template <typename T = int>
auto send_counts(std::initializer_list<T> values) {
    return internal::make_in_buffer<ParameterType::send_counts>(std::vector<T>(values));
}

/// @brief Named parameter: ask the library to compute the send counts and
/// return them (out-parameter protocol as for recv_counts_out).
template <BufferResizePolicy Policy = BufferResizePolicy::resize_to_fit, typename Container>
auto send_counts_out(Container&& container) {
    return internal::make_out_buffer<ParameterType::send_counts, Policy>(
        std::forward<Container>(container));
}
template <typename Container = std::vector<int>>
auto send_counts_out() {
    return internal::make_default_out_buffer<ParameterType::send_counts, Container>();
}

/// @brief Named parameter: per-source receive counts, provided by the caller.
template <typename Container>
auto recv_counts(Container&& container) {
    return internal::make_in_buffer<ParameterType::recv_counts>(
        std::forward<Container>(container));
}
template <typename T = int>
auto recv_counts(std::initializer_list<T> values) {
    return internal::make_in_buffer<ParameterType::recv_counts>(std::vector<T>(values));
}

/// @brief Named parameter: ask the library to compute the receive counts
/// (extra communication if necessary) and return them (paper, Fig. 1 (4)).
template <BufferResizePolicy Policy = BufferResizePolicy::resize_to_fit, typename Container>
auto recv_counts_out(Container&& container) {
    return internal::make_out_buffer<ParameterType::recv_counts, Policy>(
        std::forward<Container>(container));
}
template <typename Container = std::vector<int>>
auto recv_counts_out() {
    return internal::make_default_out_buffer<ParameterType::recv_counts, Container>();
}

/// @brief Named parameter: per-destination send displacements.
template <typename Container>
auto send_displs(Container&& container) {
    return internal::make_in_buffer<ParameterType::send_displs>(
        std::forward<Container>(container));
}
template <typename T = int>
auto send_displs(std::initializer_list<T> values) {
    return internal::make_in_buffer<ParameterType::send_displs>(std::vector<T>(values));
}
template <BufferResizePolicy Policy = BufferResizePolicy::resize_to_fit, typename Container>
auto send_displs_out(Container&& container) {
    return internal::make_out_buffer<ParameterType::send_displs, Policy>(
        std::forward<Container>(container));
}
template <typename Container = std::vector<int>>
auto send_displs_out() {
    return internal::make_default_out_buffer<ParameterType::send_displs, Container>();
}

/// @brief Named parameter: per-source receive displacements.
template <typename Container>
auto recv_displs(Container&& container) {
    return internal::make_in_buffer<ParameterType::recv_displs>(
        std::forward<Container>(container));
}
template <typename T = int>
auto recv_displs(std::initializer_list<T> values) {
    return internal::make_in_buffer<ParameterType::recv_displs>(std::vector<T>(values));
}
template <BufferResizePolicy Policy = BufferResizePolicy::resize_to_fit, typename Container>
auto recv_displs_out(Container&& container) {
    return internal::make_out_buffer<ParameterType::recv_displs, Policy>(
        std::forward<Container>(container));
}
template <typename Container = std::vector<int>>
auto recv_displs_out() {
    return internal::make_default_out_buffer<ParameterType::recv_displs, Container>();
}

// ---------------------------------------------------------------------------
// Single-value parameters
// ---------------------------------------------------------------------------

/// @brief Named parameter: root rank of a rooted collective.
inline auto root(int rank) {
    return ValueParameter<ParameterType::root, int>{rank};
}
/// @brief Named parameter: destination rank of a point-to-point send.
inline auto destination(int rank) {
    return ValueParameter<ParameterType::destination, int>{rank};
}
/// @brief Named parameter: source rank of a point-to-point receive.
inline auto source(int rank) {
    return ValueParameter<ParameterType::source, int>{rank};
}
/// @brief Named parameter: message tag.
inline auto tag(int value) {
    return ValueParameter<ParameterType::tag, int>{value};
}
/// @brief Named parameter: number of elements to send.
inline auto send_count(int count) {
    return ValueParameter<ParameterType::send_count, int>{count};
}
/// @brief Named parameter: number of elements to receive.
inline auto recv_count(int count) {
    return ValueParameter<ParameterType::recv_count, int>{count};
}
/// @brief Named parameter: request the receive count as an out-value.
inline auto recv_count_out() {
    return ValueOutParameter<ParameterType::recv_count, int, BufferOwnership::owning>{};
}
inline auto recv_count_out(int& target) {
    return ValueOutParameter<ParameterType::recv_count, int, BufferOwnership::referencing>{
        target};
}
/// @brief Named parameter: seed value contributed on rank 0 in exscan.
template <typename T>
auto values_on_rank_0(T value) {
    return ValueParameter<ParameterType::values_on_rank_0, T>{std::move(value)};
}

/// @brief Named parameter: target rank of a one-sided (RMA) operation.
inline auto target_rank(int rank) {
    return ValueParameter<ParameterType::target_rank, int>{rank};
}
/// @brief Named parameter: element displacement into the target's window
/// (scaled by the window's disp_unit; defaults to 0 when omitted).
inline auto target_disp(std::ptrdiff_t disp) {
    return ValueParameter<ParameterType::target_disp, std::ptrdiff_t>{disp};
}
/// @brief Named parameter: the expected value of a one-sided
/// compare-and-swap (the single element the target is compared against).
/// Copied — one element, so the copy is the zero-overhead choice.
template <typename T>
auto compare_buf(T value) {
    return ValueParameter<ParameterType::compare_buf, T>{std::move(value)};
}

/// @brief Named parameter: request the receive status as an out-value
/// (owning: part of the result; referencing: written through).
inline auto status_out() {
    return ValueOutParameter<ParameterType::status, xmpi::Status, BufferOwnership::owning>{};
}
inline auto status_out(xmpi::Status& target) {
    return ValueOutParameter<ParameterType::status, xmpi::Status, BufferOwnership::referencing>{
        target};
}

/// @name Send modes (paper, Section III: KaMPIng wraps MPI's send modes
/// through the same named-parameter mechanism).
/// @{
namespace send_modes {
struct standard_tag {};
struct synchronous_tag {};
inline constexpr standard_tag standard{};
inline constexpr synchronous_tag synchronous{};
} // namespace send_modes

/// @brief Named parameter: the send mode, e.g.
/// comm.send(send_buf(v), destination(1), send_mode(send_modes::synchronous)).
template <typename Mode>
auto send_mode(Mode) {
    static_assert(
        std::is_same_v<Mode, send_modes::standard_tag>
            || std::is_same_v<Mode, send_modes::synchronous_tag>,
        "send_mode expects kamping::send_modes::standard or ::synchronous");
    return ValueParameter<ParameterType::send_mode, Mode>{Mode{}};
}
/// @}

} // namespace kamping
