/// @file collectives_helpers.hpp
/// @brief Shared machinery of the collective wrappers: value-type deduction,
/// displacement computation, default factories.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "kamping/data_buffer.hpp"
#include "kamping/error.hpp"
#include "kamping/mpi_datatype.hpp"
#include "kamping/named_parameters.hpp"
#include "kamping/parameter_selection.hpp"
#include "kamping/result.hpp"
#include "xmpi/api.hpp"

namespace kamping::internal {

/// @brief The element type a buffer transports.
template <typename Buffer>
using buffer_value_t = typename std::remove_cvref_t<Buffer>::value_type;

/// @brief Computes exclusive-prefix-sum displacements from counts into a
/// displacement buffer (resized per its policy). Accumulates in std::size_t
/// so intermediate sums cannot wrap the int element type; each displacement
/// is asserted to fit before narrowing (the MPI interface carries int
/// displacements, so > 2^31-1 total elements is a usage error, not a silent
/// wrap).
template <typename CountsBuffer, typename DisplsBuffer>
void compute_displacements(CountsBuffer const& counts, DisplsBuffer& displs) {
    displs.resize_to(counts.size());
    std::size_t running = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        KASSERT(
            running <= static_cast<std::size_t>(std::numeric_limits<int>::max()),
            "displacement overflow: " << running
                                      << " total elements before index " << i
                                      << " exceed the int range of MPI displacements",
            kassert::assertion_level::normal);
        displs.data()[i] = static_cast<int>(running);
        running += static_cast<std::size_t>(counts.data()[i]);
    }
}

/// @brief Sum of counts plus final displacement = total element count.
/// Accumulated in std::size_t; asserts the int-typed inputs describe a
/// representable total.
template <typename CountsBuffer, typename DisplsBuffer>
std::size_t total_count(CountsBuffer const& counts, DisplsBuffer const& displs) {
    if (counts.size() == 0) {
        return 0;
    }
    std::size_t const last = counts.size() - 1;
    std::size_t const total = static_cast<std::size_t>(displs.data()[last])
                              + static_cast<std::size_t>(counts.data()[last]);
    KASSERT(
        total <= static_cast<std::size_t>(std::numeric_limits<int>::max()),
        "total element count " << total << " exceeds the int range of MPI counts",
        kassert::assertion_level::normal);
    return total;
}

/// @brief Default factory for *internal* scratch counts/displacements: the
/// library computes them but the caller did not ask for them back, so they
/// are not part of the result (request them with recv_counts_out() etc.).
template <ParameterType Type>
auto default_counts_factory() {
    return [] {
        return DataBuffer<
            std::vector<int>, Type, BufferKind::out, BufferOwnership::owning,
            BufferResizePolicy::resize_to_fit, /*InResult=*/false>(std::vector<int>{});
    };
}

/// @brief Default factory for a library-allocated receive buffer of T
/// (a plain bool array for T = bool, since std::vector<bool> is a bitset).
template <typename T>
auto default_recv_buf_factory() {
    return [] {
        return make_default_out_buffer<ParameterType::recv_buf, default_container_t<T>>();
    };
}

/// @brief Communication-level assertion (paper, Section III-G: "assertions
/// involving additional communication"): every rank of a rooted collective
/// must pass the same root. Compiled in only at
/// KASSERT_ASSERTION_LEVEL >= kassert::assertion_level::communication —
/// otherwise this function is empty and costs nothing.
inline void assert_consistent_root([[maybe_unused]] XMPI_Comm comm, [[maybe_unused]] int root) {
    if constexpr (KASSERT_ENABLED(kassert::assertion_level::communication)) {
        int size = 0;
        int rank = -1;
        XMPI_Comm_size(comm, &size);
        XMPI_Comm_rank(comm, &rank);
        std::vector<int> roots(static_cast<std::size_t>(size));
        XMPI_Allgather(&root, 1, XMPI_INT, roots.data(), 1, XMPI_INT, comm);
        for (int other = 0; other < size; ++other) {
            KASSERT(
                roots[static_cast<std::size_t>(other)] == root,
                "inconsistent root in rooted collective: rank "
                    << rank << " passed root " << root << " but rank " << other << " passed "
                    << roots[static_cast<std::size_t>(other)],
                kassert::assertion_level::communication);
        }
    }
}

/// @brief Root parameter with default 0; validates cross-rank consistency
/// when communication-level assertions are enabled.
template <typename... Args>
int get_root(XMPI_Comm comm, Args&&... args) {
    int root = 0;
    if constexpr (has_parameter_v<ParameterType::root, Args...>) {
        root = select_parameter<ParameterType::root>(args...).value;
    }
    assert_consistent_root(comm, root);
    return root;
}

} // namespace kamping::internal
