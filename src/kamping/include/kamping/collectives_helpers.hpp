/// @file collectives_helpers.hpp
/// @brief Shared machinery of the collective wrappers: value-type deduction,
/// displacement computation, default factories.
#pragma once

#include <numeric>
#include <vector>

#include "kamping/data_buffer.hpp"
#include "kamping/error.hpp"
#include "kamping/mpi_datatype.hpp"
#include "kamping/named_parameters.hpp"
#include "kamping/parameter_selection.hpp"
#include "kamping/result.hpp"
#include "xmpi/api.hpp"

namespace kamping::internal {

/// @brief The element type a buffer transports.
template <typename Buffer>
using buffer_value_t = typename std::remove_cvref_t<Buffer>::value_type;

/// @brief Computes exclusive-prefix-sum displacements from counts into a
/// displacement buffer (resized per its policy).
template <typename CountsBuffer, typename DisplsBuffer>
void compute_displacements(CountsBuffer const& counts, DisplsBuffer& displs) {
    displs.resize_to(counts.size());
    std::exclusive_scan(
        counts.data(), counts.data() + counts.size(), displs.data(), 0);
}

/// @brief Sum of counts plus final displacement = total element count.
template <typename CountsBuffer, typename DisplsBuffer>
std::size_t total_count(CountsBuffer const& counts, DisplsBuffer const& displs) {
    if (counts.size() == 0) {
        return 0;
    }
    std::size_t const last = counts.size() - 1;
    return static_cast<std::size_t>(displs.data()[last])
           + static_cast<std::size_t>(counts.data()[last]);
}

/// @brief Default factory for *internal* scratch counts/displacements: the
/// library computes them but the caller did not ask for them back, so they
/// are not part of the result (request them with recv_counts_out() etc.).
template <ParameterType Type>
auto default_counts_factory() {
    return [] {
        return DataBuffer<
            std::vector<int>, Type, BufferKind::out, BufferOwnership::owning,
            BufferResizePolicy::resize_to_fit, /*InResult=*/false>(std::vector<int>{});
    };
}

/// @brief Default factory for a library-allocated receive buffer of T
/// (a plain bool array for T = bool, since std::vector<bool> is a bitset).
template <typename T>
auto default_recv_buf_factory() {
    return [] {
        return make_default_out_buffer<ParameterType::recv_buf, default_container_t<T>>();
    };
}

/// @brief Communication-level assertion (paper, Section III-G: "assertions
/// involving additional communication"): every rank of a rooted collective
/// must pass the same root. Compiled in only at
/// KASSERT_ASSERTION_LEVEL >= kassert::assertion_level::communication —
/// otherwise this function is empty and costs nothing.
inline void assert_consistent_root([[maybe_unused]] XMPI_Comm comm, [[maybe_unused]] int root) {
    if constexpr (KASSERT_ENABLED(kassert::assertion_level::communication)) {
        int size = 0;
        int rank = -1;
        XMPI_Comm_size(comm, &size);
        XMPI_Comm_rank(comm, &rank);
        std::vector<int> roots(static_cast<std::size_t>(size));
        XMPI_Allgather(&root, 1, XMPI_INT, roots.data(), 1, XMPI_INT, comm);
        for (int other = 0; other < size; ++other) {
            KASSERT(
                roots[static_cast<std::size_t>(other)] == root,
                "inconsistent root in rooted collective: rank "
                    << rank << " passed root " << root << " but rank " << other << " passed "
                    << roots[static_cast<std::size_t>(other)],
                kassert::assertion_level::communication);
        }
    }
}

/// @brief Root parameter with default 0; validates cross-rank consistency
/// when communication-level assertions are enabled.
template <typename... Args>
int get_root(XMPI_Comm comm, Args&&... args) {
    int root = 0;
    if constexpr (has_parameter_v<ParameterType::root, Args...>) {
        root = select_parameter<ParameterType::root>(args...).value;
    }
    assert_consistent_root(comm, root);
    return root;
}

} // namespace kamping::internal
