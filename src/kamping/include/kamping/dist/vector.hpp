/// @file vector.hpp
/// @brief DistributedVector — first steps towards the distributed standard
/// library the paper's conclusion sketches (Section VI: "with distributed
/// containers, we want to enable lightweight bulk parallel computation
/// inspired by MapReduce and Thrill, while not locking the programmer into
/// the walled garden of a particular framework").
///
/// A DistributedVector is nothing but a local std::vector plus a
/// communicator: every bulk operation is implemented directly with KaMPIng
/// calls, data is always accessible as plain local STL containers, and any
/// step can drop down to raw MPI — no framework lock-in.
///
/// Bulk operations: map, filter, reduce, prefix_sum, sort, rebalance,
/// exchange_by_key (the MapReduce shuffle; serialized transparently for
/// heap-backed element types), gather_to_root, global_size.
#pragma once

#include <cstdint>
#include <functional>
#include <numeric>
#include <utility>
#include <vector>

#include "kamping/plugin/plugins.hpp"
#include "kamping/serialization.hpp"
#include "kamping/utils.hpp"

namespace kamping::dist {

template <typename T>
class DistributedVector {
public:
    using value_type = T;

    /// @brief Wraps this rank's block of a distributed data set.
    DistributedVector(XMPI_Comm comm, std::vector<T> local)
        : comm_(comm),
          local_(std::move(local)) {}

    /// @brief The canonical generator: [0, n) block-distributed.
    static DistributedVector iota(XMPI_Comm comm_handle, std::uint64_t n)
        requires std::is_integral_v<T>
    {
        FullCommunicator comm(comm_handle);
        auto const p = static_cast<std::uint64_t>(comm.size());
        auto const r = static_cast<std::uint64_t>(comm.rank());
        std::uint64_t const chunk = n / p;
        std::uint64_t const remainder = n % p;
        std::uint64_t const first = r * chunk + std::min(r, remainder);
        std::uint64_t const count = chunk + (r < remainder ? 1 : 0);
        std::vector<T> local(count);
        std::iota(local.begin(), local.end(), static_cast<T>(first));
        return DistributedVector(comm_handle, std::move(local));
    }

    /// @name Local access (never hidden behind the framework)
    /// @{
    [[nodiscard]] std::vector<T>& local() { return local_; }
    [[nodiscard]] std::vector<T> const& local() const { return local_; }
    [[nodiscard]] std::size_t local_size() const { return local_.size(); }
    [[nodiscard]] XMPI_Comm communicator() const { return comm_; }
    /// @}

    /// @brief Total element count across all ranks (collective).
    [[nodiscard]] std::uint64_t global_size() const {
        FullCommunicator comm(comm_);
        return comm.allreduce_single(
            send_buf(static_cast<std::uint64_t>(local_.size())), op(std::plus<>{}));
    }

    /// @brief Element-wise transform (embarrassingly parallel).
    template <typename F>
    [[nodiscard]] auto map(F&& f) const {
        using U = std::invoke_result_t<F, T const&>;
        std::vector<U> mapped;
        mapped.reserve(local_.size());
        for (auto const& element: local_) {
            mapped.push_back(f(element));
        }
        return DistributedVector<U>(comm_, std::move(mapped));
    }

    /// @brief Keeps the elements satisfying the predicate.
    template <typename Pred>
    [[nodiscard]] DistributedVector filter(Pred&& keep) const {
        std::vector<T> kept;
        for (auto const& element: local_) {
            if (keep(element)) {
                kept.push_back(element);
            }
        }
        return DistributedVector(comm_, std::move(kept));
    }

    /// @brief Global reduction: local fold, then an allreduce with the same
    /// (commutative, associative) operation. Every rank gets the result.
    template <typename F>
    [[nodiscard]] T reduce(T identity, F&& combine) const
        requires std::is_trivially_copyable_v<T>
    {
        T folded = identity;
        for (auto const& element: local_) {
            folded = combine(folded, element);
        }
        FullCommunicator comm(comm_);
        return comm.allreduce_single(
            send_buf(folded), op(std::forward<F>(combine), ops::commutative));
    }

    /// @brief Global exclusive prefix sum over the elements, in distributed
    /// order (rank-major): element i's result is the sum of all elements
    /// before it.
    [[nodiscard]] DistributedVector prefix_sum() const
        requires std::is_arithmetic_v<T>
    {
        FullCommunicator comm(comm_);
        T const local_total = std::accumulate(local_.begin(), local_.end(), T{});
        T const preceding = comm.exscan_single(
            send_buf(local_total), op(std::plus<>{}), values_on_rank_0(T{}));
        std::vector<T> sums(local_.size());
        std::exclusive_scan(local_.begin(), local_.end(), sums.begin(), preceding);
        return DistributedVector(comm_, std::move(sums));
    }

    /// @brief Globally sorts the data (distributed sample sort); afterwards
    /// rank i's block precedes rank i+1's.
    template <typename Compare = std::less<T>>
    [[nodiscard]] DistributedVector sort(Compare compare = {}) const
        requires std::is_trivially_copyable_v<T>
    {
        FullCommunicator comm(comm_);
        std::vector<T> data = local_;
        comm.sort(data, compare);
        return DistributedVector(comm_, std::move(data));
    }

    /// @brief Rebalances to an even block distribution (alltoallv along the
    /// global element order).
    [[nodiscard]] DistributedVector rebalance() const
        requires std::is_trivially_copyable_v<T>
    {
        FullCommunicator comm(comm_);
        int const p = comm.size_signed();
        std::uint64_t const total = global_size();
        std::uint64_t const my_offset = comm.exscan_single(
            send_buf(static_cast<std::uint64_t>(local_.size())), op(std::plus<>{}),
            values_on_rank_0(std::uint64_t{0}));
        // Target block boundaries.
        auto const target_first = [&](int rank) {
            auto const r = static_cast<std::uint64_t>(rank);
            auto const pp = static_cast<std::uint64_t>(p);
            return r * (total / pp) + std::min(r, total % pp);
        };
        std::vector<int> counts(static_cast<std::size_t>(p), 0);
        for (std::size_t i = 0; i < local_.size(); ++i) {
            std::uint64_t const global_index = my_offset + i;
            int owner = 0;
            while (owner + 1 < p && target_first(owner + 1) <= global_index) {
                ++owner;
            }
            ++counts[static_cast<std::size_t>(owner)];
        }
        auto balanced = comm.alltoallv(send_buf(local_), send_counts(counts));
        return DistributedVector(comm_, std::move(balanced));
    }

    /// @brief The MapReduce shuffle: routes every element to the rank
    /// selected by hash(key(element)) % p, so equal keys meet on one rank.
    /// Statically typed elements travel directly; heap-backed ones are
    /// serialized transparently per destination (explicitly implemented on
    /// top of kaserial — no hidden per-element cost for static types).
    template <typename KeyFn>
    [[nodiscard]] DistributedVector exchange_by_key(KeyFn&& key_of) const {
        FullCommunicator comm(comm_);
        int const p = comm.size_signed();
        auto const destination_of = [&](T const& element) {
            return static_cast<int>(
                std::hash<std::decay_t<decltype(key_of(element))>>{}(key_of(element))
                % static_cast<std::size_t>(p));
        };
        if constexpr (has_static_type<T>) {
            std::vector<std::vector<T>> buckets(static_cast<std::size_t>(p));
            for (auto const& element: local_) {
                buckets[static_cast<std::size_t>(destination_of(element))].push_back(element);
            }
            auto const flattened = with_flattened(buckets, comm.size());
            auto shuffled = comm.alltoallv(
                send_buf(flattened.data), send_counts(flattened.counts));
            return DistributedVector(comm_, std::move(shuffled));
        } else {
            // Serialize each destination's bucket into a byte stream.
            std::vector<std::vector<T>> buckets(static_cast<std::size_t>(p));
            for (auto const& element: local_) {
                buckets[static_cast<std::size_t>(destination_of(element))].push_back(element);
            }
            std::vector<std::byte> stream;
            std::vector<int> counts(static_cast<std::size_t>(p), 0);
            for (int destination = 0; destination < p; ++destination) {
                auto const bytes =
                    kaserial::to_bytes(buckets[static_cast<std::size_t>(destination)]);
                counts[static_cast<std::size_t>(destination)] =
                    static_cast<int>(bytes.size());
                stream.insert(stream.end(), bytes.begin(), bytes.end());
            }
            auto [received, received_counts] = comm.alltoallv(
                send_buf(stream), send_counts(counts), recv_counts_out());
            std::vector<T> shuffled;
            std::size_t cursor = 0;
            for (int source = 0; source < p; ++source) {
                auto const bytes =
                    static_cast<std::size_t>(received_counts[static_cast<std::size_t>(source)]);
                if (bytes > 0) {
                    auto block = kaserial::from_bytes<std::vector<T>>(
                        {received.data() + cursor, bytes});
                    shuffled.insert(
                        shuffled.end(), std::make_move_iterator(block.begin()),
                        std::make_move_iterator(block.end()));
                    cursor += bytes;
                }
            }
            return DistributedVector(comm_, std::move(shuffled));
        }
    }

    /// @brief Gathers everything on the root (empty elsewhere).
    [[nodiscard]] std::vector<T> gather_to_root(int root_rank = 0) const
        requires std::is_trivially_copyable_v<T>
    {
        FullCommunicator comm(comm_);
        return comm.gatherv(send_buf(local_), root(root_rank));
    }

private:
    XMPI_Comm comm_;
    std::vector<T> local_;
};

} // namespace kamping::dist
