/// @file collectives_gather.hpp
/// @brief Wrappers for the gather family: gather, gatherv, allgather,
/// allgatherv — including the paper's flagship one-liner
/// `auto v_global = comm.allgatherv(send_buf(v));` (Fig. 1).
#pragma once

#include "kamping/collectives_helpers.hpp"

namespace kamping::internal {

/// @brief comm.allgatherv(send_buf(v), [recv_buf], [recv_counts[_out]],
/// [recv_displs[_out]], [send_count]).
///
/// Missing receive counts are computed by an allgather of the local send
/// count; missing displacements by a local exclusive prefix sum — exactly
/// the boilerplate of the paper's Fig. 2, instantiated only when needed.
template <typename... Args>
auto allgatherv_impl(XMPI_Comm comm, Args&&... args) {
    static_assert(
        has_parameter_v<ParameterType::send_buf, Args...>,
        "allgatherv requires a send_buf(...) parameter");
    KAMPING_CHECK_PARAMETERS(
        Args, "allgatherv", ParameterType::send_buf, ParameterType::recv_buf,
        ParameterType::recv_counts, ParameterType::recv_displs, ParameterType::send_count);

    auto&& send = select_parameter<ParameterType::send_buf>(args...);
    using T = buffer_value_t<decltype(send)>;

    int size = 0;
    XMPI_Comm_size(comm, &size);

    int send_count = static_cast<int>(send.size());
    if constexpr (has_parameter_v<ParameterType::send_count, Args...>) {
        send_count = select_parameter<ParameterType::send_count>(args...).value;
    }

    // Receive counts: user-provided, or computed via allgather of the send
    // counts (the code path is compiled only when the parameter is missing
    // or requested as an out-parameter).
    auto counts = take_parameter_or_default<ParameterType::recv_counts>(
        default_counts_factory<ParameterType::recv_counts>(), args...);
    constexpr bool counts_are_input =
        std::remove_cvref_t<decltype(counts)>::kind == BufferKind::in;
    if constexpr (!counts_are_input) {
        counts.resize_to(static_cast<std::size_t>(size));
        throw_on_error(
            XMPI_Allgather(
                &send_count, 1, XMPI_INT, counts.data(), 1, XMPI_INT, comm),
            "XMPI_Allgather(recv_counts)");
    }

    // Displacements: user-provided or exclusive prefix sum.
    auto displs = take_parameter_or_default<ParameterType::recv_displs>(
        default_counts_factory<ParameterType::recv_displs>(), args...);
    constexpr bool displs_are_input =
        std::remove_cvref_t<decltype(displs)>::kind == BufferKind::in;
    if constexpr (!displs_are_input) {
        compute_displacements(counts, displs);
    }

    auto recv = take_parameter_or_default<ParameterType::recv_buf>(
        default_recv_buf_factory<T>(), args...);
    recv.resize_to(total_count(counts, displs));

    throw_on_error(
        XMPI_Allgatherv(
            send.data(), send_count, mpi_datatype<T>(), recv.data(), counts.data(),
            displs.data(), mpi_datatype<buffer_value_t<decltype(recv)>>(), comm),
        "XMPI_Allgatherv");

    return make_result(std::move(recv), std::move(counts), std::move(displs));
}

/// @brief comm.allgather(send_buf(v)) or in-place
/// comm.allgather(send_recv_buf(data)) (paper, Section III-G).
template <typename... Args>
auto allgather_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_CHECK_PARAMETERS(
        Args, "allgather", ParameterType::send_buf, ParameterType::send_recv_buf,
        ParameterType::recv_buf, ParameterType::send_count);
    int size = 0;
    XMPI_Comm_size(comm, &size);

    if constexpr (has_parameter_v<ParameterType::send_recv_buf, Args...>) {
        // In-place: each rank's contribution sits at its slot of the buffer.
        static_assert(
            !has_parameter_v<ParameterType::send_buf, Args...>
                && !has_parameter_v<ParameterType::recv_buf, Args...>,
            "allgather with send_recv_buf is the in-place variant: passing an additional "
            "send_buf or recv_buf would be ignored by MPI and is therefore a compile-time "
            "error in KaMPIng");
        auto buffer = std::move(select_parameter<ParameterType::send_recv_buf>(args...));
        using T = buffer_value_t<decltype(buffer)>;
        THROWING_KASSERT(
            buffer.size() % static_cast<std::size_t>(size) == 0,
            "in-place allgather requires the buffer size (" << buffer.size()
                                                            << ") to be divisible by the "
                                                               "communicator size");
        int const count = static_cast<int>(buffer.size()) / size;
        throw_on_error(
            XMPI_Allgather(
                XMPI_IN_PLACE, 0, XMPI_DATATYPE_NULL, buffer.data(), count, mpi_datatype<T>(),
                comm),
            "XMPI_Allgather");
        return make_result(std::move(buffer));
    } else {
        static_assert(
            has_parameter_v<ParameterType::send_buf, Args...>,
            "allgather requires a send_buf(...) (or send_recv_buf(...)) parameter");
        auto&& send = select_parameter<ParameterType::send_buf>(args...);
        using T = buffer_value_t<decltype(send)>;
        int send_count = static_cast<int>(send.size());
        if constexpr (has_parameter_v<ParameterType::send_count, Args...>) {
            send_count = select_parameter<ParameterType::send_count>(args...).value;
        }
        auto recv = take_parameter_or_default<ParameterType::recv_buf>(
            default_recv_buf_factory<T>(), args...);
        recv.resize_to(static_cast<std::size_t>(send_count) * static_cast<std::size_t>(size));
        throw_on_error(
            XMPI_Allgather(
                send.data(), send_count, mpi_datatype<T>(), recv.data(), send_count,
                mpi_datatype<buffer_value_t<decltype(recv)>>(), comm),
            "XMPI_Allgather");
        return make_result(std::move(recv));
    }
}

/// @brief comm.gather(send_buf(v), [root], [recv_buf]): regular gather; the
/// receive buffer is only meaningful on the root (empty elsewhere).
template <typename... Args>
auto gather_impl(XMPI_Comm comm, Args&&... args) {
    static_assert(
        has_parameter_v<ParameterType::send_buf, Args...>,
        "gather requires a send_buf(...) parameter");
    KAMPING_CHECK_PARAMETERS(
        Args, "gather", ParameterType::send_buf, ParameterType::recv_buf, ParameterType::root,
        ParameterType::send_count);
    auto&& send = select_parameter<ParameterType::send_buf>(args...);
    using T = buffer_value_t<decltype(send)>;
    int size = 0;
    int rank = -1;
    XMPI_Comm_size(comm, &size);
    XMPI_Comm_rank(comm, &rank);
    int const root_rank = get_root(comm, args...);
    int const send_count = static_cast<int>(send.size());

    auto recv = take_parameter_or_default<ParameterType::recv_buf>(
        default_recv_buf_factory<T>(), args...);
    if (rank == root_rank) {
        recv.resize_to(static_cast<std::size_t>(send_count) * static_cast<std::size_t>(size));
    }
    throw_on_error(
        XMPI_Gather(
            send.data(), send_count, mpi_datatype<T>(), recv.data(), send_count,
            mpi_datatype<buffer_value_t<decltype(recv)>>(), root_rank, comm),
        "XMPI_Gather");
    return make_result(std::move(recv));
}

/// @brief comm.gatherv(send_buf(v), [root], [recv_buf], [recv_counts[_out]],
/// [recv_displs[_out]]): missing counts are gathered from the ranks.
template <typename... Args>
auto gatherv_impl(XMPI_Comm comm, Args&&... args) {
    static_assert(
        has_parameter_v<ParameterType::send_buf, Args...>,
        "gatherv requires a send_buf(...) parameter");
    KAMPING_CHECK_PARAMETERS(
        Args, "gatherv", ParameterType::send_buf, ParameterType::recv_buf, ParameterType::root,
        ParameterType::recv_counts, ParameterType::recv_displs, ParameterType::send_count);
    auto&& send = select_parameter<ParameterType::send_buf>(args...);
    using T = buffer_value_t<decltype(send)>;
    int size = 0;
    int rank = -1;
    XMPI_Comm_size(comm, &size);
    XMPI_Comm_rank(comm, &rank);
    int const root_rank = get_root(comm, args...);
    int send_count = static_cast<int>(send.size());

    auto counts = take_parameter_or_default<ParameterType::recv_counts>(
        default_counts_factory<ParameterType::recv_counts>(), args...);
    constexpr bool counts_are_input =
        std::remove_cvref_t<decltype(counts)>::kind == BufferKind::in;
    if constexpr (!counts_are_input) {
        if (rank == root_rank) {
            counts.resize_to(static_cast<std::size_t>(size));
        }
        throw_on_error(
            XMPI_Gather(
                &send_count, 1, XMPI_INT, counts.data(), 1, XMPI_INT, root_rank, comm),
            "XMPI_Gather(recv_counts)");
    }

    auto displs = take_parameter_or_default<ParameterType::recv_displs>(
        default_counts_factory<ParameterType::recv_displs>(), args...);
    constexpr bool displs_are_input =
        std::remove_cvref_t<decltype(displs)>::kind == BufferKind::in;
    if constexpr (!displs_are_input) {
        if (rank == root_rank) {
            compute_displacements(counts, displs);
        }
    }

    auto recv = take_parameter_or_default<ParameterType::recv_buf>(
        default_recv_buf_factory<T>(), args...);
    if (rank == root_rank) {
        recv.resize_to(total_count(counts, displs));
    }
    throw_on_error(
        XMPI_Gatherv(
            send.data(), send_count, mpi_datatype<T>(), recv.data(), counts.data(),
            displs.data(), mpi_datatype<buffer_value_t<decltype(recv)>>(), root_rank, comm),
        "XMPI_Gatherv");
    return make_result(std::move(recv), std::move(counts), std::move(displs));
}

} // namespace kamping::internal
