/// @file collectives_gather.hpp
/// @brief Wrappers for the gather family: gather, gatherv, allgather,
/// allgatherv — including the paper's flagship one-liner
/// `auto v_global = comm.allgatherv(send_buf(v));` (Fig. 1).
///
/// All four operations dispatch through the call plan of pipeline.hpp: the
/// stage functors spell out the Fig. 2 sequence (resolve send → infer
/// counts → compute displacements → prepare receive buffer → dispatch →
/// assemble result) once per op instead of re-rolling it inline.
#pragma once

#include "kamping/pipeline.hpp"

namespace kamping::internal {

/// @brief comm.allgatherv(send_buf(v), [recv_buf], [recv_counts[_out]],
/// [recv_displs[_out]], [send_count]).
///
/// Missing receive counts are computed by an allgather of the local send
/// count; missing displacements by a local exclusive prefix sum — exactly
/// the boilerplate of the paper's Fig. 2, instantiated only when needed.
template <typename... Args>
auto allgatherv_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::send_buf, Args...>), "allgatherv", "send_buf");
    KAMPING_CHECK_PARAMETERS(
        Args, "allgatherv", ParameterType::send_buf, ParameterType::recv_buf,
        ParameterType::recv_counts, ParameterType::recv_displs, ParameterType::send_count);

    CollectivePlan<plan_ops::allgatherv, Args...> plan(comm);
    auto&& send = ResolveSend{}(plan, args...);
    using T = buffer_value_t<decltype(send)>;

    int size = 0;
    XMPI_Comm_size(comm, &size);

    int send_count = static_cast<int>(send.size());
    if constexpr (has_parameter_v<ParameterType::send_count, Args...>) {
        send_count = select_parameter<ParameterType::send_count>(args...).value;
    }

    auto counts = InferCounts<ParameterType::recv_counts>{}(
        plan,
        [&](auto& buffer) {
            buffer.resize_to(static_cast<std::size_t>(size));
            plan.dispatch(
                "XMPI_Allgather",
                [&] {
                    return XMPI_Allgather(
                        &send_count, 1, XMPI_INT, buffer.data(), 1, XMPI_INT, comm);
                },
                PlanStage::infer_counts);
        },
        args...);

    auto displs =
        ComputeDispls<ParameterType::recv_displs>{}(plan, counts, /*participate=*/true, args...);

    auto recv = PrepareRecv<T>{}(plan, total_count(counts, displs), /*participate=*/true, args...);

    Dispatch{}(plan, "XMPI_Allgatherv", [&] {
        return XMPI_Allgatherv(
            send.data(), send_count, mpi_datatype<T>(), recv.data(), counts.data(),
            displs.data(), mpi_datatype<buffer_value_t<decltype(recv)>>(), comm);
    });

    return AssembleResult{}(std::move(recv), std::move(counts), std::move(displs));
}

/// @brief comm.allgather(send_buf(v)) or in-place
/// comm.allgather(send_recv_buf(data)) (paper, Section III-G).
template <typename... Args>
auto allgather_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_CHECK_PARAMETERS(
        Args, "allgather", ParameterType::send_buf, ParameterType::send_recv_buf,
        ParameterType::recv_buf, ParameterType::send_count);
    CollectivePlan<plan_ops::allgather, Args...> plan(comm);
    int size = 0;
    XMPI_Comm_size(comm, &size);

    if constexpr (has_parameter_v<ParameterType::send_recv_buf, Args...>) {
        // In-place: each rank's contribution sits at its slot of the buffer.
        static_assert(
            !has_parameter_v<ParameterType::send_buf, Args...>
                && !has_parameter_v<ParameterType::recv_buf, Args...>,
            "allgather with send_recv_buf is the in-place variant: passing an additional "
            "send_buf or recv_buf would be ignored by MPI and is therefore a compile-time "
            "error in KaMPIng");
        auto buffer = std::move(select_parameter<ParameterType::send_recv_buf>(args...));
        using T = buffer_value_t<decltype(buffer)>;
        THROWING_KASSERT(
            buffer.size() % static_cast<std::size_t>(size) == 0,
            "in-place allgather requires the buffer size (" << buffer.size()
                                                            << ") to be divisible by the "
                                                               "communicator size");
        plan.note_bytes_in(buffer.size() * sizeof(T));
        plan.note_bytes_out(buffer.size() * sizeof(T));
        int const count = static_cast<int>(buffer.size()) / size;
        Dispatch{}(plan, "XMPI_Allgather", [&] {
            return XMPI_Allgather(
                XMPI_IN_PLACE, 0, XMPI_DATATYPE_NULL, buffer.data(), count, mpi_datatype<T>(),
                comm);
        });
        return AssembleResult{}(std::move(buffer));
    } else {
        KAMPING_PLAN_REQUIRE(
            (has_parameter_v<ParameterType::send_buf, Args...>), "allgather",
            "send_buf (or send_recv_buf)");
        auto&& send = ResolveSend{}(plan, args...);
        using T = buffer_value_t<decltype(send)>;
        int send_count = static_cast<int>(send.size());
        if constexpr (has_parameter_v<ParameterType::send_count, Args...>) {
            send_count = select_parameter<ParameterType::send_count>(args...).value;
        }
        auto recv = PrepareRecv<T>{}(
            plan, static_cast<std::size_t>(send_count) * static_cast<std::size_t>(size),
            /*participate=*/true, args...);
        Dispatch{}(plan, "XMPI_Allgather", [&] {
            return XMPI_Allgather(
                send.data(), send_count, mpi_datatype<T>(), recv.data(), send_count,
                mpi_datatype<buffer_value_t<decltype(recv)>>(), comm);
        });
        return AssembleResult{}(std::move(recv));
    }
}

/// @brief comm.gather(send_buf(v), [root], [recv_buf]): regular gather; the
/// receive buffer is only meaningful on the root (empty elsewhere).
template <typename... Args>
auto gather_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_PLAN_REQUIRE((has_parameter_v<ParameterType::send_buf, Args...>), "gather", "send_buf");
    KAMPING_CHECK_PARAMETERS(
        Args, "gather", ParameterType::send_buf, ParameterType::recv_buf, ParameterType::root,
        ParameterType::send_count);
    CollectivePlan<plan_ops::gather, Args...> plan(comm);
    auto&& send = ResolveSend{}(plan, args...);
    using T = buffer_value_t<decltype(send)>;
    int size = 0;
    int rank = -1;
    XMPI_Comm_size(comm, &size);
    XMPI_Comm_rank(comm, &rank);
    int const root_rank = get_root(comm, args...);
    int const send_count = static_cast<int>(send.size());

    auto recv = PrepareRecv<T>{}(
        plan, static_cast<std::size_t>(send_count) * static_cast<std::size_t>(size),
        /*participate=*/rank == root_rank, args...);
    Dispatch{}(plan, "XMPI_Gather", [&] {
        return XMPI_Gather(
            send.data(), send_count, mpi_datatype<T>(), recv.data(), send_count,
            mpi_datatype<buffer_value_t<decltype(recv)>>(), root_rank, comm);
    });
    return AssembleResult{}(std::move(recv));
}

/// @brief comm.gatherv(send_buf(v), [root], [recv_buf], [recv_counts[_out]],
/// [recv_displs[_out]]): missing counts are gathered from the ranks.
template <typename... Args>
auto gatherv_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::send_buf, Args...>), "gatherv", "send_buf");
    KAMPING_CHECK_PARAMETERS(
        Args, "gatherv", ParameterType::send_buf, ParameterType::recv_buf, ParameterType::root,
        ParameterType::recv_counts, ParameterType::recv_displs, ParameterType::send_count);
    CollectivePlan<plan_ops::gatherv, Args...> plan(comm);
    auto&& send = ResolveSend{}(plan, args...);
    using T = buffer_value_t<decltype(send)>;
    int size = 0;
    int rank = -1;
    XMPI_Comm_size(comm, &size);
    XMPI_Comm_rank(comm, &rank);
    int const root_rank = get_root(comm, args...);
    int send_count = static_cast<int>(send.size());

    auto counts = InferCounts<ParameterType::recv_counts>{}(
        plan,
        [&](auto& buffer) {
            if (rank == root_rank) {
                buffer.resize_to(static_cast<std::size_t>(size));
            }
            plan.dispatch(
                "XMPI_Gather",
                [&] {
                    return XMPI_Gather(
                        &send_count, 1, XMPI_INT, buffer.data(), 1, XMPI_INT, root_rank, comm);
                },
                PlanStage::infer_counts);
        },
        args...);

    auto displs = ComputeDispls<ParameterType::recv_displs>{}(
        plan, counts, /*participate=*/rank == root_rank, args...);

    // Non-roots may carry counts (the parameter is uniform) but never have
    // displacements; only the root derives — and needs — the total.
    std::size_t const elements = rank == root_rank ? total_count(counts, displs) : 0;
    auto recv = PrepareRecv<T>{}(plan, elements, /*participate=*/rank == root_rank, args...);
    Dispatch{}(plan, "XMPI_Gatherv", [&] {
        return XMPI_Gatherv(
            send.data(), send_count, mpi_datatype<T>(), recv.data(), counts.data(),
            displs.data(), mpi_datatype<buffer_value_t<decltype(recv)>>(), root_rank, comm);
    });
    return AssembleResult{}(std::move(recv), std::move(counts), std::move(displs));
}

} // namespace kamping::internal
