/// @file collectives_bcast.hpp
/// @brief Wrappers for bcast (including serialized broadcast), scatter and
/// scatterv. All dispatch through the call plan of pipeline.hpp.
#pragma once

#include <cstdint>

#include "kamping/pipeline.hpp"
#include "kamping/serialization.hpp"

namespace kamping::internal {

/// @brief comm.bcast(send_recv_buf(data), [root], [recv_count]).
///
/// If the element count is not known on the non-root ranks, KaMPIng first
/// broadcasts the count so the buffers can be sized — one extra small bcast,
/// instantiated only when recv_count is absent *and* a resize may happen.
///
/// With send_recv_buf(as_serialized(obj)) the root serializes and everyone
/// else deserializes in place (paper, Fig. 11).
template <typename... Args>
auto bcast_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::send_recv_buf, Args...>), "bcast", "send_recv_buf");
    KAMPING_CHECK_PARAMETERS(
        Args, "bcast", ParameterType::send_recv_buf, ParameterType::root,
        ParameterType::recv_count);
    CollectivePlan<plan_ops::bcast, Args...> plan(comm);
    int rank = -1;
    XMPI_Comm_rank(comm, &rank);
    int const root_rank = get_root(comm, args...);

    auto buffer = std::move(select_parameter<ParameterType::send_recv_buf>(args...));
    using Buffer = std::remove_cvref_t<decltype(buffer)>;

    if constexpr (serialization_buffer<Buffer>) {
        // Serialized broadcast: size prologue + payload, then deserialize.
        std::vector<std::byte> bytes;
        std::uint64_t payload_size = 0;
        if (rank == root_rank) {
            bytes = buffer.serialize();
            payload_size = bytes.size();
        }
        plan.note_count_exchange();
        plan.dispatch(
            "XMPI_Bcast(serialized size)",
            [&] { return XMPI_Bcast(&payload_size, sizeof(payload_size), XMPI_BYTE, root_rank, comm); },
            PlanStage::infer_counts);
        if (rank != root_rank) {
            bytes.resize(payload_size);
        }
        plan.note_bytes_in(rank == root_rank ? payload_size : 0);
        plan.note_bytes_out(rank == root_rank ? 0 : payload_size);
        Dispatch{}(plan, "XMPI_Bcast(serialized payload)", [&] {
            return XMPI_Bcast(
                bytes.data(), static_cast<int>(payload_size), XMPI_BYTE, root_rank, comm);
        });
        if (rank != root_rank) {
            buffer.deserialize(bytes);
        }
        return;
    } else {
        using T = buffer_value_t<Buffer>;
        std::uint64_t count;
        if constexpr (has_parameter_v<ParameterType::recv_count, Args...>) {
            count = static_cast<std::uint64_t>(
                select_parameter<ParameterType::recv_count>(args...).value);
        } else {
            // Count unknown on the receivers: broadcast it first.
            count = buffer.size();
            plan.note_count_exchange();
            plan.dispatch(
                "XMPI_Bcast(count)",
                [&] { return XMPI_Bcast(&count, sizeof(count), XMPI_BYTE, root_rank, comm); },
                PlanStage::infer_counts);
        }
        if (rank != root_rank) {
            buffer.resize_to(static_cast<std::size_t>(count));
        }
        plan.note_bytes_in(rank == root_rank ? count * sizeof(T) : 0);
        plan.note_bytes_out(rank == root_rank ? 0 : count * sizeof(T));
        Dispatch{}(plan, "XMPI_Bcast", [&] {
            return XMPI_Bcast(
                buffer.data(), static_cast<int>(count), mpi_datatype<T>(), root_rank, comm);
        });
        return AssembleResult{}(std::move(buffer));
    }
}

/// @brief comm.scatter(send_buf(v), [root], [recv_buf], [recv_count]): the
/// root's send buffer is cut into equal slices; the per-rank count is
/// broadcast when not provided.
template <typename... Args>
auto scatter_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::send_buf, Args...>), "scatter", "send_buf");
    KAMPING_CHECK_PARAMETERS(
        Args, "scatter", ParameterType::send_buf, ParameterType::recv_buf, ParameterType::root,
        ParameterType::recv_count);
    CollectivePlan<plan_ops::scatter, Args...> plan(comm);
    int rank = -1;
    int size = 0;
    XMPI_Comm_rank(comm, &rank);
    XMPI_Comm_size(comm, &size);
    int const root_rank = get_root(comm, args...);

    auto&& send = ResolveSend{}(plan, args...);
    using T = buffer_value_t<decltype(send)>;

    int count = 0;
    if constexpr (has_parameter_v<ParameterType::recv_count, Args...>) {
        count = select_parameter<ParameterType::recv_count>(args...).value;
    } else {
        if (rank == root_rank) {
            THROWING_KASSERT(
                send.size() % static_cast<std::size_t>(size) == 0,
                "scatter send buffer size must be divisible by the communicator size");
            count = static_cast<int>(send.size()) / size;
        }
        plan.note_count_exchange();
        plan.dispatch(
            "XMPI_Bcast(count)",
            [&] { return XMPI_Bcast(&count, 1, XMPI_INT, root_rank, comm); },
            PlanStage::infer_counts);
    }

    auto recv =
        PrepareRecv<T>{}(plan, static_cast<std::size_t>(count), /*participate=*/true, args...);
    Dispatch{}(plan, "XMPI_Scatter", [&] {
        return XMPI_Scatter(
            send.data(), count, mpi_datatype<T>(), recv.data(), count,
            mpi_datatype<buffer_value_t<decltype(recv)>>(), root_rank, comm);
    });
    return AssembleResult{}(std::move(recv));
}

/// @brief comm.scatterv(send_buf(v), send_counts(sc), [send_displs], [root],
/// [recv_buf], [recv_count]): the per-rank receive count is scattered from
/// the root when not provided.
template <typename... Args>
auto scatterv_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::send_buf, Args...>), "scatterv", "send_buf");
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::send_counts, Args...>), "scatterv", "send_counts");
    KAMPING_CHECK_PARAMETERS(
        Args, "scatterv", ParameterType::send_buf, ParameterType::send_counts,
        ParameterType::send_displs, ParameterType::recv_buf, ParameterType::root,
        ParameterType::recv_count);
    CollectivePlan<plan_ops::scatterv, Args...> plan(comm);
    int rank = -1;
    int size = 0;
    XMPI_Comm_rank(comm, &rank);
    XMPI_Comm_size(comm, &size);
    int const root_rank = get_root(comm, args...);

    auto&& send = ResolveSend{}(plan, args...);
    using T = buffer_value_t<decltype(send)>;

    auto counts = take_parameter_or_default<ParameterType::send_counts>(
        default_counts_factory<ParameterType::send_counts>(), args...);

    auto displs = ComputeDispls<ParameterType::send_displs>{}(
        plan, counts, /*participate=*/rank == root_rank, args...);

    int count = 0;
    if constexpr (has_parameter_v<ParameterType::recv_count, Args...>) {
        count = select_parameter<ParameterType::recv_count>(args...).value;
    } else {
        plan.note_count_exchange();
        plan.dispatch(
            "XMPI_Scatter(recv_count)",
            [&] {
                return XMPI_Scatter(
                    counts.data(), 1, XMPI_INT, &count, 1, XMPI_INT, root_rank, comm);
            },
            PlanStage::infer_counts);
    }

    auto recv =
        PrepareRecv<T>{}(plan, static_cast<std::size_t>(count), /*participate=*/true, args...);
    Dispatch{}(plan, "XMPI_Scatterv", [&] {
        return XMPI_Scatterv(
            send.data(), counts.data(), displs.data(), mpi_datatype<T>(), recv.data(), count,
            mpi_datatype<buffer_value_t<decltype(recv)>>(), root_rank, comm);
    });
    return AssembleResult{}(std::move(recv));
}

} // namespace kamping::internal
