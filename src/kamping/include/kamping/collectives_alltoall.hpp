/// @file collectives_alltoall.hpp
/// @brief Wrappers for the all-to-all family: alltoall, alltoallv. Both
/// dispatch through the call plan of pipeline.hpp.
#pragma once

#include "kamping/pipeline.hpp"

namespace kamping::internal {

/// @brief comm.alltoall(send_buf(v), [recv_buf]): regular all-to-all; the
/// send buffer must hold size() equal slices.
template <typename... Args>
auto alltoall_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::send_buf, Args...>), "alltoall", "send_buf");
    KAMPING_CHECK_PARAMETERS(
        Args, "alltoall", ParameterType::send_buf, ParameterType::recv_buf,
        ParameterType::send_count);
    CollectivePlan<plan_ops::alltoall, Args...> plan(comm);
    auto&& send = ResolveSend{}(plan, args...);
    using T = buffer_value_t<decltype(send)>;
    int size = 0;
    XMPI_Comm_size(comm, &size);

    int send_count;
    if constexpr (has_parameter_v<ParameterType::send_count, Args...>) {
        send_count = select_parameter<ParameterType::send_count>(args...).value;
    } else {
        THROWING_KASSERT(
            send.size() % static_cast<std::size_t>(size) == 0,
            "alltoall send buffer size (" << send.size()
                                          << ") must be divisible by the communicator size ("
                                          << size << ")");
        send_count = static_cast<int>(send.size()) / size;
    }

    auto recv = PrepareRecv<T>{}(
        plan, static_cast<std::size_t>(send_count) * static_cast<std::size_t>(size),
        /*participate=*/true, args...);
    Dispatch{}(plan, "XMPI_Alltoall", [&] {
        return XMPI_Alltoall(
            send.data(), send_count, mpi_datatype<T>(), recv.data(), send_count,
            mpi_datatype<buffer_value_t<decltype(recv)>>(), comm);
    });
    return AssembleResult{}(std::move(recv));
}

/// @brief comm.alltoallv(send_buf(v), send_counts(sc), [send_displs],
/// [recv_buf], [recv_counts[_out]], [recv_displs[_out]]).
///
/// The missing receive counts are exchanged with an alltoall of the send
/// counts; missing displacements are local prefix sums. This turns the most
/// boilerplate-heavy MPI call into a two-parameter call (paper, Fig. 7).
template <typename... Args>
auto alltoallv_impl(XMPI_Comm comm, Args&&... args) {
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::send_buf, Args...>), "alltoallv", "send_buf");
    KAMPING_PLAN_REQUIRE(
        (has_parameter_v<ParameterType::send_counts, Args...>), "alltoallv", "send_counts");
    KAMPING_CHECK_PARAMETERS(
        Args, "alltoallv", ParameterType::send_buf, ParameterType::send_counts,
        ParameterType::send_displs, ParameterType::recv_buf, ParameterType::recv_counts,
        ParameterType::recv_displs);
    CollectivePlan<plan_ops::alltoallv, Args...> plan(comm);
    auto&& send = ResolveSend{}(plan, args...);
    using T = buffer_value_t<decltype(send)>;
    int size = 0;
    XMPI_Comm_size(comm, &size);

    auto&& send_counts_buf = select_parameter<ParameterType::send_counts>(args...);
    THROWING_KASSERT(
        send_counts_buf.size() == static_cast<std::size_t>(size),
        "send_counts must hold one entry per rank of the communicator");

    auto send_displs_buf = ComputeDispls<ParameterType::send_displs>{}(
        plan, send_counts_buf, /*participate=*/true, args...);

    // Receive counts: transpose of the send counts, exchanged on demand.
    auto recv_counts_buf = InferCounts<ParameterType::recv_counts>{}(
        plan,
        [&](auto& buffer) {
            buffer.resize_to(static_cast<std::size_t>(size));
            plan.dispatch(
                "XMPI_Alltoall",
                [&] {
                    return XMPI_Alltoall(
                        send_counts_buf.data(), 1, XMPI_INT, buffer.data(), 1, XMPI_INT, comm);
                },
                PlanStage::infer_counts);
        },
        args...);

    auto recv_displs_buf = ComputeDispls<ParameterType::recv_displs>{}(
        plan, recv_counts_buf, /*participate=*/true, args...);

    auto recv = PrepareRecv<T>{}(
        plan, total_count(recv_counts_buf, recv_displs_buf), /*participate=*/true, args...);

    Dispatch{}(plan, "XMPI_Alltoallv", [&] {
        return XMPI_Alltoallv(
            send.data(), send_counts_buf.data(), send_displs_buf.data(), mpi_datatype<T>(),
            recv.data(), recv_counts_buf.data(), recv_displs_buf.data(),
            mpi_datatype<buffer_value_t<decltype(recv)>>(), comm);
    });

    return AssembleResult{}(
        std::move(recv), std::move(recv_counts_buf), std::move(recv_displs_buf),
        std::move(send_displs_buf));
}

} // namespace kamping::internal
