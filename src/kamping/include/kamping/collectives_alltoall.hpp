/// @file collectives_alltoall.hpp
/// @brief Wrappers for the all-to-all family: alltoall, alltoallv.
#pragma once

#include "kamping/collectives_helpers.hpp"

namespace kamping::internal {

/// @brief comm.alltoall(send_buf(v), [recv_buf]): regular all-to-all; the
/// send buffer must hold size() equal slices.
template <typename... Args>
auto alltoall_impl(XMPI_Comm comm, Args&&... args) {
    static_assert(
        has_parameter_v<ParameterType::send_buf, Args...>,
        "alltoall requires a send_buf(...) parameter");
    KAMPING_CHECK_PARAMETERS(
        Args, "alltoall", ParameterType::send_buf, ParameterType::recv_buf,
        ParameterType::send_count);
    auto&& send = select_parameter<ParameterType::send_buf>(args...);
    using T = buffer_value_t<decltype(send)>;
    int size = 0;
    XMPI_Comm_size(comm, &size);

    int send_count;
    if constexpr (has_parameter_v<ParameterType::send_count, Args...>) {
        send_count = select_parameter<ParameterType::send_count>(args...).value;
    } else {
        THROWING_KASSERT(
            send.size() % static_cast<std::size_t>(size) == 0,
            "alltoall send buffer size (" << send.size()
                                          << ") must be divisible by the communicator size ("
                                          << size << ")");
        send_count = static_cast<int>(send.size()) / size;
    }

    auto recv = take_parameter_or_default<ParameterType::recv_buf>(
        default_recv_buf_factory<T>(), args...);
    recv.resize_to(static_cast<std::size_t>(send_count) * static_cast<std::size_t>(size));
    throw_on_error(
        XMPI_Alltoall(
            send.data(), send_count, mpi_datatype<T>(), recv.data(), send_count,
            mpi_datatype<buffer_value_t<decltype(recv)>>(), comm),
        "XMPI_Alltoall");
    return make_result(std::move(recv));
}

/// @brief comm.alltoallv(send_buf(v), send_counts(sc), [send_displs],
/// [recv_buf], [recv_counts[_out]], [recv_displs[_out]]).
///
/// The missing receive counts are exchanged with an alltoall of the send
/// counts; missing displacements are local prefix sums. This turns the most
/// boilerplate-heavy MPI call into a two-parameter call (paper, Fig. 7).
template <typename... Args>
auto alltoallv_impl(XMPI_Comm comm, Args&&... args) {
    static_assert(
        has_parameter_v<ParameterType::send_buf, Args...>,
        "alltoallv requires a send_buf(...) parameter");
    static_assert(
        has_parameter_v<ParameterType::send_counts, Args...>,
        "alltoallv requires a send_counts(...) parameter");
    KAMPING_CHECK_PARAMETERS(
        Args, "alltoallv", ParameterType::send_buf, ParameterType::send_counts,
        ParameterType::send_displs, ParameterType::recv_buf, ParameterType::recv_counts,
        ParameterType::recv_displs);
    auto&& send = select_parameter<ParameterType::send_buf>(args...);
    using T = buffer_value_t<decltype(send)>;
    int size = 0;
    XMPI_Comm_size(comm, &size);

    auto&& send_counts_buf = select_parameter<ParameterType::send_counts>(args...);
    THROWING_KASSERT(
        send_counts_buf.size() == static_cast<std::size_t>(size),
        "send_counts must hold one entry per rank of the communicator");

    auto send_displs_buf = take_parameter_or_default<ParameterType::send_displs>(
        default_counts_factory<ParameterType::send_displs>(), args...);
    constexpr bool send_displs_are_input =
        std::remove_cvref_t<decltype(send_displs_buf)>::kind == BufferKind::in;
    if constexpr (!send_displs_are_input) {
        compute_displacements(send_counts_buf, send_displs_buf);
    }

    // Receive counts: transpose of the send counts, exchanged on demand.
    auto recv_counts_buf = take_parameter_or_default<ParameterType::recv_counts>(
        default_counts_factory<ParameterType::recv_counts>(), args...);
    constexpr bool recv_counts_are_input =
        std::remove_cvref_t<decltype(recv_counts_buf)>::kind == BufferKind::in;
    if constexpr (!recv_counts_are_input) {
        recv_counts_buf.resize_to(static_cast<std::size_t>(size));
        throw_on_error(
            XMPI_Alltoall(
                send_counts_buf.data(), 1, XMPI_INT, recv_counts_buf.data(), 1, XMPI_INT, comm),
            "XMPI_Alltoall(recv_counts)");
    }

    auto recv_displs_buf = take_parameter_or_default<ParameterType::recv_displs>(
        default_counts_factory<ParameterType::recv_displs>(), args...);
    constexpr bool recv_displs_are_input =
        std::remove_cvref_t<decltype(recv_displs_buf)>::kind == BufferKind::in;
    if constexpr (!recv_displs_are_input) {
        compute_displacements(recv_counts_buf, recv_displs_buf);
    }

    auto recv = take_parameter_or_default<ParameterType::recv_buf>(
        default_recv_buf_factory<T>(), args...);
    recv.resize_to(total_count(recv_counts_buf, recv_displs_buf));

    throw_on_error(
        XMPI_Alltoallv(
            send.data(), send_counts_buf.data(), send_displs_buf.data(), mpi_datatype<T>(),
            recv.data(), recv_counts_buf.data(), recv_displs_buf.data(),
            mpi_datatype<buffer_value_t<decltype(recv)>>(), comm),
        "XMPI_Alltoallv");

    return make_result(
        std::move(recv), std::move(recv_counts_buf), std::move(recv_displs_buf),
        std::move(send_displs_buf));
}

} // namespace kamping::internal
