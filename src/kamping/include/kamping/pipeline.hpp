/// @file pipeline.hpp
/// @brief The compile-time call plan behind every KaMPIng wrapper.
///
/// Each binding operation is the same five-stage sequence (the paper's
/// Fig. 2): select parameters, infer missing counts, compute displacements,
/// size receive buffers per their resize policy, dispatch to XMPI, assemble
/// the result. This header factors that sequence into stage functors
/// (ResolveSend, InferCounts, ComputeDispls, PrepareRecv, Dispatch,
/// AssembleResult) composed per operation by a CollectivePlan template, so
/// wrappers and plugins state *which* stages they need instead of re-rolling
/// the boilerplate.
///
/// The plan doubles as a tracing seam: a compile-time TraceSink policy
/// decides what a plan records. The default sink forwards to
/// xmpi::profile's span storage but is gated on a single relaxed atomic
/// load, so with tracing disabled the entire seam costs one branch per
/// operation (verified by bench_overhead_micro); compiling with
/// -DKAMPING_TRACING_DISABLED selects the no-op sink and removes even that.
/// When tracing is enabled (kamping::tracing::enable()), each plan emits one
/// span per operation: wall time, bytes in/out, whether a count exchange was
/// instantiated, and the xmpi collective algorithm chosen.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "kamping/collectives_helpers.hpp"
#include "xmpi/api.hpp"
#include "xmpi/profile.hpp"

namespace kamping::tracing {

/// @brief True iff span recording is enabled (process-wide).
inline bool enabled() { return xmpi::profile::tracing_enabled(); }
/// @brief Enables span recording for all subsequent operations.
inline void enable() { xmpi::profile::set_tracing_enabled(true); }
/// @brief Disables span recording. Operations already in flight finish
/// their span (the plan latches the flag at construction).
inline void disable() { xmpi::profile::set_tracing_enabled(false); }

/// @brief Sink that records nothing; active() is a compile-time false, so
/// every tracing branch in the plan is dead code the optimizer removes.
struct NoopSink {
    static constexpr bool active() { return false; }
    static void record(xmpi::profile::Span const&) {}
};

/// @brief Sink that feeds spans into xmpi::profile's span log; activity is
/// one relaxed atomic load.
struct ProfileSink {
    static bool active() { return xmpi::profile::tracing_enabled(); }
    static void record(xmpi::profile::Span const& span) { xmpi::profile::record_span(span); }
};

#ifdef KAMPING_TRACING_DISABLED
using DefaultSink = NoopSink;
#else
using DefaultSink = ProfileSink;
#endif

} // namespace kamping::tracing

namespace kamping::internal {

/// @brief The stages of a call plan; dispatch errors are stamped with the
/// stage they occurred in.
enum class PlanStage {
    resolve_send,
    infer_counts,
    compute_displs,
    prepare_recv,
    dispatch,
    assemble_result,
};

[[nodiscard]] constexpr char const* plan_stage_name(PlanStage stage) {
    switch (stage) {
        case PlanStage::resolve_send:
            return "resolve_send";
        case PlanStage::infer_counts:
            return "infer_counts";
        case PlanStage::compute_displs:
            return "compute_displs";
        case PlanStage::prepare_recv:
            return "prepare_recv";
        case PlanStage::dispatch:
            return "dispatch";
        case PlanStage::assemble_result:
            return "assemble_result";
    }
    return "unknown";
}

/// @brief Compile-time identity of a planned operation. Passed as a
/// non-type template parameter so the operation name is baked into the
/// plan's type (and thus into error messages and spans) at zero cost.
struct OpDescriptor {
    char const* name;
};

/// @brief One descriptor per planned operation, shared by wrappers, plugins
/// and tests.
namespace plan_ops {
inline constexpr OpDescriptor gather{"gather"};
inline constexpr OpDescriptor gatherv{"gatherv"};
inline constexpr OpDescriptor allgather{"allgather"};
inline constexpr OpDescriptor allgatherv{"allgatherv"};
inline constexpr OpDescriptor alltoall{"alltoall"};
inline constexpr OpDescriptor alltoallv{"alltoallv"};
inline constexpr OpDescriptor scatter{"scatter"};
inline constexpr OpDescriptor scatterv{"scatterv"};
inline constexpr OpDescriptor reduce{"reduce"};
inline constexpr OpDescriptor allreduce{"allreduce"};
inline constexpr OpDescriptor scan{"scan"};
inline constexpr OpDescriptor exscan{"exscan"};
inline constexpr OpDescriptor bcast{"bcast"};
inline constexpr OpDescriptor bcast_single{"bcast_single"};
inline constexpr OpDescriptor barrier{"barrier"};
inline constexpr OpDescriptor send{"send"};
inline constexpr OpDescriptor ssend{"ssend"};
inline constexpr OpDescriptor recv{"recv"};
inline constexpr OpDescriptor probe{"probe"};
inline constexpr OpDescriptor iprobe{"iprobe"};
inline constexpr OpDescriptor isend{"isend"};
inline constexpr OpDescriptor issend{"issend"};
inline constexpr OpDescriptor irecv{"irecv"};
inline constexpr OpDescriptor ibcast{"ibcast"};
inline constexpr OpDescriptor iallreduce{"iallreduce"};
inline constexpr OpDescriptor comm_dup{"comm_dup"};
inline constexpr OpDescriptor comm_split{"comm_split"};
inline constexpr OpDescriptor grid_alltoallv{"grid_alltoallv"};
inline constexpr OpDescriptor hypergrid_alltoallv{"hypergrid_alltoallv"};
inline constexpr OpDescriptor sparse_alltoallv{"sparse_alltoallv"};
inline constexpr OpDescriptor ulfm_recovery{"ulfm_recovery"};
inline constexpr OpDescriptor elastic_sync{"elastic_sync"};
inline constexpr OpDescriptor win_create{"win_create"};
inline constexpr OpDescriptor win_allocate{"win_allocate"};
inline constexpr OpDescriptor win_free{"win_free"};
inline constexpr OpDescriptor put{"put"};
inline constexpr OpDescriptor get{"get"};
inline constexpr OpDescriptor accumulate{"accumulate"};
inline constexpr OpDescriptor fetch_op{"fetch_op"};
inline constexpr OpDescriptor compare_swap{"compare_swap"};
inline constexpr OpDescriptor win_fence{"win_fence"};
inline constexpr OpDescriptor win_lock{"win_lock"};
inline constexpr OpDescriptor win_unlock{"win_unlock"};
inline constexpr OpDescriptor bcast_plan{"bcast_plan"};
inline constexpr OpDescriptor allreduce_plan{"allreduce_plan"};
} // namespace plan_ops

/// @brief Uniform missing-parameter diagnostic for planned operations; the
/// negative-compile tests assert on this exact wording.
#define KAMPING_PLAN_REQUIRE(COND, OP, PARAM)                                                     \
    static_assert(COND, "the " OP " call plan is missing its required " PARAM " parameter")

/// @brief One in-flight binding operation: error-stamping dispatcher plus
/// tracing state. Constructed at wrapper entry, destroyed after the result
/// is assembled — the emitted span therefore covers all six stages.
///
/// @tparam Op The operation's descriptor (plan_ops::...).
/// @tparam TraceSink Tracing policy; tracing::NoopSink compiles all
/// recording away, tracing::ProfileSink gates it on one atomic load.
/// The tracing flag is latched at construction, so a concurrent
/// enable()/disable() yields either a complete span or none.
template <OpDescriptor const& Op, typename TraceSink>
class BasicCallPlan {
public:
    explicit BasicCallPlan(XMPI_Comm comm) : comm_(comm), tracing_(TraceSink::active()) {
        if (tracing_) {
            (void)xmpi::profile::take_algorithm();  // drop stale notes
            (void)xmpi::profile::take_epoch_wait(); // (RMA sync of earlier ops)
            start_s_ = XMPI_Wtime();
        }
    }

    BasicCallPlan(BasicCallPlan const&) = delete;
    BasicCallPlan& operator=(BasicCallPlan const&) = delete;

    ~BasicCallPlan() {
        if (tracing_) {
            xmpi::profile::Span span;
            span.op = Op.name;
            span.algorithm = xmpi::profile::take_algorithm();
            span.start_s = start_s_;
            span.duration_s = XMPI_Wtime() - start_s_;
            span.bytes_in = bytes_in_;
            span.bytes_out = bytes_out_;
            span.count_exchange = count_exchange_;
            span.epoch_wait_s = xmpi::profile::take_epoch_wait();
            span.bytes_put = bytes_put_;
            span.bytes_got = bytes_got_;
            // queue_s stays 0: the plan's span covers the wrapper itself.
            // Operations routed through the progress engine get a second
            // span from the engine tagged with their queue-wait time.
            try {
                TraceSink::record(span);
            } catch (...) {
                // Recording must never mask the operation's own exception.
            }
        }
    }

    [[nodiscard]] XMPI_Comm comm() const { return comm_; }

    /// @brief Runs an XMPI call and converts a failure code into an
    /// exception stamped "<xmpi_function> [<op>/<stage>]".
    template <typename Fn>
    void dispatch(char const* xmpi_function, Fn&& fn, PlanStage stage = PlanStage::dispatch) {
        if (int const code = std::forward<Fn>(fn)(); code != XMPI_SUCCESS) {
            throw_op_error(code, xmpi_function, Op.name, plan_stage_name(stage));
        }
    }

    /// @name Span bookkeeping (no-ops while the latched flag is off)
    /// @{
    void note_bytes_in(std::uint64_t bytes) {
        if (tracing_) {
            bytes_in_ += bytes;
        }
    }
    void note_bytes_out(std::uint64_t bytes) {
        if (tracing_) {
            bytes_out_ += bytes;
        }
    }
    void note_count_exchange() {
        if (tracing_) {
            count_exchange_ = true;
        }
    }
    void note_bytes_put(std::uint64_t bytes) {
        if (tracing_) {
            bytes_put_ += bytes;
        }
    }
    void note_bytes_got(std::uint64_t bytes) {
        if (tracing_) {
            bytes_got_ += bytes;
        }
    }
    /// @}

private:
    XMPI_Comm comm_;
    bool tracing_;
    double start_s_ = 0.0;
    std::uint64_t bytes_in_ = 0;
    std::uint64_t bytes_out_ = 0;
    std::uint64_t bytes_put_ = 0;
    std::uint64_t bytes_got_ = 0;
    bool count_exchange_ = false;
};

/// @brief The plan type the wrappers instantiate: one per operation and
/// argument list, traced through the default sink. The Args anchor the
/// plan's type to the call site, mirroring how the named-parameter set
/// shapes the generated code path.
template <OpDescriptor const& Op, typename... Args>
using CollectivePlan = BasicCallPlan<Op, tracing::DefaultSink>;

// ---------------------------------------------------------------------------
// Stage functors
// ---------------------------------------------------------------------------

/// @brief Stage 1: selects the send buffer and notes its payload size.
struct ResolveSend {
    template <typename Plan, typename... Args>
    decltype(auto) operator()(Plan& plan, Args&&... args) const {
        auto&& send = select_parameter<ParameterType::send_buf>(args...);
        plan.note_bytes_in(send.size() * sizeof(buffer_value_t<decltype(send)>));
        return std::forward<decltype(send)>(send);
    }
};

/// @brief Stage 2: takes the caller's count buffer, or infers the counts by
/// running @p exchange — a callable performing the operation-specific count
/// exchange (allgather of the send count, alltoall of the send counts, ...).
/// The exchange is *instantiated only when the parameter is absent or
/// out-requested*: with caller-provided counts its body never compiles,
/// preserving the zero-overhead contract.
template <ParameterType Parameter>
struct InferCounts {
    template <typename Plan, typename Exchange, typename... Args>
    auto operator()(Plan& plan, Exchange&& exchange, Args&&... args) const {
        auto counts =
            take_parameter_or_default<Parameter>(default_counts_factory<Parameter>(), args...);
        if constexpr (std::remove_cvref_t<decltype(counts)>::kind != BufferKind::in) {
            plan.note_count_exchange();
            std::forward<Exchange>(exchange)(counts);
        }
        return counts;
    }
};

/// @brief Stage 3: takes the caller's displacement buffer, or computes an
/// exclusive prefix sum over @p counts. @p participate gates the local
/// computation for rooted collectives (non-roots keep the buffer empty).
template <ParameterType Parameter>
struct ComputeDispls {
    template <typename Plan, typename CountsBuffer, typename... Args>
    auto operator()(
        [[maybe_unused]] Plan& plan, CountsBuffer const& counts, bool participate,
        Args&&... args) const {
        auto displs =
            take_parameter_or_default<Parameter>(default_counts_factory<Parameter>(), args...);
        if constexpr (std::remove_cvref_t<decltype(displs)>::kind != BufferKind::in) {
            if (participate) {
                compute_displacements(counts, displs);
            }
        }
        return displs;
    }
};

/// @brief Stage 4: takes or allocates the receive buffer, resizes it to
/// @p elements per its resize policy, and notes the outgoing payload size.
/// @p participate gates sizing for rooted collectives.
template <typename T>
struct PrepareRecv {
    template <typename Plan, typename... Args>
    auto operator()(Plan& plan, std::size_t elements, bool participate, Args&&... args) const {
        auto recv =
            take_parameter_or_default<ParameterType::recv_buf>(default_recv_buf_factory<T>(), args...);
        if (participate) {
            recv.resize_to(elements);
            plan.note_bytes_out(elements * sizeof(buffer_value_t<decltype(recv)>));
        }
        return recv;
    }
};

/// @brief Stage 5: dispatches the main XMPI call through the plan, which
/// stamps op and stage onto any error.
struct Dispatch {
    template <typename Plan, typename Fn>
    void operator()(Plan& plan, char const* xmpi_function, Fn&& fn) const {
        plan.dispatch(xmpi_function, std::forward<Fn>(fn));
    }
};

/// @brief Stage 6: moves the buffers into the operation's result following
/// the 0/1/n rule of make_result.
struct AssembleResult {
    template <typename... Buffers>
    auto operator()(Buffers&&... buffers) const {
        return make_result(std::forward<Buffers>(buffers)...);
    }
};

} // namespace kamping::internal
