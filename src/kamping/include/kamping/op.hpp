/// @file op.hpp
/// @brief Reduction operation parameters: built-in MPI constants, STL
/// functors mapped to built-in constants (enabling MPI-side optimization),
/// and arbitrary lambdas (paper, Section II "reduction via lambda").
#pragma once

#include <functional>
#include <type_traits>
#include <utility>

#include "kamping/parameter_type.hpp"
#include "xmpi/api.hpp"

namespace kamping {

namespace ops {

/// @brief Commutativity tags for user-provided reduction functions. MPI can
/// use faster reduction algorithms for commutative operations but cannot
/// verify commutativity — the user asserts it explicitly.
struct commutative_tag {};
struct non_commutative_tag {};
inline constexpr commutative_tag commutative{};
inline constexpr non_commutative_tag non_commutative{};

/// @brief Function objects without std:: equivalents.
struct max {
    template <typename T>
    T operator()(T const& lhs, T const& rhs) const {
        return lhs > rhs ? lhs : rhs;
    }
};
struct min {
    template <typename T>
    T operator()(T const& lhs, T const& rhs) const {
        return lhs < rhs ? lhs : rhs;
    }
};

} // namespace ops

namespace internal {

template <typename, template <typename> class>
struct is_specialization : std::false_type {};
template <typename T, template <typename> class F>
struct is_specialization<F<T>, F> : std::true_type {};

/// @brief Maps known functors to built-in MPI operation handles at compile
/// time; yields nullptr for unknown functors (paper: "mapping STL functors
/// such as std::plus to the corresponding built-in MPI constant ... which
/// may enable optimization by the MPI implementation").
template <typename Fn>
XMPI_Op builtin_op_handle() {
    using D = std::remove_cvref_t<Fn>;
    if constexpr (is_specialization<D, std::plus>::value) {
        return XMPI_SUM;
    } else if constexpr (is_specialization<D, std::multiplies>::value) {
        return XMPI_PROD;
    } else if constexpr (is_specialization<D, std::logical_and>::value) {
        return XMPI_LAND;
    } else if constexpr (is_specialization<D, std::logical_or>::value) {
        return XMPI_LOR;
    } else if constexpr (is_specialization<D, std::bit_and>::value) {
        return XMPI_BAND;
    } else if constexpr (is_specialization<D, std::bit_or>::value) {
        return XMPI_BOR;
    } else if constexpr (is_specialization<D, std::bit_xor>::value) {
        return XMPI_BXOR;
    } else if constexpr (std::is_same_v<D, ops::max>) {
        return XMPI_MAX;
    } else if constexpr (std::is_same_v<D, ops::min>) {
        return XMPI_MIN;
    } else {
        return nullptr;
    }
}

template <typename Fn>
constexpr bool is_builtin_mappable =
    is_specialization<std::remove_cvref_t<Fn>, std::plus>::value
    || is_specialization<std::remove_cvref_t<Fn>, std::multiplies>::value
    || is_specialization<std::remove_cvref_t<Fn>, std::logical_and>::value
    || is_specialization<std::remove_cvref_t<Fn>, std::logical_or>::value
    || is_specialization<std::remove_cvref_t<Fn>, std::bit_and>::value
    || is_specialization<std::remove_cvref_t<Fn>, std::bit_or>::value
    || is_specialization<std::remove_cvref_t<Fn>, std::bit_xor>::value
    || std::is_same_v<std::remove_cvref_t<Fn>, ops::max>
    || std::is_same_v<std::remove_cvref_t<Fn>, ops::min>;

/// @brief Thread-local slot carrying the active user functor into the
/// MPI-style trampoline. Valid because xmpi applies reductions in the
/// calling rank's own thread; nesting is handled by save/restore.
inline void*& active_user_op_context() {
    thread_local void* context = nullptr;
    return context;
}

/// @brief MPI_User_function-compatible trampoline applying a C++ functor
/// element-wise: inout[i] = fn(in[i], inout[i]) — `in` is the contribution
/// of the lower-ranked operand, matching MPI's reduction order.
template <typename Fn, typename T>
void user_op_trampoline(void* in, void* inout, int* len, xmpi::Datatype* const*) {
    auto* fn = static_cast<Fn*>(active_user_op_context());
    T* lhs = static_cast<T*>(in);
    T* rhs = static_cast<T*>(inout);
    for (int i = 0; i < *len; ++i) {
        rhs[i] = (*fn)(lhs[i], rhs[i]);
    }
}

/// @brief RAII activation of an operation for one communication call: yields
/// the XMPI_Op handle, wires up the trampoline context for user functors,
/// and releases everything on scope exit.
class OpActivation {
public:
    OpActivation(XMPI_Op handle, bool owned, void* user_context)
        : handle_(handle),
          owned_(owned) {
        if (user_context != nullptr) {
            previous_context_ = active_user_op_context();
            active_user_op_context() = user_context;
            restore_context_ = true;
        }
    }
    ~OpActivation() {
        if (restore_context_) {
            active_user_op_context() = previous_context_;
        }
        if (owned_) {
            XMPI_Op_free(&handle_);
        }
    }
    OpActivation(OpActivation const&) = delete;
    OpActivation& operator=(OpActivation const&) = delete;

    [[nodiscard]] XMPI_Op handle() const { return handle_; }

private:
    XMPI_Op handle_;
    bool owned_;
    bool restore_context_ = false;
    void* previous_context_ = nullptr;
};

} // namespace internal

/// @brief The reduction-operation parameter object. @c Commutative reflects
/// what the user asserted (or what is known for built-in functors).
template <typename Fn, bool Commutative>
class OpParameter {
public:
    static constexpr ParameterType parameter_type = ParameterType::op;
    static constexpr BufferKind kind = BufferKind::in;
    static constexpr bool in_result = false;
    static constexpr bool commutative = Commutative;
    using function_type = Fn;
    /// True iff activate() needs no per-call state (builtin / raw handle) —
    /// required for operations that outlive the initiating call, e.g.
    /// non-blocking collectives.
    static constexpr bool is_stateless =
        std::is_same_v<std::remove_cvref_t<Fn>, XMPI_Op> || internal::is_builtin_mappable<Fn>;

    explicit OpParameter(Fn fn) : fn_(std::move(fn)) {}

    /// @brief Activates the operation for element type T; keep the returned
    /// guard alive for the duration of the wrapped MPI call.
    template <typename T>
    [[nodiscard]] internal::OpActivation activate() {
        if constexpr (std::is_same_v<std::remove_cvref_t<Fn>, XMPI_Op>) {
            return internal::OpActivation(fn_, /*owned=*/false, nullptr);
        } else if constexpr (internal::is_builtin_mappable<Fn>) {
            return internal::OpActivation(
                internal::builtin_op_handle<Fn>(), /*owned=*/false, nullptr);
        } else {
            XMPI_Op handle = nullptr;
            XMPI_Op_create(
                &internal::user_op_trampoline<std::remove_cvref_t<Fn>, T>,
                Commutative ? 1 : 0, &handle);
            return internal::OpActivation(handle, /*owned=*/true, &fn_);
        }
    }

private:
    Fn fn_;
};

/// @brief Named parameter: the reduction operation. Built-in functors
/// (std::plus, std::bit_or, kamping::ops::max, ...) and raw MPI op handles
/// need no commutativity tag; arbitrary lambdas must declare one.
template <typename Fn>
auto op(Fn fn) {
    constexpr bool known =
        std::is_same_v<std::remove_cvref_t<Fn>, XMPI_Op> || internal::is_builtin_mappable<Fn>;
    static_assert(
        known,
        "KaMPIng cannot infer whether this reduction operation is commutative. Pass a "
        "commutativity tag: kamping::op(fn, kamping::ops::commutative) or "
        "kamping::ops::non_commutative.");
    return OpParameter<Fn, true>(std::move(fn));
}

template <typename Fn>
auto op(Fn fn, ops::commutative_tag) {
    return OpParameter<Fn, true>(std::move(fn));
}

template <typename Fn>
auto op(Fn fn, ops::non_commutative_tag) {
    return OpParameter<Fn, false>(std::move(fn));
}

} // namespace kamping
