/// @file pool.hpp
/// @brief Size-classed payload buffer pool of the xmpi transport.
///
/// Every eager send needs an owned payload buffer; allocating it from the
/// heap puts malloc/free on the critical path of *every* message and
/// dominates small-message latency. The pool recycles payload vectors
/// through per-rank sharded freelists bucketed by power-of-two size class,
/// so steady-state traffic performs zero heap allocations: the sender pops
/// a buffer from its shard, the receiver pushes it back after unpacking
/// (buffers migrate between shards with the traffic, which keeps the hot
/// shard warm for ping-pong patterns).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace xmpi::profile {
struct RankCounters;
}

namespace xmpi::detail {

/// @brief A pre-pinned payload reservation of one persistent send request
/// (XMPI_Send_init). The request pins a buffer of the right size class at
/// init time; every restart takes it out, sends it, and the *receiver's*
/// release cycles it straight back into the slot — steady-state restarts
/// therefore touch neither the heap nor the shared pool freelists.
///
/// Shared ownership (shared_ptr) because in-flight messages outlive the
/// request that reserved the slot: a PooledBlock homing here may be parked
/// in an unexpected-message queue long after Request_free.
struct PayloadSlot {
    std::mutex mutex;
    std::vector<std::byte> buffer;
    bool occupied = false; ///< a pinned buffer is parked in @c buffer
};

/// @brief Per-world pool of payload buffers, sharded per rank.
///
/// Buffers are plain `std::vector<std::byte>`, so a payload that is never
/// explicitly released (e.g. an unexpected message dropped at world
/// teardown) is simply freed by its destructor — the pool is a fast path,
/// not an ownership requirement.
class PayloadPool {
public:
    /// Smallest pooled class; requests below are rounded up.
    static constexpr std::size_t kMinClassBytes = 64;
    /// Largest pooled class; larger payloads bypass the pool entirely.
    static constexpr std::size_t kMaxClassBytes = std::size_t{1} << 20;
    /// Freelist depth per (shard, class); bounds pooled memory.
    static constexpr std::size_t kMaxBuffersPerClass = 64;

    explicit PayloadPool(int shards);

    /// @brief Returns a buffer resized to @c bytes. Reuses a pooled buffer
    /// of the matching size class when available (counted as a pool hit on
    /// @c counters), otherwise allocates (a miss). Zero-byte requests and
    /// requests above kMaxClassBytes never touch the pool.
    [[nodiscard]] std::vector<std::byte> acquire(
        std::size_t bytes, profile::RankCounters& counters);

    /// @brief Returns a buffer to the calling rank's shard. Buffers whose
    /// capacity fits no size class, and overfull freelists, drop the buffer
    /// (freed by the vector destructor).
    void release(std::vector<std::byte>&& buffer);

private:
    static constexpr std::size_t kNumClasses = 15; // 64 B .. 1 MiB

    struct Shard {
        std::mutex mutex;
        std::array<std::vector<std::vector<std::byte>>, kNumClasses> freelists;
    };

    /// @brief Smallest class index whose buffers hold >= bytes, or
    /// kNumClasses if the request is unpoolable.
    static std::size_t class_for_request(std::size_t bytes);
    /// @brief Largest class index a buffer of this capacity can serve, or
    /// kNumClasses if it fits none.
    static std::size_t class_for_capacity(std::size_t capacity);
    /// @brief Shard of the calling thread (its world rank, or shard 0 for
    /// unattached threads).
    [[nodiscard]] Shard& my_shard();
    /// @brief Pops a buffer of class @c cls from @c shard into @c out.
    static bool try_pop(Shard& shard, std::size_t cls, std::vector<std::byte>& out);

    std::vector<Shard> shards_;
};

} // namespace xmpi::detail
