/// @file xmpi.hpp
/// @brief Umbrella header for the xmpi substrate: a from-scratch, in-process
/// MPI implementation (ranks are threads) with an alpha/beta network cost
/// model, ULFM-style fault injection, and PMPI-style profiling.
#pragma once

#include "xmpi/api.hpp"       // IWYU pragma: export
#include "xmpi/chaos.hpp"     // IWYU pragma: export
#include "xmpi/comm.hpp"      // IWYU pragma: export
#include "xmpi/datatype.hpp"  // IWYU pragma: export
#include "xmpi/elastic.hpp"   // IWYU pragma: export
#include "xmpi/error.hpp"     // IWYU pragma: export
#include "xmpi/netmodel.hpp"  // IWYU pragma: export
#include "xmpi/op.hpp"        // IWYU pragma: export
#include "xmpi/profile.hpp"   // IWYU pragma: export
#include "xmpi/progress.hpp"  // IWYU pragma: export
#include "xmpi/request.hpp"   // IWYU pragma: export
#include "xmpi/status.hpp"    // IWYU pragma: export
#include "xmpi/tuning.hpp"    // IWYU pragma: export
#include "xmpi/win.hpp"       // IWYU pragma: export
#include "xmpi/world.hpp"     // IWYU pragma: export
