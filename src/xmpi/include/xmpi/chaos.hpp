/// @file chaos.hpp
/// @brief Deterministic, scriptable fault injection for ULFM testing.
///
/// The single-shot `inject_failure()` primitive kills the calling rank at a
/// hard-coded source location; chaos generalizes it into a *seeded fault
/// plan* that is armed for a whole world and fires without any cooperation
/// from the code under test. Injection points ride on the per-rank profile
/// counters (profile.hpp): "kill rank 3 at its 2nd allreduce" means the
/// profiled call counter of Call::allreduce on rank 3 reaching 2 — a value
/// that depends only on that rank's own call sequence, so a plan replayed
/// against the same program fires at bit-identical points regardless of
/// thread scheduling. Probabilistic faults draw from a per-fault counter
/// RNG seeded by the plan seed, preserving the same guarantee.
///
/// Two trigger families are inherently scheduling-dependent and documented
/// as such: wall-clock delays (fire at the victim's first profiled call
/// after the deadline) and runtime hooks that model failure windows *inside*
/// an operation (e.g. Hook::ft_contributed: after contributing to a
/// shrink/agree rendezvous round but before consuming its result — the
/// window that historically hung the rendezvous).
#pragma once

#include <cstdint>
#include <vector>

#include "xmpi/profile.hpp"

namespace xmpi {
class World;
}

namespace xmpi::chaos {

using profile::Call;

/// @brief Matches any profiled entry point (usable wherever a Call selects
/// the operations a fault listens on).
inline constexpr Call any_call = Call::count_;

/// @brief Injection points inside the runtime that are not themselves
/// profiled entry points.
enum class Hook : int {
    /// After contributing to a fault-tolerant rendezvous round (shrink /
    /// agree) but before consuming its result: the mid-round failure window.
    ft_contributed,
    /// Inside win_fence, after entry validation but before the pending-op
    /// drain and the closing barrier: the rank dies mid-epoch with queued
    /// RMA ops, while its peers are (or will be) blocked in the fence.
    ft_win_fence,
    /// Inside win_lock, immediately after acquiring the lock: the rank dies
    /// holding a passive-target lock — the window other origins then need
    /// pruned so they do not wait forever on a dead holder.
    ft_win_lock,
    /// Inside transport_send, immediately after publishing a rendezvous
    /// descriptor but before the payload is claimed: the sender dies while
    /// the receiver may already be matching the descriptor — the receive
    /// must fail with XMPI_ERR_PROC_FAILED instead of waiting forever.
    ft_rendezvous_publish,
    /// Inside the elastic membership rendezvous (World::epoch_sync /
    /// leave_session), after the rank arrived at the open transition round
    /// but before the round produces the next epoch: the rank dies during
    /// the epoch barrier, and the remaining participants must complete the
    /// transition without it (the failure folds into the same round).
    ft_elastic_sync,
};

/// @brief One scheduled fault of a plan. Build via the FaultPlan methods.
struct Fault {
    enum class Trigger : int {
        at_call,       ///< the victim's nth profiled call of kind @c call
        on_entry,      ///< the victim's first matching call after arming
        at_hook,       ///< the victim's nth pass through runtime hook @c hook
        after_delay,   ///< first profiled call once @c delay_seconds elapsed
        probabilistic, ///< every matching call fires with @c probability
    };

    Trigger trigger = Trigger::at_call;
    int victim = -1;              ///< world rank to kill
    Call call = any_call;         ///< operations the fault listens on
    Hook hook = Hook::ft_contributed;
    std::uint64_t nth = 1;        ///< 1-based occurrence (at_call / at_hook)
    double delay_seconds = 0.0;   ///< after_delay trigger
    double probability = 0.0;     ///< probabilistic trigger, in [0, 1]
};

/// @brief A seeded, ordered schedule of faults. Plans are plain values:
/// build one, then arm it for a world (arm_next_world / arm). Arming a copy
/// of the same plan against the same program reproduces the same injection
/// points (see file header for the determinism contract).
class FaultPlan {
public:
    FaultPlan() = default;
    explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

    /// @brief Kills @c victim at its @c nth profiled call of kind @c call
    /// (1-based; bit-reproducible across runs).
    FaultPlan& kill_at_call(int victim, Call call, std::uint64_t nth = 1) {
        faults_.push_back({Fault::Trigger::at_call, victim, call, {}, nth, 0.0, 0.0});
        return *this;
    }

    /// @brief Kills @c victim on its first call of kind @c call observed
    /// after the plan was armed (useful when arming mid-run).
    FaultPlan& kill_on_entry(int victim, Call call) {
        faults_.push_back({Fault::Trigger::on_entry, victim, call, {}, 1, 0.0, 0.0});
        return *this;
    }

    /// @brief Kills @c victim at its @c nth pass through runtime hook
    /// @c hook (e.g. mid-rendezvous; scheduling decides which logical round
    /// that pass belongs to).
    FaultPlan& kill_at_hook(int victim, Hook hook, std::uint64_t nth = 1) {
        faults_.push_back({Fault::Trigger::at_hook, victim, any_call, hook, nth, 0.0, 0.0});
        return *this;
    }

    /// @brief Kills @c victim at its first profiled call after
    /// @c delay_seconds of wall-clock time since arming (not reproducible
    /// across runs by nature).
    FaultPlan& kill_after(int victim, double delay_seconds) {
        faults_.push_back(
            {Fault::Trigger::after_delay, victim, any_call, {}, 1, delay_seconds, 0.0});
        return *this;
    }

    /// @brief Every call of kind @c call on @c victim fires with
    /// @c probability, drawn from a deterministic per-fault RNG seeded by
    /// the plan seed — same seed, same program, same injection point.
    FaultPlan& kill_with_probability(int victim, Call call, double probability) {
        faults_.push_back(
            {Fault::Trigger::probabilistic, victim, call, {}, 1, 0.0, probability});
        return *this;
    }

    [[nodiscard]] std::uint64_t seed() const { return seed_; }
    [[nodiscard]] std::vector<Fault> const& faults() const { return faults_; }
    [[nodiscard]] bool empty() const { return faults_.empty(); }

private:
    std::uint64_t seed_ = 0;
    std::vector<Fault> faults_;
};

/// @brief Record of one fired fault: which plan entry killed which rank at
/// which per-rank occurrence. For call triggers, @c nth is the victim's
/// profile counter value of @c call at the kill; for hook triggers, the
/// victim's pass count through the hook.
struct FiredFault {
    int victim = -1;
    int fault_index = -1; ///< index into FaultPlan::faults()
    Call call = any_call; ///< call at which the fault fired (any_call for hooks)
    std::uint64_t nth = 0;

    friend bool operator==(FiredFault const&, FiredFault const&) = default;
};

/// @brief The armed form of a plan: per-fault firing state. One Engine is
/// owned by the World it is armed on; per-fault state is only ever touched
/// by the fault's victim thread, so no locking is needed beyond the
/// engine-pointer publication in World.
class Engine {
public:
    Engine(FaultPlan plan, double armed_at);

    /// @brief Called by the profiled entry points after bumping the call
    /// counter; @c count is the counter value including this call. Returns
    /// true iff the calling rank must die now.
    bool on_call(int world_rank, Call call, std::uint64_t count);

    /// @brief Called by runtime hook sites. Returns true iff the calling
    /// rank must die now.
    bool on_hook(int world_rank, Hook hook);

    [[nodiscard]] FaultPlan const& plan() const { return plan_; }

private:
    struct FaultState {
        bool fired = false;
        std::uint64_t hook_passes = 0; ///< at_hook occurrence counter
        std::uint64_t rng = 0;         ///< probabilistic trigger stream
    };

    void record(std::size_t index, int world_rank, Call call, std::uint64_t nth);

    FaultPlan plan_;
    double armed_at_;
    bool has_delay_faults_ = false;
    std::vector<FaultState> states_;
};

/// @name Arming
/// @{
/// @brief Stores @c plan for the *next* World constructed in this process;
/// that world arms it before any rank thread starts, so even a rank's first
/// call is injectable. The intended pattern around World::run:
///
///   chaos::arm_next_world(chaos::FaultPlan(seed)
///       .kill_at_call(3, chaos::Call::allreduce, 2));
///   World::run(p, rank_main);
void arm_next_world(FaultPlan plan);

/// @brief Drops a plan staged by arm_next_world that no world consumed yet.
void cancel_pending_plan();

/// @brief Arms @c plan on the calling thread's world, effective immediately.
/// Ranks already inside an operation join the plan at their next profiled
/// call. (Use arm_next_world for from-the-first-call coverage.)
void arm(FaultPlan plan);

/// @brief Disarms the calling thread's world (no further faults fire; the
/// fired log is kept).
void disarm();
/// @}

/// @brief Drains the process-global log of fired faults, normalized by
/// sorting on (victim, fault_index, call, nth) so that two runs of the same
/// plan compare equal independent of thread interleaving.
std::vector<FiredFault> take_fired_log();

/// @name Runtime internals (called by the xmpi implementation)
/// @{
/// @brief Reports that @c world_rank passed @c hook; kills the calling rank
/// (via World::kill_current_rank, which throws RankKilled) if a fault fires.
void hit_hook(World& world, int world_rank, Hook hook);

namespace detail {
/// @brief Consumes a plan staged by arm_next_world into @c world (called
/// from the World constructor, before rank threads exist).
void adopt_pending_plan(World& world);
} // namespace detail
/// @}

} // namespace xmpi::chaos
