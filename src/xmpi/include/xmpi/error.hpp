/// @file error.hpp
/// @brief Error codes and exceptions of the xmpi substrate.
#pragma once

#include <stdexcept>
#include <string>

/// @name XMPI error classes (mirroring the MPI error classes we support)
/// @{
inline constexpr int XMPI_SUCCESS         = 0;
inline constexpr int XMPI_ERR_BUFFER      = 1;
inline constexpr int XMPI_ERR_COUNT       = 2;
inline constexpr int XMPI_ERR_TYPE        = 3;
inline constexpr int XMPI_ERR_TAG         = 4;
inline constexpr int XMPI_ERR_COMM        = 5;
inline constexpr int XMPI_ERR_RANK        = 6;
inline constexpr int XMPI_ERR_REQUEST     = 7;
inline constexpr int XMPI_ERR_ROOT        = 8;
inline constexpr int XMPI_ERR_GROUP       = 9;
inline constexpr int XMPI_ERR_OP          = 10;
inline constexpr int XMPI_ERR_TOPOLOGY    = 11;
inline constexpr int XMPI_ERR_TRUNCATE    = 12;
inline constexpr int XMPI_ERR_INTERN      = 13;
inline constexpr int XMPI_ERR_PENDING     = 14;
/// ULFM: a process taking part in the operation has failed.
inline constexpr int XMPI_ERR_PROC_FAILED = 15;
/// ULFM: the communicator has been revoked.
inline constexpr int XMPI_ERR_REVOKED     = 16;
inline constexpr int XMPI_ERR_ARG         = 17;
inline constexpr int XMPI_ERR_OTHER       = 18;
/// RMA: invalid window handle.
inline constexpr int XMPI_ERR_WIN         = 19;
/// RMA: invalid displacement into a window.
inline constexpr int XMPI_ERR_DISP        = 20;
/// RMA: synchronization misuse (op outside an epoch, unlock without lock,
/// fence while holding passive-target locks, ...).
inline constexpr int XMPI_ERR_RMA_SYNC    = 21;
/// RMA: target access outside the exposed window memory.
inline constexpr int XMPI_ERR_RMA_RANGE   = 22;
/// An array completion (Waitsome/Testsome/Testall) completed at least one
/// request with an error; the per-request statuses carry the real codes.
inline constexpr int XMPI_ERR_IN_STATUS   = 23;
/// Elastic worlds: the communicator belongs to a superseded membership epoch
/// (ranks joined or left since it was built); sync to the current epoch via
/// XMPI_Epoch_sync and retry there.
inline constexpr int XMPI_ERR_EPOCH       = 24;
/// Largest defined error class (codes are dense in [0, LASTCODE]); lets
/// tests and tools iterate every code exhaustively.
inline constexpr int XMPI_ERR_LASTCODE    = XMPI_ERR_EPOCH;
/// @}

namespace xmpi {

/// @brief Returns a human-readable description of an XMPI error code.
char const* error_string(int error_code);

/// @brief Internal exception used to unwind a rank's stack when a failure is
/// injected into it (ULFM testing). Caught by the World runtime; user code
/// should not catch it.
struct RankKilled {
    int rank;
};

/// @brief Exception thrown by the World runtime on invalid usage that cannot
/// be reported via an error code (e.g. calling XMPI functions outside a
/// running world).
class UsageError : public std::logic_error {
public:
    explicit UsageError(std::string const& what) : std::logic_error(what) {}
};

} // namespace xmpi
