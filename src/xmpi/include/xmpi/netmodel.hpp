/// @file netmodel.hpp
/// @brief The alpha/beta network cost model of the xmpi substrate.
///
/// xmpi runs all ranks as threads of one process, so raw message transfer is
/// a memcpy and the cost structure of a cluster interconnect (per-message
/// start-up latency, per-byte bandwidth cost) is absent. For experiments whose
/// *shape* depends on that cost structure (e.g. the grid/sparse all-to-all
/// comparison of the paper's Fig. 10), a World can be configured with an
/// alpha/beta model: each message injection additionally costs
/// `alpha + bytes * beta` seconds, realised by sleeping in the sending thread.
/// Sleeping threads do not occupy the CPU, so ranks pay the cost concurrently,
/// exactly like network injection overhead on a real machine.
#pragma once

#include <chrono>
#include <cstddef>
#include <thread>

namespace xmpi {

/// @brief Per-message cost model: alpha seconds start-up + beta seconds/byte.
struct NetworkModel {
    /// Message start-up latency in seconds (software + injection overhead).
    double alpha = 0.0;
    /// Per-byte cost in seconds (inverse bandwidth).
    double beta = 0.0;

    /// @brief True iff the model induces any delay at all.
    [[nodiscard]] bool enabled() const {
        return alpha > 0.0 || beta > 0.0;
    }

    /// @brief Cost of one message of the given size, in seconds.
    [[nodiscard]] double message_cost(std::size_t bytes) const {
        return alpha + static_cast<double>(bytes) * beta;
    }

    /// @brief Charges the cost of one message to the calling thread.
    void charge(std::size_t bytes) const {
        if (!enabled()) {
            return;
        }
        auto const delay = std::chrono::duration<double>(message_cost(bytes));
        std::this_thread::sleep_for(delay);
    }
};

/// @brief Collective algorithm selection thresholds.
///
/// When a World runs with a network model, collectives compare modeled
/// alpha/beta costs of the candidate algorithms directly. Without a model
/// (the common in-process case), per-message software overhead is the only
/// "alpha", so latency-optimal algorithms (Bruck, recursive doubling,
/// binomial trees) win for small payloads while copy-minimal algorithms
/// (pairwise, ring, linear direct sends) win once memcpy bandwidth
/// dominates. These byte thresholds draw that line; they refer to the
/// *packed per-peer block size* of the collective.
namespace tuning {
/// Largest per-peer block for which Bruck's log2(p)-round alltoall beats the
/// pairwise exchange (Bruck moves each byte ~log2(p)/2 times).
inline constexpr std::size_t bruck_alltoall_max_bytes = 2048;
/// Bruck needs enough ranks for the round savings to pay for its packing.
inline constexpr int bruck_alltoall_min_ranks = 8;
/// Largest per-rank block for which recursive doubling beats the ring
/// allgather (both move the same bytes; doubling has log2(p) rounds).
inline constexpr std::size_t rd_allgather_max_bytes = 32 * 1024;
/// Largest per-child block for which the binomial scatter tree (log2(p)
/// rounds, bytes forwarded through intermediate nodes) beats the root's
/// linear direct sends.
inline constexpr std::size_t binomial_scatter_max_bytes = 16 * 1024;
/// Largest element payload for which the two-level hierarchical allreduce
/// (intra-node reduce, leader-level recursive doubling, intra-node bcast)
/// is preferred over flat recursive doubling when a node grouping
/// (XMPI_NODE_SIZE) is active: the hierarchy roughly halves the total
/// message count but adds tree depth, a trade that pays off while messages
/// are latency-bound.
inline constexpr std::size_t hier_allreduce_max_bytes = 4096;
/// Largest per-rank block for which the two-level hierarchical allgather
/// (intra-node gather, leader ring over node super-blocks, intra-node
/// bcast) is preferred over the flat algorithms when a node grouping is
/// active; beyond it the full-buffer intra-node bcast dominates.
inline constexpr std::size_t hier_allgather_max_bytes = 32 * 1024;
} // namespace tuning

} // namespace xmpi
