/// @file datatype.hpp
/// @brief MPI-style datatypes: builtin types, type constructors, and the
/// pack/unpack engine used by all communication paths.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace xmpi {

/// @brief The builtin element kinds. All user data eventually flattens to
/// runs of these; reduction operations dispatch on them.
enum class BuiltinType : std::uint8_t {
    byte_,       ///< uninterpreted byte (XMPI_BYTE); reductions only for bit ops
    char_,
    signed_char,
    unsigned_char,
    short_,
    unsigned_short,
    int_,
    unsigned_int,
    long_,
    unsigned_long,
    long_long,
    unsigned_long_long,
    float_,
    double_,
    long_double,
    bool_,
};

/// @brief Size in bytes of a builtin element.
std::size_t builtin_size(BuiltinType type);

/// @brief One run in a flattened typemap: @c count consecutive elements of
/// kind @c elem starting at byte offset @c offset from the element base.
struct TypeBlock {
    std::ptrdiff_t offset;
    BuiltinType elem;
    std::size_t count;
};

/// @brief An MPI-style datatype. Immutable once committed; reference counted
/// so that handles may be freed while communication is in flight.
///
/// A datatype describes (a) the *typemap* — where the significant bytes live
/// relative to the element base and what builtin kind they are — and (b) the
/// *extent* — the stride between consecutive elements of this type in a
/// buffer. The pack engine serializes `count` elements into a contiguous
/// payload (concatenated typemap runs); unpack is the inverse.
class Datatype {
public:
    enum class Kind : std::uint8_t { builtin, derived };

    /// @brief Constructs a builtin type (used only for the predefined types).
    explicit Datatype(BuiltinType builtin);

    /// @brief Constructs a derived type from an explicit typemap.
    Datatype(std::vector<TypeBlock> typemap, std::ptrdiff_t lower_bound, std::ptrdiff_t extent);

    /// @name Type constructors (mirroring MPI_Type_*)
    /// @{
    static Datatype* contiguous(int count, Datatype const& oldtype);
    static Datatype* vector(int count, int blocklength, int stride, Datatype const& oldtype);
    static Datatype* indexed(
        int count, int const* blocklengths, int const* displacements, Datatype const& oldtype);
    static Datatype* create_struct(
        int count, int const* blocklengths, std::ptrdiff_t const* displacements,
        Datatype* const* types);
    static Datatype* create_resized(
        Datatype const& oldtype, std::ptrdiff_t lower_bound, std::ptrdiff_t extent);
    /// @brief Contiguous run of @c count uninterpreted bytes (KaMPIng's
    /// default mapping for trivially copyable types).
    static Datatype* contiguous_bytes(std::size_t count);
    /// @}

    [[nodiscard]] Kind kind() const { return kind_; }
    [[nodiscard]] bool is_builtin() const { return kind_ == Kind::builtin; }
    [[nodiscard]] BuiltinType builtin() const { return builtin_; }

    /// @brief Number of significant bytes per element (MPI_Type_size).
    [[nodiscard]] std::size_t size() const { return size_; }
    /// @brief Stride between consecutive elements (MPI_Type_get_extent).
    [[nodiscard]] std::ptrdiff_t extent() const { return extent_; }
    [[nodiscard]] std::ptrdiff_t lower_bound() const { return lb_; }
    [[nodiscard]] std::vector<TypeBlock> const& typemap() const { return typemap_; }

    /// @brief True iff the typemap is a single run of one builtin kind
    /// starting at offset 0 with extent == size (reduction-friendly layout).
    [[nodiscard]] bool is_homogeneous() const { return homogeneous_; }
    /// @brief True iff the packed representation equals the in-memory
    /// representation: the typemap bytes tile [0, size) without gaps or
    /// reordering and consecutive elements are densely strided
    /// (packed_size(count) == extent() * count). Communication of such types
    /// is a straight memcpy, which the transport exploits for its zero-copy
    /// fast path.
    [[nodiscard]] bool is_contiguous() const { return contiguous_; }
    /// @brief For homogeneous types: the builtin kind and element count.
    [[nodiscard]] BuiltinType element_kind() const { return typemap_.front().elem; }
    [[nodiscard]] std::size_t elements_per_item() const { return elements_per_item_; }

    [[nodiscard]] bool committed() const { return committed_; }
    void commit() { committed_ = true; }

    /// @name Reference counting for handle lifetime
    /// @{
    void retain() { refcount_.fetch_add(1, std::memory_order_relaxed); }
    /// @brief Drops one reference; deletes the type when it reaches zero.
    /// Builtin (predefined) types are never deleted.
    void release();
    /// @}

    /// @name Pack engine
    /// @{
    /// @brief Number of payload bytes for @c count elements.
    [[nodiscard]] std::size_t packed_size(std::size_t count) const { return size_ * count; }
    /// @brief Serializes @c count elements starting at @c base into @c out
    /// (which must hold packed_size(count) bytes).
    void pack(void const* base, std::size_t count, std::byte* out) const;
    /// @brief Deserializes @c count elements from @c in into @c base.
    void unpack(std::byte const* in, std::size_t count, void* base) const;
    /// @}

private:
    Kind kind_;
    BuiltinType builtin_ = BuiltinType::byte_;
    std::size_t size_ = 0;
    std::ptrdiff_t lb_ = 0;
    std::ptrdiff_t extent_ = 0;
    std::vector<TypeBlock> typemap_;
    bool homogeneous_ = false;
    bool contiguous_ = false;
    std::size_t elements_per_item_ = 0;
    bool committed_ = false;
    std::atomic<int> refcount_{1};

    void finalize_layout();
};

/// @name Predefined datatype handles
/// @{
Datatype* predefined_type(BuiltinType type);
/// @}

} // namespace xmpi
