/// @file world.hpp
/// @brief The xmpi runtime: a "world" of ranks realised as threads.
///
/// A World plays the role of an MPI job: it owns the rank mailboxes, the
/// world communicator, context-id allocation, the network model, failure
/// state (for ULFM testing) and the profiling counters. `World::run(p, fn)`
/// spawns p threads, each of which becomes one rank; a thread-local rank
/// context makes XMPI_COMM_WORLD and the calling rank resolvable from
/// anywhere, so application code looks exactly like MPI code.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "xmpi/comm.hpp"
#include "xmpi/error.hpp"
#include "xmpi/mailbox.hpp"
#include "xmpi/netmodel.hpp"
#include "xmpi/pool.hpp"
#include "xmpi/profile.hpp"

namespace xmpi {

namespace chaos {
class Engine;
}

namespace detail {
struct ElasticState;
}

class Win;

class World {
public:
    /// @brief Creates a world of @c size ranks. Threads are attached via
    /// attach_current_thread(); prefer the run() convenience wrapper.
    ///
    /// @param capacity When > 0, the world is *elastic*: up to @c capacity
    /// ranks may ever exist in it, and new ranks can join a running world
    /// via open_session() (and leave via leave_session()) — see elastic.hpp
    /// for the membership-epoch state machine. 0 (the default) keeps the
    /// classic fixed-membership world with zero elastic overhead.
    explicit World(int size, NetworkModel model = {}, int capacity = 0);
    ~World();

    World(World const&) = delete;
    World& operator=(World const&) = delete;

    /// @brief Spawns @c size rank threads, runs @c rank_main on each, joins.
    /// If a rank throws, the remaining ranks observe it as a process failure
    /// (preventing deadlock) and the first exception is rethrown after join.
    static void run(int size, std::function<void()> rank_main, NetworkModel model = {});

    /// @brief As run(), but the main function receives the rank id.
    static void run_ranked(int size, std::function<void(int)> rank_main, NetworkModel model = {});

    [[nodiscard]] int size() const { return size_; }
    [[nodiscard]] Comm* world_comm() { return world_comm_; }
    [[nodiscard]] NetworkModel const& network_model() const { return model_; }
    void set_network_model(NetworkModel model) { model_ = model; }

    [[nodiscard]] detail::Mailbox& mailbox(int world_rank) { return *mailboxes_[world_rank]; }
    [[nodiscard]] profile::RankCounters& counters(int world_rank) {
        return *counters_[world_rank];
    }
    /// @brief Shared payload buffer pool of this world's transport.
    [[nodiscard]] detail::PayloadPool& payload_pool() { return payload_pool_; }
    /// @brief The lock-free per-(src,dst) transport rings of this world.
    [[nodiscard]] detail::RingRegistry& rings() { return *rings_; }

    /// @brief Allocates a fresh context id (unique within this world).
    int allocate_context() { return next_context_.fetch_add(1, std::memory_order_relaxed); }

    /// @name Failure state (ULFM)
    /// @{
    [[nodiscard]] bool is_failed(int world_rank) const {
        return failed_flags_[static_cast<std::size_t>(world_rank)].load(std::memory_order_acquire);
    }
    [[nodiscard]] bool any_failed() const {
        return num_failed_.load(std::memory_order_acquire) > 0;
    }
    /// @brief Marks the calling rank failed, wakes every blocked thread, and
    /// unwinds the rank's stack via RankKilled.
    [[noreturn]] void kill_current_rank();
    /// @brief Marks a rank failed without unwinding (used when a rank thread
    /// exits via an exception).
    void mark_failed(int world_rank);
    /// @brief Wakes all threads blocked in any mailbox or sync structure.
    void wake_all();
    /// @}

    /// @name Fault injection (chaos.hpp)
    /// @{
    /// @brief The armed fault-injection engine, or nullptr. Checked on every
    /// profiled call; a single acquire load when disarmed.
    [[nodiscard]] chaos::Engine* chaos_engine() const {
        return chaos_engine_.load(std::memory_order_acquire);
    }
    /// @brief Arms @c engine for this world (replacing any armed one).
    /// Superseded engines stay alive until the world is destroyed, so rank
    /// threads may keep reading a stale engine pointer race-free.
    void install_chaos(std::unique_ptr<chaos::Engine> engine);
    /// @brief Disarms fault injection.
    void clear_chaos() { chaos_engine_.store(nullptr, std::memory_order_release); }
    /// @}

    /// @name Thread attachment
    /// @{
    void attach_current_thread(int world_rank);
    void detach_current_thread();
    /// @}

    /// @name Elastic membership (sessions-style grow/shrink, elastic.hpp)
    /// @{
    [[nodiscard]] bool elastic_enabled() const { return elastic_ != nullptr; }
    /// @brief Upper bound on the number of ranks this world can ever hold
    /// (== size() for non-elastic worlds). Rank slots are never reused.
    [[nodiscard]] int capacity() const { return capacity_; }
    /// @brief Number of rank slots ever created (initial + joined); valid
    /// bound for per-rank iteration (counters, mailboxes).
    [[nodiscard]] int rank_slots() const { return rank_slots_.load(std::memory_order_acquire); }
    /// @brief The current membership epoch (0 until the first transition;
    /// constant 0 in non-elastic worlds). One relaxed atomic load.
    [[nodiscard]] std::uint64_t membership_epoch() const {
        return membership_epoch_.load(std::memory_order_acquire);
    }
    /// @brief Attaches the calling (unattached) thread as a *new* rank of a
    /// running elastic world and blocks until a membership transition admits
    /// it. Returns the new world rank. Throws UsageError when the world is
    /// not elastic or its capacity is exhausted.
    int open_session();
    /// @brief Retires the calling rank: announces the leave, participates in
    /// the membership transition that excludes it, and detaches the thread.
    void leave_session();
    /// @brief Membership-epoch rendezvous: returns a *retained* handle to
    /// the current-epoch communicator, first running (or joining) a
    /// transition if joins, leaves, failures, or a revocation are pending.
    /// The caller releases the handle (XMPI_Comm_free).
    [[nodiscard]] Comm* epoch_sync();
    /// @brief True iff a membership transition has been requested (join,
    /// leave, or failure) that epoch_sync has not yet resolved. Cheap
    /// (atomic hint); epoch_sync recomputes the truth.
    [[nodiscard]] bool membership_pending() const;
    /// @brief Cause of the most recent transition ("grow", "shrink",
    /// "failure", a "+"-combination, or "revoked"); "" before the first.
    [[nodiscard]] char const* last_transition_cause() const;
    /// @brief Convenience wrapper running @c session_main as a dynamically
    /// joined rank on the calling thread: open_session → session_main(rank)
    /// → leave_session, absorbing an injected failure (RankKilled) the way
    /// run_ranked does for static ranks.
    void run_session(std::function<void(int)> session_main);
    /// @brief True iff messages carrying @c context belong to a superseded
    /// membership epoch and must be dropped at delivery. Only the per-epoch
    /// elastic communicators register their contexts, so everything else
    /// (derived comms, non-elastic worlds) is never affected.
    [[nodiscard]] bool context_is_stale(int context) const;
    /// @}

private:
    int size_;
    int capacity_;
    NetworkModel model_;
    detail::PayloadPool payload_pool_; ///< must outlive the rings + mailboxes
    std::unique_ptr<detail::RingRegistry> rings_; ///< destroyed after mailboxes
    std::vector<std::unique_ptr<detail::Mailbox>> mailboxes_;
    std::vector<std::unique_ptr<profile::RankCounters>> counters_;
    std::unique_ptr<std::atomic<bool>[]> failed_flags_;
    std::atomic<int> num_failed_{0};
    std::atomic<int> next_context_{0};
    Comm* world_comm_ = nullptr;
    std::vector<Comm*> registered_comms_; // for wake_all on ibarrier/ft syncs
    std::vector<Win*> registered_wins_;   // for wake_all on lock/fence waits
    std::mutex registered_comms_mutex_;
    std::atomic<chaos::Engine*> chaos_engine_{nullptr};
    std::vector<std::unique_ptr<chaos::Engine>> chaos_engines_; ///< current + superseded
    std::mutex chaos_mutex_;

    /// @name Elastic membership state (null for non-elastic worlds)
    /// @{
    std::unique_ptr<detail::ElasticState> elastic_;
    std::atomic<int> rank_slots_;
    std::atomic<std::uint64_t> membership_epoch_{0};
    std::atomic<bool> transition_pending_{false};
    /// Context id → birth epoch of the epoch-gated communicators; consulted
    /// (shared-locked) per delivered message, but only in elastic worlds.
    std::unordered_map<int, std::uint64_t> context_epochs_;
    mutable std::shared_mutex context_epoch_mutex_;
    /// @}

    void register_context_epoch(int context, std::uint64_t epoch);
    /// @name Membership-transition internals (elastic.cpp; callers hold the
    /// elastic mutex)
    /// @{
    void create_rank_slot_locked(int slot);
    [[nodiscard]] bool needs_transition_locked() const;
    [[nodiscard]] bool round_complete_locked() const;
    void request_transition_locked();
    void perform_transition_locked(int producer);
    /// @}

    friend class Comm;
    void register_comm(Comm* comm);
    void unregister_comm(Comm* comm);

    friend class Win;
    void register_win(Win* win);
    void unregister_win(Win* win);
};

namespace detail {

/// @brief Thread-local binding of the current thread to (world, rank).
struct RankContext {
    World* world = nullptr;
    int world_rank = UNDEFINED;
};

/// @brief The calling thread's rank context; world == nullptr outside run().
RankContext& current_context();

/// @brief The calling thread's world; throws UsageError if not attached.
World& current_world();

/// @brief The calling thread's world rank; throws UsageError if not attached.
int current_world_rank();

/// @brief The world communicator handle of the calling thread's world.
Comm* current_world_comm();

} // namespace detail

/// @brief ULFM test hook: the calling rank fails "hard" — every operation
/// involving it will report XMPI_ERR_PROC_FAILED from now on.
[[noreturn]] void inject_failure();

/// @brief Wall-clock seconds from a monotonic clock (XMPI_Wtime).
double wtime();

} // namespace xmpi

/// @brief The world communicator of the calling rank's world, resolved via
/// thread-local context so code reads exactly like MPI code.
#define XMPI_COMM_WORLD (::xmpi::detail::current_world_comm())
