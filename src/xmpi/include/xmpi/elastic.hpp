/// @file elastic.hpp
/// @brief Elastic worlds: sessions-style dynamic membership behind a single
/// membership-epoch state machine.
///
/// A World constructed with a capacity (`World(size, model, capacity)`) can
/// grow and shrink while running: an unattached thread joins it via
/// `World::open_session()` and becomes a brand-new rank, an attached rank
/// retires via `World::leave_session()`, and a failed rank is excluded — all
/// three are *the same* kind of event, a membership transition, handled by
/// one state machine instead of three ad-hoc paths.
///
/// ## The state machine
///
/// Every rank slot moves through
///
///     unused → joining → active → { leaving → left | failed }
///
/// and slots are never reused (a left rank's slot stays `left` forever), so
/// a world rank id names the same logical rank for the world's lifetime.
/// The world's *membership epoch* counts transitions: epoch 0 is the initial
/// membership; each transition folds every pending join, leave, and failure
/// into one new epoch with one fresh epoch-gated communicator.
///
/// ## How a transition runs (revoke-at-request)
///
/// A join or leave request revokes the current epoch's communicator exactly
/// like `XMPI_Comm_revoke` does (mark revoked, fail queued progress-engine
/// work, wake everyone) — so members blocked deep inside sends, receives, or
/// collectives abort with XMPI_ERR_REVOKED instead of deadlocking the
/// rendezvous, and a failure (which already aborts everything) needs no
/// extra mechanics: the ULFM path and the scaling path literally share the
/// abort machinery. Each member then calls `World::epoch_sync()`, which
/// arrives at the open transition round; when every live member has arrived,
/// the last arriver performs the transition — admitting joiners, retiring
/// leavers, excluding the failed — bumps the epoch, and everyone (joiners
/// included) picks up a retained handle to the fresh communicator.
///
/// ## Epoch gating
///
/// The per-epoch communicators are *epoch-gated* (Comm::set_epoch_gate): an
/// operation on a superseded epoch's comm reports XMPI_ERR_EPOCH at the API
/// boundary, and a message already in flight on a superseded epoch's context
/// is dropped at delivery (counted in `stale_epoch_drops`), so traffic from
/// before a transition can never match receives from after it. Non-elastic
/// worlds pay a single predictable branch for all of this.
///
/// ## Capacity
///
/// The transport's lock-free structures (per-peer rings, payload-pool
/// shards, failure flags) cannot be resized under concurrent readers, so an
/// elastic world allocates them for `capacity` ranks up front and only ever
/// grows the set of live slots; `open_session` throws UsageError once the
/// capacity is exhausted.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace xmpi {
class Comm;
}

namespace xmpi::detail {

/// @brief Lifecycle of one rank slot (see file header; slots never regress
/// and are never reused).
enum class MemberState : int {
    unused,  ///< slot not yet handed out
    joining, ///< open_session announced, waiting for the admitting transition
    active,  ///< member of the current epoch's communicator
    leaving, ///< leave_session announced, waiting for the excluding transition
    left,    ///< retired cleanly; the slot is permanently out of the world
    failed,  ///< excluded by failure (possibly while joining or leaving)
};

/// @brief Shared state of the membership-epoch machine; one per elastic
/// world, guarded by @c mutex (the elastic waits are bounded cv waits, so
/// World::wake_all may notify @c cv without holding it).
struct ElasticState {
    std::mutex mutex;
    std::condition_variable cv;
    std::uint64_t epoch = 0;          ///< mirrors World::membership_epoch()
    std::vector<MemberState> members; ///< per slot, sized to capacity
    int next_slot = 0;                ///< first never-handed-out slot
    std::vector<int> pending_joiners; ///< slots waiting to be admitted
    std::vector<int> pending_leavers; ///< slots waiting to be excluded
    std::vector<int> arrived;         ///< slots arrived at the open round
    Comm* current = nullptr;          ///< retained comm of the current epoch
    std::vector<Comm*> retired;       ///< superseded epochs, freed in ~World
    char const* last_cause = "";      ///< static literal, e.g. "grow+failure"
};

} // namespace xmpi::detail
