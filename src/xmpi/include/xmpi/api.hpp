/// @file api.hpp
/// @brief The flat XMPI_* function API — a faithful subset of the MPI C API.
///
/// This is the interface every binding layer in this repository (KaMPIng,
/// the Boost.MPI/MPL/RWTH mimics) and all "plain MPI" baseline code targets.
/// Signatures, argument order, and semantics mirror the MPI standard; names
/// carry an X prefix to make explicit that the transport is the in-process
/// xmpi substrate rather than a real MPI library.
///
/// All functions return an XMPI error class (XMPI_SUCCESS on success) and
/// never throw (except for usage outside a running world).
#pragma once

#include <cstddef>
#include <cstdint>

#include "xmpi/comm.hpp"
#include "xmpi/datatype.hpp"
#include "xmpi/error.hpp"
#include "xmpi/op.hpp"
#include "xmpi/request.hpp"
#include "xmpi/status.hpp"
#include "xmpi/win.hpp"
#include "xmpi/world.hpp"

/// @name Handle types
/// @{
using XMPI_Comm     = xmpi::Comm*;
using XMPI_Datatype = xmpi::Datatype*;
using XMPI_Group    = xmpi::Group*;
using XMPI_Op       = xmpi::Op const*;
using XMPI_Request  = xmpi::Request*;
using XMPI_Status   = xmpi::Status;
using XMPI_Aint     = std::ptrdiff_t;
using XMPI_Win      = xmpi::Win*;
/// @}

/// @name Null handles and special addresses
/// @{
inline constexpr XMPI_Comm XMPI_COMM_NULL         = nullptr;
inline constexpr XMPI_Request XMPI_REQUEST_NULL   = nullptr;
inline constexpr XMPI_Datatype XMPI_DATATYPE_NULL = nullptr;
inline constexpr XMPI_Group XMPI_GROUP_NULL       = nullptr;
inline constexpr XMPI_Win XMPI_WIN_NULL           = nullptr;
inline XMPI_Status* const XMPI_STATUS_IGNORE      = nullptr;
inline XMPI_Status* const XMPI_STATUSES_IGNORE    = nullptr;
inline void* const XMPI_IN_PLACE = xmpi::IN_PLACE;
/// @}

/// @name Wildcards
/// @{
inline constexpr int XMPI_ANY_SOURCE = xmpi::ANY_SOURCE;
inline constexpr int XMPI_ANY_TAG    = xmpi::ANY_TAG;
inline constexpr int XMPI_PROC_NULL  = xmpi::PROC_NULL;
inline constexpr int XMPI_UNDEFINED  = xmpi::UNDEFINED;
/// @}

/// @name Predefined datatypes
/// @{
XMPI_Datatype XMPI_BYTE_();
#define XMPI_BYTE (::XMPI_BYTE_())
XMPI_Datatype XMPI_CHAR_();
#define XMPI_CHAR (::XMPI_CHAR_())
XMPI_Datatype XMPI_SIGNED_CHAR_();
#define XMPI_SIGNED_CHAR (::XMPI_SIGNED_CHAR_())
XMPI_Datatype XMPI_UNSIGNED_CHAR_();
#define XMPI_UNSIGNED_CHAR (::XMPI_UNSIGNED_CHAR_())
XMPI_Datatype XMPI_SHORT_();
#define XMPI_SHORT (::XMPI_SHORT_())
XMPI_Datatype XMPI_UNSIGNED_SHORT_();
#define XMPI_UNSIGNED_SHORT (::XMPI_UNSIGNED_SHORT_())
XMPI_Datatype XMPI_INT_();
#define XMPI_INT (::XMPI_INT_())
XMPI_Datatype XMPI_UNSIGNED_();
#define XMPI_UNSIGNED (::XMPI_UNSIGNED_())
XMPI_Datatype XMPI_LONG_();
#define XMPI_LONG (::XMPI_LONG_())
XMPI_Datatype XMPI_UNSIGNED_LONG_();
#define XMPI_UNSIGNED_LONG (::XMPI_UNSIGNED_LONG_())
XMPI_Datatype XMPI_LONG_LONG_();
#define XMPI_LONG_LONG (::XMPI_LONG_LONG_())
XMPI_Datatype XMPI_UNSIGNED_LONG_LONG_();
#define XMPI_UNSIGNED_LONG_LONG (::XMPI_UNSIGNED_LONG_LONG_())
XMPI_Datatype XMPI_FLOAT_();
#define XMPI_FLOAT (::XMPI_FLOAT_())
XMPI_Datatype XMPI_DOUBLE_();
#define XMPI_DOUBLE (::XMPI_DOUBLE_())
XMPI_Datatype XMPI_LONG_DOUBLE_();
#define XMPI_LONG_DOUBLE (::XMPI_LONG_DOUBLE_())
XMPI_Datatype XMPI_CXX_BOOL_();
#define XMPI_CXX_BOOL (::XMPI_CXX_BOOL_())
/// @}

/// @name Predefined reduction operations
/// @{
XMPI_Op XMPI_SUM_();
#define XMPI_SUM (::XMPI_SUM_())
XMPI_Op XMPI_PROD_();
#define XMPI_PROD (::XMPI_PROD_())
XMPI_Op XMPI_MIN_();
#define XMPI_MIN (::XMPI_MIN_())
XMPI_Op XMPI_MAX_();
#define XMPI_MAX (::XMPI_MAX_())
XMPI_Op XMPI_LAND_();
#define XMPI_LAND (::XMPI_LAND_())
XMPI_Op XMPI_LOR_();
#define XMPI_LOR (::XMPI_LOR_())
XMPI_Op XMPI_LXOR_();
#define XMPI_LXOR (::XMPI_LXOR_())
XMPI_Op XMPI_BAND_();
#define XMPI_BAND (::XMPI_BAND_())
XMPI_Op XMPI_BOR_();
#define XMPI_BOR (::XMPI_BOR_())
XMPI_Op XMPI_BXOR_();
#define XMPI_BXOR (::XMPI_BXOR_())
inline constexpr XMPI_Op XMPI_OP_NULL = nullptr;
/// @}

/// @name Environment
/// @{
int XMPI_Comm_size(XMPI_Comm comm, int* size);
int XMPI_Comm_rank(XMPI_Comm comm, int* rank);
double XMPI_Wtime();
int XMPI_Abort(XMPI_Comm comm, int errorcode);
int XMPI_Error_string(int errorcode, char* string, int* resultlen);
/// @}

/// @name Point-to-point
/// @{
int XMPI_Send(
    void const* buf, int count, XMPI_Datatype datatype, int dest, int tag, XMPI_Comm comm);
int XMPI_Ssend(
    void const* buf, int count, XMPI_Datatype datatype, int dest, int tag, XMPI_Comm comm);
int XMPI_Isend(
    void const* buf, int count, XMPI_Datatype datatype, int dest, int tag, XMPI_Comm comm,
    XMPI_Request* request);
int XMPI_Issend(
    void const* buf, int count, XMPI_Datatype datatype, int dest, int tag, XMPI_Comm comm,
    XMPI_Request* request);
int XMPI_Recv(
    void* buf, int count, XMPI_Datatype datatype, int source, int tag, XMPI_Comm comm,
    XMPI_Status* status);
int XMPI_Irecv(
    void* buf, int count, XMPI_Datatype datatype, int source, int tag, XMPI_Comm comm,
    XMPI_Request* request);
int XMPI_Sendrecv(
    void const* sendbuf, int sendcount, XMPI_Datatype sendtype, int dest, int sendtag,
    void* recvbuf, int recvcount, XMPI_Datatype recvtype, int source, int recvtag, XMPI_Comm comm,
    XMPI_Status* status);
int XMPI_Probe(int source, int tag, XMPI_Comm comm, XMPI_Status* status);
int XMPI_Iprobe(int source, int tag, XMPI_Comm comm, int* flag, XMPI_Status* status);
int XMPI_Get_count(XMPI_Status const* status, XMPI_Datatype datatype, int* count);
/// @}

/// @name Request completion
/// @{
int XMPI_Wait(XMPI_Request* request, XMPI_Status* status);
int XMPI_Test(XMPI_Request* request, int* flag, XMPI_Status* status);
/// @brief Waits for all requests. Returns the first per-request error code
/// encountered (statuses carry every code individually).
int XMPI_Waitall(int count, XMPI_Request* requests, XMPI_Status* statuses);
/// @brief All-or-nothing test: either every request is complete (all are
/// consumed, @c flag = 1) or none is modified (@c flag = 0). When a consumed
/// request failed, returns XMPI_ERR_IN_STATUS (real codes in @c statuses),
/// or the first error code when @c statuses is XMPI_STATUSES_IGNORE.
int XMPI_Testall(int count, XMPI_Request* requests, int* flag, XMPI_Status* statuses);
int XMPI_Waitany(int count, XMPI_Request* requests, int* index, XMPI_Status* status);
/// @brief Waits until at least one request completes; consumes every request
/// found complete. Error convention as in XMPI_Testall.
int XMPI_Waitsome(
    int incount, XMPI_Request* requests, int* outcount, int* indices, XMPI_Status* statuses);
int XMPI_Testany(int count, XMPI_Request* requests, int* index, int* flag, XMPI_Status* status);
int XMPI_Testsome(
    int incount, XMPI_Request* requests, int* outcount, int* indices, XMPI_Status* statuses);
int XMPI_Cancel(XMPI_Request* request);
int XMPI_Request_free(XMPI_Request* request);
/// @}

/// @name Persistent and partitioned communication (MPI-4 Send_init/Start
/// family). An *_init call binds the operation's arguments into an inactive
/// persistent request without communicating; every XMPI_Start replays the
/// operation (completion returns the request to inactive instead of freeing
/// it). Wait/Test on an inactive persistent request return immediately with
/// an empty status. XMPI_Request_free destroys the request; if it is active,
/// the call blocks until the in-flight instance completes.
///
/// Partitioned sends (XMPI_Psend_init) split the buffer into @c partitions
/// equal parts of @c count elements each; any thread may mark partitions
/// ready with XMPI_Pready once started, and the last ready partition ships
/// the whole buffer as a single message. XMPI_Parrived reports arrival on
/// the receive side at whole-message granularity.
/// @{
int XMPI_Start(XMPI_Request* request);
int XMPI_Startall(int count, XMPI_Request* requests);
int XMPI_Send_init(
    void const* buf, int count, XMPI_Datatype datatype, int dest, int tag, XMPI_Comm comm,
    XMPI_Request* request);
int XMPI_Recv_init(
    void* buf, int count, XMPI_Datatype datatype, int source, int tag, XMPI_Comm comm,
    XMPI_Request* request);
int XMPI_Bcast_init(
    void* buffer, int count, XMPI_Datatype datatype, int root, XMPI_Comm comm,
    XMPI_Request* request);
int XMPI_Allreduce_init(
    void const* sendbuf, void* recvbuf, int count, XMPI_Datatype datatype, XMPI_Op op,
    XMPI_Comm comm, XMPI_Request* request);
int XMPI_Alltoall_init(
    void const* sendbuf, int sendcount, XMPI_Datatype sendtype, void* recvbuf, int recvcount,
    XMPI_Datatype recvtype, XMPI_Comm comm, XMPI_Request* request);
int XMPI_Barrier_init(XMPI_Comm comm, XMPI_Request* request);
int XMPI_Psend_init(
    void const* buf, int partitions, int count, XMPI_Datatype datatype, int dest, int tag,
    XMPI_Comm comm, XMPI_Request* request);
int XMPI_Precv_init(
    void* buf, int partitions, int count, XMPI_Datatype datatype, int source, int tag,
    XMPI_Comm comm, XMPI_Request* request);
int XMPI_Pready(int partition, XMPI_Request request);
int XMPI_Parrived(XMPI_Request request, int partition, int* flag);
/// @}

/// @name Collectives
/// @{
int XMPI_Barrier(XMPI_Comm comm);
int XMPI_Ibarrier(XMPI_Comm comm, XMPI_Request* request);
int XMPI_Bcast(void* buffer, int count, XMPI_Datatype datatype, int root, XMPI_Comm comm);
int XMPI_Gather(
    void const* sendbuf, int sendcount, XMPI_Datatype sendtype, void* recvbuf, int recvcount,
    XMPI_Datatype recvtype, int root, XMPI_Comm comm);
int XMPI_Gatherv(
    void const* sendbuf, int sendcount, XMPI_Datatype sendtype, void* recvbuf,
    int const* recvcounts, int const* displs, XMPI_Datatype recvtype, int root, XMPI_Comm comm);
int XMPI_Scatter(
    void const* sendbuf, int sendcount, XMPI_Datatype sendtype, void* recvbuf, int recvcount,
    XMPI_Datatype recvtype, int root, XMPI_Comm comm);
int XMPI_Scatterv(
    void const* sendbuf, int const* sendcounts, int const* displs, XMPI_Datatype sendtype,
    void* recvbuf, int recvcount, XMPI_Datatype recvtype, int root, XMPI_Comm comm);
int XMPI_Allgather(
    void const* sendbuf, int sendcount, XMPI_Datatype sendtype, void* recvbuf, int recvcount,
    XMPI_Datatype recvtype, XMPI_Comm comm);
int XMPI_Allgatherv(
    void const* sendbuf, int sendcount, XMPI_Datatype sendtype, void* recvbuf,
    int const* recvcounts, int const* displs, XMPI_Datatype recvtype, XMPI_Comm comm);
int XMPI_Alltoall(
    void const* sendbuf, int sendcount, XMPI_Datatype sendtype, void* recvbuf, int recvcount,
    XMPI_Datatype recvtype, XMPI_Comm comm);
int XMPI_Alltoallv(
    void const* sendbuf, int const* sendcounts, int const* sdispls, XMPI_Datatype sendtype,
    void* recvbuf, int const* recvcounts, int const* rdispls, XMPI_Datatype recvtype,
    XMPI_Comm comm);
int XMPI_Alltoallw(
    void const* sendbuf, int const* sendcounts, int const* sdispls,
    XMPI_Datatype const* sendtypes, void* recvbuf, int const* recvcounts, int const* rdispls,
    XMPI_Datatype const* recvtypes, XMPI_Comm comm);
/// @name Non-blocking collectives. They must be initiated in the same order
/// on all ranks (MPI semantics); several may be in flight per communicator.
/// Buffers must stay valid and untouched until completion.
/// @{
int XMPI_Ibcast(
    void* buffer, int count, XMPI_Datatype datatype, int root, XMPI_Comm comm,
    XMPI_Request* request);
int XMPI_Iallreduce(
    void const* sendbuf, void* recvbuf, int count, XMPI_Datatype datatype, XMPI_Op op,
    XMPI_Comm comm, XMPI_Request* request);
int XMPI_Ialltoallv(
    void const* sendbuf, int const* sendcounts, int const* sdispls, XMPI_Datatype sendtype,
    void* recvbuf, int const* recvcounts, int const* rdispls, XMPI_Datatype recvtype,
    XMPI_Comm comm, XMPI_Request* request);
/// @}

int XMPI_Reduce(
    void const* sendbuf, void* recvbuf, int count, XMPI_Datatype datatype, XMPI_Op op, int root,
    XMPI_Comm comm);
int XMPI_Allreduce(
    void const* sendbuf, void* recvbuf, int count, XMPI_Datatype datatype, XMPI_Op op,
    XMPI_Comm comm);
int XMPI_Reduce_scatter_block(
    void const* sendbuf, void* recvbuf, int recvcount, XMPI_Datatype datatype, XMPI_Op op,
    XMPI_Comm comm);
int XMPI_Scan(
    void const* sendbuf, void* recvbuf, int count, XMPI_Datatype datatype, XMPI_Op op,
    XMPI_Comm comm);
int XMPI_Exscan(
    void const* sendbuf, void* recvbuf, int count, XMPI_Datatype datatype, XMPI_Op op,
    XMPI_Comm comm);
/// @}

/// @name Datatype construction
/// @{
int XMPI_Type_contiguous(int count, XMPI_Datatype oldtype, XMPI_Datatype* newtype);
int XMPI_Type_vector(
    int count, int blocklength, int stride, XMPI_Datatype oldtype, XMPI_Datatype* newtype);
int XMPI_Type_indexed(
    int count, int const* blocklengths, int const* displacements, XMPI_Datatype oldtype,
    XMPI_Datatype* newtype);
int XMPI_Type_create_struct(
    int count, int const* blocklengths, XMPI_Aint const* displacements,
    XMPI_Datatype const* types, XMPI_Datatype* newtype);
int XMPI_Type_create_resized(
    XMPI_Datatype oldtype, XMPI_Aint lb, XMPI_Aint extent, XMPI_Datatype* newtype);
int XMPI_Type_commit(XMPI_Datatype* datatype);
int XMPI_Type_free(XMPI_Datatype* datatype);
int XMPI_Type_size(XMPI_Datatype datatype, int* size);
int XMPI_Type_get_extent(XMPI_Datatype datatype, XMPI_Aint* lb, XMPI_Aint* extent);
/// @}

/// @name Reduction operations
/// @{
int XMPI_Op_create(xmpi::UserFunction function, int commute, XMPI_Op* op);
int XMPI_Op_free(XMPI_Op* op);
/// @}

/// @name Groups and communicator management
/// @{
int XMPI_Comm_group(XMPI_Comm comm, XMPI_Group* group);
int XMPI_Group_size(XMPI_Group group, int* size);
int XMPI_Group_rank(XMPI_Group group, int* rank);
int XMPI_Group_incl(XMPI_Group group, int n, int const* ranks, XMPI_Group* newgroup);
int XMPI_Group_excl(XMPI_Group group, int n, int const* ranks, XMPI_Group* newgroup);
int XMPI_Group_union(XMPI_Group group1, XMPI_Group group2, XMPI_Group* newgroup);
int XMPI_Group_intersection(XMPI_Group group1, XMPI_Group group2, XMPI_Group* newgroup);
int XMPI_Group_difference(XMPI_Group group1, XMPI_Group group2, XMPI_Group* newgroup);
int XMPI_Group_translate_ranks(
    XMPI_Group group1, int n, int const* ranks1, XMPI_Group group2, int* ranks2);
int XMPI_Group_free(XMPI_Group* group);
int XMPI_Comm_dup(XMPI_Comm comm, XMPI_Comm* newcomm);
int XMPI_Comm_split(XMPI_Comm comm, int color, int key, XMPI_Comm* newcomm);
int XMPI_Comm_create(XMPI_Comm comm, XMPI_Group group, XMPI_Comm* newcomm);
int XMPI_Comm_free(XMPI_Comm* comm);
/// @}

/// @name Sparse graph topologies and neighborhood collectives
/// @{
int XMPI_Dist_graph_create_adjacent(
    XMPI_Comm comm_old, int indegree, int const* sources, int const* sourceweights, int outdegree,
    int const* destinations, int const* destweights, int reorder, XMPI_Comm* comm_dist_graph);
int XMPI_Dist_graph_neighbors_count(XMPI_Comm comm, int* indegree, int* outdegree, int* weighted);
int XMPI_Neighbor_alltoall(
    void const* sendbuf, int sendcount, XMPI_Datatype sendtype, void* recvbuf, int recvcount,
    XMPI_Datatype recvtype, XMPI_Comm comm);
int XMPI_Neighbor_alltoallv(
    void const* sendbuf, int const* sendcounts, int const* sdispls, XMPI_Datatype sendtype,
    void* recvbuf, int const* recvcounts, int const* rdispls, XMPI_Datatype recvtype,
    XMPI_Comm comm);
/// @}

/// @name User-level failure mitigation (ULFM, MPI 5.0 proposal)
/// @{
int XMPI_Comm_revoke(XMPI_Comm comm);
int XMPI_Comm_is_revoked(XMPI_Comm comm, int* flag);
int XMPI_Comm_shrink(XMPI_Comm comm, XMPI_Comm* newcomm);
int XMPI_Comm_agree(XMPI_Comm comm, int* flag);
/// @}

/// @name Elastic worlds (sessions-style dynamic membership, elastic.hpp)
///
/// Joining happens at the World level (World::open_session attaches a brand
/// new thread, which a handle-based C API cannot express); everything an
/// *attached* rank needs rides on handles and the thread-local context.
/// @{
/// @brief Retires the calling rank from its (elastic) world: announces the
/// leave, participates in the excluding membership transition, and detaches
/// the calling thread.
int XMPI_Session_leave(void);
/// @brief Membership-epoch rendezvous: stores a *retained* handle to the
/// current epoch's communicator in @c newcomm (release with XMPI_Comm_free),
/// first running a transition if joins, leaves, or failures are pending.
int XMPI_Epoch_sync(XMPI_Comm* newcomm);
/// @brief The membership epoch of the communicator's world (0 until the
/// first transition; constant 0 in non-elastic worlds).
int XMPI_Membership_epoch(XMPI_Comm comm, std::uint64_t* epoch);
/// @brief Sets @c flag iff @c comm belongs to a superseded epoch or a
/// membership transition is pending — i.e. the caller should XMPI_Epoch_sync
/// (operations on @c comm would fail with XMPI_ERR_EPOCH / XMPI_ERR_REVOKED).
int XMPI_Membership_changed(XMPI_Comm comm, int* flag);
/// @}

/// @name One-sided communication (RMA)
/// @{
/// @brief Passive-target lock types (MPI_LOCK_*).
inline constexpr int XMPI_LOCK_SHARED    = xmpi::LOCK_SHARED;
inline constexpr int XMPI_LOCK_EXCLUSIVE = xmpi::LOCK_EXCLUSIVE;

/// @brief Collective: exposes @c size bytes starting at @c base over @c comm.
/// Displacements passed to the access functions are scaled by @c disp_unit.
int XMPI_Win_create(
    void* base, XMPI_Aint size, int disp_unit, XMPI_Comm comm, XMPI_Win* win);
/// @brief Collective: like XMPI_Win_create, but the library allocates each
/// rank's zero-initialized region and owns it for the window's whole
/// lifetime — the region is freed only when the *last* member (or survivor)
/// drops its window reference. Prefer this over exposing scope-local storage
/// whenever the communicator can lose members mid-epoch: a peer's in-flight
/// atomic can never dangle on stack memory that unwound with a kill.
/// @c baseptr receives this rank's region (as void*, MPI-style).
int XMPI_Win_allocate(
    XMPI_Aint size, int disp_unit, XMPI_Comm comm, void* baseptr, XMPI_Win* win);
/// @brief Collective: destroys the window (barrier, then drop reference).
int XMPI_Win_free(XMPI_Win* win);

/// @brief Queues a put; applied at the next synchronization call. A put with
/// a contiguous origin datatype is zero-copy: the origin buffer must remain
/// valid (and unmodified) until the epoch closes.
int XMPI_Put(
    void const* origin_addr, int origin_count, XMPI_Datatype origin_datatype, int target_rank,
    XMPI_Aint target_disp, int target_count, XMPI_Datatype target_datatype, XMPI_Win win);
/// @brief Queues a get; the origin buffer is filled at the next
/// synchronization call and must stay valid until then.
int XMPI_Get(
    void* origin_addr, int origin_count, XMPI_Datatype origin_datatype, int target_rank,
    XMPI_Aint target_disp, int target_count, XMPI_Datatype target_datatype, XMPI_Win win);
/// @brief Element-wise atomic read-modify-write into the target region.
/// Applied eagerly (not queued); requires contiguous datatypes.
int XMPI_Accumulate(
    void const* origin_addr, int origin_count, XMPI_Datatype origin_datatype, int target_rank,
    XMPI_Aint target_disp, int target_count, XMPI_Datatype target_datatype, XMPI_Op op,
    XMPI_Win win);
/// @brief Atomic fetch-and-op of one element: fetches the target element
/// into @c result_addr, then applies `target = op(origin, target)`. Applied
/// eagerly — the fetched value is valid on return (MPI_Fetch_and_op plus the
/// flush the standard requires, collapsed to the in-process essence).
/// Requires a contiguous datatype. An epoch towards @c target_rank must be
/// open (fence, or a lock on the target).
int XMPI_Fetch_and_op(
    void const* origin_addr, void* result_addr, XMPI_Datatype datatype, int target_rank,
    XMPI_Aint target_disp, XMPI_Op op, XMPI_Win win);
/// @brief Atomic compare-and-swap of one element: fetches the target element
/// into @c result_addr and, iff it byte-wise equals @c compare_addr, stores
/// @c origin_addr. Eager like XMPI_Fetch_and_op; the swap succeeded iff the
/// fetched value equals the compare value. Requires a contiguous datatype.
int XMPI_Compare_and_swap(
    void const* origin_addr, void const* compare_addr, void* result_addr,
    XMPI_Datatype datatype, int target_rank, XMPI_Aint target_disp, XMPI_Win win);

/// @brief Active-target synchronization: drains the calling rank's pending
/// ops and barriers over the window's communicator. With failed ranks the
/// fence returns XMPI_ERR_PROC_FAILED instead of hanging. The @c assertion
/// argument is accepted for MPI fidelity and ignored.
int XMPI_Win_fence(int assertion, XMPI_Win win);
/// @brief Passive-target: opens an access epoch towards @c rank. The
/// @c assertion argument is accepted for MPI fidelity and ignored.
int XMPI_Win_lock(int lock_type, int rank, int assertion, XMPI_Win win);
/// @brief Closes a passive-target epoch: drains pending ops towards @c rank,
/// then releases the lock.
int XMPI_Win_unlock(int rank, XMPI_Win win);
/// @}
