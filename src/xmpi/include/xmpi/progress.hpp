/// @file progress.hpp
/// @brief Shared non-blocking progress engine.
///
/// Non-blocking collectives used to spawn one dedicated helper thread per
/// initiation (a thread-per-request design), so N in-flight operations cost N
/// threads — which collapses under "as many in-flight ops as the hardware
/// allows" scaling. The progress engine replaces that with a lazily-started,
/// bounded worker pool draining a bounded queue of resumable collective
/// tasks: N in-flight operations cost O(pool) threads.
///
/// Progress / deadlock-freedom contract:
///  - initiation enqueues a task; when the queue is full the task runs
///    inline on the initiating rank (backpressure, counted as
///    `engine_inline_fallbacks`),
///  - `wait()` on a still-queued task claims and runs it on the calling
///    rank's thread, so completion never depends on pool capacity,
///  - while its own task runs elsewhere, a waiting rank drains its *own*
///    queued tasks, oldest first (caller-driven progress). Only own tasks
///    are eligible: they are work the rank must complete anyway, and
///    initiation order is consistent across ranks, so this keeps peers
///    supplied with the contributions they block on. Running another
///    rank's collective could block the caller on contributions that are
///    themselves still queued,
///  - `test()` only runs the polled task inline when the pool is saturated,
///    so a freshly initiated operation keeps its asynchrony while a
///    test()-polling loop still guarantees progress,
///  - the stall valve: when queued tasks exist, no worker is idle, and a
///    waiter makes no progress for ~10ms, the pool grows by one temporary
///    worker (counted as `engine_stall_escalations`, reaped once the queue
///    drains). Blocked executors therefore never wedge the queue: in the
///    worst case the engine converges to one thread per blocked task — the
///    old thread-per-request cost, paid only when those threads are needed
///    for correctness — while the common aligned case stays at O(pool).
///
/// Failure interplay: revoking a communicator fails its queued-but-unstarted
/// tasks with XMPI_ERR_REVOKED (ulfm.cpp calls the sweep); killing a rank
/// (chaos / inject_failure) fails that rank's queued tasks with
/// XMPI_ERR_PROC_FAILED so no worker ever acts for a dead rank whose stack
/// buffers are gone; world teardown drains every task that still references
/// the world.
#pragma once

#include <cstddef>
#include <functional>

namespace xmpi {

class Comm;
class Request;
class World;

namespace detail {
struct RankContext;
}

namespace progress {

/// @brief Pool configuration. Applied by configure(); workers are
/// (re)started lazily on the next submission.
struct Config {
    /// Worker threads; 0 selects the default min(4, hardware_concurrency-1),
    /// clamped to at least 1.
    unsigned threads = 0;
    /// Queue slots; a submission finding the queue full runs inline on the
    /// initiating rank instead (counted as engine_inline_fallbacks).
    std::size_t queue_capacity = 1024;
};

/// @brief Replaces the engine configuration. Stops the current workers
/// (running tasks finish first; queued tasks stay queued and are picked up
/// by the new pool or by waiting callers). Safe to call between worlds or
/// mid-run.
void configure(Config config);

/// @brief The currently configured values (threads == 0 means default).
[[nodiscard]] Config current_config();

/// @brief The worker count a Config{.threads = 0} resolves to on this host.
[[nodiscard]] unsigned default_thread_count();

/// @brief Caller-driven progress: runs at most one of the calling rank's
/// own queued tasks inline (oldest first). Returns true iff a task was
/// run. Used by request pools to drain the engine while polling.
bool poll();

/// @brief Stops and joins the worker pool (running tasks finish first).
/// Queued tasks remain and are still completed by waiting callers; the pool
/// restarts lazily on the next submission.
void shutdown();

namespace detail {

/// @brief Enqueues @c body (returning an XMPI error code) as an engine task
/// on behalf of the calling rank and returns the request handle tracking it.
/// @c op names the operation for tracing spans; @c comm is the communicator
/// the task acts on (used to fail queued tasks on revocation).
Request* submit(char const* op, Comm* comm, std::function<int()> body);

/// @brief Like submit(), but runs on behalf of @c ctx instead of the calling
/// thread's context. Needed by partitioned sends, where the final
/// XMPI_Pready may arrive from a producer thread that is not the owning
/// rank: the task must still be attributed to (and failable with) the rank
/// that initiated the partitioned operation.
Request* submit_as(
    char const* op, Comm* comm, xmpi::detail::RankContext ctx, std::function<int()> body);

/// @brief Completes every queued-but-unstarted task on @c comm with
/// @c error (revocation sweep).
void fail_queued_for_comm(Comm* comm, int error);

/// @brief Completes every queued-but-unstarted task initiated by
/// @c world_rank of @c world with @c error (rank-death sweep).
void fail_queued_for_rank(World* world, int world_rank, int error);

/// @brief World teardown barrier: fails queued tasks of @c world and blocks
/// until no worker still executes a task referencing it.
void abandon_world(World* world);

} // namespace detail
} // namespace progress
} // namespace xmpi
