/// @file ring.hpp
/// @brief Lock-free per-(src,dst) transport rings.
///
/// The transport hot path: every send from world rank `src` to world rank
/// `dst` is published into the PeerRing of that ordered pair. Producers
/// (the sending rank's thread, or a progress-engine worker acting for it)
/// publish entries with a Vyukov-style sequenced-slot protocol — a CAS on
/// the tail that is uncontended in the common single-producer case — and
/// the *receiver* pulls entries out when it posts, awaits, or probes a
/// receive. No mutex is ever taken between two ranks on the fast path; the
/// receiver's mailbox mutex only serializes consumer-side matching.
///
/// Three entry kinds ride the ring:
///   - `batch`: a pooled buffer holding one or more coalesced small
///     messages (header + packed payload each). While the slot is published
///     but not yet consumed, later small sends to the same peer *append* to
///     the open batch instead of taking a slot of their own — senders that
///     outrun the receiver automatically aggregate, preserving order.
///   - `message`: a single packed payload (non-contiguous datatypes,
///     synchronous-mode sends, mid-size eager messages).
///   - `rendezvous`: a descriptor for a large contiguous message. The
///     payload stays in the sender's buffer; the receiver copies it
///     *directly* into the posted receive buffer (zero-copy on both sides)
///     and releases the sender. If no receiver claims the descriptor within
///     the tuned deadline, the sender falls back to an eager copy so plain
///     eager-ordered programs cannot deadlock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "xmpi/pool.hpp"
#include "xmpi/status.hpp"

namespace xmpi {
class World;

namespace profile {
struct RankCounters;
}

namespace detail {

/// @brief Message envelope used for matching.
struct Envelope {
    int context;   ///< communicator context id (pt2pt or collective space)
    int source;    ///< sender's rank within the communicator
    int tag;

    /// @brief True iff a receive pattern (which may contain wildcards in
    /// @c source / @c tag) matches a concrete message envelope.
    [[nodiscard]] bool matches(Envelope const& message) const {
        return context == message.context
               && (source == ANY_SOURCE || source == message.source)
               && (tag == ANY_TAG || tag == message.tag);
    }

    /// @brief True iff the pattern contains no wildcard (bucketable).
    [[nodiscard]] bool is_exact() const {
        return source != ANY_SOURCE && tag != ANY_TAG;
    }

    bool operator==(Envelope const&) const = default;
};

/// @brief Hash for exact envelopes (bucket keys).
struct EnvelopeHash {
    [[nodiscard]] std::size_t operator()(Envelope const& env) const {
        auto mix = [](std::size_t seed, std::size_t value) {
            return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
        };
        std::size_t seed = static_cast<std::size_t>(env.context);
        seed = mix(seed, static_cast<std::size_t>(env.source));
        return mix(seed, static_cast<std::size_t>(env.tag));
    }
};

/// @brief Completion handle for synchronous-mode sends: set when the message
/// has been matched by a receive.
struct SyncHandle {
    std::mutex mutex;
    std::condition_variable cv;
    bool matched = false;

    void signal() {
        {
            std::lock_guard lock(mutex);
            matched = true;
        }
        cv.notify_all();
    }
};

/// @brief CPU-relax hint for spin loops.
inline void spin_pause() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// @brief A pooled byte buffer with shared ownership: returned to its pool
/// when the last reference drops. Batch buffers are referenced both by the
/// ring slot and by every unexpected message parked in the mailbox that
/// still views bytes inside them, so plain move-out ownership is not enough.
struct PooledBlock {
    PayloadPool* pool = nullptr;
    std::vector<std::byte> bytes;
    /// Reservation slot of a persistent send this buffer is pinned to; the
    /// release cycles the buffer back into the slot (not the pool) so the
    /// next restart finds it waiting. Shared ownership keeps the slot alive
    /// while messages referencing it are still parked in mailboxes.
    std::shared_ptr<PayloadSlot> home;

    PooledBlock(PayloadPool* pool, std::vector<std::byte> bytes,
                std::shared_ptr<PayloadSlot> home = nullptr)
        : pool(pool),
          bytes(std::move(bytes)),
          home(std::move(home)) {}
    ~PooledBlock() {
        if (home != nullptr) {
            std::lock_guard lock(home->mutex);
            if (!home->occupied) {
                home->buffer = std::move(bytes);
                home->occupied = true;
                return;
            }
        }
        if (pool != nullptr) {
            pool->release(std::move(bytes));
        }
    }
    PooledBlock(PooledBlock const&) = delete;
    PooledBlock& operator=(PooledBlock const&) = delete;
};

/// @brief A view into a PooledBlock: the payload of one message. Holds a
/// share of the block, so batch blocks survive until every message parked
/// in the unexpected queue has been consumed.
struct PayloadRef {
    std::shared_ptr<PooledBlock> block;
    std::uint32_t offset = 0;
    std::uint32_t size = 0;

    [[nodiscard]] std::byte const* data() const {
        return block == nullptr ? nullptr : block->bytes.data() + offset;
    }
};

/// @brief Shared state of one large-message rendezvous.
///
/// Life cycle (sender = S, receiver = R):
///   published --R claims--> claimed --R copied src bytes--> completed
///   published --S deadline--> eagering --S copied to fallback--> eagered
///   published --S dies / peer failure--> abandoned
/// The CAS out of `published` decides the winner; every later transition is
/// made by the winner alone. `claimed` tells S its buffer is being read (S
/// must wait for `completed` before reusing or unwinding it); `eagered`
/// tells R the payload now lives in `fallback`; `abandoned` tells R the
/// sender died mid-rendezvous and the receive must fail with
/// XMPI_ERR_PROC_FAILED instead of hanging.
struct RendezvousState {
    enum Phase : std::uint32_t {
        published,
        claimed,
        completed,
        eagering,
        eagered,
        abandoned,
    };

    std::atomic<std::uint32_t> phase{published};
    std::byte const* src_data = nullptr; ///< sender's contiguous payload
    std::size_t size = 0;
    std::vector<std::byte> fallback; ///< eager fallback copy (sender-filled)
    class Mailbox* sender_box = nullptr; ///< woken when the claim completes

    /// @brief Spin-waits (with yields, for oversubscribed cores) until the
    /// phase leaves @c from. Used by the receiver while the sender finishes
    /// its fallback copy and by the dying sender while the receiver finishes
    /// a claimed copy — both waits are bounded by one memcpy.
    [[nodiscard]] std::uint32_t await_leaving(std::uint32_t from) const {
        std::uint32_t seen = phase.load(std::memory_order_acquire);
        for (int spins = 0; seen == from; ++spins) {
            if (spins > 512) {
                std::this_thread::yield();
            } else {
                spin_pause();
            }
            seen = phase.load(std::memory_order_acquire);
        }
        return seen;
    }
};

/// @brief One ring entry, written by the publishing producer before the
/// slot's sequence release-store and moved out by the consumer.
struct RingEntry {
    enum class Kind : std::uint8_t { none, batch, message, rendezvous };

    Kind kind = Kind::none;
    Envelope env{0, 0, 0};  ///< message / rendezvous envelope (unused: batch)
    std::size_t bytes = 0;  ///< payload size (message / rendezvous)
    std::shared_ptr<PooledBlock> block; ///< batch records or message payload
    std::shared_ptr<SyncHandle> sync;   ///< synchronous-mode completion
    std::shared_ptr<RendezvousState> rendezvous;
};

/// @brief Header preceding each coalesced record in a batch block. The
/// source is the *communicator-level* rank (the ring's src is a world rank,
/// which differs inside subcommunicators).
struct BatchRecordHeader {
    std::int32_t context;
    std::int32_t source;
    std::int32_t tag;
    std::uint32_t size; ///< packed payload bytes following the header
};

inline constexpr std::size_t kBatchRecordAlign = alignof(BatchRecordHeader);

/// @brief Bytes one coalesced record occupies inside a batch block.
[[nodiscard]] constexpr std::size_t batch_record_bytes(std::size_t payload) {
    std::size_t const raw = sizeof(BatchRecordHeader) + payload;
    return (raw + kBatchRecordAlign - 1) / kBatchRecordAlign * kBatchRecordAlign;
}

/// @brief Bounded lock-free ring of one ordered (src,dst) pair.
///
/// Producers publish with the sequenced-slot protocol (CAS on tail_,
/// uncontended unless a progress-engine worker races the rank's own
/// thread); the consumer pops under its mailbox mutex, so pops are
/// single-threaded and need no CAS. Slots additionally carry the coalescing
/// state of an open batch: `reserve_` packs (epoch | closed | bytes) so a
/// producer can CAS-reserve append space in a still-published batch, and
/// `ready_` counts fully written bytes so the consumer never reads a
/// half-copied record. The 16-bit epoch (derived from the slot's position)
/// makes a stale append attempt against a recycled slot fail its CAS.
class PeerRing {
public:
    explicit PeerRing(std::size_t capacity); // rounded up to a power of two

    PeerRing(PeerRing const&) = delete;
    PeerRing& operator=(PeerRing const&) = delete;

    /// @brief Publishes an entry; returns false when the ring is full (the
    /// caller must fall back to the locked bypass path to preserve order).
    /// For batch entries, @c batch_bytes is the initial record's footprint.
    bool try_push(RingEntry&& entry, std::size_t batch_bytes = 0);

    /// @brief Tries to coalesce a small message into the most recently
    /// published batch slot, if it is still unconsumed and has room.
    bool try_append(Envelope const& env, std::byte const* payload, std::uint32_t size);

    /// @brief Consumer side: pops the next published entry. For batch
    /// entries the open batch is closed first (late appenders are fenced
    /// out) and @c batch_bytes receives the number of committed record
    /// bytes. Must be called by one thread at a time (the mailbox mutex).
    bool try_pop(RingEntry& entry, std::size_t& batch_bytes);

    [[nodiscard]] std::size_t capacity() const { return capacity_; }

private:
    struct alignas(64) Slot {
        std::atomic<std::uint64_t> seq{0};
        /// Batch-append state: (epoch << 48) | (closed << 47) | bytes.
        std::atomic<std::uint64_t> reserve_{0};
        std::atomic<std::uint64_t> ready_{0};
        std::byte* batch_data = nullptr;
        /// Atomic only because an appender's pre-CAS overflow check may read
        /// it concurrently with the consumer recycling the slot; a stale
        /// value is harmless (the epoch/closed CAS rejects the reservation),
        /// so every access is relaxed.
        std::atomic<std::uint32_t> batch_capacity{0};
        RingEntry entry;
    };

    static constexpr std::uint64_t kClosedBit = std::uint64_t{1} << 47;
    static constexpr std::uint64_t kBytesMask = kClosedBit - 1;
    static constexpr std::uint64_t kNoBatch = ~std::uint64_t{0};

    static constexpr std::uint64_t pack_reserve(std::uint64_t pos, std::uint64_t bytes) {
        return (pos & 0xffff) << 48 | bytes;
    }
    static constexpr std::uint64_t epoch_of(std::uint64_t packed) { return packed >> 48; }

    std::size_t capacity_;
    std::size_t mask_;
    std::unique_ptr<Slot[]> slots_;
    alignas(64) std::atomic<std::uint64_t> tail_{0};
    alignas(64) std::atomic<std::uint64_t> head_{0};
    /// Position of the most recently published batch slot (append hint).
    alignas(64) std::atomic<std::uint64_t> last_batch_{kNoBatch};
};

/// @brief Lazily constructed p x p table of PeerRings, owned by the World.
/// Ring (src,dst) is created by its first producer with a CAS install, so
/// sparse communication patterns only pay for the pairs they use.
class RingRegistry {
public:
    RingRegistry(int size, std::size_t ring_capacity);
    ~RingRegistry();

    RingRegistry(RingRegistry const&) = delete;
    RingRegistry& operator=(RingRegistry const&) = delete;

    /// @brief The ring of ordered pair (src,dst), created on first use.
    [[nodiscard]] PeerRing& ring(int src, int dst);

    /// @brief The ring of (src,dst) if any producer ever used it, else null.
    /// Consumers scan with this so untouched pairs cost one load.
    [[nodiscard]] PeerRing* peek(int src, int dst) const {
        return rings_[index(src, dst)].load(std::memory_order_acquire);
    }

    [[nodiscard]] int size() const { return size_; }

private:
    [[nodiscard]] std::size_t index(int src, int dst) const {
        return static_cast<std::size_t>(src) * static_cast<std::size_t>(size_)
               + static_cast<std::size_t>(dst);
    }

    int size_;
    std::size_t ring_capacity_;
    std::unique_ptr<std::atomic<PeerRing*>[]> rings_;
};

} // namespace detail
} // namespace xmpi
