/// @file op.hpp
/// @brief Reduction operations: the builtin MPI operations plus user-defined
/// operations with an MPI-compatible signature.
#pragma once

#include <cstdint>

#include "xmpi/datatype.hpp"

namespace xmpi {

class Datatype;

/// @brief Builtin reduction kinds.
enum class BuiltinOp : std::uint8_t {
    none,
    sum,
    prod,
    min,
    max,
    land,
    lor,
    lxor,
    band,
    bor,
    bxor,
};

/// @brief User-defined operation, MPI_User_function-compatible: combines
/// len elements of invec into inoutvec (inout = op(in, inout)).
using UserFunction = void (*)(void* invec, void* inoutvec, int* len, Datatype* const* datatype);

/// @brief A reduction operation handle: either builtin or user-defined.
class Op {
public:
    /// @brief Builtin op constructor (predefined handles only).
    explicit Op(BuiltinOp builtin) : builtin_(builtin), commutative_(true) {}

    /// @brief User-defined op.
    Op(UserFunction function, bool commutative)
        : function_(function),
          commutative_(commutative) {}

    [[nodiscard]] bool is_builtin() const { return builtin_ != BuiltinOp::none; }
    [[nodiscard]] BuiltinOp builtin() const { return builtin_; }
    [[nodiscard]] bool commutative() const { return commutative_; }

    /// @brief Applies the operation: inout[i] = op(in[i], inout[i]) for
    /// count elements laid out according to @c datatype (user layout, i.e.
    /// extent-strided). Builtin ops walk the typemap and dispatch on the
    /// element kind; user ops are invoked with the MPI-style signature.
    void apply(void const* in, void* inout, std::size_t count, Datatype const& datatype) const;

private:
    BuiltinOp builtin_ = BuiltinOp::none;
    UserFunction function_ = nullptr;
    bool commutative_ = true;
};

/// @brief Returns the predefined op handle for a builtin kind.
Op const* predefined_op(BuiltinOp op);

} // namespace xmpi
