/// @file mailbox.hpp
/// @brief Per-rank matching engine over the lock-free transport rings.
///
/// Each rank owns one Mailbox. Senders never touch it on the fast path:
/// they publish into the per-(src,dst) PeerRings (ring.hpp) and poke the
/// receiver's arrival counter. The receiving rank *pulls* — every receive
/// entry point (post, await, probe, test) first drains the rank's incoming
/// rings under the mailbox mutex, which is thereby reduced from a cross-rank
/// contention point to a consumer-side serializer.
///
/// Matching semantics are unchanged from the classic design: a message is
/// matched by (context id, source rank, tag); receives may use ANY_SOURCE /
/// ANY_TAG wildcards; posted receives are matched in posting order and
/// unexpected messages in arrival order (non-overtaking). Matching is O(1)
/// for the common case: posted receives and unexpected messages are
/// bucketed by their exact (context, source, tag) key. Wildcard receives
/// live on a separate fallback list; sequence numbers — assigned at drain
/// time, which is when a ring entry enters the matching layer — arbitrate
/// between a bucket front and a wildcard candidate.
///
/// Ordering argument for wildcards over the rings: all messages of one
/// sender travel through one ring in publish order, and the single drain
/// point assigns their mailbox sequence numbers in pop order, so the
/// per-(source, context, tag) arrival order seen by the matching layer is
/// exactly the send order — the same invariant the mutex mailbox had, now
/// established by the ring's FIFO instead of the sender's lock acquisition
/// order. Messages of *different* senders gain an order only when a drain
/// interleaves them, which MPI leaves unspecified.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "xmpi/pool.hpp"
#include "xmpi/profile.hpp"
#include "xmpi/ring.hpp"
#include "xmpi/status.hpp"
#include "xmpi/tuning.hpp"

namespace xmpi {

class Comm;
class Datatype;
class World;

namespace detail {

/// @brief A message inside the matching layer: envelope plus either a view
/// into a (possibly shared batch) payload block or a rendezvous descriptor.
struct Message {
    Envelope env;
    PayloadRef payload;                          ///< empty for rendezvous
    std::shared_ptr<SyncHandle> sync;            ///< synchronous-mode sends
    std::shared_ptr<RendezvousState> rendezvous; ///< large-message descriptor
    std::uint64_t seq = 0;                       ///< arrival order (drain order)

    [[nodiscard]] std::size_t bytes() const {
        return rendezvous != nullptr ? rendezvous->size : payload.size;
    }
};

/// @brief A posted (pending) receive. Completion is guarded by the owning
/// mailbox's mutex; the flag is additionally atomic so waiters may poll it
/// without the lock (the spin phase of Mailbox::await).
struct RecvTicket {
    Envelope pattern;
    void* buffer = nullptr;
    Datatype const* type = nullptr;
    std::size_t count = 0;
    Comm const* comm = nullptr; ///< for failure / revocation checks
    std::uint64_t seq = 0;      ///< posting order within the mailbox

    std::atomic<bool> complete = false;
    Status status;
};

/// @brief Per-rank mailbox: drains the rank's incoming rings and runs the
/// bucketed matching described in the file header.
class Mailbox {
public:
    Mailbox(World* world, PayloadPool* pool, profile::RankCounters* counters, int rank,
            int world_size)
        : world_(world),
          pool_(pool),
          counters_(counters),
          rank_(rank),
          world_size_(world_size) {}

    /// @brief Producer-side poke after publishing a ring entry: bumps the
    /// arrival counter and wakes the receiver iff it is (about to be)
    /// blocked. The empty lock/unlock pairs with sleep_locked() so a
    /// receiver between its final drain and its wait cannot miss the wake.
    void notify_push() {
        arrivals_.fetch_add(1, std::memory_order_seq_cst);
        if (sleepers_.load(std::memory_order_seq_cst) > 0) {
            { std::lock_guard lock(mutex_); }
            cv_.notify_all();
        }
    }

    /// @brief Ring-full fallback: drains @c ring in order under the mailbox
    /// mutex, then delivers @c message directly. Preserves the sender's
    /// non-overtaking order because every older entry of that ring enters
    /// the matching layer first.
    void deliver_overflow(PeerRing& ring, Message message);

    /// @brief Opportunistically drains the incoming rings (used by waiting
    /// senders and the progress engine so rendezvous and batches keep
    /// flowing while a rank blocks elsewhere). Returns true on progress.
    bool poll();

    /// @brief Tries to match a receive against the unexpected queue (after
    /// draining the rings). On match the message is consumed into @c ticket
    /// (complete = true). Otherwise the ticket is posted. Returns true iff
    /// matched immediately.
    bool post_or_match(std::shared_ptr<RecvTicket> const& ticket);

    /// @brief Blocks until the ticket completes or @c aborted() returns true.
    /// Returns false iff aborted before completion (the ticket is withdrawn).
    template <typename AbortPredicate>
    bool await(std::shared_ptr<RecvTicket> const& ticket, AbortPredicate&& aborted) {
        // In latency-bound patterns the matching send lands within a few
        // microseconds of the receive, so briefly polling skips the
        // condition-variable sleep/wake round trip. The poll must also
        // drain: completion may literally be sitting in our own rings.
        for (int i = tuning::spin_budget(); i > 0; --i) {
            if (ticket->complete.load(std::memory_order_acquire)) {
                return true;
            }
            if (arrivals_.load(std::memory_order_acquire)
                != drained_.load(std::memory_order_acquire)) {
                poll();
            }
            spin_pause();
        }
        // Middle rung: yield instead of parking. On an oversubscribed
        // machine this hands the core to the very thread we are waiting
        // on; a futex sleep/wake round trip would cost microseconds per
        // pingpong leg.
        for (int i = tuning::yield_budget(); i > 0; --i) {
            if (ticket->complete.load(std::memory_order_acquire)) {
                return true;
            }
            if (arrivals_.load(std::memory_order_acquire)
                != drained_.load(std::memory_order_acquire)) {
                poll();
            }
            std::this_thread::yield();
        }
        std::unique_lock lock(mutex_);
        while (true) {
            if (drain_rings_locked()) {
                cv_.notify_all(); // other waiters may have been completed
            }
            if (ticket->complete.load(std::memory_order_acquire)) {
                return true;
            }
            if (aborted()) {
                remove_posted_locked(ticket);
                return false;
            }
            sleep_locked(lock);
        }
    }

    /// @brief Non-blocking completion check used by request test.
    bool is_complete(std::shared_ptr<RecvTicket> const& ticket);

    /// @brief Withdraws a posted, uncompleted ticket (receive cancellation).
    /// Returns true iff the ticket was still pending and has been removed.
    bool cancel(std::shared_ptr<RecvTicket> const& ticket);

    /// @brief Probes for a matching unexpected message without consuming it.
    /// Fills @c status on success.
    bool probe(Envelope const& pattern, Status& status);

    /// @brief Blocking probe; @c aborted as in await().
    template <typename AbortPredicate>
    bool probe_blocking(Envelope const& pattern, Status& status, AbortPredicate&& aborted) {
        std::unique_lock lock(mutex_);
        while (true) {
            if (drain_rings_locked()) {
                cv_.notify_all();
            }
            if (find_unexpected_locked(pattern, status)) {
                return true;
            }
            if (aborted()) {
                return false;
            }
            sleep_locked(lock);
        }
    }

    /// @brief Parks the caller until the mailbox is poked (notify_push, a
    /// completed rendezvous claim via wake()) or @c timeout elapses. Drains
    /// before parking; used by rendezvous senders waiting for their claim.
    /// @param done Caller's completion predicate, re-checked under the
    /// mailbox mutex right before parking. Together with the signals_
    /// snapshot this closes the lost-wake race against a waker that fires
    /// between the caller's last check and the park: either the waker's
    /// signal bump is visible here (we skip the sleep), or our sleepers_
    /// increment is visible to the waker (it notifies). The only residual
    /// window — notify landing between our signal check and the wait —
    /// costs one @c timeout, never a hang.
    template <typename Rep, typename Period, typename Predicate>
    void wait_signal(std::chrono::duration<Rep, Period> timeout, Predicate&& done) {
        std::unique_lock lock(mutex_);
        std::uint64_t const signals = signals_.load(std::memory_order_seq_cst);
        if (drain_rings_locked()) {
            cv_.notify_all();
            return; // progress was made; let the caller re-check its state
        }
        if (done()) {
            return;
        }
        sleepers_.fetch_add(1, std::memory_order_seq_cst);
        if (arrivals_.load(std::memory_order_seq_cst)
                == drained_.load(std::memory_order_relaxed)
            && signals_.load(std::memory_order_seq_cst) == signals) {
            cv_.wait_for(lock, timeout);
        }
        sleepers_.fetch_sub(1, std::memory_order_relaxed);
    }

    template <typename Rep, typename Period>
    void wait_signal(std::chrono::duration<Rep, Period> timeout) {
        wait_signal(timeout, [] { return false; });
    }

    /// @brief Raises the ring-scan bound after an elastic membership
    /// transition admitted new ranks (slots [world_size, new_size) can now
    /// send to us). Monotonic; called with the elastic mutex held, so plain
    /// release-store suffices.
    void grow_world_size(int new_size) {
        if (new_size > world_size_.load(std::memory_order_relaxed)) {
            world_size_.store(new_size, std::memory_order_release);
        }
    }

    /// @brief Wakes all threads blocked on this mailbox (failure/revocation,
    /// rendezvous completion). Deliberately does NOT take the mailbox mutex:
    /// a receiver completes a rendezvous while holding its *own* mailbox
    /// lock, and two ranks exchanging large messages would ABBA-deadlock if
    /// waking the peer required the peer's lock. The signals_ bump pairs
    /// with the snapshot in wait_signal() instead (seq_cst both sides).
    void wake() {
        signals_.fetch_add(1, std::memory_order_seq_cst);
        if (sleepers_.load(std::memory_order_seq_cst) > 0) {
            cv_.notify_all();
        }
    }

private:
    friend struct MailboxTestAccess;

    using TicketQueue = std::deque<std::shared_ptr<RecvTicket>>;

    /// @brief Drains every incoming ring into the matching layer. Skips the
    /// sweep entirely when no push happened since the last one. Returns true
    /// iff any entry was consumed.
    bool drain_rings_locked();
    bool drain_one_ring_locked(PeerRing& ring);
    void dispatch_entry_locked(RingEntry&& entry, std::size_t batch_bytes);
    void deliver_locked(Message&& message);

    /// @brief Blocks on the condition variable unless a push raced in since
    /// the last drain. The bounded wait is a liveness backstop only; the
    /// seq_cst sleeper/arrival handshake with notify_push() makes a lost
    /// wakeup impossible in the protocol itself.
    void sleep_locked(std::unique_lock<std::mutex>& lock) {
        sleepers_.fetch_add(1, std::memory_order_seq_cst);
        if (arrivals_.load(std::memory_order_seq_cst)
            == drained_.load(std::memory_order_relaxed)) {
            cv_.wait_for(lock, std::chrono::milliseconds(2));
        }
        sleepers_.fetch_sub(1, std::memory_order_relaxed);
    }

    bool find_unexpected_locked(Envelope const& pattern, Status& status);
    void complete_ticket_locked(
        RecvTicket& ticket, Envelope const& env, std::byte const* data, std::size_t size,
        SyncHandle* sync);
    /// @brief Completes @c ticket from a matched message: unpacks an eager
    /// payload, or runs the receiver side of the rendezvous protocol
    /// (claim + direct copy from the sender's buffer, eager-fallback
    /// consumption, or XMPI_ERR_PROC_FAILED for an abandoned descriptor).
    void complete_from_message_locked(RecvTicket& ticket, Message&& message);
    void complete_rendezvous_locked(
        RecvTicket& ticket, Envelope const& env, RendezvousState& rdv, SyncHandle* sync);
    /// @brief Earliest-posted ticket matching @c env: min over the exact
    /// bucket front and the first matching wildcard ticket. Removes and
    /// returns it, or nullptr.
    std::shared_ptr<RecvTicket> take_matching_posted_locked(Envelope const& env);
    /// @brief Earliest-arrived unexpected message matching @c pattern
    /// (bucket lookup for exact patterns, min-seq scan over bucket fronts
    /// for wildcards). Removes and returns it into @c out. Returns false if
    /// none matches.
    bool take_matching_unexpected_locked(Envelope const& pattern, Message& out);
    /// @brief Removes a pending ticket from its bucket / the wildcard list.
    /// Returns true iff it was still present.
    bool remove_posted_locked(std::shared_ptr<RecvTicket> const& ticket);
    void enqueue_unexpected_locked(Message&& message);

    World* world_;
    PayloadPool* pool_;
    profile::RankCounters* counters_; ///< this (receiving) rank's counters
    int rank_;
    /// Ring-scan bound: how many source ranks can publish to us. Grows (only)
    /// at elastic membership transitions; constant in non-elastic worlds.
    std::atomic<int> world_size_;

    std::mutex mutex_;
    std::condition_variable cv_;
    /// Pushes into this rank's rings (producer side, seq_cst with sleepers_).
    alignas(64) std::atomic<std::uint64_t> arrivals_{0};
    /// Arrival snapshot of the last completed sweep (consumer side).
    std::atomic<std::uint64_t> drained_{0};
    std::atomic<int> sleepers_{0};
    /// Out-of-band pokes from wake() (rendezvous completion, failure); a
    /// second eventcount dimension so wake() never needs this mutex.
    std::atomic<std::uint64_t> signals_{0};

    std::uint64_t next_message_seq_ = 0;
    std::uint64_t next_ticket_seq_ = 0;
    std::unordered_map<Envelope, std::deque<Message>, EnvelopeHash> unexpected_;
    std::unordered_map<Envelope, TicketQueue, EnvelopeHash> posted_exact_;
    std::list<std::shared_ptr<RecvTicket>> posted_wild_; ///< posting order
};

} // namespace detail
} // namespace xmpi
