/// @file mailbox.hpp
/// @brief Per-rank message store implementing MPI matching semantics.
///
/// Each rank owns one Mailbox. A message is matched by (context id, source
/// rank, tag); receives may use the ANY_SOURCE / ANY_TAG wildcards. Matching
/// respects MPI's non-overtaking guarantee: posted receives are scanned in
/// posting order and unexpected messages in arrival order, so two messages
/// from the same (source, context) with the same tag are received in send
/// order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <vector>

#include "xmpi/status.hpp"

namespace xmpi {

class Comm;
class Datatype;

namespace detail {

/// @brief Message envelope used for matching.
struct Envelope {
    int context;   ///< communicator context id (pt2pt or collective space)
    int source;    ///< sender's rank within the communicator
    int tag;

    /// @brief True iff a receive pattern (which may contain wildcards in
    /// @c source / @c tag) matches a concrete message envelope.
    [[nodiscard]] bool matches(Envelope const& message) const {
        return context == message.context
               && (source == ANY_SOURCE || source == message.source)
               && (tag == ANY_TAG || tag == message.tag);
    }
};

/// @brief Completion handle for synchronous-mode sends: set when the message
/// has been matched by a receive.
struct SyncHandle {
    std::mutex mutex;
    std::condition_variable cv;
    bool matched = false;

    void signal() {
        {
            std::lock_guard lock(mutex);
            matched = true;
        }
        cv.notify_all();
    }
};

/// @brief An in-flight message: envelope plus packed payload. xmpi uses
/// eager buffered delivery, so the payload is always an owned copy.
struct Message {
    Envelope env;
    std::vector<std::byte> payload;
    std::shared_ptr<SyncHandle> sync; ///< non-null for synchronous-mode sends
};

/// @brief A posted (pending) receive. Completion is guarded by the owning
/// mailbox's mutex and signalled via its condition variable.
struct RecvTicket {
    Envelope pattern;
    void* buffer = nullptr;
    Datatype const* type = nullptr;
    std::size_t count = 0;
    Comm const* comm = nullptr; ///< for failure / revocation checks

    bool complete = false;
    Status status;
};

/// @brief Per-rank mailbox: unexpected-message queue plus posted-receive list.
class Mailbox {
public:
    /// @brief Delivers a message: matches it against posted receives (in
    /// posting order) or enqueues it as unexpected.
    void deliver(Message message);

    /// @brief Tries to match a receive against the unexpected queue. On match
    /// the message is consumed into @c ticket (complete = true). Otherwise
    /// the ticket is posted. Returns true iff matched immediately.
    bool post_or_match(std::shared_ptr<RecvTicket> const& ticket);

    /// @brief Blocks until the ticket completes or @c aborted() returns true.
    /// Returns false iff aborted before completion (the ticket is withdrawn).
    template <typename AbortPredicate>
    bool await(std::shared_ptr<RecvTicket> const& ticket, AbortPredicate&& aborted) {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [&] { return ticket->complete || aborted(); });
        if (!ticket->complete) {
            posted_.remove(ticket);
            return false;
        }
        return true;
    }

    /// @brief Non-blocking completion check used by request test.
    bool is_complete(std::shared_ptr<RecvTicket> const& ticket);

    /// @brief Withdraws a posted, uncompleted ticket (receive cancellation).
    /// Returns true iff the ticket was still pending and has been removed.
    bool cancel(std::shared_ptr<RecvTicket> const& ticket);

    /// @brief Probes for a matching unexpected message without consuming it.
    /// Fills @c status on success.
    bool probe(Envelope const& pattern, Status& status);

    /// @brief Blocking probe; @c aborted as in await().
    template <typename AbortPredicate>
    bool probe_blocking(Envelope const& pattern, Status& status, AbortPredicate&& aborted) {
        std::unique_lock lock(mutex_);
        while (true) {
            if (find_unexpected_locked(pattern, status)) {
                return true;
            }
            if (aborted()) {
                return false;
            }
            cv_.wait(lock);
        }
    }

    /// @brief Wakes all threads blocked on this mailbox (failure/revocation).
    void wake() { cv_.notify_all(); }

private:
    friend struct MailboxTestAccess;

    bool find_unexpected_locked(Envelope const& pattern, Status& status);
    static void complete_ticket_locked(RecvTicket& ticket, Message&& message);

    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<Message> unexpected_;
    std::list<std::shared_ptr<RecvTicket>> posted_;
};

} // namespace detail
} // namespace xmpi
