/// @file mailbox.hpp
/// @brief Per-rank message store implementing MPI matching semantics.
///
/// Each rank owns one Mailbox. A message is matched by (context id, source
/// rank, tag); receives may use the ANY_SOURCE / ANY_TAG wildcards. Matching
/// respects MPI's non-overtaking guarantee: posted receives are matched in
/// posting order and unexpected messages in arrival order, so two messages
/// from the same (source, context) with the same tag are received in send
/// order.
///
/// Matching is O(1) for the common case: posted receives and unexpected
/// messages are bucketed by their exact (context, source, tag) key, so an
/// exact receive and an incoming message each touch one hash bucket.
/// Wildcard receives live on a separate fallback list; sequence numbers
/// (arrival order for messages, posting order for receives) arbitrate
/// between a bucket front and a wildcard candidate so the MPI ordering
/// rules survive the split.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "xmpi/pool.hpp"
#include "xmpi/profile.hpp"
#include "xmpi/status.hpp"

namespace xmpi {

class Comm;
class Datatype;

namespace detail {

/// @brief Message envelope used for matching.
struct Envelope {
    int context;   ///< communicator context id (pt2pt or collective space)
    int source;    ///< sender's rank within the communicator
    int tag;

    /// @brief True iff a receive pattern (which may contain wildcards in
    /// @c source / @c tag) matches a concrete message envelope.
    [[nodiscard]] bool matches(Envelope const& message) const {
        return context == message.context
               && (source == ANY_SOURCE || source == message.source)
               && (tag == ANY_TAG || tag == message.tag);
    }

    /// @brief True iff the pattern contains no wildcard (bucketable).
    [[nodiscard]] bool is_exact() const {
        return source != ANY_SOURCE && tag != ANY_TAG;
    }

    bool operator==(Envelope const&) const = default;
};

/// @brief Hash for exact envelopes (bucket keys).
struct EnvelopeHash {
    [[nodiscard]] std::size_t operator()(Envelope const& env) const {
        auto mix = [](std::size_t seed, std::size_t value) {
            return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
        };
        std::size_t seed = static_cast<std::size_t>(env.context);
        seed = mix(seed, static_cast<std::size_t>(env.source));
        return mix(seed, static_cast<std::size_t>(env.tag));
    }
};

/// @brief Completion handle for synchronous-mode sends: set when the message
/// has been matched by a receive.
struct SyncHandle {
    std::mutex mutex;
    std::condition_variable cv;
    bool matched = false;

    void signal() {
        {
            std::lock_guard lock(mutex);
            matched = true;
        }
        cv.notify_all();
    }
};

/// @brief An in-flight message: envelope plus packed payload. xmpi uses
/// eager buffered delivery, so the payload is always an owned copy (drawn
/// from the world's PayloadPool and recycled after unpacking).
struct Message {
    Envelope env;
    std::vector<std::byte> payload;
    std::shared_ptr<SyncHandle> sync; ///< non-null for synchronous-mode sends
    std::uint64_t seq = 0;            ///< arrival order within the mailbox
};

/// @brief A posted (pending) receive. Completion is guarded by the owning
/// mailbox's mutex and signalled via its condition variable; the flag is
/// additionally atomic so waiters may poll it without the lock (the
/// spin-before-block phase of Mailbox::await).
struct RecvTicket {
    Envelope pattern;
    void* buffer = nullptr;
    Datatype const* type = nullptr;
    std::size_t count = 0;
    Comm const* comm = nullptr; ///< for failure / revocation checks
    std::uint64_t seq = 0;      ///< posting order within the mailbox

    std::atomic<bool> complete = false;
    Status status;
};

/// @brief Iterations of the lock-free completion poll in Mailbox::await
/// before falling back to the condition variable — a few microseconds of
/// PAUSE on current hardware, enough to cover a same-machine round trip.
inline constexpr int kSpinBeforeBlock = 2000;

/// @brief Spin budget for Mailbox::await. Polling only pays off when the
/// sender can make progress on another core while we poll; on a single
/// hardware thread the spin just delays the context switch the sender
/// needs, so it is disabled there.
inline int spin_budget() {
    static int const budget =
        std::thread::hardware_concurrency() > 1 ? kSpinBeforeBlock : 0;
    return budget;
}

/// @brief CPU-relax hint for spin loops.
inline void spin_pause() {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// @brief Per-rank mailbox: unexpected-message buckets plus posted-receive
/// buckets, each with a wildcard/scan fallback.
class Mailbox {
public:
    explicit Mailbox(PayloadPool* pool) : pool_(pool) {}

    /// @brief Delivers a message: matches it against posted receives (in
    /// posting order) or enqueues it as unexpected.
    void deliver(Message message);

    /// @brief Zero-copy fast path for contiguous payloads: if a matching
    /// receive is already posted, unpacks straight from @c data into the
    /// receiver's buffer — no payload is materialized. Otherwise copies
    /// @c data into a pooled payload and enqueues it as unexpected. The
    /// fast-path and pool counters are charged to @c counters (the sender).
    void deliver_bytes(
        Envelope const& env, std::byte const* data, std::size_t size,
        std::shared_ptr<SyncHandle> sync, profile::RankCounters& counters);

    /// @brief Tries to match a receive against the unexpected queue. On match
    /// the message is consumed into @c ticket (complete = true). Otherwise
    /// the ticket is posted. Returns true iff matched immediately.
    bool post_or_match(std::shared_ptr<RecvTicket> const& ticket);

    /// @brief Blocks until the ticket completes or @c aborted() returns true.
    /// Returns false iff aborted before completion (the ticket is withdrawn).
    template <typename AbortPredicate>
    bool await(std::shared_ptr<RecvTicket> const& ticket, AbortPredicate&& aborted) {
        // In latency-bound patterns (ping-pong, tightly coupled collectives)
        // the matching send lands within a few microseconds of the receive,
        // so briefly polling the completion flag skips the condition-variable
        // sleep/wake round trip — the dominant cost of a small-message
        // round trip. The spin is bounded, so an oversubscribed world only
        // burns a few microseconds before blocking, and aborts (failure /
        // revocation) are still observed once the slow path is entered.
        for (int i = spin_budget(); i > 0; --i) {
            if (ticket->complete.load(std::memory_order_acquire)) {
                return true;
            }
            spin_pause();
        }
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [&] {
            return ticket->complete.load(std::memory_order_acquire) || aborted();
        });
        if (!ticket->complete.load(std::memory_order_acquire)) {
            remove_posted_locked(ticket);
            return false;
        }
        return true;
    }

    /// @brief Non-blocking completion check used by request test.
    bool is_complete(std::shared_ptr<RecvTicket> const& ticket);

    /// @brief Withdraws a posted, uncompleted ticket (receive cancellation).
    /// Returns true iff the ticket was still pending and has been removed.
    bool cancel(std::shared_ptr<RecvTicket> const& ticket);

    /// @brief Probes for a matching unexpected message without consuming it.
    /// Fills @c status on success.
    bool probe(Envelope const& pattern, Status& status);

    /// @brief Blocking probe; @c aborted as in await().
    template <typename AbortPredicate>
    bool probe_blocking(Envelope const& pattern, Status& status, AbortPredicate&& aborted) {
        std::unique_lock lock(mutex_);
        while (true) {
            if (find_unexpected_locked(pattern, status)) {
                return true;
            }
            if (aborted()) {
                return false;
            }
            cv_.wait(lock);
        }
    }

    /// @brief Wakes all threads blocked on this mailbox (failure/revocation).
    void wake() { cv_.notify_all(); }

private:
    friend struct MailboxTestAccess;

    using TicketQueue = std::deque<std::shared_ptr<RecvTicket>>;

    bool find_unexpected_locked(Envelope const& pattern, Status& status);
    void complete_ticket_locked(
        RecvTicket& ticket, Envelope const& env, std::byte const* data, std::size_t size,
        SyncHandle* sync);
    /// @brief Earliest-posted ticket matching @c env: min over the exact
    /// bucket front and the first matching wildcard ticket. Removes and
    /// returns it, or nullptr.
    std::shared_ptr<RecvTicket> take_matching_posted_locked(Envelope const& env);
    /// @brief Earliest-arrived unexpected message matching @c pattern
    /// (bucket lookup for exact patterns, min-seq scan over bucket fronts
    /// for wildcards). Removes and returns it into @c out. Returns false if
    /// none matches.
    bool take_matching_unexpected_locked(Envelope const& pattern, Message& out);
    /// @brief Removes a pending ticket from its bucket / the wildcard list.
    /// Returns true iff it was still present.
    bool remove_posted_locked(std::shared_ptr<RecvTicket> const& ticket);
    void enqueue_unexpected_locked(Message&& message);

    std::mutex mutex_;
    std::condition_variable cv_;
    PayloadPool* pool_;
    std::uint64_t next_message_seq_ = 0;
    std::uint64_t next_ticket_seq_ = 0;
    std::unordered_map<Envelope, std::deque<Message>, EnvelopeHash> unexpected_;
    std::unordered_map<Envelope, TicketQueue, EnvelopeHash> posted_exact_;
    std::list<std::shared_ptr<RecvTicket>> posted_wild_; ///< posting order
};

} // namespace detail
} // namespace xmpi
