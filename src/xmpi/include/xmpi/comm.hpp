/// @file comm.hpp
/// @brief Communicators, groups, and (sparse graph) topologies.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

namespace xmpi {

class World;

/// @brief An ordered set of world ranks (mirrors MPI_Group). Reference
/// counted handle semantics.
class Group {
public:
    explicit Group(std::vector<int> world_ranks) : world_ranks_(std::move(world_ranks)) {}

    [[nodiscard]] int size() const { return static_cast<int>(world_ranks_.size()); }
    [[nodiscard]] std::vector<int> const& world_ranks() const { return world_ranks_; }

    /// @brief Rank of the given world rank within this group, or UNDEFINED.
    [[nodiscard]] int rank_of(int world_rank) const;

    /// @name Group set operations (each returns a new group handle)
    /// @{
    [[nodiscard]] Group* incl(std::vector<int> const& ranks) const;
    [[nodiscard]] Group* excl(std::vector<int> const& ranks) const;
    [[nodiscard]] Group* union_with(Group const& other) const;
    [[nodiscard]] Group* intersection_with(Group const& other) const;
    [[nodiscard]] Group* difference_with(Group const& other) const;
    /// @}

    void retain() { refcount_.fetch_add(1, std::memory_order_relaxed); }
    void release() {
        if (refcount_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            delete this;
        }
    }

private:
    std::vector<int> world_ranks_;
    std::atomic<int> refcount_{1};
};

/// @brief Sparse graph topology attached to a communicator
/// (MPI_Dist_graph_create_adjacent).
struct GraphTopology {
    std::vector<int> sources;      ///< comm ranks we receive from
    std::vector<int> destinations; ///< comm ranks we send to
};

namespace detail {

/// @brief Shared synchronisation state for non-blocking barriers on one
/// communicator. Each rank's i-th ibarrier call joins round i; a round
/// completes once all ranks arrived. Rounds complete in order because every
/// rank enters them in order.
struct IbarrierSync {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<std::uint64_t> next_round_of_rank; ///< per comm rank
    std::map<std::uint64_t, int> arrivals;         ///< round -> #arrived
    std::uint64_t completed_rounds = 0;            ///< rounds [0, this) done
};

/// @brief Shared state for the fault-tolerant collectives (shrink / agree),
/// which must complete among the *surviving* ranks only and therefore cannot
/// use the regular transport (it errors out on failed peers).
/// Membership of a round is tracked by explicit world-rank lists (not
/// counters): a rank that dies mid-round — after contributing, or before
/// picking up the result — is pruned from the lists on every wake, so the
/// round completes among the actual survivors instead of waiting forever for
/// a dead rank's arrival or consumption.
struct FtSync {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<int> arrived_ranks; ///< world ranks that entered the open round
    std::vector<int> pending_ranks; ///< world ranks yet to pick up the result
    void* result = nullptr;         ///< round result (e.g. the shrunken communicator)
    std::function<void(void*)> retire; ///< disposes @c result when a round closes
    int agree_accumulator = ~0;     ///< bitwise-AND accumulator for agree()
};

} // namespace detail

/// @brief A communicator: a group of ranks with private matching contexts.
///
/// One Comm object is shared by all member ranks (they run in one process);
/// the calling rank is derived from the thread-local rank context. Each
/// communicator owns two context ids: one for point-to-point traffic and a
/// disjoint one for the internal messages of collective operations, so user
/// messages can never match collective-internal ones.
class Comm {
public:
    Comm(World* world, std::vector<int> members);
    ~Comm();

    Comm(Comm const&) = delete;
    Comm& operator=(Comm const&) = delete;

    [[nodiscard]] World& world() const { return *world_; }
    [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }
    /// @brief Rank of the *calling thread* within this communicator.
    [[nodiscard]] int rank() const;
    /// @brief World rank of the given comm rank.
    [[nodiscard]] int world_rank_of(int comm_rank) const { return members_[comm_rank]; }
    [[nodiscard]] std::vector<int> const& members() const { return members_; }
    /// @brief Comm rank of a world rank, or UNDEFINED if not a member.
    [[nodiscard]] int comm_rank_of_world_rank(int world_rank) const;

    [[nodiscard]] int pt2pt_context() const { return pt2pt_context_; }
    [[nodiscard]] int collective_context() const { return collective_context_; }
    /// @brief Context for non-blocking collectives; their messages are
    /// disambiguated by a per-initiation sequence tag, so several may be in
    /// flight concurrently (they must be initiated in the same order on all
    /// ranks, as the MPI standard requires).
    [[nodiscard]] int nbc_context() const { return nbc_context_; }
    /// @brief Per-rank initiation counter: collectives are initiated in the
    /// same order on all ranks (MPI rule), so the i-th non-blocking
    /// collective gets the same tag everywhere.
    [[nodiscard]] int next_nbc_sequence() {
        auto& counter = nbc_sequence_[static_cast<std::size_t>(rank())];
        return static_cast<int>(counter.fetch_add(1, std::memory_order_relaxed) % 0x3fffffff);
    }

    /// @name Graph topology (per rank: each rank has its own adjacency)
    /// @{
    [[nodiscard]] bool has_topology() const {
        return has_topology_.load(std::memory_order_acquire);
    }
    /// @brief The *calling rank's* adjacency lists.
    [[nodiscard]] GraphTopology const& topology() const {
        return rank_topologies_[static_cast<std::size_t>(rank())];
    }
    /// @brief Registers the adjacency of one rank (each rank writes only its
    /// own slot during topology creation, so no locking is needed).
    void set_rank_topology(int comm_rank, GraphTopology topology) {
        rank_topologies_[static_cast<std::size_t>(comm_rank)] = std::move(topology);
        has_topology_.store(true, std::memory_order_release);
    }
    /// @brief Copies the whole topology table (communicator duplication).
    void copy_topology_table_from(Comm const& other) {
        rank_topologies_ = other.rank_topologies_;
        has_topology_.store(other.has_topology(), std::memory_order_release);
    }
    /// @}

    /// @name ULFM state
    /// @{
    [[nodiscard]] bool revoked() const { return revoked_.load(std::memory_order_acquire); }
    void mark_revoked() { revoked_.store(true, std::memory_order_release); }
    /// @brief True iff any member rank has failed.
    [[nodiscard]] bool any_member_failed() const;
    /// @brief World ranks of surviving members, in comm rank order.
    [[nodiscard]] std::vector<int> surviving_members() const;
    /// @}

    /// @name Membership-epoch state (elastic worlds, see elastic.hpp)
    /// @{
    /// @brief Gates this communicator on membership epoch @c epoch: once the
    /// world moves past it, every operation reports XMPI_ERR_EPOCH. Only the
    /// per-epoch elastic communicators are gated; derived communicators
    /// (dup/split) and non-elastic worlds are never affected.
    void set_epoch_gate(std::uint64_t epoch) {
        birth_epoch_ = epoch;
        epoch_gated_ = true;
    }
    [[nodiscard]] bool epoch_gated() const { return epoch_gated_; }
    [[nodiscard]] std::uint64_t birth_epoch() const { return birth_epoch_; }
    /// @brief True iff this communicator is gated and the world's membership
    /// has moved past its birth epoch.
    [[nodiscard]] bool epoch_stale() const;
    /// @}

    [[nodiscard]] detail::IbarrierSync& ibarrier_sync() { return ibarrier_; }
    [[nodiscard]] detail::FtSync& ft_sync() { return ft_; }

    /// @name Handle reference counting
    /// @{
    void retain() { refcount_.fetch_add(1, std::memory_order_relaxed); }
    void release() {
        if (refcount_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            delete this;
        }
    }
    /// @}

private:
    World* world_;
    std::vector<int> members_;
    std::unordered_map<int, int> world_to_comm_rank_;
    int pt2pt_context_;
    int collective_context_;
    int nbc_context_;
    std::unique_ptr<std::atomic<std::uint32_t>[]> nbc_sequence_;
    std::vector<GraphTopology> rank_topologies_;
    std::atomic<bool> has_topology_{false};
    std::atomic<bool> revoked_{false};
    std::uint64_t birth_epoch_ = 0; ///< written before the comm is published
    bool epoch_gated_ = false;
    detail::IbarrierSync ibarrier_;
    detail::FtSync ft_;
    std::atomic<int> refcount_{1};
};

} // namespace xmpi
