/// @file status.hpp
/// @brief Receive status and the reserved rank/tag constants.
#pragma once

#include <cstddef>
#include <cstdint>

namespace xmpi {

/// @brief Special buffer address marking an in-place operation (MPI_IN_PLACE).
inline void* const IN_PLACE = reinterpret_cast<void*>(static_cast<std::intptr_t>(-1));

/// @name Wildcards and reserved ranks (mirroring MPI)
/// @{
inline constexpr int ANY_SOURCE = -1;
inline constexpr int ANY_TAG    = -1;
inline constexpr int PROC_NULL  = -2;
inline constexpr int ROOT_NULL  = -3;
inline constexpr int UNDEFINED  = -32766;
/// @}

/// @brief Status of a completed receive (or probe). Mirrors MPI_Status.
struct Status {
    int source = UNDEFINED;       ///< rank of the sender within the communicator
    int tag = UNDEFINED;          ///< tag of the matched message
    int error = 0;                ///< XMPI error code
    std::size_t bytes = 0;        ///< payload size in (packed) bytes

    /// @brief Number of elements of @c type_size bytes in the payload
    /// (MPI_Get_count); returns UNDEFINED if not divisible.
    [[nodiscard]] int count(std::size_t type_size) const {
        if (type_size == 0) {
            return 0;
        }
        if (bytes % type_size != 0) {
            return UNDEFINED;
        }
        return static_cast<int>(bytes / type_size);
    }
};

} // namespace xmpi
