/// @file win.hpp
/// @brief One-sided communication (RMA) windows.
///
/// Because every rank of a world lives in the same address space, an xmpi
/// window is simply a table of per-rank exposed memory regions plus the
/// synchronization state that makes accesses well-ordered: one-sided ops are
/// queued on the *origin* rank and applied as plain memory copies at the next
/// synchronization point (the MPI "separate memory model" collapsed to its
/// in-process essence).
///
/// Synchronization modes:
///  - **Active target**: `fence()` drains the calling rank's pending-op queue
///    and runs a barrier over the window's communicator. The barrier gives
///    the happens-before edge that makes post-fence local reads of window
///    memory race-free, and — because it is the error-propagating
///    dissemination barrier from coll_basic.cpp — a fence over a window with
///    failed ranks returns XMPI_ERR_PROC_FAILED instead of hanging.
///  - **Passive target**: `lock(type, target)` / `unlock(target)` bracket an
///    access epoch towards one target. Shared locks admit concurrent
///    readers; an exclusive lock excludes all other origins. Pending ops for
///    the target are drained inside `unlock()` *before* the lock is
///    released, so the next lock holder observes them. Lock waiters prune
///    holders that died (ULFM) instead of waiting on them forever.
///
/// Ordering/atomicity: applied ops take a per-target apply mutex, so
/// concurrent accumulates to the same target are element-wise atomic (the
/// MPI accumulate guarantee). Accumulates apply *eagerly* at call time —
/// user-defined reduction ops handed in by the binding layer are only valid
/// for the duration of the wrapper call (see kamping::OpActivation), so they
/// must not sit in a queue.
///
/// Zero-copy: a put with a contiguous origin datatype queues a *reference*
/// to the caller's buffer and the drain is a single memcpy into the target
/// region (counted in rma_bytes_zero_copied); the caller's buffer must stay
/// valid until the closing synchronization call, exactly as in MPI. Puts
/// with non-contiguous origin layouts pack into a PayloadPool buffer at call
/// time instead.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <memory>
#include <vector>

#include "xmpi/datatype.hpp"
#include "xmpi/op.hpp"
#include "xmpi/profile.hpp"

namespace xmpi {

class Comm;
class World;

/// @name Passive-target lock types (MPI_LOCK_*)
/// @{
inline constexpr int LOCK_SHARED    = 1;
inline constexpr int LOCK_EXCLUSIVE = 2;
/// @}

/// @brief An RMA window: per-rank exposed memory over one communicator.
///
/// Created collectively via detail::win_create (the leader allocates, the
/// pointer is broadcast, every member exposes its region, a barrier makes
/// the table visible — the same shared-object idiom as communicator
/// creation). Reference counted with one count per member, dropped by
/// win_free.
class Win {
public:
    /// @brief One rank's exposed region.
    struct RankMemory {
        void* base = nullptr;
        std::size_t bytes = 0;
        int disp_unit = 1;
    };

    /// @brief Constructs the shared window object for @c comm (leader only;
    /// use detail::win_create). Starts with one refcount per comm member.
    explicit Win(Comm* comm);
    ~Win();

    Win(Win const&) = delete;
    Win& operator=(Win const&) = delete;

    [[nodiscard]] Comm& comm() const { return *comm_; }
    [[nodiscard]] World& world() const;
    [[nodiscard]] int size() const { return static_cast<int>(ranks_.size()); }

    /// @brief Publishes the calling rank's exposed region (win_create only;
    /// the creation barrier orders it before any remote access).
    void expose(int comm_rank, void* base, std::size_t bytes, int disp_unit);
    /// @brief Allocates a zero-initialized *library-owned* region for
    /// @c comm_rank and exposes it (win_allocate only). Owned regions live
    /// exactly as long as this Win object — until the last member dropped
    /// its reference — so a remote atomic can never dangle on storage that
    /// unwound with a failed member's stack (the hazard of exposing
    /// caller-scoped memory under ULFM kills).
    void* allocate_region(int comm_rank, std::size_t bytes, int disp_unit);
    [[nodiscard]] RankMemory const& memory_of(int comm_rank) const {
        return ranks_[static_cast<std::size_t>(comm_rank)];
    }

    /// @name One-sided operations (origin = calling rank). Return XMPI codes.
    /// @{
    int put(
        void const* origin_addr, std::size_t origin_count, Datatype& origin_type, int target,
        std::ptrdiff_t target_disp, std::size_t target_count, Datatype& target_type);
    int get(
        void* origin_addr, std::size_t origin_count, Datatype& origin_type, int target,
        std::ptrdiff_t target_disp, std::size_t target_count, Datatype& target_type);
    /// @brief Applied eagerly (element-wise atomic under the target's apply
    /// mutex); requires contiguous origin and target datatypes.
    int accumulate(
        void const* origin_addr, std::size_t origin_count, Datatype& origin_type, int target,
        std::ptrdiff_t target_disp, std::size_t target_count, Datatype& target_type,
        Op const& op);
    /// @brief Atomic read-modify-write of one element: fetches the target
    /// value into @c result_addr, then applies `target = op(origin, target)`,
    /// all under the target's apply mutex. Eager like accumulate — the
    /// fetched value is valid on return (MPI_Fetch_and_op + flush collapsed
    /// to the in-process essence). Requires a contiguous datatype.
    int fetch_and_op(
        void const* origin_addr, void* result_addr, Datatype& datatype, int target,
        std::ptrdiff_t target_disp, Op const& op);
    /// @brief Atomic compare-and-swap of one element: fetches the target
    /// value into @c result_addr and, iff it equals @c compare_addr
    /// byte-wise, stores @c origin_addr — under the target's apply mutex,
    /// valid on return. The CAS succeeded iff the fetched value equals the
    /// compare value. Requires a contiguous datatype.
    int compare_and_swap(
        void const* origin_addr, void const* compare_addr, void* result_addr,
        Datatype& datatype, int target, std::ptrdiff_t target_disp);
    /// @}

    /// @name Synchronization
    /// @{
    int fence();
    int lock(int lock_type, int target);
    int unlock(int target);
    /// @}

    /// @brief True iff the calling rank may access @c target right now
    /// (inside a fence epoch or holding a lock on the target).
    [[nodiscard]] bool epoch_open(int origin, int target);

    /// @brief Preconditions for win_free on the calling rank: no lock held,
    /// no pending ops. Returns XMPI_ERR_RMA_SYNC when violated.
    int check_free(int origin);

    /// @brief Wakes ranks blocked in lock() (called by World::wake_all when
    /// failure state changes, and by unlock()).
    void notify_waiters();

    /// @name Reference counting (one count per comm member)
    /// @{
    void retain() { refcount_.fetch_add(1, std::memory_order_relaxed); }
    void release();
    /// @}

private:
    /// @brief A queued put/get, applied when the origin's epoch closes.
    struct PendingOp {
        enum class Kind : std::uint8_t { put, get };
        Kind kind = Kind::put;
        int target = -1;               ///< comm rank
        std::size_t offset_bytes = 0;  ///< into the target's exposed region
        std::size_t origin_count = 0;
        std::size_t target_count = 0;
        Datatype* origin_type = nullptr; ///< retained (gets only)
        Datatype* target_type = nullptr; ///< retained
        void const* origin_read = nullptr; ///< zero-copy put source
        void* origin_write = nullptr;      ///< get destination
        std::vector<std::byte> staged;     ///< packed payload (pooled)
    };

    /// @brief Passive-target lock state of one target rank (under mutex_).
    struct TargetLock {
        int exclusive_holder = -1;      ///< comm rank, -1 if none
        std::vector<int> shared_holders; ///< comm ranks
    };

    [[nodiscard]] profile::RankCounters& counters_of(int comm_rank) const;
    [[nodiscard]] bool target_failed(int comm_rank) const;

    /// @brief Common op validation: rank range, displacement, epoch, bounds,
    /// failure state, matching transfer sizes. On success fills @c offset.
    int check_op(
        int origin, int target, std::ptrdiff_t target_disp, std::size_t origin_count,
        Datatype const& origin_type, std::size_t target_count, Datatype const& target_type,
        std::size_t& offset);

    /// @brief Applies every pending op of @c origin (all targets, or only
    /// @c target_filter when >= 0); returns the first error, keeps going.
    int drain_pending(int origin, int target_filter);
    int apply_pending(PendingOp& op, profile::RankCounters& counters);
    void discard_pending(PendingOp& op);

    [[nodiscard]] bool holds_lock_locked(int origin, int target) const;
    [[nodiscard]] bool holds_any_lock_locked(int origin) const;
    /// @brief Drops lock holders whose rank has failed (ULFM: a dead holder
    /// must not block live origins forever).
    void prune_failed_holders_locked();

    Comm* comm_;                        ///< retained
    std::vector<RankMemory> ranks_;     ///< slot i written by rank i pre-barrier
    std::vector<std::vector<std::byte>> owned_; ///< win_allocate regions, same slot discipline
    std::vector<char> fence_open_;      ///< per-rank, touched only by the owner
    std::vector<std::vector<PendingOp>> pending_; ///< per-origin, owner-only
    std::vector<TargetLock> locks_;     ///< under mutex_
    std::unique_ptr<std::mutex[]> apply_mutex_; ///< per-target op application
    std::mutex mutex_;
    std::condition_variable cv_;
    std::atomic<int> refcount_{1};
};

namespace detail {

/// @brief Collective window creation over @c comm (see Win). On success
/// every member holds one reference to the same Win in @c *win.
int win_create(void* base, std::size_t bytes, int disp_unit, Comm& comm, Win** win);

/// @brief Collective window creation with library-owned regions: each
/// member's zero-initialized region is allocated inside the Win and freed
/// with it (see Win::allocate_region). @c *baseptr receives the caller's
/// region.
int win_allocate(std::size_t bytes, int disp_unit, Comm& comm, void** baseptr, Win** win);

/// @brief Collective window destruction: barrier, then drop one reference.
int win_free(Win& win);

} // namespace detail

} // namespace xmpi
