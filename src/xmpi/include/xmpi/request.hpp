/// @file request.hpp
/// @brief Request objects for non-blocking operations.
#pragma once

#include <cstdint>
#include <memory>

#include "xmpi/error.hpp"
#include "xmpi/status.hpp"

namespace xmpi {

class Comm;

namespace detail {
struct RecvTicket;
struct SyncHandle;
class Mailbox;
} // namespace detail

/// @brief A non-blocking operation handle. Concrete subclasses implement the
/// completion semantics of the operation kind.
class Request {
public:
    virtual ~Request() = default;

    /// @brief Non-blocking completion check; fills @c status when complete.
    /// Idempotent once complete.
    virtual bool test(Status& status) = 0;

    /// @brief Completion check that never consumes: unlike test(), a
    /// complete persistent request stays active (its completion remains
    /// consumable). The array completion functions probe with this before
    /// committing to consumption (e.g. Testall's all-or-nothing contract).
    [[nodiscard]] virtual bool peek() {
        Status status;
        return test(status);
    }

    /// @brief Blocks until complete; fills @c status.
    virtual void wait(Status& status) = 0;

    /// @brief Attempts to cancel the operation. Only pending receives are
    /// cancellable; returns true iff cancellation succeeded.
    virtual bool cancel() { return false; }

    /// @name Persistent-request lifecycle (MPI-4 Send_init/Start family).
    /// Ordinary requests are consumed by completion; persistent ones cycle
    /// inactive -> started -> complete(inactive) until Request_free.
    /// @{
    /// @brief True iff this is a persistent request (survives completion).
    [[nodiscard]] virtual bool persistent() const { return false; }
    /// @brief False iff this is a persistent request between completion (or
    /// creation) and the next start(). The array completion functions treat
    /// inactive requests like null handles.
    [[nodiscard]] virtual bool active() const { return true; }
    /// @brief (Re)starts a persistent operation; XMPI_ERR_REQUEST on
    /// non-persistent or already-active requests.
    virtual int start() { return XMPI_ERR_REQUEST; }
    /// @}

protected:
    Request() = default;
    Request(Request const&) = delete;
    Request& operator=(Request const&) = delete;
};

namespace detail {

/// @brief Request for an operation that completed at initiation (eager
/// buffered sends).
class CompletedRequest final : public Request {
public:
    explicit CompletedRequest(Status status) : status_(status) {}
    bool test(Status& status) override {
        status = status_;
        return true;
    }
    void wait(Status& status) override { status = status_; }

private:
    Status status_;
};

/// @brief Request completing when a SyncHandle fires (synchronous-mode sends).
class SyncRequest final : public Request {
public:
    SyncRequest(std::shared_ptr<SyncHandle> handle, Comm const* comm)
        : handle_(std::move(handle)),
          comm_(comm) {}
    bool test(Status& status) override;
    void wait(Status& status) override;

private:
    std::shared_ptr<SyncHandle> handle_;
    Comm const* comm_;
};

/// @brief Request wrapping a posted receive.
class RecvRequest final : public Request {
public:
    RecvRequest(std::shared_ptr<RecvTicket> ticket, Mailbox* mailbox)
        : ticket_(std::move(ticket)),
          mailbox_(mailbox) {}
    bool test(Status& status) override;
    void wait(Status& status) override;
    bool cancel() override;

private:
    /// @brief If the peer failed / comm was revoked, completes the request
    /// with the corresponding error status. Returns true iff so.
    bool check_failed(Status& status);

    std::shared_ptr<RecvTicket> ticket_;
    Mailbox* mailbox_;
};

/// @brief Base of the persistent requests (XMPI_Send_init family): stores
/// the argument pack once and, on every start(), initiates the operation by
/// creating a fresh *inner* one-shot request that carries the completion
/// semantics. Completion makes the request inactive again instead of
/// consuming it; Wait/Test on an inactive persistent request return
/// immediately with an empty status (MPI semantics).
///
/// Not thread-safe by itself: start/test/wait must come from the owning
/// rank (the partitioned subclasses add their own synchronization for
/// foreign producer threads).
class PersistentRequest : public Request {
public:
    /// Freeing an active persistent request first tries to cancel the
    /// in-flight instance and otherwise blocks until it completes: the
    /// operation references user buffers that die with the caller's scope.
    ~PersistentRequest() override;

    [[nodiscard]] bool persistent() const final { return true; }
    [[nodiscard]] bool active() const override { return active_; }

    int start() override;
    bool test(Status& status) override;
    [[nodiscard]] bool peek() override;
    void wait(Status& status) override;
    bool cancel() override;

    /// @brief Completed start()s so far (for diagnostics and spans).
    [[nodiscard]] std::uint64_t restarts() const { return restarts_; }

protected:
    /// @brief Initiates one instance of the operation: must install the
    /// inner request tracking it (or a CompletedRequest for operations that
    /// finish at initiation) and return an error class.
    virtual int do_start() = 0;

    /// @brief The empty status reported for inactive requests.
    [[nodiscard]] static Status inactive_status();

    std::unique_ptr<Request> inner_;
    bool active_ = false;
    std::uint64_t restarts_ = 0;
};

// Non-blocking collectives are backed by the shared progress engine
// (xmpi/progress.hpp): initiation enqueues a resumable task on a bounded
// worker pool instead of spawning a thread per request. The request handle
// type (EngineRequest) is an implementation detail of progress.cpp.

/// @brief Request for a non-blocking barrier round (see Comm::ibarrier).
class IbarrierRequest final : public Request {
public:
    IbarrierRequest(Comm* comm, std::uint64_t round) : comm_(comm), round_(round) {}
    bool test(Status& status) override;
    void wait(Status& status) override;

private:
    Comm* comm_;
    std::uint64_t round_;
};

} // namespace detail
} // namespace xmpi
