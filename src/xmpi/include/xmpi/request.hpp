/// @file request.hpp
/// @brief Request objects for non-blocking operations.
#pragma once

#include <cstdint>
#include <memory>

#include "xmpi/status.hpp"

namespace xmpi {

class Comm;

namespace detail {
struct RecvTicket;
struct SyncHandle;
class Mailbox;
} // namespace detail

/// @brief A non-blocking operation handle. Concrete subclasses implement the
/// completion semantics of the operation kind.
class Request {
public:
    virtual ~Request() = default;

    /// @brief Non-blocking completion check; fills @c status when complete.
    /// Idempotent once complete.
    virtual bool test(Status& status) = 0;

    /// @brief Blocks until complete; fills @c status.
    virtual void wait(Status& status) = 0;

    /// @brief Attempts to cancel the operation. Only pending receives are
    /// cancellable; returns true iff cancellation succeeded.
    virtual bool cancel() { return false; }

protected:
    Request() = default;
    Request(Request const&) = delete;
    Request& operator=(Request const&) = delete;
};

namespace detail {

/// @brief Request for an operation that completed at initiation (eager
/// buffered sends).
class CompletedRequest final : public Request {
public:
    explicit CompletedRequest(Status status) : status_(status) {}
    bool test(Status& status) override {
        status = status_;
        return true;
    }
    void wait(Status& status) override { status = status_; }

private:
    Status status_;
};

/// @brief Request completing when a SyncHandle fires (synchronous-mode sends).
class SyncRequest final : public Request {
public:
    SyncRequest(std::shared_ptr<SyncHandle> handle, Comm const* comm)
        : handle_(std::move(handle)),
          comm_(comm) {}
    bool test(Status& status) override;
    void wait(Status& status) override;

private:
    std::shared_ptr<SyncHandle> handle_;
    Comm const* comm_;
};

/// @brief Request wrapping a posted receive.
class RecvRequest final : public Request {
public:
    RecvRequest(std::shared_ptr<RecvTicket> ticket, Mailbox* mailbox)
        : ticket_(std::move(ticket)),
          mailbox_(mailbox) {}
    bool test(Status& status) override;
    void wait(Status& status) override;
    bool cancel() override;

private:
    /// @brief If the peer failed / comm was revoked, completes the request
    /// with the corresponding error status. Returns true iff so.
    bool check_failed(Status& status);

    std::shared_ptr<RecvTicket> ticket_;
    Mailbox* mailbox_;
};

// Non-blocking collectives are backed by the shared progress engine
// (xmpi/progress.hpp): initiation enqueues a resumable task on a bounded
// worker pool instead of spawning a thread per request. The request handle
// type (EngineRequest) is an implementation detail of progress.cpp.

/// @brief Request for a non-blocking barrier round (see Comm::ibarrier).
class IbarrierRequest final : public Request {
public:
    IbarrierRequest(Comm* comm, std::uint64_t round) : comm_(comm), round_(round) {}
    bool test(Status& status) override;
    void wait(Status& status) override;

private:
    Comm* comm_;
    std::uint64_t round_;
};

} // namespace detail
} // namespace xmpi
