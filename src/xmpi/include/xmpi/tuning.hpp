/// @file tuning.hpp
/// @brief Runtime-tunable transport knobs.
///
/// Unlike the compile-time collective thresholds in netmodel.hpp (which gate
/// algorithm *selection* and want constant-folding), the transport knobs
/// below trade latency against CPU burn and memory, which depends on the
/// machine the emulation runs on — so they are runtime values, seeded once
/// from the environment and mutable from tests before a World is started.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace xmpi::tuning {

/// @brief Hard-coded defaults (exposed for tests and documentation).
inline constexpr int kDefaultSpinBeforeBlock = 2000;
inline constexpr int kDefaultYieldBeforeBlock = 8;
inline constexpr std::size_t kDefaultRendezvousThreshold = 32 * 1024;
inline constexpr std::size_t kDefaultCoalesceMaxBytes = 512;
inline constexpr std::size_t kDefaultCoalesceWatermark = 8 * 1024;
inline constexpr std::size_t kDefaultRingCapacity = 64;
inline constexpr long kDefaultRendezvousFallbackUs = 200;

/// @brief Transport tuning knobs. Read on every send/receive; mutate only
/// while no World is running (tests) — the environment override is the
/// supported production mechanism.
struct Transport {
    /// Iterations a receive (or rendezvous wait) spins on its completion
    /// flag before blocking on the mailbox. Env: XMPI_SPIN_BUDGET.
    int spin_before_block = kDefaultSpinBeforeBlock;

    /// After spinning, iterations spent polling with sched-yield in between
    /// before parking on the condition variable. On an oversubscribed (or
    /// single-core) machine a yield hands the CPU straight to the peer we
    /// are waiting on, where a futex sleep/wake round trip would cost
    /// microseconds. Env: XMPI_YIELD_BUDGET.
    int yield_before_block = kDefaultYieldBeforeBlock;

    /// Contiguous point-to-point sends of at least this many bytes use the
    /// receiver-pulled rendezvous protocol. Env: XMPI_RENDEZVOUS_THRESHOLD.
    std::size_t rendezvous_threshold = kDefaultRendezvousThreshold;

    /// Contiguous sends up to this many bytes are eligible for coalescing
    /// into a shared batch slot. Env: XMPI_COALESCE_MAX_BYTES.
    std::size_t coalesce_max_bytes = kDefaultCoalesceMaxBytes;

    /// Capacity of one batch block: how many bytes of coalesced records a
    /// single ring slot can aggregate. Env: XMPI_COALESCE_WATERMARK.
    std::size_t coalesce_watermark = kDefaultCoalesceWatermark;

    /// Slots per (src,dst) PeerRing, rounded up to a power of two.
    /// Env: XMPI_RING_CAPACITY.
    std::size_t ring_capacity = kDefaultRingCapacity;

    /// Microseconds a rendezvous sender waits for a receiver to claim the
    /// descriptor before falling back to an eager copy (which restores the
    /// plain eager completion semantics, so programs relying on eager
    /// buffering cannot deadlock). Env: XMPI_RENDEZVOUS_FALLBACK_US.
    long rendezvous_fallback_us = kDefaultRendezvousFallbackUs;
};

/// @brief The process-wide transport knobs, environment-seeded on first use.
[[nodiscard]] Transport& transport();

/// @brief Effective spin budget for spin-then-block waits: 0 when the
/// machine has a single hardware thread (spinning only steals cycles from
/// the thread we are waiting on), else @c transport().spin_before_block.
/// An explicit XMPI_SPIN_BUDGET wins even on one hardware thread.
[[nodiscard]] int spin_budget();

/// @brief Yield budget for the middle rung of the spin-yield-block ladder.
/// Unlike spin_budget() this does NOT collapse on a single hardware thread:
/// a yield is exactly how the waited-on peer gets the core there.
[[nodiscard]] int yield_budget();

// ---------------------------------------------------------------------------
// Collective algorithm selection (the registry seam)
// ---------------------------------------------------------------------------
//
// Every collective with at least one implemented algorithm is represented in
// a process-wide registry (src/coll_registry.cpp); the collective translation
// units register their algorithms at first use and dispatch through
// select(). Selection layers, strongest first:
//
//   1. an explicit force (coll().force_algorithm — benches and tests),
//   2. a loaded tuning table cell (op, p, size bucket) — measured data,
//   3. the alpha/beta network model (argmin modeled cost), when active,
//   4. the static preference thresholds baked into each algorithm entry.
//
// Hard correctness constraints (op commutativity, power-of-two rank counts,
// hierarchy requiring p > node size) live in each entry's applicable()
// predicate and can never be overridden by a table or a force.

/// @brief The collective operations with registry entries. Order is part of
/// the tuning-table format (cells name ops by coll_op_name()).
enum class CollOp : int {
    barrier,
    bcast,
    gather,
    gatherv,
    scatter,
    scatterv,
    allgather,
    allgatherv,
    alltoall,
    alltoallv,
    alltoallw,
    neighbor_alltoallv,
    reduce,
    allreduce,
    reduce_scatter,
    scan,
    count_ ///< number of entries; keep last
};

inline constexpr std::size_t num_coll_ops = static_cast<std::size_t>(CollOp::count_);

/// @brief Stable lower-case name of a collective op ("allreduce", ...).
[[nodiscard]] char const* coll_op_name(CollOp op);
/// @brief Parses a coll_op_name(); returns CollOp::count_ when unknown.
[[nodiscard]] CollOp coll_op_from_name(char const* name);

/// @brief Everything selection may depend on. Built by the collective entry
/// points from the live communicator; benches and tests construct it
/// directly to probe the selection matrix.
struct SelectCtx {
    int p = 1;                    ///< communicator size
    std::size_t block_bytes = 0;  ///< packed per-peer block size (the paper's "count")
    bool commutative = true;      ///< reduction-op commutativity (reduce family)
    bool model_enabled = false;   ///< an alpha/beta network model is active
    double alpha = 0.0;           ///< model per-message start-up [s]
    double beta = 0.0;            ///< model per-byte cost [s]
};

/// @brief Outcome of one selection.
struct Selection {
    char const* algorithm = "";   ///< registry entry name (static storage)
    bool from_table = false;      ///< a measured tuning-table cell decided
    bool forced = false;          ///< coll().force_algorithm decided
};

/// @brief Picks the algorithm for one collective invocation. Total: every op
/// has an always-applicable fallback entry, so this never fails.
[[nodiscard]] Selection select(CollOp op, SelectCtx const& ctx);

/// @brief Names of all entries applicable to (op, ctx), strongest preference
/// first. The sweep harness iterates these to measure every candidate.
[[nodiscard]] std::vector<char const*> candidates(CollOp op, SelectCtx const& ctx);

/// @brief Collective-selection knobs (environment-seeded like Transport).
struct Coll {
    /// Topology grouping: ranks [i*node_size, (i+1)*node_size) form "node" i
    /// for the two-level hierarchical collectives. 0 disables hierarchy,
    /// -1 means "auto" (ceil(sqrt p), the grid plugin's decomposition);
    /// values >= 2 are explicit group sizes. Env: XMPI_NODE_SIZE (number or
    /// "auto"; 1 is clamped to 2, malformed values keep the default 0).
    int node_size = 0;

    /// When non-null, select() returns this entry if it is applicable to the
    /// op at hand (benches force one candidate at a time). Must point at a
    /// string with static storage duration. Atomic: a harness may flip the
    /// force while other ranks are dispatching collectives that read it.
    std::atomic<char const*> force_algorithm{nullptr};
};

/// @brief The process-wide collective knobs; on first use, XMPI_NODE_SIZE is
/// parsed and a table named by XMPI_TUNING_TABLE is loaded.
[[nodiscard]] Coll& coll();

/// @brief Resolves the node grouping for a p-rank communicator: the
/// effective group size in [2, p), or 0 when hierarchy is disabled (knob
/// unset, or the grouping would be trivial — one node, or one rank per
/// group would not be trivial but g >= p means a single node).
[[nodiscard]] int node_size_for(int p);

/// @brief Parses an XMPI_NODE_SIZE value: "auto" -> -1, numbers >= 2 kept,
/// 1 -> warn + clamp to 2, 0 -> 0, malformed/negative -> warn + fallback.
/// Exposed so the warn+clamp sweep is testable without re-execing.
[[nodiscard]] int parse_node_size(char const* text, int fallback);

/// @name Measured tuning table
/// @{
/// @brief Loads a tuning table (JSON, see docs/API.md) replacing any loaded
/// one. Returns false — leaving no table loaded — on a missing file or
/// malformed JSON (a warning names the problem; selection falls back to the
/// model). The env path XMPI_TUNING_TABLE is loaded on first coll() use.
bool load_tuning_table(char const* path);
/// @brief Drops the loaded table; selection falls back to the model.
void unload_tuning_table();
/// @brief True iff a table with at least one cell is loaded.
[[nodiscard]] bool tuning_table_loaded();
/// @brief The table's algorithm for (op, p, bytes), or nullptr when no cell
/// covers the point. Exact-p cells beat wildcard (p == 0) cells; among
/// covering size buckets the smallest max_bytes wins (max_bytes == 0 is the
/// unbounded bucket).
[[nodiscard]] char const* table_algorithm(CollOp op, int p, std::size_t bytes);
/// @}

} // namespace xmpi::tuning
