/// @file tuning.hpp
/// @brief Runtime-tunable transport knobs.
///
/// Unlike the compile-time collective thresholds in netmodel.hpp (which gate
/// algorithm *selection* and want constant-folding), the transport knobs
/// below trade latency against CPU burn and memory, which depends on the
/// machine the emulation runs on — so they are runtime values, seeded once
/// from the environment and mutable from tests before a World is started.
#pragma once

#include <cstddef>

namespace xmpi::tuning {

/// @brief Hard-coded defaults (exposed for tests and documentation).
inline constexpr int kDefaultSpinBeforeBlock = 2000;
inline constexpr int kDefaultYieldBeforeBlock = 8;
inline constexpr std::size_t kDefaultRendezvousThreshold = 32 * 1024;
inline constexpr std::size_t kDefaultCoalesceMaxBytes = 512;
inline constexpr std::size_t kDefaultCoalesceWatermark = 8 * 1024;
inline constexpr std::size_t kDefaultRingCapacity = 64;
inline constexpr long kDefaultRendezvousFallbackUs = 200;

/// @brief Transport tuning knobs. Read on every send/receive; mutate only
/// while no World is running (tests) — the environment override is the
/// supported production mechanism.
struct Transport {
    /// Iterations a receive (or rendezvous wait) spins on its completion
    /// flag before blocking on the mailbox. Env: XMPI_SPIN_BUDGET.
    int spin_before_block = kDefaultSpinBeforeBlock;

    /// After spinning, iterations spent polling with sched-yield in between
    /// before parking on the condition variable. On an oversubscribed (or
    /// single-core) machine a yield hands the CPU straight to the peer we
    /// are waiting on, where a futex sleep/wake round trip would cost
    /// microseconds. Env: XMPI_YIELD_BUDGET.
    int yield_before_block = kDefaultYieldBeforeBlock;

    /// Contiguous point-to-point sends of at least this many bytes use the
    /// receiver-pulled rendezvous protocol. Env: XMPI_RENDEZVOUS_THRESHOLD.
    std::size_t rendezvous_threshold = kDefaultRendezvousThreshold;

    /// Contiguous sends up to this many bytes are eligible for coalescing
    /// into a shared batch slot. Env: XMPI_COALESCE_MAX_BYTES.
    std::size_t coalesce_max_bytes = kDefaultCoalesceMaxBytes;

    /// Capacity of one batch block: how many bytes of coalesced records a
    /// single ring slot can aggregate. Env: XMPI_COALESCE_WATERMARK.
    std::size_t coalesce_watermark = kDefaultCoalesceWatermark;

    /// Slots per (src,dst) PeerRing, rounded up to a power of two.
    /// Env: XMPI_RING_CAPACITY.
    std::size_t ring_capacity = kDefaultRingCapacity;

    /// Microseconds a rendezvous sender waits for a receiver to claim the
    /// descriptor before falling back to an eager copy (which restores the
    /// plain eager completion semantics, so programs relying on eager
    /// buffering cannot deadlock). Env: XMPI_RENDEZVOUS_FALLBACK_US.
    long rendezvous_fallback_us = kDefaultRendezvousFallbackUs;
};

/// @brief The process-wide transport knobs, environment-seeded on first use.
[[nodiscard]] Transport& transport();

/// @brief Effective spin budget for spin-then-block waits: 0 when the
/// machine has a single hardware thread (spinning only steals cycles from
/// the thread we are waiting on), else @c transport().spin_before_block.
/// An explicit XMPI_SPIN_BUDGET wins even on one hardware thread.
[[nodiscard]] int spin_budget();

/// @brief Yield budget for the middle rung of the spin-yield-block ladder.
/// Unlike spin_budget() this does NOT collapse on a single hardware thread:
/// a yield is exactly how the waited-on peer gets the core there.
[[nodiscard]] int yield_budget();

} // namespace xmpi::tuning
