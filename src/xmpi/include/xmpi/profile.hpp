/// @file profile.hpp
/// @brief PMPI-style call and traffic counters.
///
/// Every XMPI entry point increments a per-rank counter, and the transport
/// layer counts messages and payload bytes. The paper (Section III-H) uses
/// MPI's profiling interface to assert that the bindings issue *only* the
/// expected MPI calls when computing default parameters; our tests do the
/// same through this module. Benchmarks additionally use the message counters
/// to verify communication-volume claims (e.g. grid all-to-all sends
/// O(sqrt(p)) messages per rank) independent of timing noise.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace xmpi::profile {

/// @brief Identifiers for the profiled XMPI entry points.
enum class Call : int {
    send,
    ssend,
    isend,
    issend,
    recv,
    irecv,
    sendrecv,
    probe,
    iprobe,
    barrier,
    ibarrier,
    bcast,
    ibcast,
    iallreduce,
    ialltoallv,
    gather,
    gatherv,
    scatter,
    scatterv,
    allgather,
    allgatherv,
    alltoall,
    alltoallv,
    alltoallw,
    reduce,
    allreduce,
    reduce_scatter_block,
    scan,
    exscan,
    neighbor_alltoall,
    neighbor_alltoallv,
    dist_graph_create_adjacent,
    comm_dup,
    comm_split,
    comm_create,
    comm_shrink,
    comm_agree,
    count_ ///< number of entries; keep last
};

inline constexpr std::size_t num_calls = static_cast<std::size_t>(Call::count_);

/// @brief Counters of one rank. Atomics allow cross-thread snapshots.
struct RankCounters {
    std::array<std::atomic<std::uint64_t>, num_calls> calls{};
    std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    /// @name Transport fast-path counters (see pool.hpp / transport.cpp)
    /// @{
    std::atomic<std::uint64_t> fastpath_sends{0};    ///< sends delivered zero-copy
    std::atomic<std::uint64_t> bytes_zero_copied{0}; ///< payload bytes moved without staging
    std::atomic<std::uint64_t> pool_hits{0};         ///< payload buffers reused from the pool
    std::atomic<std::uint64_t> pool_misses{0};       ///< payload buffers heap-allocated
    /// @}

    void reset() {
        for (auto& counter: calls) {
            counter.store(0, std::memory_order_relaxed);
        }
        messages_sent.store(0, std::memory_order_relaxed);
        bytes_sent.store(0, std::memory_order_relaxed);
        fastpath_sends.store(0, std::memory_order_relaxed);
        bytes_zero_copied.store(0, std::memory_order_relaxed);
        pool_hits.store(0, std::memory_order_relaxed);
        pool_misses.store(0, std::memory_order_relaxed);
    }
};

/// @brief Plain (non-atomic) snapshot of one rank's counters.
struct Snapshot {
    std::array<std::uint64_t, num_calls> calls{};
    std::uint64_t messages_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t fastpath_sends = 0;
    std::uint64_t bytes_zero_copied = 0;
    std::uint64_t pool_hits = 0;
    std::uint64_t pool_misses = 0;

    [[nodiscard]] std::uint64_t operator[](Call call) const {
        return calls[static_cast<std::size_t>(call)];
    }
    /// @brief Sum over all call counters.
    [[nodiscard]] std::uint64_t total_calls() const {
        std::uint64_t sum = 0;
        for (auto value: calls) {
            sum += value;
        }
        return sum;
    }
};

/// @name Current-world convenience accessors (see World for the storage)
/// @{
/// @brief Snapshot of the calling rank's counters in the current world.
Snapshot my_snapshot();
/// @brief Snapshot of a given world rank's counters in the current world.
Snapshot snapshot_of(int world_rank);
/// @brief Resets the calling rank's counters.
void reset_mine();
/// @brief Resets all ranks' counters in the current world (not synchronised;
/// call from one rank while others are quiescent, e.g. around a barrier).
void reset_all();
/// @}

} // namespace xmpi::profile
