/// @file profile.hpp
/// @brief PMPI-style call and traffic counters.
///
/// Every XMPI entry point increments a per-rank counter, and the transport
/// layer counts messages and payload bytes. The paper (Section III-H) uses
/// MPI's profiling interface to assert that the bindings issue *only* the
/// expected MPI calls when computing default parameters; our tests do the
/// same through this module. Benchmarks additionally use the message counters
/// to verify communication-volume claims (e.g. grid all-to-all sends
/// O(sqrt(p)) messages per rank) independent of timing noise.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace xmpi::profile {

/// @brief Identifiers for the profiled XMPI entry points.
enum class Call : int {
    send,
    ssend,
    isend,
    issend,
    recv,
    irecv,
    sendrecv,
    probe,
    iprobe,
    barrier,
    ibarrier,
    bcast,
    ibcast,
    iallreduce,
    ialltoallv,
    gather,
    gatherv,
    scatter,
    scatterv,
    allgather,
    allgatherv,
    alltoall,
    alltoallv,
    alltoallw,
    reduce,
    allreduce,
    reduce_scatter_block,
    scan,
    exscan,
    neighbor_alltoall,
    neighbor_alltoallv,
    dist_graph_create_adjacent,
    comm_dup,
    comm_split,
    comm_create,
    comm_shrink,
    comm_agree,
    win_create,
    win_allocate,
    win_free,
    put,
    get,
    accumulate,
    fetch_and_op,
    compare_and_swap,
    win_fence,
    win_lock,
    win_unlock,
    send_init,
    recv_init,
    bcast_init,
    allreduce_init,
    alltoall_init,
    barrier_init,
    start,
    psend_init,
    precv_init,
    pready,
    parrived,
    session_open,
    session_leave,
    epoch_sync,
    count_ ///< number of entries; keep last
};

inline constexpr std::size_t num_calls = static_cast<std::size_t>(Call::count_);

/// @brief Cache-line size assumed for counter padding (std::hardware_
/// destructive_interference_size is deliberately avoided: it is ABI-fragile
/// and gcc warns on it).
inline constexpr std::size_t kCounterCacheLine = 64;

/// @brief Counters of one rank. Atomics allow cross-thread snapshots.
///
/// The hot transport counters are grouped by writer and each group is
/// aligned to its own cache line: a rank's counters are bumped per message
/// by its own thread *and* by progress-engine workers acting for it, so
/// without the padding the sender-side group (bumped on every publish) and
/// the consumer-side group (bumped on every drain) would false-share one
/// line and the ring fast path would ping-pong it between cores.
struct RankCounters {
    std::array<std::atomic<std::uint64_t>, num_calls> calls{};
    /// @name Sender-side hot counters (bumped on every send/publish)
    /// @{
    alignas(kCounterCacheLine) std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> fastpath_sends{0};  ///< contiguous sends on the ring fast path
    std::atomic<std::uint64_t> ring_enqueues{0};   ///< ring slots published
    std::atomic<std::uint64_t> coalesced_sends{0}; ///< small sends appended to an open batch
    std::atomic<std::uint64_t> ring_full_fallbacks{0}; ///< locked bypass deliveries (ring full)
    std::atomic<std::uint64_t> pool_hits{0};           ///< payload buffers reused from the pool
    std::atomic<std::uint64_t> pool_misses{0};         ///< payload buffers heap-allocated
    std::atomic<std::uint64_t> reserved_payload_reuses{0}; ///< persistent-send slot buffers recycled
    /// @}
    /// @name Consumer-side hot counters (bumped when this rank drains/claims)
    /// @{
    alignas(kCounterCacheLine) std::atomic<std::uint64_t> rendezvous_transfers{0}; ///< descriptors claimed zero-copy
    std::atomic<std::uint64_t> bytes_zero_copied{0}; ///< payload bytes moved without staging (both sides)
    /// @}
    /// @name Progress-engine counters (see progress.hpp)
    /// @{
    alignas(kCounterCacheLine)
    std::atomic<std::uint64_t> engine_tasks{0};            ///< tasks enqueued on the engine
    std::atomic<std::uint64_t> engine_inline_fallbacks{0}; ///< full queue: ran inline at initiation
    std::atomic<std::uint64_t> engine_queue_depth_max{0};  ///< deepest queue observed at enqueue
    std::atomic<std::uint64_t> engine_caller_steals{0};    ///< tasks run by waiting/polling callers
    std::atomic<std::uint64_t> engine_incomplete_destructions{0}; ///< requests freed before completion
    std::atomic<std::uint64_t> engine_stall_escalations{0}; ///< temporary workers grown by the stall valve
    /// @}
    /// @name One-sided (RMA) counters (see win.hpp)
    /// @{
    std::atomic<std::uint64_t> rma_puts{0};         ///< puts initiated (excl. PROC_NULL no-ops)
    std::atomic<std::uint64_t> rma_gets{0};         ///< gets initiated (excl. PROC_NULL no-ops)
    std::atomic<std::uint64_t> rma_accumulates{0};  ///< accumulates applied
    std::atomic<std::uint64_t> rma_atomics{0};      ///< fetch_and_op + compare_and_swap applied
    std::atomic<std::uint64_t> rma_bytes_zero_copied{0}; ///< RMA bytes moved without staging
    std::atomic<std::uint64_t> rma_epoch_waits{0};  ///< fences + blocking lock acquisitions
    /// @}
    /// @name Scheduler counters (see apps/kasched; bumped by the app layer)
    /// @{
    std::atomic<std::uint64_t> sched_steals_attempted{0}; ///< remote steal probes issued
    std::atomic<std::uint64_t> sched_steals_succeeded{0}; ///< probes that claimed a task
    std::atomic<std::uint64_t> sched_tasks_executed{0};   ///< tasks this rank ran to completion
    std::atomic<std::uint64_t> sched_requeue_after_failure{0}; ///< tasks re-queued off a dead owner
    /// @}
    /// @name Elastic-world counters (see elastic.hpp)
    /// @{
    std::atomic<std::uint64_t> stale_epoch_drops{0}; ///< messages dropped for a superseded epoch
    std::atomic<std::uint64_t> epoch_transitions{0}; ///< membership transitions this rank produced
    /// @}

    void reset() {
        for (auto& counter: calls) {
            counter.store(0, std::memory_order_relaxed);
        }
        messages_sent.store(0, std::memory_order_relaxed);
        bytes_sent.store(0, std::memory_order_relaxed);
        fastpath_sends.store(0, std::memory_order_relaxed);
        ring_enqueues.store(0, std::memory_order_relaxed);
        coalesced_sends.store(0, std::memory_order_relaxed);
        ring_full_fallbacks.store(0, std::memory_order_relaxed);
        rendezvous_transfers.store(0, std::memory_order_relaxed);
        bytes_zero_copied.store(0, std::memory_order_relaxed);
        pool_hits.store(0, std::memory_order_relaxed);
        pool_misses.store(0, std::memory_order_relaxed);
        reserved_payload_reuses.store(0, std::memory_order_relaxed);
        engine_tasks.store(0, std::memory_order_relaxed);
        engine_inline_fallbacks.store(0, std::memory_order_relaxed);
        engine_queue_depth_max.store(0, std::memory_order_relaxed);
        engine_caller_steals.store(0, std::memory_order_relaxed);
        engine_incomplete_destructions.store(0, std::memory_order_relaxed);
        engine_stall_escalations.store(0, std::memory_order_relaxed);
        rma_puts.store(0, std::memory_order_relaxed);
        rma_gets.store(0, std::memory_order_relaxed);
        rma_accumulates.store(0, std::memory_order_relaxed);
        rma_atomics.store(0, std::memory_order_relaxed);
        rma_bytes_zero_copied.store(0, std::memory_order_relaxed);
        rma_epoch_waits.store(0, std::memory_order_relaxed);
        sched_steals_attempted.store(0, std::memory_order_relaxed);
        sched_steals_succeeded.store(0, std::memory_order_relaxed);
        sched_tasks_executed.store(0, std::memory_order_relaxed);
        sched_requeue_after_failure.store(0, std::memory_order_relaxed);
        stale_epoch_drops.store(0, std::memory_order_relaxed);
        epoch_transitions.store(0, std::memory_order_relaxed);
    }
};

/// @brief Plain (non-atomic) snapshot of one rank's counters.
struct Snapshot {
    std::array<std::uint64_t, num_calls> calls{};
    std::uint64_t messages_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t fastpath_sends = 0;
    std::uint64_t ring_enqueues = 0;
    std::uint64_t coalesced_sends = 0;
    std::uint64_t ring_full_fallbacks = 0;
    std::uint64_t rendezvous_transfers = 0;
    std::uint64_t bytes_zero_copied = 0;
    std::uint64_t pool_hits = 0;
    std::uint64_t pool_misses = 0;
    std::uint64_t reserved_payload_reuses = 0;
    std::uint64_t engine_tasks = 0;
    std::uint64_t engine_inline_fallbacks = 0;
    std::uint64_t engine_queue_depth_max = 0;
    std::uint64_t engine_caller_steals = 0;
    std::uint64_t engine_incomplete_destructions = 0;
    std::uint64_t engine_stall_escalations = 0;
    std::uint64_t rma_puts = 0;
    std::uint64_t rma_gets = 0;
    std::uint64_t rma_accumulates = 0;
    std::uint64_t rma_atomics = 0;
    std::uint64_t rma_bytes_zero_copied = 0;
    std::uint64_t rma_epoch_waits = 0;
    std::uint64_t sched_steals_attempted = 0;
    std::uint64_t sched_steals_succeeded = 0;
    std::uint64_t sched_tasks_executed = 0;
    std::uint64_t sched_requeue_after_failure = 0;
    std::uint64_t stale_epoch_drops = 0;
    std::uint64_t epoch_transitions = 0;

    [[nodiscard]] std::uint64_t operator[](Call call) const {
        return calls[static_cast<std::size_t>(call)];
    }
    /// @brief Sum over all call counters.
    [[nodiscard]] std::uint64_t total_calls() const {
        std::uint64_t sum = 0;
        for (auto value: calls) {
            sum += value;
        }
        return sum;
    }
};

/// @name Current-world convenience accessors (see World for the storage)
/// @{
/// @brief Live counters of the calling rank in the current world. The
/// scheduler (apps/kasched) bumps its sched_* counters through this.
RankCounters& my_counters();
/// @brief Snapshot of the calling rank's counters in the current world.
Snapshot my_snapshot();
/// @brief Snapshot of a given world rank's counters in the current world.
Snapshot snapshot_of(int world_rank);
/// @brief Resets the calling rank's counters.
void reset_mine();
/// @brief Resets all ranks' counters in the current world (not synchronised;
/// call from one rank while others are quiescent, e.g. around a barrier).
void reset_all();
/// @}

// ---------------------------------------------------------------------------
// Tracing spans (the kamping call-plan tracing seam ends here)
// ---------------------------------------------------------------------------

/// @brief One traced binding-level operation. Produced by the kamping call
/// plan (kamping/pipeline.hpp) when tracing is enabled; records what the
/// PMPI-style counters above cannot: which binding stage the time went to.
///
/// The `op`/`algorithm` fields are pointers to string literals with static
/// storage duration — spans never own memory for them.
struct Span {
    char const* op = "";        ///< binding operation ("allgatherv", "isend", ...)
    char const* algorithm = ""; ///< xmpi collective algorithm chosen ("" if none noted)
    int world_rank = -1;        ///< recording rank (-1 outside a world)
    double start_s = 0.0;       ///< XMPI_Wtime() at operation start
    double duration_s = 0.0;    ///< wall time inside the wrapper, seconds
    std::uint64_t bytes_in = 0; ///< payload bytes entering the op (send side)
    std::uint64_t bytes_out = 0; ///< payload bytes leaving the op (recv side)
    bool count_exchange = false; ///< a count/size exchange was instantiated
    /// Time the operation sat in the progress-engine queue before a worker
    /// (or a stealing caller) started it; 0 for operations that never went
    /// through the engine (blocking collectives, p2p).
    double queue_s = 0.0;
    /// Time spent blocked in RMA epoch synchronization (the fence barrier,
    /// or waiting to acquire a passive-target lock); 0 for non-RMA ops.
    double epoch_wait_s = 0.0;
    std::uint64_t bytes_put = 0; ///< RMA payload bytes written to targets
    std::uint64_t bytes_got = 0; ///< RMA payload bytes read from targets
    /// Completed start()s of a persistent plan; 0 for one-shot operations.
    /// Plan-summary spans amortize duration_s over this many restarts.
    std::uint64_t restarts = 0;
    /// Membership epoch of the recording rank's world at record time (always
    /// 0 in non-elastic worlds). Stamped by record_span so every traced op
    /// is attributable to the membership it ran under; epoch-transition
    /// spans (op "epoch_transition") carry the transition cause in
    /// `algorithm` ("grow", "shrink", "failure", or a "+"-combination).
    std::uint64_t epoch = 0;
};

/// @brief True iff span recording is globally enabled. A single relaxed
/// atomic load — this is the entire cost of the tracing seam when disabled.
bool tracing_enabled();
/// @brief Globally enables/disables span recording (process-wide; safe to
/// toggle concurrently with recording ranks).
void set_tracing_enabled(bool enabled);

/// @brief Appends a span to the process-wide span log (thread-safe). The
/// world rank is filled in from the calling thread's rank context when
/// attached.
void record_span(Span span);
/// @brief Drains the span log: returns all recorded spans and clears it.
std::vector<Span> take_spans();
/// @brief Clears the span log without returning it.
void clear_spans();
/// @brief JSON dump hook: the current span log as a JSON array of objects
/// (op, algorithm, rank, start_s, duration_s, bytes_in, bytes_out,
/// count_exchange). Does not clear the log.
std::string spans_json();

/// @brief Called by the xmpi collective implementations to record which
/// algorithm a call selected ("bruck", "recursive_doubling", ...). Stored in
/// a thread-local slot (each rank is a thread) and picked up by the binding
/// layer's dispatch stage; a no-op unless tracing is enabled.
void note_algorithm(char const* name);
/// @brief Returns and clears the calling thread's algorithm note ("" if
/// nothing was noted since the last take).
char const* take_algorithm();

/// @brief Called by the RMA synchronization primitives (win_fence, win_lock)
/// to accumulate the time the calling rank spent blocked waiting for its
/// epoch. Thread-local like note_algorithm; a no-op unless tracing is
/// enabled. Picked up by the binding layer's call plan into Span.epoch_wait_s.
void note_epoch_wait(double seconds);
/// @brief Returns and clears the calling thread's accumulated epoch wait.
double take_epoch_wait();

} // namespace xmpi::profile
