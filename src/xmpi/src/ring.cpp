#include "xmpi/ring.hpp"

#include <bit>
#include <cstring>
#include <new>

namespace xmpi::detail {

namespace {
[[nodiscard]] std::size_t round_pow2(std::size_t value) {
    if (value < 2) {
        return 2;
    }
    return std::bit_ceil(value);
}
} // namespace

PeerRing::PeerRing(std::size_t capacity)
    : capacity_(round_pow2(capacity)),
      mask_(capacity_ - 1),
      slots_(std::make_unique<Slot[]>(capacity_)) {
    for (std::size_t i = 0; i < capacity_; ++i) {
        slots_[i].seq.store(i, std::memory_order_relaxed);
    }
}

bool PeerRing::try_push(RingEntry&& entry, std::size_t batch_bytes) {
    std::uint64_t pos = tail_.load(std::memory_order_relaxed);
    Slot* slot = nullptr;
    while (true) {
        slot = &slots_[pos & mask_];
        std::uint64_t const seq = slot->seq.load(std::memory_order_acquire);
        if (seq == pos) {
            if (tail_.compare_exchange_weak(pos, pos + 1, std::memory_order_relaxed)) {
                break;
            }
        } else if (seq < pos) {
            // The slot still holds an unconsumed entry from a lap ago: full.
            return false;
        } else {
            pos = tail_.load(std::memory_order_relaxed);
        }
    }

    bool const is_batch = entry.kind == RingEntry::Kind::batch;
    if (is_batch) {
        slot->batch_data = entry.block->bytes.data();
        slot->batch_capacity.store(
            static_cast<std::uint32_t>(entry.block->bytes.size()), std::memory_order_relaxed);
        // ready_ may carry stale increments only until the previous consumer
        // finished its close-and-drain of this slot, which happened before
        // seq was recycled — so this reset cannot race a live appender.
        slot->ready_.store(batch_bytes, std::memory_order_relaxed);
        slot->reserve_.store(pack_reserve(pos, batch_bytes), std::memory_order_relaxed);
    }
    slot->entry = std::move(entry);
    slot->seq.store(pos + 1, std::memory_order_release);
    if (is_batch) {
        // Publish the append hint only after the slot itself is visible, so
        // an appender that reads the hint always finds seq == pos + 1.
        last_batch_.store(pos, std::memory_order_release);
    }
    return true;
}

bool PeerRing::try_append(Envelope const& env, std::byte const* payload, std::uint32_t size) {
    std::uint64_t const pos = last_batch_.load(std::memory_order_acquire);
    if (pos == kNoBatch) {
        return false;
    }
    // Coalescing may only target the *newest* published entry: appending to a
    // batch that has a later entry behind it would deliver this record before
    // that entry, breaking non-overtaking order for a sequential sender.
    // (A push racing in between is a concurrent producer, which carries no
    // ordering obligation anyway.)
    if (tail_.load(std::memory_order_acquire) != pos + 1) {
        return false;
    }
    Slot& slot = slots_[pos & mask_];
    if (slot.seq.load(std::memory_order_acquire) != pos + 1) {
        return false; // already consumed (or recycled for a later lap)
    }

    std::size_t const need = batch_record_bytes(size);
    std::uint64_t const epoch = (pos & 0xffff);
    std::uint64_t cur = slot.reserve_.load(std::memory_order_relaxed);
    std::uint64_t offset = 0;
    while (true) {
        if (epoch_of(cur) != epoch || (cur & kClosedBit) != 0) {
            return false; // recycled slot or consumer already closed the batch
        }
        offset = cur & kBytesMask;
        if (offset + need > slot.batch_capacity.load(std::memory_order_relaxed)) {
            return false;
        }
        if (slot.reserve_.compare_exchange_weak(cur, cur + need, std::memory_order_acq_rel)) {
            break;
        }
    }

    // The reservation succeeded against the live epoch, so batch_data still
    // points at this batch's block (the consumer cannot recycle the slot
    // until ready_ catches up with our reservation below).
    BatchRecordHeader const header{env.context, env.source, env.tag, size};
    std::memcpy(slot.batch_data + offset, &header, sizeof(header));
    if (size != 0) {
        std::memcpy(slot.batch_data + offset + sizeof(header), payload, size);
    }
    slot.ready_.fetch_add(need, std::memory_order_release);
    return true;
}

bool PeerRing::try_pop(RingEntry& entry, std::size_t& batch_bytes) {
    std::uint64_t const pos = head_.load(std::memory_order_relaxed);
    Slot& slot = slots_[pos & mask_];
    if (slot.seq.load(std::memory_order_acquire) != pos + 1) {
        return false; // next slot not yet published
    }

    batch_bytes = 0;
    if (slot.entry.kind == RingEntry::Kind::batch) {
        // Close the batch: appenders whose reserve-CAS lands after this
        // fetch_or see the closed bit and push a fresh slot instead. Then
        // wait for every appender whose reservation *did* land to finish its
        // copy — bounded by one in-flight memcpy per producer thread.
        std::uint64_t const closed =
            slot.reserve_.fetch_or(kClosedBit, std::memory_order_acq_rel);
        std::uint64_t const reserved = closed & kBytesMask;
        int spins = 0;
        while (slot.ready_.load(std::memory_order_acquire) != reserved) {
            if (++spins > 512) {
                std::this_thread::yield();
            } else {
                spin_pause();
            }
        }
        batch_bytes = reserved;
    }

    entry = std::move(slot.entry);
    slot.entry = RingEntry{};
    slot.batch_data = nullptr;
    slot.batch_capacity.store(0, std::memory_order_relaxed);
    slot.seq.store(pos + capacity_, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return true;
}

RingRegistry::RingRegistry(int size, std::size_t ring_capacity)
    : size_(size),
      ring_capacity_(ring_capacity),
      rings_(std::make_unique<std::atomic<PeerRing*>[]>(
          static_cast<std::size_t>(size) * static_cast<std::size_t>(size))) {
    std::size_t const total = static_cast<std::size_t>(size) * static_cast<std::size_t>(size);
    for (std::size_t i = 0; i < total; ++i) {
        rings_[i].store(nullptr, std::memory_order_relaxed);
    }
}

RingRegistry::~RingRegistry() {
    std::size_t const total = static_cast<std::size_t>(size_) * static_cast<std::size_t>(size_);
    for (std::size_t i = 0; i < total; ++i) {
        delete rings_[i].load(std::memory_order_relaxed);
    }
}

PeerRing& RingRegistry::ring(int src, int dst) {
    std::atomic<PeerRing*>& cell = rings_[index(src, dst)];
    PeerRing* existing = cell.load(std::memory_order_acquire);
    if (existing != nullptr) {
        return *existing;
    }
    auto fresh = std::make_unique<PeerRing>(ring_capacity_);
    if (cell.compare_exchange_strong(existing, fresh.get(), std::memory_order_acq_rel)) {
        return *fresh.release();
    }
    return *existing; // another producer won the install race
}

} // namespace xmpi::detail
