#include <algorithm>
#include <cstring>
#include <vector>

#include "coll.hpp"
#include "coll_registry.hpp"
#include "transport.hpp"

namespace xmpi::detail {
namespace {

/// @brief Scratch buffer holding `count` elements in user layout (extent-
/// strided), so reduction operations can be applied directly.
struct ElementBuffer {
    ElementBuffer(std::size_t count, Datatype const& type)
        : storage(count * static_cast<std::size_t>(type.extent())) {}

    [[nodiscard]] void* data() { return storage.data(); }
    [[nodiscard]] void const* data() const { return storage.data(); }

    std::vector<std::byte> storage;
};

/// @brief Linear (rank-ordered) reduce used for non-commutative operations:
/// the root folds contributions strictly in rank order.
int run_reduce_linear(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    CollChannel const channel = ctx.channel;
    void const* const contribution = ctx.sendbuf;
    std::size_t const count = ctx.sendcount;
    Datatype const& type = *ctx.sendtype;
    Op const& op = *ctx.op;
    int const root = ctx.root;
    int const p = comm.size();
    int const r = comm.rank();
    if (r != root) {
        return transport_send(
            comm, root, channel.tag, channel.context, contribution, count, type);
    }
    ElementBuffer accumulator(count, type);
    ElementBuffer incoming(count, type);
    // acc = buf_0; then acc = acc (op) buf_i for i = 1..p-1. Op::apply
    // computes inout = in (op) inout, so fold with in = acc into incoming and
    // swap.
    auto const load = [&](int source, void* dst) -> int {
        if (source == root) {
            std::memcpy(dst, contribution, count * static_cast<std::size_t>(type.extent()));
            return XMPI_SUCCESS;
        }
        return transport_recv(comm, source, channel.tag, channel.context, dst, count, type, nullptr);
    };
    if (int const err = load(0, accumulator.data()); err != XMPI_SUCCESS) {
        return err;
    }
    for (int i = 1; i < p; ++i) {
        if (int const err = load(i, incoming.data()); err != XMPI_SUCCESS) {
            return err;
        }
        op.apply(accumulator.data(), incoming.data(), count, type);
        std::swap(accumulator.storage, incoming.storage);
    }
    std::memcpy(ctx.recvbuf, accumulator.data(), count * static_cast<std::size_t>(type.extent()));
    return XMPI_SUCCESS;
}

/// @brief Binomial-tree reduce for commutative operations.
int run_reduce_binomial(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    CollChannel const channel = ctx.channel;
    std::size_t const count = ctx.sendcount;
    Datatype const& type = *ctx.sendtype;
    Op const& op = *ctx.op;
    int const root = ctx.root;
    int const p = comm.size();
    int const r = comm.rank();
    int const vrank = (r - root + p) % p;
    auto const real = [&](int vr) { return (vr + root) % p; };

    ElementBuffer accumulator(count, type);
    ElementBuffer incoming(count, type);
    std::memcpy(
        accumulator.data(), ctx.sendbuf, count * static_cast<std::size_t>(type.extent()));

    int mask = 1;
    while (mask < p) {
        if (vrank & mask) {
            int const parent = vrank - mask;
            if (int const err = transport_send(
                    comm, real(parent), channel.tag, channel.context, accumulator.data(), count,
                    type);
                err != XMPI_SUCCESS) {
                return err;
            }
            return XMPI_SUCCESS; // inner nodes are done after sending up
        }
        int const child = vrank + mask;
        if (child < p) {
            if (int const err = transport_recv(
                    comm, real(child), channel.tag, channel.context, incoming.data(), count,
                    type, nullptr);
                err != XMPI_SUCCESS) {
                return err;
            }
            // accumulator covers ranks [vrank, vrank+mask), the child covers
            // [child, child+mask): fold acc (op) child into `incoming`, swap.
            op.apply(accumulator.data(), incoming.data(), count, type);
            std::swap(accumulator.storage, incoming.storage);
        }
        mask <<= 1;
    }
    std::memcpy(ctx.recvbuf, accumulator.data(), count * static_cast<std::size_t>(type.extent()));
    return XMPI_SUCCESS;
}

/// @brief Recursive-doubling allreduce for commutative operations:
/// ceil(log2 p) exchange rounds instead of the ~2*log2(p) of reduce+bcast.
///
/// Every rank folds the same multiset of contributions with the same tree
/// shape; the two partners of a round fold the same pair in swapped operand
/// order. All builtin commutative ops (and IEEE-754 + and *) are bitwise
/// commutative, so every rank still observes a bit-identical result — the
/// property the applications' floating-point termination checks rely on.
/// Non-commutative user ops keep the rank-ordered reduce+bcast path.
int run_allreduce_recursive_doubling(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    CollChannel const channel = ctx.channel;
    void const* const contribution = ctx.sendbuf;
    void* const recvbuf = ctx.recvbuf;
    std::size_t const count = ctx.sendcount;
    Datatype const& type = *ctx.sendtype;
    Op const& op = *ctx.op;
    ReduceScratch local;
    ReduceScratch& scratch = ctx.scratch != nullptr ? *ctx.scratch : local;
    int const p = comm.size();
    int const r = comm.rank();
    std::size_t const bytes = count * static_cast<std::size_t>(type.extent());

    // resize() is a no-op after the first round on a hoisted scratch, so
    // persistent restarts run allocation-free. In-place calls (contribution
    // aliases recvbuf — the shape every persistent allreduce binds) skip the
    // accumulator entirely and fold straight into recvbuf, saving the entry
    // and exit copies as well.
    bool const in_place = contribution == recvbuf;
    std::byte* acc = nullptr;
    if (in_place) {
        acc = static_cast<std::byte*>(recvbuf);
    } else {
        scratch.accumulator.resize(bytes);
        acc = scratch.accumulator.data();
        std::memcpy(acc, contribution, bytes);
    }
    scratch.incoming.resize(bytes);
    std::byte* const in = scratch.incoming.data();

    // Fold the rem = p - 2^k ranks beyond the largest power of two into
    // their odd neighbours first; those neighbours then run the doubling
    // rounds and hand the final result back afterwards.
    int pow2 = 1;
    while (pow2 * 2 <= p) {
        pow2 *= 2;
    }
    int const rem = p - pow2;

    int vrank;
    if (r < 2 * rem) {
        if (r % 2 == 0) {
            if (int const err = transport_send(
                    comm, r + 1, channel.tag, channel.context, acc, count, type);
                err != XMPI_SUCCESS) {
                return err;
            }
            vrank = -1; // sits out the doubling rounds, gets the result back
        } else {
            if (int const err = transport_recv(
                    comm, r - 1, channel.tag, channel.context, in, count, type,
                    nullptr);
                err != XMPI_SUCCESS) {
                return err;
            }
            op.apply(in, acc, count, type);
            vrank = r / 2;
        }
    } else {
        vrank = r - rem;
    }

    if (vrank >= 0) {
        auto const real = [&](int vr) { return vr < rem ? 2 * vr + 1 : vr + rem; };
        for (int mask = 1; mask < pow2; mask <<= 1) {
            int const partner = real(vrank ^ mask);
            // Eager sends complete locally, so send-then-recv cannot deadlock.
            if (int const err = transport_send(
                    comm, partner, channel.tag, channel.context, acc, count, type);
                err != XMPI_SUCCESS) {
                return err;
            }
            if (int const err = transport_recv(
                    comm, partner, channel.tag, channel.context, in, count, type,
                    nullptr);
                err != XMPI_SUCCESS) {
                return err;
            }
            op.apply(in, acc, count, type);
        }
    }

    if (r < 2 * rem) {
        if (r % 2 == 0) {
            return transport_recv(
                comm, r + 1, channel.tag, channel.context, recvbuf, count, type, nullptr);
        }
        if (!in_place) {
            std::memcpy(recvbuf, acc, bytes);
        }
        return transport_send(comm, r - 1, channel.tag, channel.context, recvbuf, count, type);
    }
    if (!in_place) {
        std::memcpy(recvbuf, acc, bytes);
    }
    return XMPI_SUCCESS;
}

/// @brief Non-commutative allreduce: fold in rank order at rank 0, then
/// broadcast, so every rank observes the bit-identical rank-ordered result.
int run_allreduce_reduce_bcast(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    CollChannel const channel = ctx.channel;
    CollCtx reduce_ctx = ctx;
    reduce_ctx.root = 0;
    if (int const err = dispatch_coll(
            tuning::CollOp::reduce,
            make_select_ctx(
                comm, ctx.sendtype->packed_size(ctx.sendcount), ctx.op->commutative()),
            reduce_ctx);
        err != XMPI_SUCCESS) {
        return err;
    }
    return coll_bcast_on(comm, channel, ctx.recvbuf, ctx.sendcount, *ctx.sendtype, 0);
}

/// @brief Recursive doubling (Hillis–Steele) scan, ceil(log2 p) rounds.
int run_scan_hillis_steele(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    void const* const contribution = ctx.sendbuf;
    void* const recvbuf = ctx.recvbuf;
    std::size_t const count = ctx.sendcount;
    Datatype const& type = *ctx.sendtype;
    Op const& op = *ctx.op;
    int const p = comm.size();
    int const r = comm.rank();
    std::size_t const bytes = count * static_cast<std::size_t>(type.extent());

    // After round k, `inclusive` covers ranks [max(0, r - 2^(k+1) + 1), r]
    // and `exclusive_prefix` the same range without r itself. Receiving the
    // partner's inclusive value prepends an earlier range, so the fold order
    // is rank order — correct for non-commutative operations too.
    ElementBuffer inclusive(count, type);
    ElementBuffer exclusive_prefix(count, type);
    ElementBuffer incoming(count, type);
    std::memcpy(inclusive.data(), contribution, bytes);
    bool have_prefix = false;
    for (int k = 1; k < p; k <<= 1) {
        if (r + k < p) {
            if (int const err =
                    coll_send(comm, r + k, coll_tag::scan, inclusive.data(), count, type);
                err != XMPI_SUCCESS) {
                return err;
            }
        }
        if (r - k >= 0) {
            if (int const err =
                    coll_recv(comm, r - k, coll_tag::scan, incoming.data(), count, type);
                err != XMPI_SUCCESS) {
                return err;
            }
            // inclusive = incoming (op) inclusive; same for the prefix.
            op.apply(incoming.data(), inclusive.data(), count, type);
            if (have_prefix) {
                op.apply(incoming.data(), exclusive_prefix.data(), count, type);
            } else {
                std::memcpy(exclusive_prefix.data(), incoming.data(), bytes);
                have_prefix = true;
            }
        }
    }
    if (ctx.exclusive) {
        // Exscan: rank 0's recvbuf is undefined (left untouched).
        if (have_prefix) {
            std::memcpy(recvbuf, exclusive_prefix.data(), bytes);
        }
    } else {
        std::memcpy(recvbuf, inclusive.data(), bytes);
    }
    return XMPI_SUCCESS;
}

/// @brief Reduce the full vector to rank 0, then scatter blocks.
int run_reduce_scatter_reduce_then_scatter(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    std::size_t const recvcount = ctx.recvcount;
    Datatype const& type = *ctx.sendtype;
    int const p = comm.size();
    int const r = comm.rank();
    std::size_t const total = recvcount * static_cast<std::size_t>(p);
    ElementBuffer reduced(r == 0 ? total : 0, type);
    if (int const err = coll_reduce(
            comm, ctx.sendbuf, r == 0 ? reduced.data() : nullptr, total, type, *ctx.op, 0);
        err != XMPI_SUCCESS) {
        return err;
    }
    return coll_scatter(comm, reduced.data(), recvcount, type, ctx.recvbuf, recvcount, type, 0);
}

[[nodiscard]] int log2_rounds(int p) {
    int rounds = 0;
    for (int k = 1; k < p; k <<= 1) {
        ++rounds;
    }
    return rounds;
}

[[nodiscard]] double msg_cost(tuning::SelectCtx const& sctx, std::size_t bytes) {
    return sctx.alpha + static_cast<double>(bytes) * sctx.beta;
}

[[nodiscard]] bool commutative_only(tuning::SelectCtx const& sctx) {
    return sctx.commutative;
}

[[nodiscard]] double cost_reduce_binomial(tuning::SelectCtx const& sctx) {
    return log2_rounds(sctx.p) * msg_cost(sctx, sctx.block_bytes);
}

[[nodiscard]] double cost_reduce_linear(tuning::SelectCtx const& sctx) {
    // The root's p-1 serial receives dominate.
    return (sctx.p - 1) * msg_cost(sctx, sctx.block_bytes);
}

[[nodiscard]] double cost_allreduce_rd(tuning::SelectCtx const& sctx) {
    return log2_rounds(sctx.p) * msg_cost(sctx, sctx.block_bytes);
}

[[nodiscard]] double cost_allreduce_reduce_bcast(tuning::SelectCtx const& sctx) {
    return 2 * log2_rounds(sctx.p) * msg_cost(sctx, sctx.block_bytes);
}

} // namespace

void register_reduce_algos(std::vector<CollAlgo>& registry) {
    registry.push_back(
        {tuning::CollOp::reduce, "binomial_tree", commutative_only, nullptr, cost_reduce_binomial,
         run_reduce_binomial});
    registry.push_back(
        {tuning::CollOp::reduce, "linear", nullptr, nullptr, cost_reduce_linear,
         run_reduce_linear});
    registry.push_back(
        {tuning::CollOp::allreduce, "recursive_doubling", commutative_only, nullptr,
         cost_allreduce_rd, run_allreduce_recursive_doubling});
    registry.push_back(
        {tuning::CollOp::allreduce, "reduce_bcast", nullptr, nullptr,
         cost_allreduce_reduce_bcast, run_allreduce_reduce_bcast});
    registry.push_back(
        {tuning::CollOp::scan, "hillis_steele", nullptr, nullptr, nullptr,
         run_scan_hillis_steele});
    registry.push_back(
        {tuning::CollOp::reduce_scatter, "reduce_then_scatter", nullptr, nullptr, nullptr,
         run_reduce_scatter_reduce_then_scatter});
}

int coll_reduce_on(
    Comm& comm, CollChannel channel, void const* sendbuf, void* recvbuf, std::size_t count,
    Datatype const& type, Op const& op, int root) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    CollCtx ctx;
    ctx.comm = &comm;
    ctx.channel = channel;
    ctx.in_place = sendbuf == IN_PLACE;
    ctx.sendbuf = ctx.in_place ? recvbuf : sendbuf;
    ctx.recvbuf = recvbuf;
    ctx.sendcount = count;
    ctx.sendtype = &type;
    ctx.op = &op;
    ctx.root = root;
    return dispatch_coll(
        tuning::CollOp::reduce, make_select_ctx(comm, type.packed_size(count), op.commutative()),
        ctx);
}

int coll_reduce(
    Comm& comm, void const* sendbuf, void* recvbuf, std::size_t count, Datatype const& type,
    Op const& op, int root) {
    return coll_reduce_on(
        comm, CollChannel{comm.collective_context(), coll_tag::reduce}, sendbuf, recvbuf, count,
        type, op, root);
}

int coll_allreduce_on(
    Comm& comm, CollChannel channel, void const* sendbuf, void* recvbuf, std::size_t count,
    Datatype const& type, Op const& op, ReduceScratch* scratch) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    CollCtx ctx;
    ctx.comm = &comm;
    ctx.channel = channel;
    ctx.in_place = sendbuf == IN_PLACE;
    ctx.sendbuf = ctx.in_place ? recvbuf : sendbuf;
    ctx.recvbuf = recvbuf;
    ctx.sendcount = count;
    ctx.sendtype = &type;
    ctx.op = &op;
    ctx.scratch = scratch;
    return dispatch_coll(
        tuning::CollOp::allreduce,
        make_select_ctx(comm, type.packed_size(count), op.commutative()), ctx);
}

int coll_allreduce(
    Comm& comm, void const* sendbuf, void* recvbuf, std::size_t count, Datatype const& type,
    Op const& op) {
    return coll_allreduce_on(
        comm, CollChannel{comm.collective_context(), coll_tag::reduce}, sendbuf, recvbuf, count,
        type, op);
}

int coll_reduce_scatter_block(
    Comm& comm, void const* sendbuf, void* recvbuf, std::size_t recvcount, Datatype const& type,
    Op const& op) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    CollCtx ctx;
    ctx.comm = &comm;
    ctx.channel = CollChannel{comm.collective_context(), coll_tag::reduce_scatter};
    ctx.sendbuf = sendbuf;
    ctx.recvbuf = recvbuf;
    ctx.recvcount = recvcount;
    ctx.sendtype = &type;
    ctx.op = &op;
    return dispatch_coll(
        tuning::CollOp::reduce_scatter,
        make_select_ctx(comm, type.packed_size(recvcount), op.commutative()), ctx);
}

int coll_scan(
    Comm& comm, void const* sendbuf, void* recvbuf, std::size_t count, Datatype const& type,
    Op const& op, bool exclusive) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    CollCtx ctx;
    ctx.comm = &comm;
    ctx.channel = CollChannel{comm.collective_context(), coll_tag::scan};
    ctx.in_place = sendbuf == IN_PLACE;
    ctx.sendbuf = ctx.in_place ? recvbuf : sendbuf;
    ctx.recvbuf = recvbuf;
    ctx.sendcount = count;
    ctx.sendtype = &type;
    ctx.op = &op;
    ctx.exclusive = exclusive;
    return dispatch_coll(
        tuning::CollOp::scan, make_select_ctx(comm, type.packed_size(count), op.commutative()),
        ctx);
}

} // namespace xmpi::detail
