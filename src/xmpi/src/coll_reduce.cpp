#include <algorithm>
#include <cstring>
#include <vector>

#include "coll.hpp"
#include "transport.hpp"
#include "xmpi/profile.hpp"

namespace xmpi::detail {
namespace {

/// @brief Scratch buffer holding `count` elements in user layout (extent-
/// strided), so reduction operations can be applied directly.
struct ElementBuffer {
    ElementBuffer(std::size_t count, Datatype const& type)
        : storage(count * static_cast<std::size_t>(type.extent())) {}

    [[nodiscard]] void* data() { return storage.data(); }
    [[nodiscard]] void const* data() const { return storage.data(); }

    std::vector<std::byte> storage;
};

/// @brief Linear (rank-ordered) reduce used for non-commutative operations:
/// the root folds contributions strictly in rank order.
int reduce_linear(
    Comm& comm, CollChannel channel, void const* contribution, void* recvbuf, std::size_t count,
    Datatype const& type, Op const& op, int root) {
    int const p = comm.size();
    int const r = comm.rank();
    if (r != root) {
        return transport_send(
            comm, root, channel.tag, channel.context, contribution, count, type);
    }
    ElementBuffer accumulator(count, type);
    ElementBuffer incoming(count, type);
    // acc = buf_0; then acc = acc (op) buf_i for i = 1..p-1. Op::apply
    // computes inout = in (op) inout, so fold with in = acc into incoming and
    // swap.
    auto const load = [&](int source, void* dst) -> int {
        if (source == root) {
            std::memcpy(dst, contribution, count * static_cast<std::size_t>(type.extent()));
            return XMPI_SUCCESS;
        }
        return transport_recv(comm, source, channel.tag, channel.context, dst, count, type, nullptr);
    };
    if (int const err = load(0, accumulator.data()); err != XMPI_SUCCESS) {
        return err;
    }
    for (int i = 1; i < p; ++i) {
        if (int const err = load(i, incoming.data()); err != XMPI_SUCCESS) {
            return err;
        }
        op.apply(accumulator.data(), incoming.data(), count, type);
        std::swap(accumulator.storage, incoming.storage);
    }
    std::memcpy(recvbuf, accumulator.data(), count * static_cast<std::size_t>(type.extent()));
    return XMPI_SUCCESS;
}

/// @brief Binomial-tree reduce for commutative operations.
int reduce_binomial(
    Comm& comm, CollChannel channel, void const* contribution, void* recvbuf, std::size_t count,
    Datatype const& type, Op const& op, int root) {
    int const p = comm.size();
    int const r = comm.rank();
    int const vrank = (r - root + p) % p;
    auto const real = [&](int vr) { return (vr + root) % p; };

    ElementBuffer accumulator(count, type);
    ElementBuffer incoming(count, type);
    std::memcpy(
        accumulator.data(), contribution, count * static_cast<std::size_t>(type.extent()));

    int mask = 1;
    while (mask < p) {
        if (vrank & mask) {
            int const parent = vrank - mask;
            if (int const err = transport_send(
                    comm, real(parent), channel.tag, channel.context, accumulator.data(), count,
                    type);
                err != XMPI_SUCCESS) {
                return err;
            }
            return XMPI_SUCCESS; // inner nodes are done after sending up
        }
        int const child = vrank + mask;
        if (child < p) {
            if (int const err = transport_recv(
                    comm, real(child), channel.tag, channel.context, incoming.data(), count,
                    type, nullptr);
                err != XMPI_SUCCESS) {
                return err;
            }
            // accumulator covers ranks [vrank, vrank+mask), the child covers
            // [child, child+mask): fold acc (op) child into `incoming`, swap.
            op.apply(accumulator.data(), incoming.data(), count, type);
            std::swap(accumulator.storage, incoming.storage);
        }
        mask <<= 1;
    }
    std::memcpy(recvbuf, accumulator.data(), count * static_cast<std::size_t>(type.extent()));
    return XMPI_SUCCESS;
}

/// @brief Recursive-doubling allreduce for commutative operations:
/// ceil(log2 p) exchange rounds instead of the ~2*log2(p) of reduce+bcast.
///
/// Every rank folds the same multiset of contributions with the same tree
/// shape; the two partners of a round fold the same pair in swapped operand
/// order. All builtin commutative ops (and IEEE-754 + and *) are bitwise
/// commutative, so every rank still observes a bit-identical result — the
/// property the applications' floating-point termination checks rely on.
/// Non-commutative user ops keep the rank-ordered reduce+bcast path.
int allreduce_recursive_doubling(
    Comm& comm, CollChannel channel, void const* contribution, void* recvbuf, std::size_t count,
    Datatype const& type, Op const& op, ReduceScratch& scratch) {
    int const p = comm.size();
    int const r = comm.rank();
    std::size_t const bytes = count * static_cast<std::size_t>(type.extent());

    // resize() is a no-op after the first round on a hoisted scratch, so
    // persistent restarts run allocation-free. In-place calls (contribution
    // aliases recvbuf — the shape every persistent allreduce binds) skip the
    // accumulator entirely and fold straight into recvbuf, saving the entry
    // and exit copies as well.
    bool const in_place = contribution == recvbuf;
    std::byte* acc = nullptr;
    if (in_place) {
        acc = static_cast<std::byte*>(recvbuf);
    } else {
        scratch.accumulator.resize(bytes);
        acc = scratch.accumulator.data();
        std::memcpy(acc, contribution, bytes);
    }
    scratch.incoming.resize(bytes);
    std::byte* const in = scratch.incoming.data();

    // Fold the rem = p - 2^k ranks beyond the largest power of two into
    // their odd neighbours first; those neighbours then run the doubling
    // rounds and hand the final result back afterwards.
    int pow2 = 1;
    while (pow2 * 2 <= p) {
        pow2 *= 2;
    }
    int const rem = p - pow2;

    int vrank;
    if (r < 2 * rem) {
        if (r % 2 == 0) {
            if (int const err = transport_send(
                    comm, r + 1, channel.tag, channel.context, acc, count, type);
                err != XMPI_SUCCESS) {
                return err;
            }
            vrank = -1; // sits out the doubling rounds, gets the result back
        } else {
            if (int const err = transport_recv(
                    comm, r - 1, channel.tag, channel.context, in, count, type,
                    nullptr);
                err != XMPI_SUCCESS) {
                return err;
            }
            op.apply(in, acc, count, type);
            vrank = r / 2;
        }
    } else {
        vrank = r - rem;
    }

    if (vrank >= 0) {
        auto const real = [&](int vr) { return vr < rem ? 2 * vr + 1 : vr + rem; };
        for (int mask = 1; mask < pow2; mask <<= 1) {
            int const partner = real(vrank ^ mask);
            // Eager sends complete locally, so send-then-recv cannot deadlock.
            if (int const err = transport_send(
                    comm, partner, channel.tag, channel.context, acc, count, type);
                err != XMPI_SUCCESS) {
                return err;
            }
            if (int const err = transport_recv(
                    comm, partner, channel.tag, channel.context, in, count, type,
                    nullptr);
                err != XMPI_SUCCESS) {
                return err;
            }
            op.apply(in, acc, count, type);
        }
    }

    if (r < 2 * rem) {
        if (r % 2 == 0) {
            return transport_recv(
                comm, r + 1, channel.tag, channel.context, recvbuf, count, type, nullptr);
        }
        if (!in_place) {
            std::memcpy(recvbuf, acc, bytes);
        }
        return transport_send(comm, r - 1, channel.tag, channel.context, recvbuf, count, type);
    }
    if (!in_place) {
        std::memcpy(recvbuf, acc, bytes);
    }
    return XMPI_SUCCESS;
}

} // namespace

int coll_reduce_on(
    Comm& comm, CollChannel channel, void const* sendbuf, void* recvbuf, std::size_t count,
    Datatype const& type, Op const& op, int root) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    void const* contribution = sendbuf == IN_PLACE ? recvbuf : sendbuf;
    if (op.commutative()) {
        profile::note_algorithm("binomial_tree");
        return reduce_binomial(comm, channel, contribution, recvbuf, count, type, op, root);
    }
    profile::note_algorithm("linear");
    return reduce_linear(comm, channel, contribution, recvbuf, count, type, op, root);
}

int coll_reduce(
    Comm& comm, void const* sendbuf, void* recvbuf, std::size_t count, Datatype const& type,
    Op const& op, int root) {
    return coll_reduce_on(
        comm, CollChannel{comm.collective_context(), coll_tag::reduce}, sendbuf, recvbuf, count,
        type, op, root);
}

int coll_allreduce_on(
    Comm& comm, CollChannel channel, void const* sendbuf, void* recvbuf, std::size_t count,
    Datatype const& type, Op const& op, ReduceScratch* scratch) {
    if (op.commutative()) {
        if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
            return err;
        }
        void const* contribution = sendbuf == IN_PLACE ? recvbuf : sendbuf;
        profile::note_algorithm("recursive_doubling");
        ReduceScratch local;
        return allreduce_recursive_doubling(
            comm, channel, contribution, recvbuf, count, type, op,
            scratch != nullptr ? *scratch : local);
    }
    profile::note_algorithm("reduce_bcast");
    // Non-commutative: fold in rank order at rank 0, then broadcast, so every
    // rank observes the bit-identical rank-ordered result.
    if (int const err = coll_reduce_on(comm, channel, sendbuf, recvbuf, count, type, op, 0);
        err != XMPI_SUCCESS) {
        return err;
    }
    return coll_bcast_on(comm, channel, recvbuf, count, type, 0);
}

int coll_allreduce(
    Comm& comm, void const* sendbuf, void* recvbuf, std::size_t count, Datatype const& type,
    Op const& op) {
    return coll_allreduce_on(
        comm, CollChannel{comm.collective_context(), coll_tag::reduce}, sendbuf, recvbuf, count,
        type, op);
}

int coll_reduce_scatter_block(
    Comm& comm, void const* sendbuf, void* recvbuf, std::size_t recvcount, Datatype const& type,
    Op const& op) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const p = comm.size();
    int const r = comm.rank();
    std::size_t const total = recvcount * static_cast<std::size_t>(p);
    // Reduce the full vector to rank 0, then scatter blocks.
    ElementBuffer reduced(r == 0 ? total : 0, type);
    if (int const err = coll_reduce(
            comm, sendbuf, r == 0 ? reduced.data() : nullptr, total, type, op, 0);
        err != XMPI_SUCCESS) {
        return err;
    }
    return coll_scatter(comm, reduced.data(), recvcount, type, recvbuf, recvcount, type, 0);
}

int coll_scan(
    Comm& comm, void const* sendbuf, void* recvbuf, std::size_t count, Datatype const& type,
    Op const& op, bool exclusive) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const p = comm.size();
    int const r = comm.rank();
    void const* contribution = sendbuf == IN_PLACE ? recvbuf : sendbuf;
    std::size_t const bytes = count * static_cast<std::size_t>(type.extent());

    // Recursive doubling (Hillis–Steele), ceil(log2 p) rounds. After round
    // k, `inclusive` covers ranks [max(0, r - 2^(k+1) + 1), r] and
    // `exclusive_prefix` the same range without r itself. Receiving the
    // partner's inclusive value prepends an earlier range, so the fold order
    // is rank order — correct for non-commutative operations too.
    ElementBuffer inclusive(count, type);
    ElementBuffer exclusive_prefix(count, type);
    ElementBuffer incoming(count, type);
    std::memcpy(inclusive.data(), contribution, bytes);
    bool have_prefix = false;
    for (int k = 1; k < p; k <<= 1) {
        if (r + k < p) {
            if (int const err =
                    coll_send(comm, r + k, coll_tag::scan, inclusive.data(), count, type);
                err != XMPI_SUCCESS) {
                return err;
            }
        }
        if (r - k >= 0) {
            if (int const err =
                    coll_recv(comm, r - k, coll_tag::scan, incoming.data(), count, type);
                err != XMPI_SUCCESS) {
                return err;
            }
            // inclusive = incoming (op) inclusive; same for the prefix.
            op.apply(incoming.data(), inclusive.data(), count, type);
            if (have_prefix) {
                op.apply(incoming.data(), exclusive_prefix.data(), count, type);
            } else {
                std::memcpy(exclusive_prefix.data(), incoming.data(), bytes);
                have_prefix = true;
            }
        }
    }
    if (exclusive) {
        // Exscan: rank 0's recvbuf is undefined (left untouched).
        if (have_prefix) {
            std::memcpy(recvbuf, exclusive_prefix.data(), bytes);
        }
    } else {
        std::memcpy(recvbuf, inclusive.data(), bytes);
    }
    return XMPI_SUCCESS;
}

} // namespace xmpi::detail
