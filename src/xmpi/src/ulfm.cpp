/// @file ulfm.cpp
/// @brief User-level failure mitigation: revoke, shrink, agree.
///
/// Shrink and agree must complete among the *surviving* members even when the
/// communicator is revoked or members have failed, so they are implemented as
/// a shared-memory rendezvous on the communicator's FtSync structure rather
/// than over the regular transport (which reports errors for failed peers).
///
/// The rendezvous is survivor-aware: round membership is tracked as explicit
/// world-rank lists, and every wake re-evaluates the survivor set and prunes
/// ranks that died mid-round — after contributing, or with the result still
/// unconsumed — so a failure at any point of a round can no longer hang the
/// remaining members or leak the round's result into the next one.
#include <algorithm>
#include <mutex>

#include "coll.hpp"
#include "transport.hpp"
#include "xmpi/chaos.hpp"
#include "xmpi/progress.hpp"

namespace xmpi::detail {
namespace {

/// @brief Discounts ranks that have failed from the round membership lists.
void prune_dead(World const& world, FtSync& ft) {
    auto const dead = [&](int world_rank) { return world.is_failed(world_rank); };
    std::erase_if(ft.arrived_ranks, dead);
    std::erase_if(ft.pending_ranks, dead);
}

/// @brief Closes the round once the result is produced and no surviving
/// consumer is left to pick it up. Runs the round's retire callback (which
/// drops the round's own reference to the result), resets the agree
/// accumulator for the next round, and wakes ranks waiting to start one.
/// Must be called with ft.mutex held.
void maybe_finish_round(FtSync& ft) {
    if (ft.result == nullptr || !ft.pending_ranks.empty()) {
        return;
    }
    if (ft.retire) {
        ft.retire(ft.result);
        ft.retire = nullptr;
    }
    ft.result = nullptr;
    ft.agree_accumulator = ~0;
    ft.cv.notify_all();
}

/// @brief Rendezvous among the surviving members: everyone contributes via
/// @c contribute (called under the lock), the first rank to observe that all
/// survivors arrived produces the round result via @c produce, and every
/// survivor picks it up via @c consume. The round closes after the last
/// surviving consumer leaves — ranks that die mid-round are pruned on every
/// wake instead of being waited for.
template <typename Contribute, typename Produce, typename Consume>
void* ft_rendezvous(Comm& comm, Contribute&& contribute, Produce&& produce, Consume&& consume) {
    auto& world = comm.world();
    int const me = current_world_rank();
    auto& ft = comm.ft_sync();
    std::unique_lock lock(ft.mutex);
    // Let a previous round drain before joining a new one. If its remaining
    // consumers all died, nobody is left to close it: prune and close it
    // here instead of waiting forever.
    ft.cv.wait(lock, [&] {
        prune_dead(world, ft);
        maybe_finish_round(ft);
        return ft.result == nullptr;
    });
    contribute(ft);
    ft.arrived_ranks.push_back(me);
    ft.cv.notify_all();
    // The mid-round failure window: contributed, result not yet consumed.
    // A chaos plan targeting Hook::ft_contributed kills the rank right here
    // (the throw unwinds through the unique_lock).
    chaos::hit_hook(world, me, chaos::Hook::ft_contributed);
    // Failures wake this wait via World::wake_all(), so the survivor set is
    // re-evaluated and dead contributors are discounted on every wake.
    ft.cv.wait(lock, [&] {
        if (ft.result != nullptr) {
            return true;
        }
        prune_dead(world, ft);
        // Post-prune, arrived_ranks is a subset of the survivors; equal
        // sizes mean every surviving member has contributed.
        return ft.arrived_ranks.size() >= comm.surviving_members().size();
    });
    if (ft.result == nullptr) {
        ft.result = produce(ft);
        ft.pending_ranks = std::move(ft.arrived_ranks);
        ft.arrived_ranks.clear();
        ft.cv.notify_all();
    }
    void* const result = ft.result;
    consume(ft, result);
    std::erase(ft.pending_ranks, me);
    prune_dead(world, ft);
    maybe_finish_round(ft);
    return result;
}

} // namespace

int ulfm_revoke(Comm& comm) {
    comm.mark_revoked();
    // Non-blocking collectives already queued on the progress engine but not
    // yet started must observe the revocation too: fail them in place so a
    // later wait/test reports XMPI_ERR_REVOKED instead of running the
    // collective on a dead communicator.
    progress::detail::fail_queued_for_comm(&comm, XMPI_ERR_REVOKED);
    comm.world().wake_all();
    return XMPI_SUCCESS;
}

int ulfm_shrink(Comm& comm, Comm** newcomm) {
    void* const result = ft_rendezvous(
        comm, [](FtSync&) {},
        [&](FtSync& ft) -> void* {
            auto* shrunken = new Comm(&comm.world(), comm.surviving_members());
            // The round itself holds the creation reference; each surviving
            // consumer retains its own at pickup, and retire drops the
            // round's when the round closes. A consumer that dies before
            // pickup therefore never pins the new communicator.
            ft.retire = [](void* round_result) { static_cast<Comm*>(round_result)->release(); };
            return shrunken;
        },
        [](FtSync&, void* round_result) { static_cast<Comm*>(round_result)->retain(); });
    *newcomm = static_cast<Comm*>(result);
    return XMPI_SUCCESS;
}

int ulfm_agree(Comm& comm, int* flag) {
    // The agreed value is the bitwise AND over the survivors' flags; the
    // accumulator lives in FtSync and resets with the round. The result is
    // heap-allocated so that every accumulator value — including ~0, which a
    // pointer-bias encoding cannot represent without aliasing null — marks
    // the round as produced.
    int agreed = 0;
    ft_rendezvous(
        comm, [&](FtSync& ft) { ft.agree_accumulator &= *flag; },
        [](FtSync& ft) -> void* {
            ft.retire = [](void* round_result) { delete static_cast<int*>(round_result); };
            return new int(ft.agree_accumulator);
        },
        [&](FtSync&, void* round_result) { agreed = *static_cast<int*>(round_result); });
    *flag = agreed;
    return XMPI_SUCCESS;
}

} // namespace xmpi::detail
