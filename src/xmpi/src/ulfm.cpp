/// @file ulfm.cpp
/// @brief User-level failure mitigation: revoke, shrink, agree.
///
/// Shrink and agree must complete among the *surviving* members even when the
/// communicator is revoked or members have failed, so they are implemented as
/// a shared-memory rendezvous on the communicator's FtSync structure rather
/// than over the regular transport (which reports errors for failed peers).
#include <mutex>

#include "coll.hpp"
#include "transport.hpp"

namespace xmpi::detail {
namespace {

/// @brief Number of currently surviving members of the communicator.
int alive_count(Comm const& comm) {
    return static_cast<int>(comm.surviving_members().size());
}

/// @brief Rendezvous among the surviving members: everyone contributes via
/// @c contribute (called under the lock), the first rank to observe
/// completion produces the round result via @c produce, and everyone
/// consumes it. The round resets after the last consumer leaves.
template <typename Contribute, typename Produce>
void* ft_rendezvous(Comm& comm, Contribute&& contribute, Produce&& produce) {
    auto& ft = comm.ft_sync();
    std::unique_lock lock(ft.mutex);
    // Let a previous round drain before joining a new one.
    ft.cv.wait(lock, [&] { return ft.pending_consumers == 0; });
    contribute(ft);
    ++ft.arrived;
    ft.cv.notify_all();
    // Failures wake this wait via World::wake_all(), so alive_count() is
    // re-evaluated whenever the failure state changes.
    ft.cv.wait(lock, [&] { return ft.result != nullptr || ft.arrived >= alive_count(comm); });
    if (ft.result == nullptr) {
        ft.result = produce(ft);
        ft.pending_consumers = ft.arrived;
        ft.cv.notify_all();
    }
    void* const result = ft.result;
    if (--ft.pending_consumers == 0) {
        ft.result = nullptr;
        ft.arrived = 0;
        ft.agree_accumulator = ~0;
        ft.cv.notify_all();
    }
    return result;
}

} // namespace

int ulfm_revoke(Comm& comm) {
    comm.mark_revoked();
    comm.world().wake_all();
    return XMPI_SUCCESS;
}

int ulfm_shrink(Comm& comm, Comm** newcomm) {
    void* const result = ft_rendezvous(
        comm, [](FtSync&) {},
        [&](FtSync&) -> void* {
            auto survivors = comm.surviving_members();
            auto* shrunken = new Comm(&comm.world(), std::move(survivors));
            // One handle reference per surviving member.
            for (int i = 1; i < shrunken->size(); ++i) {
                shrunken->retain();
            }
            return shrunken;
        });
    *newcomm = static_cast<Comm*>(result);
    return XMPI_SUCCESS;
}

int ulfm_agree(Comm& comm, int* flag) {
    // The agreed value is the bitwise AND over the survivors' flags; the
    // accumulator lives in FtSync and resets with the round. The result
    // pointer must be non-null to mark completion, so bias the value by one.
    void* const result = ft_rendezvous(
        comm, [&](FtSync& ft) { ft.agree_accumulator &= *flag; },
        [](FtSync& ft) -> void* {
            return reinterpret_cast<void*>(
                static_cast<std::intptr_t>(ft.agree_accumulator) + 1);
        });
    *flag = static_cast<int>(reinterpret_cast<std::intptr_t>(result) - 1);
    return XMPI_SUCCESS;
}

} // namespace xmpi::detail
