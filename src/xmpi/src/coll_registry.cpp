/// @file coll_registry.cpp
/// @brief Registry storage, the selection dispatcher, and shared helpers.
#include "coll_registry.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "xmpi/comm.hpp"
#include "xmpi/netmodel.hpp"
#include "xmpi/profile.hpp"
#include "xmpi/world.hpp"

namespace xmpi::detail {

std::vector<CollAlgo> const& coll_registry() {
    // Function-local static: the registrations run exactly once, on the
    // first collective of the process, with no static-initialization-order
    // hazard. Hierarchical entries register FIRST so they lead the
    // preference walk of the ops they specialize.
    static std::vector<CollAlgo> const registry = [] {
        std::vector<CollAlgo> entries;
        register_hier_algos(entries);
        register_basic_algos(entries);
        register_reduce_algos(entries);
        register_gather_algos(entries);
        register_alltoall_algos(entries);
        return entries;
    }();
    return registry;
}

CollAlgo const* find_coll_algo(tuning::CollOp op, char const* name) {
    for (auto const& entry: coll_registry()) {
        if (entry.op == op && std::strcmp(entry.name, name) == 0) {
            return &entry;
        }
    }
    return nullptr;
}

namespace {

[[nodiscard]] bool
entry_applicable(CollAlgo const& entry, tuning::CollOp op, tuning::SelectCtx const& sctx) {
    return entry.op == op && (entry.applicable == nullptr || entry.applicable(sctx));
}

} // namespace

CollAlgo const* select_coll_algo(
    tuning::CollOp op, tuning::SelectCtx const& sctx, tuning::Selection* selection) {
    auto const& registry = coll_registry();
    auto const found = [&](CollAlgo const& entry, bool from_table, bool forced) {
        if (selection != nullptr) {
            *selection = tuning::Selection{entry.name, from_table, forced};
        }
        return &entry;
    };

    // Layer 1: an explicit force (benches measuring one candidate at a
    // time). Silently falls through when the forced name is inapplicable —
    // correctness constraints outrank the force.
    if (char const* const force = tuning::coll().force_algorithm; force != nullptr) {
        for (auto const& entry: registry) {
            if (entry_applicable(entry, op, sctx) && std::strcmp(entry.name, force) == 0) {
                return found(entry, false, true);
            }
        }
    }

    // Layer 2: a measured tuning-table cell.
    if (tuning::tuning_table_loaded()) {
        if (char const* const cell = tuning::table_algorithm(op, sctx.p, sctx.block_bytes);
            cell != nullptr) {
            for (auto const& entry: registry) {
                if (entry_applicable(entry, op, sctx) && std::strcmp(entry.name, cell) == 0) {
                    return found(entry, true, false);
                }
            }
        }
    }

    // Layer 3: the alpha/beta model — argmin of modeled cost over the
    // applicable entries that have one (first registered wins ties, so the
    // more specialized algorithm is kept on equal-cost cells).
    if (sctx.model_enabled) {
        CollAlgo const* best = nullptr;
        double best_cost = 0.0;
        for (auto const& entry: registry) {
            if (entry.cost == nullptr || !entry_applicable(entry, op, sctx)) {
                continue;
            }
            double const entry_cost = entry.cost(sctx);
            if (best == nullptr || entry_cost < best_cost) {
                best = &entry;
                best_cost = entry_cost;
            }
        }
        if (best != nullptr) {
            return found(*best, false, false);
        }
    }

    // Layer 4: static preference thresholds, in registration order.
    for (auto const& entry: registry) {
        if (entry_applicable(entry, op, sctx)
            && (entry.preferred == nullptr || entry.preferred(sctx))) {
            return found(entry, false, false);
        }
    }
    // No entry preferred itself: the first applicable one (every op
    // registers an always-applicable fallback, so only an unknown op can
    // still fall through).
    for (auto const& entry: registry) {
        if (entry_applicable(entry, op, sctx)) {
            return found(entry, false, false);
        }
    }
    return nullptr;
}

int run_coll_algo(CollAlgo const& algo, CollCtx& ctx) {
    int const err = algo.run(ctx);
    // Note AFTER the run: nested dispatches (composite algorithms) noted
    // their inner names during run(), and the outermost name must be the one
    // the binding layer takes.
    profile::note_algorithm(algo.name);
    return err;
}

int dispatch_coll(tuning::CollOp op, tuning::SelectCtx const& sctx, CollCtx& ctx) {
    CollAlgo const* const algo = select_coll_algo(op, sctx, nullptr);
    if (algo == nullptr) {
        return XMPI_ERR_ARG; // no registered algorithm for this op
    }
    return run_coll_algo(*algo, ctx);
}

tuning::SelectCtx make_select_ctx(Comm& comm, std::size_t block_bytes, bool commutative) {
    NetworkModel const& model = comm.world().network_model();
    tuning::SelectCtx sctx;
    sctx.p = comm.size();
    sctx.block_bytes = block_bytes;
    sctx.commutative = commutative;
    sctx.model_enabled = model.enabled();
    sctx.alpha = model.alpha;
    sctx.beta = model.beta;
    return sctx;
}

void local_copy(
    void const* src, std::size_t scount, Datatype const& stype, void* dst, std::size_t rcount,
    Datatype const& rtype) {
    std::vector<std::byte> packed(stype.packed_size(scount));
    stype.pack(src, scount, packed.data());
    std::size_t const elements =
        rtype.size() == 0 ? 0 : std::min(packed.size(), rtype.packed_size(rcount)) / rtype.size();
    rtype.unpack(packed.data(), elements, dst);
}

std::byte* displaced(void* base, std::ptrdiff_t elements, Datatype const& type) {
    return static_cast<std::byte*>(base) + elements * type.extent();
}

std::byte const* displaced(void const* base, std::ptrdiff_t elements, Datatype const& type) {
    return static_cast<std::byte const*>(base) + elements * type.extent();
}

} // namespace xmpi::detail

namespace xmpi::tuning {

Selection select(CollOp op, SelectCtx const& ctx) {
    Selection selection;
    (void)detail::select_coll_algo(op, ctx, &selection);
    return selection;
}

std::vector<char const*> candidates(CollOp op, SelectCtx const& ctx) {
    std::vector<char const*> names;
    for (auto const& entry: detail::coll_registry()) {
        if (entry.op == op && (entry.applicable == nullptr || entry.applicable(ctx))) {
            names.push_back(entry.name);
        }
    }
    return names;
}

} // namespace xmpi::tuning
