#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "coll.hpp"
#include "transport.hpp"
#include "xmpi/netmodel.hpp"
#include "xmpi/profile.hpp"

namespace xmpi::detail {
namespace {

std::byte* displaced(void* base, std::ptrdiff_t elements, Datatype const& type) {
    return static_cast<std::byte*>(base) + elements * type.extent();
}

std::byte const* displaced(void const* base, std::ptrdiff_t elements, Datatype const& type) {
    return static_cast<std::byte const*>(base) + elements * type.extent();
}

void local_copy(
    void const* src, std::size_t scount, Datatype const& stype, void* dst, std::size_t rcount,
    Datatype const& rtype) {
    std::vector<std::byte> packed(stype.packed_size(scount));
    stype.pack(src, scount, packed.data());
    std::size_t const elements =
        rtype.size() == 0 ? 0 : std::min(packed.size(), rtype.packed_size(rcount)) / rtype.size();
    rtype.unpack(packed.data(), elements, dst);
}

/// @brief Bruck's log-round alltoall (store-and-forward, works for any p).
///
/// Phase 1 packs send block (r+i) % p into local slot i; round k in
/// {1, 2, 4, ...} ships every slot with bit k set to rank (r+k) % p while
/// receiving the same slots from (r-k) % p; afterwards slot i holds the
/// block sent by rank (r-i) % p, which phase 3 unpacks into receive block
/// (r-i) % p. ceil(log2 p) messages of ~p/2 blocks each replace the p-1
/// messages of the pairwise exchange — a latency win for small blocks.
int alltoall_bruck(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, std::size_t recvcount, Datatype const& recvtype) {
    int const p = comm.size();
    int const r = comm.rank();
    std::size_t const block_bytes = sendtype.packed_size(sendcount);
    Datatype const& byte_type = *predefined_type(BuiltinType::byte_);

    std::vector<std::byte> slots(static_cast<std::size_t>(p) * block_bytes);
    auto const slot = [&](int i) { return slots.data() + static_cast<std::size_t>(i) * block_bytes; };
    for (int i = 0; i < p; ++i) {
        sendtype.pack(
            displaced(sendbuf, ((r + i) % p) * static_cast<std::ptrdiff_t>(sendcount), sendtype),
            sendcount, slot(i));
    }

    std::vector<std::byte> send_stage;
    std::vector<std::byte> recv_stage;
    std::vector<int> round_slots;
    for (int k = 1; k < p; k <<= 1) {
        round_slots.clear();
        for (int i = 1; i < p; ++i) {
            if ((i & k) != 0) {
                round_slots.push_back(i);
            }
        }
        std::size_t const stage_bytes = round_slots.size() * block_bytes;
        send_stage.resize(stage_bytes);
        recv_stage.resize(stage_bytes);
        for (std::size_t j = 0; j < round_slots.size(); ++j) {
            std::memcpy(send_stage.data() + j * block_bytes, slot(round_slots[j]), block_bytes);
        }
        if (int const err = coll_sendrecv(
                comm, (r + k) % p, coll_tag::alltoall, send_stage.data(), stage_bytes, byte_type,
                (r - k + p) % p, coll_tag::alltoall, recv_stage.data(), stage_bytes, byte_type);
            err != XMPI_SUCCESS) {
            return err;
        }
        for (std::size_t j = 0; j < round_slots.size(); ++j) {
            std::memcpy(slot(round_slots[j]), recv_stage.data() + j * block_bytes, block_bytes);
        }
    }

    std::size_t const elements_per_block =
        recvtype.size() == 0
            ? 0
            : std::min(block_bytes, recvtype.packed_size(recvcount)) / recvtype.size();
    for (int i = 0; i < p; ++i) {
        recvtype.unpack(
            slot(i),
            elements_per_block,
            displaced(recvbuf, ((r - i + p) % p) * static_cast<std::ptrdiff_t>(recvcount), recvtype));
    }
    return XMPI_SUCCESS;
}

/// @brief Picks Bruck vs. pairwise: by modeled alpha/beta cost when a network
/// model is active, by the tuning byte/rank thresholds otherwise.
bool use_bruck_alltoall(Comm& comm, int p, std::size_t block_bytes) {
    if (p < 2) {
        return false;
    }
    NetworkModel const& model = comm.world().network_model();
    if (model.enabled()) {
        int const rounds = std::bit_width(static_cast<unsigned>(p - 1));
        double const pairwise_cost =
            static_cast<double>(p - 1) * model.message_cost(block_bytes);
        double const bruck_cost = static_cast<double>(rounds)
                                  * model.message_cost(block_bytes * static_cast<std::size_t>(p) / 2);
        return bruck_cost < pairwise_cost;
    }
    return p >= tuning::bruck_alltoall_min_ranks
           && block_bytes <= tuning::bruck_alltoall_max_bytes;
}

} // namespace

int coll_alltoall(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, std::size_t recvcount, Datatype const& recvtype) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const p = comm.size();
    int const r = comm.rank();

    // In-place: stage the current receive buffer as send data. (Bruck reads
    // the whole send buffer into its slots before writing recvbuf, so it
    // needs no staging copy.)
    std::vector<std::byte> staged;
    void const* effective_sendbuf = sendbuf;
    Datatype const* effective_sendtype = &sendtype;
    std::size_t effective_sendcount = sendcount;
    if (sendbuf == IN_PLACE) {
        effective_sendbuf = recvbuf;
        effective_sendtype = &recvtype;
        effective_sendcount = recvcount;
    }

    if (use_bruck_alltoall(comm, p, effective_sendtype->packed_size(effective_sendcount))) {
        profile::note_algorithm("bruck");
        return alltoall_bruck(
            comm, effective_sendbuf, effective_sendcount, *effective_sendtype, recvbuf, recvcount,
            recvtype);
    }
    profile::note_algorithm("pairwise");

    if (sendbuf == IN_PLACE) {
        staged.resize(static_cast<std::size_t>(p) * recvcount * static_cast<std::size_t>(recvtype.extent()));
        std::memcpy(staged.data(), recvbuf, staged.size());
        effective_sendbuf = staged.data();
    }

    local_copy(
        displaced(effective_sendbuf, r * static_cast<std::ptrdiff_t>(effective_sendcount), *effective_sendtype),
        effective_sendcount, *effective_sendtype,
        displaced(recvbuf, r * static_cast<std::ptrdiff_t>(recvcount), recvtype), recvcount,
        recvtype);

    // Pairwise exchange: p-1 rounds, round i pairs rank r with r+i / r-i.
    for (int i = 1; i < p; ++i) {
        int const to = (r + i) % p;
        int const from = (r - i + p) % p;
        if (int const err = coll_sendrecv(
                comm, to, coll_tag::alltoall,
                displaced(effective_sendbuf, to * static_cast<std::ptrdiff_t>(effective_sendcount), *effective_sendtype),
                effective_sendcount, *effective_sendtype, from, coll_tag::alltoall,
                displaced(recvbuf, from * static_cast<std::ptrdiff_t>(recvcount), recvtype),
                recvcount, recvtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

int coll_alltoallv_on(
    Comm& comm, CollChannel channel, void const* sendbuf, int const* sendcounts,
    int const* sdispls, Datatype const& sendtype, void* recvbuf, int const* recvcounts,
    int const* rdispls, Datatype const& recvtype) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const p = comm.size();
    int const r = comm.rank();

    std::vector<std::byte> staged;
    void const* effective_sendbuf = sendbuf;
    Datatype const* effective_sendtype = &sendtype;
    int const* effective_sendcounts = sendcounts;
    int const* effective_sdispls = sdispls;
    if (sendbuf == IN_PLACE) {
        // MPI: send counts/displacements/type are taken from the receive side.
        std::ptrdiff_t max_end = 0;
        for (int i = 0; i < p; ++i) {
            max_end = std::max(
                max_end, static_cast<std::ptrdiff_t>(rdispls[i]) + recvcounts[i]);
        }
        staged.resize(static_cast<std::size_t>(max_end) * static_cast<std::size_t>(recvtype.extent()));
        std::memcpy(staged.data(), recvbuf, staged.size());
        effective_sendbuf = staged.data();
        effective_sendtype = &recvtype;
        effective_sendcounts = recvcounts;
        effective_sdispls = rdispls;
    }

    local_copy(
        displaced(effective_sendbuf, effective_sdispls[r], *effective_sendtype),
        static_cast<std::size_t>(effective_sendcounts[r]), *effective_sendtype,
        displaced(recvbuf, rdispls[r], recvtype), static_cast<std::size_t>(recvcounts[r]),
        recvtype);

    for (int i = 1; i < p; ++i) {
        int const to = (r + i) % p;
        int const from = (r - i + p) % p;
        if (int const err = transport_send(
                comm, to, channel.tag, channel.context,
                displaced(effective_sendbuf, effective_sdispls[to], *effective_sendtype),
                static_cast<std::size_t>(effective_sendcounts[to]), *effective_sendtype);
            err != XMPI_SUCCESS) {
            return err;
        }
        if (int const err = transport_recv(
                comm, from, channel.tag, channel.context,
                displaced(recvbuf, rdispls[from], recvtype),
                static_cast<std::size_t>(recvcounts[from]), recvtype, nullptr);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

int coll_alltoallv(
    Comm& comm, void const* sendbuf, int const* sendcounts, int const* sdispls,
    Datatype const& sendtype, void* recvbuf, int const* recvcounts, int const* rdispls,
    Datatype const& recvtype) {
    return coll_alltoallv_on(
        comm, CollChannel{comm.collective_context(), coll_tag::alltoall}, sendbuf, sendcounts,
        sdispls, sendtype, recvbuf, recvcounts, rdispls, recvtype);
}

int coll_alltoallw(
    Comm& comm, void const* sendbuf, int const* sendcounts, int const* sdispls,
    Datatype const* const* sendtypes, void* recvbuf, int const* recvcounts, int const* rdispls,
    Datatype const* const* recvtypes) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const p = comm.size();
    int const r = comm.rank();

    // Alltoallw displacements are in *bytes* (MPI semantics).
    auto const send_slice = [&](int i) {
        return static_cast<std::byte const*>(sendbuf) + sdispls[i];
    };
    auto const recv_slice = [&](int i) { return static_cast<std::byte*>(recvbuf) + rdispls[i]; };

    local_copy(
        send_slice(r), static_cast<std::size_t>(sendcounts[r]), *sendtypes[r], recv_slice(r),
        static_cast<std::size_t>(recvcounts[r]), *recvtypes[r]);

    for (int i = 1; i < p; ++i) {
        int const to = (r + i) % p;
        int const from = (r - i + p) % p;
        if (int const err = coll_sendrecv(
                comm, to, coll_tag::alltoall, send_slice(to),
                static_cast<std::size_t>(sendcounts[to]), *sendtypes[to], from, coll_tag::alltoall,
                recv_slice(from), static_cast<std::size_t>(recvcounts[from]), *recvtypes[from]);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

int coll_neighbor_alltoallv(
    Comm& comm, void const* sendbuf, int const* sendcounts, int const* sdispls,
    Datatype const& sendtype, void* recvbuf, int const* recvcounts, int const* rdispls,
    Datatype const& recvtype) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    if (!comm.has_topology()) {
        return XMPI_ERR_TOPOLOGY;
    }
    auto const& topology = comm.topology();

    // Post all receives first, then inject the sends (eager, complete
    // locally), then wait. Cost: outdegree messages per rank.
    std::vector<Request*> requests;
    requests.reserve(topology.sources.size());
    int first_error = XMPI_SUCCESS;
    for (std::size_t j = 0; j < topology.sources.size(); ++j) {
        Request* request = nullptr;
        int const err = transport_irecv(
            comm, topology.sources[j], coll_tag::neighbor, comm.collective_context(),
            static_cast<std::byte*>(recvbuf) + rdispls[j] * recvtype.extent(),
            static_cast<std::size_t>(recvcounts[j]), recvtype, &request);
        if (err != XMPI_SUCCESS) {
            if (first_error == XMPI_SUCCESS) {
                first_error = err;
            }
            continue;
        }
        requests.push_back(request);
    }
    for (std::size_t j = 0; j < topology.destinations.size(); ++j) {
        int const err = coll_send(
            comm, topology.destinations[j], coll_tag::neighbor,
            static_cast<std::byte const*>(sendbuf) + sdispls[j] * sendtype.extent(),
            static_cast<std::size_t>(sendcounts[j]), sendtype);
        if (err != XMPI_SUCCESS && first_error == XMPI_SUCCESS) {
            first_error = err;
        }
    }
    for (auto* request: requests) {
        Status status;
        request->wait(status);
        if (status.error != XMPI_SUCCESS && first_error == XMPI_SUCCESS) {
            first_error = status.error;
        }
        delete request;
    }
    return first_error;
}

} // namespace xmpi::detail
