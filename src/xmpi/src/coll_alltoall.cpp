#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "coll.hpp"
#include "coll_registry.hpp"
#include "transport.hpp"
#include "xmpi/netmodel.hpp"

namespace xmpi::detail {
namespace {

/// @brief Bruck's log-round alltoall (store-and-forward, works for any p).
///
/// Phase 1 packs send block (r+i) % p into local slot i; round k in
/// {1, 2, 4, ...} ships every slot with bit k set to rank (r+k) % p while
/// receiving the same slots from (r-k) % p; afterwards slot i holds the
/// block sent by rank (r-i) % p, which phase 3 unpacks into receive block
/// (r-i) % p. ceil(log2 p) messages of ~p/2 blocks each replace the p-1
/// messages of the pairwise exchange — a latency win for small blocks.
/// (Bruck reads the whole send buffer into its slots before writing recvbuf,
/// so the in-place case needs no staging copy.)
int run_alltoall_bruck(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    void const* const sendbuf = ctx.sendbuf;
    std::size_t const sendcount = ctx.sendcount;
    Datatype const& sendtype = *ctx.sendtype;
    void* const recvbuf = ctx.recvbuf;
    std::size_t const recvcount = ctx.recvcount;
    Datatype const& recvtype = *ctx.recvtype;
    int const p = comm.size();
    int const r = comm.rank();
    std::size_t const block_bytes = sendtype.packed_size(sendcount);
    Datatype const& byte_type = *predefined_type(BuiltinType::byte_);

    std::vector<std::byte> slots(static_cast<std::size_t>(p) * block_bytes);
    auto const slot = [&](int i) { return slots.data() + static_cast<std::size_t>(i) * block_bytes; };
    for (int i = 0; i < p; ++i) {
        sendtype.pack(
            displaced(sendbuf, ((r + i) % p) * static_cast<std::ptrdiff_t>(sendcount), sendtype),
            sendcount, slot(i));
    }

    std::vector<std::byte> send_stage;
    std::vector<std::byte> recv_stage;
    std::vector<int> round_slots;
    for (int k = 1; k < p; k <<= 1) {
        round_slots.clear();
        for (int i = 1; i < p; ++i) {
            if ((i & k) != 0) {
                round_slots.push_back(i);
            }
        }
        std::size_t const stage_bytes = round_slots.size() * block_bytes;
        send_stage.resize(stage_bytes);
        recv_stage.resize(stage_bytes);
        for (std::size_t j = 0; j < round_slots.size(); ++j) {
            std::memcpy(send_stage.data() + j * block_bytes, slot(round_slots[j]), block_bytes);
        }
        if (int const err = coll_sendrecv(
                comm, (r + k) % p, coll_tag::alltoall, send_stage.data(), stage_bytes, byte_type,
                (r - k + p) % p, coll_tag::alltoall, recv_stage.data(), stage_bytes, byte_type);
            err != XMPI_SUCCESS) {
            return err;
        }
        for (std::size_t j = 0; j < round_slots.size(); ++j) {
            std::memcpy(slot(round_slots[j]), recv_stage.data() + j * block_bytes, block_bytes);
        }
    }

    std::size_t const elements_per_block =
        recvtype.size() == 0
            ? 0
            : std::min(block_bytes, recvtype.packed_size(recvcount)) / recvtype.size();
    for (int i = 0; i < p; ++i) {
        recvtype.unpack(
            slot(i),
            elements_per_block,
            displaced(recvbuf, ((r - i + p) % p) * static_cast<std::ptrdiff_t>(recvcount), recvtype));
    }
    return XMPI_SUCCESS;
}

/// @brief Pairwise exchange: p-1 rounds, round i pairs rank r with r+i / r-i.
/// An in-place call stages the receive buffer as send data first (pairwise
/// overwrites receive blocks while later rounds still need their originals).
int run_alltoall_pairwise(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    void* const recvbuf = ctx.recvbuf;
    std::size_t const recvcount = ctx.recvcount;
    Datatype const& recvtype = *ctx.recvtype;
    int const p = comm.size();
    int const r = comm.rank();

    void const* sendbuf = ctx.sendbuf;
    std::size_t const sendcount = ctx.sendcount;
    Datatype const& sendtype = *ctx.sendtype;
    std::vector<std::byte> staged;
    if (ctx.in_place) {
        staged.resize(
            static_cast<std::size_t>(p) * recvcount * static_cast<std::size_t>(recvtype.extent()));
        std::memcpy(staged.data(), recvbuf, staged.size());
        sendbuf = staged.data();
    }

    local_copy(
        displaced(sendbuf, r * static_cast<std::ptrdiff_t>(sendcount), sendtype),
        sendcount, sendtype,
        displaced(recvbuf, r * static_cast<std::ptrdiff_t>(recvcount), recvtype), recvcount,
        recvtype);

    for (int i = 1; i < p; ++i) {
        int const to = (r + i) % p;
        int const from = (r - i + p) % p;
        if (int const err = coll_sendrecv(
                comm, to, coll_tag::alltoall,
                displaced(sendbuf, to * static_cast<std::ptrdiff_t>(sendcount), sendtype),
                sendcount, sendtype, from, coll_tag::alltoall,
                displaced(recvbuf, from * static_cast<std::ptrdiff_t>(recvcount), recvtype),
                recvcount, recvtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

/// @brief Pairwise alltoallv over an explicit channel (the persistent
/// alltoall plan replays this with its bound channel).
int run_alltoallv_pairwise(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    CollChannel const channel = ctx.channel;
    void* const recvbuf = ctx.recvbuf;
    int const* const recvcounts = ctx.recvcounts;
    int const* const rdispls = ctx.rdispls;
    Datatype const& recvtype = *ctx.recvtype;
    int const p = comm.size();
    int const r = comm.rank();

    std::vector<std::byte> staged;
    void const* sendbuf = ctx.sendbuf;
    Datatype const* sendtype = ctx.sendtype;
    int const* sendcounts = ctx.sendcounts;
    int const* sdispls = ctx.sdispls;
    if (ctx.in_place) {
        // MPI: send counts/displacements/type are taken from the receive side.
        std::ptrdiff_t max_end = 0;
        for (int i = 0; i < p; ++i) {
            max_end = std::max(
                max_end, static_cast<std::ptrdiff_t>(rdispls[i]) + recvcounts[i]);
        }
        staged.resize(static_cast<std::size_t>(max_end) * static_cast<std::size_t>(recvtype.extent()));
        std::memcpy(staged.data(), recvbuf, staged.size());
        sendbuf = staged.data();
        sendtype = &recvtype;
        sendcounts = recvcounts;
        sdispls = rdispls;
    }

    local_copy(
        displaced(sendbuf, sdispls[r], *sendtype),
        static_cast<std::size_t>(sendcounts[r]), *sendtype,
        displaced(recvbuf, rdispls[r], recvtype), static_cast<std::size_t>(recvcounts[r]),
        recvtype);

    for (int i = 1; i < p; ++i) {
        int const to = (r + i) % p;
        int const from = (r - i + p) % p;
        if (int const err = transport_send(
                comm, to, channel.tag, channel.context,
                displaced(sendbuf, sdispls[to], *sendtype),
                static_cast<std::size_t>(sendcounts[to]), *sendtype);
            err != XMPI_SUCCESS) {
            return err;
        }
        if (int const err = transport_recv(
                comm, from, channel.tag, channel.context,
                displaced(recvbuf, rdispls[from], recvtype),
                static_cast<std::size_t>(recvcounts[from]), recvtype, nullptr);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

int run_alltoallw_pairwise(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    void const* const sendbuf = ctx.sendbuf;
    void* const recvbuf = ctx.recvbuf;
    int const p = comm.size();
    int const r = comm.rank();

    // Alltoallw displacements are in *bytes* (MPI semantics).
    auto const send_slice = [&](int i) {
        return static_cast<std::byte const*>(sendbuf) + ctx.sdispls[i];
    };
    auto const recv_slice = [&](int i) {
        return static_cast<std::byte*>(recvbuf) + ctx.rdispls[i];
    };

    local_copy(
        send_slice(r), static_cast<std::size_t>(ctx.sendcounts[r]), *ctx.sendtypes[r],
        recv_slice(r), static_cast<std::size_t>(ctx.recvcounts[r]), *ctx.recvtypes[r]);

    for (int i = 1; i < p; ++i) {
        int const to = (r + i) % p;
        int const from = (r - i + p) % p;
        if (int const err = coll_sendrecv(
                comm, to, coll_tag::alltoall, send_slice(to),
                static_cast<std::size_t>(ctx.sendcounts[to]), *ctx.sendtypes[to], from,
                coll_tag::alltoall, recv_slice(from),
                static_cast<std::size_t>(ctx.recvcounts[from]), *ctx.recvtypes[from]);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

/// @brief Neighborhood exchange on the communicator's topology graph: post
/// all receives first, then inject the sends (eager, complete locally), then
/// wait. Cost: outdegree messages per rank.
int run_neighbor_alltoallv_posted(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    auto const& topology = comm.topology();
    Datatype const& sendtype = *ctx.sendtype;
    Datatype const& recvtype = *ctx.recvtype;

    std::vector<Request*> requests;
    requests.reserve(topology.sources.size());
    int first_error = XMPI_SUCCESS;
    for (std::size_t j = 0; j < topology.sources.size(); ++j) {
        Request* request = nullptr;
        int const err = transport_irecv(
            comm, topology.sources[j], coll_tag::neighbor, comm.collective_context(),
            static_cast<std::byte*>(ctx.recvbuf) + ctx.rdispls[j] * recvtype.extent(),
            static_cast<std::size_t>(ctx.recvcounts[j]), recvtype, &request);
        if (err != XMPI_SUCCESS) {
            if (first_error == XMPI_SUCCESS) {
                first_error = err;
            }
            continue;
        }
        requests.push_back(request);
    }
    for (std::size_t j = 0; j < topology.destinations.size(); ++j) {
        int const err = coll_send(
            comm, topology.destinations[j], coll_tag::neighbor,
            static_cast<std::byte const*>(ctx.sendbuf) + ctx.sdispls[j] * sendtype.extent(),
            static_cast<std::size_t>(ctx.sendcounts[j]), sendtype);
        if (err != XMPI_SUCCESS && first_error == XMPI_SUCCESS) {
            first_error = err;
        }
    }
    for (auto* request: requests) {
        Status status;
        request->wait(status);
        if (status.error != XMPI_SUCCESS && first_error == XMPI_SUCCESS) {
            first_error = status.error;
        }
        delete request;
    }
    return first_error;
}

[[nodiscard]] double msg_cost(tuning::SelectCtx const& sctx, std::size_t bytes) {
    return sctx.alpha + static_cast<double>(bytes) * sctx.beta;
}

// Bruck needs enough ranks for its log-round savings to pay for the packing;
// the byte threshold draws the line where moving each byte ~log2(p)/2 times
// stops being worth the saved round latency.
[[nodiscard]] bool alltoall_bruck_applicable(tuning::SelectCtx const& sctx) {
    return sctx.p >= 2;
}

[[nodiscard]] bool alltoall_bruck_preferred(tuning::SelectCtx const& sctx) {
    return sctx.p >= tuning::bruck_alltoall_min_ranks
           && sctx.block_bytes <= tuning::bruck_alltoall_max_bytes;
}

[[nodiscard]] double cost_alltoall_bruck(tuning::SelectCtx const& sctx) {
    int const rounds = std::bit_width(static_cast<unsigned>(sctx.p - 1));
    return static_cast<double>(rounds)
           * msg_cost(sctx, sctx.block_bytes * static_cast<std::size_t>(sctx.p) / 2);
}

[[nodiscard]] double cost_alltoall_pairwise(tuning::SelectCtx const& sctx) {
    return static_cast<double>(sctx.p - 1) * msg_cost(sctx, sctx.block_bytes);
}

} // namespace

void register_alltoall_algos(std::vector<CollAlgo>& registry) {
    registry.push_back(
        {tuning::CollOp::alltoall, "bruck", alltoall_bruck_applicable, alltoall_bruck_preferred,
         cost_alltoall_bruck, run_alltoall_bruck});
    registry.push_back(
        {tuning::CollOp::alltoall, "pairwise", nullptr, nullptr, cost_alltoall_pairwise,
         run_alltoall_pairwise});
    registry.push_back(
        {tuning::CollOp::alltoallv, "pairwise", nullptr, nullptr, nullptr,
         run_alltoallv_pairwise});
    registry.push_back(
        {tuning::CollOp::alltoallw, "pairwise", nullptr, nullptr, nullptr,
         run_alltoallw_pairwise});
    registry.push_back(
        {tuning::CollOp::neighbor_alltoallv, "posted", nullptr, nullptr, nullptr,
         run_neighbor_alltoallv_posted});
}

int coll_alltoall(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, std::size_t recvcount, Datatype const& recvtype) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    // In-place: send data comes from the receive buffer with the receive
    // shape (whether an algorithm must stage a copy is its own business).
    CollCtx ctx;
    ctx.comm = &comm;
    ctx.in_place = sendbuf == IN_PLACE;
    ctx.sendbuf = ctx.in_place ? recvbuf : sendbuf;
    ctx.sendcount = ctx.in_place ? recvcount : sendcount;
    ctx.sendtype = ctx.in_place ? &recvtype : &sendtype;
    ctx.recvbuf = recvbuf;
    ctx.recvcount = recvcount;
    ctx.recvtype = &recvtype;
    return dispatch_coll(
        tuning::CollOp::alltoall,
        make_select_ctx(comm, ctx.sendtype->packed_size(ctx.sendcount)), ctx);
}

int coll_alltoallv_on(
    Comm& comm, CollChannel channel, void const* sendbuf, int const* sendcounts,
    int const* sdispls, Datatype const& sendtype, void* recvbuf, int const* recvcounts,
    int const* rdispls, Datatype const& recvtype) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    CollCtx ctx;
    ctx.comm = &comm;
    ctx.channel = channel;
    ctx.in_place = sendbuf == IN_PLACE;
    ctx.sendbuf = sendbuf;
    ctx.sendcounts = sendcounts;
    ctx.sdispls = sdispls;
    ctx.sendtype = &sendtype;
    ctx.recvbuf = recvbuf;
    ctx.recvcounts = recvcounts;
    ctx.rdispls = rdispls;
    ctx.recvtype = &recvtype;
    // Block sizes vary per peer; selection sees the caller's own block as a
    // representative size.
    std::size_t const own_bytes =
        recvtype.packed_size(static_cast<std::size_t>(recvcounts[comm.rank()]));
    return dispatch_coll(tuning::CollOp::alltoallv, make_select_ctx(comm, own_bytes), ctx);
}

int coll_alltoallv(
    Comm& comm, void const* sendbuf, int const* sendcounts, int const* sdispls,
    Datatype const& sendtype, void* recvbuf, int const* recvcounts, int const* rdispls,
    Datatype const& recvtype) {
    return coll_alltoallv_on(
        comm, CollChannel{comm.collective_context(), coll_tag::alltoall}, sendbuf, sendcounts,
        sdispls, sendtype, recvbuf, recvcounts, rdispls, recvtype);
}

int coll_alltoallw(
    Comm& comm, void const* sendbuf, int const* sendcounts, int const* sdispls,
    Datatype const* const* sendtypes, void* recvbuf, int const* recvcounts, int const* rdispls,
    Datatype const* const* recvtypes) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    CollCtx ctx;
    ctx.comm = &comm;
    ctx.sendbuf = sendbuf;
    ctx.sendcounts = sendcounts;
    ctx.sdispls = sdispls;
    ctx.sendtypes = sendtypes;
    ctx.recvbuf = recvbuf;
    ctx.recvcounts = recvcounts;
    ctx.rdispls = rdispls;
    ctx.recvtypes = recvtypes;
    int const r = comm.rank();
    std::size_t const own_bytes =
        recvtypes[r]->packed_size(static_cast<std::size_t>(recvcounts[r]));
    return dispatch_coll(tuning::CollOp::alltoallw, make_select_ctx(comm, own_bytes), ctx);
}

int coll_neighbor_alltoallv(
    Comm& comm, void const* sendbuf, int const* sendcounts, int const* sdispls,
    Datatype const& sendtype, void* recvbuf, int const* recvcounts, int const* rdispls,
    Datatype const& recvtype) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    if (!comm.has_topology()) {
        return XMPI_ERR_TOPOLOGY;
    }
    CollCtx ctx;
    ctx.comm = &comm;
    ctx.sendbuf = sendbuf;
    ctx.sendcounts = sendcounts;
    ctx.sdispls = sdispls;
    ctx.sendtype = &sendtype;
    ctx.recvbuf = recvbuf;
    ctx.recvcounts = recvcounts;
    ctx.rdispls = rdispls;
    ctx.recvtype = &recvtype;
    return dispatch_coll(
        tuning::CollOp::neighbor_alltoallv, make_select_ctx(comm, 0), ctx);
}

} // namespace xmpi::detail
