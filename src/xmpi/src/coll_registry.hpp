/// @file coll_registry.hpp
/// @brief The collective algorithm registry: one named entry per algorithm,
/// one selection seam for all of them.
///
/// Every collective translation unit registers its algorithms here instead of
/// branching on thresholds inline; xmpi::tuning::select() (implemented in
/// coll_registry.cpp against this registry) is the only place selection
/// happens. Entries carry three predicates with distinct roles:
///
///   - applicable(): HARD correctness constraints (op commutativity,
///     power-of-two rank counts, hierarchy needing a node grouping). Never
///     overridden — not by the model, not by a tuning table, not by a force.
///   - preferred(): the static byte/rank thresholds of netmodel.hpp, used
///     when no model, table, or force decides. Each threshold constant is
///     referenced from exactly one preferred() so there is a single source
///     of truth per constant.
///   - cost(): modeled alpha/beta seconds; when a network model is active
///     the applicable entry with the lowest modeled cost wins. Entries
///     without a cost model (the hierarchical variants — a uniform
///     alpha/beta model cannot see topology) simply never win this layer.
///
/// Registration order within one op is the preference order: the dispatcher
/// walks entries front to back, so more specialized algorithms (hierarchical,
/// then latency-optimal) register before the always-applicable fallback.
#pragma once

#include <cstddef>
#include <vector>

#include "coll.hpp"
#include "xmpi/tuning.hpp"

namespace xmpi::detail {

/// @brief Uniform argument record for algorithm run() hooks, covering every
/// collective shape. Entry points fill the fields their collective has;
/// algorithms read only the fields their op defines.
struct CollCtx {
    Comm* comm = nullptr;
    CollChannel channel{0, 0};
    void const* sendbuf = nullptr; ///< IN_PLACE already resolved by the entry
    void* recvbuf = nullptr;
    std::size_t sendcount = 0;
    std::size_t recvcount = 0;
    Datatype const* sendtype = nullptr;
    Datatype const* recvtype = nullptr;
    Op const* op = nullptr;
    int root = 0;
    bool in_place = false;  ///< caller passed IN_PLACE (algorithms that must stage check this)
    bool exclusive = false; ///< scan only (exscan semantics)
    ReduceScratch* scratch = nullptr; ///< optional hoisted scratch (persistent allreduce)
    /// @name v-variant arrays (alltoallv/w, neighbor)
    /// @{
    int const* sendcounts = nullptr;
    int const* sdispls = nullptr;
    int const* recvcounts = nullptr;
    int const* rdispls = nullptr;
    Datatype const* const* sendtypes = nullptr; ///< alltoallw only
    Datatype const* const* recvtypes = nullptr; ///< alltoallw only
    /// @}
};

/// @brief One registered collective algorithm.
struct CollAlgo {
    tuning::CollOp op;
    char const* name; ///< static storage; the name select()/tracing report
    /// Hard constraints; nullptr = always applicable.
    bool (*applicable)(tuning::SelectCtx const&);
    /// Static threshold preference; nullptr = always preferred (fallbacks).
    bool (*preferred)(tuning::SelectCtx const&);
    /// Modeled cost in seconds; nullptr = not modeled (skipped by the model
    /// layer).
    double (*cost)(tuning::SelectCtx const&);
    int (*run)(CollCtx&);
};

/// @brief The process-wide registry, populated on first use by the
/// register_*_algos() hooks below (explicit calls, not static registrar
/// objects: a static library may drop a TU nothing references).
[[nodiscard]] std::vector<CollAlgo> const& coll_registry();

/// @brief Finds the entry (op, name), or nullptr.
[[nodiscard]] CollAlgo const* find_coll_algo(tuning::CollOp op, char const* name);

/// @brief Runs select() and resolves the winner to its registry entry.
/// @param selection out-param for the Selection record; may be nullptr.
[[nodiscard]] CollAlgo const*
select_coll_algo(tuning::CollOp op, tuning::SelectCtx const& sctx, tuning::Selection* selection);

/// @brief Runs one entry and notes its algorithm name for tracing. The note
/// happens AFTER the run so composite algorithms (reduce_scatter's inner
/// reduce + scatter, hierarchical phases) leave the *outermost* name in the
/// thread-local slot for the binding layer to take.
int run_coll_algo(CollAlgo const& algo, CollCtx& ctx);

/// @brief select + run in one step: the standard tail of every entry point.
int dispatch_coll(tuning::CollOp op, tuning::SelectCtx const& sctx, CollCtx& ctx);

/// @brief Builds a SelectCtx from the live communicator and block size.
[[nodiscard]] tuning::SelectCtx
make_select_ctx(Comm& comm, std::size_t block_bytes, bool commutative = true);

/// @name Shared buffer helpers (hoisted from the collective TUs)
/// @{
/// @brief Local datatype conversion: packs (src, scount, stype) and unpacks
/// into (dst, up to rcount elements of rtype). The self-copy of rooted
/// collectives.
void local_copy(
    void const* src, std::size_t scount, Datatype const& stype, void* dst, std::size_t rcount,
    Datatype const& rtype);
[[nodiscard]] std::byte* displaced(void* base, std::ptrdiff_t elements, Datatype const& type);
[[nodiscard]] std::byte const*
displaced(void const* base, std::ptrdiff_t elements, Datatype const& type);
/// @}

/// @name Per-TU registration hooks (called once from coll_registry())
/// @{
void register_hier_algos(std::vector<CollAlgo>& registry);     // coll_hier.cpp
void register_basic_algos(std::vector<CollAlgo>& registry);    // coll_basic.cpp
void register_reduce_algos(std::vector<CollAlgo>& registry);   // coll_reduce.cpp
void register_gather_algos(std::vector<CollAlgo>& registry);   // coll_gather.cpp
void register_alltoall_algos(std::vector<CollAlgo>& registry); // coll_alltoall.cpp
/// @}

} // namespace xmpi::detail
