/// @file api.cpp
/// @brief The flat XMPI_* entry points: argument validation, profiling
/// counters, and dispatch into the internal implementation.
#include "xmpi/api.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "coll.hpp"
#include "persistent.hpp"
#include "transport.hpp"
#include "xmpi/chaos.hpp"
#include "xmpi/progress.hpp"
#include "xmpi/ring.hpp"
#include "xmpi/tuning.hpp"

namespace {

using xmpi::BuiltinOp;
using xmpi::BuiltinType;

void count_call(xmpi::profile::Call call) {
    auto& context = xmpi::detail::current_context();
    if (context.world != nullptr) {
        auto const count = context.world->counters(context.world_rank)
                               .calls[static_cast<std::size_t>(call)]
                               .fetch_add(1, std::memory_order_relaxed)
                           + 1;
        // Fault injection rides on the same counter: when a chaos plan is
        // armed, the per-rank call count is the reproducible injection point.
        if (auto* engine = context.world->chaos_engine(); engine != nullptr) {
            if (engine->on_call(context.world_rank, call,
                                static_cast<std::uint64_t>(count))) {
                context.world->kill_current_rank(); // throws RankKilled
            }
        }
    }
}

xmpi::Status empty_status() {
    return xmpi::Status{XMPI_PROC_NULL, XMPI_ANY_TAG, XMPI_SUCCESS, 0};
}

/// Disposes one completed request handle: persistent requests go inactive
/// and keep their handle (freed only by XMPI_Request_free); one-shot
/// requests are consumed — deleted and nulled.
void consume_completed(XMPI_Request* request) {
    if ((*request)->persistent()) {
        return;
    }
    delete *request;
    *request = XMPI_REQUEST_NULL;
}

/// A request the array completion functions must poll: non-null and active
/// (an inactive persistent request participates like a null handle).
bool is_pollable(XMPI_Request request) {
    return request != XMPI_REQUEST_NULL && request->active();
}

/// Runs @c sweep until it returns true, escalating spin -> yield -> block on
/// the calling rank's mailbox eventcount (any message delivery, engine
/// completion, or failure wakes it). Replaces the old unbounded
/// yield() busy-wait of Waitany/Waitsome: a blocked rank burns no CPU
/// beyond the bounded spin/yield budgets. The 1ms timeout bounds the
/// wake-up race window (see Mailbox::wait_signal); progress::poll() keeps
/// the rank's own engine tasks moving while it waits.
template <typename Sweep>
void wait_ladder(Sweep&& sweep) {
    for (int i = xmpi::tuning::spin_budget(); i > 0; --i) {
        if (sweep()) {
            return;
        }
        xmpi::detail::spin_pause();
    }
    for (int i = xmpi::tuning::yield_budget(); i > 0; --i) {
        if (sweep()) {
            return;
        }
        std::this_thread::yield();
    }
    auto const& context = xmpi::detail::current_context();
    if (context.world == nullptr) {
        // Threads outside a world (helpers polling a handed-off request)
        // have no mailbox to block on.
        while (!sweep()) {
            std::this_thread::yield();
        }
        return;
    }
    auto& mailbox = context.world->mailbox(context.world_rank);
    while (!sweep()) {
        xmpi::progress::poll();
        mailbox.wait_signal(std::chrono::milliseconds(1));
    }
}

} // namespace

/// @name Predefined handles
/// @{
XMPI_Datatype XMPI_BYTE_() {
    return xmpi::predefined_type(BuiltinType::byte_);
}
XMPI_Datatype XMPI_CHAR_() {
    return xmpi::predefined_type(BuiltinType::char_);
}
XMPI_Datatype XMPI_SIGNED_CHAR_() {
    return xmpi::predefined_type(BuiltinType::signed_char);
}
XMPI_Datatype XMPI_UNSIGNED_CHAR_() {
    return xmpi::predefined_type(BuiltinType::unsigned_char);
}
XMPI_Datatype XMPI_SHORT_() {
    return xmpi::predefined_type(BuiltinType::short_);
}
XMPI_Datatype XMPI_UNSIGNED_SHORT_() {
    return xmpi::predefined_type(BuiltinType::unsigned_short);
}
XMPI_Datatype XMPI_INT_() {
    return xmpi::predefined_type(BuiltinType::int_);
}
XMPI_Datatype XMPI_UNSIGNED_() {
    return xmpi::predefined_type(BuiltinType::unsigned_int);
}
XMPI_Datatype XMPI_LONG_() {
    return xmpi::predefined_type(BuiltinType::long_);
}
XMPI_Datatype XMPI_UNSIGNED_LONG_() {
    return xmpi::predefined_type(BuiltinType::unsigned_long);
}
XMPI_Datatype XMPI_LONG_LONG_() {
    return xmpi::predefined_type(BuiltinType::long_long);
}
XMPI_Datatype XMPI_UNSIGNED_LONG_LONG_() {
    return xmpi::predefined_type(BuiltinType::unsigned_long_long);
}
XMPI_Datatype XMPI_FLOAT_() {
    return xmpi::predefined_type(BuiltinType::float_);
}
XMPI_Datatype XMPI_DOUBLE_() {
    return xmpi::predefined_type(BuiltinType::double_);
}
XMPI_Datatype XMPI_LONG_DOUBLE_() {
    return xmpi::predefined_type(BuiltinType::long_double);
}
XMPI_Datatype XMPI_CXX_BOOL_() {
    return xmpi::predefined_type(BuiltinType::bool_);
}
XMPI_Op XMPI_SUM_() {
    return xmpi::predefined_op(BuiltinOp::sum);
}
XMPI_Op XMPI_PROD_() {
    return xmpi::predefined_op(BuiltinOp::prod);
}
XMPI_Op XMPI_MIN_() {
    return xmpi::predefined_op(BuiltinOp::min);
}
XMPI_Op XMPI_MAX_() {
    return xmpi::predefined_op(BuiltinOp::max);
}
XMPI_Op XMPI_LAND_() {
    return xmpi::predefined_op(BuiltinOp::land);
}
XMPI_Op XMPI_LOR_() {
    return xmpi::predefined_op(BuiltinOp::lor);
}
XMPI_Op XMPI_LXOR_() {
    return xmpi::predefined_op(BuiltinOp::lxor);
}
XMPI_Op XMPI_BAND_() {
    return xmpi::predefined_op(BuiltinOp::band);
}
XMPI_Op XMPI_BOR_() {
    return xmpi::predefined_op(BuiltinOp::bor);
}
XMPI_Op XMPI_BXOR_() {
    return xmpi::predefined_op(BuiltinOp::bxor);
}
/// @}

/// @name Environment
/// @{
int XMPI_Comm_size(XMPI_Comm comm, int* size) {
    *size = comm->size();
    return XMPI_SUCCESS;
}

int XMPI_Comm_rank(XMPI_Comm comm, int* rank) {
    *rank = comm->rank();
    return XMPI_SUCCESS;
}

double XMPI_Wtime() {
    return xmpi::wtime();
}

int XMPI_Abort(XMPI_Comm, int errorcode) {
    std::fprintf(stderr, "XMPI_Abort with error code %d\n", errorcode);
    std::abort();
}

int XMPI_Error_string(int errorcode, char* string, int* resultlen) {
    char const* text = xmpi::error_string(errorcode);
    std::size_t const length = std::strlen(text);
    std::memcpy(string, text, length + 1);
    *resultlen = static_cast<int>(length);
    return XMPI_SUCCESS;
}
/// @}

/// @name Point-to-point
/// @{
int XMPI_Send(
    void const* buf, int count, XMPI_Datatype datatype, int dest, int tag, XMPI_Comm comm) {
    count_call(xmpi::profile::Call::send);
    return xmpi::detail::transport_send(
        *comm, dest, tag, comm->pt2pt_context(), buf, static_cast<std::size_t>(count), *datatype);
}

int XMPI_Ssend(
    void const* buf, int count, XMPI_Datatype datatype, int dest, int tag, XMPI_Comm comm) {
    count_call(xmpi::profile::Call::ssend);
    auto sync = std::make_shared<xmpi::detail::SyncHandle>();
    if (int const err = xmpi::detail::transport_send(
            *comm, dest, tag, comm->pt2pt_context(), buf, static_cast<std::size_t>(count),
            *datatype, sync);
        err != XMPI_SUCCESS) {
        return err;
    }
    if (dest == XMPI_PROC_NULL) {
        return XMPI_SUCCESS;
    }
    xmpi::detail::SyncRequest request(std::move(sync), comm);
    xmpi::Status status;
    request.wait(status);
    return status.error;
}

int XMPI_Isend(
    void const* buf, int count, XMPI_Datatype datatype, int dest, int tag, XMPI_Comm comm,
    XMPI_Request* request) {
    count_call(xmpi::profile::Call::isend);
    int const err = xmpi::detail::transport_send(
        *comm, dest, tag, comm->pt2pt_context(), buf, static_cast<std::size_t>(count), *datatype);
    if (err != XMPI_SUCCESS) {
        return err;
    }
    *request = new xmpi::detail::CompletedRequest(
        xmpi::Status{XMPI_UNDEFINED, XMPI_UNDEFINED, XMPI_SUCCESS, 0});
    return XMPI_SUCCESS;
}

int XMPI_Issend(
    void const* buf, int count, XMPI_Datatype datatype, int dest, int tag, XMPI_Comm comm,
    XMPI_Request* request) {
    count_call(xmpi::profile::Call::issend);
    auto sync = std::make_shared<xmpi::detail::SyncHandle>();
    int const err = xmpi::detail::transport_send(
        *comm, dest, tag, comm->pt2pt_context(), buf, static_cast<std::size_t>(count), *datatype,
        sync);
    if (err != XMPI_SUCCESS) {
        return err;
    }
    if (dest == XMPI_PROC_NULL) {
        *request = new xmpi::detail::CompletedRequest(
            xmpi::Status{XMPI_UNDEFINED, XMPI_UNDEFINED, XMPI_SUCCESS, 0});
    } else {
        *request = new xmpi::detail::SyncRequest(std::move(sync), comm);
    }
    return XMPI_SUCCESS;
}

int XMPI_Recv(
    void* buf, int count, XMPI_Datatype datatype, int source, int tag, XMPI_Comm comm,
    XMPI_Status* status) {
    count_call(xmpi::profile::Call::recv);
    return xmpi::detail::transport_recv(
        *comm, source, tag, comm->pt2pt_context(), buf, static_cast<std::size_t>(count),
        *datatype, status);
}

int XMPI_Irecv(
    void* buf, int count, XMPI_Datatype datatype, int source, int tag, XMPI_Comm comm,
    XMPI_Request* request) {
    count_call(xmpi::profile::Call::irecv);
    return xmpi::detail::transport_irecv(
        *comm, source, tag, comm->pt2pt_context(), buf, static_cast<std::size_t>(count),
        *datatype, request);
}

int XMPI_Sendrecv(
    void const* sendbuf, int sendcount, XMPI_Datatype sendtype, int dest, int sendtag,
    void* recvbuf, int recvcount, XMPI_Datatype recvtype, int source, int recvtag, XMPI_Comm comm,
    XMPI_Status* status) {
    count_call(xmpi::profile::Call::sendrecv);
    XMPI_Request recv_request = XMPI_REQUEST_NULL;
    if (int const recv_err = xmpi::detail::transport_irecv(
            *comm, source, recvtag, comm->pt2pt_context(), recvbuf,
            static_cast<std::size_t>(recvcount), *recvtype, &recv_request);
        recv_err != XMPI_SUCCESS) {
        return recv_err;
    }
    int const send_err = xmpi::detail::transport_send(
        *comm, dest, sendtag, comm->pt2pt_context(), sendbuf,
        static_cast<std::size_t>(sendcount), *sendtype);
    xmpi::Status recv_status;
    recv_request->wait(recv_status);
    delete recv_request;
    if (status != XMPI_STATUS_IGNORE) {
        *status = recv_status;
    }
    return send_err != XMPI_SUCCESS ? send_err : recv_status.error;
}

int XMPI_Probe(int source, int tag, XMPI_Comm comm, XMPI_Status* status) {
    count_call(xmpi::profile::Call::probe);
    // PROC_NULL and out-of-range sources must be handled before building the
    // match pattern: check_peer would index the member table with them.
    if (source == XMPI_PROC_NULL) {
        if (status != XMPI_STATUS_IGNORE) {
            *status = xmpi::Status{XMPI_PROC_NULL, XMPI_ANY_TAG, XMPI_SUCCESS, 0};
        }
        return XMPI_SUCCESS;
    }
    if (source != XMPI_ANY_SOURCE && (source < 0 || source >= comm->size())) {
        return XMPI_ERR_RANK;
    }
    xmpi::detail::Envelope const pattern{comm->pt2pt_context(), source, tag};
    auto& mailbox = comm->world().mailbox(xmpi::detail::current_world_rank());
    xmpi::Status probe_status;
    bool const found = mailbox.probe_blocking(pattern, probe_status, [&] {
        return xmpi::detail::check_peer(*comm, source) != XMPI_SUCCESS;
    });
    if (!found) {
        return xmpi::detail::check_peer(*comm, source);
    }
    if (status != XMPI_STATUS_IGNORE) {
        *status = probe_status;
    }
    return XMPI_SUCCESS;
}

int XMPI_Iprobe(int source, int tag, XMPI_Comm comm, int* flag, XMPI_Status* status) {
    count_call(xmpi::profile::Call::iprobe);
    if (source == XMPI_PROC_NULL) {
        *flag = 1;
        if (status != XMPI_STATUS_IGNORE) {
            *status = xmpi::Status{XMPI_PROC_NULL, XMPI_ANY_TAG, XMPI_SUCCESS, 0};
        }
        return XMPI_SUCCESS;
    }
    if (source != XMPI_ANY_SOURCE && (source < 0 || source >= comm->size())) {
        return XMPI_ERR_RANK;
    }
    xmpi::detail::Envelope const pattern{comm->pt2pt_context(), source, tag};
    auto& mailbox = comm->world().mailbox(xmpi::detail::current_world_rank());
    xmpi::Status probe_status;
    *flag = mailbox.probe(pattern, probe_status) ? 1 : 0;
    if (*flag != 0 && status != XMPI_STATUS_IGNORE) {
        *status = probe_status;
    }
    return XMPI_SUCCESS;
}

int XMPI_Get_count(XMPI_Status const* status, XMPI_Datatype datatype, int* count) {
    *count = status->count(datatype->size());
    return XMPI_SUCCESS;
}
/// @}

/// @name Request completion
/// @{
int XMPI_Wait(XMPI_Request* request, XMPI_Status* status) {
    if (*request == XMPI_REQUEST_NULL) {
        if (status != XMPI_STATUS_IGNORE) {
            *status = empty_status();
        }
        return XMPI_SUCCESS;
    }
    xmpi::Status wait_status;
    (*request)->wait(wait_status);
    consume_completed(request);
    if (status != XMPI_STATUS_IGNORE) {
        *status = wait_status;
    }
    return wait_status.error;
}

int XMPI_Test(XMPI_Request* request, int* flag, XMPI_Status* status) {
    if (*request == XMPI_REQUEST_NULL) {
        *flag = 1;
        if (status != XMPI_STATUS_IGNORE) {
            *status = empty_status();
        }
        return XMPI_SUCCESS;
    }
    xmpi::Status test_status;
    if ((*request)->test(test_status)) {
        *flag = 1;
        consume_completed(request);
        if (status != XMPI_STATUS_IGNORE) {
            *status = test_status;
        }
        return test_status.error;
    }
    *flag = 0;
    return XMPI_SUCCESS;
}

int XMPI_Waitall(int count, XMPI_Request* requests, XMPI_Status* statuses) {
    int first_error = XMPI_SUCCESS;
    for (int i = 0; i < count; ++i) {
        xmpi::Status status;
        int const err = XMPI_Wait(&requests[i], &status);
        if (statuses != XMPI_STATUSES_IGNORE) {
            statuses[i] = status;
        }
        if (err != XMPI_SUCCESS && first_error == XMPI_SUCCESS) {
            first_error = err;
        }
    }
    return first_error;
}

int XMPI_Testall(int count, XMPI_Request* requests, int* flag, XMPI_Status* statuses) {
    // First pass: probe without consuming. peek() (not test()) matters for
    // persistent requests: a completed one must stay consumable if the
    // answer turns out to be "not all done".
    for (int i = 0; i < count; ++i) {
        if (!is_pollable(requests[i])) {
            continue;
        }
        if (!requests[i]->peek()) {
            *flag = 0;
            return XMPI_SUCCESS;
        }
    }
    *flag = 1;
    // Second pass: consume every completion. Per-request failures are not
    // swallowed: with visible statuses the call reports ERR_IN_STATUS and
    // the statuses carry the real codes; without, the first error code.
    int first_error = XMPI_SUCCESS;
    bool any_error = false;
    for (int i = 0; i < count; ++i) {
        xmpi::Status status = empty_status();
        if (requests[i] != XMPI_REQUEST_NULL) {
            requests[i]->wait(status);
            consume_completed(&requests[i]);
        }
        if (statuses != XMPI_STATUSES_IGNORE) {
            statuses[i] = status;
        }
        if (status.error != XMPI_SUCCESS) {
            any_error = true;
            if (first_error == XMPI_SUCCESS) {
                first_error = status.error;
            }
        }
    }
    if (any_error) {
        return statuses != XMPI_STATUSES_IGNORE ? XMPI_ERR_IN_STATUS : first_error;
    }
    return XMPI_SUCCESS;
}

int XMPI_Waitany(int count, XMPI_Request* requests, int* index, XMPI_Status* status) {
    int found = XMPI_UNDEFINED;
    xmpi::Status found_status = empty_status();
    bool none_active = false;
    // The completion is recorded inside the sweep at detection time:
    // test() on a persistent request consumes it (flips it inactive), so
    // the ladder must never re-test a request it already saw complete.
    auto sweep = [&] {
        bool any_active = false;
        for (int i = 0; i < count; ++i) {
            if (!is_pollable(requests[i])) {
                continue;
            }
            any_active = true;
            xmpi::Status test_status;
            if (requests[i]->test(test_status)) {
                consume_completed(&requests[i]);
                found = i;
                found_status = test_status;
                return true;
            }
        }
        if (!any_active) {
            none_active = true;
            return true;
        }
        return false;
    };
    wait_ladder(sweep);
    if (none_active) {
        *index = XMPI_UNDEFINED;
        if (status != XMPI_STATUS_IGNORE) {
            *status = empty_status();
        }
        return XMPI_SUCCESS;
    }
    *index = found;
    if (status != XMPI_STATUS_IGNORE) {
        *status = found_status;
    }
    return found_status.error;
}

int XMPI_Waitsome(
    int incount, XMPI_Request* requests, int* outcount, int* indices, XMPI_Status* statuses) {
    *outcount = 0;
    bool none_active = false;
    int first_error = XMPI_SUCCESS;
    bool any_error = false;
    auto sweep = [&] {
        bool any_active = false;
        for (int i = 0; i < incount; ++i) {
            if (!is_pollable(requests[i])) {
                continue;
            }
            any_active = true;
            xmpi::Status status;
            if (requests[i]->test(status)) {
                consume_completed(&requests[i]);
                indices[*outcount] = i;
                if (statuses != XMPI_STATUSES_IGNORE) {
                    statuses[*outcount] = status;
                }
                if (status.error != XMPI_SUCCESS) {
                    any_error = true;
                    if (first_error == XMPI_SUCCESS) {
                        first_error = status.error;
                    }
                }
                ++*outcount;
            }
        }
        if (!any_active && *outcount == 0) {
            none_active = true;
            return true;
        }
        return *outcount > 0;
    };
    wait_ladder(sweep);
    if (none_active) {
        *outcount = XMPI_UNDEFINED;
        return XMPI_SUCCESS;
    }
    if (any_error) {
        // A completed request failed; the statuses carry the real codes
        // (ERR_IN_STATUS), or the first code when the caller ignores them.
        return statuses != XMPI_STATUSES_IGNORE ? XMPI_ERR_IN_STATUS : first_error;
    }
    return XMPI_SUCCESS;
}

int XMPI_Testany(int count, XMPI_Request* requests, int* index, int* flag, XMPI_Status* status) {
    bool any_active = false;
    for (int i = 0; i < count; ++i) {
        if (!is_pollable(requests[i])) {
            continue;
        }
        any_active = true;
        xmpi::Status test_status;
        if (requests[i]->test(test_status)) {
            consume_completed(&requests[i]);
            *index = i;
            *flag = 1;
            if (status != XMPI_STATUS_IGNORE) {
                *status = test_status;
            }
            return test_status.error;
        }
    }
    *index = XMPI_UNDEFINED;
    // No active requests counts as "trivially complete" (MPI semantics);
    // active-but-incomplete reports flag = 0.
    *flag = any_active ? 0 : 1;
    if (!any_active && status != XMPI_STATUS_IGNORE) {
        *status = empty_status();
    }
    return XMPI_SUCCESS;
}

int XMPI_Testsome(
    int incount, XMPI_Request* requests, int* outcount, int* indices, XMPI_Status* statuses) {
    *outcount = 0;
    bool any_active = false;
    int first_error = XMPI_SUCCESS;
    bool any_error = false;
    for (int i = 0; i < incount; ++i) {
        if (!is_pollable(requests[i])) {
            continue;
        }
        any_active = true;
        xmpi::Status status;
        if (requests[i]->test(status)) {
            consume_completed(&requests[i]);
            indices[*outcount] = i;
            if (statuses != XMPI_STATUSES_IGNORE) {
                statuses[*outcount] = status;
            }
            if (status.error != XMPI_SUCCESS) {
                any_error = true;
                if (first_error == XMPI_SUCCESS) {
                    first_error = status.error;
                }
            }
            ++*outcount;
        }
    }
    if (!any_active && *outcount == 0) {
        *outcount = XMPI_UNDEFINED;
        return XMPI_SUCCESS;
    }
    if (any_error) {
        return statuses != XMPI_STATUSES_IGNORE ? XMPI_ERR_IN_STATUS : first_error;
    }
    return XMPI_SUCCESS;
}

int XMPI_Cancel(XMPI_Request* request) {
    if (*request == XMPI_REQUEST_NULL) {
        return XMPI_ERR_REQUEST;
    }
    (*request)->cancel();
    return XMPI_SUCCESS;
}

int XMPI_Request_free(XMPI_Request* request) {
    if (*request == XMPI_REQUEST_NULL) {
        return XMPI_ERR_REQUEST;
    }
    delete *request;
    *request = XMPI_REQUEST_NULL;
    return XMPI_SUCCESS;
}
/// @}

/// @name Persistent and partitioned requests
/// @{
int XMPI_Start(XMPI_Request* request) {
    count_call(xmpi::profile::Call::start);
    if (*request == XMPI_REQUEST_NULL || !(*request)->persistent()) {
        return XMPI_ERR_REQUEST;
    }
    return (*request)->start();
}

int XMPI_Startall(int count, XMPI_Request* requests) {
    for (int i = 0; i < count; ++i) {
        if (int const err = XMPI_Start(&requests[i]); err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

int XMPI_Send_init(
    void const* buf, int count, XMPI_Datatype datatype, int dest, int tag, XMPI_Comm comm,
    XMPI_Request* request) {
    count_call(xmpi::profile::Call::send_init);
    *request = xmpi::detail::make_persistent_send(
        *comm, buf, static_cast<std::size_t>(count), *datatype, dest, tag);
    return XMPI_SUCCESS;
}

int XMPI_Recv_init(
    void* buf, int count, XMPI_Datatype datatype, int source, int tag, XMPI_Comm comm,
    XMPI_Request* request) {
    count_call(xmpi::profile::Call::recv_init);
    *request = xmpi::detail::make_persistent_recv(
        *comm, buf, static_cast<std::size_t>(count), *datatype, source, tag);
    return XMPI_SUCCESS;
}

int XMPI_Bcast_init(
    void* buffer, int count, XMPI_Datatype datatype, int root, XMPI_Comm comm,
    XMPI_Request* request) {
    count_call(xmpi::profile::Call::bcast_init);
    *request = xmpi::detail::make_persistent_bcast(
        *comm, buffer, static_cast<std::size_t>(count), *datatype, root);
    return XMPI_SUCCESS;
}

int XMPI_Allreduce_init(
    void const* sendbuf, void* recvbuf, int count, XMPI_Datatype datatype, XMPI_Op op,
    XMPI_Comm comm, XMPI_Request* request) {
    count_call(xmpi::profile::Call::allreduce_init);
    *request = xmpi::detail::make_persistent_allreduce(
        *comm, sendbuf, recvbuf, static_cast<std::size_t>(count), *datatype, *op);
    return XMPI_SUCCESS;
}

int XMPI_Alltoall_init(
    void const* sendbuf, int sendcount, XMPI_Datatype sendtype, void* recvbuf, int recvcount,
    XMPI_Datatype recvtype, XMPI_Comm comm, XMPI_Request* request) {
    count_call(xmpi::profile::Call::alltoall_init);
    *request = xmpi::detail::make_persistent_alltoall(
        *comm, sendbuf, static_cast<std::size_t>(sendcount), *sendtype, recvbuf,
        static_cast<std::size_t>(recvcount), *recvtype);
    return XMPI_SUCCESS;
}

int XMPI_Barrier_init(XMPI_Comm comm, XMPI_Request* request) {
    count_call(xmpi::profile::Call::barrier_init);
    *request = xmpi::detail::make_persistent_barrier(*comm);
    return XMPI_SUCCESS;
}

int XMPI_Psend_init(
    void const* buf, int partitions, int count, XMPI_Datatype datatype, int dest, int tag,
    XMPI_Comm comm, XMPI_Request* request) {
    count_call(xmpi::profile::Call::psend_init);
    if (partitions <= 0 || count < 0) {
        return XMPI_ERR_ARG;
    }
    *request = new xmpi::detail::PartitionedSendRequest(
        comm, partitions, static_cast<std::size_t>(count), datatype, buf, dest, tag);
    return XMPI_SUCCESS;
}

int XMPI_Precv_init(
    void* buf, int partitions, int count, XMPI_Datatype datatype, int source, int tag,
    XMPI_Comm comm, XMPI_Request* request) {
    count_call(xmpi::profile::Call::precv_init);
    if (partitions <= 0 || count < 0) {
        return XMPI_ERR_ARG;
    }
    *request = new xmpi::detail::PartitionedRecvRequest(
        comm, partitions, static_cast<std::size_t>(count), datatype, buf, source, tag);
    return XMPI_SUCCESS;
}

int XMPI_Pready(int partition, XMPI_Request request) {
    count_call(xmpi::profile::Call::pready);
    auto* psend = dynamic_cast<xmpi::detail::PartitionedSendRequest*>(request);
    if (psend == nullptr) {
        return XMPI_ERR_REQUEST;
    }
    return psend->pready(partition);
}

int XMPI_Parrived(XMPI_Request request, int partition, int* flag) {
    count_call(xmpi::profile::Call::parrived);
    auto* precv = dynamic_cast<xmpi::detail::PartitionedRecvRequest*>(request);
    if (precv == nullptr) {
        return XMPI_ERR_REQUEST;
    }
    return precv->parrived(partition, flag);
}
/// @}

/// @name Collectives
/// @{
int XMPI_Barrier(XMPI_Comm comm) {
    count_call(xmpi::profile::Call::barrier);
    return xmpi::detail::coll_barrier(*comm);
}

int XMPI_Ibarrier(XMPI_Comm comm, XMPI_Request* request) {
    count_call(xmpi::profile::Call::ibarrier);
    *request = xmpi::detail::coll_ibarrier(*comm);
    return XMPI_SUCCESS;
}

int XMPI_Bcast(void* buffer, int count_, XMPI_Datatype datatype, int root, XMPI_Comm comm) {
    count_call(xmpi::profile::Call::bcast);
    return xmpi::detail::coll_bcast(
        *comm, buffer, static_cast<std::size_t>(count_), *datatype, root);
}

int XMPI_Gather(
    void const* sendbuf, int sendcount, XMPI_Datatype sendtype, void* recvbuf, int recvcount,
    XMPI_Datatype recvtype, int root, XMPI_Comm comm) {
    count_call(xmpi::profile::Call::gather);
    return xmpi::detail::coll_gather(
        *comm, sendbuf, static_cast<std::size_t>(sendcount),
        sendbuf == XMPI_IN_PLACE ? *recvtype : *sendtype, recvbuf,
        static_cast<std::size_t>(recvcount), *recvtype, root);
}

int XMPI_Gatherv(
    void const* sendbuf, int sendcount, XMPI_Datatype sendtype, void* recvbuf,
    int const* recvcounts, int const* displs, XMPI_Datatype recvtype, int root, XMPI_Comm comm) {
    count_call(xmpi::profile::Call::gatherv);
    return xmpi::detail::coll_gatherv(
        *comm, sendbuf, static_cast<std::size_t>(sendcount),
        sendbuf == XMPI_IN_PLACE ? *recvtype : *sendtype, recvbuf, recvcounts, displs, *recvtype,
        root);
}

int XMPI_Scatter(
    void const* sendbuf, int sendcount, XMPI_Datatype sendtype, void* recvbuf, int recvcount,
    XMPI_Datatype recvtype, int root, XMPI_Comm comm) {
    count_call(xmpi::profile::Call::scatter);
    return xmpi::detail::coll_scatter(
        *comm, sendbuf, static_cast<std::size_t>(sendcount), *sendtype, recvbuf,
        static_cast<std::size_t>(recvcount), recvbuf == XMPI_IN_PLACE ? *sendtype : *recvtype,
        root);
}

int XMPI_Scatterv(
    void const* sendbuf, int const* sendcounts, int const* displs, XMPI_Datatype sendtype,
    void* recvbuf, int recvcount, XMPI_Datatype recvtype, int root, XMPI_Comm comm) {
    count_call(xmpi::profile::Call::scatterv);
    return xmpi::detail::coll_scatterv(
        *comm, sendbuf, sendcounts, displs, *sendtype, recvbuf,
        static_cast<std::size_t>(recvcount), recvbuf == XMPI_IN_PLACE ? *sendtype : *recvtype,
        root);
}

int XMPI_Allgather(
    void const* sendbuf, int sendcount, XMPI_Datatype sendtype, void* recvbuf, int recvcount,
    XMPI_Datatype recvtype, XMPI_Comm comm) {
    count_call(xmpi::profile::Call::allgather);
    return xmpi::detail::coll_allgather(
        *comm, sendbuf, static_cast<std::size_t>(sendcount),
        sendbuf == XMPI_IN_PLACE ? *recvtype : *sendtype, recvbuf,
        static_cast<std::size_t>(recvcount), *recvtype);
}

int XMPI_Allgatherv(
    void const* sendbuf, int sendcount, XMPI_Datatype sendtype, void* recvbuf,
    int const* recvcounts, int const* displs, XMPI_Datatype recvtype, XMPI_Comm comm) {
    count_call(xmpi::profile::Call::allgatherv);
    return xmpi::detail::coll_allgatherv(
        *comm, sendbuf, static_cast<std::size_t>(sendcount),
        sendbuf == XMPI_IN_PLACE ? *recvtype : *sendtype, recvbuf, recvcounts, displs, *recvtype);
}

int XMPI_Alltoall(
    void const* sendbuf, int sendcount, XMPI_Datatype sendtype, void* recvbuf, int recvcount,
    XMPI_Datatype recvtype, XMPI_Comm comm) {
    count_call(xmpi::profile::Call::alltoall);
    return xmpi::detail::coll_alltoall(
        *comm, sendbuf, static_cast<std::size_t>(sendcount),
        sendbuf == XMPI_IN_PLACE ? *recvtype : *sendtype, recvbuf,
        static_cast<std::size_t>(recvcount), *recvtype);
}

int XMPI_Alltoallv(
    void const* sendbuf, int const* sendcounts, int const* sdispls, XMPI_Datatype sendtype,
    void* recvbuf, int const* recvcounts, int const* rdispls, XMPI_Datatype recvtype,
    XMPI_Comm comm) {
    count_call(xmpi::profile::Call::alltoallv);
    return xmpi::detail::coll_alltoallv(
        *comm, sendbuf, sendcounts, sdispls, sendbuf == XMPI_IN_PLACE ? *recvtype : *sendtype,
        recvbuf, recvcounts, rdispls, *recvtype);
}

int XMPI_Alltoallw(
    void const* sendbuf, int const* sendcounts, int const* sdispls,
    XMPI_Datatype const* sendtypes, void* recvbuf, int const* recvcounts, int const* rdispls,
    XMPI_Datatype const* recvtypes, XMPI_Comm comm) {
    count_call(xmpi::profile::Call::alltoallw);
    return xmpi::detail::coll_alltoallw(
        *comm, sendbuf, sendcounts, sdispls,
        reinterpret_cast<xmpi::Datatype const* const*>(sendtypes), recvbuf, recvcounts, rdispls,
        reinterpret_cast<xmpi::Datatype const* const*>(recvtypes));
}

int XMPI_Ibcast(
    void* buffer, int count_, XMPI_Datatype datatype, int root, XMPI_Comm comm,
    XMPI_Request* request) {
    count_call(xmpi::profile::Call::ibcast);
    // The collective runs as a task on the shared progress engine, on a
    // dedicated matching channel (nbc context + per-initiation sequence tag)
    // and under the initiating rank's context, so matching and profiling
    // attribute correctly no matter which thread executes it.
    xmpi::detail::CollChannel const channel{comm->nbc_context(), comm->next_nbc_sequence()};
    *request = xmpi::progress::detail::submit("ibcast", comm, [=] {
        return xmpi::detail::coll_bcast_on(
            *comm, channel, buffer, static_cast<std::size_t>(count_), *datatype, root);
    });
    return XMPI_SUCCESS;
}

int XMPI_Iallreduce(
    void const* sendbuf, void* recvbuf, int count_, XMPI_Datatype datatype, XMPI_Op op,
    XMPI_Comm comm, XMPI_Request* request) {
    count_call(xmpi::profile::Call::iallreduce);
    xmpi::detail::CollChannel const channel{comm->nbc_context(), comm->next_nbc_sequence()};
    *request = xmpi::progress::detail::submit("iallreduce", comm, [=] {
        return xmpi::detail::coll_allreduce_on(
            *comm, channel, sendbuf, recvbuf, static_cast<std::size_t>(count_), *datatype, *op);
    });
    return XMPI_SUCCESS;
}

int XMPI_Ialltoallv(
    void const* sendbuf, int const* sendcounts, int const* sdispls, XMPI_Datatype sendtype,
    void* recvbuf, int const* recvcounts, int const* rdispls, XMPI_Datatype recvtype,
    XMPI_Comm comm, XMPI_Request* request) {
    count_call(xmpi::profile::Call::ialltoallv);
    xmpi::detail::CollChannel const channel{comm->nbc_context(), comm->next_nbc_sequence()};
    *request = xmpi::progress::detail::submit("ialltoallv", comm, [=] {
        return xmpi::detail::coll_alltoallv_on(
            *comm, channel, sendbuf, sendcounts, sdispls, *sendtype, recvbuf, recvcounts,
            rdispls, *recvtype);
    });
    return XMPI_SUCCESS;
}

int XMPI_Reduce(
    void const* sendbuf, void* recvbuf, int count_, XMPI_Datatype datatype, XMPI_Op op, int root,
    XMPI_Comm comm) {
    count_call(xmpi::profile::Call::reduce);
    return xmpi::detail::coll_reduce(
        *comm, sendbuf, recvbuf, static_cast<std::size_t>(count_), *datatype, *op, root);
}

int XMPI_Allreduce(
    void const* sendbuf, void* recvbuf, int count_, XMPI_Datatype datatype, XMPI_Op op,
    XMPI_Comm comm) {
    count_call(xmpi::profile::Call::allreduce);
    return xmpi::detail::coll_allreduce(
        *comm, sendbuf, recvbuf, static_cast<std::size_t>(count_), *datatype, *op);
}

int XMPI_Reduce_scatter_block(
    void const* sendbuf, void* recvbuf, int recvcount, XMPI_Datatype datatype, XMPI_Op op,
    XMPI_Comm comm) {
    count_call(xmpi::profile::Call::reduce_scatter_block);
    return xmpi::detail::coll_reduce_scatter_block(
        *comm, sendbuf, recvbuf, static_cast<std::size_t>(recvcount), *datatype, *op);
}

int XMPI_Scan(
    void const* sendbuf, void* recvbuf, int count_, XMPI_Datatype datatype, XMPI_Op op,
    XMPI_Comm comm) {
    count_call(xmpi::profile::Call::scan);
    return xmpi::detail::coll_scan(
        *comm, sendbuf, recvbuf, static_cast<std::size_t>(count_), *datatype, *op, false);
}

int XMPI_Exscan(
    void const* sendbuf, void* recvbuf, int count_, XMPI_Datatype datatype, XMPI_Op op,
    XMPI_Comm comm) {
    count_call(xmpi::profile::Call::exscan);
    return xmpi::detail::coll_scan(
        *comm, sendbuf, recvbuf, static_cast<std::size_t>(count_), *datatype, *op, true);
}
/// @}

/// @name Datatypes
/// @{
int XMPI_Type_contiguous(int count_, XMPI_Datatype oldtype, XMPI_Datatype* newtype) {
    *newtype = xmpi::Datatype::contiguous(count_, *oldtype);
    return XMPI_SUCCESS;
}

int XMPI_Type_vector(
    int count_, int blocklength, int stride, XMPI_Datatype oldtype, XMPI_Datatype* newtype) {
    *newtype = xmpi::Datatype::vector(count_, blocklength, stride, *oldtype);
    return XMPI_SUCCESS;
}

int XMPI_Type_indexed(
    int count_, int const* blocklengths, int const* displacements, XMPI_Datatype oldtype,
    XMPI_Datatype* newtype) {
    *newtype = xmpi::Datatype::indexed(count_, blocklengths, displacements, *oldtype);
    return XMPI_SUCCESS;
}

int XMPI_Type_create_struct(
    int count_, int const* blocklengths, XMPI_Aint const* displacements,
    XMPI_Datatype const* types, XMPI_Datatype* newtype) {
    *newtype = xmpi::Datatype::create_struct(
        count_, blocklengths, displacements, const_cast<xmpi::Datatype* const*>(types));
    return XMPI_SUCCESS;
}

int XMPI_Type_create_resized(
    XMPI_Datatype oldtype, XMPI_Aint lb, XMPI_Aint extent, XMPI_Datatype* newtype) {
    *newtype = xmpi::Datatype::create_resized(*oldtype, lb, extent);
    return XMPI_SUCCESS;
}

int XMPI_Type_commit(XMPI_Datatype* datatype) {
    (*datatype)->commit();
    return XMPI_SUCCESS;
}

int XMPI_Type_free(XMPI_Datatype* datatype) {
    (*datatype)->release();
    *datatype = XMPI_DATATYPE_NULL;
    return XMPI_SUCCESS;
}

int XMPI_Type_size(XMPI_Datatype datatype, int* size) {
    *size = static_cast<int>(datatype->size());
    return XMPI_SUCCESS;
}

int XMPI_Type_get_extent(XMPI_Datatype datatype, XMPI_Aint* lb, XMPI_Aint* extent) {
    *lb = datatype->lower_bound();
    *extent = datatype->extent();
    return XMPI_SUCCESS;
}
/// @}

/// @name Ops
/// @{
int XMPI_Op_create(xmpi::UserFunction function, int commute, XMPI_Op* op) {
    *op = new xmpi::Op(function, commute != 0);
    return XMPI_SUCCESS;
}

int XMPI_Op_free(XMPI_Op* op) {
    if ((*op)->is_builtin()) {
        return XMPI_ERR_OP;
    }
    delete *op;
    *op = XMPI_OP_NULL;
    return XMPI_SUCCESS;
}
/// @}

/// @name Groups and communicators
/// @{
int XMPI_Comm_group(XMPI_Comm comm, XMPI_Group* group) {
    *group = new xmpi::Group(comm->members());
    return XMPI_SUCCESS;
}

int XMPI_Group_size(XMPI_Group group, int* size) {
    *size = group->size();
    return XMPI_SUCCESS;
}

int XMPI_Group_rank(XMPI_Group group, int* rank) {
    *rank = group->rank_of(xmpi::detail::current_world_rank());
    return XMPI_SUCCESS;
}

int XMPI_Group_incl(XMPI_Group group, int n, int const* ranks, XMPI_Group* newgroup) {
    *newgroup = group->incl(std::vector<int>(ranks, ranks + n));
    return XMPI_SUCCESS;
}

int XMPI_Group_excl(XMPI_Group group, int n, int const* ranks, XMPI_Group* newgroup) {
    *newgroup = group->excl(std::vector<int>(ranks, ranks + n));
    return XMPI_SUCCESS;
}

int XMPI_Group_union(XMPI_Group group1, XMPI_Group group2, XMPI_Group* newgroup) {
    *newgroup = group1->union_with(*group2);
    return XMPI_SUCCESS;
}

int XMPI_Group_intersection(XMPI_Group group1, XMPI_Group group2, XMPI_Group* newgroup) {
    *newgroup = group1->intersection_with(*group2);
    return XMPI_SUCCESS;
}

int XMPI_Group_difference(XMPI_Group group1, XMPI_Group group2, XMPI_Group* newgroup) {
    *newgroup = group1->difference_with(*group2);
    return XMPI_SUCCESS;
}

int XMPI_Group_translate_ranks(
    XMPI_Group group1, int n, int const* ranks1, XMPI_Group group2, int* ranks2) {
    for (int i = 0; i < n; ++i) {
        ranks2[i] = group2->rank_of(group1->world_ranks()[static_cast<std::size_t>(ranks1[i])]);
    }
    return XMPI_SUCCESS;
}

int XMPI_Group_free(XMPI_Group* group) {
    (*group)->release();
    *group = XMPI_GROUP_NULL;
    return XMPI_SUCCESS;
}

int XMPI_Comm_dup(XMPI_Comm comm, XMPI_Comm* newcomm) {
    count_call(xmpi::profile::Call::comm_dup);
    return xmpi::detail::comm_dup(*comm, newcomm);
}

int XMPI_Comm_split(XMPI_Comm comm, int color, int key, XMPI_Comm* newcomm) {
    count_call(xmpi::profile::Call::comm_split);
    return xmpi::detail::comm_split(*comm, color, key, newcomm);
}

int XMPI_Comm_create(XMPI_Comm comm, XMPI_Group group, XMPI_Comm* newcomm) {
    count_call(xmpi::profile::Call::comm_create);
    return xmpi::detail::comm_create(*comm, *group, newcomm);
}

int XMPI_Comm_free(XMPI_Comm* comm) {
    if (*comm == XMPI_COMM_NULL || *comm == (*comm)->world().world_comm()) {
        return XMPI_ERR_COMM;
    }
    (*comm)->release();
    *comm = XMPI_COMM_NULL;
    return XMPI_SUCCESS;
}
/// @}

/// @name Topologies
/// @{
int XMPI_Dist_graph_create_adjacent(
    XMPI_Comm comm_old, int indegree, int const* sources, int const* /*sourceweights*/,
    int outdegree, int const* destinations, int const* /*destweights*/, int /*reorder*/,
    XMPI_Comm* comm_dist_graph) {
    count_call(xmpi::profile::Call::dist_graph_create_adjacent);
    return xmpi::detail::dist_graph_create_adjacent(
        *comm_old, indegree, sources, outdegree, destinations, comm_dist_graph);
}

int XMPI_Dist_graph_neighbors_count(XMPI_Comm comm, int* indegree, int* outdegree, int* weighted) {
    if (!comm->has_topology()) {
        return XMPI_ERR_TOPOLOGY;
    }
    *indegree = static_cast<int>(comm->topology().sources.size());
    *outdegree = static_cast<int>(comm->topology().destinations.size());
    *weighted = 0;
    return XMPI_SUCCESS;
}

int XMPI_Neighbor_alltoall(
    void const* sendbuf, int sendcount, XMPI_Datatype sendtype, void* recvbuf, int recvcount,
    XMPI_Datatype recvtype, XMPI_Comm comm) {
    count_call(xmpi::profile::Call::neighbor_alltoall);
    if (!comm->has_topology()) {
        return XMPI_ERR_TOPOLOGY;
    }
    auto const& topology = comm->topology();
    std::vector<int> sendcounts(topology.destinations.size(), sendcount);
    std::vector<int> recvcounts(topology.sources.size(), recvcount);
    std::vector<int> sdispls(topology.destinations.size());
    std::vector<int> rdispls(topology.sources.size());
    for (std::size_t i = 0; i < sdispls.size(); ++i) {
        sdispls[i] = static_cast<int>(i) * sendcount;
    }
    for (std::size_t i = 0; i < rdispls.size(); ++i) {
        rdispls[i] = static_cast<int>(i) * recvcount;
    }
    return xmpi::detail::coll_neighbor_alltoallv(
        *comm, sendbuf, sendcounts.data(), sdispls.data(), *sendtype, recvbuf, recvcounts.data(),
        rdispls.data(), *recvtype);
}

int XMPI_Neighbor_alltoallv(
    void const* sendbuf, int const* sendcounts, int const* sdispls, XMPI_Datatype sendtype,
    void* recvbuf, int const* recvcounts, int const* rdispls, XMPI_Datatype recvtype,
    XMPI_Comm comm) {
    count_call(xmpi::profile::Call::neighbor_alltoallv);
    return xmpi::detail::coll_neighbor_alltoallv(
        *comm, sendbuf, sendcounts, sdispls, *sendtype, recvbuf, recvcounts, rdispls, *recvtype);
}
/// @}

/// @name ULFM
/// @{
int XMPI_Comm_revoke(XMPI_Comm comm) {
    return xmpi::detail::ulfm_revoke(*comm);
}

int XMPI_Comm_is_revoked(XMPI_Comm comm, int* flag) {
    *flag = comm->revoked() ? 1 : 0;
    return XMPI_SUCCESS;
}

int XMPI_Comm_shrink(XMPI_Comm comm, XMPI_Comm* newcomm) {
    count_call(xmpi::profile::Call::comm_shrink);
    return xmpi::detail::ulfm_shrink(*comm, newcomm);
}

int XMPI_Comm_agree(XMPI_Comm comm, int* flag) {
    count_call(xmpi::profile::Call::comm_agree);
    return xmpi::detail::ulfm_agree(*comm, flag);
}
/// @}

/// @name Elastic worlds (dynamic membership)
///
/// session_leave / epoch_sync are profiled inside the World entry points
/// (not via count_call here) so chaos windows also cover direct World-level
/// use; Membership_* are pure reads.
/// @{
int XMPI_Session_leave() {
    xmpi::detail::current_world().leave_session();
    return XMPI_SUCCESS;
}

int XMPI_Epoch_sync(XMPI_Comm* newcomm) {
    *newcomm = xmpi::detail::current_world().epoch_sync();
    return XMPI_SUCCESS;
}

int XMPI_Membership_epoch(XMPI_Comm comm, std::uint64_t* epoch) {
    if (comm == XMPI_COMM_NULL) {
        return XMPI_ERR_COMM;
    }
    *epoch = comm->world().membership_epoch();
    return XMPI_SUCCESS;
}

int XMPI_Membership_changed(XMPI_Comm comm, int* flag) {
    if (comm == XMPI_COMM_NULL) {
        return XMPI_ERR_COMM;
    }
    *flag = (comm->epoch_stale() || comm->world().membership_pending()) ? 1 : 0;
    return XMPI_SUCCESS;
}
/// @}

/// @name One-sided communication (RMA)
/// @{
namespace {

/// Shared handle/argument validation of the three access functions.
int check_rma_args(XMPI_Datatype origin_datatype, XMPI_Datatype target_datatype, int origin_count,
                   int target_count, XMPI_Win win) {
    if (win == XMPI_WIN_NULL) {
        return XMPI_ERR_WIN;
    }
    if (origin_count < 0 || target_count < 0) {
        return XMPI_ERR_COUNT;
    }
    if (origin_datatype == XMPI_DATATYPE_NULL || target_datatype == XMPI_DATATYPE_NULL) {
        return XMPI_ERR_TYPE;
    }
    return XMPI_SUCCESS;
}

} // namespace

int XMPI_Win_create(void* base, XMPI_Aint size, int disp_unit, XMPI_Comm comm, XMPI_Win* win) {
    count_call(xmpi::profile::Call::win_create);
    if (comm == XMPI_COMM_NULL) {
        return XMPI_ERR_COMM;
    }
    if (size < 0) {
        return XMPI_ERR_ARG;
    }
    if (disp_unit <= 0) {
        return XMPI_ERR_DISP;
    }
    if (base == nullptr && size > 0) {
        return XMPI_ERR_BUFFER;
    }
    return xmpi::detail::win_create(base, static_cast<std::size_t>(size), disp_unit, *comm, win);
}

int XMPI_Win_allocate(
    XMPI_Aint size, int disp_unit, XMPI_Comm comm, void* baseptr, XMPI_Win* win) {
    count_call(xmpi::profile::Call::win_allocate);
    if (comm == XMPI_COMM_NULL) {
        return XMPI_ERR_COMM;
    }
    if (size < 0) {
        return XMPI_ERR_ARG;
    }
    if (disp_unit <= 0) {
        return XMPI_ERR_DISP;
    }
    if (baseptr == nullptr || win == nullptr) {
        return XMPI_ERR_ARG;
    }
    return xmpi::detail::win_allocate(
        static_cast<std::size_t>(size), disp_unit, *comm, static_cast<void**>(baseptr), win);
}

int XMPI_Win_free(XMPI_Win* win) {
    count_call(xmpi::profile::Call::win_free);
    if (win == nullptr || *win == XMPI_WIN_NULL) {
        return XMPI_ERR_WIN;
    }
    int const err = xmpi::detail::win_free(**win);
    if (err != XMPI_ERR_RMA_SYNC) {
        *win = XMPI_WIN_NULL; // freed (even if the barrier reported a failure)
    }
    return err;
}

int XMPI_Put(
    void const* origin_addr, int origin_count, XMPI_Datatype origin_datatype, int target_rank,
    XMPI_Aint target_disp, int target_count, XMPI_Datatype target_datatype, XMPI_Win win) {
    count_call(xmpi::profile::Call::put);
    if (int const err =
            check_rma_args(origin_datatype, target_datatype, origin_count, target_count, win);
        err != XMPI_SUCCESS) {
        return err;
    }
    if (target_rank == XMPI_PROC_NULL) {
        return XMPI_SUCCESS;
    }
    return win->put(
        origin_addr, static_cast<std::size_t>(origin_count), *origin_datatype, target_rank,
        target_disp, static_cast<std::size_t>(target_count), *target_datatype);
}

int XMPI_Get(
    void* origin_addr, int origin_count, XMPI_Datatype origin_datatype, int target_rank,
    XMPI_Aint target_disp, int target_count, XMPI_Datatype target_datatype, XMPI_Win win) {
    count_call(xmpi::profile::Call::get);
    if (int const err =
            check_rma_args(origin_datatype, target_datatype, origin_count, target_count, win);
        err != XMPI_SUCCESS) {
        return err;
    }
    if (target_rank == XMPI_PROC_NULL) {
        return XMPI_SUCCESS;
    }
    return win->get(
        origin_addr, static_cast<std::size_t>(origin_count), *origin_datatype, target_rank,
        target_disp, static_cast<std::size_t>(target_count), *target_datatype);
}

int XMPI_Accumulate(
    void const* origin_addr, int origin_count, XMPI_Datatype origin_datatype, int target_rank,
    XMPI_Aint target_disp, int target_count, XMPI_Datatype target_datatype, XMPI_Op op,
    XMPI_Win win) {
    count_call(xmpi::profile::Call::accumulate);
    if (int const err =
            check_rma_args(origin_datatype, target_datatype, origin_count, target_count, win);
        err != XMPI_SUCCESS) {
        return err;
    }
    if (op == XMPI_OP_NULL) {
        return XMPI_ERR_OP;
    }
    if (target_rank == XMPI_PROC_NULL) {
        return XMPI_SUCCESS;
    }
    return win->accumulate(
        origin_addr, static_cast<std::size_t>(origin_count), *origin_datatype, target_rank,
        target_disp, static_cast<std::size_t>(target_count), *target_datatype, *op);
}

int XMPI_Fetch_and_op(
    void const* origin_addr, void* result_addr, XMPI_Datatype datatype, int target_rank,
    XMPI_Aint target_disp, XMPI_Op op, XMPI_Win win) {
    count_call(xmpi::profile::Call::fetch_and_op);
    if (int const err = check_rma_args(datatype, datatype, 1, 1, win); err != XMPI_SUCCESS) {
        return err;
    }
    if (op == XMPI_OP_NULL) {
        return XMPI_ERR_OP;
    }
    if (result_addr == nullptr) {
        return XMPI_ERR_BUFFER;
    }
    if (target_rank == XMPI_PROC_NULL) {
        return XMPI_SUCCESS;
    }
    return win->fetch_and_op(origin_addr, result_addr, *datatype, target_rank, target_disp, *op);
}

int XMPI_Compare_and_swap(
    void const* origin_addr, void const* compare_addr, void* result_addr, XMPI_Datatype datatype,
    int target_rank, XMPI_Aint target_disp, XMPI_Win win) {
    count_call(xmpi::profile::Call::compare_and_swap);
    if (int const err = check_rma_args(datatype, datatype, 1, 1, win); err != XMPI_SUCCESS) {
        return err;
    }
    if (origin_addr == nullptr || compare_addr == nullptr || result_addr == nullptr) {
        return XMPI_ERR_BUFFER;
    }
    if (target_rank == XMPI_PROC_NULL) {
        return XMPI_SUCCESS;
    }
    return win->compare_and_swap(
        origin_addr, compare_addr, result_addr, *datatype, target_rank, target_disp);
}

int XMPI_Win_fence(int /*assertion*/, XMPI_Win win) {
    count_call(xmpi::profile::Call::win_fence);
    if (win == XMPI_WIN_NULL) {
        return XMPI_ERR_WIN;
    }
    return win->fence();
}

int XMPI_Win_lock(int lock_type, int rank, int /*assertion*/, XMPI_Win win) {
    count_call(xmpi::profile::Call::win_lock);
    if (win == XMPI_WIN_NULL) {
        return XMPI_ERR_WIN;
    }
    return win->lock(lock_type, rank);
}

int XMPI_Win_unlock(int rank, XMPI_Win win) {
    count_call(xmpi::profile::Call::win_unlock);
    if (win == XMPI_WIN_NULL) {
        return XMPI_ERR_WIN;
    }
    return win->unlock(rank);
}
/// @}
