/// @file persistent.hpp
/// @brief Internal factories and classes of the persistent / partitioned
/// request family (XMPI_Send_init, XMPI_Psend_init, ...). Not installed;
/// xmpi-internal only. The lifecycle base class lives in xmpi/request.hpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>

#include "xmpi/comm.hpp"
#include "xmpi/datatype.hpp"
#include "xmpi/op.hpp"
#include "xmpi/request.hpp"
#include "xmpi/world.hpp"

namespace xmpi::detail {

/// @name Persistent point-to-point and collective factories. Each stores the
/// argument pack (and any derived shape: counts, displacements, payload
/// reservation) exactly once; every XMPI_Start replays the operation without
/// re-deriving anything.
/// @{
Request* make_persistent_send(
    Comm& comm, void const* buf, std::size_t count, Datatype const& type, int dest, int tag);
Request* make_persistent_recv(
    Comm& comm, void* buf, std::size_t count, Datatype const& type, int source, int tag);
Request* make_persistent_bcast(
    Comm& comm, void* buffer, std::size_t count, Datatype const& type, int root);
Request* make_persistent_allreduce(
    Comm& comm, void const* sendbuf, void* recvbuf, std::size_t count, Datatype const& type,
    Op const& op);
Request* make_persistent_alltoall(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, std::size_t recvcount, Datatype const& recvtype);
Request* make_persistent_barrier(Comm& comm);
/// @}

/// @brief Partitioned send (XMPI_Psend_init): the buffer is @c partitions
/// equal parts of @c part_count elements each. Producer threads mark
/// partitions ready via pready(); the LAST pready ships the whole buffer as
/// one message through the progress engine on behalf of the initiating rank,
/// so many producer threads compose into a single transport message.
class PartitionedSendRequest final : public PersistentRequest {
public:
    PartitionedSendRequest(
        Comm* comm, int partitions, std::size_t part_count, Datatype const* type,
        void const* buf, int dest, int tag);

    /// @brief Marks one partition ready. Callable from any thread once the
    /// request is started. XMPI_ERR_REQUEST when not started, XMPI_ERR_ARG
    /// on an out-of-range or already-ready partition.
    int pready(int partition);

    bool test(Status& status) override;
    [[nodiscard]] bool peek() override;
    void wait(Status& status) override;
    bool cancel() override { return false; }

protected:
    int do_start() override;

private:
    Comm* comm_;
    int partitions_;
    std::size_t part_count_;
    Datatype const* type_;
    void const* buf_;
    int dest_;
    int tag_;
    /// Initiating rank; the final pready may come from a producer thread
    /// with no rank identity, so the send task is attributed explicitly.
    RankContext ctx_;
    std::unique_ptr<std::atomic<bool>[]> ready_;
    std::atomic<int> ready_count_{0};
    std::atomic<bool> started_{false};
    std::mutex inner_mutex_; ///< guards inner_ (installed by a foreign thread)
};

/// @brief Partitioned receive (XMPI_Precv_init). Arrival granularity is the
/// whole message: parrived() reports all partitions together, without
/// consuming the completion (that stays with Wait/Test).
class PartitionedRecvRequest final : public PersistentRequest {
public:
    PartitionedRecvRequest(
        Comm* comm, int partitions, std::size_t part_count, Datatype const* type, void* buf,
        int source, int tag);

    int parrived(int partition, int* flag);

protected:
    int do_start() override;

private:
    Comm* comm_;
    int partitions_;
    std::size_t part_count_;
    Datatype const* type_;
    void* buf_;
    int source_;
    int tag_;
};

} // namespace xmpi::detail
