#include "transport.hpp"

namespace xmpi::detail {

int check_peer(Comm const& comm, int peer) {
    if (comm.revoked()) {
        return XMPI_ERR_REVOKED;
    }
    if (peer == ANY_SOURCE) {
        return comm.any_member_failed() ? XMPI_ERR_PROC_FAILED : XMPI_SUCCESS;
    }
    if (comm.world().is_failed(comm.world_rank_of(peer))) {
        return XMPI_ERR_PROC_FAILED;
    }
    return XMPI_SUCCESS;
}

int transport_send(
    Comm& comm, int dest, int tag, int context, void const* buf, std::size_t count,
    Datatype const& type, std::shared_ptr<SyncHandle> sync) {
    if (dest == PROC_NULL) {
        return XMPI_SUCCESS;
    }
    if (dest < 0 || dest >= comm.size()) {
        return XMPI_ERR_RANK;
    }
    if (int const err = check_peer(comm, dest); err != XMPI_SUCCESS) {
        return err;
    }

    std::size_t const bytes = type.packed_size(count);
    Envelope const env{context, comm.rank(), tag};

    World& world = comm.world();
    auto& counters = world.counters(current_world_rank());
    counters.messages_sent.fetch_add(1, std::memory_order_relaxed);
    counters.bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
    world.network_model().charge(bytes);

    Mailbox& mailbox = world.mailbox(comm.world_rank_of(dest));
    if (type.is_contiguous()) {
        // Contiguous fast path: the packed representation IS the user
        // buffer. The mailbox either unpacks straight into an already
        // posted receive (zero-copy rendezvous) or copies once into a
        // pooled payload — never pack + allocate.
        mailbox.deliver_bytes(
            env, static_cast<std::byte const*>(buf), bytes, std::move(sync), counters);
        return XMPI_SUCCESS;
    }

    Message message;
    message.env = env;
    message.payload = world.payload_pool().acquire(bytes, counters);
    type.pack(buf, count, message.payload.data());
    message.sync = std::move(sync);
    mailbox.deliver(std::move(message));
    return XMPI_SUCCESS;
}

namespace {

/// @brief Abort predicate for a waiting receive: stop if the communicator is
/// revoked or the (potential) sender has failed.
struct RecvAbort {
    Comm const* comm;
    int source;

    bool operator()() const {
        return check_peer(*comm, source) != XMPI_SUCCESS;
    }
};

/// @brief Thread-local cache of RecvTicket control blocks. Every receive
/// allocates one shared RecvTicket; recycling the (fixed-size) blocks keeps
/// malloc off the receive path. Blocks may be freed by a different thread
/// than the one that allocated them (the last reference to a ticket can be
/// dropped by the delivering rank); they then simply migrate to that
/// thread's cache.
struct TicketBlockCache {
    static constexpr std::size_t kMaxBlocks = 256;
    std::vector<void*> blocks;
    std::size_t block_size = 0;

    ~TicketBlockCache() {
        for (void* block: blocks) {
            ::operator delete(block);
        }
    }
};

TicketBlockCache& ticket_block_cache() {
    static thread_local TicketBlockCache cache;
    return cache;
}

template <typename T>
struct TicketAllocator {
    using value_type = T;

    TicketAllocator() = default;
    template <typename U>
    TicketAllocator(TicketAllocator<U> const&) {}

    T* allocate(std::size_t n) {
        auto& cache = ticket_block_cache();
        std::size_t const bytes = n * sizeof(T);
        if (!cache.blocks.empty() && cache.block_size == bytes) {
            T* block = static_cast<T*>(cache.blocks.back());
            cache.blocks.pop_back();
            return block;
        }
        return static_cast<T*>(::operator new(bytes));
    }

    void deallocate(T* block, std::size_t n) {
        auto& cache = ticket_block_cache();
        std::size_t const bytes = n * sizeof(T);
        if ((cache.block_size == 0 || cache.block_size == bytes)
            && cache.blocks.size() < TicketBlockCache::kMaxBlocks) {
            cache.block_size = bytes;
            cache.blocks.push_back(block);
            return;
        }
        ::operator delete(block);
    }

    template <typename U>
    bool operator==(TicketAllocator<U> const&) const {
        return true;
    }
};

std::shared_ptr<RecvTicket> make_ticket(
    Comm const& comm, int source, int tag, int context, void* buf, std::size_t count,
    Datatype const& type) {
    auto ticket = std::allocate_shared<RecvTicket>(TicketAllocator<RecvTicket>{});
    ticket->pattern = Envelope{context, source, tag};
    ticket->buffer = buf;
    ticket->type = &type;
    ticket->count = count;
    ticket->comm = &comm;
    return ticket;
}

} // namespace

int transport_recv(
    Comm& comm, int source, int tag, int context, void* buf, std::size_t count,
    Datatype const& type, Status* status) {
    if (source == PROC_NULL) {
        if (status != nullptr) {
            *status = Status{PROC_NULL, ANY_TAG, XMPI_SUCCESS, 0};
        }
        return XMPI_SUCCESS;
    }
    if (source != ANY_SOURCE && (source < 0 || source >= comm.size())) {
        return XMPI_ERR_RANK;
    }

    auto ticket = make_ticket(comm, source, tag, context, buf, count, type);

    Mailbox& mailbox = comm.world().mailbox(current_world_rank());
    if (!mailbox.post_or_match(ticket)) {
        if (!mailbox.await(ticket, RecvAbort{&comm, source})) {
            return check_peer(comm, source);
        }
    }
    if (status != nullptr) {
        *status = ticket->status;
    }
    return ticket->status.error;
}

int transport_irecv(
    Comm& comm, int source, int tag, int context, void* buf, std::size_t count,
    Datatype const& type, Request** request) {
    if (source == PROC_NULL) {
        *request = new CompletedRequest(Status{PROC_NULL, ANY_TAG, XMPI_SUCCESS, 0});
        return XMPI_SUCCESS;
    }
    // Validate here, exactly like the blocking receive: an unchecked source
    // would flow into RecvRequest::check_failed and index the member table
    // out of bounds.
    if (source != ANY_SOURCE && (source < 0 || source >= comm.size())) {
        return XMPI_ERR_RANK;
    }
    auto ticket = make_ticket(comm, source, tag, context, buf, count, type);

    Mailbox& mailbox = comm.world().mailbox(current_world_rank());
    mailbox.post_or_match(ticket);
    *request = new RecvRequest(std::move(ticket), &mailbox);
    return XMPI_SUCCESS;
}

int coll_send(
    Comm& comm, int dest, int tag, void const* buf, std::size_t count, Datatype const& type) {
    return transport_send(comm, dest, tag, comm.collective_context(), buf, count, type);
}

int coll_recv(
    Comm& comm, int source, int tag, void* buf, std::size_t count, Datatype const& type,
    Status* status) {
    return transport_recv(comm, source, tag, comm.collective_context(), buf, count, type, status);
}

int coll_sendrecv(
    Comm& comm, int dest, int send_tag, void const* sendbuf, std::size_t sendcount,
    Datatype const& sendtype, int source, int recv_tag, void* recvbuf, std::size_t recvcount,
    Datatype const& recvtype) {
    // Eager sends complete locally, so send-then-recv cannot deadlock.
    if (int const err = coll_send(comm, dest, send_tag, sendbuf, sendcount, sendtype);
        err != XMPI_SUCCESS) {
        return err;
    }
    return coll_recv(comm, source, recv_tag, recvbuf, recvcount, recvtype);
}

int check_collective(Comm const& comm) {
    if (comm.revoked()) {
        return XMPI_ERR_REVOKED;
    }
    if (comm.any_member_failed()) {
        return XMPI_ERR_PROC_FAILED;
    }
    return XMPI_SUCCESS;
}

} // namespace xmpi::detail
