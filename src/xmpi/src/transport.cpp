#include "transport.hpp"

#include <cstring>
#include <thread>

#include "xmpi/chaos.hpp"
#include "xmpi/tuning.hpp"

namespace xmpi::detail {

int check_peer(Comm const& comm, int peer) {
    // Most specific error first: a superseded elastic epoch is reported as
    // such even though the transition also revoked the communicator.
    if (comm.epoch_stale()) {
        return XMPI_ERR_EPOCH;
    }
    if (comm.revoked()) {
        return XMPI_ERR_REVOKED;
    }
    if (peer == ANY_SOURCE) {
        return comm.any_member_failed() ? XMPI_ERR_PROC_FAILED : XMPI_SUCCESS;
    }
    if (comm.world().is_failed(comm.world_rank_of(peer))) {
        return XMPI_ERR_PROC_FAILED;
    }
    return XMPI_SUCCESS;
}

namespace {

/// @brief Coalescing path for small contiguous sends: ride the open batch
/// slot if possible, else open a fresh batch. Falls back to the locked
/// bypass when the ring is full.
int send_small(
    World& world, Mailbox& dst_box, PeerRing& ring, Envelope const& env,
    std::byte const* data, std::size_t bytes, profile::RankCounters& counters) {
    if (ring.try_append(env, data, static_cast<std::uint32_t>(bytes))) {
        // The batch slot we appended to is still unconsumed, so its own
        // publish notification is still pending at the receiver — no second
        // wake is needed (see the arrival accounting in mailbox.hpp).
        counters.coalesced_sends.fetch_add(1, std::memory_order_relaxed);
        counters.fastpath_sends.fetch_add(1, std::memory_order_relaxed);
        return XMPI_SUCCESS;
    }

    auto& pool = world.payload_pool();
    auto block = std::make_shared<PooledBlock>(
        &pool, pool.acquire(tuning::transport().coalesce_watermark, counters));
    BatchRecordHeader const header{
        env.context, env.source, env.tag, static_cast<std::uint32_t>(bytes)};
    std::memcpy(block->bytes.data(), &header, sizeof(header));
    if (bytes != 0) {
        std::memcpy(block->bytes.data() + sizeof(header), data, bytes);
    }

    RingEntry entry;
    entry.kind = RingEntry::Kind::batch;
    entry.block = block;
    if (ring.try_push(std::move(entry), batch_record_bytes(bytes))) {
        counters.ring_enqueues.fetch_add(1, std::memory_order_relaxed);
        counters.fastpath_sends.fetch_add(1, std::memory_order_relaxed);
        dst_box.notify_push();
        return XMPI_SUCCESS;
    }

    // Ring full: the receiver is far behind. Take its mailbox lock once,
    // drain our ring in order, and deliver directly.
    counters.ring_full_fallbacks.fetch_add(1, std::memory_order_relaxed);
    Message message;
    message.env = env;
    message.payload = PayloadRef{
        std::move(block), static_cast<std::uint32_t>(sizeof(header)),
        static_cast<std::uint32_t>(bytes)};
    dst_box.deliver_overflow(ring, std::move(message));
    return XMPI_SUCCESS;
}

/// @brief Receiver-pulled rendezvous for large contiguous point-to-point
/// sends: publish a descriptor, then wait until the receiver has copied the
/// payload straight out of the user buffer (zero-copy on both sides), with
/// an eager-copy fallback after the tuned deadline so eager-ordered
/// programs cannot deadlock. Restricted to the pt2pt context by the caller:
/// collective algorithms rely on eager local completion of their sends.
int send_rendezvous(
    Comm& comm, World& world, Mailbox& dst_box, PeerRing& ring, Envelope const& env,
    int dest, int src_world, std::byte const* data, std::size_t bytes,
    std::shared_ptr<SyncHandle> sync, profile::RankCounters& counters) {
    auto rdv = std::make_shared<RendezvousState>();
    rdv->src_data = data;
    rdv->size = bytes;
    Mailbox& my_box = world.mailbox(src_world);
    rdv->sender_box = &my_box;

    RingEntry entry;
    entry.kind = RingEntry::Kind::rendezvous;
    entry.env = env;
    entry.bytes = bytes;
    entry.sync = std::move(sync);
    entry.rendezvous = rdv;
    if (ring.try_push(std::move(entry), 0)) {
        counters.ring_enqueues.fetch_add(1, std::memory_order_relaxed);
        counters.fastpath_sends.fetch_add(1, std::memory_order_relaxed);
        dst_box.notify_push();
    } else {
        counters.ring_full_fallbacks.fetch_add(1, std::memory_order_relaxed);
        Message message;
        message.env = env;
        message.sync = std::move(entry.sync);
        message.rendezvous = rdv;
        dst_box.deliver_overflow(ring, std::move(message));
    }

    // If this rank dies before the descriptor is resolved, mark it
    // abandoned so the receiver fails with XMPI_ERR_PROC_FAILED instead of
    // waiting for bytes that will never arrive. If the receiver is already
    // mid-copy (claimed), wait it out: the user buffer outlives this frame,
    // and the unwind must not free stack below a buffer still being read.
    struct AbandonGuard {
        RendezvousState* rdv;
        ~AbandonGuard() {
            std::uint32_t expected = RendezvousState::published;
            if (!rdv->phase.compare_exchange_strong(
                    expected, RendezvousState::abandoned, std::memory_order_acq_rel)
                && expected == RendezvousState::claimed) {
                (void)rdv->await_leaving(RendezvousState::claimed);
            }
        }
    } guard{rdv.get()};

    chaos::hit_hook(world, src_world, chaos::Hook::ft_rendezvous_publish);

    // Wait for the receiver's claim: spin briefly (same budget as receives),
    // then park on our own mailbox — draining it while parked, so two ranks
    // exchanging large messages (posted-receive-first, like XMPI_Sendrecv)
    // both complete at full zero-copy speed instead of timing out.
    double const deadline = wtime() + 1e-6 * static_cast<double>(
                                tuning::transport().rendezvous_fallback_us);
    for (int i = tuning::spin_budget(); i > 0; --i) {
        if (rdv->phase.load(std::memory_order_acquire) != RendezvousState::published) {
            break;
        }
        spin_pause();
    }
    // Yield rung: on an oversubscribed machine this hands the core to the
    // receiver so its claim resolves in one scheduler pass instead of a
    // futex sleep/wake per transfer.
    for (int i = tuning::yield_budget(); i > 0; --i) {
        if (rdv->phase.load(std::memory_order_acquire) != RendezvousState::published) {
            break;
        }
        std::this_thread::yield();
    }
    while (true) {
        std::uint32_t phase = rdv->phase.load(std::memory_order_acquire);
        if (phase == RendezvousState::claimed) {
            phase = rdv->await_leaving(RendezvousState::claimed);
        }
        if (phase == RendezvousState::completed) {
            // The receiver pulled straight from the user buffer; count the
            // sender side of the zero-copy transfer (the receiver counted
            // its own side at the claim).
            counters.bytes_zero_copied.fetch_add(bytes, std::memory_order_relaxed);
            return XMPI_SUCCESS;
        }
        if (int const err = check_peer(comm, dest); err != XMPI_SUCCESS) {
            std::uint32_t expected = RendezvousState::published;
            if (rdv->phase.compare_exchange_strong(
                    expected, RendezvousState::abandoned, std::memory_order_acq_rel)) {
                return err;
            }
            continue; // a claim raced in: resolve it on the next iteration
        }
        if (wtime() >= deadline) {
            std::uint32_t expected = RendezvousState::published;
            if (rdv->phase.compare_exchange_strong(
                    expected, RendezvousState::eagering, std::memory_order_acq_rel)) {
                // No receiver showed up in time: restore plain eager
                // semantics by parking a copy in the descriptor. (For
                // synchronous-mode sends the caller still blocks on its
                // SyncHandle until the receiver matches the descriptor.)
                rdv->fallback.assign(data, data + bytes);
                rdv->phase.store(RendezvousState::eagered, std::memory_order_release);
                return XMPI_SUCCESS;
            }
            continue;
        }
        my_box.wait_signal(std::chrono::microseconds(100), [&] {
            return rdv->phase.load(std::memory_order_acquire)
                   != RendezvousState::published;
        });
    }
}

} // namespace

int transport_send(
    Comm& comm, int dest, int tag, int context, void const* buf, std::size_t count,
    Datatype const& type, std::shared_ptr<SyncHandle> sync,
    std::shared_ptr<PayloadSlot> const& reservation) {
    if (dest == PROC_NULL) {
        return XMPI_SUCCESS;
    }
    if (dest < 0 || dest >= comm.size()) {
        return XMPI_ERR_RANK;
    }
    if (int const err = check_peer(comm, dest); err != XMPI_SUCCESS) {
        return err;
    }

    std::size_t const bytes = type.packed_size(count);
    Envelope const env{context, comm.rank(), tag};

    World& world = comm.world();
    int const src_world = current_world_rank();
    int const dst_world = comm.world_rank_of(dest);
    auto& counters = world.counters(src_world);
    counters.messages_sent.fetch_add(1, std::memory_order_relaxed);
    counters.bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
    world.network_model().charge(bytes);

    Mailbox& dst_box = world.mailbox(dst_world);
    PeerRing& ring = world.rings().ring(src_world, dst_world);
    auto const& knobs = tuning::transport();

    if (type.is_contiguous()) {
        // Contiguous fast paths: the packed representation IS the user
        // buffer, so small messages memcpy once into a (shared, coalesced)
        // batch block, and large point-to-point messages skip even that via
        // the receiver-pulled rendezvous. Synchronous-mode sends carry a
        // SyncHandle per message and therefore never coalesce.
        if (bytes <= knobs.coalesce_max_bytes && sync == nullptr) {
            return send_small(
                world, dst_box, ring, env, static_cast<std::byte const*>(buf), bytes,
                counters);
        }
        if (bytes >= knobs.rendezvous_threshold && context == comm.pt2pt_context()) {
            return send_rendezvous(
                comm, world, dst_box, ring, env, dest, src_world,
                static_cast<std::byte const*>(buf), bytes, std::move(sync), counters);
        }
    }

    // Packed eager path: mid-size contiguous, non-contiguous datatypes, and
    // small synchronous-mode sends. One copy into a pooled payload, then a
    // lock-free publish like everything else. Persistent sends carry a
    // pre-pinned reservation whose buffer short-circuits the pool entirely.
    auto& pool = world.payload_pool();
    std::vector<std::byte> payload;
    std::shared_ptr<PayloadSlot> home;
    if (reservation != nullptr) {
        std::lock_guard lock(reservation->mutex);
        if (reservation->occupied && reservation->buffer.capacity() >= bytes) {
            payload = std::move(reservation->buffer);
            reservation->occupied = false;
            home = reservation;
        }
    }
    if (home != nullptr) {
        payload.resize(bytes);
        counters.reserved_payload_reuses.fetch_add(1, std::memory_order_relaxed);
    } else {
        payload = pool.acquire(bytes, counters);
    }
    RingEntry entry;
    entry.kind = RingEntry::Kind::message;
    entry.env = env;
    entry.bytes = bytes;
    entry.block = std::make_shared<PooledBlock>(&pool, std::move(payload), std::move(home));
    type.pack(buf, count, entry.block->bytes.data());
    entry.sync = std::move(sync);
    if (ring.try_push(std::move(entry), 0)) {
        counters.ring_enqueues.fetch_add(1, std::memory_order_relaxed);
        dst_box.notify_push();
        return XMPI_SUCCESS;
    }
    counters.ring_full_fallbacks.fetch_add(1, std::memory_order_relaxed);
    Message message;
    message.env = env;
    message.payload = PayloadRef{std::move(entry.block), 0, static_cast<std::uint32_t>(bytes)};
    message.sync = std::move(entry.sync);
    dst_box.deliver_overflow(ring, std::move(message));
    return XMPI_SUCCESS;
}

namespace {

/// @brief Abort predicate for a waiting receive: stop if the communicator is
/// revoked or the (potential) sender has failed.
struct RecvAbort {
    Comm const* comm;
    int source;

    bool operator()() const {
        return check_peer(*comm, source) != XMPI_SUCCESS;
    }
};

/// @brief Thread-local cache of RecvTicket control blocks. Every receive
/// allocates one shared RecvTicket; recycling the (fixed-size) blocks keeps
/// malloc off the receive path. Blocks may be freed by a different thread
/// than the one that allocated them (the last reference to a ticket can be
/// dropped by the delivering rank); they then simply migrate to that
/// thread's cache.
struct TicketBlockCache {
    static constexpr std::size_t kMaxBlocks = 256;
    std::vector<void*> blocks;
    std::size_t block_size = 0;

    ~TicketBlockCache() {
        for (void* block: blocks) {
            ::operator delete(block);
        }
    }
};

TicketBlockCache& ticket_block_cache() {
    static thread_local TicketBlockCache cache;
    return cache;
}

template <typename T>
struct TicketAllocator {
    using value_type = T;

    TicketAllocator() = default;
    template <typename U>
    TicketAllocator(TicketAllocator<U> const&) {}

    T* allocate(std::size_t n) {
        auto& cache = ticket_block_cache();
        std::size_t const bytes = n * sizeof(T);
        if (!cache.blocks.empty() && cache.block_size == bytes) {
            T* block = static_cast<T*>(cache.blocks.back());
            cache.blocks.pop_back();
            return block;
        }
        return static_cast<T*>(::operator new(bytes));
    }

    void deallocate(T* block, std::size_t n) {
        auto& cache = ticket_block_cache();
        std::size_t const bytes = n * sizeof(T);
        if ((cache.block_size == 0 || cache.block_size == bytes)
            && cache.blocks.size() < TicketBlockCache::kMaxBlocks) {
            cache.block_size = bytes;
            cache.blocks.push_back(block);
            return;
        }
        ::operator delete(block);
    }

    template <typename U>
    bool operator==(TicketAllocator<U> const&) const {
        return true;
    }
};

std::shared_ptr<RecvTicket> make_ticket(
    Comm const& comm, int source, int tag, int context, void* buf, std::size_t count,
    Datatype const& type) {
    auto ticket = std::allocate_shared<RecvTicket>(TicketAllocator<RecvTicket>{});
    ticket->pattern = Envelope{context, source, tag};
    ticket->buffer = buf;
    ticket->type = &type;
    ticket->count = count;
    ticket->comm = &comm;
    return ticket;
}

} // namespace

int transport_recv(
    Comm& comm, int source, int tag, int context, void* buf, std::size_t count,
    Datatype const& type, Status* status) {
    if (source == PROC_NULL) {
        if (status != nullptr) {
            *status = Status{PROC_NULL, ANY_TAG, XMPI_SUCCESS, 0};
        }
        return XMPI_SUCCESS;
    }
    if (source != ANY_SOURCE && (source < 0 || source >= comm.size())) {
        return XMPI_ERR_RANK;
    }

    auto ticket = make_ticket(comm, source, tag, context, buf, count, type);

    // A collective-context receive is one hop of a relay (dissemination,
    // tree): its completion depends transitively on every member, so ANY
    // member's death must abort the wait. The direct source may well be
    // alive and yet never send — it bailed out of the same collective on a
    // failure this rank has not observed yet.
    int const watch = (context == comm.collective_context()) ? ANY_SOURCE : source;
    Mailbox& mailbox = comm.world().mailbox(current_world_rank());
    if (!mailbox.post_or_match(ticket)) {
        if (!mailbox.await(ticket, RecvAbort{&comm, watch})) {
            return check_peer(comm, watch);
        }
    }
    if (status != nullptr) {
        *status = ticket->status;
    }
    return ticket->status.error;
}

int transport_irecv(
    Comm& comm, int source, int tag, int context, void* buf, std::size_t count,
    Datatype const& type, Request** request) {
    if (source == PROC_NULL) {
        *request = new CompletedRequest(Status{PROC_NULL, ANY_TAG, XMPI_SUCCESS, 0});
        return XMPI_SUCCESS;
    }
    // Validate here, exactly like the blocking receive: an unchecked source
    // would flow into RecvRequest::check_failed and index the member table
    // out of bounds.
    if (source != ANY_SOURCE && (source < 0 || source >= comm.size())) {
        return XMPI_ERR_RANK;
    }
    auto ticket = make_ticket(comm, source, tag, context, buf, count, type);

    Mailbox& mailbox = comm.world().mailbox(current_world_rank());
    mailbox.post_or_match(ticket);
    *request = new RecvRequest(std::move(ticket), &mailbox);
    return XMPI_SUCCESS;
}

int coll_send(
    Comm& comm, int dest, int tag, void const* buf, std::size_t count, Datatype const& type) {
    return transport_send(comm, dest, tag, comm.collective_context(), buf, count, type);
}

int coll_recv(
    Comm& comm, int source, int tag, void* buf, std::size_t count, Datatype const& type,
    Status* status) {
    return transport_recv(comm, source, tag, comm.collective_context(), buf, count, type, status);
}

int coll_sendrecv(
    Comm& comm, int dest, int send_tag, void const* sendbuf, std::size_t sendcount,
    Datatype const& sendtype, int source, int recv_tag, void* recvbuf, std::size_t recvcount,
    Datatype const& recvtype) {
    // Eager sends complete locally, so send-then-recv cannot deadlock.
    if (int const err = coll_send(comm, dest, send_tag, sendbuf, sendcount, sendtype);
        err != XMPI_SUCCESS) {
        return err;
    }
    return coll_recv(comm, source, recv_tag, recvbuf, recvcount, recvtype);
}

int check_collective(Comm const& comm) {
    if (comm.epoch_stale()) {
        return XMPI_ERR_EPOCH;
    }
    if (comm.revoked()) {
        return XMPI_ERR_REVOKED;
    }
    if (comm.any_member_failed()) {
        return XMPI_ERR_PROC_FAILED;
    }
    return XMPI_SUCCESS;
}

} // namespace xmpi::detail
