#include "transport.hpp"

namespace xmpi::detail {

int check_peer(Comm const& comm, int peer) {
    if (comm.revoked()) {
        return XMPI_ERR_REVOKED;
    }
    if (peer == ANY_SOURCE) {
        return comm.any_member_failed() ? XMPI_ERR_PROC_FAILED : XMPI_SUCCESS;
    }
    if (comm.world().is_failed(comm.world_rank_of(peer))) {
        return XMPI_ERR_PROC_FAILED;
    }
    return XMPI_SUCCESS;
}

int transport_send(
    Comm& comm, int dest, int tag, int context, void const* buf, std::size_t count,
    Datatype const& type, std::shared_ptr<SyncHandle> sync) {
    if (dest == PROC_NULL) {
        return XMPI_SUCCESS;
    }
    if (dest < 0 || dest >= comm.size()) {
        return XMPI_ERR_RANK;
    }
    if (int const err = check_peer(comm, dest); err != XMPI_SUCCESS) {
        return err;
    }

    Message message;
    message.env = Envelope{context, comm.rank(), tag};
    message.payload.resize(type.packed_size(count));
    type.pack(buf, count, message.payload.data());
    message.sync = std::move(sync);

    World& world = comm.world();
    auto& counters = world.counters(current_world_rank());
    counters.messages_sent.fetch_add(1, std::memory_order_relaxed);
    counters.bytes_sent.fetch_add(message.payload.size(), std::memory_order_relaxed);

    world.network_model().charge(message.payload.size());
    world.mailbox(comm.world_rank_of(dest)).deliver(std::move(message));
    return XMPI_SUCCESS;
}

namespace {

/// @brief Abort predicate for a waiting receive: stop if the communicator is
/// revoked or the (potential) sender has failed.
struct RecvAbort {
    Comm const* comm;
    int source;

    bool operator()() const {
        return check_peer(*comm, source) != XMPI_SUCCESS;
    }
};

} // namespace

int transport_recv(
    Comm& comm, int source, int tag, int context, void* buf, std::size_t count,
    Datatype const& type, Status* status) {
    if (source == PROC_NULL) {
        if (status != nullptr) {
            *status = Status{PROC_NULL, ANY_TAG, XMPI_SUCCESS, 0};
        }
        return XMPI_SUCCESS;
    }
    if (source != ANY_SOURCE && (source < 0 || source >= comm.size())) {
        return XMPI_ERR_RANK;
    }

    auto ticket = std::make_shared<RecvTicket>();
    ticket->pattern = Envelope{context, source, tag};
    ticket->buffer = buf;
    ticket->type = &type;
    ticket->count = count;
    ticket->comm = &comm;

    Mailbox& mailbox = comm.world().mailbox(current_world_rank());
    if (!mailbox.post_or_match(ticket)) {
        if (!mailbox.await(ticket, RecvAbort{&comm, source})) {
            return check_peer(comm, source);
        }
    }
    if (status != nullptr) {
        *status = ticket->status;
    }
    return ticket->status.error;
}

Request* transport_irecv(
    Comm& comm, int source, int tag, int context, void* buf, std::size_t count,
    Datatype const& type) {
    if (source == PROC_NULL) {
        return new CompletedRequest(Status{PROC_NULL, ANY_TAG, XMPI_SUCCESS, 0});
    }
    auto ticket = std::make_shared<RecvTicket>();
    ticket->pattern = Envelope{context, source, tag};
    ticket->buffer = buf;
    ticket->type = &type;
    ticket->count = count;
    ticket->comm = &comm;

    Mailbox& mailbox = comm.world().mailbox(current_world_rank());
    mailbox.post_or_match(ticket);
    return new RecvRequest(std::move(ticket), &mailbox);
}

int coll_send(
    Comm& comm, int dest, int tag, void const* buf, std::size_t count, Datatype const& type) {
    return transport_send(comm, dest, tag, comm.collective_context(), buf, count, type);
}

int coll_recv(
    Comm& comm, int source, int tag, void* buf, std::size_t count, Datatype const& type,
    Status* status) {
    return transport_recv(comm, source, tag, comm.collective_context(), buf, count, type, status);
}

int coll_sendrecv(
    Comm& comm, int dest, int send_tag, void const* sendbuf, std::size_t sendcount,
    Datatype const& sendtype, int source, int recv_tag, void* recvbuf, std::size_t recvcount,
    Datatype const& recvtype) {
    // Eager sends complete locally, so send-then-recv cannot deadlock.
    if (int const err = coll_send(comm, dest, send_tag, sendbuf, sendcount, sendtype);
        err != XMPI_SUCCESS) {
        return err;
    }
    return coll_recv(comm, source, recv_tag, recvbuf, recvcount, recvtype);
}

int check_collective(Comm const& comm) {
    if (comm.revoked()) {
        return XMPI_ERR_REVOKED;
    }
    if (comm.any_member_failed()) {
        return XMPI_ERR_PROC_FAILED;
    }
    return XMPI_SUCCESS;
}

} // namespace xmpi::detail
