/// @file persistent.cpp
/// @brief Persistent and partitioned request implementations.
///
/// A persistent request separates the *binding* of an operation (arguments,
/// derived shape, payload reservation — paid once at init) from its
/// *execution* (paid per XMPI_Start). Each start creates a fresh inner
/// one-shot request carrying the completion semantics; completion makes the
/// persistent request inactive again instead of consuming it.
#include "persistent.hpp"

#include <chrono>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "coll.hpp"
#include "coll_registry.hpp"
#include "transport.hpp"
#include "xmpi/pool.hpp"
#include "xmpi/progress.hpp"
#include "xmpi/tuning.hpp"

namespace xmpi::detail {

// ---------------------------------------------------------------------------
// PersistentRequest lifecycle (base class declared in xmpi/request.hpp)
// ---------------------------------------------------------------------------

PersistentRequest::~PersistentRequest() {
    if (active_ && inner_ != nullptr && !inner_->cancel()) {
        Status status;
        inner_->wait(status);
    }
}

int PersistentRequest::start() {
    if (active_) {
        return XMPI_ERR_REQUEST;
    }
    if (int const err = do_start(); err != XMPI_SUCCESS) {
        return err;
    }
    active_ = true;
    ++restarts_;
    return XMPI_SUCCESS;
}

bool PersistentRequest::test(Status& status) {
    if (!active_) {
        status = inactive_status();
        return true;
    }
    Status inner_status;
    if (inner_ == nullptr || !inner_->test(inner_status)) {
        return false;
    }
    inner_.reset();
    active_ = false;
    status = inner_status;
    return true;
}

bool PersistentRequest::peek() {
    if (!active_) {
        return true;
    }
    return inner_ != nullptr && inner_->peek();
}

void PersistentRequest::wait(Status& status) {
    if (!active_) {
        status = inactive_status();
        return;
    }
    inner_->wait(status);
    inner_.reset();
    active_ = false;
}

bool PersistentRequest::cancel() {
    return active_ && inner_ != nullptr && inner_->cancel();
}

Status PersistentRequest::inactive_status() {
    return Status{PROC_NULL, ANY_TAG, XMPI_SUCCESS, 0};
}

// ---------------------------------------------------------------------------
// Persistent point-to-point
// ---------------------------------------------------------------------------

namespace {

class PersistentSendRequest final : public PersistentRequest {
public:
    PersistentSendRequest(
        Comm* comm, void const* buf, std::size_t count, Datatype const* type, int dest, int tag)
        : comm_(comm),
          buf_(buf),
          count_(count),
          type_(type),
          dest_(dest),
          tag_(tag) {
        // Pin a payload buffer for the packed eager path: restarts then
        // bypass the pool (and the heap) entirely — the receiver's release
        // cycles the buffer straight back into the slot. The small and
        // rendezvous fast paths never allocate, so pinning would be waste.
        std::size_t const bytes = type_->packed_size(count_);
        auto const& knobs = tuning::transport();
        bool const small = type_->is_contiguous() && bytes <= knobs.coalesce_max_bytes;
        bool const rendezvous = type_->is_contiguous() && bytes >= knobs.rendezvous_threshold;
        if (dest_ != PROC_NULL && bytes > 0 && bytes <= PayloadPool::kMaxClassBytes && !small
            && !rendezvous) {
            auto& world = comm_->world();
            slot_ = std::make_shared<PayloadSlot>();
            slot_->buffer =
                world.payload_pool().acquire(bytes, world.counters(current_world_rank()));
            slot_->occupied = true;
        }
    }

protected:
    int do_start() override {
        if (int const err = transport_send(
                *comm_, dest_, tag_, comm_->pt2pt_context(), buf_, count_, *type_, nullptr,
                slot_);
            err != XMPI_SUCCESS) {
            return err;
        }
        inner_ = std::make_unique<CompletedRequest>(Status{UNDEFINED, UNDEFINED, XMPI_SUCCESS, 0});
        return XMPI_SUCCESS;
    }

private:
    Comm* comm_;
    void const* buf_;
    std::size_t count_;
    Datatype const* type_;
    int dest_;
    int tag_;
    std::shared_ptr<PayloadSlot> slot_;
};

class PersistentRecvRequest final : public PersistentRequest {
public:
    PersistentRecvRequest(
        Comm* comm, void* buf, std::size_t count, Datatype const* type, int source, int tag)
        : comm_(comm),
          buf_(buf),
          count_(count),
          type_(type),
          source_(source),
          tag_(tag) {}

protected:
    int do_start() override {
        Request* request = nullptr;
        if (int const err = transport_irecv(
                *comm_, source_, tag_, comm_->pt2pt_context(), buf_, count_, *type_, &request);
            err != XMPI_SUCCESS) {
            return err;
        }
        inner_.reset(request);
        return XMPI_SUCCESS;
    }

private:
    Comm* comm_;
    void* buf_;
    std::size_t count_;
    Datatype const* type_;
    int source_;
    int tag_;
};

/// @brief Persistent collective: every start opens a fresh matching channel
/// (nbc context + per-initiation sequence, so starts order like NBC
/// initiations across ranks) but defers execution. wait() runs the stored
/// body INLINE on the waiting thread — the same wire path as the blocking
/// one-shot collective, so a start/wait round costs only the Start
/// bookkeeping on top of the collective itself (no progress-engine queue
/// and wakeup latency). A test()/peek() poll must not block, so polling
/// instead submits the body to the shared progress engine once; completion
/// then follows the usual inner-request path. Mixed usage composes: a rank
/// waiting inline rendezvouses with a peer whose body runs on an engine
/// worker, exactly as blocking and non-blocking collectives already do.
class PersistentCollRequest final : public PersistentRequest {
public:
    PersistentCollRequest(char const* op, Comm* comm, std::function<int(CollChannel)> body)
        : op_(op),
          comm_(comm),
          body_(std::move(body)) {
        // The matching channel is part of the binding: allocated once at
        // init (collective — every rank draws the same sequence) and reused
        // by every restart. Safe for the same reason blocking collectives
        // reuse one fixed tag per kind: transport matching is FIFO per
        // (source, context, tag), and a request cannot restart before its
        // previous round completed locally.
        channel_ = CollChannel{comm->nbc_context(), comm->next_nbc_sequence()};
    }

    ~PersistentCollRequest() override {
        // Freed while started but never waited or polled: peers may already
        // be inside this round's rendezvous — run our part before teardown.
        if (active_ && inner_ == nullptr) {
            (void)body_(channel_);
            active_ = false;
        }
    }

    void wait(Status& status) override {
        if (active_ && inner_ == nullptr) {
            int const err = body_(channel_);
            status = Status{UNDEFINED, UNDEFINED, err, 0};
            active_ = false;
            return;
        }
        PersistentRequest::wait(status);
    }

    bool test(Status& status) override {
        ensure_submitted();
        return PersistentRequest::test(status);
    }

    [[nodiscard]] bool peek() override {
        ensure_submitted();
        return PersistentRequest::peek();
    }

protected:
    int do_start() override {
        // Nothing per start: the channel was bound at init, and the round
        // itself runs lazily — inline at wait() or on the progress engine
        // at the first test()/peek().
        return XMPI_SUCCESS;
    }

private:
    void ensure_submitted() {
        if (active_ && inner_ == nullptr) {
            inner_.reset(
                progress::detail::submit(op_, comm_, [body = body_, channel = channel_] {
                    return body(channel);
                }));
        }
    }

    char const* op_;
    Comm* comm_;
    std::function<int(CollChannel)> body_;
    CollChannel channel_{};
};

} // namespace

Request* make_persistent_send(
    Comm& comm, void const* buf, std::size_t count, Datatype const& type, int dest, int tag) {
    return new PersistentSendRequest(&comm, buf, count, &type, dest, tag);
}

Request* make_persistent_recv(
    Comm& comm, void* buf, std::size_t count, Datatype const& type, int source, int tag) {
    return new PersistentRecvRequest(&comm, buf, count, &type, source, tag);
}

// ---------------------------------------------------------------------------
// Persistent collectives
// ---------------------------------------------------------------------------

Request* make_persistent_bcast(
    Comm& comm, void* buffer, std::size_t count, Datatype const& type, int root) {
    auto* comm_ptr = &comm;
    auto const* type_ptr = &type;
    // Algorithm selection is part of the binding: the entry chosen here
    // (including from a tuning table loaded at init time) is replayed by
    // every restart, so a round never re-consults select().
    CollAlgo const* const algo = select_coll_algo(
        tuning::CollOp::bcast, make_select_ctx(comm, type.packed_size(count)), nullptr);
    return new PersistentCollRequest(
        "bcast_init", comm_ptr,
        [comm_ptr, buffer, count, type_ptr, root, algo](CollChannel channel) {
            if (int const err = check_collective(*comm_ptr); err != XMPI_SUCCESS) {
                return err;
            }
            CollCtx ctx;
            ctx.comm = comm_ptr;
            ctx.channel = channel;
            ctx.recvbuf = buffer;
            ctx.recvcount = count;
            ctx.recvtype = type_ptr;
            ctx.root = root;
            return run_coll_algo(*algo, ctx);
        });
}

Request* make_persistent_allreduce(
    Comm& comm, void const* sendbuf, void* recvbuf, std::size_t count, Datatype const& type,
    Op const& op) {
    auto* comm_ptr = &comm;
    auto const* type_ptr = &type;
    auto const* op_ptr = &op;
    // Scratch is hoisted into the request: restarts after the first run
    // allocation-free. A persistent request never restarts concurrently with
    // its own completion, so the shared scratch is never contended.
    auto scratch = std::make_shared<ReduceScratch>();
    CollAlgo const* const algo = select_coll_algo(
        tuning::CollOp::allreduce,
        make_select_ctx(comm, type.packed_size(count), op.commutative()), nullptr);
    return new PersistentCollRequest(
        "allreduce_init", comm_ptr,
        [comm_ptr, sendbuf, recvbuf, count, type_ptr, op_ptr, scratch,
         algo](CollChannel channel) {
            if (int const err = check_collective(*comm_ptr); err != XMPI_SUCCESS) {
                return err;
            }
            CollCtx ctx;
            ctx.comm = comm_ptr;
            ctx.channel = channel;
            ctx.in_place = sendbuf == IN_PLACE;
            ctx.sendbuf = ctx.in_place ? recvbuf : sendbuf;
            ctx.recvbuf = recvbuf;
            ctx.sendcount = count;
            ctx.sendtype = type_ptr;
            ctx.op = op_ptr;
            ctx.scratch = scratch.get();
            return run_coll_algo(*algo, ctx);
        });
}

Request* make_persistent_alltoall(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, std::size_t recvcount, Datatype const& recvtype) {
    // The alltoallv shape (counts and displacements per peer) is derived
    // exactly once here; restarts replay it without recomputation.
    struct Shape {
        std::vector<int> sendcounts, sdispls, recvcounts, rdispls;
    };
    auto shape = std::make_shared<Shape>();
    int const p = comm.size();
    shape->sendcounts.reserve(static_cast<std::size_t>(p));
    shape->sdispls.reserve(static_cast<std::size_t>(p));
    shape->recvcounts.reserve(static_cast<std::size_t>(p));
    shape->rdispls.reserve(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
        shape->sendcounts.push_back(static_cast<int>(sendcount));
        shape->sdispls.push_back(i * static_cast<int>(sendcount));
        shape->recvcounts.push_back(static_cast<int>(recvcount));
        shape->rdispls.push_back(i * static_cast<int>(recvcount));
    }
    auto* comm_ptr = &comm;
    auto const* send_type = &sendtype;
    auto const* recv_type = &recvtype;
    CollAlgo const* const algo = select_coll_algo(
        tuning::CollOp::alltoallv, make_select_ctx(comm, recvtype.packed_size(recvcount)),
        nullptr);
    return new PersistentCollRequest(
        "alltoall_init", comm_ptr,
        [comm_ptr, sendbuf, send_type, recvbuf, recv_type, shape, algo](CollChannel channel) {
            if (int const err = check_collective(*comm_ptr); err != XMPI_SUCCESS) {
                return err;
            }
            CollCtx ctx;
            ctx.comm = comm_ptr;
            ctx.channel = channel;
            ctx.in_place = sendbuf == IN_PLACE;
            ctx.sendbuf = sendbuf;
            ctx.sendcounts = shape->sendcounts.data();
            ctx.sdispls = shape->sdispls.data();
            ctx.sendtype = send_type;
            ctx.recvbuf = recvbuf;
            ctx.recvcounts = shape->recvcounts.data();
            ctx.rdispls = shape->rdispls.data();
            ctx.recvtype = recv_type;
            return run_coll_algo(*algo, ctx);
        });
}

Request* make_persistent_barrier(Comm& comm) {
    auto* comm_ptr = &comm;
    CollAlgo const* const algo =
        select_coll_algo(tuning::CollOp::barrier, make_select_ctx(comm, 0), nullptr);
    return new PersistentCollRequest(
        "barrier_init", comm_ptr, [comm_ptr, algo](CollChannel channel) {
            if (int const err = check_collective(*comm_ptr); err != XMPI_SUCCESS) {
                return err;
            }
            CollCtx ctx;
            ctx.comm = comm_ptr;
            ctx.channel = channel;
            return run_coll_algo(*algo, ctx);
        });
}

// ---------------------------------------------------------------------------
// Partitioned point-to-point
// ---------------------------------------------------------------------------

PartitionedSendRequest::PartitionedSendRequest(
    Comm* comm, int partitions, std::size_t part_count, Datatype const* type, void const* buf,
    int dest, int tag)
    : comm_(comm),
      partitions_(partitions),
      part_count_(part_count),
      type_(type),
      buf_(buf),
      dest_(dest),
      tag_(tag),
      ctx_(current_context()),
      ready_(std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(partitions))) {}

int PartitionedSendRequest::do_start() {
    for (int i = 0; i < partitions_; ++i) {
        ready_[static_cast<std::size_t>(i)].store(false, std::memory_order_relaxed);
    }
    ready_count_.store(0, std::memory_order_relaxed);
    started_.store(true, std::memory_order_release);
    return XMPI_SUCCESS;
}

int PartitionedSendRequest::pready(int partition) {
    if (partition < 0 || partition >= partitions_) {
        return XMPI_ERR_ARG;
    }
    if (!started_.load(std::memory_order_acquire)) {
        return XMPI_ERR_REQUEST;
    }
    if (ready_[static_cast<std::size_t>(partition)].exchange(true, std::memory_order_acq_rel)) {
        return XMPI_ERR_ARG; // partition marked ready twice in one epoch
    }
    if (ready_count_.fetch_add(1, std::memory_order_acq_rel) + 1 != partitions_) {
        return XMPI_SUCCESS;
    }
    // Last partition: ship the whole buffer as one message, attributed to
    // the initiating rank even when this thread is a foreign producer.
    Comm* comm = comm_;
    void const* buf = buf_;
    std::size_t const total = part_count_ * static_cast<std::size_t>(partitions_);
    Datatype const* type = type_;
    int const dest = dest_;
    int const tag = tag_;
    Request* request = progress::detail::submit_as("psend", comm_, ctx_, [=] {
        return transport_send(*comm, dest, tag, comm->pt2pt_context(), buf, total, *type);
    });
    std::lock_guard lock(inner_mutex_);
    inner_.reset(request);
    return XMPI_SUCCESS;
}

bool PartitionedSendRequest::test(Status& status) {
    if (!active_) {
        status = inactive_status();
        return true;
    }
    std::lock_guard lock(inner_mutex_);
    if (inner_ == nullptr) {
        return false; // partitions still outstanding
    }
    Status inner_status;
    if (!inner_->test(inner_status)) {
        return false;
    }
    inner_.reset();
    started_.store(false, std::memory_order_release);
    active_ = false;
    status = inner_status;
    return true;
}

bool PartitionedSendRequest::peek() {
    if (!active_) {
        return true;
    }
    std::lock_guard lock(inner_mutex_);
    return inner_ != nullptr && inner_->peek();
}

void PartitionedSendRequest::wait(Status& status) {
    // The inner request appears asynchronously (installed by whichever
    // thread delivers the last pready), so poll for it before waiting.
    for (;;) {
        {
            std::unique_lock lock(inner_mutex_);
            if (!active_) {
                status = inactive_status();
                return;
            }
            if (inner_ != nullptr) {
                auto inner = std::move(inner_);
                lock.unlock();
                inner->wait(status);
                started_.store(false, std::memory_order_release);
                active_ = false;
                return;
            }
        }
        progress::poll();
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
}

PartitionedRecvRequest::PartitionedRecvRequest(
    Comm* comm, int partitions, std::size_t part_count, Datatype const* type, void* buf,
    int source, int tag)
    : comm_(comm),
      partitions_(partitions),
      part_count_(part_count),
      type_(type),
      buf_(buf),
      source_(source),
      tag_(tag) {}

int PartitionedRecvRequest::do_start() {
    Request* request = nullptr;
    std::size_t const total = part_count_ * static_cast<std::size_t>(partitions_);
    if (int const err = transport_irecv(
            *comm_, source_, tag_, comm_->pt2pt_context(), buf_, total, *type_, &request);
        err != XMPI_SUCCESS) {
        return err;
    }
    inner_.reset(request);
    return XMPI_SUCCESS;
}

int PartitionedRecvRequest::parrived(int partition, int* flag) {
    if (partition < 0 || partition >= partitions_) {
        return XMPI_ERR_ARG;
    }
    if (!active_) {
        *flag = 1; // completed epoch: everything has arrived
        return XMPI_SUCCESS;
    }
    Status probe_status;
    *flag = inner_ != nullptr && inner_->test(probe_status) ? 1 : 0;
    return XMPI_SUCCESS;
}

} // namespace xmpi::detail
