/// @file transport.hpp
/// @brief Internal transport helpers shared by the p2p API and the
/// collective algorithms. Not installed; xmpi-internal only.
#pragma once

#include <memory>

#include "xmpi/comm.hpp"
#include "xmpi/datatype.hpp"
#include "xmpi/error.hpp"
#include "xmpi/mailbox.hpp"
#include "xmpi/request.hpp"
#include "xmpi/status.hpp"
#include "xmpi/world.hpp"

namespace xmpi::detail {

/// @brief Result of a pre-flight check on a peer: XMPI_SUCCESS, or the error
/// class to report (revoked communicator / failed peer).
int check_peer(Comm const& comm, int peer_comm_rank_or_any);

/// @brief Packs and delivers one message into the destination's mailbox.
/// Charges the network model and the profiling byte counters. @c context
/// selects the matching space (pt2pt or collective). @c reservation, when
/// set, is the pre-pinned payload slot of a persistent send: the packed
/// eager path takes its buffer instead of hitting the pool, and the
/// receiver's release returns it there (see PayloadSlot).
int transport_send(
    Comm& comm, int dest, int tag, int context, void const* buf, std::size_t count,
    Datatype const& type, std::shared_ptr<SyncHandle> sync = nullptr,
    std::shared_ptr<PayloadSlot> const& reservation = nullptr);

/// @brief Blocking receive; aborts with an error code if the communicator is
/// revoked or a relevant peer fails while waiting.
int transport_recv(
    Comm& comm, int source, int tag, int context, void* buf, std::size_t count,
    Datatype const& type, Status* status);

/// @brief Posts a non-blocking receive into @c *request. Returns
/// XMPI_ERR_RANK (leaving @c *request untouched) when @c source is neither a
/// valid comm rank, ANY_SOURCE, nor PROC_NULL.
int transport_irecv(
    Comm& comm, int source, int tag, int context, void* buf, std::size_t count,
    Datatype const& type, Request** request);

/// @name Collective-context convenience wrappers (used by coll_*.cpp)
/// @{
int coll_send(
    Comm& comm, int dest, int tag, void const* buf, std::size_t count, Datatype const& type);
int coll_recv(
    Comm& comm, int source, int tag, void* buf, std::size_t count, Datatype const& type,
    Status* status = nullptr);
/// @brief Simultaneous send+recv in the collective context (avoids deadlock
/// in pairwise exchange rounds by posting the receive first).
int coll_sendrecv(
    Comm& comm, int dest, int send_tag, void const* sendbuf, std::size_t sendcount,
    Datatype const& sendtype, int source, int recv_tag, void* recvbuf, std::size_t recvcount,
    Datatype const& recvtype);
/// @}

/// @brief Entry check shared by all collectives: revoked / failed members.
int check_collective(Comm const& comm);

} // namespace xmpi::detail
