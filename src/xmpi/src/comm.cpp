#include "xmpi/comm.hpp"

#include <algorithm>

#include "kassert/kassert.hpp"
#include "xmpi/world.hpp"

namespace xmpi {

int Group::rank_of(int world_rank) const {
    auto const it = std::find(world_ranks_.begin(), world_ranks_.end(), world_rank);
    if (it == world_ranks_.end()) {
        return UNDEFINED;
    }
    return static_cast<int>(it - world_ranks_.begin());
}

Group* Group::incl(std::vector<int> const& ranks) const {
    std::vector<int> selected;
    selected.reserve(ranks.size());
    for (int rank: ranks) {
        KASSERT(rank >= 0 && rank < size(), "group rank out of range");
        selected.push_back(world_ranks_[static_cast<std::size_t>(rank)]);
    }
    return new Group(std::move(selected));
}

Group* Group::excl(std::vector<int> const& ranks) const {
    std::vector<bool> excluded(world_ranks_.size(), false);
    for (int rank: ranks) {
        KASSERT(rank >= 0 && rank < size(), "group rank out of range");
        excluded[static_cast<std::size_t>(rank)] = true;
    }
    std::vector<int> selected;
    for (std::size_t i = 0; i < world_ranks_.size(); ++i) {
        if (!excluded[i]) {
            selected.push_back(world_ranks_[i]);
        }
    }
    return new Group(std::move(selected));
}

Group* Group::union_with(Group const& other) const {
    std::vector<int> result = world_ranks_;
    for (int world_rank: other.world_ranks_) {
        if (rank_of(world_rank) == UNDEFINED) {
            result.push_back(world_rank);
        }
    }
    return new Group(std::move(result));
}

Group* Group::intersection_with(Group const& other) const {
    std::vector<int> result;
    for (int world_rank: world_ranks_) {
        if (other.rank_of(world_rank) != UNDEFINED) {
            result.push_back(world_rank);
        }
    }
    return new Group(std::move(result));
}

Group* Group::difference_with(Group const& other) const {
    std::vector<int> result;
    for (int world_rank: world_ranks_) {
        if (other.rank_of(world_rank) == UNDEFINED) {
            result.push_back(world_rank);
        }
    }
    return new Group(std::move(result));
}

Comm::Comm(World* world, std::vector<int> members)
    : world_(world),
      members_(std::move(members)),
      pt2pt_context_(world->allocate_context()),
      collective_context_(world->allocate_context()),
      nbc_context_(world->allocate_context()),
      rank_topologies_(members_.size()) {
    world_to_comm_rank_.reserve(members_.size());
    for (std::size_t comm_rank = 0; comm_rank < members_.size(); ++comm_rank) {
        world_to_comm_rank_.emplace(members_[comm_rank], static_cast<int>(comm_rank));
    }
    nbc_sequence_ = std::make_unique<std::atomic<std::uint32_t>[]>(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i) {
        nbc_sequence_[i].store(0, std::memory_order_relaxed);
    }
    ibarrier_.next_round_of_rank.assign(members_.size(), 0);
    world_->register_comm(this);
}

Comm::~Comm() {
    world_->unregister_comm(this);
    // A rendezvous round whose last pending consumers all died leaves its
    // result parked in the sync structure; dispose of it with the round's
    // retire callback (no threads can race us in the destructor).
    if (ft_.result != nullptr && ft_.retire) {
        ft_.retire(ft_.result);
    }
}

int Comm::rank() const {
    return comm_rank_of_world_rank(detail::current_world_rank());
}

int Comm::comm_rank_of_world_rank(int world_rank) const {
    auto const it = world_to_comm_rank_.find(world_rank);
    if (it == world_to_comm_rank_.end()) {
        return UNDEFINED;
    }
    return it->second;
}

bool Comm::epoch_stale() const {
    return epoch_gated_ && world_->membership_epoch() != birth_epoch_;
}

bool Comm::any_member_failed() const {
    if (!world_->any_failed()) {
        return false;
    }
    return std::any_of(members_.begin(), members_.end(), [&](int world_rank) {
        return world_->is_failed(world_rank);
    });
}

std::vector<int> Comm::surviving_members() const {
    std::vector<int> survivors;
    survivors.reserve(members_.size());
    for (int world_rank: members_) {
        if (!world_->is_failed(world_rank)) {
            survivors.push_back(world_rank);
        }
    }
    return survivors;
}

} // namespace xmpi
