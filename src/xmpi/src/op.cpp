#include "xmpi/op.hpp"

#include <cstring>

#include "kassert/kassert.hpp"
#include "xmpi/datatype.hpp"

namespace xmpi {
namespace {

template <typename T>
void combine_typed(BuiltinOp op, T const* in, T* inout, std::size_t n) {
    switch (op) {
        case BuiltinOp::sum:
            for (std::size_t i = 0; i < n; ++i) {
                inout[i] = static_cast<T>(in[i] + inout[i]);
            }
            break;
        case BuiltinOp::prod:
            for (std::size_t i = 0; i < n; ++i) {
                inout[i] = static_cast<T>(in[i] * inout[i]);
            }
            break;
        case BuiltinOp::min:
            for (std::size_t i = 0; i < n; ++i) {
                inout[i] = in[i] < inout[i] ? in[i] : inout[i];
            }
            break;
        case BuiltinOp::max:
            for (std::size_t i = 0; i < n; ++i) {
                inout[i] = in[i] > inout[i] ? in[i] : inout[i];
            }
            break;
        case BuiltinOp::land:
            for (std::size_t i = 0; i < n; ++i) {
                inout[i] = static_cast<T>(in[i] && inout[i]);
            }
            break;
        case BuiltinOp::lor:
            for (std::size_t i = 0; i < n; ++i) {
                inout[i] = static_cast<T>(in[i] || inout[i]);
            }
            break;
        case BuiltinOp::lxor:
            for (std::size_t i = 0; i < n; ++i) {
                inout[i] = static_cast<T>(!in[i] != !inout[i]);
            }
            break;
        default:
            KASSERT(false, "bitwise op dispatched to non-integral combine");
    }
}

template <typename T>
void combine_bitwise(BuiltinOp op, T const* in, T* inout, std::size_t n) {
    switch (op) {
        case BuiltinOp::band:
            for (std::size_t i = 0; i < n; ++i) {
                inout[i] = static_cast<T>(in[i] & inout[i]);
            }
            break;
        case BuiltinOp::bor:
            for (std::size_t i = 0; i < n; ++i) {
                inout[i] = static_cast<T>(in[i] | inout[i]);
            }
            break;
        case BuiltinOp::bxor:
            for (std::size_t i = 0; i < n; ++i) {
                inout[i] = static_cast<T>(in[i] ^ inout[i]);
            }
            break;
        default:
            combine_typed(op, in, inout, n);
    }
}

/// @brief Applies a builtin op to one run of @c n elements of kind @c elem.
void combine_run(BuiltinOp op, BuiltinType elem, void const* in, void* inout, std::size_t n) {
    switch (elem) {
        case BuiltinType::byte_:
        case BuiltinType::char_:
            combine_bitwise(op, static_cast<char const*>(in), static_cast<char*>(inout), n);
            break;
        case BuiltinType::signed_char:
            combine_bitwise(
                op, static_cast<signed char const*>(in), static_cast<signed char*>(inout), n);
            break;
        case BuiltinType::unsigned_char:
            combine_bitwise(
                op, static_cast<unsigned char const*>(in), static_cast<unsigned char*>(inout), n);
            break;
        case BuiltinType::short_:
            combine_bitwise(op, static_cast<short const*>(in), static_cast<short*>(inout), n);
            break;
        case BuiltinType::unsigned_short:
            combine_bitwise(
                op, static_cast<unsigned short const*>(in), static_cast<unsigned short*>(inout),
                n);
            break;
        case BuiltinType::int_:
            combine_bitwise(op, static_cast<int const*>(in), static_cast<int*>(inout), n);
            break;
        case BuiltinType::unsigned_int:
            combine_bitwise(
                op, static_cast<unsigned const*>(in), static_cast<unsigned*>(inout), n);
            break;
        case BuiltinType::long_:
            combine_bitwise(op, static_cast<long const*>(in), static_cast<long*>(inout), n);
            break;
        case BuiltinType::unsigned_long:
            combine_bitwise(
                op, static_cast<unsigned long const*>(in), static_cast<unsigned long*>(inout), n);
            break;
        case BuiltinType::long_long:
            combine_bitwise(
                op, static_cast<long long const*>(in), static_cast<long long*>(inout), n);
            break;
        case BuiltinType::unsigned_long_long:
            combine_bitwise(
                op, static_cast<unsigned long long const*>(in),
                static_cast<unsigned long long*>(inout), n);
            break;
        case BuiltinType::float_:
            combine_typed(op, static_cast<float const*>(in), static_cast<float*>(inout), n);
            break;
        case BuiltinType::double_:
            combine_typed(op, static_cast<double const*>(in), static_cast<double*>(inout), n);
            break;
        case BuiltinType::long_double:
            combine_typed(
                op, static_cast<long double const*>(in), static_cast<long double*>(inout), n);
            break;
        case BuiltinType::bool_:
            combine_typed(op, static_cast<bool const*>(in), static_cast<bool*>(inout), n);
            break;
    }
}

} // namespace

void Op::apply(void const* in, void* inout, std::size_t count, Datatype const& datatype) const {
    if (!is_builtin()) {
        int len = static_cast<int>(count);
        Datatype* type_handle = const_cast<Datatype*>(&datatype);
        function_(const_cast<void*>(in), inout, &len, &type_handle);
        return;
    }
    auto const* in_element = static_cast<std::byte const*>(in);
    auto* inout_element = static_cast<std::byte*>(inout);
    for (std::size_t i = 0; i < count; ++i) {
        for (auto const& block: datatype.typemap()) {
            combine_run(
                builtin_, block.elem, in_element + block.offset, inout_element + block.offset,
                block.count);
        }
        in_element += datatype.extent();
        inout_element += datatype.extent();
    }
}

Op const* predefined_op(BuiltinOp op) {
    static Op const* const ops[] = {
        nullptr,
        new Op(BuiltinOp::sum),
        new Op(BuiltinOp::prod),
        new Op(BuiltinOp::min),
        new Op(BuiltinOp::max),
        new Op(BuiltinOp::land),
        new Op(BuiltinOp::lor),
        new Op(BuiltinOp::lxor),
        new Op(BuiltinOp::band),
        new Op(BuiltinOp::bor),
        new Op(BuiltinOp::bxor),
    };
    return ops[static_cast<std::size_t>(op)];
}

} // namespace xmpi
