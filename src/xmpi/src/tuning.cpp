#include "xmpi/tuning.hpp"

#include <cstdlib>
#include <string>
#include <thread>

namespace xmpi::tuning {

namespace {

bool g_spin_budget_forced = false;

[[nodiscard]] long env_long(char const* name, long fallback, bool* seen = nullptr) {
    char const* const raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') {
        return fallback;
    }
    char* end = nullptr;
    long const value = std::strtol(raw, &end, 10);
    if (end == raw || value < 0) {
        return fallback; // malformed or negative: keep the default
    }
    if (seen != nullptr) {
        *seen = true;
    }
    return value;
}

[[nodiscard]] Transport seed_from_env() {
    Transport knobs;
    knobs.spin_before_block = static_cast<int>(
        env_long("XMPI_SPIN_BUDGET", knobs.spin_before_block, &g_spin_budget_forced));
    knobs.yield_before_block =
        static_cast<int>(env_long("XMPI_YIELD_BUDGET", knobs.yield_before_block));
    knobs.rendezvous_threshold = static_cast<std::size_t>(env_long(
        "XMPI_RENDEZVOUS_THRESHOLD", static_cast<long>(knobs.rendezvous_threshold)));
    knobs.coalesce_max_bytes = static_cast<std::size_t>(
        env_long("XMPI_COALESCE_MAX_BYTES", static_cast<long>(knobs.coalesce_max_bytes)));
    knobs.coalesce_watermark = static_cast<std::size_t>(
        env_long("XMPI_COALESCE_WATERMARK", static_cast<long>(knobs.coalesce_watermark)));
    knobs.ring_capacity = static_cast<std::size_t>(
        env_long("XMPI_RING_CAPACITY", static_cast<long>(knobs.ring_capacity)));
    knobs.rendezvous_fallback_us =
        env_long("XMPI_RENDEZVOUS_FALLBACK_US", knobs.rendezvous_fallback_us);
    // A batch block must at least fit one max-size coalesced record.
    if (knobs.coalesce_watermark < knobs.coalesce_max_bytes + 16) {
        knobs.coalesce_watermark = knobs.coalesce_max_bytes + 16;
    }
    return knobs;
}

} // namespace

Transport& transport() {
    static Transport knobs = seed_from_env();
    return knobs;
}

int spin_budget() {
    Transport const& knobs = transport();
    if (g_spin_budget_forced) {
        return knobs.spin_before_block;
    }
    // On a single hardware thread the sender cannot make progress while we
    // spin, so blocking immediately is strictly better.
    static unsigned const hw = std::thread::hardware_concurrency();
    return hw > 1 ? knobs.spin_before_block : 0;
}

int yield_budget() { return transport().yield_before_block; }

} // namespace xmpi::tuning
