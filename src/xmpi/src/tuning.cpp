#include "xmpi/tuning.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

namespace xmpi::tuning {

namespace {

bool g_spin_budget_forced = false;

[[nodiscard]] long env_long(char const* name, long fallback, bool* seen = nullptr) {
    char const* const raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') {
        return fallback;
    }
    char* end = nullptr;
    long const value = std::strtol(raw, &end, 10);
    if (end == raw || value < 0) {
        std::fprintf(
            stderr, "xmpi: ignoring malformed %s=\"%s\" (keeping %ld)\n", name, raw, fallback);
        return fallback;
    }
    if (seen != nullptr) {
        *seen = true;
    }
    return value;
}

/// @brief Clamps one knob to @c minimum, logging when an explicit
/// environment override was raised (silent clamping of a user-set value
/// would make the knob look honored when it is not).
void clamp_min(std::size_t& knob, std::size_t minimum, bool seen, char const* name) {
    if (knob >= minimum) {
        return;
    }
    if (seen) {
        std::fprintf(
            stderr, "xmpi: %s=%zu below minimum, clamping to %zu\n", name, knob, minimum);
    }
    knob = minimum;
}

[[nodiscard]] Transport seed_from_env() {
    Transport knobs;
    bool ring_seen = false;
    bool watermark_seen = false;
    bool coalesce_seen = false;
    bool rendezvous_seen = false;
    knobs.spin_before_block = static_cast<int>(
        env_long("XMPI_SPIN_BUDGET", knobs.spin_before_block, &g_spin_budget_forced));
    knobs.yield_before_block =
        static_cast<int>(env_long("XMPI_YIELD_BUDGET", knobs.yield_before_block));
    knobs.rendezvous_threshold = static_cast<std::size_t>(env_long(
        "XMPI_RENDEZVOUS_THRESHOLD", static_cast<long>(knobs.rendezvous_threshold),
        &rendezvous_seen));
    knobs.coalesce_max_bytes = static_cast<std::size_t>(env_long(
        "XMPI_COALESCE_MAX_BYTES", static_cast<long>(knobs.coalesce_max_bytes),
        &coalesce_seen));
    knobs.coalesce_watermark = static_cast<std::size_t>(env_long(
        "XMPI_COALESCE_WATERMARK", static_cast<long>(knobs.coalesce_watermark),
        &watermark_seen));
    knobs.ring_capacity = static_cast<std::size_t>(
        env_long("XMPI_RING_CAPACITY", static_cast<long>(knobs.ring_capacity), &ring_seen));
    knobs.rendezvous_fallback_us =
        env_long("XMPI_RENDEZVOUS_FALLBACK_US", knobs.rendezvous_fallback_us);

    // Structural minima. Zero was previously accepted for several of these
    // and wedged the transport: a zero-capacity ring can never publish, and
    // a zero watermark makes every batch block full before its first record.
    clamp_min(knobs.ring_capacity, 2, ring_seen, "XMPI_RING_CAPACITY");
    clamp_min(knobs.rendezvous_threshold, 1, rendezvous_seen, "XMPI_RENDEZVOUS_THRESHOLD");
    // The eager/rendezvous split must stay ordered: a coalesce-eligible send
    // must never also be rendezvous-eligible. Clamp the coalesce ceiling
    // below the rendezvous floor rather than the other way around, so an
    // explicit rendezvous threshold keeps its meaning.
    if (knobs.coalesce_max_bytes >= knobs.rendezvous_threshold) {
        std::size_t const clamped = knobs.rendezvous_threshold - 1;
        if (coalesce_seen || rendezvous_seen) {
            std::fprintf(
                stderr,
                "xmpi: XMPI_COALESCE_MAX_BYTES=%zu overlaps the rendezvous threshold %zu, "
                "clamping to %zu\n",
                knobs.coalesce_max_bytes, knobs.rendezvous_threshold, clamped);
        }
        knobs.coalesce_max_bytes = clamped;
    }
    // A batch block must at least fit one max-size coalesced record (and
    // never be zero: watermark 0 would reject every coalesce attempt).
    clamp_min(
        knobs.coalesce_watermark, knobs.coalesce_max_bytes + 16, watermark_seen,
        "XMPI_COALESCE_WATERMARK");
    return knobs;
}

} // namespace

Transport& transport() {
    static Transport knobs = seed_from_env();
    return knobs;
}

int spin_budget() {
    Transport const& knobs = transport();
    if (g_spin_budget_forced) {
        return knobs.spin_before_block;
    }
    // On a single hardware thread the sender cannot make progress while we
    // spin, so blocking immediately is strictly better.
    static unsigned const hw = std::thread::hardware_concurrency();
    return hw > 1 ? knobs.spin_before_block : 0;
}

int yield_budget() { return transport().yield_before_block; }

} // namespace xmpi::tuning
