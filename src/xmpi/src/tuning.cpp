#include "xmpi/tuning.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

namespace xmpi::tuning {

namespace {

bool g_spin_budget_forced = false;

[[nodiscard]] long env_long(char const* name, long fallback, bool* seen = nullptr) {
    char const* const raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') {
        return fallback;
    }
    char* end = nullptr;
    long const value = std::strtol(raw, &end, 10);
    if (end == raw || value < 0) {
        std::fprintf(
            stderr, "xmpi: ignoring malformed %s=\"%s\" (keeping %ld)\n", name, raw, fallback);
        return fallback;
    }
    if (seen != nullptr) {
        *seen = true;
    }
    return value;
}

/// @brief Clamps one knob to @c minimum, logging when an explicit
/// environment override was raised (silent clamping of a user-set value
/// would make the knob look honored when it is not).
void clamp_min(std::size_t& knob, std::size_t minimum, bool seen, char const* name) {
    if (knob >= minimum) {
        return;
    }
    if (seen) {
        std::fprintf(
            stderr, "xmpi: %s=%zu below minimum, clamping to %zu\n", name, knob, minimum);
    }
    knob = minimum;
}

[[nodiscard]] Transport seed_from_env() {
    Transport knobs;
    bool ring_seen = false;
    bool watermark_seen = false;
    bool coalesce_seen = false;
    bool rendezvous_seen = false;
    knobs.spin_before_block = static_cast<int>(
        env_long("XMPI_SPIN_BUDGET", knobs.spin_before_block, &g_spin_budget_forced));
    knobs.yield_before_block =
        static_cast<int>(env_long("XMPI_YIELD_BUDGET", knobs.yield_before_block));
    knobs.rendezvous_threshold = static_cast<std::size_t>(env_long(
        "XMPI_RENDEZVOUS_THRESHOLD", static_cast<long>(knobs.rendezvous_threshold),
        &rendezvous_seen));
    knobs.coalesce_max_bytes = static_cast<std::size_t>(env_long(
        "XMPI_COALESCE_MAX_BYTES", static_cast<long>(knobs.coalesce_max_bytes),
        &coalesce_seen));
    knobs.coalesce_watermark = static_cast<std::size_t>(env_long(
        "XMPI_COALESCE_WATERMARK", static_cast<long>(knobs.coalesce_watermark),
        &watermark_seen));
    knobs.ring_capacity = static_cast<std::size_t>(
        env_long("XMPI_RING_CAPACITY", static_cast<long>(knobs.ring_capacity), &ring_seen));
    knobs.rendezvous_fallback_us =
        env_long("XMPI_RENDEZVOUS_FALLBACK_US", knobs.rendezvous_fallback_us);

    // Structural minima. Zero was previously accepted for several of these
    // and wedged the transport: a zero-capacity ring can never publish, and
    // a zero watermark makes every batch block full before its first record.
    clamp_min(knobs.ring_capacity, 2, ring_seen, "XMPI_RING_CAPACITY");
    clamp_min(knobs.rendezvous_threshold, 1, rendezvous_seen, "XMPI_RENDEZVOUS_THRESHOLD");
    // The eager/rendezvous split must stay ordered: a coalesce-eligible send
    // must never also be rendezvous-eligible. Clamp the coalesce ceiling
    // below the rendezvous floor rather than the other way around, so an
    // explicit rendezvous threshold keeps its meaning.
    if (knobs.coalesce_max_bytes >= knobs.rendezvous_threshold) {
        std::size_t const clamped = knobs.rendezvous_threshold - 1;
        if (coalesce_seen || rendezvous_seen) {
            std::fprintf(
                stderr,
                "xmpi: XMPI_COALESCE_MAX_BYTES=%zu overlaps the rendezvous threshold %zu, "
                "clamping to %zu\n",
                knobs.coalesce_max_bytes, knobs.rendezvous_threshold, clamped);
        }
        knobs.coalesce_max_bytes = clamped;
    }
    // A batch block must at least fit one max-size coalesced record (and
    // never be zero: watermark 0 would reject every coalesce attempt).
    clamp_min(
        knobs.coalesce_watermark, knobs.coalesce_max_bytes + 16, watermark_seen,
        "XMPI_COALESCE_WATERMARK");
    return knobs;
}

} // namespace

Transport& transport() {
    static Transport knobs = seed_from_env();
    return knobs;
}

int spin_budget() {
    Transport const& knobs = transport();
    if (g_spin_budget_forced) {
        return knobs.spin_before_block;
    }
    // On a single hardware thread the sender cannot make progress while we
    // spin, so blocking immediately is strictly better.
    static unsigned const hw = std::thread::hardware_concurrency();
    return hw > 1 ? knobs.spin_before_block : 0;
}

int yield_budget() { return transport().yield_before_block; }

// ---------------------------------------------------------------------------
// Collective-selection knobs (node grouping + measured tuning table)
// ---------------------------------------------------------------------------

char const* coll_op_name(CollOp op) {
    switch (op) {
        case CollOp::barrier: return "barrier";
        case CollOp::bcast: return "bcast";
        case CollOp::gather: return "gather";
        case CollOp::gatherv: return "gatherv";
        case CollOp::scatter: return "scatter";
        case CollOp::scatterv: return "scatterv";
        case CollOp::allgather: return "allgather";
        case CollOp::allgatherv: return "allgatherv";
        case CollOp::alltoall: return "alltoall";
        case CollOp::alltoallv: return "alltoallv";
        case CollOp::alltoallw: return "alltoallw";
        case CollOp::neighbor_alltoallv: return "neighbor_alltoallv";
        case CollOp::reduce: return "reduce";
        case CollOp::allreduce: return "allreduce";
        case CollOp::reduce_scatter: return "reduce_scatter";
        case CollOp::scan: return "scan";
        case CollOp::count_: break;
    }
    return "?";
}

CollOp coll_op_from_name(char const* name) {
    for (std::size_t i = 0; i < num_coll_ops; ++i) {
        auto const op = static_cast<CollOp>(i);
        if (std::strcmp(coll_op_name(op), name) == 0) {
            return op;
        }
    }
    return CollOp::count_;
}

int parse_node_size(char const* text, int fallback) {
    if (text == nullptr || *text == '\0') {
        return fallback;
    }
    if (std::strcmp(text, "auto") == 0) {
        return -1;
    }
    char* end = nullptr;
    long const value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || value < 0) {
        std::fprintf(
            stderr, "xmpi: ignoring malformed XMPI_NODE_SIZE=\"%s\" (keeping %d)\n", text,
            fallback);
        return fallback;
    }
    if (value == 1) {
        // A group size of 1 makes every rank its own leader — structurally
        // the flat algorithm with extra bookkeeping. Clamp like the other
        // below-minimum knobs instead of silently honoring it.
        std::fprintf(stderr, "xmpi: XMPI_NODE_SIZE=1 below minimum, clamping to 2\n");
        return 2;
    }
    return static_cast<int>(value);
}

namespace {

/// @brief One measured tuning-table cell: for communicator size @c p
/// (0 = any) and packed block sizes up to @c max_bytes (0 = unbounded), run
/// @c algorithm. The algorithm string is owned by the table storage; select()
/// resolves it against the registry's static names before use.
struct TableCell {
    std::string op;
    int p = 0;
    std::size_t max_bytes = 0;
    std::string algorithm;
};

struct TuningTable {
    std::vector<TableCell> cells;
};

std::mutex g_table_mutex;
TuningTable g_table; // guarded by g_table_mutex; empty = no table

// --- Minimal JSON reader (objects/arrays/strings/numbers/bool/null) --------
//
// The table schema is tiny and external JSON dependencies are off the menu;
// this is a tolerant recursive-descent reader that only materializes the
// values the schema needs and skips everything else.

struct JsonReader {
    char const* cursor;
    char const* end;
    bool ok = true;

    void skip_ws() {
        while (cursor < end && std::isspace(static_cast<unsigned char>(*cursor)) != 0) {
            ++cursor;
        }
    }

    bool consume(char expected) {
        skip_ws();
        if (cursor < end && *cursor == expected) {
            ++cursor;
            return true;
        }
        ok = false;
        return false;
    }

    [[nodiscard]] char peek() {
        skip_ws();
        return cursor < end ? *cursor : '\0';
    }

    bool parse_string(std::string& out) {
        if (!consume('"')) {
            return false;
        }
        out.clear();
        while (cursor < end && *cursor != '"') {
            if (*cursor == '\\' && cursor + 1 < end) {
                ++cursor; // keep escaped char verbatim; the schema has no exotic escapes
            }
            out.push_back(*cursor++);
        }
        return consume('"');
    }

    bool parse_number(double& out) {
        skip_ws();
        char* num_end = nullptr;
        out = std::strtod(cursor, &num_end);
        if (num_end == cursor) {
            ok = false;
            return false;
        }
        cursor = num_end;
        return true;
    }

    /// @brief Skips any JSON value (used for unknown keys).
    bool skip_value() {
        switch (peek()) {
            case '"': {
                std::string ignored;
                return parse_string(ignored);
            }
            case '{': {
                consume('{');
                if (peek() == '}') {
                    return consume('}');
                }
                do {
                    std::string key;
                    if (!parse_string(key) || !consume(':') || !skip_value()) {
                        return false;
                    }
                } while (peek() == ',' && consume(','));
                return consume('}');
            }
            case '[': {
                consume('[');
                if (peek() == ']') {
                    return consume(']');
                }
                do {
                    if (!skip_value()) {
                        return false;
                    }
                } while (peek() == ',' && consume(','));
                return consume(']');
            }
            case 't':
            case 'f':
            case 'n': {
                while (cursor < end && std::isalpha(static_cast<unsigned char>(*cursor)) != 0) {
                    ++cursor;
                }
                return true;
            }
            default: {
                double ignored = 0.0;
                return parse_number(ignored);
            }
        }
    }

    bool parse_cell(TableCell& cell) {
        if (!consume('{')) {
            return false;
        }
        if (peek() == '}') {
            return consume('}');
        }
        do {
            std::string key;
            if (!parse_string(key) || !consume(':')) {
                return false;
            }
            if (key == "op") {
                if (!parse_string(cell.op)) {
                    return false;
                }
            } else if (key == "algorithm") {
                if (!parse_string(cell.algorithm)) {
                    return false;
                }
            } else if (key == "p") {
                double value = 0.0;
                if (!parse_number(value) || value < 0) {
                    return false;
                }
                cell.p = static_cast<int>(value);
            } else if (key == "max_bytes") {
                double value = 0.0;
                if (!parse_number(value) || value < 0) {
                    return false;
                }
                cell.max_bytes = static_cast<std::size_t>(value);
            } else if (!skip_value()) {
                return false;
            }
        } while (peek() == ',' && consume(','));
        return consume('}');
    }

    bool parse_table(TuningTable& table) {
        if (!consume('{')) {
            return false;
        }
        if (peek() == '}') {
            return consume('}');
        }
        do {
            std::string key;
            if (!parse_string(key) || !consume(':')) {
                return false;
            }
            if (key == "cells") {
                if (!consume('[')) {
                    return false;
                }
                if (peek() == ']') {
                    consume(']');
                    continue;
                }
                do {
                    TableCell cell;
                    if (!parse_cell(cell)) {
                        return false;
                    }
                    table.cells.push_back(std::move(cell));
                } while (peek() == ',' && consume(','));
                if (!consume(']')) {
                    return false;
                }
            } else if (!skip_value()) {
                return false;
            }
        } while (peek() == ',' && consume(','));
        return consume('}');
    }
};

void seed_coll_from_env(Coll& knobs) {
    knobs.node_size = parse_node_size(std::getenv("XMPI_NODE_SIZE"), knobs.node_size);
    if (char const* const path = std::getenv("XMPI_TUNING_TABLE");
        path != nullptr && *path != '\0') {
        (void)load_tuning_table(path); // warns on failure, falls back to model
    }
}

} // namespace

Coll& coll() {
    // Seeded in place: the atomic force_algorithm member makes Coll
    // non-copyable, and the lambda runs exactly once under the static-init
    // guard.
    static Coll knobs;
    static bool const seeded = [] {
        seed_coll_from_env(knobs);
        return true;
    }();
    (void)seeded;
    return knobs;
}

int node_size_for(int p) {
    int configured = coll().node_size;
    if (configured == -1) {
        // The grid plugin's decomposition: ceil(sqrt p) groups the ranks into
        // ~sqrt(p) nodes of ~sqrt(p) ranks — the shape that bounds both the
        // intra- and inter-level fan-out by sqrt(p).
        configured = static_cast<int>(std::ceil(std::sqrt(static_cast<double>(p))));
    }
    if (configured < 2 || configured >= p) {
        return 0; // hierarchy degenerate: a single node, or no grouping at all
    }
    return configured;
}

bool load_tuning_table(char const* path) {
    std::ifstream file(path);
    if (!file) {
        std::fprintf(stderr, "xmpi: cannot open tuning table \"%s\"; using the model\n", path);
        return false;
    }
    std::ostringstream content;
    content << file.rdbuf();
    std::string const text = content.str();

    TuningTable parsed;
    JsonReader reader{text.data(), text.data() + text.size()};
    if (!reader.parse_table(parsed) || !reader.ok) {
        std::fprintf(
            stderr, "xmpi: malformed tuning table \"%s\" (offset %td); using the model\n", path,
            reader.cursor - text.data());
        return false;
    }
    // Cells missing a field the lookup needs are dropped (with a warning)
    // rather than poisoning the whole table.
    std::vector<TableCell> usable;
    for (auto& cell: parsed.cells) {
        if (cell.op.empty() || cell.algorithm.empty()) {
            std::fprintf(
                stderr, "xmpi: tuning table \"%s\": dropping cell without op/algorithm\n", path);
            continue;
        }
        if (coll_op_from_name(cell.op.c_str()) == CollOp::count_) {
            std::fprintf(
                stderr, "xmpi: tuning table \"%s\": dropping cell for unknown op \"%s\"\n", path,
                cell.op.c_str());
            continue;
        }
        usable.push_back(std::move(cell));
    }
    std::lock_guard lock(g_table_mutex);
    g_table.cells = std::move(usable);
    return !g_table.cells.empty();
}

void unload_tuning_table() {
    std::lock_guard lock(g_table_mutex);
    g_table.cells.clear();
}

bool tuning_table_loaded() {
    std::lock_guard lock(g_table_mutex);
    return !g_table.cells.empty();
}

char const* table_algorithm(CollOp op, int p, std::size_t bytes) {
    char const* const name = coll_op_name(op);
    std::lock_guard lock(g_table_mutex);
    TableCell const* best = nullptr;
    for (auto const& cell: g_table.cells) {
        if (cell.op != name) {
            continue;
        }
        if (cell.p != 0 && cell.p != p) {
            continue;
        }
        if (cell.max_bytes != 0 && bytes > cell.max_bytes) {
            continue;
        }
        if (best == nullptr) {
            best = &cell;
            continue;
        }
        // Exact-p beats wildcard; then the tightest covering size bucket.
        bool const cell_exact = cell.p != 0;
        bool const best_exact = best->p != 0;
        if (cell_exact != best_exact) {
            if (cell_exact) {
                best = &cell;
            }
            continue;
        }
        auto const bucket = [](std::size_t max_bytes) {
            return max_bytes == 0 ? static_cast<std::size_t>(-1) : max_bytes;
        };
        if (bucket(cell.max_bytes) < bucket(best->max_bytes)) {
            best = &cell;
        }
    }
    // The pointer stays valid until the next load/unload; select() resolves
    // it against a registry entry (static storage) before letting it escape.
    return best != nullptr ? best->algorithm.c_str() : nullptr;
}

} // namespace xmpi::tuning
