#include <cstring>
#include <vector>

#include "coll.hpp"
#include "coll_registry.hpp"
#include "transport.hpp"

namespace xmpi::detail {
namespace {

/// @brief Dissemination barrier: ceil(log2 p) rounds.
int run_barrier_dissemination(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    int const p = comm.size();
    int const r = comm.rank();
    auto const& byte_type = *predefined_type(BuiltinType::byte_);
    for (int k = 1; k < p; k <<= 1) {
        int const to = (r + k) % p;
        int const from = (r - k + p) % p;
        if (int const err = transport_send(
                comm, to, ctx.channel.tag, ctx.channel.context, nullptr, 0, byte_type);
            err != XMPI_SUCCESS) {
            return err;
        }
        if (int const err = transport_recv(
                comm, from, ctx.channel.tag, ctx.channel.context, nullptr, 0, byte_type, nullptr);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

/// @brief Binomial tree bcast: receive from parent, then forward to children.
int run_bcast_binomial(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    int const p = comm.size();
    int const r = comm.rank();
    void* const buffer = ctx.recvbuf;
    std::size_t const count = ctx.recvcount;
    Datatype const& type = *ctx.recvtype;
    auto const vrank = (r - ctx.root + p) % p;
    auto const real = [&](int vr) { return (vr + ctx.root) % p; };

    int mask = 1;
    while (mask < p) {
        if (vrank & mask) {
            int const parent = vrank - mask;
            if (int const err = transport_recv(
                    comm, real(parent), ctx.channel.tag, ctx.channel.context, buffer, count, type,
                    nullptr);
                err != XMPI_SUCCESS) {
                return err;
            }
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
        if (vrank + mask < p) {
            int const child = vrank + mask;
            if (int const err = transport_send(
                    comm, real(child), ctx.channel.tag, ctx.channel.context, buffer, count, type);
                err != XMPI_SUCCESS) {
                return err;
            }
        }
        mask >>= 1;
    }
    return XMPI_SUCCESS;
}

[[nodiscard]] double cost_barrier_dissemination(tuning::SelectCtx const& sctx) {
    int rounds = 0;
    for (int k = 1; k < sctx.p; k <<= 1) {
        ++rounds;
    }
    return rounds * sctx.alpha;
}

[[nodiscard]] double cost_bcast_binomial(tuning::SelectCtx const& sctx) {
    int rounds = 0;
    for (int k = 1; k < sctx.p; k <<= 1) {
        ++rounds;
    }
    // Critical path: one message per tree level.
    return rounds * (sctx.alpha + static_cast<double>(sctx.block_bytes) * sctx.beta);
}

} // namespace

void register_basic_algos(std::vector<CollAlgo>& registry) {
    registry.push_back(
        {tuning::CollOp::barrier, "dissemination", nullptr, nullptr, cost_barrier_dissemination,
         run_barrier_dissemination});
    registry.push_back(
        {tuning::CollOp::bcast, "binomial", nullptr, nullptr, cost_bcast_binomial,
         run_bcast_binomial});
}

int coll_barrier_on(Comm& comm, CollChannel channel) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    CollCtx ctx;
    ctx.comm = &comm;
    ctx.channel = channel;
    return dispatch_coll(tuning::CollOp::barrier, make_select_ctx(comm, 0), ctx);
}

int coll_barrier(Comm& comm) {
    return coll_barrier_on(comm, CollChannel{comm.collective_context(), coll_tag::barrier});
}

Request* coll_ibarrier(Comm& comm) {
    auto& sync = comm.ibarrier_sync();
    int const me = comm.rank();
    std::uint64_t my_round;
    {
        std::lock_guard lock(sync.mutex);
        my_round = sync.next_round_of_rank[static_cast<std::size_t>(me)]++;
        int& arrived = sync.arrivals[my_round];
        ++arrived;
        if (arrived == comm.size()) {
            sync.arrivals.erase(my_round);
            sync.completed_rounds = my_round + 1;
            sync.cv.notify_all();
        }
    }
    // Model the latency of a dissemination barrier: the shared-counter
    // implementation is otherwise free, which would make NBX look too good.
    auto const& model = comm.world().network_model();
    if (model.enabled()) {
        int rounds = 0;
        for (int k = 1; k < comm.size(); k <<= 1) {
            ++rounds;
        }
        for (int i = 0; i < rounds; ++i) {
            comm.world().network_model().charge(0);
        }
    }
    return new IbarrierRequest(&comm, my_round);
}

int coll_bcast_on(
    Comm& comm, CollChannel channel, void* buffer, std::size_t count, Datatype const& type,
    int root) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    CollCtx ctx;
    ctx.comm = &comm;
    ctx.channel = channel;
    ctx.recvbuf = buffer;
    ctx.recvcount = count;
    ctx.recvtype = &type;
    ctx.root = root;
    return dispatch_coll(tuning::CollOp::bcast, make_select_ctx(comm, type.packed_size(count)), ctx);
}

int coll_bcast(Comm& comm, void* buffer, std::size_t count, Datatype const& type, int root) {
    return coll_bcast_on(
        comm, CollChannel{comm.collective_context(), coll_tag::bcast}, buffer, count, type,
        root);
}

} // namespace xmpi::detail
