#include <cstring>
#include <vector>

#include "coll.hpp"
#include "transport.hpp"

namespace xmpi::detail {

int coll_barrier_on(Comm& comm, CollChannel channel) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const p = comm.size();
    int const r = comm.rank();
    auto const& byte_type = *predefined_type(BuiltinType::byte_);
    // Dissemination barrier: ceil(log2 p) rounds.
    for (int k = 1; k < p; k <<= 1) {
        int const to = (r + k) % p;
        int const from = (r - k + p) % p;
        if (int const err =
                transport_send(comm, to, channel.tag, channel.context, nullptr, 0, byte_type);
            err != XMPI_SUCCESS) {
            return err;
        }
        if (int const err = transport_recv(
                comm, from, channel.tag, channel.context, nullptr, 0, byte_type, nullptr);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

int coll_barrier(Comm& comm) {
    return coll_barrier_on(comm, CollChannel{comm.collective_context(), coll_tag::barrier});
}

Request* coll_ibarrier(Comm& comm) {
    auto& sync = comm.ibarrier_sync();
    int const me = comm.rank();
    std::uint64_t my_round;
    {
        std::lock_guard lock(sync.mutex);
        my_round = sync.next_round_of_rank[static_cast<std::size_t>(me)]++;
        int& arrived = sync.arrivals[my_round];
        ++arrived;
        if (arrived == comm.size()) {
            sync.arrivals.erase(my_round);
            sync.completed_rounds = my_round + 1;
            sync.cv.notify_all();
        }
    }
    // Model the latency of a dissemination barrier: the shared-counter
    // implementation is otherwise free, which would make NBX look too good.
    auto const& model = comm.world().network_model();
    if (model.enabled()) {
        int rounds = 0;
        for (int k = 1; k < comm.size(); k <<= 1) {
            ++rounds;
        }
        for (int i = 0; i < rounds; ++i) {
            comm.world().network_model().charge(0);
        }
    }
    return new IbarrierRequest(&comm, my_round);
}

int coll_bcast_on(
    Comm& comm, CollChannel channel, void* buffer, std::size_t count, Datatype const& type,
    int root) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const p = comm.size();
    int const r = comm.rank();
    auto const vrank = (r - root + p) % p;
    auto const real = [&](int vr) { return (vr + root) % p; };

    // Binomial tree: receive from parent, then forward to children.
    int mask = 1;
    while (mask < p) {
        if (vrank & mask) {
            int const parent = vrank - mask;
            if (int const err = transport_recv(
                    comm, real(parent), channel.tag, channel.context, buffer, count, type,
                    nullptr);
                err != XMPI_SUCCESS) {
                return err;
            }
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
        if (vrank + mask < p) {
            int const child = vrank + mask;
            if (int const err = transport_send(
                    comm, real(child), channel.tag, channel.context, buffer, count, type);
                err != XMPI_SUCCESS) {
                return err;
            }
        }
        mask >>= 1;
    }
    return XMPI_SUCCESS;
}

int coll_bcast(Comm& comm, void* buffer, std::size_t count, Datatype const& type, int root) {
    return coll_bcast_on(
        comm, CollChannel{comm.collective_context(), coll_tag::bcast}, buffer, count, type,
        root);
}

} // namespace xmpi::detail
