#include "xmpi/world.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <thread>

#include "kassert/kassert.hpp"
#include "xmpi/chaos.hpp"
#include "xmpi/elastic.hpp"
#include "xmpi/progress.hpp"
#include "xmpi/win.hpp"

namespace xmpi {

World::World(int size, NetworkModel model, int capacity)
    : size_(size),
      capacity_(capacity > 0 ? capacity : size),
      model_(model),
      payload_pool_(capacity > 0 ? capacity : size),
      rank_slots_(size) {
    KASSERT(size > 0, "a world needs at least one rank");
    KASSERT(capacity == 0 || capacity >= size, "elastic capacity must cover the initial ranks");
    // The lock-free structures (rings, payload pool, failed flags) cannot be
    // resized under concurrent readers, so an elastic world allocates them at
    // capacity up front; only rank slots [0, rank_slots_) ever exist.
    rings_ = std::make_unique<detail::RingRegistry>(capacity_, tuning::transport().ring_capacity);
    mailboxes_.resize(static_cast<std::size_t>(capacity_));
    counters_.resize(static_cast<std::size_t>(capacity_));
    for (int rank = 0; rank < size; ++rank) {
        counters_[static_cast<std::size_t>(rank)] = std::make_unique<profile::RankCounters>();
        mailboxes_[static_cast<std::size_t>(rank)] = std::make_unique<detail::Mailbox>(
            this, &payload_pool_, counters_[static_cast<std::size_t>(rank)].get(), rank, size);
    }
    failed_flags_ = std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(capacity_));
    for (int rank = 0; rank < capacity_; ++rank) {
        failed_flags_[static_cast<std::size_t>(rank)].store(false, std::memory_order_relaxed);
    }
    std::vector<int> members(static_cast<std::size_t>(size));
    for (int rank = 0; rank < size; ++rank) {
        members[static_cast<std::size_t>(rank)] = rank;
    }
    world_comm_ = new Comm(this, std::move(members));
    if (capacity > 0) {
        // Elastic world: the world comm is the epoch-0 membership comm. The
        // elastic state holds its own reference (released with the retired
        // epochs in ~World), so world_comm() stays valid for the world's
        // whole lifetime even after it is superseded.
        elastic_ = std::make_unique<detail::ElasticState>();
        elastic_->members.assign(static_cast<std::size_t>(capacity_),
                                 detail::MemberState::unused);
        for (int rank = 0; rank < size; ++rank) {
            elastic_->members[static_cast<std::size_t>(rank)] = detail::MemberState::active;
        }
        elastic_->next_slot = size;
        world_comm_->set_epoch_gate(0);
        register_context_epoch(world_comm_->pt2pt_context(), 0);
        register_context_epoch(world_comm_->collective_context(), 0);
        register_context_epoch(world_comm_->nbc_context(), 0);
        world_comm_->retain();
        elastic_->current = world_comm_;
    }
    // A fault plan staged via chaos::arm_next_world() is armed here, before
    // any rank thread exists, so even a rank's first call is injectable.
    chaos::detail::adopt_pending_plan(*this);
}

void World::install_chaos(std::unique_ptr<chaos::Engine> engine) {
    chaos::Engine* const raw = engine.get();
    {
        std::lock_guard lock(chaos_mutex_);
        chaos_engines_.push_back(std::move(engine));
    }
    chaos_engine_.store(raw, std::memory_order_release);
}

World::~World() {
    // Progress-engine tasks hold pointers into this world (comm, mailboxes,
    // counters, the initiators' buffers): fail whatever is still queued and
    // wait out anything still executing before tearing the world down.
    progress::detail::abandon_world(this);
    if (elastic_ != nullptr) {
        // Superseded epoch comms are parked (not released) at each
        // transition, because aborting operations may still be unwinding
        // through them; with all rank threads gone, release them now.
        for (Comm* comm: elastic_->retired) {
            comm->release();
        }
        if (elastic_->current != nullptr) {
            elastic_->current->release();
        }
    }
    world_comm_->release();
}

void World::register_comm(Comm* comm) {
    std::lock_guard lock(registered_comms_mutex_);
    registered_comms_.push_back(comm);
}

void World::unregister_comm(Comm* comm) {
    std::lock_guard lock(registered_comms_mutex_);
    std::erase(registered_comms_, comm);
}

void World::register_win(Win* win) {
    std::lock_guard lock(registered_comms_mutex_);
    registered_wins_.push_back(win);
}

void World::unregister_win(Win* win) {
    std::lock_guard lock(registered_comms_mutex_);
    std::erase(registered_wins_, win);
}

void World::mark_failed(int world_rank) {
    bool expected = false;
    if (failed_flags_[static_cast<std::size_t>(world_rank)].compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
        num_failed_.fetch_add(1, std::memory_order_release);
        // Engine tasks the dead rank queued but never started must not run:
        // they would act for a rank whose stack (and buffers) are gone.
        progress::detail::fail_queued_for_rank(this, world_rank, XMPI_ERR_PROC_FAILED);
        if (elastic_ != nullptr) {
            // A failure is a membership transition request like any other;
            // epoch_sync folds it into the next epoch.
            transition_pending_.store(true, std::memory_order_release);
        }
    }
    wake_all();
}

void World::wake_all() {
    int const slots = rank_slots();
    for (int rank = 0; rank < slots; ++rank) {
        mailboxes_[static_cast<std::size_t>(rank)]->wake();
    }
    {
        std::lock_guard lock(registered_comms_mutex_);
        for (auto* comm: registered_comms_) {
            comm->ibarrier_sync().cv.notify_all();
            comm->ft_sync().cv.notify_all();
        }
        for (auto* win: registered_wins_) {
            win->notify_waiters();
        }
    }
    if (elastic_ != nullptr) {
        // Deliberately without the elastic mutex (wake_all may run under it);
        // the elastic waits are bounded, so a lost wake only costs a timeout.
        elastic_->cv.notify_all();
    }
}

void World::kill_current_rank() {
    int const rank = detail::current_world_rank();
    mark_failed(rank);
    throw RankKilled{rank};
}

void World::attach_current_thread(int world_rank) {
    auto& context = detail::current_context();
    KASSERT(context.world == nullptr, "thread already attached to a world");
    context.world = this;
    context.world_rank = world_rank;
}

void World::detach_current_thread() {
    auto& context = detail::current_context();
    context.world = nullptr;
    context.world_rank = UNDEFINED;
}

void World::run(int size, std::function<void()> rank_main, NetworkModel model) {
    run_ranked(size, [&](int) { rank_main(); }, std::move(model));
}

void World::run_ranked(int size, std::function<void(int)> rank_main, NetworkModel model) {
    World world(size, model);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(size));
    std::exception_ptr first_exception;
    std::mutex exception_mutex;

    for (int rank = 0; rank < size; ++rank) {
        threads.emplace_back([&, rank] {
            world.attach_current_thread(rank);
            try {
                rank_main(rank);
            } catch (RankKilled const&) {
                // Injected failure: the rank is already marked failed.
            } catch (...) {
                // A rank died with an exception: record it and mark the rank
                // failed so the surviving ranks error out instead of
                // deadlocking on it.
                {
                    std::lock_guard lock(exception_mutex);
                    if (!first_exception) {
                        first_exception = std::current_exception();
                    }
                }
                world.mark_failed(rank);
            }
            world.detach_current_thread();
        });
    }
    for (auto& thread: threads) {
        thread.join();
    }
    if (first_exception) {
        std::rethrow_exception(first_exception);
    }
}

namespace detail {

RankContext& current_context() {
    thread_local RankContext context;
    return context;
}

World& current_world() {
    auto& context = current_context();
    if (context.world == nullptr) {
        throw UsageError("XMPI called outside a running world (no rank context)");
    }
    return *context.world;
}

int current_world_rank() {
    auto& context = current_context();
    if (context.world == nullptr) {
        throw UsageError("XMPI called outside a running world (no rank context)");
    }
    return context.world_rank;
}

Comm* current_world_comm() {
    return current_world().world_comm();
}

} // namespace detail

void inject_failure() {
    detail::current_world().kill_current_rank();
}

double wtime() {
    auto const now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration<double>(now).count();
}

char const* error_string(int error_code) {
    switch (error_code) {
        case XMPI_SUCCESS:
            return "success";
        case XMPI_ERR_BUFFER:
            return "invalid buffer";
        case XMPI_ERR_COUNT:
            return "invalid count";
        case XMPI_ERR_TYPE:
            return "invalid datatype";
        case XMPI_ERR_TAG:
            return "invalid tag";
        case XMPI_ERR_COMM:
            return "invalid communicator";
        case XMPI_ERR_RANK:
            return "invalid rank";
        case XMPI_ERR_REQUEST:
            return "invalid request";
        case XMPI_ERR_ROOT:
            return "invalid root";
        case XMPI_ERR_GROUP:
            return "invalid group";
        case XMPI_ERR_OP:
            return "invalid reduction operation";
        case XMPI_ERR_TOPOLOGY:
            return "invalid topology";
        case XMPI_ERR_TRUNCATE:
            return "message truncated on receive";
        case XMPI_ERR_INTERN:
            return "internal error";
        case XMPI_ERR_PENDING:
            return "operation pending";
        case XMPI_ERR_PROC_FAILED:
            return "a peer process has failed";
        case XMPI_ERR_REVOKED:
            return "communicator has been revoked";
        case XMPI_ERR_ARG:
            return "invalid argument";
        case XMPI_ERR_OTHER:
            return "known error not in this list";
        case XMPI_ERR_WIN:
            return "invalid window";
        case XMPI_ERR_DISP:
            return "invalid displacement";
        case XMPI_ERR_RMA_SYNC:
            return "RMA synchronization misuse (wrong or missing epoch)";
        case XMPI_ERR_RMA_RANGE:
            return "RMA access outside the exposed window memory";
        case XMPI_ERR_IN_STATUS:
            return "error code in one or more of the returned statuses";
        case XMPI_ERR_EPOCH:
            return "communicator belongs to a superseded membership epoch";
        default:
            return "unknown error";
    }
}

} // namespace xmpi
