#include "xmpi/chaos.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <optional>
#include <tuple>

#include "xmpi/world.hpp"

namespace xmpi::chaos {
namespace {

/// @brief splitmix64: tiny, statistically solid, and — unlike the stdlib
/// engines — a guaranteed-stable output sequence, which the reproducibility
/// contract depends on.
std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t probability_threshold(double probability) {
    if (probability >= 1.0) {
        return ~0ULL;
    }
    if (probability <= 0.0) {
        return 0;
    }
    return static_cast<std::uint64_t>(probability * 18446744073709551616.0 /* 2^64 */);
}

struct PendingPlan {
    std::mutex mutex;
    std::optional<FaultPlan> plan;
};

PendingPlan& pending_plan() {
    static PendingPlan pending;
    return pending;
}

struct FiredLog {
    std::mutex mutex;
    std::vector<FiredFault> records;
};

FiredLog& fired_log() {
    static FiredLog log;
    return log;
}

void log_fired(FiredFault record) {
    auto& log = fired_log();
    std::lock_guard lock(log.mutex);
    log.records.push_back(record);
}

} // namespace

Engine::Engine(FaultPlan plan, double armed_at)
    : plan_(std::move(plan)),
      armed_at_(armed_at),
      states_(plan_.faults().size()) {
    for (std::size_t i = 0; i < plan_.faults().size(); ++i) {
        auto const& fault = plan_.faults()[i];
        if (fault.trigger == Fault::Trigger::after_delay) {
            has_delay_faults_ = true;
        }
        // Independent, deterministic stream per fault: plan seed x fault
        // index x victim (the victim's own call sequence provides the draw
        // order, which is scheduling-independent).
        states_[i].rng = plan_.seed() ^ (0x9E3779B97F4A7C15ULL * (i + 1))
                         ^ (0xD1B54A32D192ED03ULL * static_cast<std::uint64_t>(fault.victim + 1));
    }
}

void Engine::record(std::size_t index, int world_rank, Call call, std::uint64_t nth) {
    states_[index].fired = true;
    log_fired(FiredFault{world_rank, static_cast<int>(index), call, nth});
}

bool Engine::on_call(int world_rank, Call call, std::uint64_t count) {
    // Lazily priced: a wall clock is only read when a delay fault is armed.
    double now = 0.0;
    bool now_valid = false;
    for (std::size_t i = 0; i < plan_.faults().size(); ++i) {
        auto const& fault = plan_.faults()[i];
        // Victim check first: per-fault state is only ever touched by the
        // fault's victim thread, which is what makes the engine lock-free.
        if (fault.victim != world_rank) {
            continue;
        }
        auto& state = states_[i];
        if (state.fired) {
            continue;
        }
        bool const call_matches = fault.call == any_call || fault.call == call;
        switch (fault.trigger) {
            case Fault::Trigger::at_call:
                if (call_matches && count >= fault.nth) {
                    record(i, world_rank, call, count);
                    return true;
                }
                break;
            case Fault::Trigger::on_entry:
                if (call_matches) {
                    record(i, world_rank, call, count);
                    return true;
                }
                break;
            case Fault::Trigger::after_delay:
                if (!now_valid) {
                    now = wtime();
                    now_valid = true;
                }
                if (now - armed_at_ >= fault.delay_seconds) {
                    record(i, world_rank, call, count);
                    return true;
                }
                break;
            case Fault::Trigger::probabilistic:
                if (call_matches
                    && splitmix64(state.rng) < probability_threshold(fault.probability)) {
                    record(i, world_rank, call, count);
                    return true;
                }
                break;
            case Fault::Trigger::at_hook:
                break; // fires via on_hook only
        }
    }
    return false;
}

bool Engine::on_hook(int world_rank, Hook hook) {
    for (std::size_t i = 0; i < plan_.faults().size(); ++i) {
        auto const& fault = plan_.faults()[i];
        if (fault.victim != world_rank || fault.trigger != Fault::Trigger::at_hook
            || fault.hook != hook) {
            continue;
        }
        auto& state = states_[i];
        if (state.fired) {
            continue;
        }
        if (++state.hook_passes >= fault.nth) {
            record(i, world_rank, any_call, state.hook_passes);
            return true;
        }
    }
    return false;
}

void arm_next_world(FaultPlan plan) {
    auto& pending = pending_plan();
    std::lock_guard lock(pending.mutex);
    pending.plan = std::move(plan);
}

void cancel_pending_plan() {
    auto& pending = pending_plan();
    std::lock_guard lock(pending.mutex);
    pending.plan.reset();
}

void arm(FaultPlan plan) {
    xmpi::detail::current_world().install_chaos(
        std::make_unique<Engine>(std::move(plan), wtime()));
}

void disarm() {
    xmpi::detail::current_world().clear_chaos();
}

std::vector<FiredFault> take_fired_log() {
    auto& log = fired_log();
    std::vector<FiredFault> records;
    {
        std::lock_guard lock(log.mutex);
        records.swap(log.records);
    }
    std::sort(records.begin(), records.end(), [](FiredFault const& a, FiredFault const& b) {
        return std::tie(a.victim, a.fault_index, a.call, a.nth)
               < std::tie(b.victim, b.fault_index, b.call, b.nth);
    });
    return records;
}

void hit_hook(World& world, int world_rank, Hook hook) {
    if (auto* engine = world.chaos_engine();
        engine != nullptr && engine->on_hook(world_rank, hook)) {
        world.kill_current_rank(); // throws RankKilled
    }
}

namespace detail {

void adopt_pending_plan(World& world) {
    auto& pending = pending_plan();
    std::optional<FaultPlan> plan;
    {
        std::lock_guard lock(pending.mutex);
        plan.swap(pending.plan);
    }
    if (plan.has_value()) {
        world.install_chaos(std::make_unique<Engine>(*std::move(plan), wtime()));
    }
}

} // namespace detail
} // namespace xmpi::chaos
