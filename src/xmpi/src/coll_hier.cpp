/// @file coll_hier.cpp
/// @brief Two-level (hierarchical) collective algorithms.
///
/// Ranks are grouped into "nodes" of XMPI_NODE_SIZE consecutive ranks
/// (tuning::node_size_for(); -1 = the grid plugin's ceil(sqrt p)
/// decomposition). Each node's first rank is its leader; a collective then
/// runs in (up to) three phases — intra-node, leader-level, intra-node —
/// which cuts the total message count roughly in half versus the flat
/// algorithms at the price of extra tree depth. On a machine where
/// intra-node links are faster than inter-node ones that trade is a clear
/// win; the uniform alpha/beta model cannot express it, which is why these
/// entries carry no cost() hook and are reached via the preference layer
/// (node grouping active + latency-bound payload) or a measured tuning
/// table.
#include <cstring>
#include <vector>

#include "coll.hpp"
#include "coll_registry.hpp"
#include "transport.hpp"
#include "xmpi/netmodel.hpp"

namespace xmpi::detail {
namespace {

/// @brief The contiguous-rank node grouping of one communicator.
struct Grouping {
    int g = 0;          ///< configured group size
    int nnodes = 0;     ///< number of nodes (last may be smaller than g)
    int node = 0;       ///< calling rank's node
    int node_begin = 0; ///< first rank of the node (its leader)
    int node_end = 0;   ///< one past the last rank of the node

    [[nodiscard]] int leader() const { return node_begin; }
    [[nodiscard]] bool is_leader(int r) const { return r == node_begin; }
    [[nodiscard]] static Grouping of(int r, int p, int g) {
        Grouping grp;
        grp.g = g;
        grp.nnodes = (p + g - 1) / g;
        grp.node = r / g;
        grp.node_begin = grp.node * g;
        grp.node_end = grp.node_begin + g < p ? grp.node_begin + g : p;
        return grp;
    }
};

/// @brief Binomial bcast over an explicit participant list (ranks[root_idx]
/// is the root). The caller passes its own index in the list.
int bcast_over(
    Comm& comm, CollChannel channel, std::vector<int> const& ranks, int my_idx, int root_idx,
    void* buffer, std::size_t count, Datatype const& type) {
    int const n = static_cast<int>(ranks.size());
    int const vrank = (my_idx - root_idx + n) % n;
    auto const real = [&](int vr) { return ranks[static_cast<std::size_t>((vr + root_idx) % n)]; };
    int mask = 1;
    while (mask < n) {
        if (vrank & mask) {
            if (int const err = transport_recv(
                    comm, real(vrank - mask), channel.tag, channel.context, buffer, count, type,
                    nullptr);
                err != XMPI_SUCCESS) {
                return err;
            }
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while (mask > 0) {
        if (vrank + mask < n) {
            if (int const err = transport_send(
                    comm, real(vrank + mask), channel.tag, channel.context, buffer, count, type);
                err != XMPI_SUCCESS) {
                return err;
            }
        }
        mask >>= 1;
    }
    return XMPI_SUCCESS;
}

/// @brief Binomial reduce over an explicit participant list, commutative
/// operations only: folds in place into `buffer`; the result lands at
/// ranks[root_idx].
int reduce_over(
    Comm& comm, CollChannel channel, std::vector<int> const& ranks, int my_idx, int root_idx,
    void* buffer, std::size_t count, Datatype const& type, Op const& op,
    std::vector<std::byte>& incoming) {
    int const n = static_cast<int>(ranks.size());
    int const vrank = (my_idx - root_idx + n) % n;
    auto const real = [&](int vr) { return ranks[static_cast<std::size_t>((vr + root_idx) % n)]; };
    incoming.resize(count * static_cast<std::size_t>(type.extent()));
    int mask = 1;
    while (mask < n) {
        if (vrank & mask) {
            return transport_send(
                comm, real(vrank - mask), channel.tag, channel.context, buffer, count, type);
        }
        int const child = vrank + mask;
        if (child < n) {
            if (int const err = transport_recv(
                    comm, real(child), channel.tag, channel.context, incoming.data(), count, type,
                    nullptr);
                err != XMPI_SUCCESS) {
                return err;
            }
            op.apply(incoming.data(), buffer, count, type);
        }
        mask <<= 1;
    }
    return XMPI_SUCCESS;
}

/// @brief Recursive-doubling allreduce over an explicit participant list
/// (commutative operations only), in place into `buffer`. The same
/// rem-folding as the flat algorithm handles non-power-of-two list sizes.
int rd_allreduce_over(
    Comm& comm, CollChannel channel, std::vector<int> const& ranks, int my_idx, void* buffer,
    std::size_t count, Datatype const& type, Op const& op, std::vector<std::byte>& incoming) {
    int const n = static_cast<int>(ranks.size());
    if (n < 2) {
        return XMPI_SUCCESS;
    }
    incoming.resize(count * static_cast<std::size_t>(type.extent()));
    std::byte* const in = incoming.data();
    auto const peer = [&](int idx) { return ranks[static_cast<std::size_t>(idx)]; };

    int pow2 = 1;
    while (pow2 * 2 <= n) {
        pow2 *= 2;
    }
    int const rem = n - pow2;

    int vrank;
    if (my_idx < 2 * rem) {
        if (my_idx % 2 == 0) {
            if (int const err = transport_send(
                    comm, peer(my_idx + 1), channel.tag, channel.context, buffer, count, type);
                err != XMPI_SUCCESS) {
                return err;
            }
            vrank = -1; // sits out the doubling rounds, gets the result back
        } else {
            if (int const err = transport_recv(
                    comm, peer(my_idx - 1), channel.tag, channel.context, in, count, type,
                    nullptr);
                err != XMPI_SUCCESS) {
                return err;
            }
            op.apply(in, buffer, count, type);
            vrank = my_idx / 2;
        }
    } else {
        vrank = my_idx - rem;
    }

    if (vrank >= 0) {
        auto const real = [&](int vr) { return vr < rem ? 2 * vr + 1 : vr + rem; };
        for (int mask = 1; mask < pow2; mask <<= 1) {
            int const partner = peer(real(vrank ^ mask));
            if (int const err = transport_send(
                    comm, partner, channel.tag, channel.context, buffer, count, type);
                err != XMPI_SUCCESS) {
                return err;
            }
            if (int const err = transport_recv(
                    comm, partner, channel.tag, channel.context, in, count, type, nullptr);
                err != XMPI_SUCCESS) {
                return err;
            }
            op.apply(in, buffer, count, type);
        }
    }

    if (my_idx < 2 * rem) {
        if (my_idx % 2 == 0) {
            return transport_recv(
                comm, peer(my_idx + 1), channel.tag, channel.context, buffer, count, type,
                nullptr);
        }
        return transport_send(
            comm, peer(my_idx - 1), channel.tag, channel.context, buffer, count, type);
    }
    return XMPI_SUCCESS;
}

[[nodiscard]] std::vector<int> node_ranks(Grouping const& grp) {
    std::vector<int> ranks;
    ranks.reserve(static_cast<std::size_t>(grp.node_end - grp.node_begin));
    for (int i = grp.node_begin; i < grp.node_end; ++i) {
        ranks.push_back(i);
    }
    return ranks;
}

[[nodiscard]] std::vector<int> leader_ranks(Grouping const& grp) {
    std::vector<int> ranks;
    ranks.reserve(static_cast<std::size_t>(grp.nnodes));
    for (int nb = 0; nb < grp.nnodes; ++nb) {
        ranks.push_back(nb * grp.g);
    }
    return ranks;
}

/// @brief Two-level bcast: binomial over the leader set (with the root
/// standing in for its own node's leader), then binomial within each node.
int run_bcast_hier(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    int const p = comm.size();
    int const r = comm.rank();
    int const g = tuning::node_size_for(p);
    Grouping const grp = Grouping::of(r, p, g);
    int const root = ctx.root;
    int const root_node = root / g;

    // Leader-level participants: one rank per node, the root replacing its
    // own node's leader so phase one starts at the true data source.
    std::vector<int> leaders = leader_ranks(grp);
    leaders[static_cast<std::size_t>(root_node)] = root;
    bool const in_leader_phase = r == leaders[static_cast<std::size_t>(grp.node)];
    if (in_leader_phase) {
        if (int const err = bcast_over(
                comm, ctx.channel, leaders, grp.node, root_node, ctx.recvbuf, ctx.recvcount,
                *ctx.recvtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }

    // Intra-node phase, rooted at whichever rank holds the data now.
    std::vector<int> const members = node_ranks(grp);
    int const intra_root = leaders[static_cast<std::size_t>(grp.node)];
    int const my_idx = r - grp.node_begin;
    int const root_idx = intra_root - grp.node_begin;
    if (static_cast<int>(members.size()) > 1) {
        return bcast_over(
            comm, ctx.channel, members, my_idx, root_idx, ctx.recvbuf, ctx.recvcount,
            *ctx.recvtype);
    }
    return XMPI_SUCCESS;
}

/// @brief Two-level allreduce: binomial reduce to the node leader,
/// recursive doubling across leaders, binomial bcast back down. Total
/// messages ~ p + nnodes*log2(nnodes), about half the flat recursive
/// doubling's p*log2(p) for small payloads.
int run_allreduce_hier(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    int const p = comm.size();
    int const r = comm.rank();
    int const g = tuning::node_size_for(p);
    Grouping const grp = Grouping::of(r, p, g);
    std::size_t const count = ctx.sendcount;
    Datatype const& type = *ctx.sendtype;
    Op const& op = *ctx.op;
    std::size_t const bytes = count * static_cast<std::size_t>(type.extent());

    // Fold in place in recvbuf on every rank.
    if (ctx.sendbuf != ctx.recvbuf) {
        std::memcpy(ctx.recvbuf, ctx.sendbuf, bytes);
    }
    ReduceScratch local;
    ReduceScratch& scratch = ctx.scratch != nullptr ? *ctx.scratch : local;

    std::vector<int> const members = node_ranks(grp);
    int const my_idx = r - grp.node_begin;
    if (static_cast<int>(members.size()) > 1) {
        if (int const err = reduce_over(
                comm, ctx.channel, members, my_idx, 0, ctx.recvbuf, count, type, op,
                scratch.incoming);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    if (grp.is_leader(r)) {
        std::vector<int> const leaders = leader_ranks(grp);
        if (int const err = rd_allreduce_over(
                comm, ctx.channel, leaders, grp.node, ctx.recvbuf, count, type, op,
                scratch.incoming);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    if (static_cast<int>(members.size()) > 1) {
        return bcast_over(comm, ctx.channel, members, my_idx, 0, ctx.recvbuf, count, type);
    }
    return XMPI_SUCCESS;
}

/// @brief Two-level allgather: members send their block to the leader
/// (blocks of one node are contiguous rows of the receive buffer), leaders
/// run a ring exchanging node super-blocks, then each leader broadcasts the
/// assembled buffer within its node.
int run_allgather_hier(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    int const p = comm.size();
    int const r = comm.rank();
    int const g = tuning::node_size_for(p);
    Grouping const grp = Grouping::of(r, p, g);
    void* const recvbuf = ctx.recvbuf;
    std::size_t const recvcount = ctx.recvcount;
    Datatype const& recvtype = *ctx.recvtype;

    // Phase 1: gather the node's blocks at the leader. The entry point
    // already placed each rank's own block in its row.
    if (!grp.is_leader(r)) {
        if (int const err = transport_send(
                comm, grp.leader(), ctx.channel.tag, ctx.channel.context,
                displaced(recvbuf, r * static_cast<std::ptrdiff_t>(recvcount), recvtype),
                recvcount, recvtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    } else {
        for (int i = grp.node_begin + 1; i < grp.node_end; ++i) {
            if (int const err = transport_recv(
                    comm, i, ctx.channel.tag, ctx.channel.context,
                    displaced(recvbuf, i * static_cast<std::ptrdiff_t>(recvcount), recvtype),
                    recvcount, recvtype, nullptr);
                err != XMPI_SUCCESS) {
                return err;
            }
        }
        // Phase 2: ring over the leaders, shipping whole node super-blocks
        // (the last node's may be smaller).
        auto const node_rows = [&](int nb) {
            int const begin = nb * g;
            int const end = begin + g < p ? begin + g : p;
            return end - begin;
        };
        int const nnodes = grp.nnodes;
        if (nnodes > 1) {
            int const next = ((grp.node + 1) % nnodes) * g;
            int const prev = ((grp.node - 1 + nnodes) % nnodes) * g;
            for (int s = 0; s < nnodes - 1; ++s) {
                int const send_node = (grp.node - s + nnodes) % nnodes;
                int const recv_node = (grp.node - s - 1 + nnodes) % nnodes;
                if (int const err = coll_sendrecv(
                        comm, next, ctx.channel.tag,
                        displaced(
                            recvbuf, send_node * g * static_cast<std::ptrdiff_t>(recvcount),
                            recvtype),
                        static_cast<std::size_t>(node_rows(send_node)) * recvcount, recvtype,
                        prev, ctx.channel.tag,
                        displaced(
                            recvbuf, recv_node * g * static_cast<std::ptrdiff_t>(recvcount),
                            recvtype),
                        static_cast<std::size_t>(node_rows(recv_node)) * recvcount, recvtype);
                    err != XMPI_SUCCESS) {
                    return err;
                }
            }
        }
    }

    // Phase 3: broadcast the assembled buffer within the node.
    std::vector<int> const members = node_ranks(grp);
    if (static_cast<int>(members.size()) > 1) {
        return bcast_over(
            comm, ctx.channel, members, r - grp.node_begin, 0, recvbuf,
            static_cast<std::size_t>(p) * recvcount, recvtype);
    }
    return XMPI_SUCCESS;
}

[[nodiscard]] bool hier_grouping_active(tuning::SelectCtx const& sctx) {
    return tuning::node_size_for(sctx.p) > 0;
}

[[nodiscard]] bool hier_allreduce_applicable(tuning::SelectCtx const& sctx) {
    return sctx.commutative && hier_grouping_active(sctx);
}

[[nodiscard]] bool hier_allreduce_preferred(tuning::SelectCtx const& sctx) {
    return sctx.block_bytes <= tuning::hier_allreduce_max_bytes;
}

[[nodiscard]] bool hier_allgather_preferred(tuning::SelectCtx const& sctx) {
    return sctx.block_bytes <= tuning::hier_allgather_max_bytes;
}

} // namespace

void register_hier_algos(std::vector<CollAlgo>& registry) {
    // No cost() hooks: a uniform alpha/beta model sees only the extra tree
    // depth, never the intra/inter asymmetry the hierarchy exploits, so
    // these entries win via preference (below) or a measured table.
    registry.push_back(
        {tuning::CollOp::bcast, "hier_binomial", hier_grouping_active, nullptr, nullptr,
         run_bcast_hier});
    registry.push_back(
        {tuning::CollOp::allreduce, "hier_recursive_doubling", hier_allreduce_applicable,
         hier_allreduce_preferred, nullptr, run_allreduce_hier});
    registry.push_back(
        {tuning::CollOp::allgather, "hier_ring", hier_grouping_active, hier_allgather_preferred,
         nullptr, run_allgather_hier});
}

} // namespace xmpi::detail
