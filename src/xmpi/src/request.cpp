#include "xmpi/request.hpp"

#include <chrono>

#include "xmpi/comm.hpp"
#include "xmpi/error.hpp"
#include "xmpi/mailbox.hpp"
#include "xmpi/world.hpp"

namespace xmpi::detail {

bool SyncRequest::test(Status& status) {
    std::lock_guard lock(handle_->mutex);
    if (handle_->matched) {
        status = Status{UNDEFINED, UNDEFINED, XMPI_SUCCESS, 0};
        return true;
    }
    if (comm_ != nullptr && (comm_->revoked() || comm_->any_member_failed())) {
        status = Status{
            UNDEFINED, UNDEFINED, comm_->revoked() ? XMPI_ERR_REVOKED : XMPI_ERR_PROC_FAILED, 0};
        return true;
    }
    return false;
}

void SyncRequest::wait(Status& status) {
    std::unique_lock lock(handle_->mutex);
    // Poll with a short timeout: failure/revocation wake-ups are broadcast to
    // mailboxes and comm sync structures but not to individual send handles.
    while (!(handle_->matched
             || (comm_ != nullptr && (comm_->revoked() || comm_->any_member_failed())))) {
        handle_->cv.wait_for(lock, std::chrono::milliseconds(1));
    }
    if (handle_->matched) {
        status = Status{UNDEFINED, UNDEFINED, XMPI_SUCCESS, 0};
    } else {
        status = Status{
            UNDEFINED, UNDEFINED, comm_->revoked() ? XMPI_ERR_REVOKED : XMPI_ERR_PROC_FAILED, 0};
    }
}

bool RecvRequest::test(Status& status) {
    if (mailbox_->is_complete(ticket_)) {
        status = ticket_->status;
        return true;
    }
    if (check_failed(status)) {
        return true;
    }
    return false;
}

bool RecvRequest::check_failed(Status& status) {
    Comm const& comm = *ticket_->comm;
    // Collective-context receives relay for the whole membership, so any
    // member's death aborts them (see transport_recv); exact-source pt2pt
    // receives only care about their own peer.
    bool const watch_all = ticket_->pattern.source == ANY_SOURCE
                           || ticket_->pattern.context == comm.collective_context();
    bool const aborted =
        comm.revoked()
        || (watch_all
                ? comm.any_member_failed()
                : comm.world().is_failed(comm.world_rank_of(ticket_->pattern.source)));
    if (!aborted) {
        return false;
    }
    if (!mailbox_->cancel(ticket_)) {
        // Completed concurrently after all; report the real status.
        status = ticket_->status;
        return true;
    }
    status = Status{
        UNDEFINED, UNDEFINED, comm.revoked() ? XMPI_ERR_REVOKED : XMPI_ERR_PROC_FAILED, 0};
    ticket_->status = status;
    ticket_->complete = true;
    return true;
}

void RecvRequest::wait(Status& status) {
    auto const aborted = [&] {
        Comm const& comm = *ticket_->comm;
        if (comm.revoked()) {
            return true;
        }
        if (ticket_->pattern.source == ANY_SOURCE) {
            return comm.any_member_failed();
        }
        return comm.world().is_failed(comm.world_rank_of(ticket_->pattern.source));
    };
    if (mailbox_->await(ticket_, aborted)) {
        status = ticket_->status;
        return;
    }
    Comm const& comm = *ticket_->comm;
    status = Status{
        UNDEFINED, UNDEFINED, comm.revoked() ? XMPI_ERR_REVOKED : XMPI_ERR_PROC_FAILED, 0};
}

bool RecvRequest::cancel() {
    return mailbox_->cancel(ticket_);
}

bool IbarrierRequest::test(Status& status) {
    auto& sync = comm_->ibarrier_sync();
    std::lock_guard lock(sync.mutex);
    if (sync.completed_rounds > round_) {
        status = Status{UNDEFINED, UNDEFINED, XMPI_SUCCESS, 0};
        return true;
    }
    if (comm_->revoked() || comm_->any_member_failed()) {
        status = Status{
            UNDEFINED, UNDEFINED, comm_->revoked() ? XMPI_ERR_REVOKED : XMPI_ERR_PROC_FAILED, 0};
        return true;
    }
    return false;
}

void IbarrierRequest::wait(Status& status) {
    auto& sync = comm_->ibarrier_sync();
    std::unique_lock lock(sync.mutex);
    sync.cv.wait(lock, [&] {
        return sync.completed_rounds > round_ || comm_->revoked() || comm_->any_member_failed();
    });
    if (sync.completed_rounds > round_) {
        status = Status{UNDEFINED, UNDEFINED, XMPI_SUCCESS, 0};
    } else {
        status = Status{
            UNDEFINED, UNDEFINED, comm_->revoked() ? XMPI_ERR_REVOKED : XMPI_ERR_PROC_FAILED, 0};
    }
}

} // namespace xmpi::detail
