#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "coll.hpp"
#include "coll_registry.hpp"
#include "transport.hpp"
#include "xmpi/netmodel.hpp"

namespace xmpi::detail {
namespace {

/// @brief Root-side linear gather: p-1 direct receives into the displaced
/// receive blocks.
int run_gather_linear(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    int const p = comm.size();
    int const r = comm.rank();
    int const root = ctx.root;
    if (r != root) {
        return coll_send(comm, root, coll_tag::gather, ctx.sendbuf, ctx.sendcount, *ctx.sendtype);
    }
    if (!ctx.in_place) {
        local_copy(
            ctx.sendbuf, ctx.sendcount, *ctx.sendtype,
            displaced(ctx.recvbuf, r * static_cast<std::ptrdiff_t>(ctx.recvcount), *ctx.recvtype),
            ctx.recvcount, *ctx.recvtype);
    }
    for (int i = 0; i < p; ++i) {
        if (i == root) {
            continue;
        }
        if (int const err = coll_recv(
                comm, i, coll_tag::gather,
                displaced(ctx.recvbuf, i * static_cast<std::ptrdiff_t>(ctx.recvcount), *ctx.recvtype),
                ctx.recvcount, *ctx.recvtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

int run_gatherv_linear(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    int const p = comm.size();
    int const r = comm.rank();
    int const root = ctx.root;
    if (r != root) {
        return coll_send(comm, root, coll_tag::gather, ctx.sendbuf, ctx.sendcount, *ctx.sendtype);
    }
    if (!ctx.in_place) {
        local_copy(
            ctx.sendbuf, ctx.sendcount, *ctx.sendtype,
            displaced(ctx.recvbuf, ctx.rdispls[r], *ctx.recvtype),
            static_cast<std::size_t>(ctx.recvcounts[r]), *ctx.recvtype);
    }
    for (int i = 0; i < p; ++i) {
        if (i == root) {
            continue;
        }
        if (int const err = coll_recv(
                comm, i, coll_tag::gather, displaced(ctx.recvbuf, ctx.rdispls[i], *ctx.recvtype),
                static_cast<std::size_t>(ctx.recvcounts[i]), *ctx.recvtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

/// @brief Binomial-tree scatter: the root packs all blocks in virtual-rank
/// order and halves the remaining range towards each child, so the root
/// injects log2(p) messages instead of p-1. Leaves receive their single
/// block straight into the user buffer (eligible for the zero-copy path);
/// inner nodes stage their subtree's blocks and forward halves downward.
int run_scatter_binomial(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    void const* const sendbuf = ctx.sendbuf;
    std::size_t const sendcount = ctx.sendcount;
    Datatype const& sendtype = *ctx.sendtype;
    void* const recvbuf = ctx.in_place ? IN_PLACE : ctx.recvbuf;
    std::size_t const recvcount = ctx.recvcount;
    Datatype const& recvtype = *ctx.recvtype;
    int const root = ctx.root;
    int const p = comm.size();
    int const r = comm.rank();
    int const vrank = (r - root + p) % p;
    auto const real = [&](int vr) { return (vr + root) % p; };
    std::size_t const block_bytes = sendtype.packed_size(sendcount);
    Datatype const& byte_type = *predefined_type(BuiltinType::byte_);

    // Subtree of vrank v spans virtual ranks [v, v + lsb(v)) clipped to p
    // (the whole range for the root).
    int const subtree =
        vrank == 0 ? p : std::min(vrank & -vrank, p - vrank);

    std::vector<std::byte> slots;
    if (vrank == 0) {
        slots.resize(static_cast<std::size_t>(p) * block_bytes);
        for (int j = 0; j < p; ++j) {
            sendtype.pack(
                displaced(sendbuf, real(j) * static_cast<std::ptrdiff_t>(sendcount), sendtype),
                sendcount, slots.data() + static_cast<std::size_t>(j) * block_bytes);
        }
        if (recvbuf != IN_PLACE) {
            local_copy(
                displaced(sendbuf, r * static_cast<std::ptrdiff_t>(sendcount), sendtype),
                sendcount, sendtype, recvbuf, recvcount, recvtype);
        }
    } else {
        int const parent = real(vrank - (vrank & -vrank));
        if (subtree == 1) {
            // Leaf: a single block arrives as packed bytes and is unpacked
            // with the receive type directly into the user buffer.
            return coll_recv(comm, parent, coll_tag::scatter, recvbuf, recvcount, recvtype);
        }
        slots.resize(static_cast<std::size_t>(subtree) * block_bytes);
        if (int const err = coll_recv(
                comm, parent, coll_tag::scatter, slots.data(), slots.size(), byte_type);
            err != XMPI_SUCCESS) {
            return err;
        }
        std::size_t const elements =
            recvtype.size() == 0
                ? 0
                : std::min(block_bytes, recvtype.packed_size(recvcount)) / recvtype.size();
        recvtype.unpack(slots.data(), elements, recvbuf);
    }

    // Forward the upper half of the remaining range to each child, largest
    // subtree first.
    for (int mask = static_cast<int>(std::bit_floor(static_cast<unsigned>(subtree - 1)));
         mask >= 1; mask >>= 1) {
        int const child = vrank + mask;
        if (child >= p || mask >= subtree) {
            continue;
        }
        int const child_blocks = std::min(mask, p - child);
        if (int const err = coll_send(
                comm, real(child), coll_tag::scatter,
                slots.data() + static_cast<std::size_t>(mask) * block_bytes,
                static_cast<std::size_t>(child_blocks) * block_bytes, byte_type);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

/// @brief Root-side linear scatter: p-1 direct sends of the displaced
/// blocks.
int run_scatter_linear(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    int const p = comm.size();
    int const r = comm.rank();
    int const root = ctx.root;
    if (r != root) {
        return coll_recv(comm, root, coll_tag::scatter, ctx.recvbuf, ctx.recvcount, *ctx.recvtype);
    }
    for (int i = 0; i < p; ++i) {
        if (i == root) {
            continue;
        }
        if (int const err = coll_send(
                comm, i, coll_tag::scatter,
                displaced(ctx.sendbuf, i * static_cast<std::ptrdiff_t>(ctx.sendcount), *ctx.sendtype),
                ctx.sendcount, *ctx.sendtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    if (!ctx.in_place) {
        local_copy(
            displaced(ctx.sendbuf, r * static_cast<std::ptrdiff_t>(ctx.sendcount), *ctx.sendtype),
            ctx.sendcount, *ctx.sendtype, ctx.recvbuf, ctx.recvcount, *ctx.recvtype);
    }
    return XMPI_SUCCESS;
}

int run_scatterv_linear(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    int const p = comm.size();
    int const r = comm.rank();
    int const root = ctx.root;
    if (r != root) {
        return coll_recv(comm, root, coll_tag::scatter, ctx.recvbuf, ctx.recvcount, *ctx.recvtype);
    }
    for (int i = 0; i < p; ++i) {
        if (i == root) {
            continue;
        }
        if (int const err = coll_send(
                comm, i, coll_tag::scatter, displaced(ctx.sendbuf, ctx.sdispls[i], *ctx.sendtype),
                static_cast<std::size_t>(ctx.sendcounts[i]), *ctx.sendtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    if (!ctx.in_place) {
        local_copy(
            displaced(ctx.sendbuf, ctx.sdispls[r], *ctx.sendtype),
            static_cast<std::size_t>(ctx.sendcounts[r]), *ctx.sendtype, ctx.recvbuf,
            ctx.recvcount, *ctx.recvtype);
    }
    return XMPI_SUCCESS;
}

/// @brief Recursive-doubling allgather (power-of-two rank counts only):
/// log2(p) rounds in which each rank exchanges its entire currently known
/// contiguous run of blocks with its round partner. The entry point already
/// placed each rank's own block into its receive-buffer row.
int run_allgather_recursive_doubling(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    void* const recvbuf = ctx.recvbuf;
    std::size_t const recvcount = ctx.recvcount;
    Datatype const& recvtype = *ctx.recvtype;
    int const p = comm.size();
    int const r = comm.rank();
    for (int mask = 1; mask < p; mask <<= 1) {
        int const partner = r ^ mask;
        // Before this round a rank holds blocks [floor(r/mask)*mask, +mask).
        int const send_base = (r / mask) * mask;
        int const recv_base = (partner / mask) * mask;
        std::size_t const run = static_cast<std::size_t>(mask) * recvcount;
        if (int const err = coll_sendrecv(
                comm, partner, coll_tag::allgather,
                displaced(recvbuf, send_base * static_cast<std::ptrdiff_t>(recvcount), recvtype),
                run, recvtype, partner, coll_tag::allgather,
                displaced(recvbuf, recv_base * static_cast<std::ptrdiff_t>(recvcount), recvtype),
                run, recvtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

/// @brief Ring allgather: p-1 rounds, each rank forwards the block it
/// received in the previous round; cost is the classic (p-1)(alpha + n*beta).
int run_allgather_ring(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    void* const recvbuf = ctx.recvbuf;
    std::size_t const recvcount = ctx.recvcount;
    Datatype const& recvtype = *ctx.recvtype;
    int const p = comm.size();
    int const r = comm.rank();
    int const next = (r + 1) % p;
    int const prev = (r - 1 + p) % p;
    for (int s = 0; s < p - 1; ++s) {
        int const send_block = (r - s + p) % p;
        int const recv_block = (r - s - 1 + p) % p;
        if (int const err = coll_sendrecv(
                comm, next, coll_tag::allgather,
                displaced(recvbuf, send_block * static_cast<std::ptrdiff_t>(recvcount), recvtype),
                recvcount, recvtype, prev, coll_tag::allgather,
                displaced(recvbuf, recv_block * static_cast<std::ptrdiff_t>(recvcount), recvtype),
                recvcount, recvtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

int run_allgatherv_ring(CollCtx& ctx) {
    Comm& comm = *ctx.comm;
    void* const recvbuf = ctx.recvbuf;
    Datatype const& recvtype = *ctx.recvtype;
    int const p = comm.size();
    int const r = comm.rank();
    int const next = (r + 1) % p;
    int const prev = (r - 1 + p) % p;
    for (int s = 0; s < p - 1; ++s) {
        int const send_block = (r - s + p) % p;
        int const recv_block = (r - s - 1 + p) % p;
        if (int const err = coll_sendrecv(
                comm, next, coll_tag::allgather,
                displaced(recvbuf, ctx.rdispls[send_block], recvtype),
                static_cast<std::size_t>(ctx.recvcounts[send_block]), recvtype, prev,
                coll_tag::allgather, displaced(recvbuf, ctx.rdispls[recv_block], recvtype),
                static_cast<std::size_t>(ctx.recvcounts[recv_block]), recvtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

[[nodiscard]] int log2_rounds(int p) {
    int rounds = 0;
    for (int k = 1; k < p; k <<= 1) {
        ++rounds;
    }
    return rounds;
}

[[nodiscard]] double msg_cost(tuning::SelectCtx const& sctx, std::size_t bytes) {
    return sctx.alpha + static_cast<double>(bytes) * sctx.beta;
}

// Binomial scatter: log2(p) rounds on the critical path vs. p-1 serial
// injections at the root; total bytes on the critical path are (p-1)*n
// either way, so the model compares round counts. The tree degenerates to
// the linear pattern below 4 ranks, hence the applicability floor.
[[nodiscard]] bool scatter_binomial_applicable(tuning::SelectCtx const& sctx) {
    return sctx.p >= 4;
}

[[nodiscard]] bool scatter_binomial_preferred(tuning::SelectCtx const& sctx) {
    return sctx.block_bytes <= tuning::binomial_scatter_max_bytes;
}

[[nodiscard]] double cost_scatter_binomial(tuning::SelectCtx const& sctx) {
    return log2_rounds(sctx.p) * sctx.alpha
           + static_cast<double>(sctx.p - 1) * static_cast<double>(sctx.block_bytes) * sctx.beta;
}

[[nodiscard]] double cost_scatter_linear(tuning::SelectCtx const& sctx) {
    return static_cast<double>(sctx.p - 1) * msg_cost(sctx, sctx.block_bytes);
}

// Recursive-doubling allgather moves the same total bytes as the ring but
// in log2(p) rounds instead of p-1; it requires a power-of-two rank count.
[[nodiscard]] bool allgather_rd_applicable(tuning::SelectCtx const& sctx) {
    return sctx.p >= 4 && std::has_single_bit(static_cast<unsigned>(sctx.p));
}

[[nodiscard]] bool allgather_rd_preferred(tuning::SelectCtx const& sctx) {
    return sctx.block_bytes <= tuning::rd_allgather_max_bytes;
}

[[nodiscard]] double cost_allgather_rd(tuning::SelectCtx const& sctx) {
    return log2_rounds(sctx.p) * sctx.alpha
           + static_cast<double>(sctx.p - 1) * static_cast<double>(sctx.block_bytes) * sctx.beta;
}

[[nodiscard]] double cost_allgather_ring(tuning::SelectCtx const& sctx) {
    return static_cast<double>(sctx.p - 1) * msg_cost(sctx, sctx.block_bytes);
}

} // namespace

void register_gather_algos(std::vector<CollAlgo>& registry) {
    registry.push_back(
        {tuning::CollOp::gather, "linear", nullptr, nullptr, nullptr, run_gather_linear});
    registry.push_back(
        {tuning::CollOp::gatherv, "linear", nullptr, nullptr, nullptr, run_gatherv_linear});
    registry.push_back(
        {tuning::CollOp::scatter, "binomial_tree", scatter_binomial_applicable,
         scatter_binomial_preferred, cost_scatter_binomial, run_scatter_binomial});
    registry.push_back(
        {tuning::CollOp::scatter, "linear", nullptr, nullptr, cost_scatter_linear,
         run_scatter_linear});
    registry.push_back(
        {tuning::CollOp::scatterv, "linear", nullptr, nullptr, nullptr, run_scatterv_linear});
    registry.push_back(
        {tuning::CollOp::allgather, "recursive_doubling", allgather_rd_applicable,
         allgather_rd_preferred, cost_allgather_rd, run_allgather_recursive_doubling});
    registry.push_back(
        {tuning::CollOp::allgather, "ring", nullptr, nullptr, cost_allgather_ring,
         run_allgather_ring});
    registry.push_back(
        {tuning::CollOp::allgatherv, "ring", nullptr, nullptr, nullptr, run_allgatherv_ring});
}

int coll_gather(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, std::size_t recvcount, Datatype const& recvtype, int root) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    CollCtx ctx;
    ctx.comm = &comm;
    ctx.in_place = sendbuf == IN_PLACE;
    ctx.sendbuf = sendbuf;
    ctx.sendcount = sendcount;
    ctx.sendtype = &sendtype;
    ctx.recvbuf = recvbuf;
    ctx.recvcount = recvcount;
    ctx.recvtype = &recvtype;
    ctx.root = root;
    return dispatch_coll(
        tuning::CollOp::gather, make_select_ctx(comm, sendtype.packed_size(sendcount)), ctx);
}

int coll_gatherv(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, int const* recvcounts, int const* displs, Datatype const& recvtype, int root) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    CollCtx ctx;
    ctx.comm = &comm;
    ctx.in_place = sendbuf == IN_PLACE;
    ctx.sendbuf = sendbuf;
    ctx.sendcount = sendcount;
    ctx.sendtype = &sendtype;
    ctx.recvbuf = recvbuf;
    ctx.recvcounts = recvcounts;
    ctx.rdispls = displs;
    ctx.recvtype = &recvtype;
    ctx.root = root;
    return dispatch_coll(
        tuning::CollOp::gatherv, make_select_ctx(comm, sendtype.packed_size(sendcount)), ctx);
}

int coll_scatter(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, std::size_t recvcount, Datatype const& recvtype, int root) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const r = comm.rank();
    // The block size is only known root-side (sendtype/sendcount are
    // significant only at the root), but MPI requires matching signatures,
    // so every rank derives it from its own receive-side arguments; the
    // root uses the send side directly.
    std::size_t const block_bytes =
        r == root ? sendtype.packed_size(sendcount) : recvtype.packed_size(recvcount);
    CollCtx ctx;
    ctx.comm = &comm;
    ctx.in_place = recvbuf == IN_PLACE;
    ctx.sendbuf = sendbuf;
    ctx.sendcount = sendcount;
    ctx.sendtype = &sendtype;
    ctx.recvbuf = ctx.in_place ? nullptr : recvbuf;
    ctx.recvcount = recvcount;
    ctx.recvtype = &recvtype;
    ctx.root = root;
    return dispatch_coll(tuning::CollOp::scatter, make_select_ctx(comm, block_bytes), ctx);
}

int coll_scatterv(
    Comm& comm, void const* sendbuf, int const* sendcounts, int const* displs,
    Datatype const& sendtype, void* recvbuf, std::size_t recvcount, Datatype const& recvtype,
    int root) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    CollCtx ctx;
    ctx.comm = &comm;
    ctx.in_place = recvbuf == IN_PLACE;
    ctx.sendbuf = sendbuf;
    ctx.sendcounts = sendcounts;
    ctx.sdispls = displs;
    ctx.sendtype = &sendtype;
    ctx.recvbuf = ctx.in_place ? nullptr : recvbuf;
    ctx.recvcount = recvcount;
    ctx.recvtype = &recvtype;
    ctx.root = root;
    return dispatch_coll(
        tuning::CollOp::scatterv, make_select_ctx(comm, recvtype.packed_size(recvcount)), ctx);
}

int coll_allgather(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, std::size_t recvcount, Datatype const& recvtype) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const r = comm.rank();
    // Common setup for every allgather algorithm: the caller's own block
    // lands in its receive-buffer row before any exchange starts.
    if (sendbuf != IN_PLACE) {
        local_copy(
            sendbuf, sendcount, sendtype,
            displaced(recvbuf, r * static_cast<std::ptrdiff_t>(recvcount), recvtype), recvcount,
            recvtype);
    }
    CollCtx ctx;
    ctx.comm = &comm;
    ctx.channel = CollChannel{comm.collective_context(), coll_tag::allgather};
    ctx.in_place = sendbuf == IN_PLACE;
    ctx.recvbuf = recvbuf;
    ctx.recvcount = recvcount;
    ctx.recvtype = &recvtype;
    return dispatch_coll(
        tuning::CollOp::allgather, make_select_ctx(comm, recvtype.packed_size(recvcount)), ctx);
}

int coll_allgatherv(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, int const* recvcounts, int const* displs, Datatype const& recvtype) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const r = comm.rank();
    if (sendbuf != IN_PLACE) {
        local_copy(
            sendbuf, sendcount, sendtype, displaced(recvbuf, displs[r], recvtype),
            static_cast<std::size_t>(recvcounts[r]), recvtype);
    }
    CollCtx ctx;
    ctx.comm = &comm;
    ctx.channel = CollChannel{comm.collective_context(), coll_tag::allgather};
    ctx.in_place = sendbuf == IN_PLACE;
    ctx.recvbuf = recvbuf;
    ctx.recvcounts = recvcounts;
    ctx.rdispls = displs;
    ctx.recvtype = &recvtype;
    return dispatch_coll(
        tuning::CollOp::allgatherv,
        make_select_ctx(comm, recvtype.packed_size(static_cast<std::size_t>(recvcounts[r]))),
        ctx);
}

} // namespace xmpi::detail
