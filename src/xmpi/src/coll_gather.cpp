#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

#include "coll.hpp"
#include "transport.hpp"
#include "xmpi/netmodel.hpp"
#include "xmpi/profile.hpp"

namespace xmpi::detail {
namespace {

/// @brief Local datatype conversion: packs (src, scount, stype) and unpacks
/// into (dst, up to rcount elements of rtype). Used for the self-copy of
/// rooted collectives.
void local_copy(
    void const* src, std::size_t scount, Datatype const& stype, void* dst, std::size_t rcount,
    Datatype const& rtype) {
    std::vector<std::byte> packed(stype.packed_size(scount));
    stype.pack(src, scount, packed.data());
    std::size_t const elements =
        rtype.size() == 0 ? 0 : std::min(packed.size(), rtype.packed_size(rcount)) / rtype.size();
    rtype.unpack(packed.data(), elements, dst);
}

std::byte* displaced(void* base, std::ptrdiff_t elements, Datatype const& type) {
    return static_cast<std::byte*>(base) + elements * type.extent();
}

std::byte const* displaced(void const* base, std::ptrdiff_t elements, Datatype const& type) {
    return static_cast<std::byte const*>(base) + elements * type.extent();
}

/// @brief Binomial-tree scatter: the root packs all blocks in virtual-rank
/// order and halves the remaining range towards each child, so the root
/// injects log2(p) messages instead of p-1. Leaves receive their single
/// block straight into the user buffer (eligible for the zero-copy path);
/// inner nodes stage their subtree's blocks and forward halves downward.
int scatter_binomial(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, std::size_t recvcount, Datatype const& recvtype, int root) {
    int const p = comm.size();
    int const r = comm.rank();
    int const vrank = (r - root + p) % p;
    auto const real = [&](int vr) { return (vr + root) % p; };
    std::size_t const block_bytes = sendtype.packed_size(sendcount);
    Datatype const& byte_type = *predefined_type(BuiltinType::byte_);

    // Subtree of vrank v spans virtual ranks [v, v + lsb(v)) clipped to p
    // (the whole range for the root).
    int const subtree =
        vrank == 0 ? p : std::min(vrank & -vrank, p - vrank);

    std::vector<std::byte> slots;
    if (vrank == 0) {
        slots.resize(static_cast<std::size_t>(p) * block_bytes);
        for (int j = 0; j < p; ++j) {
            sendtype.pack(
                displaced(sendbuf, real(j) * static_cast<std::ptrdiff_t>(sendcount), sendtype),
                sendcount, slots.data() + static_cast<std::size_t>(j) * block_bytes);
        }
        if (recvbuf != IN_PLACE) {
            local_copy(
                displaced(sendbuf, r * static_cast<std::ptrdiff_t>(sendcount), sendtype),
                sendcount, sendtype, recvbuf, recvcount, recvtype);
        }
    } else {
        int const parent = real(vrank - (vrank & -vrank));
        if (subtree == 1) {
            // Leaf: a single block arrives as packed bytes and is unpacked
            // with the receive type directly into the user buffer.
            return coll_recv(comm, parent, coll_tag::scatter, recvbuf, recvcount, recvtype);
        }
        slots.resize(static_cast<std::size_t>(subtree) * block_bytes);
        if (int const err = coll_recv(
                comm, parent, coll_tag::scatter, slots.data(), slots.size(), byte_type);
            err != XMPI_SUCCESS) {
            return err;
        }
        std::size_t const elements =
            recvtype.size() == 0
                ? 0
                : std::min(block_bytes, recvtype.packed_size(recvcount)) / recvtype.size();
        recvtype.unpack(slots.data(), elements, recvbuf);
    }

    // Forward the upper half of the remaining range to each child, largest
    // subtree first.
    for (int mask = static_cast<int>(std::bit_floor(static_cast<unsigned>(subtree - 1)));
         mask >= 1; mask >>= 1) {
        int const child = vrank + mask;
        if (child >= p || mask >= subtree) {
            continue;
        }
        int const child_blocks = std::min(mask, p - child);
        if (int const err = coll_send(
                comm, real(child), coll_tag::scatter,
                slots.data() + static_cast<std::size_t>(mask) * block_bytes,
                static_cast<std::size_t>(child_blocks) * block_bytes, byte_type);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

/// @brief Recursive-doubling allgather (power-of-two rank counts only):
/// log2(p) rounds in which each rank exchanges its entire currently known
/// contiguous run of blocks with its round partner.
int allgather_recursive_doubling(
    Comm& comm, void* recvbuf, std::size_t recvcount, Datatype const& recvtype) {
    int const p = comm.size();
    int const r = comm.rank();
    for (int mask = 1; mask < p; mask <<= 1) {
        int const partner = r ^ mask;
        // Before this round a rank holds blocks [floor(r/mask)*mask, +mask).
        int const send_base = (r / mask) * mask;
        int const recv_base = (partner / mask) * mask;
        std::size_t const run = static_cast<std::size_t>(mask) * recvcount;
        if (int const err = coll_sendrecv(
                comm, partner, coll_tag::allgather,
                displaced(recvbuf, send_base * static_cast<std::ptrdiff_t>(recvcount), recvtype),
                run, recvtype, partner, coll_tag::allgather,
                displaced(recvbuf, recv_base * static_cast<std::ptrdiff_t>(recvcount), recvtype),
                run, recvtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

/// @brief Threshold/model-based choice between the binomial scatter tree and
/// the root's linear direct sends.
bool use_binomial_scatter(Comm& comm, int p, std::size_t block_bytes) {
    if (p < 4) {
        return false; // the tree degenerates to the linear pattern
    }
    if (comm.world().network_model().enabled()) {
        // Binomial: log2(p) rounds on the critical path vs. p-1 serial
        // injections at the root — strictly better under the alpha/beta
        // model (total bytes on the critical path are (p-1)*n either way).
        return true;
    }
    return block_bytes <= tuning::binomial_scatter_max_bytes;
}

/// @brief Model/threshold-based choice between recursive doubling and the
/// ring allgather; recursive doubling requires a power-of-two rank count.
bool use_rd_allgather(Comm& comm, int p, std::size_t block_bytes) {
    if (p < 4 || !std::has_single_bit(static_cast<unsigned>(p))) {
        return false;
    }
    if (comm.world().network_model().enabled()) {
        // Same total bytes as the ring but log2(p) rounds instead of p-1.
        return true;
    }
    return block_bytes <= tuning::rd_allgather_max_bytes;
}

} // namespace

int coll_gather(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, std::size_t recvcount, Datatype const& recvtype, int root) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const p = comm.size();
    int const r = comm.rank();
    if (r != root) {
        return coll_send(comm, root, coll_tag::gather, sendbuf, sendcount, sendtype);
    }
    if (sendbuf != IN_PLACE) {
        local_copy(
            sendbuf, sendcount, sendtype, displaced(recvbuf, r * static_cast<std::ptrdiff_t>(recvcount), recvtype),
            recvcount, recvtype);
    }
    for (int i = 0; i < p; ++i) {
        if (i == root) {
            continue;
        }
        if (int const err = coll_recv(
                comm, i, coll_tag::gather,
                displaced(recvbuf, i * static_cast<std::ptrdiff_t>(recvcount), recvtype),
                recvcount, recvtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

int coll_gatherv(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, int const* recvcounts, int const* displs, Datatype const& recvtype, int root) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const p = comm.size();
    int const r = comm.rank();
    if (r != root) {
        return coll_send(comm, root, coll_tag::gather, sendbuf, sendcount, sendtype);
    }
    if (sendbuf != IN_PLACE) {
        local_copy(
            sendbuf, sendcount, sendtype, displaced(recvbuf, displs[r], recvtype),
            static_cast<std::size_t>(recvcounts[r]), recvtype);
    }
    for (int i = 0; i < p; ++i) {
        if (i == root) {
            continue;
        }
        if (int const err = coll_recv(
                comm, i, coll_tag::gather, displaced(recvbuf, displs[i], recvtype),
                static_cast<std::size_t>(recvcounts[i]), recvtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

int coll_scatter(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, std::size_t recvcount, Datatype const& recvtype, int root) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const p = comm.size();
    int const r = comm.rank();
    // The block size is only known root-side (sendtype/sendcount are
    // significant only at the root), but MPI requires matching signatures,
    // so every rank derives it from its own receive-side arguments; the
    // root uses the send side directly.
    std::size_t const block_bytes =
        r == root ? sendtype.packed_size(sendcount) : recvtype.packed_size(recvcount);
    if (use_binomial_scatter(comm, p, block_bytes)) {
        profile::note_algorithm("binomial_tree");
        return scatter_binomial(
            comm, sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype, root);
    }
    profile::note_algorithm("linear");
    if (r != root) {
        return coll_recv(comm, root, coll_tag::scatter, recvbuf, recvcount, recvtype);
    }
    for (int i = 0; i < p; ++i) {
        if (i == root) {
            continue;
        }
        if (int const err = coll_send(
                comm, i, coll_tag::scatter,
                displaced(sendbuf, i * static_cast<std::ptrdiff_t>(sendcount), sendtype),
                sendcount, sendtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    if (recvbuf != IN_PLACE) {
        local_copy(
            displaced(sendbuf, r * static_cast<std::ptrdiff_t>(sendcount), sendtype), sendcount,
            sendtype, recvbuf, recvcount, recvtype);
    }
    return XMPI_SUCCESS;
}

int coll_scatterv(
    Comm& comm, void const* sendbuf, int const* sendcounts, int const* displs,
    Datatype const& sendtype, void* recvbuf, std::size_t recvcount, Datatype const& recvtype,
    int root) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const p = comm.size();
    int const r = comm.rank();
    if (r != root) {
        return coll_recv(comm, root, coll_tag::scatter, recvbuf, recvcount, recvtype);
    }
    for (int i = 0; i < p; ++i) {
        if (i == root) {
            continue;
        }
        if (int const err = coll_send(
                comm, i, coll_tag::scatter, displaced(sendbuf, displs[i], sendtype),
                static_cast<std::size_t>(sendcounts[i]), sendtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    if (recvbuf != IN_PLACE) {
        local_copy(
            displaced(sendbuf, displs[r], sendtype), static_cast<std::size_t>(sendcounts[r]),
            sendtype, recvbuf, recvcount, recvtype);
    }
    return XMPI_SUCCESS;
}

int coll_allgather(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, std::size_t recvcount, Datatype const& recvtype) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const p = comm.size();
    int const r = comm.rank();
    if (sendbuf != IN_PLACE) {
        local_copy(
            sendbuf, sendcount, sendtype,
            displaced(recvbuf, r * static_cast<std::ptrdiff_t>(recvcount), recvtype), recvcount,
            recvtype);
    }
    if (use_rd_allgather(comm, p, recvtype.packed_size(recvcount))) {
        profile::note_algorithm("recursive_doubling");
        return allgather_recursive_doubling(comm, recvbuf, recvcount, recvtype);
    }
    profile::note_algorithm("ring");
    // Ring allgather: p-1 rounds, each rank forwards the block it received in
    // the previous round; cost is the classic (p-1)(alpha + n*beta).
    int const next = (r + 1) % p;
    int const prev = (r - 1 + p) % p;
    for (int s = 0; s < p - 1; ++s) {
        int const send_block = (r - s + p) % p;
        int const recv_block = (r - s - 1 + p) % p;
        if (int const err = coll_sendrecv(
                comm, next, coll_tag::allgather,
                displaced(recvbuf, send_block * static_cast<std::ptrdiff_t>(recvcount), recvtype),
                recvcount, recvtype, prev, coll_tag::allgather,
                displaced(recvbuf, recv_block * static_cast<std::ptrdiff_t>(recvcount), recvtype),
                recvcount, recvtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

int coll_allgatherv(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, int const* recvcounts, int const* displs, Datatype const& recvtype) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const p = comm.size();
    int const r = comm.rank();
    if (sendbuf != IN_PLACE) {
        local_copy(
            sendbuf, sendcount, sendtype, displaced(recvbuf, displs[r], recvtype),
            static_cast<std::size_t>(recvcounts[r]), recvtype);
    }
    int const next = (r + 1) % p;
    int const prev = (r - 1 + p) % p;
    for (int s = 0; s < p - 1; ++s) {
        int const send_block = (r - s + p) % p;
        int const recv_block = (r - s - 1 + p) % p;
        if (int const err = coll_sendrecv(
                comm, next, coll_tag::allgather, displaced(recvbuf, displs[send_block], recvtype),
                static_cast<std::size_t>(recvcounts[send_block]), recvtype, prev,
                coll_tag::allgather, displaced(recvbuf, displs[recv_block], recvtype),
                static_cast<std::size_t>(recvcounts[recv_block]), recvtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

} // namespace xmpi::detail
