#include <algorithm>
#include <cstring>
#include <vector>

#include "coll.hpp"
#include "transport.hpp"

namespace xmpi::detail {
namespace {

/// @brief Local datatype conversion: packs (src, scount, stype) and unpacks
/// into (dst, up to rcount elements of rtype). Used for the self-copy of
/// rooted collectives.
void local_copy(
    void const* src, std::size_t scount, Datatype const& stype, void* dst, std::size_t rcount,
    Datatype const& rtype) {
    std::vector<std::byte> packed(stype.packed_size(scount));
    stype.pack(src, scount, packed.data());
    std::size_t const elements =
        rtype.size() == 0 ? 0 : std::min(packed.size(), rtype.packed_size(rcount)) / rtype.size();
    rtype.unpack(packed.data(), elements, dst);
}

std::byte* displaced(void* base, std::ptrdiff_t elements, Datatype const& type) {
    return static_cast<std::byte*>(base) + elements * type.extent();
}

std::byte const* displaced(void const* base, std::ptrdiff_t elements, Datatype const& type) {
    return static_cast<std::byte const*>(base) + elements * type.extent();
}

} // namespace

int coll_gather(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, std::size_t recvcount, Datatype const& recvtype, int root) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const p = comm.size();
    int const r = comm.rank();
    if (r != root) {
        return coll_send(comm, root, coll_tag::gather, sendbuf, sendcount, sendtype);
    }
    if (sendbuf != IN_PLACE) {
        local_copy(
            sendbuf, sendcount, sendtype, displaced(recvbuf, r * static_cast<std::ptrdiff_t>(recvcount), recvtype),
            recvcount, recvtype);
    }
    for (int i = 0; i < p; ++i) {
        if (i == root) {
            continue;
        }
        if (int const err = coll_recv(
                comm, i, coll_tag::gather,
                displaced(recvbuf, i * static_cast<std::ptrdiff_t>(recvcount), recvtype),
                recvcount, recvtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

int coll_gatherv(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, int const* recvcounts, int const* displs, Datatype const& recvtype, int root) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const p = comm.size();
    int const r = comm.rank();
    if (r != root) {
        return coll_send(comm, root, coll_tag::gather, sendbuf, sendcount, sendtype);
    }
    if (sendbuf != IN_PLACE) {
        local_copy(
            sendbuf, sendcount, sendtype, displaced(recvbuf, displs[r], recvtype),
            static_cast<std::size_t>(recvcounts[r]), recvtype);
    }
    for (int i = 0; i < p; ++i) {
        if (i == root) {
            continue;
        }
        if (int const err = coll_recv(
                comm, i, coll_tag::gather, displaced(recvbuf, displs[i], recvtype),
                static_cast<std::size_t>(recvcounts[i]), recvtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

int coll_scatter(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, std::size_t recvcount, Datatype const& recvtype, int root) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const p = comm.size();
    int const r = comm.rank();
    if (r != root) {
        return coll_recv(comm, root, coll_tag::scatter, recvbuf, recvcount, recvtype);
    }
    for (int i = 0; i < p; ++i) {
        if (i == root) {
            continue;
        }
        if (int const err = coll_send(
                comm, i, coll_tag::scatter,
                displaced(sendbuf, i * static_cast<std::ptrdiff_t>(sendcount), sendtype),
                sendcount, sendtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    if (recvbuf != IN_PLACE) {
        local_copy(
            displaced(sendbuf, r * static_cast<std::ptrdiff_t>(sendcount), sendtype), sendcount,
            sendtype, recvbuf, recvcount, recvtype);
    }
    return XMPI_SUCCESS;
}

int coll_scatterv(
    Comm& comm, void const* sendbuf, int const* sendcounts, int const* displs,
    Datatype const& sendtype, void* recvbuf, std::size_t recvcount, Datatype const& recvtype,
    int root) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const p = comm.size();
    int const r = comm.rank();
    if (r != root) {
        return coll_recv(comm, root, coll_tag::scatter, recvbuf, recvcount, recvtype);
    }
    for (int i = 0; i < p; ++i) {
        if (i == root) {
            continue;
        }
        if (int const err = coll_send(
                comm, i, coll_tag::scatter, displaced(sendbuf, displs[i], sendtype),
                static_cast<std::size_t>(sendcounts[i]), sendtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    if (recvbuf != IN_PLACE) {
        local_copy(
            displaced(sendbuf, displs[r], sendtype), static_cast<std::size_t>(sendcounts[r]),
            sendtype, recvbuf, recvcount, recvtype);
    }
    return XMPI_SUCCESS;
}

int coll_allgather(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, std::size_t recvcount, Datatype const& recvtype) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const p = comm.size();
    int const r = comm.rank();
    if (sendbuf != IN_PLACE) {
        local_copy(
            sendbuf, sendcount, sendtype,
            displaced(recvbuf, r * static_cast<std::ptrdiff_t>(recvcount), recvtype), recvcount,
            recvtype);
    }
    // Ring allgather: p-1 rounds, each rank forwards the block it received in
    // the previous round. (Production MPIs switch to recursive doubling for
    // small messages; the ring keeps the algorithm uniform and its cost is
    // the classic (p-1)(alpha + n*beta).)
    int const next = (r + 1) % p;
    int const prev = (r - 1 + p) % p;
    for (int s = 0; s < p - 1; ++s) {
        int const send_block = (r - s + p) % p;
        int const recv_block = (r - s - 1 + p) % p;
        if (int const err = coll_sendrecv(
                comm, next, coll_tag::allgather,
                displaced(recvbuf, send_block * static_cast<std::ptrdiff_t>(recvcount), recvtype),
                recvcount, recvtype, prev, coll_tag::allgather,
                displaced(recvbuf, recv_block * static_cast<std::ptrdiff_t>(recvcount), recvtype),
                recvcount, recvtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

int coll_allgatherv(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, int const* recvcounts, int const* displs, Datatype const& recvtype) {
    if (int const err = check_collective(comm); err != XMPI_SUCCESS) {
        return err;
    }
    int const p = comm.size();
    int const r = comm.rank();
    if (sendbuf != IN_PLACE) {
        local_copy(
            sendbuf, sendcount, sendtype, displaced(recvbuf, displs[r], recvtype),
            static_cast<std::size_t>(recvcounts[r]), recvtype);
    }
    int const next = (r + 1) % p;
    int const prev = (r - 1 + p) % p;
    for (int s = 0; s < p - 1; ++s) {
        int const send_block = (r - s + p) % p;
        int const recv_block = (r - s - 1 + p) % p;
        if (int const err = coll_sendrecv(
                comm, next, coll_tag::allgather, displaced(recvbuf, displs[send_block], recvtype),
                static_cast<std::size_t>(recvcounts[send_block]), recvtype, prev,
                coll_tag::allgather, displaced(recvbuf, displs[recv_block], recvtype),
                static_cast<std::size_t>(recvcounts[recv_block]), recvtype);
            err != XMPI_SUCCESS) {
            return err;
        }
    }
    return XMPI_SUCCESS;
}

} // namespace xmpi::detail
