/// @file coll.hpp
/// @brief Internal declarations of the collective algorithm implementations.
///
/// All collectives are implemented on top of the internal point-to-point
/// transport (collective context) with the textbook algorithms also used by
/// production MPI implementations, so the alpha/beta network model induces a
/// realistic cost structure (e.g. binomial bcast costs ~log2(p) * alpha).
#pragma once

#include <cstddef>
#include <vector>

#include "xmpi/comm.hpp"
#include "xmpi/datatype.hpp"
#include "xmpi/op.hpp"
#include "xmpi/request.hpp"

namespace xmpi::detail {

/// @brief Internal tag space for collective-context messages; one tag per
/// collective kind keeps back-to-back different collectives unambiguous
/// (same-kind back-to-back is safe by the non-overtaking guarantee).
namespace coll_tag {
inline constexpr int barrier          = 1;
inline constexpr int bcast            = 2;
inline constexpr int gather           = 3;
inline constexpr int scatter          = 4;
inline constexpr int allgather        = 5;
inline constexpr int alltoall         = 6;
inline constexpr int reduce           = 7;
inline constexpr int scan             = 8;
inline constexpr int neighbor         = 9;
inline constexpr int topo_create      = 10;
inline constexpr int comm_create      = 11;
inline constexpr int reduce_scatter   = 12;
} // namespace coll_tag

/// @brief Matching channel of one collective instance: blocking
/// collectives use (collective context, per-kind tag); non-blocking ones
/// (nbc context, per-initiation sequence tag) so several can be in flight.
struct CollChannel {
    int context;
    int tag;
};

/// @brief Reusable scratch for reduction collectives. One-shot calls
/// allocate it on the stack; persistent requests hoist one instance into
/// the request so restarts skip the per-round allocations.
struct ReduceScratch {
    std::vector<std::byte> accumulator;
    std::vector<std::byte> incoming;
};

int coll_barrier(Comm& comm);
int coll_barrier_on(Comm& comm, CollChannel channel);
Request* coll_ibarrier(Comm& comm);
int coll_bcast(Comm& comm, void* buffer, std::size_t count, Datatype const& type, int root);
int coll_bcast_on(
    Comm& comm, CollChannel channel, void* buffer, std::size_t count, Datatype const& type,
    int root);
int coll_reduce_on(
    Comm& comm, CollChannel channel, void const* sendbuf, void* recvbuf, std::size_t count,
    Datatype const& type, Op const& op, int root);
int coll_allreduce_on(
    Comm& comm, CollChannel channel, void const* sendbuf, void* recvbuf, std::size_t count,
    Datatype const& type, Op const& op, ReduceScratch* scratch = nullptr);
int coll_alltoallv_on(
    Comm& comm, CollChannel channel, void const* sendbuf, int const* sendcounts,
    int const* sdispls, Datatype const& sendtype, void* recvbuf, int const* recvcounts,
    int const* rdispls, Datatype const& recvtype);
int coll_gather(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, std::size_t recvcount, Datatype const& recvtype, int root);
int coll_gatherv(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, int const* recvcounts, int const* displs, Datatype const& recvtype, int root);
int coll_scatter(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, std::size_t recvcount, Datatype const& recvtype, int root);
int coll_scatterv(
    Comm& comm, void const* sendbuf, int const* sendcounts, int const* displs,
    Datatype const& sendtype, void* recvbuf, std::size_t recvcount, Datatype const& recvtype,
    int root);
int coll_allgather(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, std::size_t recvcount, Datatype const& recvtype);
int coll_allgatherv(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, int const* recvcounts, int const* displs, Datatype const& recvtype);
int coll_alltoall(
    Comm& comm, void const* sendbuf, std::size_t sendcount, Datatype const& sendtype,
    void* recvbuf, std::size_t recvcount, Datatype const& recvtype);
int coll_alltoallv(
    Comm& comm, void const* sendbuf, int const* sendcounts, int const* sdispls,
    Datatype const& sendtype, void* recvbuf, int const* recvcounts, int const* rdispls,
    Datatype const& recvtype);
int coll_alltoallw(
    Comm& comm, void const* sendbuf, int const* sendcounts, int const* sdispls,
    Datatype const* const* sendtypes, void* recvbuf, int const* recvcounts, int const* rdispls,
    Datatype const* const* recvtypes);
int coll_reduce(
    Comm& comm, void const* sendbuf, void* recvbuf, std::size_t count, Datatype const& type,
    Op const& op, int root);
int coll_allreduce(
    Comm& comm, void const* sendbuf, void* recvbuf, std::size_t count, Datatype const& type,
    Op const& op);
int coll_reduce_scatter_block(
    Comm& comm, void const* sendbuf, void* recvbuf, std::size_t recvcount, Datatype const& type,
    Op const& op);
int coll_scan(
    Comm& comm, void const* sendbuf, void* recvbuf, std::size_t count, Datatype const& type,
    Op const& op, bool exclusive);
int coll_neighbor_alltoallv(
    Comm& comm, void const* sendbuf, int const* sendcounts, int const* sdispls,
    Datatype const& sendtype, void* recvbuf, int const* recvcounts, int const* rdispls,
    Datatype const& recvtype);

/// @name Communicator management (collective over the parent communicator)
/// @{
int comm_dup(Comm& comm, Comm** newcomm);
int comm_split(Comm& comm, int color, int key, Comm** newcomm);
int comm_create(Comm& comm, Group const& group, Comm** newcomm);
int dist_graph_create_adjacent(
    Comm& comm, int indegree, int const* sources, int outdegree, int const* destinations,
    Comm** newcomm);
/// @}

/// @name ULFM
/// @{
int ulfm_revoke(Comm& comm);
int ulfm_shrink(Comm& comm, Comm** newcomm);
int ulfm_agree(Comm& comm, int* flag);
/// @}

} // namespace xmpi::detail
